// nadroid_golden_test.go is the full-corpus differential gate for the
// points-to core: every app's warning counts, report text, and CSV must
// stay byte-for-byte identical to the goldens captured from the seed
// solver (the map-based solver this repo grew up with), at worker
// counts 1 and 8. Any solver rewrite that shifts a points-to set, a
// spawn-edge discovery, or a thread numbering shows up here as a diff
// against testdata/golden/.
//
// Regenerate (only when an intentional semantic change is reviewed):
//
//	go test -run TestCorpusGolden -update-golden
package nadroid_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"nadroid"
	"nadroid/internal/corpus"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden from the current solver")

// goldenCounts is the per-app record in testdata/golden/corpus.json.
type goldenCounts struct {
	App          string `json:"app"`
	Potential    int    `json:"potential"`
	AfterSound   int    `json:"after_sound"`
	AfterUnsound int    `json:"after_unsound"`
}

const goldenDir = "testdata/golden"

func goldenReportPath(app string) string { return filepath.Join(goldenDir, app+".report.txt") }
func goldenCSVPath(app string) string    { return filepath.Join(goldenDir, app+".csv") }

// runCorpus analyzes the full corpus at one worker count — both the
// corpus-level fan-out (nadroid.AnalyzeCorpus) and each app's phase
// pools use it — and returns per-app counts plus rendered report/CSV
// text.
func runCorpus(t *testing.T, workers int) ([]goldenCounts, map[string]string, map[string]string) {
	t.Helper()
	var work []nadroid.CorpusApp
	for _, app := range corpus.Apps() {
		work = append(work, nadroid.CorpusApp{Name: app.Name(), Build: app.Build})
	}
	results := nadroid.AnalyzeCorpus(work, nadroid.CorpusOptions{
		Workers:  workers,
		Analysis: nadroid.Options{Workers: workers},
	})
	var counts []goldenCounts
	reports := make(map[string]string)
	csvs := make(map[string]string)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.App, r.Err)
		}
		counts = append(counts, goldenCounts{
			App:          r.App,
			Potential:    r.Result.Stats.Potential,
			AfterSound:   r.Result.Stats.AfterSound,
			AfterUnsound: r.Result.Stats.AfterUnsound,
		})
		reports[r.App] = r.Result.Report.String()
		csvs[r.App] = r.Result.Report.CSV()
	}
	return counts, reports, csvs
}

func TestCorpusGolden(t *testing.T) {
	if *updateGolden {
		counts, reports, csvs := runCorpus(t, 1)
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(counts, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(goldenDir, "corpus.json"), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		for app, text := range reports {
			if err := os.WriteFile(goldenReportPath(app), []byte(text), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		for app, text := range csvs {
			if err := os.WriteFile(goldenCSVPath(app), []byte(text), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("golden: rewrote %s for %d apps", goldenDir, len(counts))
		return
	}

	data, err := os.ReadFile(filepath.Join(goldenDir, "corpus.json"))
	if err != nil {
		t.Fatalf("reading goldens (regenerate with -update-golden): %v", err)
	}
	var want []goldenCounts
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	wantByApp := make(map[string]goldenCounts, len(want))
	for _, w := range want {
		wantByApp[w.App] = w
	}

	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			counts, reports, csvs := runCorpus(t, workers)
			if len(counts) != len(want) {
				t.Fatalf("corpus has %d apps, goldens have %d", len(counts), len(want))
			}
			for _, got := range counts {
				w, ok := wantByApp[got.App]
				if !ok {
					t.Errorf("%s: no golden entry", got.App)
					continue
				}
				if got != w {
					t.Errorf("%s: counts differ: got %+v want %+v", got.App, got, w)
				}
				wantReport, err := os.ReadFile(goldenReportPath(got.App))
				if err != nil {
					t.Fatalf("%s: %v", got.App, err)
				}
				if reports[got.App] != string(wantReport) {
					t.Errorf("%s: report text differs from golden:\n got:\n%s\nwant:\n%s",
						got.App, reports[got.App], wantReport)
				}
				wantCSV, err := os.ReadFile(goldenCSVPath(got.App))
				if err != nil {
					t.Fatalf("%s: %v", got.App, err)
				}
				if csvs[got.App] != string(wantCSV) {
					t.Errorf("%s: report CSV differs from golden", got.App)
				}
			}
		})
	}
}
