package nadroid

import (
	"context"
	"runtime"
	"sync"

	"nadroid/internal/apk"
	"nadroid/internal/dexasm"
	"nadroid/internal/obs"
	"nadroid/internal/store"
)

// CorpusApp is one unit of work for AnalyzeCorpus: a named application
// plus a builder producing its package. Building runs inside the worker
// pool, so synthesis cost parallelizes along with the analysis.
type CorpusApp struct {
	Name  string
	Build func() *apk.Package
}

// CorpusResult pairs one app with its analysis outcome. Exactly one of
// Result and Err is set unless the run was canceled before the app was
// dispatched, in which case Err carries the context error.
type CorpusResult struct {
	App    string
	Result *Result
	Err    error
}

// CorpusOptions configures a corpus sweep.
type CorpusOptions struct {
	// Analysis is applied to every app. Leaving Analysis.Workers at 0
	// while setting a corpus-level Workers > 1 is the usual configuration:
	// coarse-grained parallelism across independent apps beats splitting
	// each app's phases when there are more apps than cores.
	Analysis Options
	// Workers bounds the number of apps analyzed concurrently.
	// 0 selects GOMAXPROCS; 1 forces a sequential sweep.
	Workers int
}

// AnalyzeCorpus runs the full pipeline over independent applications on
// a bounded worker pool. Results are returned in input order, and each
// app's analysis is deterministic regardless of worker count, so the
// aggregate output is identical for any Workers setting.
func AnalyzeCorpus(apps []CorpusApp, opts CorpusOptions) []CorpusResult {
	return AnalyzeCorpusContext(context.Background(), apps, opts)
}

// AnalyzeCorpusContext is AnalyzeCorpus honoring ctx: cancellation stops
// dispatching new apps and aborts in-flight analyses at their next phase
// boundary; affected entries report the context error.
func AnalyzeCorpusContext(ctx context.Context, apps []CorpusApp, opts CorpusOptions) []CorpusResult {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(apps) {
		workers = len(apps)
	}
	ctx, span := obs.Start(ctx, "analyze.corpus",
		obs.KV("apps", len(apps)), obs.KV("workers", workers))
	defer span.End()

	results := make([]CorpusResult, len(apps))
	if len(apps) == 0 {
		return results
	}
	idxs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxs {
				app := apps[i]
				results[i].App = app.Name
				if err := ctx.Err(); err != nil {
					results[i].Err = err
					continue
				}
				pkg := app.Build()
				aopts := opts.Analysis
				// The IR digest is per-app; derive it from the canonical
				// dexasm rendering so corpus sweeps share cache entries
				// with CLI and service runs of the same program.
				if aopts.Store != nil && (aopts.IRCache || aopts.Incremental) && aopts.IRDigest == "" {
					aopts.IRDigest = store.IRDigest(dexasm.Format(pkg))
				}
				res, err := AnalyzeContext(ctx, pkg, aopts)
				results[i].Result, results[i].Err = res, err
			}
		}()
	}
	for i := range apps {
		idxs <- i
	}
	close(idxs)
	wg.Wait()
	return results
}
