// nadroid_trace_test.go is the acceptance test for the observability
// layer: one traced corpus run must produce a span tree whose nesting
// mirrors the pipeline (modeling → points-to solve, detection with its
// sub-stages, per-filter filtering, per-schedule validation), deep
// counters for every phase, and a loadable Chrome trace export.
package nadroid_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"nadroid"
	"nadroid/internal/corpus"
	"nadroid/internal/explore"
	"nadroid/internal/obs"
)

func findChild(t *testing.T, s *obs.Span, name string) *obs.Span {
	t.Helper()
	for _, c := range s.Children() {
		if c.Name() == name {
			return c
		}
	}
	var names []string
	for _, c := range s.Children() {
		names = append(names, c.Name())
	}
	t.Fatalf("span %q has no child %q (children: %v)", s.Name(), name, names)
	return nil
}

func TestAnalyzeTraceTree(t *testing.T) {
	app, ok := corpus.ByName("ConnectBot")
	if !ok {
		t.Fatal("ConnectBot missing from corpus")
	}
	tracer := obs.NewTracer()
	metrics := obs.NewMetrics()
	ctx := obs.WithTracer(context.Background(), tracer)
	ctx = obs.WithMetrics(ctx, metrics)

	res, err := nadroid.AnalyzeContext(ctx, app.Build(), nadroid.Options{
		Validate: true,
		Explore:  explore.Options{MaxSchedules: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Potential == 0 {
		t.Fatal("analysis found nothing; trace assertions would be vacuous")
	}

	roots := tracer.Roots()
	if len(roots) != 1 || roots[0].Name() != "analyze" {
		t.Fatalf("want one analyze root, got %v", roots)
	}
	analyze := roots[0]

	// Modeling nests the points-to solve.
	modeling := findChild(t, analyze, "modeling")
	solve := findChild(t, modeling, "pointsto.solve")
	if solve.Duration() <= 0 {
		t.Error("pointsto.solve span has no duration")
	}
	// The solve span carries the worklist volume: iterations (drains)
	// and delta_objs (objects moved by difference propagation).
	solveAttrs := map[string]bool{}
	for _, a := range solve.Attrs() {
		solveAttrs[a.Key] = true
	}
	for _, key := range []string{"iterations", "delta_objs", "var_facts"} {
		if !solveAttrs[key] {
			t.Errorf("pointsto.solve span missing attr %q (have %v)", key, solve.Attrs())
		}
	}

	// Detection has at least two sub-stages (shared-context build plus
	// one span per enabled detector).
	detection := findChild(t, analyze, "detection")
	if n := len(detection.Children()); n < 2 {
		t.Errorf("detection has %d sub-spans, want ≥2", n)
	}
	findChild(t, detection, "race.collect-accesses")
	findChild(t, detection, "hb.build")
	// The Datalog pairing now runs inside the uaf detector's span.
	findChild(t, findChild(t, detection, "detect:uaf"), "race.pair")
	for _, name := range []string{"detect:nosleep", "detect:leaked-thread", "detect:lost-result"} {
		findChild(t, detection, name)
	}

	// Filtering fans out per filter.
	filtering := findChild(t, analyze, "filtering")
	var filterSpans int
	for _, c := range filtering.Children() {
		if strings.HasPrefix(c.Name(), "filter:") {
			filterSpans++
		}
	}
	if filterSpans < 3 {
		t.Errorf("filtering has %d filter:* spans, want ≥3", filterSpans)
	}

	// Validation fans out per warning and per schedule.
	validation := findChild(t, analyze, "validation")
	validate := findChild(t, validation, "validate")
	foundSchedule := false
	for _, c := range validate.Children() {
		if c.Name() == "schedule" {
			foundSchedule = true
			break
		}
	}
	if !foundSchedule {
		t.Error("validate span has no per-schedule children")
	}

	// Deep counters from every phase.
	for _, name := range []string{
		"pointsto_iterations", "pointsto_delta_objs", "pointsto_var_facts",
		"datalog_facts", "datalog_derived",
		"race_accesses", "race_pairs",
		"uaf_warnings",
		"threads_modeled",
		"validation_schedules_executed",
		"detect_context_builds",
	} {
		if metrics.Get(name) <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, metrics.Get(name))
		}
	}
	var filterCounter bool
	for _, name := range metrics.Names() {
		if strings.HasPrefix(name, "filter_examined{filter=") {
			filterCounter = true
			break
		}
	}
	if !filterCounter {
		t.Errorf("no per-filter counters recorded; have %v", metrics.Names())
	}
	var detectorCounters int
	for _, name := range metrics.Names() {
		if strings.HasPrefix(name, "detector_warnings{detector=") {
			detectorCounters++
		}
	}
	if detectorCounters != 4 {
		t.Errorf("want one detector_warnings counter per registered detector (4), got %d; have %v",
			detectorCounters, metrics.Names())
	}

	// The Chrome export is loadable JSON with one event per span.
	data, err := tracer.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("ChromeTrace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != tracer.SpanCount() {
		t.Errorf("chrome events = %d, want %d", len(doc.TraceEvents), tracer.SpanCount())
	}
}

// TestAnalyzeUntracedStaysClean guards the no-op path: with nothing
// attached to the context, analysis runs and no tracer state leaks.
func TestAnalyzeUntracedStaysClean(t *testing.T) {
	app, _ := corpus.ByName("ConnectBot")
	res, err := nadroid.AnalyzeContext(context.Background(), app.Build(), nadroid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Potential == 0 {
		t.Fatal("untraced analysis lost its results")
	}
}
