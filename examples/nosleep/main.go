// No-sleep example: the §9 extension applied. A music-player-style
// activity acquires a wake lock in onResume; the release lives in
// onPause, but onPause is not guaranteed to be the last callback — and
// an error path in onResume skips the acquire bookkeeping entirely.
// The detector reports the uncovered acquire with its lineage, and the
// schedule explorer produces an execution that ends with the device
// still awake.
//
//	go run ./examples/nosleep
package main

import (
	"fmt"
	"log"

	"nadroid/internal/appbuilder"
	"nadroid/internal/explore"
	"nadroid/internal/framework"
	"nadroid/internal/nosleep"
	"nadroid/internal/threadify"
)

func main() {
	b := appbuilder.New("player")
	act := b.MainActivity("pl/Player")
	act.Field("wl", framework.WakeLock)

	// onCreate: wl = powerManager.newWakeLock(...)
	oc := act.Method("onCreate", 1)
	pm := oc.New(framework.PowerManager)
	wl := oc.Invoke(pm, framework.PowerManager, "newWakeLock")
	oc.PutThis("wl", wl)
	oc.Return()

	// onResume: wl.acquire() — playback keeps the screen on.
	orr := act.Method("onResume", 0)
	l := orr.GetThis("wl")
	orr.InvokeVoid(l, framework.WakeLock, "release") // stale lock from a previous cycle
	orr.InvokeVoid(l, framework.WakeLock, "acquire")
	orr.Return()

	// onPause: release — but only when playback actually stopped
	// (an opaque condition the static analysis cannot evaluate).
	op := act.Method("onPause", 0)
	l2 := op.GetThis("wl")
	op.IfCond("keep")
	op.InvokeVoid(l2, framework.WakeLock, "release")
	op.Label("keep")
	op.Return()

	pkg, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	model, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		log.Fatal(err)
	}

	res := nosleep.Detect(model)
	fmt.Printf("wake-lock sites: %d acquire(s), %d release(s)\n", len(res.Acquires), len(res.Releases))
	fmt.Printf("no-sleep warnings: %d\n\n", len(res.Warnings))
	for _, w := range res.Warnings {
		fmt.Println(w)
		for _, r := range w.PartialReleases {
			fmt.Printf("  note: release at %s exists but does not cover (no ordering guarantee)\n", r.Instr)
		}
	}

	if wit, ok := explore.FindNoSleep(pkg, explore.Options{MaxSchedules: 2000}); ok {
		fmt.Printf("\ndynamic witness: execution #%d quiesced with the wake lock held\n", wit.Executions)
		fmt.Println("(e.g. resume -> pause taking the keep-branch -> home screen, battery drains)")
	}
}
