// ConnectBot example: reproduces the paper's Figure 1(a) and 1(b) —
// the two single-threaded use-after-free ordering violations nAdroid
// found in ConnectBot's service-binding code — and shows the pipeline
// detecting, classifying, and dynamically confirming both.
//
// Figure 1(a): onServiceConnected sets `bound`; onCreateContextMenu uses
// it without a guard; onServiceDisconnected sets it to null. If the
// service disconnects before the context menu opens, the app crashes.
//
// Figure 1(b): onClick checks `hostBridge != null`, then posts a
// Runnable that dereferences it later. The check does not cover the
// asynchronous gap: onServiceDisconnected can run between the post and
// the Runnable.
//
//	go run ./examples/connectbot
package main

import (
	"fmt"
	"log"
	"strings"

	"nadroid"
	"nadroid/internal/appbuilder"
	"nadroid/internal/explore"
	"nadroid/internal/framework"
)

const (
	actCls    = "cb/ConsoleActivity"
	bridgeCls = "cb/TerminalBridge"
)

func buildApp() *appbuilder.Builder {
	b := appbuilder.New("connectbot")
	b.Class(bridgeCls, framework.Object).Method("use", 0).Return()

	act := b.MainActivity(actCls)
	act.Field("bound", bridgeCls)
	act.Field("hostBridge", bridgeCls)
	act.Field("handler", "cb/UIHandler")
	b.HandlerClass("cb/UIHandler")

	// ServiceConnection: connected allocates both fields, disconnected
	// frees them (Figure 1 left column).
	conn := b.ServiceConn("cb/Conn")
	conn.Field("outer", actCls)
	sc := conn.Method("onServiceConnected", 1)
	o := sc.GetThis("outer")
	bound := sc.New(bridgeCls)
	sc.PutField(o, actCls, "bound", bound)
	hb := sc.New(bridgeCls)
	sc.PutField(o, actCls, "hostBridge", hb)
	sc.Return()
	sd := conn.Method("onServiceDisconnected", 1)
	o2 := sd.GetThis("outer")
	sd.Free(o2, actCls, "bound")
	sd.Free(o2, actCls, "hostBridge")
	sd.Return()

	// onStart binds the service; onCreate wires the UI.
	os := act.Method("onStart", 0)
	cn := os.New("cb/Conn")
	os.PutField(cn, "cb/Conn", "outer", os.This())
	os.InvokeVoid(os.This(), actCls, "bindService", cn)
	os.Return()

	// Figure 1(a): onCreateContextMenu uses `bound` unguarded.
	menu := act.Method("onCreateContextMenu", 1)
	bb := menu.GetThis("bound")
	menu.Use(bb, bridgeCls)
	menu.Return()

	// Figure 1(b): onClick guards hostBridge, then posts a Runnable that
	// dereferences it later.
	run := b.Runnable("cb/BridgeJob")
	run.Field("outer", actCls)
	rm := run.Method("run", 0)
	ro := rm.GetThis("outer")
	rb := rm.GetField(ro, actCls, "hostBridge")
	rm.Use(rb, bridgeCls)
	rm.Return()

	click := b.Class("cb/ClickListener", framework.Object, framework.OnClickListener)
	click.Field("outer", actCls)
	cm := click.Method("onClick", 1)
	co := cm.GetThis("outer")
	chk := cm.GetField(co, actCls, "hostBridge")
	cm.IfNull(chk, "skip")
	job := cm.New("cb/BridgeJob")
	cm.PutField(job, "cb/BridgeJob", "outer", co)
	h := cm.GetField(co, actCls, "handler")
	cm.InvokeVoid(h, "cb/UIHandler", "post", job)
	cm.Label("skip")
	cm.Return()

	oc := act.Method("onCreate", 1)
	hr := oc.New("cb/UIHandler")
	oc.PutThis("handler", hr)
	view := oc.New(framework.View)
	l := oc.New("cb/ClickListener")
	oc.PutField(l, "cb/ClickListener", "outer", oc.This())
	oc.InvokeVoid(view, framework.View, "setOnClickListener", l)
	oc.Return()
	return b
}

func main() {
	pkg, err := buildApp().Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := nadroid.Analyze(pkg, nadroid.Options{
		Validate: true,
		Explore:  explore.Options{MaxSchedules: 3000},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("potential %d -> sound %d -> unsound %d; validated harmful %d\n\n",
		res.Stats.Potential, res.Stats.AfterSound, res.Stats.AfterUnsound, len(res.Harmful))

	for _, w := range res.Harmful {
		label := "?"
		switch {
		case strings.Contains(w.Use.Method, "onCreateContextMenu"):
			label = "Figure 1(a): EC-PC, unguarded use in onCreateContextMenu"
		case strings.Contains(w.Use.Method, "BridgeJob.run"):
			label = "Figure 1(b): PC-PC, guard does not cover the posted Runnable"
		}
		fmt.Printf("%s\n", label)
		fmt.Printf("  field %s\n  use  %s\n  free %s\n", w.Field, w.Use, w.Free)
		if wit, ok := explore.ValidateWarning(pkg, res.Model, w, explore.Options{MaxSchedules: 3000}); ok {
			fmt.Printf("  witness after %d executions: %v\n\n", wit.Executions, wit.NPE)
		}
	}

	// The checking load in onClick is itself benign: the UR/IG reasoning
	// keeps it out of the final report.
	fmt.Println("note: onClick's null-check load was pruned as benign; only the")
	fmt.Println("asynchronous dereference in the posted Runnable is reported.")
}
