// Dexasm authoring example: apps need not be built through the Go
// builder API — the dexasm text format is a complete authoring surface.
// This program embeds a small app written by hand in dexasm (an activity
// whose broadcast receiver frees a field that a click handler uses),
// parses it, analyzes it, and confirms the bug dynamically.
//
//	go run ./examples/dexapp
package main

import (
	"fmt"
	"log"

	"nadroid"
	"nadroid/internal/dexasm"
	"nadroid/internal/explore"
)

const app = `
app radio

manifest {
  activity radio/Tuner main
}

class radio/Station extends java/lang/Object {
  method use(0) {
    return
  }
}

# The receiver frees the station when the broadcast arrives.
class radio/SignalLost extends android/content/BroadcastReceiver {
  field outer radio/Tuner
  method onReceive(1) {
    r2 = r0.radio/SignalLost.outer
    r3 = null
    r2.radio/Tuner.station = r3
    return
  }
}

class radio/PlayListener extends java/lang/Object implements android/view/View$OnClickListener {
  field outer radio/Tuner
  method onClick(1) {
    r2 = r0.radio/PlayListener.outer
    r3 = r2.radio/Tuner.station
    call r3.radio/Station.use()
    return
  }
}

class radio/Tuner extends android/app/Activity {
  field station radio/Station
  method onCreate(1) {
    r2 = new radio/Station
    r0.radio/Tuner.station = r2
    r3 = new radio/SignalLost
    r3.radio/SignalLost.outer = r0
    call r0.radio/Tuner.registerReceiver(r3)
    r4 = new android/view/View
    r5 = new radio/PlayListener
    r5.radio/PlayListener.outer = r0
    call r4.android/view/View.setOnClickListener(r5)
    return
  }
}
`

func main() {
	pkg, err := dexasm.Parse(app)
	if err != nil {
		log.Fatal(err)
	}
	res, err := nadroid.Analyze(pkg, nadroid.Options{
		Validate: true,
		Explore:  explore.Options{MaxSchedules: 2000},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d IR instructions from dexasm\n", pkg.Size())
	fmt.Printf("potential %d -> sound %d -> unsound %d; harmful %d\n\n",
		res.Stats.Potential, res.Stats.AfterSound, res.Stats.AfterUnsound, len(res.Harmful))
	fmt.Print(res.Report)
	for _, w := range res.Harmful {
		wit, ok := explore.ValidateWarning(pkg, res.Model, w, explore.Options{MaxSchedules: 2000})
		if ok {
			fmt.Printf("\nwitness: %v\n", wit.NPE)
		}
	}
}
