// FireFox example: reproduces the paper's Figure 1(c) — a multi-threaded
// use-after-free between a looper callback and a background pool thread.
//
// onResume submits a Runnable to a thread pool that eventually sets
// `jClient = null`. onPause checks `jClient != null` before calling
// `jClient.abort()`, but the check-then-act is not atomic against the
// pool thread: the free can land between the check and the call.
//
// The example shows why the IG filter is only sound under atomicity
// (§6.1.2): the same guard between two looper callbacks would be safe,
// but against a thread it is a real bug — and the explorer finds the
// interleaving.
//
//	go run ./examples/firefox
package main

import (
	"fmt"
	"log"

	"nadroid"
	"nadroid/internal/appbuilder"
	"nadroid/internal/explore"
	"nadroid/internal/framework"
)

const (
	actCls    = "ff/GeckoApp"
	clientCls = "ff/JavaClient"
)

func buildApp() *appbuilder.Builder {
	b := appbuilder.New("firefox")
	b.Class(clientCls, framework.Object).Method("abort", 0).Return()

	act := b.MainActivity(actCls)
	act.Field("jClient", clientCls)
	act.Field("pool", framework.ExecutorService)

	// The pool job that tears the client down (Figure 1(c) right side).
	job := b.Runnable("ff/Teardown")
	job.Field("outer", actCls)
	rm := job.Method("run", 0)
	ro := rm.GetThis("outer")
	rm.Free(ro, actCls, "jClient")
	rm.Return()

	// onCreate: allocate the client.
	oc := act.Method("onCreate", 1)
	c := oc.New(clientCls)
	oc.PutThis("jClient", c)
	oc.Return()

	// onResume: ThreadPool.run(new Teardown(this)).
	orr := act.Method("onResume", 0)
	pool := orr.New(framework.ExecutorService)
	orr.PutThis("pool", pool)
	j := orr.New("ff/Teardown")
	orr.PutField(j, "ff/Teardown", "outer", orr.This())
	orr.InvokeVoid(pool, framework.ExecutorService, "execute", j)
	orr.Return()

	// onPause: if (jClient != null) jClient.abort();  — unprotected.
	op := act.Method("onPause", 0)
	chk := op.GetThis("jClient")
	op.IfNull(chk, "skip")
	jc := op.GetThis("jClient")
	op.InvokeVoid(jc, clientCls, "abort")
	op.Label("skip")
	op.Return()
	return b
}

func main() {
	pkg, err := buildApp().Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := nadroid.Analyze(pkg, nadroid.Options{
		Validate: true,
		Explore:  explore.Options{MaxSchedules: 4000},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("potential %d -> sound %d -> unsound %d\n", res.Stats.Potential,
		res.Stats.AfterSound, res.Stats.AfterUnsound)
	fmt.Print(res.Report)

	fmt.Printf("\nvalidated harmful: %d\n", len(res.Harmful))
	for _, w := range res.Harmful {
		wit, ok := explore.ValidateWarning(pkg, res.Model, w, explore.Options{MaxSchedules: 4000})
		if !ok {
			continue
		}
		fmt.Printf("  %s: the pool thread's free interleaves between the\n", w.Field)
		fmt.Printf("  null check and the abort() call — %v\n", wit.NPE)
	}
	fmt.Println("\nwhy the guard is unsound here (§6.1.2): the IG filter prunes the")
	fmt.Println("same pattern between looper callbacks (atomic), but a C-NT pair has")
	fmt.Println("no atomicity, so the warning correctly survives filtering.")
}
