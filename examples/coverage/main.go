// Coverage example: the paper's §2.3 argument, executable. Trace-based
// dynamic detectors (CAFA, DroidRacer) are sound for what they observe,
// but their UI-exploration input generators cannot force rare system
// events like service disconnects — so on ConnectBot, CAFA reported zero
// harmful callback races where nAdroid statically finds 13.
//
// This program runs the same HB race-detection recipe those tools use
// (internal/dynrace) over recorded executions of the ConnectBot corpus
// app, once under a UI-only input model and once with full system-event
// injection, and compares both against the static pipeline.
//
//	go run ./examples/coverage
package main

import (
	"fmt"
	"log"
	"strings"

	"nadroid"
	"nadroid/internal/corpus"
	"nadroid/internal/dynrace"
	"nadroid/internal/interp"
)

func main() {
	app, ok := corpus.ByName("ConnectBot")
	if !ok {
		log.Fatal("corpus app missing")
	}

	// Static pipeline.
	res, err := nadroid.Analyze(app.Build(), nadroid.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Dynamic detector, UI-driven inputs only: lifecycle + clicks; no
	// service disconnects, broadcasts or binder calls can be forced.
	uiOnly := record(app, func(method, component, name string) bool {
		return !strings.Contains(name, "onServiceDisconnected") &&
			!strings.HasPrefix(name, "receiver:") &&
			!strings.HasPrefix(name, "binder:")
	})

	// Dynamic detector with full system-event injection.
	full := record(app, nil)

	fmt.Println("ConnectBot, use-after-free ordering violations:")
	fmt.Printf("  static nAdroid pipeline:                 %2d\n", res.Stats.AfterUnsound)
	fmt.Printf("  dynamic detector, UI-driven inputs:      %2d   (CAFA reported 0 on the real app)\n", countSeeded(uiOnly))
	fmt.Printf("  dynamic detector, full event injection:  %2d\n", countSeeded(full))
	fmt.Println()
	fmt.Println("The dynamic recipe is sound for the observed trace; its blind spot")
	fmt.Println("is input coverage. Static threadification analyzes every posting")
	fmt.Println("order without needing to trigger one.")
}

func record(app corpus.App, filter func(method, component, name string) bool) []dynrace.Race {
	w := interp.NewWorld(app.Build(), interp.Options{Record: true, EventFilter: filter})
	interp.Run(w, nil)
	return dynrace.Analyze(w.Recorded(), dynrace.Options{UseFreeOnly: true})
}

func countSeeded(races []dynrace.Race) int {
	n := 0
	for _, r := range races {
		if strings.HasPrefix(r.Field.Name, "f_svc") || strings.HasPrefix(r.Field.Name, "f_post") {
			n++
		}
	}
	return n
}
