// Quickstart: author a tiny Android-like app with the builder API, run
// the full nAdroid pipeline on it, and print the surviving warnings.
//
// The app has the classic back-button bug (§6.1.1): onPause frees a
// field that a click handler dereferences, and onResume does not restore
// it — so the order pause → resume → click crashes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nadroid"
	"nadroid/internal/appbuilder"
	"nadroid/internal/explore"
	"nadroid/internal/framework"
)

func main() {
	b := appbuilder.New("quickstart")

	// class V { void use() {} }
	b.Class("qs/V", framework.Object).Method("use", 0).Return()

	// class MainActivity extends Activity { V session; ... }
	act := b.MainActivity("qs/Main")
	act.Field("session", "qs/V")

	// onCreate: session = new V(); button.setOnClickListener(new Click(this))
	oc := act.Method("onCreate", 1)
	v := oc.New("qs/V")
	oc.PutThis("session", v)
	button := oc.New(framework.View)
	listener := oc.New("qs/Click")
	oc.PutField(listener, "qs/Click", "outer", oc.This())
	oc.InvokeVoid(button, framework.View, "setOnClickListener", listener)
	oc.Return()

	// onResume: careless — no re-allocation.
	act.Method("onResume", 0).Return()

	// onPause: session = null (the free).
	op := act.Method("onPause", 0)
	op.FreeThis("session")
	op.Return()

	// class Click implements OnClickListener { Main outer;
	//   void onClick(v) { outer.session.use(); } }   // the use
	click := b.Class("qs/Click", framework.Object, framework.OnClickListener)
	click.Field("outer", "qs/Main")
	onClick := click.Method("onClick", 1)
	outer := onClick.GetThis("outer")
	session := onClick.GetField(outer, "qs/Main", "session")
	onClick.Use(session, "qs/V")
	onClick.Return()

	pkg, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	res, err := nadroid.Analyze(pkg, nadroid.Options{
		Validate: true,
		Explore:  explore.Options{MaxSchedules: 2000},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("modeled %d entry callbacks, %d posted callbacks, %d threads\n",
		res.Model.Stats().EC, res.Model.Stats().PC, res.Model.Stats().T)
	fmt.Printf("potential UAFs %d -> after sound filters %d -> after unsound filters %d\n\n",
		res.Stats.Potential, res.Stats.AfterSound, res.Stats.AfterUnsound)
	fmt.Print(res.Report)

	fmt.Printf("\ndynamic validation confirmed %d harmful UAF(s):\n", len(res.Harmful))
	for _, w := range res.Harmful {
		wit, ok := explore.ValidateWarning(pkg, res.Model, w, explore.Options{MaxSchedules: 2000})
		if ok {
			fmt.Printf("  %s — witness: %v\n", w.Field, wit.NPE)
		}
	}
}
