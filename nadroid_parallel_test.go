// nadroid_parallel_test.go is the acceptance test for the parallel
// detection core: a full pipeline run must produce byte-identical
// output — warning sets, filter attribution, report text — for any
// worker count.
package nadroid_test

import (
	"context"
	"reflect"
	"testing"

	"nadroid"
	"nadroid/internal/corpus"
	"nadroid/internal/explore"
	"nadroid/internal/fingerprint"
)

// runWorkers runs the full pipeline (with validation) on one corpus app
// at a given worker count.
func runWorkers(t *testing.T, app string, workers int) *nadroid.Result {
	t.Helper()
	a, ok := corpus.ByName(app)
	if !ok {
		t.Fatalf("%s missing from corpus", app)
	}
	res, err := nadroid.AnalyzeContext(context.Background(), a.Build(), nadroid.Options{
		Workers:  workers,
		Validate: true,
		Explore:  explore.Options{MaxSchedules: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPipelineParallelMatchesSequential(t *testing.T) {
	apps := []string{"ConnectBot", "Mms", "K9Mail"}
	if testing.Short() {
		apps = apps[:1] // ConnectBot alone exercises every parallel path
	}
	for _, app := range apps {
		seq := runWorkers(t, app, 1)
		for _, workers := range []int{2, 8} {
			par := runWorkers(t, app, workers)

			if !reflect.DeepEqual(par.Stats, seq.Stats) {
				t.Errorf("%s workers=%d: filter stats differ:\n got %+v\nwant %+v", app, workers, par.Stats, seq.Stats)
			}
			if got, want := par.Report.CSV(), seq.Report.CSV(); got != want {
				t.Errorf("%s workers=%d: report CSV differs:\n got %s\nwant %s", app, workers, got, want)
			}
			if got, want := par.Report.String(), seq.Report.String(); got != want {
				t.Errorf("%s workers=%d: report text differs", app, workers)
			}
			if len(par.Detection.Warnings) != len(seq.Detection.Warnings) {
				t.Fatalf("%s workers=%d: warning count %d != %d", app, workers,
					len(par.Detection.Warnings), len(seq.Detection.Warnings))
			}
			// fingerprint.Snap captures everything filters may touch on a
			// warning: the stable identity, surviving pairs, and per-pair
			// filter attribution.
			for i := range seq.Detection.Warnings {
				got := fingerprint.Snap(par.Detection.Model, par.Detection.Warnings[i])
				want := fingerprint.Snap(seq.Detection.Model, seq.Detection.Warnings[i])
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s workers=%d: warning %d differs:\n got %+v\nwant %+v", app, workers, i, got, want)
				}
			}
			gotHarmful := make([]string, 0, len(par.Harmful))
			for _, w := range par.Harmful {
				gotHarmful = append(gotHarmful, w.Key())
			}
			wantHarmful := make([]string, 0, len(seq.Harmful))
			for _, w := range seq.Harmful {
				wantHarmful = append(wantHarmful, w.Key())
			}
			if !reflect.DeepEqual(gotHarmful, wantHarmful) {
				t.Errorf("%s workers=%d: harmful set differs:\n got %v\nwant %v", app, workers, gotHarmful, wantHarmful)
			}
		}
	}
}
