package nadroid

import (
	"fmt"
	"sort"
	"strings"

	"nadroid/internal/detect"
	"nadroid/internal/evidence"
	"nadroid/internal/explore"
	"nadroid/internal/filters"
	"nadroid/internal/fingerprint"
	"nadroid/internal/pointsto"
	"nadroid/internal/race"
	"nadroid/internal/uaf"
)

// assembleEvidence builds the per-warning provenance records after the
// pipeline finishes: the Datalog derivation of the first racy pair
// (from the shared engine, running in provenance mode), the aliasing
// chain of the racing accesses, the filter trail, and the validation
// witness. Every UAF warning gets a record — killed warnings carry the
// trail that killed them.
func assembleEvidence(app string, dc *detect.Context, res *Result, trail *filters.Trail, vals []explore.Validation) map[string]*evidence.Evidence {
	d := res.Detection
	out := make(map[string]*evidence.Evidence, len(d.Warnings))

	categories := make(map[string]string)
	for _, e := range res.Report.Entries {
		categories[e.Warning.Key()] = e.Category.String()
	}
	witnesses := make(map[*uaf.Warning]*explore.Witness)
	for _, v := range vals {
		if v.Harmful && v.Witness != nil {
			witnesses[v.Warning] = v.Witness
		}
	}

	for _, w := range d.Warnings {
		fp := fingerprint.Warning(d.Model, w)
		ev := &evidence.Evidence{
			Fingerprint: string(fp),
			Detector:    "uaf",
			App:         app,
			Field:       w.Field.String(),
			Use:         w.Use.String(),
			Free:        w.Free.String(),
			Category:    categories[w.Key()],
			Alive:       w.Alive(),
		}
		if len(w.Races) > 0 {
			p := w.Races[0]
			ev.Derivation = dc.Engine.Why("Racy", dc.Engine.IntSym('a', p.A), dc.Engine.IntSym('a', p.B))
			ev.Aliasing = aliasingChain(dc, d, p)
		}
		if trail != nil {
			ev.Filters = trail.For(w.Key())
		}
		if wit := witnesses[w]; wit != nil {
			ev.Witness = &evidence.Witness{
				Schedule:            wit.Schedule,
				NPE:                 wit.NPE.String(),
				OpaqueBranchesTaken: wit.OpaqueBranchesTaken,
				Executions:          wit.Executions,
			}
		}
		out[string(fp)] = ev
	}
	return out
}

// aliasingChain explains why the two accesses of a racy pair touch the
// same memory: the abstract objects each side may point to, their
// intersection, and the escape status that let the pair race.
func aliasingChain(dc *detect.Context, d *uaf.Detection, p race.Pair) []string {
	use, free := d.AccessFor(p.A), d.AccessFor(p.B)
	if use.Static || free.Static {
		return []string{fmt.Sprintf(
			"static field %s: both accesses share global storage (always thread-escaping)", use.Field)}
	}
	var out []string
	out = append(out,
		fmt.Sprintf("use  %s on thread %d may point to %s", use.Instr, use.Thread, describeObjs(dc, use.Objs)),
		fmt.Sprintf("free %s on thread %d may point to %s", free.Instr, free.Thread, describeObjs(dc, free.Objs)))
	shared := intersectObjs(use.Objs, free.Objs)
	if len(shared) == 0 {
		out = append(out, "no shared abstract object (race arises through distinct aliases)")
		return out
	}
	var escaped, local []string
	for _, o := range shared {
		name := objName(dc, o)
		if dc.Engine.Has("Esc", dc.Engine.IntSym('h', int(o))) {
			escaped = append(escaped, name)
		} else {
			local = append(local, name)
		}
	}
	if len(escaped) > 0 {
		out = append(out, fmt.Sprintf("shared object(s) %s escape their creating thread — the pair can race",
			strings.Join(escaped, ", ")))
	}
	if len(local) > 0 {
		out = append(out, fmt.Sprintf("shared object(s) %s stay thread-local", strings.Join(local, ", ")))
	}
	return out
}

func describeObjs(dc *detect.Context, objs []pointsto.ObjID) string {
	if len(objs) == 0 {
		return "(nothing)"
	}
	parts := make([]string, len(objs))
	for i, o := range objs {
		parts[i] = objName(dc, o)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func objName(dc *detect.Context, o pointsto.ObjID) string {
	obj := dc.Model.PTS.Obj(o)
	if obj.Class != "" {
		return fmt.Sprintf("h%d (%s at %s)", int(o), obj.Class, obj.Site)
	}
	return fmt.Sprintf("h%d", int(o))
}

func intersectObjs(a, b []pointsto.ObjID) []pointsto.ObjID {
	set := make(map[pointsto.ObjID]bool, len(a))
	for _, o := range a {
		set[o] = true
	}
	var out []pointsto.ObjID
	for _, o := range b {
		if set[o] {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EvidenceFor returns the evidence record for a fingerprint, matching
// both full fingerprints and unambiguous prefixes (like git object
// names). ok is false when provenance was off or nothing matches.
func (r *Result) EvidenceFor(fp string) (*evidence.Evidence, bool) {
	if r.Evidence == nil || fp == "" {
		return nil, false
	}
	if ev, ok := r.Evidence[fp]; ok {
		return ev, true
	}
	var match *evidence.Evidence
	for k, ev := range r.Evidence {
		if strings.HasPrefix(k, fp) {
			if match != nil {
				return nil, false // ambiguous prefix
			}
			match = ev
		}
	}
	return match, match != nil
}
