package nadroid

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"nadroid/internal/apk"
	"nadroid/internal/dexasm"
	"nadroid/internal/escape"
	"nadroid/internal/explore"
	"nadroid/internal/fingerprint"
	"nadroid/internal/ircache"
	"nadroid/internal/obs"
	"nadroid/internal/store"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// This file wires the two derived caches into the pipeline:
//
//   - the IR cold-start cache (internal/ircache): with Options.Store,
//     Options.IRCache, and Options.IRDigest set, AnalyzeContext loads
//     the parsed program + threadified model + solved points-to state
//     from the store instead of re-modeling, and AnalyzeSource skips
//     dexasm parsing entirely on a hit;
//   - the witness cache (store.WitnessEntry): validation outcomes are
//     keyed by IR digest + warning fingerprint + validation options +
//     detector set, so re-validating a persisting warning is a file
//     read, not a schedule sweep.
//
// Both caches are behavior-transparent: a hit must produce the same
// Result as the cold path, and any corrupt entry falls back to the
// cold path with a logged skip.

// AnalyzeSource analyzes an application given as dexasm source text. It
// is the warm-start entry: the IR digest is computed from the source,
// and when the store already holds a cold-start blob for it the dexasm
// parse and the modeling phase are both skipped. Cold runs parse, then
// delegate to AnalyzeContext (which writes the blob through the store).
func AnalyzeSource(ctx context.Context, src string, opts Options) (*Result, error) {
	if opts.IRDigest == "" {
		opts.IRDigest = store.IRDigest(src)
	}
	if dec := loadIRCache(ctx, opts); dec != nil {
		return analyze(ctx, dec.Pkg, dec.Model, dec.Escape, opts)
	}
	opts.irProbed = true
	pkg, err := dexasm.Parse(src)
	if err != nil {
		return nil, err
	}
	return AnalyzeContext(ctx, pkg, opts)
}

// irCacheEnabled reports whether the cold-start cache may be consulted.
func irCacheEnabled(opts Options) bool {
	return opts.Store != nil && opts.IRCache && opts.IRDigest != ""
}

// loadIRCache tries the cold-start cache; nil means miss (or disabled),
// and a corrupt blob is a logged miss so the cold path rebuilds it.
func loadIRCache(ctx context.Context, opts Options) *ircache.Decoded {
	if !irCacheEnabled(opts) || opts.irProbed {
		return nil
	}
	name := ircache.Name(opts.IRDigest, normalizeK(opts.K))
	blob, ok := opts.Store.GetIRCache(name)
	if !ok {
		obs.Add(ctx, "ircache_misses", 1)
		return nil
	}
	dec, err := ircache.Decode(blob)
	if err != nil {
		obs.Logger(ctx).Warn("ir cache: skipping corrupt entry", "entry", name, "error", err)
		obs.Add(ctx, "ircache_misses", 1)
		return nil
	}
	obs.Add(ctx, "ircache_hits", 1)
	return dec
}

// saveIRCache writes the cold-start blob after a cold run. It is called
// once the detection context exists, so the blob carries the solved
// escape facts alongside the parsed IR and the model. Failures only
// log: the cache is an accelerator, never a correctness dependency.
func saveIRCache(ctx context.Context, pkg *apk.Package, model *threadify.Model, esc *escape.Result, opts Options) {
	if !irCacheEnabled(opts) {
		return
	}
	name := ircache.Name(opts.IRDigest, normalizeK(opts.K))
	if err := opts.Store.PutIRCache(name, ircache.Encode(pkg, model, esc)); err != nil {
		obs.Logger(ctx).Warn("ir cache: write failed", "entry", name, "error", err)
	}
}

// normalizeK mirrors the modeling default (threadify applies K=2 when
// unset) so "unset" and "2" share one cache entry.
func normalizeK(k int) int {
	if k <= 0 {
		return 2
	}
	return k
}

// validationOptionsKey renders every option that can change a
// validation outcome. Workers is deliberately absent (results are
// worker-count invariant), as is the Conflicts pruner (the pruned
// search finds the same witness set as the exhaustive one — locked by
// the differential test).
func validationOptionsKey(k int, eopts explore.Options) string {
	i := eopts.Interp
	return fmt.Sprintf("k=%d;max_schedules=%d;both=%t;max_steps=%d;ui=%d;resume=%d;opaque=%t",
		normalizeK(k), eopts.MaxSchedules, eopts.BothBranchPolicies,
		i.MaxSteps, i.MaxUIFires, i.MaxResumeCycles, i.TakeOpaqueBranches)
}

// validateWithCache runs the validation sweep through the witness
// cache: hits replay their stored outcome, misses explore and persist.
// Results are in input order and identical to an uncached sweep.
func validateWithCache(ctx context.Context, pkg *apk.Package, model *threadify.Model, alive []*uaf.Warning, opts Options, eopts explore.Options, detectors []string) ([]explore.Validation, error) {
	if opts.Store == nil || opts.IRDigest == "" {
		return explore.ValidateAllDetailed(ctx, pkg, model, alive, eopts)
	}
	log := obs.Logger(ctx)
	names := append([]string(nil), detectors...)
	sort.Strings(names)
	optKey := validationOptionsKey(opts.K, eopts)

	keys := make([]string, len(alive))
	fps := make([]string, len(alive))
	vals := make([]explore.Validation, len(alive))
	var missIdx []int
	var misses []*uaf.Warning
	hits := 0
	for i, w := range alive {
		fps[i] = string(fingerprint.Warning(model, w))
		keys[i] = store.WitnessKey(opts.IRDigest, fps[i], optKey, names)
		e, err := opts.Store.GetWitness(keys[i])
		if err != nil {
			log.Warn("witness cache: skipping corrupt entry, re-exploring", "error", err)
		}
		if e == nil {
			missIdx = append(missIdx, i)
			misses = append(misses, w)
			continue
		}
		hits++
		v := explore.Validation{Warning: w, Harmful: e.Harmful}
		if e.Harmful {
			wit := &explore.Witness{
				Schedule:            e.Schedule,
				OpaqueBranchesTaken: e.OpaqueBranches,
				Executions:          e.Executions,
			}
			if len(e.NPE) > 0 {
				if uerr := json.Unmarshal(e.NPE, &wit.NPE); uerr != nil {
					log.Warn("witness cache: unreadable NPE record", "error", uerr)
				}
			}
			v.Witness = wit
		}
		vals[i] = v
	}
	obs.Add(ctx, "validation_witness_cache_hits", int64(hits))
	obs.Add(ctx, "validation_witness_cache_misses", int64(len(missIdx)))

	if len(misses) == 0 {
		return vals, nil
	}
	fresh, ferr := explore.ValidateAllDetailed(ctx, pkg, model, misses, eopts)
	for j, v := range fresh {
		i := missIdx[j]
		vals[i] = v
		e := &store.WitnessEntry{
			IRDigest:    opts.IRDigest,
			Fingerprint: fps[i],
			Harmful:     v.Harmful,
			CreatedAt:   time.Now().UTC(),
		}
		if v.Witness != nil {
			e.Schedule = v.Witness.Schedule
			e.OpaqueBranches = v.Witness.OpaqueBranchesTaken
			e.Executions = v.Witness.Executions
			if npe, merr := json.Marshal(v.Witness.NPE); merr == nil {
				e.NPE = npe
			}
		}
		if perr := opts.Store.PutWitness(keys[i], e); perr != nil {
			log.Warn("witness cache: write failed", "error", perr)
		}
	}
	if ferr != nil {
		return vals[:0], ferr
	}
	return vals, nil
}
