package nadroid_test

import (
	"context"
	"testing"

	"nadroid"
	"nadroid/internal/corpus"
	"nadroid/internal/detect"
	"nadroid/internal/explore"
	"nadroid/internal/filters"
	"nadroid/internal/obs"
	"nadroid/internal/threadify"
)

// TestPrunedExplorerMatchesExhaustive is the differential gate on the
// partial-order reduction: for every validation-bearing corpus app, the
// pruned explorer must classify every warning exactly as the exhaustive
// explorer does (same harmful set, witness presence agreeing), at both
// workers=1 and workers=8, while actually pruning schedules.
func TestPrunedExplorerMatchesExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	apps := []string{"ConnectBot", "Aard", "QKSMS", "Music"}
	var totalExecuted, totalPruned int64
	for _, name := range apps {
		app, ok := corpus.ByName(name)
		if !ok {
			t.Fatalf("corpus app %s missing", name)
		}
		pkg := app.Build()
		model, err := threadify.Build(pkg, threadify.Options{})
		if err != nil {
			t.Fatal(err)
		}
		dc := detect.BuildContext(context.Background(), name, model, detect.Options{})
		dres, err := detect.Run(context.Background(), dc, detect.All())
		if err != nil {
			t.Fatal(err)
		}
		if dres.UAF == nil {
			t.Fatalf("%s: no uaf detection", name)
		}
		filters.RunWith(context.Background(), dres.UAF, filters.RunConfig{MHB: dc.MHB})
		alive := dres.UAF.Alive()
		if len(alive) == 0 {
			continue
		}

		base := explore.Options{MaxSchedules: 3000, Workers: 1}
		exhaustive, err := explore.ValidateAllDetailed(context.Background(), pkg, model, alive, base)
		if err != nil {
			t.Fatal(err)
		}

		conflicts := explore.NewConflicts(model, dc.Accesses)
		for _, workers := range []int{1, 8} {
			popts := base
			popts.Workers = workers
			popts.Conflicts = conflicts
			m := obs.NewMetrics()
			ctx := obs.WithMetrics(context.Background(), m)
			pruned, err := explore.ValidateAllDetailed(ctx, pkg, model, alive, popts)
			if err != nil {
				t.Fatal(err)
			}
			if len(pruned) != len(exhaustive) {
				t.Fatalf("%s workers=%d: %d pruned results vs %d exhaustive", name, workers, len(pruned), len(exhaustive))
			}
			for i := range exhaustive {
				e, p := exhaustive[i], pruned[i]
				if e.Harmful != p.Harmful {
					t.Errorf("%s workers=%d warning %s: exhaustive harmful=%t, pruned harmful=%t",
						name, workers, e.Warning.Field, e.Harmful, p.Harmful)
				}
				if (e.Witness != nil) != (p.Witness != nil) {
					t.Errorf("%s workers=%d warning %s: witness presence differs", name, workers, e.Warning.Field)
				}
			}
			totalExecuted += m.Get("validation_schedules_executed")
			totalPruned += m.Get("validation_schedules_pruned")
		}
	}
	if totalPruned == 0 {
		t.Errorf("partial-order reduction pruned 0 schedules over %d executed; conflict summaries are not biting", totalExecuted)
	}
	t.Logf("pruned %d schedules, executed %d (prune ratio %.1f%%)",
		totalPruned, totalExecuted, 100*float64(totalPruned)/float64(totalPruned+totalExecuted))
}

// TestValidationCountersExported asserts the analyze pipeline exports
// the new validation counter families. Aard is used because its
// searches are deep enough for the partial-order reduction to collapse
// classes (ConnectBot's witnesses surface within a schedule or two, so
// there is nothing to prune).
func TestValidationCountersExported(t *testing.T) {
	app, _ := corpus.ByName("Aard")
	m := obs.NewMetrics()
	ctx := obs.WithMetrics(context.Background(), m)
	if _, err := nadroid.AnalyzeContext(ctx, app.Build(), nadroid.Options{
		Validate: true,
		Explore:  explore.Options{MaxSchedules: 500},
	}); err != nil {
		t.Fatal(err)
	}
	if m.Get("validation_schedules_executed") <= 0 {
		t.Errorf("validation_schedules_executed = %d, want > 0", m.Get("validation_schedules_executed"))
	}
	if m.Get("validation_schedules_pruned") <= 0 {
		t.Errorf("validation_schedules_pruned = %d, want > 0", m.Get("validation_schedules_pruned"))
	}
}
