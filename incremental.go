package nadroid

import (
	"context"
	"fmt"
	"strings"

	"nadroid/internal/apk"
	"nadroid/internal/escape"
	"nadroid/internal/incr"
	"nadroid/internal/ircache"
	"nadroid/internal/obs"
	"nadroid/internal/pointsto"
	"nadroid/internal/race"
	"nadroid/internal/threadify"
)

// This file wires incremental re-analysis into the pipeline. With
// Options.Store, Options.Incremental, and Options.IRDigest set, a run
// whose cold-start blob misses (the app changed) diffs the parsed
// program against the nearest stored base run instead of recomputing
// everything:
//
//   - method-level IR diffing (internal/incr) classifies every method
//     as unchanged/edited/added/removed and digests everything each
//     reused partition depends on;
//   - the points-to snapshot of the base run is restored whenever the
//     solver-visible projection of the program is unchanged;
//   - the escape analysis retracts the fact partitions of changed
//     threads and re-derives only those from deltas on the semi-naive
//     Datalog engine (escape.AnalyzeIncremental);
//   - per-thread access partitions are replayed when their digests
//     match.
//
// Reuse is verification-by-digest: every replayed partition is gated
// by a digest over its exact inputs, so a failed gate (or a corrupt,
// version-skewed, or missing partition) costs a cold recomputation
// with a logged skip — never a divergent result. The correctness
// contract, locked by the mutation-matrix differential suite, is that
// incremental results are byte-identical to cold ones.

// Dispositions reported in Result.Disposition.
const (
	// DispositionCold marks a run computed from scratch.
	DispositionCold = "cold"
	// DispositionWarm marks a run restored from the cold-start blob.
	DispositionWarm = "ircache-warm"
	// DispositionIncremental marks a run that reused at least one
	// partition (points-to snapshot, escape facts, or accesses) from a
	// base run via the diff pipeline.
	DispositionIncremental = "incremental"
)

// incrEnabled reports whether the incremental pipeline may run.
func incrEnabled(opts Options) bool {
	return opts.Store != nil && opts.Incremental && opts.IRDigest != ""
}

// incrRun carries the incremental pipeline's products through the rest
// of analyze: the precollected accesses for the detection context, the
// freshly built partition to persist, and the disposition.
type incrRun struct {
	disposition string
	accesses    []race.Access
	partition   *incr.Partition
}

// anchor is the base run the diff is computed against.
type anchor struct {
	digest    string
	partition *incr.Partition
}

// findAnchor locates the nearest usable base partition: first the
// digests of stored runs for this app (newest first), then a
// modification-time scan of the partition area (library callers
// analyze through the store without persisting runs). Corrupt or
// mismatched partitions are skipped with a log line — a pre-existing
// store from before the partition format simply never anchors, and
// the run falls back cold.
func findAnchor(ctx context.Context, app string, k int, opts Options) *anchor {
	log := obs.Logger(ctx)
	tried := make(map[string]bool)
	try := func(digest string) *anchor {
		if digest == "" || tried[digest] {
			return nil
		}
		tried[digest] = true
		blob, ok := opts.Store.GetIncr(incr.Name(digest, k))
		if !ok {
			return nil
		}
		p, err := incr.Decode(blob)
		if err != nil {
			log.Warn("incremental: skipping corrupt partition", "digest", digest, "error", err)
			obs.Add(ctx, "incr_partition_skips", 1)
			return nil
		}
		if p.App != app || p.K != k {
			return nil
		}
		return &anchor{digest: digest, partition: p}
	}
	for _, run := range opts.Store.Runs(app) {
		if a := try(run.IRDigest); a != nil {
			return a
		}
	}
	suffix := fmt.Sprintf("-v%d-k%d.incr", incr.Version, k)
	for _, name := range opts.Store.IncrNames() {
		if !strings.HasSuffix(name, suffix) {
			continue
		}
		digest := name[:len(name)-len(suffix)]
		if a := try(digest); a != nil {
			return a
		}
	}
	return nil
}

// loadBaseSnapshot restores the base run's solved points-to state from
// its cold-start blob, for reuse when the solver-visible projection is
// unchanged. Any miss or decode failure just means the solve runs
// fresh.
func loadBaseSnapshot(ctx context.Context, digest string, k int, opts Options) *pointsto.Snapshot {
	if !opts.IRCache {
		return nil
	}
	blob, ok := opts.Store.GetIRCache(ircache.Name(digest, k))
	if !ok {
		return nil
	}
	dec, err := ircache.Decode(blob)
	if err != nil {
		obs.Logger(ctx).Warn("incremental: base blob corrupt, solving fresh", "digest", digest, "error", err)
		return nil
	}
	return dec.Model.PTS.Snapshot()
}

// maxDirtyFraction is the cutoff beyond which delta-driven escape
// evaluation stops paying: with most partitions retracted, the
// whole-relation rebuild (AnalyzeDetailed) is cheaper than retraction
// bookkeeping.
const maxDirtyFraction = 0.5

// prepareIncremental is the incremental modeling phase: it builds the
// threadified model (restoring the base points-to snapshot when its
// gate passes), then assembles the escape result and the access set
// from a mix of replayed base partitions and fresh delta computation.
// It always returns a usable (model, escape, accesses) triple — with
// no anchor every part is computed cold — plus the new partition for
// persistResult to store. The returned escape result and access set
// are identical to what a cold run computes; only the work differs.
func prepareIncremental(ctx context.Context, pkg *apk.Package, opts Options) (*threadify.Model, *escape.Result, *incrRun, error) {
	log := obs.Logger(ctx)
	k := normalizeK(opts.K)

	_, span := obs.Start(ctx, "incr.digest")
	methods := incr.MethodDigests(pkg.Program)
	structure := incr.StructureDigest(pkg)
	ptsProj := incr.PtsProjection(pkg, k)
	span.End()

	base := findAnchor(ctx, pkg.Name, k, opts)
	var diff incr.Diff
	if base != nil {
		diff = incr.DiffMethods(base.partition.Methods, methods)
		obs.Add(ctx, "incr_methods_changed", int64(diff.Changed()))
		log.Info("incremental: anchored", "base", base.digest[:12],
			"unchanged", diff.Unchanged, "edited", diff.Edited,
			"added", diff.Added, "removed", diff.Removed)
	}

	// Points-to: restore the base snapshot when the solver-visible
	// projection (and K) is unchanged, else solve fresh.
	topts := threadify.Options{K: opts.K}
	ptsReused := false
	if base != nil && base.partition.PtsProj == ptsProj {
		if snap := loadBaseSnapshot(ctx, base.digest, k, opts); snap != nil {
			topts.Presolved = snap
			ptsReused = true
		}
	}
	model, err := threadify.BuildContext(ctx, pkg, topts)
	if err != nil {
		return nil, nil, nil, err
	}
	if !ptsReused {
		obs.Add(ctx, "incr_pointsto_nodes_resolved", int64(model.PTS.Stats().MCtxs))
	}

	_, span = obs.Start(ctx, "incr.thread-sigs")
	heap := incr.HeapDigest(model.PTS)
	sigs := make([]incr.ThreadSig, len(model.Threads))
	for t := range model.Threads {
		sigs[t] = incr.ThreadSignature(model, t, methods)
	}
	span.End()

	baseThreads := make(map[int]*incr.Thread)
	structOK := false
	heapOK := false
	if base != nil {
		structOK = base.partition.Structure == structure
		heapOK = structOK && base.partition.Heap == heap
		for i := range base.partition.Threads {
			t := &base.partition.Threads[i]
			baseThreads[t.ID] = t
		}
	}

	// Escape: replay the Reach partitions of threads whose root digest
	// matches under an unchanged heap, retract the rest, and re-derive
	// only the dirty threads from deltas.
	var esc *escape.Result
	var detail *escape.Detail
	escReused := false
	if heapOK {
		in := escape.IncrementalInput{
			CleanReach: make(map[int][]pointsto.ObjID),
			StaleReach: make(map[int][]pointsto.ObjID),
			Statics:    incr.I32ToObjs(base.partition.Statics),
			Workers:    opts.Workers,
		}
		nonDummy := 0
		for t := range model.Threads {
			if sigs[t].Dummy {
				continue
			}
			nonDummy++
			bt := baseThreads[t]
			if bt != nil && !bt.Dummy && bt.RootDigest == sigs[t].Root {
				in.CleanReach[t] = incr.I32ToObjs(bt.Reach)
				continue
			}
			in.Dirty = append(in.Dirty, t)
			if bt != nil && !bt.Dummy {
				in.StaleReach[t] = incr.I32ToObjs(bt.Reach)
			}
		}
		if nonDummy > 0 && float64(len(in.Dirty)) <= maxDirtyFraction*float64(nonDummy) {
			_, span = obs.Start(ctx, "incr.escape-delta")
			var st escape.IncrementalStats
			esc, detail, st = escape.AnalyzeIncremental(model, in)
			span.SetAttr("dirty", len(in.Dirty))
			span.SetAttr("clean", len(in.CleanReach))
			span.End()
			obs.Add(ctx, "incr_facts_retracted", int64(st.Retracted))
			obs.Add(ctx, "incr_facts_asserted", int64(st.Asserted))
			escReused = true
		} else {
			log.Info("incremental: dirty fraction too high, rebuilding escape",
				"dirty", len(in.Dirty), "threads", nonDummy)
		}
	}
	if esc == nil {
		_, span = obs.Start(ctx, "escape.analyze")
		esc, detail = escape.AnalyzeDetailed(model, escape.Options{Workers: opts.Workers})
		span.End()
	}

	// Accesses: replay per-thread partitions whose access digest
	// matches (body digests included) under an unchanged structure.
	_, span = obs.Start(ctx, "incr.accesses")
	perThread := make([][]race.Access, len(model.Threads))
	accReusedThreads := 0
	for t := range model.Threads {
		bt := baseThreads[t]
		if structOK && bt != nil && !bt.Dummy && !sigs[t].Dummy && bt.AccDigest == sigs[t].Acc {
			perThread[t] = incr.ToRaceAccesses(t, bt.Acc)
			accReusedThreads++
			continue
		}
		perThread[t] = race.CollectThreadAccesses(model, t)
	}
	var accesses []race.Access
	for _, part := range perThread {
		for _, a := range part {
			a.ID = len(accesses)
			accesses = append(accesses, a)
		}
	}
	span.SetAttr("reused_threads", accReusedThreads)
	span.End()

	part := &incr.Partition{
		App:       pkg.Name,
		K:         k,
		Methods:   methods,
		Structure: structure,
		PtsProj:   ptsProj,
		Heap:      heap,
		Statics:   incr.ObjsToI32(detail.Statics),
	}
	for t := range model.Threads {
		part.Threads = append(part.Threads, incr.Thread{
			ID:         t,
			Dummy:      sigs[t].Dummy,
			RootDigest: sigs[t].Root,
			AccDigest:  sigs[t].Acc,
			Reach:      incr.ObjsToI32(detail.Reach[t]),
			Acc:        incr.FromRaceAccesses(perThread[t]),
		})
	}

	inc := &incrRun{disposition: DispositionCold, accesses: accesses, partition: part}
	if ptsReused || escReused || accReusedThreads > 0 {
		inc.disposition = DispositionIncremental
	}
	return model, esc, inc, nil
}

// saveIncrPartition persists the run's fact partition next to its
// cold-start blob; like the blob, it is an accelerator — failures only
// log.
func saveIncrPartition(ctx context.Context, part *incr.Partition, opts Options) {
	if opts.Store == nil || opts.IRDigest == "" {
		return
	}
	name := incr.Name(opts.IRDigest, part.K)
	if err := opts.Store.PutIncr(name, part.Encode()); err != nil {
		obs.Logger(ctx).Warn("incremental: partition write failed", "entry", name, "error", err)
	}
}
