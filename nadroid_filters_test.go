package nadroid_test

import (
	"testing"

	"nadroid"
	"nadroid/internal/corpus"
)

// TestRunFiltersOptionCombinations pins the filter-pipeline stage
// counts on ConnectBot for every meaningful combination of the option
// flags. The absolute numbers come from the seeded corpus (29 potential
// warnings, 13 survivors — the paper's ConnectBot row); the relations
// between rows are what the options contract promises.
func TestRunFiltersOptionCombinations(t *testing.T) {
	app, ok := corpus.ByName("ConnectBot")
	if !ok {
		t.Fatal("missing corpus app")
	}
	cases := []struct {
		name                                string
		opts                                nadroid.Options
		potential, afterSound, afterUnsound int
	}{
		{"default", nadroid.Options{}, 29, 14, 13},
		{"skip-sound", nadroid.Options{SkipSoundFilters: true}, 29, 29, 22},
		{"skip-unsound", nadroid.Options{SkipUnsoundFilters: true}, 29, 14, 14},
		{"skip-both", nadroid.Options{SkipSoundFilters: true, SkipUnsoundFilters: true}, 29, 29, 29},
		{"multi-looper", nadroid.Options{MultiLooper: true}, 29, 25, 19},
		{"multi-looper-sound-only", nadroid.Options{MultiLooper: true, SkipUnsoundFilters: true}, 29, 25, 25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := nadroid.Analyze(app.Build(), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			st := res.Stats
			if st.Potential != tc.potential || st.AfterSound != tc.afterSound || st.AfterUnsound != tc.afterUnsound {
				t.Errorf("stats = %d/%d/%d, want %d/%d/%d",
					st.Potential, st.AfterSound, st.AfterUnsound,
					tc.potential, tc.afterSound, tc.afterUnsound)
			}
			if tc.opts.SkipSoundFilters && st.AfterSound != st.Potential {
				t.Error("skipping sound filters must leave the sound stage untouched")
			}
			if tc.opts.SkipUnsoundFilters && st.AfterUnsound != st.AfterSound {
				t.Error("skipping unsound filters must leave the unsound stage untouched")
			}
			for name := range st.Removed {
				if tc.opts.SkipSoundFilters && (name == "MHB" || name == "IG" || name == "IA") {
					t.Errorf("sound filter %s ran despite SkipSoundFilters", name)
				}
				if tc.opts.SkipUnsoundFilters && name != "MHB" && name != "IG" && name != "IA" {
					t.Errorf("unsound filter %s ran despite SkipUnsoundFilters", name)
				}
			}
		})
	}

	// MultiLooper weakens the IG/IA atomicity assumption, so it can only
	// keep more warnings through the sound stage than the default.
	def, err := nadroid.Analyze(app.Build(), nadroid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := nadroid.Analyze(app.Build(), nadroid.Options{MultiLooper: true})
	if err != nil {
		t.Fatal(err)
	}
	if ml.Stats.AfterSound < def.Stats.AfterSound {
		t.Errorf("multi-looper sound stage kept %d < default's %d",
			ml.Stats.AfterSound, def.Stats.AfterSound)
	}
}
