// nadroid_diff_test.go is the acceptance test for the triage
// subsystem: analyzing an app, mutating it (injecting one artificial
// UAF), and diffing the two stored runs must report exactly the
// injected warning as new and nothing as fixed — the fingerprints of
// every pre-existing warning survive the mutation. A second test runs
// two corpus sweeps persisting concurrently into one store directory
// (the shape of parallel CI shards sharing a result store).
package nadroid_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"nadroid"
	"nadroid/internal/apk"
	"nadroid/internal/corpus"
	"nadroid/internal/dexasm"
	"nadroid/internal/server"
	"nadroid/internal/store"
)

// persistAnalysis runs the pipeline on pkg and writes the run into st
// exactly the way cmd/nadroid -store-dir and nadroid-serve do.
func persistAnalysis(t *testing.T, st *store.Store, pkg *apk.Package, opts server.OptionsWire) *store.Run {
	t.Helper()
	res, err := nadroid.AnalyzeContext(context.Background(), pkg, opts.ToOptions())
	if err != nil {
		t.Fatal(err)
	}
	key := server.ResultKey(dexasm.Format(pkg), opts)
	run, err := server.StoreRun(key, opts, server.EncodeResult(pkg.Name, res), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(run); err != nil {
		t.Fatal(err)
	}
	return run
}

func TestDifferentialFlowEndToEnd(t *testing.T) {
	app, ok := corpus.ByName("Swiftnotes")
	if !ok {
		t.Fatal("Swiftnotes missing from corpus")
	}
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}

	before := persistAnalysis(t, st, app.Build(), server.OptionsWire{})

	// The mutation: the same app with one artificial EC-PC UAF planted.
	injected, sites := app.Spec.BuildInjected([]corpus.InjectionKind{corpus.InjectECPC})
	if len(sites) != 1 {
		t.Fatalf("injected sites = %d, want 1", len(sites))
	}
	after := persistAnalysis(t, st, injected, server.OptionsWire{})
	if after.ID == before.ID {
		t.Fatal("mutated app must land on a different content address")
	}

	d, err := st.Diff(app.Name(), before.ID, after.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Exactly the injected warning is new; nothing is fixed; every
	// pre-existing warning persists under its old fingerprint.
	if len(d.New) != 1 {
		t.Fatalf("new = %d warning(s) %v, want exactly the injected one", len(d.New), d.New)
	}
	if !strings.Contains(d.New[0].Field, sites[0].Field) || !strings.Contains(d.New[0].Field, sites[0].Class) {
		t.Errorf("new warning field = %q, want the injected site %s.%s", d.New[0].Field, sites[0].Class, sites[0].Field)
	}
	if d.New[0].Category != "EC-PC" {
		t.Errorf("new warning category = %q, want EC-PC", d.New[0].Category)
	}
	if len(d.Fixed) != 0 {
		t.Errorf("fixed = %v, want none (the mutation only adds)", d.Fixed)
	}
	if len(d.Persisting) != len(before.Warnings) {
		t.Errorf("persisting = %d, want all %d pre-existing warnings", len(d.Persisting), len(before.Warnings))
	}
	wantFPs := make(map[string]bool, len(before.Warnings))
	for _, w := range before.Warnings {
		wantFPs[w.Fingerprint] = true
	}
	for _, w := range d.Persisting {
		if !wantFPs[w.Fingerprint] {
			t.Errorf("persisting fingerprint %s not in the before-run", w.Fingerprint)
		}
	}

	// Baselining the before-run leaves only the injected warning visible.
	if err := st.PutBaseline(store.BaselineFromRun(before, "pre-mutation review", time.Now())); err != nil {
		t.Fatal(err)
	}
	d2, err := st.Diff(app.Name(), before.ID, after.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.New) != 1 || len(d2.Suppressed) != len(before.Warnings) {
		t.Errorf("baselined diff: new %d suppressed %d, want 1 and %d",
			len(d2.New), len(d2.Suppressed), len(before.Warnings))
	}
}

// TestConcurrentCorpusSweepsPersist: two AnalyzeCorpus sweeps with
// different option sets write into one store directory through
// independent handles at the same time. Run under -race via `make
// check`.
func TestConcurrentCorpusSweepsPersist(t *testing.T) {
	apps := []string{"ToDoList", "Swiftnotes", "PhotoAffix", "ClipStack"}
	dir := t.TempDir()

	sweep := func(opts server.OptionsWire) {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Error(err)
			return
		}
		var work []nadroid.CorpusApp
		for _, name := range apps {
			app, ok := corpus.ByName(name)
			if !ok {
				t.Errorf("%s missing from corpus", name)
				return
			}
			work = append(work, nadroid.CorpusApp{Name: app.Name(), Build: app.Build})
		}
		for _, r := range nadroid.AnalyzeCorpus(work, nadroid.CorpusOptions{Analysis: opts.ToOptions()}) {
			if r.Err != nil {
				t.Errorf("%s: %v", r.App, r.Err)
				continue
			}
			app, _ := corpus.ByName(r.App)
			key := server.ResultKey(dexasm.Format(app.Build()), opts)
			run, err := server.StoreRun(key, opts, server.EncodeResult(r.App, r.Result), time.Now())
			if err == nil {
				err = st.Put(run)
			}
			if err != nil {
				t.Errorf("%s: persist: %v", r.App, err)
			}
		}
	}

	var wg sync.WaitGroup
	for _, opts := range []server.OptionsWire{{}, {SkipUnsoundFilters: true}} {
		wg.Add(1)
		go func(o server.OptionsWire) {
			defer wg.Done()
			sweep(o)
		}(opts)
	}
	wg.Wait()

	fresh, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fresh.Len(), 2*len(apps); got != want {
		t.Errorf("stored runs = %d, want %d (two sweeps x %d apps)", got, want, len(apps))
	}
	if got := len(fresh.Apps()); got != len(apps) {
		t.Errorf("stored apps = %d, want %d", got, len(apps))
	}
	if c := fresh.Counters(); c.LoadErrors != 0 {
		t.Errorf("load errors after concurrent sweeps: %+v", c)
	}
	// Every app now has a default-options and a sound-only run — the
	// diff between them is well-formed.
	for _, name := range apps {
		if _, err := fresh.Diff(name, "", ""); err != nil {
			t.Errorf("diff %s: %v", name, err)
		}
	}
}
