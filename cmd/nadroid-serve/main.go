// Command nadroid-serve runs the nAdroid analysis pipeline as an HTTP
// service: a bounded worker pool drains a FIFO job queue, results are
// memoized in a content-addressed LRU cache, and every job carries a
// cancelable deadline so abandoned requests stop burning CPU. See
// internal/server for the API.
//
// Usage:
//
//	nadroid-serve [-addr :8372] [-workers 4] [-queue 64] [-cache 256] [-timeout 2m]
//	              [-store-dir DIR] [-store-max-runs 32] [-store-max-age 720h]
//
// With -store-dir, every completed analysis is persisted to a
// content-addressed on-disk store: restarts warm-start the result cache
// from it, GET /v1/apps/{app}/runs lists an app's analysis history, and
// GET /v1/apps/{app}/diff reports the new/fixed/persisting warning
// delta between runs (suppressing baselined warnings).
//
// Example session:
//
//	curl -s localhost:8372/v1/apps
//	curl -s -X POST localhost:8372/v1/analyze -d '{"app":"ConnectBot"}'
//	curl -s -X POST 'localhost:8372/v1/analyze?async=true' -d '{"app":"FireFox","options":{"validate":true}}'
//	curl -s localhost:8372/v1/jobs/job-00000002
//	curl -s localhost:8372/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nadroid/internal/server"
	"nadroid/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8372", "listen address")
		workers   = flag.Int("workers", 4, "concurrent analysis workers")
		pipeline  = flag.Int("pipeline-workers", 0, "per-job pipeline worker bound (0 = NumCPU/workers)")
		queue     = flag.Int("queue", 64, "job queue depth (FIFO)")
		cache     = flag.Int("cache", 256, "result cache capacity (entries, LRU)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "default per-job deadline (0 disables)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		pprofFlag = flag.Bool("pprof", false, "expose the Go profiler at /debug/pprof/ (do not enable on untrusted networks)")
		logJSON   = flag.Bool("log-json", false, "emit logs as JSON lines instead of text")
		storeDir  = flag.String("store-dir", "", "persist analysis runs under this directory (enables run history + diff endpoints)")
		storeMax  = flag.Int("store-max-runs", 32, "runs kept per app by store GC (0 = unlimited)")
		storeAge  = flag.Duration("store-max-age", 30*24*time.Hour, "store GC expires runs older than this (0 = never)")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{
			MaxRunsPerApp: *storeMax,
			MaxAge:        *storeAge,
			Logger:        logger,
		})
		if err != nil {
			logger.Error("opening store", "dir", *storeDir, "error", err)
			os.Exit(1)
		}
		if removed := st.GC(time.Now()); removed > 0 {
			logger.Info("store gc", "removed", removed)
		}
		// Long-lived services keep the store bounded without restarts.
		go func() {
			for range time.Tick(time.Hour) {
				st.GC(time.Now())
			}
		}()
	}

	srv := server.New(server.Config{
		Workers:         *workers,
		PipelineWorkers: *pipeline,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		DefaultTimeout:  *timeout,
		EnablePprof:     *pprofFlag,
		Logger:          logger,
		Store:           st,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue,
		"cache", *cache, "pprof", *pprofFlag)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	case sig := <-sigc:
		logger.Info("draining in-flight jobs", "signal", sig.String(), "budget", drain.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	_ = httpSrv.Shutdown(ctx) // stop intake first
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "nadroid-serve: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	logger.Info("drained; bye")
}
