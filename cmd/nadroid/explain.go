// explain.go implements `nadroid explain`: the CLI surface of warning
// provenance. An analysis run with -provenance -store-dir persists an
// evidence record per warning (Datalog derivation, aliasing chain,
// filter trail, validation witness); explain retrieves one by
// fingerprint — full or unique prefix — and renders it.
//
//	nadroid explain -store-dir DIR [-app NAME] [-json] FINGERPRINT
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nadroid/internal/evidence"
)

// runExplain is the `nadroid explain` entry point.
func runExplain(args []string) {
	fs := flag.NewFlagSet("nadroid explain", flag.ExitOnError)
	var (
		storeDir = fs.String("store-dir", "", "analysis store directory (required)")
		appName  = fs.String("app", "", "restrict the search to one app's runs (default: all apps)")
		jsonOut  = fs.Bool("json", false, "emit the raw evidence record as JSON")
	)
	fs.Parse(args)
	fp := fs.Arg(0)
	if fp == "" {
		fatalf("explain: usage: nadroid explain -store-dir DIR [-app NAME] [-json] FINGERPRINT")
	}
	st := mustOpenStore(*storeDir)
	raw, runID, ok := st.EvidenceFor(*appName, fp)
	if !ok {
		fatalf("explain: no evidence for warning %q (analyze with -provenance -store-dir first; a short prefix may also be ambiguous)", fp)
	}
	if *jsonOut {
		var pretty json.RawMessage = raw
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(pretty); err != nil {
			fatalf("explain: encode: %v", err)
		}
		return
	}
	var ev evidence.Evidence
	if err := json.Unmarshal(raw, &ev); err != nil {
		fatalf("explain: stored evidence unreadable: %v", err)
	}
	fmt.Printf("run %s\n", shortID(runID))
	fmt.Print(ev.Render())
}
