// Command nadroid analyzes one application package — a .dexasm file or a
// built-in corpus app — and reports potential use-after-free ordering
// violations, mirroring the paper's tool: model (threadify), detect
// (Chord-style race detection), filter (§6), and optionally validate
// survivors with the schedule explorer.
//
// Usage:
//
//	nadroid [flags] app.dexasm
//	nadroid [flags] -app ConnectBot
//	nadroid -list
//	nadroid -dump ConnectBot > connectbot.dexasm
//
// Triage subcommands (see triage.go): analyses persisted with
// -store-dir accumulate a per-app history that `nadroid diff` compares
// by stable warning fingerprint and `nadroid baseline write` marks as
// reviewed:
//
//	nadroid -store-dir .nadroid-store -app ConnectBot
//	nadroid baseline write -store-dir .nadroid-store -app ConnectBot
//	nadroid diff -store-dir .nadroid-store -app ConnectBot
//
// Analyses run with -provenance additionally persist per-warning
// evidence records (Datalog derivation, aliasing chain, filter trail,
// validation witness) that `nadroid explain FINGERPRINT` renders
// (see explain.go).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"nadroid"
	"nadroid/internal/apk"
	"nadroid/internal/corpus"
	"nadroid/internal/detect"
	"nadroid/internal/deva"
	"nadroid/internal/dexasm"
	"nadroid/internal/dynrace"
	"nadroid/internal/explore"
	"nadroid/internal/interp"
	"nadroid/internal/nosleep"
	"nadroid/internal/obs"
	"nadroid/internal/server"
	"nadroid/internal/store"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "diff":
			runDiff(os.Args[2:])
			return
		case "baseline":
			runBaseline(os.Args[2:])
			return
		case "explain":
			runExplain(os.Args[2:])
			return
		}
	}
	var (
		appName   = flag.String("app", "", "analyze a built-in corpus app by name")
		corpusAll = flag.Bool("corpus", false, "analyze every built-in corpus app (fan-out bounded by -workers)")
		list      = flag.Bool("list", false, "list built-in corpus apps and exit")
		dump      = flag.String("dump", "", "print a corpus app as dexasm and exit")
		k         = flag.Int("k", 2, "points-to object-sensitivity depth")
		validate  = flag.Bool("validate", false, "dynamically validate surviving warnings (schedule exploration)")
		budget    = flag.Int("budget", 3000, "schedule budget per warning when validating")
		noUnsound = flag.Bool("sound-only", false, "apply only the sound filters (MHB, IG, IA)")
		csv       = flag.Bool("csv", false, "emit the report as CSV (ResultAnalysis.csv rows)")
		jsonOut   = flag.Bool("json", false, "emit the report and timing as JSON (the nadroid-serve wire format)")
		explain   = flag.Bool("explain", false, "with -validate: replay each witness as an event narrative")
		noSleep   = flag.Bool("nosleep", false, "also run the §9 no-sleep energy-bug detector")
		detFlag   = flag.String("detectors", "", "comma-separated detector names to run (default: all; see -list-detectors)")
		detList   = flag.Bool("list-detectors", false, "list registered bug-family detectors and exit")
		devaMode  = flag.Bool("deva", false, "run the DEvA baseline instead of nAdroid")
		dynMode   = flag.Bool("dynamic", false, "run the trace-based dynamic detector (one default-schedule execution)")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON of the run to FILE (chrome://tracing)")
		traceTree = flag.Bool("tracetree", false, "print the span tree to stderr after the run")
		verbose   = flag.Bool("v", false, "structured phase logging to stderr")
		workers   = flag.Int("workers", 0, "pipeline worker pool bound (0 = GOMAXPROCS, 1 = sequential)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to FILE (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write a heap profile after the run to FILE (go tool pprof)")
		provOn    = flag.Bool("provenance", false, "record warning provenance (derivations, filter trails); explore with `nadroid explain`")
		storeDir  = flag.String("store-dir", "", "persist this analysis into a run store (enables `nadroid diff` / `baseline write`)")
		irCache   = flag.Bool("ir-cache", true, "with -store-dir: reuse cached IR/model blobs and witness outcomes across runs")
		increm    = flag.Bool("incremental", true, "with -store-dir: on a cache miss, diff against the nearest stored run and re-analyze only what changed")
		baseFile  = flag.String("baseline", "", "suppress warnings listed in this baseline file (see `baseline write -o`)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatalf("creating %s: %v", *cpuProf, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("starting CPU profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatalf("creating %s: %v", *memProf, err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("writing heap profile: %v", err)
			}
		}()
	}

	if *list {
		for _, name := range corpus.Names() {
			fmt.Println(name)
		}
		return
	}
	if *detList {
		for _, d := range detect.All() {
			fmt.Printf("%-14s %s\n", d.Name(), d.Describe())
		}
		return
	}
	detectors := splitDetectors(*detFlag)
	if _, err := detect.Select(detectors); err != nil {
		fatalf("%v", err)
	}
	if *dump != "" {
		app, ok := corpus.ByName(*dump)
		if !ok {
			fatalf("unknown corpus app %q (use -list)", *dump)
		}
		fmt.Print(dexasm.Format(app.Build()))
		return
	}

	if *corpusAll {
		runCorpus(nadroid.CorpusOptions{
			Workers: *workers,
			Analysis: nadroid.Options{
				K:                  *k,
				SkipUnsoundFilters: *noUnsound,
				Validate:           *validate,
				Explore:            explore.Options{MaxSchedules: *budget},
				Detectors:          detectors,
				Provenance:         *provOn,
				IRCache:            *irCache,
				Incremental:        *increm,
			},
		}, *csv, *storeDir, server.OptionsWire{
			K: *k, SkipUnsoundFilters: *noUnsound, Validate: *validate, MaxSchedules: *budget,
			Detectors: detectors, Provenance: *provOn,
		})
		return
	}

	pkg, err := loadPackage(*appName, flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}

	if *devaMode {
		anomalies := deva.Analyze(pkg)
		fmt.Printf("DEvA: %d event anomalies (intra-class, no HB, no threads)\n", len(anomalies))
		fmt.Print(deva.Summary(anomalies))
		return
	}
	if *dynMode {
		w := interp.NewWorld(pkg, interp.Options{Record: true})
		interp.Run(w, nil)
		races := dynrace.Analyze(w.Recorded(), dynrace.Options{UseFreeOnly: true})
		fmt.Printf("dynamic (single default-schedule trace): %d use/free races\n", len(races))
		for _, r := range races {
			fmt.Printf("  %s: use %s (%s) vs free %s (%s)\n", r.Field, r.Use, r.UseTask, r.Free, r.FreeTask)
		}
		return
	}

	ctx := context.Background()
	var tracer *obs.Tracer
	if *traceOut != "" || *traceTree {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
		ctx = obs.WithMetrics(ctx, obs.NewMetrics())
	}
	if *verbose {
		ctx = obs.WithLogger(ctx, slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}

	aopts := nadroid.Options{
		K:                  *k,
		SkipUnsoundFilters: *noUnsound,
		Validate:           *validate,
		Explore:            explore.Options{MaxSchedules: *budget},
		Workers:            *workers,
		Detectors:          detectors,
		Provenance:         *provOn,
	}
	// Open the store before analysis so warm runs can reuse cached IR
	// blobs and witness outcomes instead of re-modeling and re-exploring.
	var st *store.Store
	canonical := dexasm.Format(pkg)
	if *storeDir != "" {
		st = mustOpenStore(*storeDir)
		aopts.Store = st
		aopts.IRCache = *irCache
		aopts.Incremental = *increm
		aopts.IRDigest = store.IRDigest(canonical)
	}
	res, err := nadroid.AnalyzeContext(ctx, pkg, aopts)
	if err != nil {
		fatalf("analyze: %v", err)
	}

	if *traceOut != "" {
		data, err := tracer.ChromeTrace()
		if err != nil {
			fatalf("encoding trace: %v", err)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			fatalf("writing trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "nadroid: wrote %d spans to %s\n", tracer.SpanCount(), *traceOut)
	}
	if *traceTree {
		fmt.Fprint(os.Stderr, tracer.Tree())
	}

	optsWire := server.OptionsWire{
		K: *k, SkipUnsoundFilters: *noUnsound, Validate: *validate, MaxSchedules: *budget,
		Detectors: detectors, Provenance: *provOn,
	}
	if st != nil {
		// Persist the pristine result (before any baseline suppression):
		// stored history stays reviewable even as baselines evolve.
		key := persistResult(st, canonical, optsWire, server.EncodeResult(pkg.Name, res))
		fmt.Fprintf(os.Stderr, "nadroid: stored run %s in %s (cache=%s)\n", shortID(key), *storeDir, res.Disposition)
	}
	var base *store.Baseline
	if *baseFile != "" {
		base = loadBaselineFile(*baseFile)
	}

	if *jsonOut {
		out := server.EncodeResult(pkg.Name, res)
		if base != nil {
			// JSON keeps suppressed warnings, flagged, for machine consumers.
			server.ApplyBaseline(out, base)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("encode: %v", err)
		}
		return
	}
	hidden := suppressEntries(res, base)
	if *csv {
		if *provOn {
			// Provenance mode adds the ninth evidence-summary column; the
			// classic 8-column schema is untouched otherwise.
			fmt.Print(res.Report.CSVWithEvidence(res.Evidence))
		} else {
			fmt.Print(res.Report.CSV())
		}
	} else {
		st := res.Model.Stats()
		fmt.Printf("%s: %d EC, %d PC, %d threads modeled\n", pkg.Name, st.EC, st.PC, st.T)
		fmt.Printf("potential UAFs: %d; after sound filters: %d; after unsound filters: %d\n",
			res.Stats.Potential, res.Stats.AfterSound, res.Stats.AfterUnsound)
		fmt.Print(res.Report)
		if hidden > 0 {
			fmt.Printf("suppressed %d baselined warning(s) via %s\n", hidden, *baseFile)
		}
	}
	if *validate {
		fmt.Printf("validated harmful: %d\n", len(res.Harmful))
		for _, w := range res.Harmful {
			fmt.Printf("  HARMFUL %s (use %s, free %s)\n", w.Field, w.Use, w.Free)
			if *explain {
				wit, ok := explore.ValidateWarning(pkg, res.Model, w, explore.Options{MaxSchedules: *budget})
				if ok {
					for _, line := range explore.Replay(pkg, res.Model, w, wit, explore.Options{MaxSchedules: *budget}) {
						fmt.Printf("      %s\n", line)
					}
				}
			}
		}
	}
	if *noSleep {
		// The detector pipeline already ran nosleep when it was enabled;
		// reuse that result rather than re-deriving the MHB graph.
		ns := res.Detect.NoSleep
		if ns == nil {
			ns = nosleep.Detect(res.Model)
		}
		fmt.Printf("no-sleep warnings: %d (%d acquire sites, %d release sites)\n",
			len(ns.Warnings), len(ns.Acquires), len(ns.Releases))
		for _, w := range ns.Warnings {
			fmt.Printf("  %s\n", w)
		}
	}
	fmt.Printf("timing: modeling %v, detection %v, filtering %v\n",
		res.Timing.Modeling, res.Timing.Detection, res.Timing.Filtering)
}

// runCorpus sweeps every built-in corpus app through the pipeline on a
// bounded worker pool and prints one summary line per app (corpus
// order) plus the Table 1 aggregate counts. With a store directory,
// every app's run is persisted for later diffing.
func runCorpus(opts nadroid.CorpusOptions, csv bool, storeDir string, optsWire server.OptionsWire) {
	var st *store.Store
	if storeDir != "" {
		st = mustOpenStore(storeDir)
		opts.Analysis.Store = st
	}
	var work []nadroid.CorpusApp
	for _, app := range corpus.Apps() {
		work = append(work, nadroid.CorpusApp{Name: app.Name(), Build: app.Build})
	}
	results := nadroid.AnalyzeCorpus(work, opts)
	var pot, sound, unsound, harmful int
	for _, r := range results {
		if r.Err != nil {
			fatalf("%s: %v", r.App, r.Err)
		}
		if st != nil {
			app, _ := corpus.ByName(r.App)
			persistResult(st, dexasm.Format(app.Build()), optsWire, server.EncodeResult(r.App, r.Result))
		}
		if csv {
			fmt.Print(r.Result.Report.CSV())
			continue
		}
		fmt.Printf("%-14s potential %4d  after-sound %4d  after-unsound %4d",
			r.App, r.Result.Stats.Potential, r.Result.Stats.AfterSound, r.Result.Stats.AfterUnsound)
		if opts.Analysis.Validate {
			fmt.Printf("  harmful %d", len(r.Result.Harmful))
		}
		if st != nil {
			fmt.Printf("  cache=%s", r.Result.Disposition)
		}
		fmt.Println()
		pot += r.Result.Stats.Potential
		sound += r.Result.Stats.AfterSound
		unsound += r.Result.Stats.AfterUnsound
		harmful += len(r.Result.Harmful)
	}
	if !csv {
		fmt.Printf("%-14s potential %4d  after-sound %4d  after-unsound %4d",
			"TOTAL", pot, sound, unsound)
		if opts.Analysis.Validate {
			fmt.Printf("  harmful %d", harmful)
		}
		fmt.Println()
	}
}

func loadPackage(appName, path string) (*apk.Package, error) {
	switch {
	case appName != "":
		app, ok := corpus.ByName(appName)
		if !ok {
			return nil, fmt.Errorf("unknown corpus app %q (use -list)", appName)
		}
		return app.Build(), nil
	case path != "":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return dexasm.Parse(string(data))
	default:
		return nil, fmt.Errorf("nothing to analyze: pass a .dexasm file or -app NAME")
	}
}

// splitDetectors parses the -detectors CSV; an empty flag means the
// default (nil = every detector).
func splitDetectors(csv string) []string {
	if csv == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(csv, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	if out == nil {
		out = []string{} // "-detectors ," means an explicitly empty set: rejected
	}
	return out
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "nadroid: "+format+"\n", args...)
	os.Exit(1)
}
