// triage.go implements the warning-triage subcommands and the analyze
// flow's store/baseline hooks:
//
//	nadroid diff     -store-dir DIR -app NAME [-from ID] [-to ID] [-json]
//	nadroid baseline write -store-dir DIR -app NAME [-run ID] [-note TEXT] [-o FILE] [-json]
//
// `diff` classifies warnings between two stored runs as new, fixed, or
// persisting by stable fingerprint, suppressing baselined ones; it
// exits nonzero when new warnings remain, so it slots into CI as a
// regression gate. `baseline write` records a reviewed run's
// fingerprints so future analyses and diffs hide them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"nadroid"
	"nadroid/internal/server"
	"nadroid/internal/store"
)

// runDiff is the `nadroid diff` entry point.
func runDiff(args []string) {
	fs := flag.NewFlagSet("nadroid diff", flag.ExitOnError)
	var (
		storeDir = fs.String("store-dir", "", "analysis store directory (required)")
		appName  = fs.String("app", "", "app whose runs to compare (required)")
		from     = fs.String("from", "", "baseline-side run ID (default: second-newest run)")
		to       = fs.String("to", "", "candidate-side run ID (default: newest run)")
		jsonOut  = fs.Bool("json", false, "emit the diff as JSON")
	)
	fs.Parse(args)
	st := mustOpenStore(*storeDir)
	if *appName == "" {
		fatalf("diff: -app is required (stored apps: %v)", st.Apps())
	}
	d, err := st.Diff(*appName, *from, *to)
	if err != nil {
		fatalf("diff: %v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			fatalf("diff: encode: %v", err)
		}
	} else {
		printDiff(d)
	}
	// CI contract: unreviewed new warnings fail the invocation.
	if len(d.New) > 0 {
		os.Exit(1)
	}
}

func printDiff(d *store.Diff) {
	fmt.Printf("diff %s: %s (%s) -> %s (%s)\n", d.App,
		shortID(d.From), d.FromCreated.Format(time.RFC3339),
		shortID(d.To), d.ToCreated.Format(time.RFC3339))
	nw, fixed, persisting, suppressed := d.Counts()
	fmt.Printf("new %d  fixed %d  persisting %d  suppressed %d\n", nw, fixed, persisting, suppressed)
	printBucket := func(label string, ws []store.Warning, detail bool) {
		for _, w := range ws {
			fmt.Printf("  %-10s [%s] %-5s field %s\n", label, w.Fingerprint, w.Category, w.Field)
			if detail {
				fmt.Printf("             use  %s  via %s\n", w.Use, w.UseLineage)
				fmt.Printf("             free %s  via %s\n", w.Free, w.FreeLineage)
			}
		}
	}
	printBucket("NEW", d.New, true)
	printBucket("FIXED", d.Fixed, false)
	printBucket("PERSISTING", d.Persisting, false)
	printBucket("SUPPRESSED", d.Suppressed, false)
}

func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// runBaseline is the `nadroid baseline <verb>` entry point.
func runBaseline(args []string) {
	if len(args) == 0 || args[0] != "write" {
		fatalf("baseline: usage: nadroid baseline write -store-dir DIR -app NAME [-run ID] [-note TEXT] [-o FILE]")
	}
	fs := flag.NewFlagSet("nadroid baseline write", flag.ExitOnError)
	var (
		storeDir = fs.String("store-dir", "", "analysis store directory (required)")
		appName  = fs.String("app", "", "app whose run to baseline (required)")
		runID    = fs.String("run", "", "run ID to baseline (default: newest run)")
		note     = fs.String("note", "reviewed", "reviewer note attached to every entry")
		outFile  = fs.String("o", "", "also write the baseline to a standalone file (for -baseline on analyze)")
		jsonOut  = fs.Bool("json", false, "emit the written baseline as JSON")
	)
	fs.Parse(args[1:])
	st := mustOpenStore(*storeDir)
	if *appName == "" {
		fatalf("baseline write: -app is required (stored apps: %v)", st.Apps())
	}
	var run *store.Run
	if *runID != "" {
		r, ok := st.Get(*runID)
		if !ok {
			fatalf("baseline write: unknown run %q", *runID)
		}
		if r.App != *appName {
			fatalf("baseline write: run %s belongs to app %q, not %q", shortID(*runID), r.App, *appName)
		}
		run = r
	} else {
		runs := st.Runs(*appName)
		if len(runs) == 0 {
			fatalf("baseline write: no stored runs for app %q (analyze with -store-dir first)", *appName)
		}
		run = runs[0]
	}
	b := store.BaselineFromRun(run, *note, time.Now())
	if err := st.PutBaseline(b); err != nil {
		fatalf("baseline write: %v", err)
	}
	if *outFile != "" {
		if err := b.WriteFile(*outFile); err != nil {
			fatalf("baseline write: %v", err)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(b); err != nil {
			fatalf("baseline write: encode: %v", err)
		}
		return
	}
	fmt.Printf("baseline %s: %d warning(s) from run %s recorded", b.App, len(b.Entries), shortID(b.RunID))
	if *outFile != "" {
		fmt.Printf(" (also %s)", *outFile)
	}
	fmt.Println()
}

func mustOpenStore(dir string) *store.Store {
	if dir == "" {
		fatalf("-store-dir is required")
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		fatalf("%v", err)
	}
	return st
}

// persistResult writes one finished analysis into the store, addressed
// by the same content key nadroid-serve uses, so CLI and service share
// history.
func persistResult(st *store.Store, canonical string, optsWire server.OptionsWire, out *server.ResultWire) string {
	key := server.ResultKey(canonical, optsWire)
	run, err := server.StoreRun(key, optsWire, out, time.Now())
	if err == nil {
		// Record the program digest so GC can protect the run's IR-cache
		// and witness-cache entries for as long as the run survives.
		run.IRDigest = store.IRDigest(canonical)
		err = st.Put(run)
	}
	if err != nil {
		fatalf("persisting run: %v", err)
	}
	return string(key)
}

// loadBaselineFile reads a standalone baseline (written by
// `nadroid baseline write -o`).
func loadBaselineFile(path string) *store.Baseline {
	b, err := store.ReadBaselineFile(path)
	if err != nil {
		fatalf("reading baseline %s: %v", path, err)
	}
	return b
}

// suppressEntries drops baselined warnings from a report in place (for
// the human and CSV renderings; JSON output keeps them, flagged).
// Returns how many were hidden.
func suppressEntries(res *nadroid.Result, base *store.Baseline) int {
	if base == nil {
		return 0
	}
	kept := res.Report.Entries[:0]
	hidden := 0
	for _, e := range res.Report.Entries {
		if base.Has(string(e.Fingerprint)) {
			hidden++
			res.Report.ByCategory[e.Category]--
			continue
		}
		kept = append(kept, e)
	}
	res.Report.Entries = kept
	return hidden
}
