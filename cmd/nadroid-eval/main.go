// Command nadroid-eval regenerates the paper's evaluation artifacts over
// the synthetic corpus: Table 1, Figure 5(a)/(b), Table 2 (artificial-UAF
// false-negative study), Table 3 (DEvA comparison), and the §8.8 phase
// timing breakdown. It plays the role of the artifact's run-all.sh.
//
// Usage:
//
//	nadroid-eval -all
//	nadroid-eval -table1 -validate
//	nadroid-eval -fig5 -table2 -table3 -timing
package main

import (
	"flag"
	"fmt"
	"os"

	"nadroid/internal/eval"
	"nadroid/internal/inject"
)

func main() {
	var (
		all      = flag.Bool("all", false, "regenerate everything")
		table1   = flag.Bool("table1", false, "per-app pipeline results (Table 1)")
		fig5     = flag.Bool("fig5", false, "filter effectiveness (Figure 5)")
		table2   = flag.Bool("table2", false, "false-negative injection study (Table 2)")
		table3   = flag.Bool("table3", false, "DEvA comparison (Table 3)")
		timing   = flag.Bool("timing", false, "phase breakdown (§8.8)")
		validate = flag.Bool("validate", true, "dynamically validate Table 1 survivors")
		budget   = flag.Int("budget", 3000, "schedule budget per warning when validating")
		workers  = flag.Int("workers", 0, "apps analyzed concurrently for Table 1 (0 = GOMAXPROCS, 1 = sequential)")
		out      = flag.String("out", "", "also write the artifact Result/ folder to this directory")
		compare  = flag.Bool("compare", false, "regenerate every headline number and check it against the paper")
	)
	flag.Parse()
	if *all {
		*table1, *fig5, *table2, *table3, *timing, *compare = true, true, true, true, true, true
	}
	if !*table1 && !*fig5 && !*table2 && !*table3 && !*timing && !*compare {
		flag.Usage()
		os.Exit(2)
	}

	if *compare {
		rows, err := eval.ComparePaper(*budget)
		if err != nil {
			fatalf("compare: %v", err)
		}
		fmt.Println("== Reproduction checkpoints (paper vs measured) ==")
		fmt.Print(eval.RenderComparison(rows))
		fmt.Println()
	}

	var rows []eval.Table1Row
	if *table1 || *timing {
		var err error
		rows, err = eval.Table1(eval.Table1Options{Validate: *validate, MaxSchedules: *budget, Workers: *workers})
		if err != nil {
			fatalf("table1: %v", err)
		}
	}
	if *table1 {
		fmt.Println("== Table 1: nAdroid UAF analysis over the corpus ==")
		fmt.Print(eval.RenderTable1(rows, *validate))
		fmt.Println()
	}
	if *fig5 {
		fmt.Println("== Figure 5: filter effectiveness (20 test apps) ==")
		f, err := eval.Figure5Data()
		if err != nil {
			fatalf("fig5: %v", err)
		}
		fmt.Print(eval.RenderFigure5(f))
		fmt.Println()
	}
	if *table2 {
		fmt.Println("== Table 2: false-negative analysis (artificial UAF injection) ==")
		rows2, err := inject.Run(nil)
		if err != nil {
			fatalf("table2: %v", err)
		}
		fmt.Print(eval.RenderTable2(rows2))
		fmt.Println()
	}
	if *table3 {
		fmt.Println("== Table 3: comparison to DEvA (training apps) ==")
		rows3, err := eval.Table3()
		if err != nil {
			fatalf("table3: %v", err)
		}
		fmt.Print(eval.RenderTable3(rows3))
		fmt.Println()
	}
	if *timing {
		fmt.Println("== §8.8: analysis execution time ==")
		fmt.Print(eval.RenderTiming(eval.Timing(rows)))
	}
	if *out != "" {
		if err := eval.WriteArtifacts(*out, eval.Table1Options{Validate: *validate, MaxSchedules: *budget, Workers: *workers}); err != nil {
			fatalf("artifacts: %v", err)
		}
		fmt.Printf("artifact files written under %s\n", *out)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "nadroid-eval: "+format+"\n", args...)
	os.Exit(1)
}
