package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	t.Run("plain", func(t *testing.T) {
		r, ok := parseLine("BenchmarkPhaseDetection \t      10\t 197500000 ns/op")
		if !ok {
			t.Fatal("line not parsed")
		}
		if r.Name != "BenchmarkPhaseDetection" || r.Iters != 10 || r.NsPerOp != 197500000 {
			t.Errorf("got %+v", r)
		}
		if len(r.Metrics) != 0 {
			t.Errorf("unexpected metrics %v", r.Metrics)
		}
	})
	t.Run("custom metrics", func(t *testing.T) {
		r, ok := parseLine("BenchmarkPhasePointsTo \t       5\t   2775284 ns/op\t      1511 iterations\t       383.0 mctxs")
		if !ok {
			t.Fatal("line not parsed")
		}
		if r.NsPerOp != 2775284 {
			t.Errorf("ns/op = %v", r.NsPerOp)
		}
		if r.Metrics["iterations"] != 1511 || r.Metrics["mctxs"] != 383 {
			t.Errorf("metrics = %v", r.Metrics)
		}
	})
	t.Run("rejects non-benchmark lines", func(t *testing.T) {
		for _, line := range []string{
			"goos: linux",
			"PASS",
			"ok  \tnadroid\t2.803s",
			"BenchmarkBroken\tnot-a-number\t123 ns/op",
			"",
		} {
			if _, ok := parseLine(line); ok {
				t.Errorf("parsed %q, want rejection", line)
			}
		}
	})
}

func recs(pairs map[string]float64) map[string]Record {
	out := make(map[string]Record, len(pairs))
	for name, ns := range pairs {
		out[name] = Record{Name: name, Iters: 1, NsPerOp: ns}
	}
	return out
}

func TestDiffRecords(t *testing.T) {
	oldRecs := recs(map[string]float64{
		"BenchmarkStable":   100,
		"BenchmarkFaster":   1000,
		"BenchmarkSlower":   100,
		"BenchmarkRemoved":  50,
		"BenchmarkZeroBase": 0,
	})
	newRecs := recs(map[string]float64{
		"BenchmarkStable":   104, // +4%, under the 10% threshold
		"BenchmarkFaster":   250, // -75%
		"BenchmarkSlower":   150, // +50%: regression
		"BenchmarkAdded":    75,
		"BenchmarkZeroBase": 10,
	})
	lines, regressions := diffRecords(oldRecs, newRecs, 10)
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1 (only BenchmarkSlower)", regressions)
	}
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6 (union of both sides):\n%s", len(lines), strings.Join(lines, "\n"))
	}
	find := func(name string) string {
		for _, l := range lines {
			if strings.HasPrefix(l, name) {
				return l
			}
		}
		t.Fatalf("no line for %s in:\n%s", name, strings.Join(lines, "\n"))
		return ""
	}
	if l := find("BenchmarkAdded"); !strings.Contains(l, "(added)") {
		t.Errorf("added line = %q", l)
	}
	if l := find("BenchmarkRemoved"); !strings.Contains(l, "(removed)") {
		t.Errorf("removed line = %q", l)
	}
	if l := find("BenchmarkZeroBase"); !strings.Contains(l, "skipped") {
		t.Errorf("zero-base line = %q", l)
	}
	if l := find("BenchmarkSlower"); !strings.Contains(l, "REGRESSION") || !strings.Contains(l, "+50.0%") {
		t.Errorf("regression line = %q", l)
	}
	if l := find("BenchmarkFaster"); strings.Contains(l, "REGRESSION") || !strings.Contains(l, "-75.0%") {
		t.Errorf("improvement line = %q", l)
	}
	if l := find("BenchmarkStable"); strings.Contains(l, "REGRESSION") {
		t.Errorf("under-threshold line = %q", l)
	}

	// Sorted output is what keeps bench-diff logs diffable across runs.
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Errorf("lines not sorted: %q before %q", lines[i-1], lines[i])
		}
	}
}
