// Command benchjson converts `go test -bench` output on stdin into a
// JSON document: one record per benchmark line, carrying the iteration
// count, ns/op, and every custom metric the benchmark reported
// (b.ReportMetric units such as modeling-ms or schedules). The Makefile
// bench target pipes the 1x sweep through it to produce BENCH_pr3.json.
//
// The diff subcommand compares two such documents and flags ns/op
// regressions, so `make bench-diff` can gate (or, with -advisory, just
// report) performance drift between PRs.
//
// Usage:
//
//	go test -bench . -benchtime 1x | benchjson -out BENCH_pr3.json
//	benchjson diff [-advisory] [-threshold 10] OLD.json NEW.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		diffMain(os.Args[2:])
		return
	}
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()

	var records []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			records = append(records, r)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("reading stdin: %v", err)
	}

	data, err := json.MarshalIndent(struct {
		Benchmarks []Record `json:"benchmarks"`
	}{records}, "", "  ")
	if err != nil {
		fatalf("encoding: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(records), *out)
}

// parseLine handles the standard bench format:
//
//	BenchmarkFoo/sub-8   1   22012345 ns/op   12.50 modeling-ms   3 schedules
//
// Fields come in (value, unit) pairs after the iteration count.
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	r := Record{Name: fields[0], Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = val
			continue
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics[unit] = val
	}
	return r, true
}

// diffMain implements `benchjson diff OLD.json NEW.json`: a
// per-benchmark ns/op comparison that exits non-zero when any shared
// benchmark regressed by more than the threshold. -advisory downgrades
// regressions to warnings (exit 0) — the right mode for 1-iteration
// benchmarks, where run-to-run noise routinely exceeds any sane
// threshold.
func diffMain(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	advisory := fs.Bool("advisory", false, "report regressions but always exit 0")
	threshold := fs.Float64("threshold", 10, "ns/op regression percentage that fails the diff")
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fatalf("diff needs exactly two files: benchjson diff OLD.json NEW.json")
	}
	oldRecs := loadBench(fs.Arg(0))
	newRecs := loadBench(fs.Arg(1))

	lines, regressions := diffRecords(oldRecs, newRecs, *threshold)
	for _, line := range lines {
		fmt.Println(line)
	}
	if regressions > 0 {
		fmt.Printf("benchjson diff: %d benchmark(s) regressed more than %.0f%%\n", regressions, *threshold)
		if !*advisory {
			os.Exit(1)
		}
		fmt.Println("benchjson diff: advisory mode, not failing")
	}
}

// diffRecords renders the per-benchmark comparison (one line per
// benchmark, union of both sides, sorted by name) and counts shared
// benchmarks whose ns/op regressed past threshold percent. One-sided
// benchmarks print as (added)/(removed) and never count as regressions.
func diffRecords(oldRecs, newRecs map[string]Record, threshold float64) (lines []string, regressions int) {
	names := make([]string, 0, len(oldRecs)+len(newRecs))
	seen := make(map[string]bool)
	for name := range oldRecs {
		names = append(names, name)
		seen[name] = true
	}
	for name := range newRecs {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	for _, name := range names {
		o, inOld := oldRecs[name]
		n, inNew := newRecs[name]
		switch {
		case !inOld:
			lines = append(lines, fmt.Sprintf("%-40s %14s -> %14.0f ns/op  (added)", name, "-", n.NsPerOp))
		case !inNew:
			lines = append(lines, fmt.Sprintf("%-40s %14.0f -> %14s ns/op  (removed)", name, o.NsPerOp, "-"))
		case o.NsPerOp <= 0:
			lines = append(lines, fmt.Sprintf("%-40s %14.0f -> %14.0f ns/op  (old is zero, skipped)", name, o.NsPerOp, n.NsPerOp))
		default:
			pct := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
			mark := ""
			if pct > threshold {
				mark = "  REGRESSION"
				regressions++
			}
			lines = append(lines, fmt.Sprintf("%-40s %14.0f -> %14.0f ns/op  %+7.1f%%%s", name, o.NsPerOp, n.NsPerOp, pct, mark))
		}
	}
	return lines, regressions
}

func loadBench(path string) map[string]Record {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var doc struct {
		Benchmarks []Record `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fatalf("parsing %s: %v", path, err)
	}
	out := make(map[string]Record, len(doc.Benchmarks))
	for _, r := range doc.Benchmarks {
		out[r.Name] = r
	}
	return out
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
