// Command benchjson converts `go test -bench` output on stdin into a
// JSON document: one record per benchmark line, carrying the iteration
// count, ns/op, and every custom metric the benchmark reported
// (b.ReportMetric units such as modeling-ms or schedules). The Makefile
// bench target pipes the 1x sweep through it to produce BENCH_pr2.json.
//
// Usage:
//
//	go test -bench . -benchtime 1x | benchjson -out BENCH_pr2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()

	var records []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			records = append(records, r)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("reading stdin: %v", err)
	}

	data, err := json.MarshalIndent(struct {
		Benchmarks []Record `json:"benchmarks"`
	}{records}, "", "  ")
	if err != nil {
		fatalf("encoding: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(records), *out)
}

// parseLine handles the standard bench format:
//
//	BenchmarkFoo/sub-8   1   22012345 ns/op   12.50 modeling-ms   3 schedules
//
// Fields come in (value, unit) pairs after the iteration count.
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	r := Record{Name: fields[0], Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = val
			continue
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics[unit] = val
	}
	return r, true
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
