package nadroid_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"nadroid"
	"nadroid/internal/corpus"
	"nadroid/internal/explore"
)

func TestAnalyzeContextCanceledBeforeStart(t *testing.T) {
	app, ok := corpus.ByName("ConnectBot")
	if !ok {
		t.Fatal("missing corpus app")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := nadroid.AnalyzeContext(ctx, app.Build(), nadroid.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("canceled run must not return a partial result")
	}
}

// phaseCountingCtx is a context whose Err() starts failing after a set
// number of polls. AnalyzeContext polls ctx.Err() once per phase
// boundary (modeling, detection, filtering, validation — in that
// order), so failing on the Nth poll pins cancellation to a specific
// boundary deterministically.
type phaseCountingCtx struct {
	polls     atomic.Int64
	failAfter int64
}

func (c *phaseCountingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *phaseCountingCtx) Done() <-chan struct{}       { return nil }
func (c *phaseCountingCtx) Value(interface{}) interface{} {
	return nil
}
func (c *phaseCountingCtx) Err() error {
	if c.polls.Add(1) > c.failAfter {
		return context.Canceled
	}
	return nil
}

// TestAnalyzeContextAbortsBeforeValidation cancels an in-flight
// analysis at the boundary between filtering and validation: the first
// three phases run, the validation phase is never entered, and the
// explorer never executes a schedule.
func TestAnalyzeContextAbortsBeforeValidation(t *testing.T) {
	app, ok := corpus.ByName("ConnectBot")
	if !ok {
		t.Fatal("missing corpus app")
	}
	// Polls 1-3 guard modeling/detection/filtering; poll 4 guards
	// validation and is the first to observe the cancellation.
	ctx := &phaseCountingCtx{failAfter: 3}
	res, err := nadroid.AnalyzeContext(ctx, app.Build(), nadroid.Options{
		Validate: true,
		Explore:  explore.Options{MaxSchedules: 1_000_000},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("canceled run must not return a partial result")
	}
	// Exactly four polls: the pre-validation check tripped, so the
	// schedule explorer (which polls before every execution) never ran.
	if got := ctx.polls.Load(); got != 4 {
		t.Errorf("ctx polled %d times, want 4 (abort at the validation boundary)", got)
	}
}

// TestAnalyzeContextUncanceledMatchesAnalyze pins the wrapper contract:
// Analyze is AnalyzeContext under a background context.
func TestAnalyzeContextUncanceledMatchesAnalyze(t *testing.T) {
	app, ok := corpus.ByName("ConnectBot")
	if !ok {
		t.Fatal("missing corpus app")
	}
	res, err := nadroid.AnalyzeContext(context.Background(), app.Build(), nadroid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AfterUnsound != 13 {
		t.Errorf("surviving = %d, want 13", res.Stats.AfterUnsound)
	}
}

// TestValidateAllContextDeadline verifies the explorer's per-schedule
// cancellation: an already-expired deadline stops the sweep immediately
// instead of burning the schedule budget.
func TestValidateAllContextDeadline(t *testing.T) {
	app, ok := corpus.ByName("ConnectBot")
	if !ok {
		t.Fatal("missing corpus app")
	}
	res, err := nadroid.Analyze(app.Build(), nadroid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	harmful, err := explore.ValidateAllContext(ctx, app.Build(), res.Model, res.Detection.Alive(),
		explore.Options{MaxSchedules: 1_000_000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if len(harmful) != 0 {
		t.Errorf("harmful = %d before any schedule ran, want 0", len(harmful))
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("expired deadline took %v to stop the sweep", elapsed)
	}
}
