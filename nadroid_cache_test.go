package nadroid_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"nadroid"
	"nadroid/internal/corpus"
	"nadroid/internal/dexasm"
	"nadroid/internal/explore"
	"nadroid/internal/obs"
	"nadroid/internal/store"
)

// The derived caches (IR cold-start blobs, witness outcomes) must be
// behavior-transparent: a warm run returns the same Result as a cold
// run, any key ingredient changing must miss, and corruption must fall
// back to the cold path. These tests drive the public AnalyzeSource
// entry against a real corpus app.

func cacheTestOptions(st *store.Store) nadroid.Options {
	return nadroid.Options{
		Validate: true,
		Explore:  explore.Options{MaxSchedules: 3000},
		Store:    st,
		IRCache:  true,
	}
}

// resultSummary reduces a Result to the comparable facts: pipeline
// stats, report size, and the confirmed-harmful set.
func resultSummary(res *nadroid.Result) string {
	harm := make([]string, 0, len(res.Harmful))
	for _, w := range res.Harmful {
		harm = append(harm, fmt.Sprintf("%s|%s|%s", w.Field, w.Use, w.Free))
	}
	sort.Strings(harm)
	return fmt.Sprintf("pot=%d sound=%d unsound=%d entries=%d harmful=%v",
		res.Stats.Potential, res.Stats.AfterSound, res.Stats.AfterUnsound,
		len(res.Report.Entries), harm)
}

func TestIRCacheWarmStart(t *testing.T) {
	app, ok := corpus.ByName("ConnectBot")
	if !ok {
		t.Fatal("ConnectBot missing from corpus")
	}
	src := dexasm.Format(app.Build())
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}

	cold := obs.NewMetrics()
	coldRes, err := nadroid.AnalyzeSource(obs.WithMetrics(context.Background(), cold), src, cacheTestOptions(st))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Get("ircache_misses") != 1 || cold.Get("ircache_hits") != 0 {
		t.Fatalf("cold run: ircache hits=%d misses=%d, want 0/1",
			cold.Get("ircache_hits"), cold.Get("ircache_misses"))
	}
	coldWitnessMisses := cold.Get("validation_witness_cache_misses")
	if coldWitnessMisses == 0 || cold.Get("validation_witness_cache_hits") != 0 {
		t.Fatalf("cold run: witness hits=%d misses=%d, want 0/>0",
			cold.Get("validation_witness_cache_hits"), coldWitnessMisses)
	}

	warm := obs.NewMetrics()
	warmRes, err := nadroid.AnalyzeSource(obs.WithMetrics(context.Background(), warm), src, cacheTestOptions(st))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Get("ircache_hits") != 1 || warm.Get("ircache_misses") != 0 {
		t.Fatalf("warm run: ircache hits=%d misses=%d, want 1/0",
			warm.Get("ircache_hits"), warm.Get("ircache_misses"))
	}
	if warm.Get("validation_witness_cache_hits") != coldWitnessMisses ||
		warm.Get("validation_witness_cache_misses") != 0 {
		t.Fatalf("warm run: witness hits=%d misses=%d, want %d/0",
			warm.Get("validation_witness_cache_hits"),
			warm.Get("validation_witness_cache_misses"), coldWitnessMisses)
	}
	// A warm run performs no schedule exploration at all.
	if n := warm.Get("validation_schedules_executed"); n != 0 {
		t.Errorf("warm run executed %d schedules, want 0", n)
	}
	if got, want := resultSummary(warmRes), resultSummary(coldRes); got != want {
		t.Errorf("warm result differs from cold:\nwarm: %s\ncold: %s", got, want)
	}
	// The modeling phase was skipped outright.
	if warmRes.Timing.Modeling > coldRes.Timing.Modeling {
		t.Errorf("warm modeling %v exceeds cold %v", warmRes.Timing.Modeling, coldRes.Timing.Modeling)
	}
}

// TestWitnessCacheInvalidation drives each ingredient of the witness
// key: changed validation options and changed detector sets must miss
// (and re-explore), while an identical re-run hits everything.
func TestWitnessCacheInvalidation(t *testing.T) {
	app, _ := corpus.ByName("ConnectBot")
	src := dexasm.Format(app.Build())
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}

	base := cacheTestOptions(st)
	run := func(opts nadroid.Options) (*obs.Metrics, *nadroid.Result) {
		t.Helper()
		m := obs.NewMetrics()
		res, err := nadroid.AnalyzeSource(obs.WithMetrics(context.Background(), m), src, opts)
		if err != nil {
			t.Fatal(err)
		}
		return m, res
	}

	_, coldRes := run(base)

	// Identical options: pure hits.
	m, res := run(base)
	if m.Get("validation_witness_cache_misses") != 0 || m.Get("validation_witness_cache_hits") == 0 {
		t.Errorf("identical re-run: hits=%d misses=%d, want all hits",
			m.Get("validation_witness_cache_hits"), m.Get("validation_witness_cache_misses"))
	}
	if resultSummary(res) != resultSummary(coldRes) {
		t.Errorf("identical re-run result differs from cold")
	}

	// A changed schedule budget is a different validation, so every
	// lookup must miss and the sweep must actually run.
	budget := base
	budget.Explore = explore.Options{MaxSchedules: 500}
	m, _ = run(budget)
	if m.Get("validation_witness_cache_hits") != 0 || m.Get("validation_witness_cache_misses") == 0 {
		t.Errorf("changed budget: hits=%d misses=%d, want all misses",
			m.Get("validation_witness_cache_hits"), m.Get("validation_witness_cache_misses"))
	}
	if m.Get("validation_schedules_executed") == 0 {
		t.Error("changed budget: no schedules executed despite cache misses")
	}

	// A narrowed detector set keys differently even though the uaf
	// warnings themselves are unchanged.
	det := base
	det.Detectors = []string{"uaf"}
	m, _ = run(det)
	if m.Get("validation_witness_cache_hits") != 0 || m.Get("validation_witness_cache_misses") == 0 {
		t.Errorf("changed detectors: hits=%d misses=%d, want all misses",
			m.Get("validation_witness_cache_hits"), m.Get("validation_witness_cache_misses"))
	}

	// A different program (digest) shares nothing.
	other, _ := corpus.ByName("Aard")
	m = obs.NewMetrics()
	if _, err := nadroid.AnalyzeSource(obs.WithMetrics(context.Background(), m),
		dexasm.Format(other.Build()), base); err != nil {
		t.Fatal(err)
	}
	if m.Get("validation_witness_cache_hits") != 0 {
		t.Errorf("different program hit %d witness entries", m.Get("validation_witness_cache_hits"))
	}
}

// TestWitnessCacheCorruptEntry corrupts one cached outcome: the warm
// run must log a skip, re-explore just that warning, and still match
// the cold result.
func TestWitnessCacheCorruptEntry(t *testing.T) {
	app, _ := corpus.ByName("ConnectBot")
	src := dexasm.Format(app.Build())
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := cacheTestOptions(st)

	cold := obs.NewMetrics()
	coldRes, err := nadroid.AnalyzeSource(obs.WithMetrics(context.Background(), cold), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	total := cold.Get("validation_witness_cache_misses")
	if total < 2 {
		t.Fatalf("need at least 2 cached outcomes to corrupt one, got %d", total)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "witness", "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no witness entries on disk (err %v)", err)
	}
	sort.Strings(entries)
	if err := os.WriteFile(entries[0], []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}

	warm := obs.NewMetrics()
	warmRes, err := nadroid.AnalyzeSource(obs.WithMetrics(context.Background(), warm), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Get("validation_witness_cache_hits") != total-1 || warm.Get("validation_witness_cache_misses") != 1 {
		t.Errorf("after corruption: hits=%d misses=%d, want %d/1",
			warm.Get("validation_witness_cache_hits"),
			warm.Get("validation_witness_cache_misses"), total-1)
	}
	if resultSummary(warmRes) != resultSummary(coldRes) {
		t.Errorf("result after corrupt-entry fallback differs from cold")
	}
	// The cold fallback rewrote the entry.
	data, err := os.ReadFile(entries[0])
	if err != nil || !strings.Contains(string(data), "ir_digest") {
		t.Errorf("corrupt entry was not rewritten: %v", err)
	}
}

// TestIRCacheCorruptBlob corrupts the cold-start blob: the next run
// must treat it as a miss, remodel from source, and repair the entry.
func TestIRCacheCorruptBlob(t *testing.T) {
	app, _ := corpus.ByName("ConnectBot")
	src := dexasm.Format(app.Build())
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := cacheTestOptions(st)
	coldRes, err := nadroid.AnalyzeSource(context.Background(), src, opts)
	if err != nil {
		t.Fatal(err)
	}

	blobs, err := filepath.Glob(filepath.Join(dir, "ircache", "*.bin"))
	if err != nil || len(blobs) != 1 {
		t.Fatalf("want exactly 1 ircache blob, got %v (err %v)", blobs, err)
	}
	if err := os.WriteFile(blobs[0], []byte("NIRCgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := obs.NewMetrics()
	res, err := nadroid.AnalyzeSource(obs.WithMetrics(context.Background(), m), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Get("ircache_hits") != 0 || m.Get("ircache_misses") != 1 {
		t.Errorf("corrupt blob: hits=%d misses=%d, want 0/1",
			m.Get("ircache_hits"), m.Get("ircache_misses"))
	}
	if resultSummary(res) != resultSummary(coldRes) {
		t.Errorf("result after corrupt-blob fallback differs from cold")
	}
	// The cold run wrote a fresh blob; the next run hits again.
	m2 := obs.NewMetrics()
	if _, err := nadroid.AnalyzeSource(obs.WithMetrics(context.Background(), m2), src, opts); err != nil {
		t.Fatal(err)
	}
	if m2.Get("ircache_hits") != 1 {
		t.Errorf("blob not repaired: hits=%d", m2.Get("ircache_hits"))
	}
}
