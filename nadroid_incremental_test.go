// nadroid_incremental_test.go is the correctness gate for incremental
// re-analysis: a matrix of seeded IR edits (body edit, method add,
// method delete, signature change, field-access change) over several
// Table-1 corpus apps, each asserting that the incremental run of the
// mutated app — anchored on a stored base run — produces results
// byte-identical to a cold run of the same mutated app: filter stats,
// warning fingerprints with their per-pair filter annotations, the
// report CSV, and (with provenance on) the evidence records. It also
// covers staleness/corruption fallbacks and the store-backed golden
// corpus sweep with incrementality enabled.
package nadroid_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"nadroid"
	"nadroid/internal/apk"
	"nadroid/internal/corpus"
	"nadroid/internal/dexasm"
	"nadroid/internal/fingerprint"
	"nadroid/internal/incr"
	"nadroid/internal/ir"
	"nadroid/internal/obs"
	"nadroid/internal/server"
	"nadroid/internal/store"
)

// deepSummary reduces a Result to every comparable fact the
// differential gate checks: pipeline stats, each UAF warning's
// fingerprint with surviving-pair count and per-pair filter verdicts,
// extra-detector warnings, the report CSV, and the evidence records.
func deepSummary(t *testing.T, res *nadroid.Result) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "pot=%d sound=%d unsound=%d entries=%d\n",
		res.Stats.Potential, res.Stats.AfterSound, res.Stats.AfterUnsound,
		len(res.Report.Entries))
	if res.Detection != nil {
		var lines []string
		for _, w := range res.Detection.Warnings {
			var filt []string
			for p, f := range w.FilteredBy {
				filt = append(filt, fmt.Sprintf("%d-%d:%s", p.Use, p.Free, f))
			}
			sort.Strings(filt)
			lines = append(lines, fmt.Sprintf("%s pairs=%d filtered=%v",
				fingerprint.Warning(res.Model, w), len(w.Pairs), filt))
		}
		sort.Strings(lines)
		b.WriteString(strings.Join(lines, "\n"))
		b.WriteString("\n")
	}
	for _, e := range res.Report.Extras {
		fmt.Fprintf(&b, "extra %s %s %s %s\n", e.Detector, e.Tag, e.Subject, e.Site)
	}
	b.WriteString(res.Report.CSV())
	if res.Evidence != nil {
		keys := make([]string, 0, len(res.Evidence))
		for k := range res.Evidence {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			data, err := json.Marshal(res.Evidence[k])
			if err != nil {
				t.Fatalf("marshaling evidence %s: %v", k, err)
			}
			fmt.Fprintf(&b, "evidence %s %s\n", k, data)
		}
	}
	return b.String()
}

// mutation is one seeded IR edit. Each mutator edits the package in
// place; the mutated dexasm rendering is what gets analyzed, so edits
// only need to survive a format/parse round trip.
type mutation struct {
	name string
	fn   func(t testing.TB, pkg *apk.Package)
}

// editableMethod picks a deterministic concrete app method with a body.
func editableMethod(t testing.TB, pkg *apk.Package) (*ir.Class, *ir.Method) {
	t.Helper()
	for _, c := range pkg.Program.Classes() {
		for _, m := range c.Methods {
			if !m.Abstract && len(m.Instrs) > 0 {
				return c, m
			}
		}
	}
	t.Fatal("no editable method in app")
	return nil, nil
}

var mutations = []mutation{
	{"body-edit", func(t testing.TB, pkg *apk.Package) {
		_, m := editableMethod(t, pkg)
		m.Instrs = append(m.Instrs, ir.Instr{Op: ir.OpMove, A: 0, B: 0})
	}},
	{"method-add", func(t testing.TB, pkg *apk.Package) {
		c, _ := editableMethod(t, pkg)
		added := ir.NewMethod(c.Name, "incrAddedNoop", 0)
		added.Instrs = []ir.Instr{{Op: ir.OpReturn, A: ir.NoReg}}
		c.AddMethod(added)
	}},
	{"method-delete", func(t testing.TB, pkg *apk.Package) {
		// Delete the last helper-looking method of some class. The
		// mutated text is re-parsed before analysis, so editing the
		// Methods slice (without the private index) is sufficient.
		for _, c := range pkg.Program.Classes() {
			for i := len(c.Methods) - 1; i >= 0; i-- {
				m := c.Methods[i]
				if m.Abstract || len(m.Instrs) == 0 || strings.HasPrefix(m.Name, "on") || m.Name == "<init>" {
					continue
				}
				c.Methods = append(c.Methods[:i], c.Methods[i+1:]...)
				return
			}
		}
		t.Fatal("no deletable method in app")
	}},
	{"signature-change", func(t testing.TB, pkg *apk.Package) {
		_, m := editableMethod(t, pkg)
		m.NumArgs++
	}},
	{"field-access-change", func(t testing.TB, pkg *apk.Package) {
		for _, c := range pkg.Program.Classes() {
			for _, m := range c.Methods {
				for i := range m.Instrs {
					if m.Instrs[i].Op == ir.OpGetField {
						m.Instrs[i].Field.Name = "incrMutatedField"
						return
					}
				}
			}
		}
		t.Fatal("no field access in app")
	}},
}

func incrementalOptions(st *store.Store, workers int, provenance bool) nadroid.Options {
	return nadroid.Options{
		Workers:     workers,
		Provenance:  provenance,
		Store:       st,
		IRCache:     true,
		Incremental: true,
	}
}

// TestIncrementalMutationMatrix is the differential gate: for every
// (app, mutation, workers) cell, analyze the base app into a store,
// then the mutated app twice — incrementally against the store and
// cold without one — and require identical results.
func TestIncrementalMutationMatrix(t *testing.T) {
	apps := []string{"ConnectBot", "Swiftnotes", "SoundRecorder"}
	workerCounts := []int{1, 8}
	if testing.Short() {
		apps = apps[:1]
		workerCounts = []int{1}
	}
	for _, appName := range apps {
		app, ok := corpus.ByName(appName)
		if !ok {
			t.Fatalf("%s missing from corpus", appName)
		}
		baseSrc := dexasm.Format(app.Build())
		for _, mut := range mutations {
			mutated := app.Build()
			mut.fn(t, mutated)
			mutSrc := dexasm.Format(mutated)
			if mutSrc == baseSrc {
				t.Fatalf("%s/%s: mutation is a no-op", appName, mut.name)
			}
			for _, workers := range workerCounts {
				workers := workers
				appName, mutName, mutSrc := appName, mut.name, mutSrc
				t.Run(fmt.Sprintf("%s/%s/workers=%d", appName, mutName, workers), func(t *testing.T) {
					t.Parallel()
					// Evidence (provenance) equality is asserted on the
					// sequential configuration.
					provenance := workers == 1

					st, err := store.Open(t.TempDir(), store.Options{})
					if err != nil {
						t.Fatal(err)
					}
					opts := incrementalOptions(st, workers, provenance)
					ctx := context.Background()

					baseRes, err := nadroid.AnalyzeSource(ctx, baseSrc, opts)
					if err != nil {
						t.Fatalf("base run: %v", err)
					}
					if baseRes.Disposition != nadroid.DispositionCold {
						t.Fatalf("base run disposition = %q, want cold", baseRes.Disposition)
					}

					m := obs.NewMetrics()
					incRes, err := nadroid.AnalyzeSource(obs.WithMetrics(ctx, m), mutSrc, opts)
					if err != nil {
						t.Fatalf("incremental run: %v", err)
					}
					if m.Get("incr_methods_changed") == 0 {
						t.Errorf("incremental run saw no changed methods")
					}
					if mutName == "body-edit" && incRes.Disposition != nadroid.DispositionIncremental {
						t.Errorf("body edit disposition = %q, want incremental", incRes.Disposition)
					}

					coldOpts := nadroid.Options{Workers: workers, Provenance: provenance}
					coldRes, err := nadroid.AnalyzeSource(ctx, mutSrc, coldOpts)
					if err != nil {
						t.Fatalf("cold run: %v", err)
					}
					if got, want := deepSummary(t, incRes), deepSummary(t, coldRes); got != want {
						t.Errorf("incremental result differs from cold:\nincremental:\n%s\ncold:\n%s", got, want)
					}
				})
			}
		}
	}
}

// TestIncrementalStaleness drives the fallback paths: a corrupt
// partition, a version-skewed partition name, and a pre-partition base
// run must all fall back to a cold run — with the skip logged via the
// counter — and still produce correct results.
func TestIncrementalStaleness(t *testing.T) {
	app, ok := corpus.ByName("ConnectBot")
	if !ok {
		t.Fatal("ConnectBot missing from corpus")
	}
	baseSrc := dexasm.Format(app.Build())
	mutated := app.Build()
	mutations[0].fn(t, mutated)
	mutSrc := dexasm.Format(mutated)
	ctx := context.Background()

	coldRes, err := nadroid.AnalyzeSource(ctx, mutSrc, nadroid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := deepSummary(t, coldRes)

	seed := func(t *testing.T) (*store.Store, string) {
		t.Helper()
		dir := t.TempDir()
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nadroid.AnalyzeSource(ctx, baseSrc, incrementalOptions(st, 0, false)); err != nil {
			t.Fatal(err)
		}
		return st, dir
	}
	partitions := func(t *testing.T, dir string) []string {
		t.Helper()
		names, err := filepath.Glob(filepath.Join(dir, "incr", "*.incr"))
		if err != nil || len(names) == 0 {
			t.Fatalf("no partitions on disk (err %v)", err)
		}
		return names
	}

	t.Run("corrupt-partition", func(t *testing.T) {
		st, dir := seed(t)
		for _, name := range partitions(t, dir) {
			if err := os.WriteFile(name, []byte("NINCgarbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		m := obs.NewMetrics()
		res, err := nadroid.AnalyzeSource(obs.WithMetrics(ctx, m), mutSrc, incrementalOptions(st, 0, false))
		if err != nil {
			t.Fatal(err)
		}
		if res.Disposition != nadroid.DispositionCold {
			t.Errorf("disposition = %q, want cold fallback", res.Disposition)
		}
		if m.Get("incr_partition_skips") == 0 {
			t.Errorf("corrupt partition was not counted as a skip")
		}
		if deepSummary(t, res) != want {
			t.Errorf("corrupt-partition fallback result differs from cold")
		}
	})

	t.Run("version-skew", func(t *testing.T) {
		st, dir := seed(t)
		for _, name := range partitions(t, dir) {
			// A future-format partition is invisible by name: the current
			// version's lookup misses and the run falls back cold.
			skewed := strings.Replace(name, fmt.Sprintf("-v%d-", incr.Version), fmt.Sprintf("-v%d-", incr.Version+1), 1)
			if err := os.Rename(name, skewed); err != nil {
				t.Fatal(err)
			}
		}
		res, err := nadroid.AnalyzeSource(ctx, mutSrc, incrementalOptions(st, 0, false))
		if err != nil {
			t.Fatal(err)
		}
		if res.Disposition != nadroid.DispositionCold {
			t.Errorf("disposition = %q, want cold fallback", res.Disposition)
		}
		if deepSummary(t, res) != want {
			t.Errorf("version-skew fallback result differs from cold")
		}
	})

	t.Run("pre-partition-base", func(t *testing.T) {
		// A base run from before the partition format exists: blob
		// present, no partition file. The incremental run must fall back
		// cold and then write the missing partition.
		st, dir := seed(t)
		for _, name := range partitions(t, dir) {
			if err := os.Remove(name); err != nil {
				t.Fatal(err)
			}
		}
		res, err := nadroid.AnalyzeSource(ctx, mutSrc, incrementalOptions(st, 0, false))
		if err != nil {
			t.Fatal(err)
		}
		if res.Disposition != nadroid.DispositionCold {
			t.Errorf("disposition = %q, want cold fallback", res.Disposition)
		}
		if deepSummary(t, res) != want {
			t.Errorf("pre-partition fallback result differs from cold")
		}
		if len(partitions(t, dir)) == 0 {
			t.Errorf("cold fallback did not write the mutated app's partition")
		}
	})
}

// TestIncrementalDiffGate is the triage acceptance path with
// incrementality on: analyze a base app into a store, inject one
// artificial UAF, re-analyze incrementally, and the stored-run diff
// must show exactly the injected warning — nothing fixed, every
// pre-existing fingerprint persisting.
func TestIncrementalDiffGate(t *testing.T) {
	app, ok := corpus.ByName("Swiftnotes")
	if !ok {
		t.Fatal("Swiftnotes missing from corpus")
	}
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	persist := func(src string) (*store.Run, *nadroid.Result) {
		t.Helper()
		opts := incrementalOptions(st, 0, false)
		opts.IRDigest = store.IRDigest(src)
		res, err := nadroid.AnalyzeSource(ctx, src, opts)
		if err != nil {
			t.Fatal(err)
		}
		wire := server.OptionsWire{}
		run, err := server.StoreRun(server.ResultKey(src, wire), wire, server.EncodeResult(app.Name(), res), time.Now())
		if err != nil {
			t.Fatal(err)
		}
		run.IRDigest = opts.IRDigest
		if err := st.Put(run); err != nil {
			t.Fatal(err)
		}
		return run, res
	}

	before, baseRes := persist(dexasm.Format(app.Build()))
	if baseRes.Disposition != nadroid.DispositionCold {
		t.Fatalf("base disposition = %q, want cold", baseRes.Disposition)
	}

	// A behavior-neutral body edit rides the incremental path and the
	// diff against the base run is empty — re-analysis invents nothing.
	edited := app.Build()
	mutations[0].fn(t, edited)
	editRun, editRes := persist(dexasm.Format(edited))
	if editRes.Disposition != nadroid.DispositionIncremental {
		t.Errorf("body-edit disposition = %q, want incremental", editRes.Disposition)
	}
	dEdit, err := st.Diff(app.Name(), before.ID, editRun.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(dEdit.New) != 0 || len(dEdit.Fixed) != 0 {
		t.Errorf("neutral edit diff: new %v fixed %v, want empty", dEdit.New, dEdit.Fixed)
	}
	if len(dEdit.Persisting) != len(before.Warnings) {
		t.Errorf("neutral edit persisting = %d, want all %d", len(dEdit.Persisting), len(before.Warnings))
	}

	// The injection adds whole classes — a structural change, so the
	// reuse gates refuse and the run is a (correct) cold fallback. The
	// diff still shows exactly the injected site and nothing else.
	injected, sites := app.Spec.BuildInjected([]corpus.InjectionKind{corpus.InjectECPC})
	if len(sites) != 1 {
		t.Fatalf("injected sites = %d, want 1", len(sites))
	}
	after, incRes := persist(dexasm.Format(injected))
	if incRes.Disposition != nadroid.DispositionCold {
		t.Errorf("injected-run disposition = %q, want cold (structural change)", incRes.Disposition)
	}

	d, err := st.Diff(app.Name(), before.ID, after.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.New) != 1 {
		t.Fatalf("new = %d warning(s) %v, want exactly the injected one", len(d.New), d.New)
	}
	if !strings.Contains(d.New[0].Field, sites[0].Field) {
		t.Errorf("new warning field = %q, want the injected site %s", d.New[0].Field, sites[0].Field)
	}
	if len(d.Fixed) != 0 {
		t.Errorf("fixed = %v, want none", d.Fixed)
	}
	if len(d.Persisting) != len(before.Warnings) {
		t.Errorf("persisting = %d, want all %d pre-existing warnings", len(d.Persisting), len(before.Warnings))
	}
}

// TestCorpusGoldenIncremental locks the Table-1 aggregate with
// incrementality enabled: a store-backed corpus sweep (cold, writing
// partitions) and a second sweep replaying those partitions must both
// reproduce the golden per-app counts exactly.
func TestCorpusGoldenIncremental(t *testing.T) {
	if testing.Short() {
		t.Skip("two full corpus sweeps")
	}
	data, err := os.ReadFile(filepath.Join(goldenDir, "corpus.json"))
	if err != nil {
		t.Fatalf("reading goldens: %v", err)
	}
	var want []goldenCounts
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	wantByApp := make(map[string]goldenCounts, len(want))
	for _, w := range want {
		wantByApp[w.App] = w
	}

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var work []nadroid.CorpusApp
	for _, app := range corpus.Apps() {
		work = append(work, nadroid.CorpusApp{Name: app.Name(), Build: app.Build})
	}
	sweep := func(pass string, opts nadroid.Options, wantDisp string) {
		results := nadroid.AnalyzeCorpus(work, nadroid.CorpusOptions{Workers: 8, Analysis: opts})
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("%s %s: %v", pass, r.App, r.Err)
			}
			got := goldenCounts{
				App:          r.App,
				Potential:    r.Result.Stats.Potential,
				AfterSound:   r.Result.Stats.AfterSound,
				AfterUnsound: r.Result.Stats.AfterUnsound,
			}
			if got != wantByApp[r.App] {
				t.Errorf("%s %s: counts %+v differ from golden %+v", pass, r.App, got, wantByApp[r.App])
			}
			if r.Result.Disposition != wantDisp {
				t.Errorf("%s %s: disposition = %q, want %q", pass, r.App, r.Result.Disposition, wantDisp)
			}
		}
	}
	// Pass 1: cold, writes blobs and partitions.
	sweep("pass1", nadroid.Options{Store: st, IRCache: true, Incremental: true}, nadroid.DispositionCold)
	// Pass 2: identical content with the blob probe disabled, so every
	// app replays its own partitions through the incremental path.
	sweep("pass2", nadroid.Options{Store: st, IRCache: false, Incremental: true}, nadroid.DispositionIncremental)
}
