// nadroid_detect_test.go is the acceptance gate for the pluggable
// detector subsystem: the async-error families must report exactly the
// corpus's seeded ground truth (and recognize the benign covered
// variants), detector selection must hide families end to end, and the
// shared analysis context must be computed exactly once per run.
package nadroid_test

import (
	"context"
	"strings"
	"testing"

	"nadroid"
	"nadroid/internal/corpus"
	"nadroid/internal/obs"
)

// familyCounts tallies generic detector warnings per family.
func familyCounts(res *nadroid.Result) map[string]int {
	counts := make(map[string]int)
	for _, w := range res.Detect.Warnings {
		counts[w.Detector]++
	}
	return counts
}

// TestAsyncDetectorGroundTruth checks every seeded async-error instance
// is reported and every benign (joined / cancelled) variant is
// recognized as covered, on each supplemental corpus app.
func TestAsyncDetectorGroundTruth(t *testing.T) {
	apps := corpus.AsyncApps()
	if len(apps) == 0 {
		t.Fatal("no async corpus apps")
	}
	for _, app := range apps {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			res, err := nadroid.Analyze(app.Build(), nadroid.Options{})
			if err != nil {
				t.Fatal(err)
			}
			counts := familyCounts(res)
			if got, want := counts["leaked-thread"], app.Spec.LeakedThread; got != want {
				t.Errorf("leaked-thread warnings = %d, want %d (seeded; %d benign join variants must stay covered)",
					got, want, app.Spec.LeakedThreadJoin)
			}
			if got, want := counts["lost-result"], app.Spec.LostResult; got != want {
				t.Errorf("lost-result warnings = %d, want %d (seeded; %d benign cancel variants must stay covered)",
					got, want, app.Spec.LostResultCancel)
			}
			// The warnings surface in the report (Extras) and are
			// detector-qualified there.
			if got, want := len(res.Report.Extras), app.Spec.LeakedThread+app.Spec.LostResult; got != want {
				t.Errorf("report extras = %d, want %d", got, want)
			}
			for _, w := range res.Detect.Warnings {
				if w.Fingerprint == "" {
					t.Errorf("%s warning %q has no fingerprint", w.Detector, w.Subject)
				}
				if !strings.Contains(res.Report.String(), w.Detector+"/"+w.Tag) {
					t.Errorf("report text missing detector-qualified tag %s/%s", w.Detector, w.Tag)
				}
			}
		})
	}
}

// TestDetectorSelectionHidesFamilies disables each async family in turn
// and checks its warnings vanish while the other family's remain.
func TestDetectorSelectionHidesFamilies(t *testing.T) {
	app, ok := corpus.ByName("AsyncGrabBag")
	if !ok {
		t.Fatal("AsyncGrabBag missing from corpus")
	}
	cases := []struct {
		name      string
		detectors []string
		wantLeak  int
		wantLost  int
	}{
		{"default-all", nil, 1, 1},
		{"no-leaked-thread", []string{"uaf", "nosleep", "lost-result"}, 0, 1},
		{"no-lost-result", []string{"uaf", "nosleep", "leaked-thread"}, 1, 0},
		{"uaf-only", []string{"uaf"}, 0, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := nadroid.Analyze(app.Build(), nadroid.Options{Detectors: tc.detectors})
			if err != nil {
				t.Fatal(err)
			}
			counts := familyCounts(res)
			if counts["leaked-thread"] != tc.wantLeak {
				t.Errorf("leaked-thread = %d, want %d", counts["leaked-thread"], tc.wantLeak)
			}
			if counts["lost-result"] != tc.wantLost {
				t.Errorf("lost-result = %d, want %d", counts["lost-result"], tc.wantLost)
			}
			for _, d := range res.Detect.Enabled {
				if _, ok := res.Detect.Counts[d]; !ok {
					t.Errorf("enabled detector %s missing from Counts", d)
				}
			}
			if len(res.Detect.Counts) != len(res.Detect.Enabled) {
				t.Errorf("Counts has %d entries, Enabled has %d", len(res.Detect.Counts), len(res.Detect.Enabled))
			}
		})
	}
}

// TestDisablingUAFSkipsFilteringPipeline runs with the classic detector
// off: no potential pairs, an empty report, and the structured UAF
// result absent — while the async families still work.
func TestDisablingUAFSkipsFilteringPipeline(t *testing.T) {
	app, _ := corpus.ByName("AsyncGrabBag")
	res, err := nadroid.Analyze(app.Build(), nadroid.Options{Detectors: []string{"leaked-thread", "lost-result"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detection != nil {
		t.Error("Detection should be nil with the uaf detector disabled")
	}
	if res.Stats.Potential != 0 || len(res.Report.Entries) != 0 {
		t.Errorf("uaf-disabled run still has potential=%d entries=%d", res.Stats.Potential, len(res.Report.Entries))
	}
	if got := familyCounts(res)["leaked-thread"]; got != 1 {
		t.Errorf("leaked-thread = %d, want 1", got)
	}
}

// TestUnknownDetectorRejected checks selection errors surface before
// analysis runs.
func TestUnknownDetectorRejected(t *testing.T) {
	app, _ := corpus.ByName("ConnectBot")
	_, err := nadroid.Analyze(app.Build(), nadroid.Options{Detectors: []string{"use-after-free"}})
	if err == nil {
		t.Fatal("unknown detector name accepted")
	}
	if !strings.Contains(err.Error(), "use-after-free") || !strings.Contains(err.Error(), "uaf") {
		t.Errorf("error %q should name the offender and the valid set", err)
	}
}

// TestSharedContextComputedOnce: all four detectors ride one shared
// analysis context — accesses, escape, MHB, and the Datalog engine are
// built exactly once per analysis.
func TestSharedContextComputedOnce(t *testing.T) {
	app, _ := corpus.ByName("AsyncGrabBag")
	metrics := obs.NewMetrics()
	ctx := obs.WithMetrics(context.Background(), metrics)
	if _, err := nadroid.AnalyzeContext(ctx, app.Build(), nadroid.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := metrics.Get("detect_context_builds"); got != 1 {
		t.Fatalf("detect_context_builds = %d, want exactly 1", got)
	}
	// The per-app fact base is populated once, not once per detector.
	if got := metrics.Get("race_accesses"); got <= 0 {
		t.Fatalf("race_accesses = %d, want > 0", got)
	}
}
