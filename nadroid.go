// Package nadroid is a from-scratch Go reproduction of "nAdroid:
// Statically Detecting Ordering Violations in Android Applications"
// (Fu, Lee, Jung — CGO 2018): a static use-after-free ordering-violation
// detector for Android's hybrid event/thread concurrency model.
//
// The pipeline mirrors the paper's Figure 2:
//
//  1. Modeling (§4): threadification converts every event callback into a
//     modeled thread (internal/threadify).
//  2. Detection (§5): a Chord-style k-object-sensitive race detector
//     finds racy use/free pairs (internal/pointsto, internal/race,
//     internal/uaf).
//  3. Filtering (§6): sound (MHB, IG, IA) and unsound (RHB, CHB, PHB,
//     MA, UR, TT) filters prune false and benign warnings
//     (internal/filters).
//  4. Review aids (§7): surviving warnings are classified (EC-EC … C-NT)
//     with callback lineage (internal/report), and can be mechanically
//     validated by exploring event schedules until a
//     NullPointerException witnesses the UAF (internal/explore).
//
// Applications are authored with internal/appbuilder or loaded from the
// dexasm text format (internal/dexasm); the 27-app synthetic corpus
// reproducing the paper's evaluation lives in internal/corpus.
package nadroid

import (
	"context"
	"time"

	"nadroid/internal/apk"
	"nadroid/internal/explore"
	"nadroid/internal/filters"
	"nadroid/internal/report"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// Options configures an analysis run.
type Options struct {
	// K is the points-to object-sensitivity depth (default 2, the
	// paper's setting).
	K int
	// SkipSoundFilters disables the §6.1 filters.
	SkipSoundFilters bool
	// SkipUnsoundFilters disables the §6.2 filters (for users who demand
	// soundness; the unsound filters then act only as ranking).
	SkipUnsoundFilters bool
	// MultiLooper drops the single-looper assumption (§8.1), downgrading
	// the IG/IA filters to require locks even between looper callbacks.
	MultiLooper bool
	// Validate runs the schedule explorer over surviving warnings and
	// fills Result.Harmful.
	Validate bool
	// Explore bounds validation when Validate is set.
	Explore explore.Options
}

// Timing is the per-phase wall-clock split (§8.8).
type Timing struct {
	Modeling   time.Duration
	Detection  time.Duration
	Filtering  time.Duration
	Validation time.Duration
}

// Total sums the phases.
func (t Timing) Total() time.Duration {
	return t.Modeling + t.Detection + t.Filtering + t.Validation
}

// Result bundles everything a caller may want from a run.
type Result struct {
	// Model is the threadified program.
	Model *threadify.Model
	// Detection holds every potential warning, with filtered thread
	// pairs annotated by the filter that removed them.
	Detection *uaf.Detection
	// Stats summarizes the filter pipeline.
	Stats *filters.Stats
	// Report classifies and ranks the survivors.
	Report *report.Report
	// Harmful lists survivors confirmed by a dynamic witness (only when
	// Options.Validate was set).
	Harmful []*uaf.Warning
	// Timing is the phase breakdown.
	Timing Timing
}

// Analyze runs the full nAdroid pipeline on one application package. It
// is AnalyzeContext with a background context; callers that need
// deadlines or cancellation should use AnalyzeContext directly.
func Analyze(pkg *apk.Package, opts Options) (*Result, error) {
	return AnalyzeContext(context.Background(), pkg, opts)
}

// AnalyzeContext runs the full nAdroid pipeline, honoring ctx between
// the modeling, detection, filtering, and validation phases (and, per
// schedule, inside validation — the only phase whose runtime is
// open-ended). A canceled or expired context aborts the run with
// ctx.Err(); no partial Result is returned.
func AnalyzeContext(ctx context.Context, pkg *apk.Package, opts Options) (*Result, error) {
	res := &Result{}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	model, err := threadify.Build(pkg, threadify.Options{K: opts.K})
	if err != nil {
		return nil, err
	}
	res.Model = model
	res.Timing.Modeling = time.Since(start)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start = time.Now()
	res.Detection = uaf.Detect(model)
	res.Timing.Detection = time.Since(start)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start = time.Now()
	res.Stats = runFilters(res.Detection, opts)
	res.Timing.Filtering = time.Since(start)

	res.Report = report.New(pkg.Name, res.Detection)

	if opts.Validate {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start = time.Now()
		harmful, err := explore.ValidateAllContext(ctx, pkg, res.Model, res.Detection.Alive(), opts.Explore)
		if err != nil {
			return nil, err
		}
		res.Harmful = harmful
		res.Timing.Validation = time.Since(start)
	}
	return res, nil
}

func runFilters(d *uaf.Detection, opts Options) *filters.Stats {
	ctx := filters.NewContextWith(d, filters.Options{MultiLooper: opts.MultiLooper})
	st := &filters.Stats{Potential: d.AliveCount(), Removed: make(map[string]int)}
	apply := func(fs []filters.Filter) {
		for _, f := range fs {
			for _, w := range d.Warnings {
				if !w.Alive() {
					continue
				}
				f.Apply(ctx, w)
				if !w.Alive() {
					st.Removed[f.Name()]++
				}
			}
		}
	}
	if !opts.SkipSoundFilters {
		apply(filters.SoundFilters())
	}
	st.AfterSound = d.AliveCount()
	if !opts.SkipUnsoundFilters {
		apply(filters.UnsoundFilters())
	}
	st.AfterUnsound = d.AliveCount()
	return st
}
