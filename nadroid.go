// Package nadroid is a from-scratch Go reproduction of "nAdroid:
// Statically Detecting Ordering Violations in Android Applications"
// (Fu, Lee, Jung — CGO 2018): a static use-after-free ordering-violation
// detector for Android's hybrid event/thread concurrency model.
//
// The pipeline mirrors the paper's Figure 2:
//
//  1. Modeling (§4): threadification converts every event callback into a
//     modeled thread (internal/threadify).
//  2. Detection (§5): a Chord-style k-object-sensitive race detector
//     finds racy use/free pairs (internal/pointsto, internal/race,
//     internal/uaf).
//  3. Filtering (§6): sound (MHB, IG, IA) and unsound (RHB, CHB, PHB,
//     MA, UR, TT) filters prune false and benign warnings
//     (internal/filters).
//  4. Review aids (§7): surviving warnings are classified (EC-EC … C-NT)
//     with callback lineage (internal/report), and can be mechanically
//     validated by exploring event schedules until a
//     NullPointerException witnesses the UAF (internal/explore).
//
// Applications are authored with internal/appbuilder or loaded from the
// dexasm text format (internal/dexasm); the 27-app synthetic corpus
// reproducing the paper's evaluation lives in internal/corpus.
package nadroid

import (
	"context"
	"time"

	"nadroid/internal/apk"
	"nadroid/internal/detect"
	"nadroid/internal/escape"
	"nadroid/internal/evidence"
	"nadroid/internal/explore"
	"nadroid/internal/filters"
	"nadroid/internal/obs"
	"nadroid/internal/report"
	"nadroid/internal/store"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// Options configures an analysis run.
type Options struct {
	// K is the points-to object-sensitivity depth (default 2, the
	// paper's setting).
	K int
	// SkipSoundFilters disables the §6.1 filters.
	SkipSoundFilters bool
	// SkipUnsoundFilters disables the §6.2 filters (for users who demand
	// soundness; the unsound filters then act only as ranking).
	SkipUnsoundFilters bool
	// MultiLooper drops the single-looper assumption (§8.1), downgrading
	// the IG/IA filters to require locks even between looper callbacks.
	MultiLooper bool
	// Validate runs the schedule explorer over surviving warnings and
	// fills Result.Harmful.
	Validate bool
	// Explore bounds validation when Validate is set.
	Explore explore.Options
	// Workers bounds every phase's worker pool: the detection Datalog
	// engines, the per-filter warning fan-out, and (unless
	// Explore.Workers is set) the validation sweep. 0 selects GOMAXPROCS;
	// 1 forces fully sequential execution. Results are identical for any
	// setting.
	Workers int
	// Detectors selects the bug-family detectors to run by registry name
	// (internal/detect). nil runs every registered detector; an empty
	// non-nil set or an unknown name is an error. Disabling "uaf" skips
	// the §6 filter pipeline and yields an empty classic report.
	Detectors []string
	// Provenance records full warning provenance: Datalog derivation
	// trees (datalog.EnableProvenance on the shared engine), per-filter
	// verdicts, aliasing chains, and validation witnesses, assembled
	// into Result.Evidence keyed by fingerprint. Off by default — the
	// record costs memory per derived tuple and is for triage, not for
	// bulk corpus sweeps.
	Provenance bool
	// Store, when set together with IRDigest, enables the persistent
	// derived caches: validation outcomes are read from and written to
	// the store's witness cache, and (with IRCache) the binary
	// cold-start cache replaces the modeling phase on warm runs. Both
	// caches are behavior-transparent.
	Store *store.Store
	// IRDigest is the content digest of the app's canonical program
	// text (store.IRDigest over the dexasm rendering). It keys every
	// derived-cache entry; empty disables both caches.
	IRDigest string
	// IRCache additionally enables the binary cold-start cache (parsed
	// IR + threadified model + solved points-to facts).
	IRCache bool
	// Incremental enables incremental re-analysis (with Store and
	// IRDigest): when the cold-start cache misses because the app
	// changed, the run diffs the program method-by-method against the
	// nearest stored base run and reuses every analysis partition whose
	// digest gate passes — the points-to snapshot, per-thread escape
	// facts (re-derived from deltas on the Datalog engine), and
	// per-thread access sets. Results are identical to a cold run;
	// Result.Disposition reports what happened.
	Incremental bool
	// irProbed marks that the cold-start cache was already consulted
	// for this run (AnalyzeSource probes before parsing), so the
	// pipeline core does not probe — and count — a second time.
	irProbed bool
}

// Timing is the per-phase wall-clock split (§8.8).
type Timing struct {
	Modeling   time.Duration
	Detection  time.Duration
	Filtering  time.Duration
	Validation time.Duration
}

// Total sums the phases.
func (t Timing) Total() time.Duration {
	return t.Modeling + t.Detection + t.Filtering + t.Validation
}

// Result bundles everything a caller may want from a run.
type Result struct {
	// Model is the threadified program.
	Model *threadify.Model
	// Detection holds every potential warning, with filtered thread
	// pairs annotated by the filter that removed them. nil when the uaf
	// detector was disabled via Options.Detectors.
	Detection *uaf.Detection
	// Detect bundles the full detector-pipeline output: which detectors
	// ran, per-detector warning counts, the structured no-sleep result,
	// and the generic warnings of the async-error families.
	Detect *detect.Results
	// Stats summarizes the filter pipeline.
	Stats *filters.Stats
	// Report classifies and ranks the survivors.
	Report *report.Report
	// Harmful lists survivors confirmed by a dynamic witness (only when
	// Options.Validate was set).
	Harmful []*uaf.Warning
	// Evidence maps warning fingerprints to their provenance records
	// (only when Options.Provenance was set). Every UAF warning gets a
	// record, including ones the filters killed — "why was this
	// filtered" is half the point of the trail.
	Evidence map[string]*evidence.Evidence
	// Timing is the phase breakdown.
	Timing Timing
	// Disposition reports how the run's modeling state was obtained:
	// DispositionCold (computed from scratch), DispositionWarm
	// (restored from the cold-start blob), or DispositionIncremental
	// (diffed against a base run with at least one partition reused).
	Disposition string
}

// Analyze runs the full nAdroid pipeline on one application package. It
// is AnalyzeContext with a background context; callers that need
// deadlines or cancellation should use AnalyzeContext directly.
func Analyze(pkg *apk.Package, opts Options) (*Result, error) {
	return AnalyzeContext(context.Background(), pkg, opts)
}

// AnalyzeContext runs the full nAdroid pipeline, honoring ctx between
// the modeling, detection, filtering, and validation phases (and, per
// schedule, inside validation — the only phase whose runtime is
// open-ended). A canceled or expired context aborts the run with
// ctx.Err(); no partial Result is returned.
//
// ctx also carries the observability collectors (internal/obs): when a
// tracer, metric set, or logger is attached, every phase and its
// sub-stages record spans, deep counters, and structured phase logs.
// With nothing attached the instrumentation is a no-op.
func AnalyzeContext(ctx context.Context, pkg *apk.Package, opts Options) (*Result, error) {
	return analyze(ctx, pkg, nil, nil, opts)
}

// analyze is the shared pipeline core. A non-nil model means the caller
// already restored pkg+model (and the escape result) from the cold-start
// cache and the modeling phase is skipped; a nil model runs cold
// modeling and, after the detection context is built, writes the cache
// when enabled.
func analyze(ctx context.Context, pkg *apk.Package, model *threadify.Model, esc *escape.Result, opts Options) (*Result, error) {
	res := &Result{}
	// Resolve the detector set before any expensive phase runs.
	detectors, err := detect.Select(opts.Detectors)
	if err != nil {
		return nil, err
	}
	detectorNames := make([]string, len(detectors))
	for i, d := range detectors {
		detectorNames[i] = d.Name()
	}
	ctx, root := obs.Start(ctx, "analyze", obs.KV("app", pkg.Name), obs.KV("k", opts.K))
	defer root.End()
	log := obs.Logger(ctx)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	if model != nil {
		res.Disposition = DispositionWarm
	} else if dec := loadIRCache(ctx, opts); dec != nil {
		pkg = dec.Pkg
		model = dec.Model
		esc = dec.Escape
		res.Disposition = DispositionWarm
	}
	cold := model == nil
	var inc *incrRun
	if cold {
		mctx, span := obs.Start(ctx, "modeling")
		if incrEnabled(opts) {
			// The incremental path builds model, escape, and accesses
			// together (escape cost moves into the modeling bucket).
			model, esc, inc, err = prepareIncremental(mctx, pkg, opts)
		} else {
			model, err = threadify.BuildContext(mctx, pkg, threadify.Options{K: opts.K})
		}
		span.End()
		if err != nil {
			return nil, err
		}
		res.Disposition = DispositionCold
		if inc != nil {
			res.Disposition = inc.disposition
		}
	}
	res.Model = model
	res.Timing.Modeling = time.Since(start)
	log.Info("phase done", "phase", "modeling",
		"ms", res.Timing.Modeling.Milliseconds(), "threads", len(model.Threads))

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start = time.Now()
	dctx, span := obs.Start(ctx, "detection")
	dopts := detect.Options{Workers: opts.Workers, Provenance: opts.Provenance, Escape: esc}
	if inc != nil {
		dopts.Accesses = inc.accesses
	}
	dc := detect.BuildContext(dctx, pkg.Name, model, dopts)
	dres, err := detect.Run(dctx, dc, detectors)
	span.End()
	if err != nil {
		return nil, err
	}
	if cold {
		// The blob carries the escape facts the context just solved, so
		// warm runs skip parsing, modeling, AND the escape solve.
		saveIRCache(ctx, pkg, model, dc.Escape, opts)
		if inc != nil {
			saveIncrPartition(ctx, inc.partition, opts)
		}
	}
	res.Detect = dres
	res.Detection = dres.UAF
	res.Timing.Detection = time.Since(start)
	warnings := len(dres.Warnings)
	if res.Detection != nil {
		warnings += len(res.Detection.Warnings)
	}
	log.Info("phase done", "phase", "detection",
		"ms", res.Timing.Detection.Milliseconds(), "warnings", warnings)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start = time.Now()
	var trail *filters.Trail
	if opts.Provenance {
		trail = filters.NewTrail()
	}
	if res.Detection != nil {
		fctx, span := obs.Start(ctx, "filtering")
		res.Stats = filters.RunWith(fctx, res.Detection, filters.RunConfig{
			Options:     filters.Options{MultiLooper: opts.MultiLooper},
			SkipSound:   opts.SkipSoundFilters,
			SkipUnsound: opts.SkipUnsoundFilters,
			Workers:     opts.Workers,
			MHB:         dc.MHB,
			Trail:       trail,
		})
		span.End()
	} else {
		// The uaf detector is disabled: nothing to filter.
		res.Stats = &filters.Stats{Removed: make(map[string]int)}
	}
	res.Timing.Filtering = time.Since(start)
	log.Info("phase done", "phase", "filtering",
		"ms", res.Timing.Filtering.Milliseconds(), "surviving", res.Stats.AfterUnsound)

	_, span = obs.Start(ctx, "report")
	if res.Detection != nil {
		res.Report = report.New(pkg.Name, res.Detection)
	} else {
		res.Report = &report.Report{App: pkg.Name, Model: model, ByCategory: make(map[report.Category]int)}
	}
	for _, w := range dres.Warnings {
		res.Report.Extras = append(res.Report.Extras, report.Extra{
			Detector:    w.Detector,
			Tag:         w.Tag,
			Subject:     w.Subject,
			Site:        w.Site,
			Lineage:     w.Lineage,
			Detail:      w.Detail,
			Fingerprint: w.Fingerprint,
		})
	}
	span.End()

	var validations []explore.Validation
	if opts.Validate && res.Detection != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start = time.Now()
		eopts := opts.Explore
		if eopts.Workers == 0 {
			eopts.Workers = opts.Workers
		}
		// Partial-order reduction: derive the callback conflict relation
		// from the access facts the detectors already computed, so the
		// explorer executes one schedule per trace-equivalence class.
		eopts.Conflicts = explore.NewConflicts(res.Model, dc.Accesses)
		vctx, span := obs.Start(ctx, "validation")
		vals, err := validateWithCache(vctx, pkg, res.Model, res.Detection.Alive(), opts, eopts, detectorNames)
		var harmful []*uaf.Warning
		for _, v := range vals {
			if v.Harmful {
				harmful = append(harmful, v.Warning)
			}
		}
		span.SetAttr("harmful", len(harmful))
		span.End()
		if err != nil {
			return nil, err
		}
		validations = vals
		res.Harmful = harmful
		res.Timing.Validation = time.Since(start)
		log.Info("phase done", "phase", "validation",
			"ms", res.Timing.Validation.Milliseconds(), "harmful", len(harmful))
	}

	if opts.Provenance && res.Detection != nil {
		_, span := obs.Start(ctx, "evidence")
		res.Evidence = assembleEvidence(pkg.Name, dc, res, trail, validations)
		span.SetAttr("records", len(res.Evidence))
		span.End()
	}
	return res, nil
}
