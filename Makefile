# Build/verify entry points. `make check` is the CI gate: vet plus the
# short test suite under the race detector (the internal/server pool and
# cache tests are written to exercise their locking under -race).

GO ?= go

.PHONY: build vet test test-short race bench bench-diff check serve

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -short -race ./...

# bench sweeps every benchmark once (1x keeps the full-corpus pipeline
# benchmarks tractable) and converts the output into $(BENCH_OUT):
# per-phase medians (including the per-detector PhaseDetection/<name>
# split), deep counters, and the traced-vs-untraced pair.
BENCH_OUT := BENCH_pr9.json
# The baseline is the newest committed BENCH_pr*.json other than the one
# being written (version-sorted, so a pr10 would outrank a pr9).
BENCH_BASE = $(shell ls BENCH_pr*.json 2>/dev/null | grep -vx '$(BENCH_OUT)' | sort -V | tail -1)

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . | $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# bench-diff compares the fresh sweep against the newest committed
# baseline. Advisory because 1x benchmarks are noisy; read the per-line
# percentages, not just the exit status.
bench-diff: bench
	@if [ -z "$(BENCH_BASE)" ]; then echo "bench-diff: no BENCH_pr*.json baseline, skipping"; \
	else $(GO) run ./cmd/benchjson diff -advisory $(BENCH_BASE) $(BENCH_OUT); fi

check: build vet race bench-diff

serve: build
	$(GO) run ./cmd/nadroid-serve
