# Build/verify entry points. `make check` is the CI gate: vet plus the
# short test suite under the race detector (the internal/server pool and
# cache tests are written to exercise their locking under -race).

GO ?= go

.PHONY: build vet test test-short race bench bench-diff check serve

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -short -race ./...

# bench sweeps every benchmark once (1x keeps the full-corpus pipeline
# benchmarks tractable) and converts the output into BENCH_pr6.json:
# per-phase medians (including the per-detector PhaseDetection/<name>
# split), deep counters, and the traced-vs-untraced pair.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . | $(GO) run ./cmd/benchjson -out BENCH_pr6.json

# bench-diff compares the fresh sweep against the previous PR's committed
# baseline. Advisory because 1x benchmarks are noisy; read the per-line
# percentages, not just the exit status.
bench-diff: bench
	$(GO) run ./cmd/benchjson diff -advisory BENCH_pr4.json BENCH_pr6.json

check: build vet race bench-diff

serve: build
	$(GO) run ./cmd/nadroid-serve
