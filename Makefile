# Build/verify entry points. `make check` is the CI gate: vet plus the
# short test suite under the race detector (the internal/server pool and
# cache tests are written to exercise their locking under -race).

GO ?= go

.PHONY: build vet test test-short race bench check serve

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -short -race ./...

# bench sweeps every benchmark once (1x keeps the full-corpus pipeline
# benchmarks tractable) and converts the output into BENCH_pr2.json:
# per-phase medians, deep counters, and the traced-vs-untraced pair.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . | $(GO) run ./cmd/benchjson -out BENCH_pr2.json

check: build vet race bench

serve: build
	$(GO) run ./cmd/nadroid-serve
