# Build/verify entry points. `make check` is the CI gate: vet plus the
# short test suite under the race detector (the internal/server pool and
# cache tests are written to exercise their locking under -race).

GO ?= go

.PHONY: build vet test test-short race check serve

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -short -race ./...

check: build vet race

serve: build
	$(GO) run ./cmd/nadroid-serve
