package corpus

import (
	"fmt"

	"nadroid/internal/apk"
	"nadroid/internal/appbuilder"
	"nadroid/internal/framework"
)

// InjectionKind enumerates the artificial UAF shapes of the §8.6
// false-negative study (Table 2). The first five mirror the origin
// taxonomy; the last two reproduce the paper's two false-negative
// mechanisms.
type InjectionKind int

const (
	// InjectECEC seeds an entry-callback vs entry-callback UAF.
	InjectECEC InjectionKind = iota
	// InjectECPC seeds an entry-callback vs posted-callback UAF.
	InjectECPC
	// InjectPCPC seeds a posted vs posted UAF.
	InjectPCPC
	// InjectCRT seeds a callback vs reachable-thread UAF.
	InjectCRT
	// InjectCNT seeds a callback vs non-reachable-thread UAF.
	InjectCNT
	// InjectHiddenBinder routes the use through an IBinder registered
	// with the framework — a call path static analysis cannot see
	// ("Missed by detection" in Table 2).
	InjectHiddenBinder
	// InjectErrorFinish places a finish() on an error path of the
	// freeing callback, which the unsound CHB filter wrongly trusts
	// ("Pruned by unsound filters" in Table 2).
	InjectErrorFinish
)

var injectionNames = [...]string{"EC-EC", "EC-PC", "PC-PC", "C-RT", "C-NT", "hidden-binder", "error-finish"}

func (k InjectionKind) String() string {
	if int(k) < len(injectionNames) {
		return injectionNames[k]
	}
	return fmt.Sprintf("inject(%d)", int(k))
}

// InjectedSite records where one artificial UAF was planted.
type InjectedSite struct {
	Kind  InjectionKind
	Class string // class declaring the shared field
	Field string
}

// BuildInjected builds the spec's app with artificial UAFs added,
// returning the package and the planted sites.
func (s Spec) BuildInjected(kinds []InjectionKind) (*apk.Package, []InjectedSite) {
	g := newGen(s.Name)
	s.emit(g)
	var sites []InjectedSite
	for _, k := range kinds {
		var cls, field string
		switch k {
		case InjectECEC:
			cls, field = g.trueBackButton()
		case InjectECPC:
			cls, field = g.trueServiceUAF()
		case InjectPCPC:
			cls, field = g.truePostedUAF()
		case InjectCRT:
			cls, field = g.injectCRT()
		case InjectCNT:
			cls, field = g.trueThreadUAF()
		case InjectHiddenBinder:
			cls, field = g.injectHiddenBinder()
		case InjectErrorFinish:
			cls, field = g.injectErrorFinish()
		}
		sites = append(sites, InjectedSite{Kind: k, Class: cls, Field: field})
	}
	return g.finish().MustBuild(), sites
}

// injectCRT: a click callback starts a thread that frees the field the
// callback then uses — the freeing thread is Reachable from the
// callback.
func (g *gen) injectCRT() (string, string) {
	i := g.next()
	field := g.newField("crt", i)
	actCls := g.act.Name()
	g.allocInCreate(field)
	thrCls := g.cls(fmt.Sprintf("CRTThr%d", i))
	th := g.b.ThreadClass(thrCls)
	th.Field("outer", actCls)
	run := th.Method("run", 0)
	o := run.GetThis("outer")
	run.Free(o, actCls, field)
	run.Return()
	g.listener(fmt.Sprintf("CRTUser%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		t := mb.New(thrCls)
		mb.PutField(t, thrCls, "outer", outer)
		mb.InvokeVoid(t, thrCls, "start")
		useField(mb, outer, actCls, field, g.valCls())
	})
	return actCls, field
}

// injectHiddenBinder: the use lives in an IBinder.transact callback
// registered through ServiceManager.addService. The dynamic runtime
// delivers transact; the static call graph has no edge to it, so the
// warning is missed (the Mms rows of Table 2).
func (g *gen) injectHiddenBinder() (string, string) {
	i := g.next()
	field := g.newField("hbind", i)
	actCls := g.act.Name()
	g.allocInCreate(field)
	bindCls := g.cls(fmt.Sprintf("HBinder%d", i))
	bind := g.b.Class(bindCls, framework.Binder)
	bind.Field("outer", actCls)
	tm := bind.Method("transact", 1)
	o := tm.GetThis("outer")
	useField(tm, o, actCls, field, g.valCls())
	tm.Return()
	bv := g.onCreate.New(bindCls)
	g.onCreate.PutField(bv, bindCls, "outer", g.onCreate.This())
	sm := g.onCreate.New(framework.ServiceManager)
	g.onCreate.InvokeVoid(sm, framework.ServiceManager, "addService", bv)
	g.listener(fmt.Sprintf("HBFreer%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		mb.Free(outer, actCls, field)
	})
	return actCls, field
}

// injectErrorFinish: the freeing callback reaches finish() only on an
// error path, so CHB's may-analysis wrongly prunes the real UAF (the
// Browser/Puzzles rows of Table 2).
func (g *gen) injectErrorFinish() (string, string) {
	i := g.next()
	actCls := g.cls(fmt.Sprintf("ErrAct%d", i))
	act := g.b.Activity(actCls)
	field := "f_err"
	act.Field(field, g.valCls())
	oc := act.Method("onCreate", 1)
	v := oc.New(g.valCls())
	oc.PutThis(field, v)
	wire := func(name string, body func(mb *appbuilder.MethodBuilder, outer int)) {
		lCls := g.cls(fmt.Sprintf("%s%d", name, i))
		l := g.b.Class(lCls, framework.Object, framework.OnClickListener)
		l.Field("outer", actCls)
		mb := l.Method("onClick", 1)
		outer := mb.GetThis("outer")
		body(mb, outer)
		mb.Return()
		view := oc.New(framework.View)
		inst := oc.New(lCls)
		oc.PutField(inst, lCls, "outer", oc.This())
		oc.InvokeVoid(view, framework.View, "setOnClickListener", inst)
	}
	wire("ErrFreer", func(mb *appbuilder.MethodBuilder, outer int) {
		mb.IfCond("errpath")
		mb.Goto("dofree")
		mb.Label("errpath")
		mb.InvokeVoid(outer, actCls, "finish")
		mb.Label("dofree")
		mb.Free(outer, actCls, field)
	})
	wire("ErrUser", func(mb *appbuilder.MethodBuilder, outer int) {
		useField(mb, outer, actCls, field, g.valCls())
	})
	oc.Return()
	return actCls, field
}
