package corpus

import "fmt"

// Async-error seeds for the leaked-thread and lost-result detector
// families (arXiv:1808.03178). Each pattern lives in its own activity so
// the teardown declaration (onDestroy) never leaks TornDown facts into
// sibling patterns, and every thread body touches only locals so the UAF
// pipeline stays silent on these apps.

// leakedThread seeds one leaked native thread: onCreate starts a worker
// the component stores but never joins or interrupts, while onDestroy
// exists (so the component demonstrably has a teardown path). With
// join=true the benign variant interrupts the worker in onDestroy, which
// the detector's coverage subtraction must recognize.
func (g *gen) leakedThread(join bool) {
	i := g.next()
	actCls := g.cls(fmt.Sprintf("LeakAct%d", i))
	act := g.b.Activity(actCls)
	thrCls := g.cls(fmt.Sprintf("LeakWorker%d", i))
	th := g.b.ThreadClass(thrCls)
	run := th.Method("run", 0)
	v := run.New(g.valCls())
	run.Use(v, g.valCls())
	run.Return()

	field := "t_worker"
	act.Field(field, thrCls)
	oc := act.Method("onCreate", 1)
	tv := oc.New(thrCls)
	oc.PutThis(field, tv)
	oc.InvokeVoid(tv, thrCls, "start")
	oc.Return()

	od := act.Method("onDestroy", 0)
	if join {
		w := od.GetThis(field)
		od.InvokeVoid(w, thrCls, "interrupt")
	}
	od.Return()
}

// lostResult seeds one lost posted result: a background thread posts a
// Runnable back to the component's handler, the component declares
// onDestroy, and nothing drains the handler's queue. With cancel=true
// the benign variant calls removeCallbacksAndMessages in onDestroy. Both
// variants interrupt the poster thread during teardown so the pattern
// seeds exactly one family (no leaked-thread cross-noise).
func (g *gen) lostResult(cancel bool) {
	i := g.next()
	actCls := g.cls(fmt.Sprintf("LostAct%d", i))
	act := g.b.Activity(actCls)

	handlerCls := g.cls(fmt.Sprintf("LostH%d", i))
	g.b.HandlerClass(handlerCls)
	hField := "h_result"
	act.Field(hField, handlerCls)

	runCls := g.cls(fmt.Sprintf("LostResult%d", i))
	rn := g.b.Runnable(runCls)
	rm := rn.Method("run", 0)
	rv := rm.New(g.valCls())
	rm.Use(rv, g.valCls())
	rm.Return()

	thrCls := g.cls(fmt.Sprintf("LostPoster%d", i))
	th := g.b.ThreadClass(thrCls)
	th.Field("outer", actCls)
	run := th.Method("run", 0)
	o := run.GetThis("outer")
	h := run.GetField(o, actCls, hField)
	job := run.New(runCls)
	run.InvokeVoid(h, handlerCls, "post", job)
	run.Return()

	thrField := "t_poster"
	act.Field(thrField, thrCls)
	oc := act.Method("onCreate", 1)
	hv := oc.New(handlerCls)
	oc.PutThis(hField, hv)
	tv := oc.New(thrCls)
	oc.PutField(tv, thrCls, "outer", oc.This())
	oc.PutThis(thrField, tv)
	oc.InvokeVoid(tv, thrCls, "start")
	oc.Return()

	od := act.Method("onDestroy", 0)
	w := od.GetThis(thrField)
	od.InvokeVoid(w, thrCls, "interrupt")
	if cancel {
		hh := od.GetThis(hField)
		od.InvokeVoid(hh, handlerCls, "removeCallbacksAndMessages")
	}
	od.Return()
}
