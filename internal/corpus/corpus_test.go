package corpus

import (
	"testing"

	"nadroid/internal/filters"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// pipeline runs model+detect+filter on a package.
func pipeline(t *testing.T, s Spec) (*uaf.Detection, *filters.Stats) {
	t.Helper()
	pkg := s.Build()
	if err := pkg.Validate(); err != nil {
		t.Fatalf("%s: invalid package: %v", s.Name, err)
	}
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatalf("%s: threadify: %v", s.Name, err)
	}
	d := uaf.Detect(m)
	st := filters.Run(d)
	return d, st
}

// TestPatternFilterAttribution checks each benign pattern in isolation:
// exactly the intended filter must remove all of its warnings, and each
// surviving pattern must survive. This pins the semantics of every §6
// filter against its generator pattern.
func TestPatternFilterAttribution(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		// removedBy names filters allowed to kill warnings; empty means
		// the pattern must survive.
		removedBy map[string]bool
		surviving int
	}{
		{"MHBService", Spec{Name: "t", MHBService: 1}, map[string]bool{filters.NameMHB: true}, 0},
		{"MHBTask", Spec{Name: "t", MHBTask: 1}, map[string]bool{filters.NameMHB: true}, 0},
		{"MHBLifecycle", Spec{Name: "t", MHBLifecycle: 1}, map[string]bool{filters.NameMHB: true}, 0},
		{"ServiceDestroy", Spec{Name: "t", ServiceDestroy: 1}, map[string]bool{filters.NameMHB: true}, 0},
		{"MHBIGService", Spec{Name: "t", MHBIGService: 1}, map[string]bool{filters.NameMHB: true, filters.NameIG: true}, 0},
		{"IGLooper", Spec{Name: "t", IGLooper: 1}, map[string]bool{filters.NameIG: true}, 0},
		{"IGLocked", Spec{Name: "t", IGLocked: 1}, map[string]bool{filters.NameIG: true}, 0},
		{"IAAlloc", Spec{Name: "t", IAAlloc: 1}, map[string]bool{filters.NameIA: true}, 0},
		{"RHBResume", Spec{Name: "t", RHBResume: 1}, map[string]bool{filters.NameRHB: true}, 0},
		{"CHBFinish", Spec{Name: "t", CHBFinish: 1}, map[string]bool{filters.NameCHB: true}, 0},
		{"CHBUnbind", Spec{Name: "t", CHBUnbind: 1}, map[string]bool{filters.NameCHB: true, filters.NameUR: true}, 0},
		{"CHBIntraFinish", Spec{Name: "t", CHBIntraFinish: 1}, map[string]bool{filters.NameCHB: true}, 0},
		{"PHBPost", Spec{Name: "t", PHBPost: 1}, map[string]bool{filters.NamePHB: true}, 0},
		{"MAGetter", Spec{Name: "t", MAGetter: 1}, map[string]bool{filters.NameMA: true, filters.NameUR: true}, 0},
		{"URReturn", Spec{Name: "t", URReturn: 1}, map[string]bool{filters.NameUR: true}, 0},
		{"URParam", Spec{Name: "t", URParam: 1}, map[string]bool{filters.NameUR: true}, 0},
		{"TTThread", Spec{Name: "t", TTThread: 1}, map[string]bool{filters.NameTT: true}, 0},

		{"TrueService", Spec{Name: "t", TrueService: 1}, map[string]bool{filters.NameUR: true, filters.NameIG: true}, 1},
		{"TruePosted", Spec{Name: "t", TruePosted: 1}, map[string]bool{filters.NameUR: true, filters.NameIG: true}, 1},
		{"TrueThread", Spec{Name: "t", TrueThread: 1}, map[string]bool{filters.NameUR: true}, 1},
		{"TrueBackButton", Spec{Name: "t", TrueBackButton: 1}, nil, 1},
		{"FPPathInsens", Spec{Name: "t", FPPathInsens: 1}, nil, 1},
		{"FPPointsTo", Spec{Name: "t", FPPointsTo: 1}, nil, 1},
		{"FPNotReach", Spec{Name: "t", FPNotReach: 1}, nil, 1},
		{"FPMissingHB", Spec{Name: "t", FPMissingHB: 1}, nil, 1},
		{"FragmentPair", Spec{Name: "t", FragmentPair: 1}, nil, 0}, // invisible to nAdroid
		{"Padding", Spec{Name: "t", Padding: 3}, nil, 0},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			d, st := pipeline(t, c.spec)
			if st.AfterUnsound != c.surviving {
				t.Errorf("surviving = %d, want %d (stats %+v)", st.AfterUnsound, c.surviving, st)
			}
			for _, w := range d.Warnings {
				if w.Alive() {
					continue
				}
				for pair, by := range w.FilteredBy {
					if c.removedBy == nil || !c.removedBy[by] {
						t.Errorf("pair %v of %s removed by %s (allowed: %v)", pair, w.Key(), by, c.removedBy)
					}
				}
			}
		})
	}
}

// TestSurvivorsMatchSeeds asserts the corpus-wide invariant: for every
// app, warnings surviving the full pipeline == seeded true + seeded FP.
func TestSurvivorsMatchSeeds(t *testing.T) {
	for _, app := range Apps() {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			_, st := pipeline(t, app.Spec)
			want := app.Spec.TrueTotal() + app.Spec.FPTotal()
			if st.AfterUnsound != want {
				t.Errorf("surviving = %d, want %d (true %d + fp %d)",
					st.AfterUnsound, want, app.Spec.TrueTotal(), app.Spec.FPTotal())
			}
		})
	}
}

// TestTestGroupShape asserts the Figure 5 shape over the 20 test apps:
// sound filters prune the large majority, IG dominating; unsound filters
// prune most of the remainder.
func TestTestGroupShape(t *testing.T) {
	var pot, sound, unsound int
	indep := map[string]int{}
	for _, app := range TestApps() {
		pkg := app.Build()
		m, err := threadify.Build(pkg, threadify.Options{})
		if err != nil {
			t.Fatal(err)
		}
		d := uaf.Detect(m)
		removed, start := filters.MeasureIndependent(d, filters.SoundFilters(), false)
		for k, v := range removed {
			indep[k] += v
		}
		_ = start
		st := filters.Run(d)
		pot += st.Potential
		sound += st.AfterSound
		unsound += st.AfterUnsound
	}
	soundPct := 100 * float64(pot-sound) / float64(pot)
	if soundPct < 65 {
		t.Errorf("sound filters pruned %.0f%%, want the large majority (paper: 88%%)", soundPct)
	}
	unsoundPct := 100 * float64(sound-unsound) / float64(sound)
	if unsoundPct < 50 {
		t.Errorf("unsound filters pruned %.0f%% of the remainder, want most (paper: 70%%)", unsoundPct)
	}
	if !(indep[filters.NameIG] > indep[filters.NameMHB] && indep[filters.NameMHB] > indep[filters.NameIA]) {
		t.Errorf("independent ordering IG > MHB > IA violated: %v (paper: 66/21/13)", indep)
	}
}

// TestCorpusInventory pins the corpus composition.
func TestCorpusInventory(t *testing.T) {
	if got := len(Apps()); got != 27 {
		t.Errorf("apps = %d, want 27", got)
	}
	if got := len(TrainApps()); got != 7 {
		t.Errorf("train apps = %d, want 7", got)
	}
	if got := len(TestApps()); got != 20 {
		t.Errorf("test apps = %d, want 20", got)
	}
	trueTotal := 0
	for _, app := range Apps() {
		trueTotal += app.Spec.TrueTotal()
	}
	if trueTotal != 88 {
		t.Errorf("seeded true harmful = %d, want the paper's 88", trueTotal)
	}
	if _, ok := ByName("ConnectBot"); !ok {
		t.Error("ByName(ConnectBot) failed")
	}
	if _, ok := ByName("NoSuchApp"); ok {
		t.Error("ByName must reject unknown names")
	}
	// Names covers the Table 1 set plus the async-family apps, which are
	// addressable (ByName, -app) but excluded from Apps().
	if got := len(Names()); got != 27+len(AsyncApps()) {
		t.Errorf("Names = %d, want %d", got, 27+len(AsyncApps()))
	}
	if got := len(AsyncApps()); got != 3 {
		t.Errorf("async apps = %d, want 3", got)
	}
	if _, ok := ByName("ThreadHerder"); !ok {
		t.Error("ByName(ThreadHerder) failed")
	}
}

// TestInjectionSites checks BuildInjected returns one site per kind and
// the app still validates.
func TestInjectionSites(t *testing.T) {
	app, _ := ByName("Tomdroid")
	kinds := []InjectionKind{
		InjectECEC, InjectECPC, InjectPCPC, InjectCRT, InjectCNT,
		InjectHiddenBinder, InjectErrorFinish,
	}
	pkg, sites := app.Spec.BuildInjected(kinds)
	if err := pkg.Validate(); err != nil {
		t.Fatalf("injected package invalid: %v", err)
	}
	if len(sites) != len(kinds) {
		t.Fatalf("sites = %d, want %d", len(sites), len(kinds))
	}
	for i, s := range sites {
		if s.Kind != kinds[i] {
			t.Errorf("site %d kind = %v, want %v", i, s.Kind, kinds[i])
		}
		if s.Class == "" || s.Field == "" {
			t.Errorf("site %d missing location: %+v", i, s)
		}
	}
}

// TestGenerationDeterministic: the same spec builds byte-identical
// programs (the dexasm serialization is the canonical form).
func TestGenerationDeterministic(t *testing.T) {
	app, _ := ByName("Aard")
	p1, p2 := app.Build(), app.Build()
	if p1.Size() != p2.Size() {
		t.Fatalf("sizes differ: %d vs %d", p1.Size(), p2.Size())
	}
	c1, c2 := p1.Program.SortedClassNames(), p2.Program.SortedClassNames()
	if len(c1) != len(c2) {
		t.Fatalf("class counts differ")
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("class %d: %s vs %s", i, c1[i], c2[i])
		}
	}
}
