package corpus

// specs mirrors Table 1 row by row: 7 training apps (the CAFA set the
// unsound filters were designed on) and 20 test apps (the DroidRacer set
// plus F-Droid picks). Counts are the paper's warning profile scaled
// down (the subjects were 1.2k–103k LOC Java apps); true-harmful totals
// follow the paper's Table 1 (88 overall, e.g. ConnectBot's 13).
var specs = []Spec{
	// --- train group (§8.2, CAFA apps) ---------------------------------
	{
		Name: "ToDoList", Group: "train",
		MHBService: 1, MHBLifecycle: 1, MHBIGService: 1, IGLooper: 3, IAAlloc: 2,
		RHBResume: 1, PHBPost: 1, MAGetter: 1, URReturn: 2, TTThread: 1,
		Padding: 2,
	},
	{
		Name: "Zxing", Group: "train",
		MHBService: 1, MHBTask: 1, MHBIGService: 2, IGLooper: 8, IAAlloc: 4,
		URReturn: 2, MAGetter: 1,
		FPPathInsens: 1, FPPointsTo: 1,
		Padding: 5,
	},
	{
		Name: "Music", Group: "train",
		TrueThread: 2,
		MHBService: 2, MHBTask: 1, MHBLifecycle: 6, MHBIGService: 8,
		ServiceDestroy: 1, CHBIntraFinish: 2,
		IGLooper: 22, IGLocked: 1, IAAlloc: 10,
		RHBResume: 1, CHBFinish: 1, CHBUnbind: 1, PHBPost: 2,
		MAGetter: 5, URReturn: 4, URParam: 2, TTThread: 3,
		FPPathInsens: 4, FPPointsTo: 1, FPMissingHB: 2,
		Padding: 25,
	},
	{
		Name: "MyTracks_1", Group: "train",
		TrueService: 2, TruePosted: 26, TrueBackButton: 1,
		MHBService: 2, ServiceDestroy: 1, MHBIGService: 3, IGLooper: 8, IAAlloc: 4,
		CHBUnbind: 1, MAGetter: 2, URReturn: 2,
		FPPathInsens: 2,
		Padding:      8,
	},
	{
		Name: "Browser", Group: "train",
		FragmentPair: 1,
		MHBService:   2, MHBTask: 1, MHBLifecycle: 1, MHBIGService: 10,
		IGLooper: 28, IGLocked: 1, IAAlloc: 12,
		RHBResume: 2, CHBFinish: 2, PHBPost: 2,
		MAGetter: 6, URReturn: 5, URParam: 2, TTThread: 2,
		Padding: 30,
	},
	{
		Name: "ConnectBot", Group: "train",
		TrueService: 12, TruePosted: 1,
		MHBService: 2, MHBIGService: 1, IGLooper: 4, IAAlloc: 2, URReturn: 1,
		Padding: 10,
	},
	{
		Name: "FireFox", Group: "train",
		TrueService: 5, TrueThread: 1,
		MHBService: 2, MHBTask: 1, MHBIGService: 8, IGLooper: 24, IGLocked: 1, IAAlloc: 10,
		PHBPost: 2, MAGetter: 5, URReturn: 4, URParam: 2, TTThread: 3,
		FPPathInsens: 6, FPPointsTo: 2, FPNotReach: 2, FPMissingHB: 2,
		Padding: 40,
	},

	// --- test group (§8.2, DroidRacer apps + F-Droid picks) -------------
	{
		Name: "SoundRecorder", Group: "test",
		MHBService: 1, IGLooper: 1,
		Padding: 1,
	},
	{
		Name: "Swiftnotes", Group: "test",
		Padding: 3,
	},
	{
		Name: "PhotoAffix", Group: "test",
		IGLooper: 4, MHBLifecycle: 1, IAAlloc: 1, URReturn: 2, MAGetter: 1,
		FPPathInsens: 2, FPMissingHB: 2,
		Padding: 2,
	},
	{
		Name: "MLManager", Group: "test",
		MHBService: 1, MHBTask: 1, MHBIGService: 2, IGLooper: 8, IAAlloc: 3,
		URReturn: 3, MAGetter: 2, TTThread: 1,
		Padding: 2,
	},
	{
		Name: "InstaMaterial", Group: "test",
		MHBTask: 3, MHBIGService: 5, IGLooper: 20, IAAlloc: 10,
		PHBPost: 2, MAGetter: 6, URReturn: 6,
		Padding: 4,
	},
	{
		Name: "Tomdroid", Group: "test",
		Padding: 4,
	},
	{
		Name: "SGTPuzzles", Group: "test",
		MHBLifecycle: 2, MHBIGService: 2, IGLooper: 8, IAAlloc: 4,
		Padding: 4,
	},
	{
		Name: "Aard", Group: "test",
		TrueService: 8,
		MHBService:  1, MHBIGService: 1, IGLooper: 5, IAAlloc: 1, URReturn: 3, MAGetter: 2,
		FPPathInsens: 3, FPPointsTo: 2, FPNotReach: 1, FPMissingHB: 1,
		Padding: 4,
	},
	{
		Name: "ClipStack", Group: "test",
		IGLooper: 1,
		Padding:  4,
	},
	{
		Name: "KissLauncher", Group: "test",
		MHBLifecycle: 1, MHBIGService: 1, IGLooper: 6, IAAlloc: 2, URReturn: 2,
		FPPathInsens: 4,
		Padding:      5,
	},
	{
		Name: "DashClock", Group: "test",
		IGLooper: 3, IAAlloc: 1, URReturn: 1,
		Padding: 6,
	},
	{
		Name: "Dns66", Group: "test",
		MHBService: 1, IGLooper: 3, IAAlloc: 1, URReturn: 1,
		FPPathInsens: 2, FPMissingHB: 1,
		Padding: 6,
	},
	{
		Name: "CleanMaster", Group: "test",
		IGLooper: 1,
		Padding:  8,
	},
	{
		Name: "OmniNotes", Group: "test",
		MHBService: 2, MHBTask: 2, MHBLifecycle: 1, MHBIGService: 8,
		IGLooper: 25, IAAlloc: 12,
		PHBPost: 2, MAGetter: 7, URReturn: 7, TTThread: 2,
		Padding: 12,
	},
	{
		Name: "Solitaire", Group: "test",
		IGLooper: 2, URReturn: 1, MAGetter: 1,
		FPPointsTo: 1,
		Padding:    10,
	},
	{
		Name: "Mms", Group: "test",
		MHBService: 3, MHBTask: 2, MHBLifecycle: 1, MHBIGService: 10,
		IGLooper: 30, IGLocked: 1, IAAlloc: 15,
		RHBResume: 1, CHBFinish: 2, CHBUnbind: 1,
		MAGetter: 10, URReturn: 9, URParam: 2, TTThread: 4,
		FPPathInsens: 5, FPPointsTo: 4, FPMissingHB: 1,
		Padding: 25,
	},
	{
		Name: "MyTracks_2", Group: "test",
		TruePosted: 20,
		MHBService: 1, MHBLifecycle: 1, MHBIGService: 3, IGLooper: 8, IAAlloc: 3,
		MAGetter: 4, URReturn: 4,
		FPPathInsens: 1, FPPointsTo: 1,
		Padding: 8,
	},
	{
		Name: "MiMangaNu", Group: "test",
		IGLooper: 1, URReturn: 1,
		Padding: 25,
	},
	{
		Name: "QKSMS", Group: "test",
		TruePosted: 10,
		MHBService: 1, MHBTask: 1, MHBIGService: 2, IGLooper: 8, IAAlloc: 2,
		URReturn: 3, MAGetter: 3,
		FPPathInsens: 2, FPPointsTo: 1,
		Padding: 10,
	},
	{
		Name: "K9Mail", Group: "test",
		MHBService: 3, MHBTask: 2, MHBLifecycle: 2, MHBIGService: 14,
		IGLooper: 45, IGLocked: 1, IAAlloc: 20,
		RHBResume: 2, CHBFinish: 2, CHBUnbind: 2, PHBPost: 3,
		MAGetter: 12, URReturn: 12, URParam: 3, TTThread: 5,
		FPPathInsens: 4, FPNotReach: 2, FPMissingHB: 2,
		Padding: 40,
	},
}

// asyncSpecs seeds the ground truth for the async-error detector
// families (arXiv:1808.03178). These apps are NOT part of the Table 1
// corpus — Apps() and the golden UAF totals exclude them — but they are
// addressable by name (-app, /v1/analyze) and AsyncApps() drives the
// family acceptance tests: every *Thread/*Result seed must be reported,
// every *Join/*Cancel seed must be recognized as covered.
var asyncSpecs = []Spec{
	{
		Name: "ThreadHerder", Group: "async",
		LeakedThread: 2, LeakedThreadJoin: 1,
		Padding: 2,
	},
	{
		Name: "ResultCourier", Group: "async",
		LostResult: 2, LostResultCancel: 1,
		Padding: 2,
	},
	{
		Name: "AsyncGrabBag", Group: "async",
		LeakedThread: 1, LeakedThreadJoin: 1,
		LostResult: 1, LostResultCancel: 1,
		TrueThread: 1, IGLooper: 2,
		Padding: 3,
	},
}
