// Package corpus provides the 27 synthetic applications that stand in
// for the paper's evaluation subjects (Table 1). Each app is generated
// from a Spec: counts of seeded true-harmful patterns (the Figure 1
// shapes), benign patterns each filter of §6 should prune, and
// false-positive patterns that survive all filters for the §8.5 reasons
// (path insensitivity, points-to imprecision, unreachable components,
// missing UI happens-before).
//
// Counts are scaled roughly 10–500× down from the paper's raw warning
// numbers (the subjects were 1.2k–103k LOC Java apps); the shape — which
// filters prune what fraction, where the true bugs sit, which apps come
// out clean — follows Table 1 row by row. True-harmful counts match the
// paper exactly where the paper is explicit (e.g. ConnectBot's 13).
package corpus

import (
	"sort"

	"nadroid/internal/apk"
)

// Spec seeds one synthetic application.
type Spec struct {
	Name  string
	Group string // "train" or "test"

	// True harmful seeds (validated dynamically).
	TrueService    int // Figure 1(a): EC-PC
	TruePosted     int // Figure 1(b): PC-PC
	TrueThread     int // Figure 1(c): C-NT
	TrueBackButton int // §6.1.1 back-edge: EC-EC

	// Sound-filtered seeds.
	MHBService, MHBTask, MHBLifecycle int
	// MHBIGService seeds warnings prunable by BOTH MHB and IG (the
	// filter-overlap mass of Figure 5(a)).
	MHBIGService       int
	IGLooper, IGLocked int
	IAAlloc            int

	// Unsound-filtered seeds.
	RHBResume, CHBFinish, CHBUnbind, PHBPost int
	MAGetter, URReturn, URParam              int
	TTThread                                 int

	// DEvA-comparison seeds (Table 3 shapes).
	ServiceDestroy int // service onStartCommand-use vs onDestroy-free (MHB-filtered)
	CHBIntraFinish int // intra-class finish canceller (CHB-filtered)
	FragmentPair   int // Fragment lifecycle UAF (nAdroid blind spot, §8.1)

	// Async-error seeds (arXiv:1808.03178; the leaked-thread and
	// lost-result detector families, invisible to the UAF pipeline).
	LeakedThread     int // worker thread outlives its component's teardown
	LeakedThreadJoin int // benign: onDestroy interrupts the worker
	LostResult       int // posted result never drained before teardown
	LostResultCancel int // benign: onDestroy drains via removeCallbacksAndMessages

	// False-positive seeds (§8.5).
	FPPathInsens, FPPointsTo, FPNotReach, FPMissingHB int

	// Padding adds benign thread-local classes (bulk).
	Padding int
}

// TrueTotal is the number of seeded harmful UAFs.
func (s Spec) TrueTotal() int {
	return s.TrueService + s.TruePosted + s.TrueThread + s.TrueBackButton
}

// FPTotal is the number of seeded surviving false positives.
func (s Spec) FPTotal() int {
	return s.FPPathInsens + s.FPPointsTo + s.FPNotReach + s.FPMissingHB
}

// Build generates the application package for a spec.
func (s Spec) Build() *apk.Package {
	g := newGen(s.Name)
	s.emit(g)
	return g.finish().MustBuild()
}

// emit seeds all of the spec's patterns into a generator.
func (s Spec) emit(g *gen) {
	repeat := func(n int, f func()) {
		for i := 0; i < n; i++ {
			f()
		}
	}
	repeat(s.TrueService, func() { g.trueServiceUAF() })
	repeat(s.TruePosted, func() { g.truePostedUAF() })
	repeat(s.TrueThread, func() { g.trueThreadUAF() })
	repeat(s.TrueBackButton, func() { g.trueBackButton() })
	repeat(s.MHBService, g.mhbService)
	repeat(s.MHBTask, g.mhbTask)
	repeat(s.MHBLifecycle, g.mhbLifecycle)
	repeat(s.MHBIGService, g.mhbIGService)
	repeat(s.ServiceDestroy, g.serviceDestroy)
	repeat(s.CHBIntraFinish, g.chbIntraFinish)
	repeat(s.FragmentPair, g.fragmentPair)
	repeat(s.IGLooper, g.igLooper)
	repeat(s.IGLocked, g.igLocked)
	repeat(s.IAAlloc, g.iaAlloc)
	repeat(s.RHBResume, g.rhbResume)
	repeat(s.CHBFinish, g.chbFinish)
	repeat(s.CHBUnbind, g.chbUnbind)
	repeat(s.PHBPost, g.phbPost)
	repeat(s.MAGetter, g.maGetter)
	repeat(s.URReturn, g.urReturn)
	repeat(s.URParam, g.urParam)
	repeat(s.TTThread, g.ttThread)
	repeat(s.LeakedThread, func() { g.leakedThread(false) })
	repeat(s.LeakedThreadJoin, func() { g.leakedThread(true) })
	repeat(s.LostResult, func() { g.lostResult(false) })
	repeat(s.LostResultCancel, func() { g.lostResult(true) })
	repeat(s.FPPathInsens, g.fpPathInsens)
	repeat(s.FPPointsTo, g.fpPointsTo)
	repeat(s.FPNotReach, g.fpNotReach)
	repeat(s.FPMissingHB, g.fpMissingHB)
	g.padding(s.Padding)
}

// App is one corpus entry.
type App struct {
	Spec Spec
}

// Name returns the app name.
func (a App) Name() string { return a.Spec.Name }

// Build generates the package.
func (a App) Build() *apk.Package { return a.Spec.Build() }

// Apps returns the full 27-app corpus in Table 1 order (train first).
// The async-family apps are deliberately excluded: Table 1's UAF
// totals are defined over exactly these 27.
func Apps() []App {
	var out []App
	for _, s := range specs {
		out = append(out, App{Spec: s})
	}
	return out
}

// AsyncApps returns the supplemental apps seeding the leaked-thread and
// lost-result ground truth (group "async").
func AsyncApps() []App {
	var out []App
	for _, s := range asyncSpecs {
		out = append(out, App{Spec: s})
	}
	return out
}

// TrainApps returns the 7 training-group apps (used to design the
// unsound filters, §6.2).
func TrainApps() []App { return filterGroup("train") }

// TestApps returns the 20 test-group apps (all headline numbers use
// these, §8.2).
func TestApps() []App { return filterGroup("test") }

func filterGroup(group string) []App {
	var out []App
	for _, s := range specs {
		if s.Group == group {
			out = append(out, App{Spec: s})
		}
	}
	return out
}

// ByName finds an app (Table 1 corpus or async supplement); ok is false
// for unknown names.
func ByName(name string) (App, bool) {
	for _, s := range specs {
		if s.Name == name {
			return App{Spec: s}, true
		}
	}
	for _, s := range asyncSpecs {
		if s.Name == name {
			return App{Spec: s}, true
		}
	}
	return App{}, false
}

// Names lists all corpus app names (Table 1 plus async supplement),
// sorted.
func Names() []string {
	var out []string
	for _, s := range specs {
		out = append(out, s.Name)
	}
	for _, s := range asyncSpecs {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}
