package corpus

import (
	"fmt"

	"nadroid/internal/appbuilder"
	"nadroid/internal/framework"
)

// gen assembles one synthetic application from pattern seeds. Every
// pattern instance is self-contained: it owns its field(s), listener
// class(es) and helper classes, so instances compose without aliasing.
type gen struct {
	b   *appbuilder.Builder
	app string
	// main activity shared by most patterns.
	act      *appbuilder.ClassBuilder
	onCreate *appbuilder.MethodBuilder
	onStart  *appbuilder.MethodBuilder
	seq      int
	// extraActivities counts pattern-private activities.
	extraActs int
}

const valSuffix = "/V"

func newGen(app string) *gen {
	g := &gen{b: appbuilder.New(app), app: app}
	g.act = g.b.MainActivity(g.cls("Main"))
	g.b.Class(g.valCls(), framework.Object).Method("use", 0).Return()
	g.onCreate = g.act.Method("onCreate", 1)
	g.onStart = g.act.Method("onStart", 0)
	return g
}

// finish seals the open builders and returns the package.
func (g *gen) finish() *appbuilder.Builder {
	g.onCreate.Return()
	g.onStart.Return()
	return g.b
}

func (g *gen) cls(name string) string             { return g.app + "/" + name }
func (g *gen) valCls() string                     { return g.app + valSuffix }
func (g *gen) next() int                          { g.seq++; return g.seq }
func (g *gen) fieldName(tag string, i int) string { return fmt.Sprintf("f_%s%d", tag, i) }

// newField declares a fresh value field on the main activity.
func (g *gen) newField(tag string, i int) string {
	name := g.fieldName(tag, i)
	g.act.Field(name, g.valCls())
	return name
}

// allocInCreate allocates the field in onCreate.
func (g *gen) allocInCreate(field string) {
	v := g.onCreate.New(g.valCls())
	g.onCreate.PutThis(field, v)
}

// listener declares a click-listener class wired to the main activity in
// onCreate; body receives (method builder, register holding outer).
func (g *gen) listener(name string, body func(mb *appbuilder.MethodBuilder, outer int)) string {
	cls := g.cls(name)
	l := g.b.Class(cls, framework.Object, framework.OnClickListener)
	l.Field("outer", g.act.Name())
	mb := l.Method("onClick", 1)
	outer := mb.GetThis("outer")
	body(mb, outer)
	mb.Return()
	// Wire in onCreate on a fresh view.
	view := g.onCreate.New(framework.View)
	inst := g.onCreate.New(cls)
	g.onCreate.PutField(inst, cls, "outer", g.onCreate.This())
	g.onCreate.InvokeVoid(view, framework.View, "setOnClickListener", inst)
	return cls
}

// useField emits an unguarded load+dereference of act.field.
func useField(mb *appbuilder.MethodBuilder, outer int, actCls, field, valCls string) {
	f := mb.GetField(outer, actCls, field)
	mb.Use(f, valCls)
}

// guardedUseField emits the §6.1.2 if-guard pattern.
func guardedUseField(mb *appbuilder.MethodBuilder, outer int, actCls, field, valCls string, label string) {
	chk := mb.GetField(outer, actCls, field)
	mb.IfNull(chk, label)
	f := mb.GetField(outer, actCls, field)
	mb.Use(f, valCls)
	mb.Label(label)
}

// --- true harmful patterns ----------------------------------------------

// trueServiceUAF is Figure 1(a): onServiceConnected allocates, a UI
// callback dereferences without a guard, onServiceDisconnected frees.
// Surviving pair: EC (use) vs PC (free).
func (g *gen) trueServiceUAF() (string, string) {
	i := g.next()
	field := g.newField("svc", i)
	connCls := g.cls(fmt.Sprintf("Conn%d", i))
	conn := g.b.ServiceConn(connCls)
	conn.Field("outer", g.act.Name())
	sc := conn.Method("onServiceConnected", 1)
	o := sc.GetThis("outer")
	v := sc.New(g.valCls())
	sc.PutField(o, g.act.Name(), field, v)
	sc.Return()
	sd := conn.Method("onServiceDisconnected", 1)
	o2 := sd.GetThis("outer")
	sd.Free(o2, g.act.Name(), field)
	sd.Return()
	cn := g.onStart.New(connCls)
	g.onStart.PutField(cn, connCls, "outer", g.onStart.This())
	g.onStart.InvokeVoid(g.onStart.This(), g.act.Name(), "bindService", cn)
	g.listener(fmt.Sprintf("SvcUser%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		useField(mb, outer, g.act.Name(), field, g.valCls())
	})
	return g.act.Name(), field
}

// truePostedUAF is Figure 1(b): a click callback checks the field, then
// posts a Runnable that dereferences it later; onServiceDisconnected
// frees in between. Surviving pair: PC (use in run) vs PC (free in SD).
func (g *gen) truePostedUAF() (string, string) {
	i := g.next()
	field := g.newField("post", i)
	actCls := g.act.Name()
	handlerCls := g.cls(fmt.Sprintf("PH%d", i))
	g.b.HandlerClass(handlerCls)
	hField := fmt.Sprintf("h_post%d", i)
	g.act.Field(hField, handlerCls)
	hr := g.onCreate.New(handlerCls)
	g.onCreate.PutThis(hField, hr)

	connCls := g.cls(fmt.Sprintf("PConn%d", i))
	conn := g.b.ServiceConn(connCls)
	conn.Field("outer", actCls)
	sc := conn.Method("onServiceConnected", 1)
	o := sc.GetThis("outer")
	v := sc.New(g.valCls())
	sc.PutField(o, actCls, field, v)
	sc.Return()
	sd := conn.Method("onServiceDisconnected", 1)
	o2 := sd.GetThis("outer")
	sd.Free(o2, actCls, field)
	sd.Return()
	cn := g.onStart.New(connCls)
	g.onStart.PutField(cn, connCls, "outer", g.onStart.This())
	g.onStart.InvokeVoid(g.onStart.This(), actCls, "bindService", cn)

	runCls := g.cls(fmt.Sprintf("PJob%d", i))
	run := g.b.Runnable(runCls)
	run.Field("outer", actCls)
	rm := run.Method("run", 0)
	ro := rm.GetThis("outer")
	useField(rm, ro, actCls, field, g.valCls())
	rm.Return()

	g.listener(fmt.Sprintf("Poster%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		chk := mb.GetField(outer, actCls, field)
		mb.IfNull(chk, "skip")
		job := mb.New(runCls)
		mb.PutField(job, runCls, "outer", outer)
		hh := mb.GetField(outer, actCls, hField)
		mb.InvokeVoid(hh, handlerCls, "post", job)
		mb.Label("skip")
	})
	return actCls, field
}

// trueThreadUAF is Figure 1(c): a looper callback checks then uses; a
// background thread frees concurrently (no common lock). Surviving pair:
// C (use) vs NT (free).
func (g *gen) trueThreadUAF() (string, string) {
	i := g.next()
	field := g.newField("thr", i)
	actCls := g.act.Name()
	g.allocInCreate(field)
	thrCls := g.cls(fmt.Sprintf("Killer%d", i))
	th := g.b.ThreadClass(thrCls)
	th.Field("outer", actCls)
	run := th.Method("run", 0)
	o := run.GetThis("outer")
	run.Free(o, actCls, field)
	run.Return()
	tv := g.onCreate.New(thrCls)
	g.onCreate.PutField(tv, thrCls, "outer", g.onCreate.This())
	g.onCreate.InvokeVoid(tv, thrCls, "start")
	g.listener(fmt.Sprintf("ThrUser%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		guardedUseField(mb, outer, actCls, field, g.valCls(), "skip")
	})
	return actCls, field
}

// trueBackButton is the §6.1.1 back-edge case: onPause frees, a UI
// callback dereferences, and onResume does NOT re-allocate. Surviving
// pair: EC vs EC. Lives in its own activity so the lifecycle methods do
// not collide with other patterns.
func (g *gen) trueBackButton() (string, string) {
	i := g.next()
	actCls := g.cls(fmt.Sprintf("BackAct%d", i))
	act := g.b.Activity(actCls)
	field := "f_back"
	act.Field(field, g.valCls())
	oc := act.Method("onCreate", 1)
	v := oc.New(g.valCls())
	oc.PutThis(field, v)
	lCls := g.cls(fmt.Sprintf("BackUser%d", i))
	l := g.b.Class(lCls, framework.Object, framework.OnClickListener)
	l.Outer(actCls) // anonymous-listener idiom: inner class of the activity
	l.Field("outer", actCls)
	mb := l.Method("onClick", 1)
	outer := mb.GetThis("outer")
	useField(mb, outer, actCls, field, g.valCls())
	mb.Return()
	view := oc.New(framework.View)
	inst := oc.New(lCls)
	oc.PutField(inst, lCls, "outer", oc.This())
	oc.InvokeVoid(view, framework.View, "setOnClickListener", inst)
	oc.Return()
	act.Method("onResume", 0).Return() // no re-allocation
	op := act.Method("onPause", 0)
	op.FreeThis(field)
	op.Return()
	return actCls, field
}

// --- sound-filtered patterns ---------------------------------------------

// mhbService: use in onServiceConnected, free in onServiceDisconnected
// (Figure 4(a) modulo the getter). Pruned by MHB-Service.
func (g *gen) mhbService() {
	i := g.next()
	field := g.newField("mhbs", i)
	actCls := g.act.Name()
	g.allocInCreate(field)
	connCls := g.cls(fmt.Sprintf("MConn%d", i))
	conn := g.b.ServiceConn(connCls)
	conn.Field("outer", actCls)
	sc := conn.Method("onServiceConnected", 1)
	o := sc.GetThis("outer")
	useField(sc, o, actCls, field, g.valCls())
	sc.Return()
	sd := conn.Method("onServiceDisconnected", 1)
	o2 := sd.GetThis("outer")
	sd.Free(o2, actCls, field)
	sd.Return()
	cn := g.onStart.New(connCls)
	g.onStart.PutField(cn, connCls, "outer", g.onStart.This())
	g.onStart.InvokeVoid(g.onStart.This(), actCls, "bindService", cn)
}

// mhbTask: use in doInBackground, free in onPostExecute. Pruned by
// MHB-AsyncTask.
func (g *gen) mhbTask() {
	i := g.next()
	taskCls := g.cls(fmt.Sprintf("MTask%d", i))
	task := g.b.AsyncTaskClass(taskCls)
	task.Field("g", g.valCls())
	pre := task.Method("onPreExecute", 0)
	v := pre.New(g.valCls())
	pre.PutThis("g", v)
	pre.Return()
	dib := task.Method("doInBackground", 0)
	f := dib.GetThis("g")
	dib.Use(f, g.valCls())
	dib.Return()
	post := task.Method("onPostExecute", 0)
	post.FreeThis("g")
	post.Return()
	g.listener(fmt.Sprintf("TaskStart%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		t := mb.New(taskCls)
		mb.InvokeVoid(t, taskCls, "execute")
	})
}

// mhbLifecycle: use in onActivityResult, free in onDestroy, own
// activity. Pruned by MHB-Lifecycle.
func (g *gen) mhbLifecycle() {
	i := g.next()
	actCls := g.cls(fmt.Sprintf("LifeAct%d", i))
	act := g.b.Activity(actCls)
	field := "f_life"
	act.Field(field, g.valCls())
	oc := act.Method("onCreate", 1)
	v := oc.New(g.valCls())
	oc.PutThis(field, v)
	oc.Return()
	oar := act.Method("onActivityResult", 1)
	f := oar.GetThis(field)
	oar.Use(f, g.valCls())
	oar.Return()
	od := act.Method("onDestroy", 0)
	od.FreeThis(field)
	od.Return()
}

// igLooper is Figure 4(b): a guarded use and a free, both looper
// callbacks. Pruned by IG.
func (g *gen) igLooper() {
	i := g.next()
	field := g.newField("ig", i)
	actCls := g.act.Name()
	g.allocInCreate(field)
	g.listener(fmt.Sprintf("IGUser%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		guardedUseField(mb, outer, actCls, field, g.valCls(), "skip")
	})
	g.listener(fmt.Sprintf("IGFreer%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		mb.Free(outer, actCls, field)
	})
}

// igLocked: a guarded, lock-protected use in a callback against a
// lock-protected free in a background thread. Pruned by IG through the
// common-lock condition.
func (g *gen) igLocked() {
	i := g.next()
	field := g.newField("igl", i)
	lockField := fmt.Sprintf("lock_igl%d", i)
	actCls := g.act.Name()
	g.act.Field(lockField, g.valCls())
	g.allocInCreate(field)
	lv := g.onCreate.New(g.valCls())
	g.onCreate.PutThis(lockField, lv)

	thrCls := g.cls(fmt.Sprintf("LockThr%d", i))
	th := g.b.ThreadClass(thrCls)
	th.Field("outer", actCls)
	run := th.Method("run", 0)
	o := run.GetThis("outer")
	lk := run.GetField(o, actCls, lockField)
	run.Lock(lk)
	run.Free(o, actCls, field)
	run.Unlock(lk)
	run.Return()
	tv := g.onCreate.New(thrCls)
	g.onCreate.PutField(tv, thrCls, "outer", g.onCreate.This())
	g.onCreate.InvokeVoid(tv, thrCls, "start")

	g.listener(fmt.Sprintf("LockUser%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		lk := mb.GetField(outer, actCls, lockField)
		mb.Lock(lk)
		guardedUseField(mb, outer, actCls, field, g.valCls(), "skip")
		mb.Unlock(lk)
	})
}

// iaAlloc is Figure 4(c): allocation dominating the use, free elsewhere.
// Pruned by IA.
func (g *gen) iaAlloc() {
	i := g.next()
	field := g.newField("ia", i)
	actCls := g.act.Name()
	g.listener(fmt.Sprintf("IAUser%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		v := mb.New(g.valCls())
		mb.PutField(outer, actCls, field, v)
		useField(mb, outer, actCls, field, g.valCls())
	})
	g.listener(fmt.Sprintf("IAFreer%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		mb.Free(outer, actCls, field)
	})
}

// --- unsound-filtered patterns -------------------------------------------

// rhbResume is Figure 4(d)-benign: onResume re-allocates, onPause frees,
// a UI callback uses. Pruned by RHB. Own activity.
func (g *gen) rhbResume() {
	i := g.next()
	actCls := g.cls(fmt.Sprintf("RhbAct%d", i))
	act := g.b.Activity(actCls)
	field := "f_rhb"
	act.Field(field, g.valCls())
	oc := act.Method("onCreate", 1)
	v := oc.New(g.valCls())
	oc.PutThis(field, v)
	lCls := g.cls(fmt.Sprintf("RhbUser%d", i))
	l := g.b.Class(lCls, framework.Object, framework.OnClickListener)
	l.Field("outer", actCls)
	mb := l.Method("onClick", 1)
	outer := mb.GetThis("outer")
	useField(mb, outer, actCls, field, g.valCls())
	mb.Return()
	view := oc.New(framework.View)
	inst := oc.New(lCls)
	oc.PutField(inst, lCls, "outer", oc.This())
	oc.InvokeVoid(view, framework.View, "setOnClickListener", inst)
	oc.Return()
	orr := act.Method("onResume", 0)
	nv := orr.New(g.valCls())
	orr.PutThis(field, nv)
	orr.Return()
	op := act.Method("onPause", 0)
	op.FreeThis(field)
	op.Return()
}

// chbFinish is Figure 4(e): the freeing callback finishes the activity,
// so the using callback cannot run afterwards. Pruned by CHB. Own
// activity (finish would disable sibling patterns' events dynamically).
func (g *gen) chbFinish() {
	i := g.next()
	actCls := g.cls(fmt.Sprintf("FinAct%d", i))
	act := g.b.Activity(actCls)
	field := "f_fin"
	act.Field(field, g.valCls())
	oc := act.Method("onCreate", 1)
	v := oc.New(g.valCls())
	oc.PutThis(field, v)
	mk := func(name string, body func(mb *appbuilder.MethodBuilder, outer int)) {
		lCls := g.cls(fmt.Sprintf("%s%d", name, i))
		l := g.b.Class(lCls, framework.Object, framework.OnClickListener)
		l.Field("outer", actCls)
		mb := l.Method("onClick", 1)
		outer := mb.GetThis("outer")
		body(mb, outer)
		mb.Return()
		view := oc.New(framework.View)
		inst := oc.New(lCls)
		oc.PutField(inst, lCls, "outer", oc.This())
		oc.InvokeVoid(view, framework.View, "setOnClickListener", inst)
	}
	mk("FinFreer", func(mb *appbuilder.MethodBuilder, outer int) {
		mb.Free(outer, actCls, field)
		mb.InvokeVoid(outer, actCls, "finish")
	})
	mk("FinUser", func(mb *appbuilder.MethodBuilder, outer int) {
		useField(mb, outer, actCls, field, g.valCls())
	})
	oc.Return()
}

// chbUnbind: the freeing callback unbinds the connection whose
// onServiceConnected is the user. Pruned by CHB.
func (g *gen) chbUnbind() {
	i := g.next()
	field := g.newField("unb", i)
	actCls := g.act.Name()
	g.allocInCreate(field)
	connCls := g.cls(fmt.Sprintf("UConn%d", i))
	connField := fmt.Sprintf("conn_unb%d", i)
	g.act.Field(connField, connCls)
	conn := g.b.ServiceConn(connCls)
	conn.Field("outer", actCls)
	sc := conn.Method("onServiceConnected", 1)
	o := sc.GetThis("outer")
	useField(sc, o, actCls, field, g.valCls())
	sc.Return()
	cn := g.onCreate.New(connCls)
	g.onCreate.PutField(cn, connCls, "outer", g.onCreate.This())
	g.onCreate.PutThis(connField, cn)
	g.onCreate.InvokeVoid(g.onCreate.This(), actCls, "bindService", cn)
	g.listener(fmt.Sprintf("Unbinder%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		c := mb.GetField(outer, actCls, connField)
		mb.InvokeVoid(outer, actCls, "unbindService", c)
		mb.Free(outer, actCls, field)
	})
}

// phbPost is Figure 4(f): the use's callback posts the free's callback.
// Pruned by PHB.
func (g *gen) phbPost() {
	i := g.next()
	field := g.newField("phb", i)
	actCls := g.act.Name()
	g.allocInCreate(field)
	handlerCls := g.cls(fmt.Sprintf("PhbH%d", i))
	hField := fmt.Sprintf("h_phb%d", i)
	g.act.Field(hField, handlerCls)
	h := g.b.Class(handlerCls, framework.Handler)
	h.Field("outer", actCls)
	hm := h.Method("handleMessage", 1)
	ho := hm.GetThis("outer")
	hm.Free(ho, actCls, field)
	hm.Return()
	hr := g.onCreate.New(handlerCls)
	g.onCreate.PutField(hr, handlerCls, "outer", g.onCreate.This())
	g.onCreate.PutThis(hField, hr)
	g.listener(fmt.Sprintf("PhbUser%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		hh := mb.GetField(outer, actCls, hField)
		msg := mb.New(framework.Message)
		mb.InvokeVoid(hh, handlerCls, "sendMessage", msg)
		useField(mb, outer, actCls, field, g.valCls())
	})
}

// maGetter is Figure 4(a)'s getter idiom: f = getF(); f.use(). Pruned by
// the unsound MA filter (the getter is assumed non-null).
func (g *gen) maGetter() {
	i := g.next()
	field := g.newField("ma", i)
	backing := fmt.Sprintf("b_ma%d", i)
	actCls := g.act.Name()
	g.act.Field(backing, g.valCls())
	bv := g.onCreate.New(g.valCls())
	g.onCreate.PutThis(backing, bv)
	getter := fmt.Sprintf("getMA%d", i)
	gm := g.act.Method(getter, 0)
	r := gm.GetThis(backing)
	gm.ReturnReg(r)
	g.listener(fmt.Sprintf("MAUser%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		got := mb.Invoke(outer, actCls, getter)
		mb.PutField(outer, actCls, field, got)
		useField(mb, outer, actCls, field, g.valCls())
	})
	g.listener(fmt.Sprintf("MAFreer%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		mb.Free(outer, actCls, field)
	})
}

// urReturn is Figure 4(g): the getter's load is only returned; the
// caller only null-checks it. Pruned by UR.
func (g *gen) urReturn() {
	i := g.next()
	field := g.newField("ur", i)
	actCls := g.act.Name()
	g.allocInCreate(field)
	getter := fmt.Sprintf("getUR%d", i)
	gm := g.act.Method(getter, 0)
	r := gm.GetThis(field)
	gm.ReturnReg(r)
	g.listener(fmt.Sprintf("URCaller%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		got := mb.Invoke(outer, actCls, getter)
		mb.IfNull(got, "done")
		mb.Label("done")
	})
	g.listener(fmt.Sprintf("URFreer%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		mb.Free(outer, actCls, field)
	})
}

// urParam: the load is only passed as a call argument. Pruned by UR.
func (g *gen) urParam() {
	i := g.next()
	field := g.newField("urp", i)
	actCls := g.act.Name()
	g.allocInCreate(field)
	helper := fmt.Sprintf("takeURP%d", i)
	hm := g.act.Method(helper, 1)
	hm.Return()
	g.listener(fmt.Sprintf("URPUser%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		f := mb.GetField(outer, actCls, field)
		mb.InvokeVoid(outer, actCls, helper, f)
	})
	g.listener(fmt.Sprintf("URPFreer%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		mb.Free(outer, actCls, field)
	})
}

// ttThread: a use and a free purely between two native threads. Pruned
// by TT.
func (g *gen) ttThread() {
	i := g.next()
	field := g.newField("tt", i)
	actCls := g.act.Name()
	g.allocInCreate(field)
	mk := func(name string, frees bool) string {
		cls := g.cls(fmt.Sprintf("%s%d", name, i))
		th := g.b.ThreadClass(cls)
		th.Field("outer", actCls)
		run := th.Method("run", 0)
		o := run.GetThis("outer")
		if frees {
			run.Free(o, actCls, field)
		} else {
			useField(run, o, actCls, field, g.valCls())
		}
		run.Return()
		tv := g.onCreate.New(cls)
		g.onCreate.PutField(tv, cls, "outer", g.onCreate.This())
		g.onCreate.InvokeVoid(tv, cls, "start")
		return cls
	}
	mk("TTUser", false)
	mk("TTFreer", true)
}

// --- false-positive patterns (survive all filters, dynamically safe) -----

// fpPathInsens: an opaque flag makes the use and the free mutually
// exclusive — path-insensitive analysis cannot see it (§8.5).
func (g *gen) fpPathInsens() {
	i := g.next()
	field := g.newField("fpp", i)
	actCls := g.act.Name()
	g.allocInCreate(field)
	g.listener(fmt.Sprintf("FPPUser%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		// Use only when the opaque branch is taken.
		mb.IfCond("use")
		mb.Goto("done")
		mb.Label("use")
		useField(mb, outer, actCls, field, g.valCls())
		mb.Label("done")
	})
	g.listener(fmt.Sprintf("FPPFreer%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		// Free only when the opaque branch is NOT taken.
		mb.IfCond("skip")
		mb.Free(outer, actCls, field)
		mb.Label("skip")
	})
}

// fpPointsTo: a static factory's allocation site is shared across call
// sites (no context on static methods), so two distinct runtime holders
// alias statically (§8.5 "Points-to Analysis").
func (g *gen) fpPointsTo() {
	i := g.next()
	actCls := g.act.Name()
	holderCls := g.cls(fmt.Sprintf("Holder%d", i))
	holder := g.b.Class(holderCls, framework.Object)
	holder.Field("v", g.valCls())
	facCls := g.cls(fmt.Sprintf("Factory%d", i))
	fac := g.b.Class(facCls, framework.Object)
	fm := fac.Method("make", 0)
	fm.Method().Static = true
	hv := fm.New(holderCls)
	fm.ReturnReg(hv)

	fa := fmt.Sprintf("ha_fpt%d", i)
	fb := fmt.Sprintf("hb_fpt%d", i)
	g.act.Field(fa, holderCls)
	g.act.Field(fb, holderCls)
	ha := g.onCreate.InvokeStatic(facCls, "make")
	vv := g.onCreate.New(g.valCls())
	g.onCreate.PutField(ha, holderCls, "v", vv)
	g.onCreate.PutThis(fa, ha)
	hb := g.onCreate.InvokeStatic(facCls, "make")
	vb := g.onCreate.New(g.valCls())
	g.onCreate.PutField(hb, holderCls, "v", vb)
	g.onCreate.PutThis(fb, hb)

	g.listener(fmt.Sprintf("FPTUser%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		h := mb.GetField(outer, actCls, fa)
		v := mb.GetField(h, holderCls, "v")
		mb.Use(v, g.valCls())
	})
	g.listener(fmt.Sprintf("FPTFreer%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		h := mb.GetField(outer, actCls, fb)
		mb.Free(h, holderCls, "v")
	})
}

// fpNotReach: a complete UAF inside an activity no intent can reach —
// statically analyzed, dynamically dead (§8.5 "Not Reachable").
func (g *gen) fpNotReach() {
	i := g.next()
	actCls := g.cls(fmt.Sprintf("DeadAct%d", i))
	act := g.b.UnreachableActivity(actCls)
	field := "f_dead"
	act.Field(field, g.valCls())
	oc := act.Method("onCreate", 1)
	lCls := g.cls(fmt.Sprintf("DeadUser%d", i))
	l := g.b.Class(lCls, framework.Object, framework.OnClickListener)
	l.Field("outer", actCls)
	mb := l.Method("onClick", 1)
	outer := mb.GetThis("outer")
	useField(mb, outer, actCls, field, g.valCls())
	mb.Return()
	view := oc.New(framework.View)
	inst := oc.New(lCls)
	oc.PutField(inst, lCls, "outer", oc.This())
	oc.InvokeVoid(view, framework.View, "setOnClickListener", inst)
	oc.Return()
	op := act.Method("onPause", 0)
	op.FreeThis(field)
	op.Return()
}

// fpMissingHB: the freeing callback hides the view whose listener is the
// user — UI semantics static analysis does not model (§8.5 "Missing
// Happens-Before").
func (g *gen) fpMissingHB() {
	i := g.next()
	field := g.newField("fph", i)
	viewField := fmt.Sprintf("view_fph%d", i)
	actCls := g.act.Name()
	g.act.Field(viewField, framework.View)
	g.allocInCreate(field)

	// The user's listener is registered on a dedicated view stored in a
	// field so the freer can hide it.
	userCls := g.cls(fmt.Sprintf("FPHUser%d", i))
	l := g.b.Class(userCls, framework.Object, framework.OnClickListener)
	l.Field("outer", actCls)
	mb := l.Method("onClick", 1)
	outer := mb.GetThis("outer")
	useField(mb, outer, actCls, field, g.valCls())
	mb.Return()
	vb := g.onCreate.New(framework.View)
	g.onCreate.PutThis(viewField, vb)
	inst := g.onCreate.New(userCls)
	g.onCreate.PutField(inst, userCls, "outer", g.onCreate.This())
	g.onCreate.InvokeVoid(vb, framework.View, "setOnClickListener", inst)

	g.listener(fmt.Sprintf("FPHFreer%d", i), func(mb *appbuilder.MethodBuilder, outer int) {
		mb.Free(outer, actCls, field)
		v := mb.GetField(outer, actCls, viewField)
		zero := mb.Reg()
		mb.Int(zero, 8) // View.GONE
		mb.InvokeVoid(v, framework.View, "setVisibility", zero)
	})
}

// padding emits benign thread-local classes to give apps realistic bulk
// without adding warnings.
func (g *gen) padding(n int) {
	for j := 0; j < n; j++ {
		i := g.next()
		cls := g.cls(fmt.Sprintf("Pad%d", i))
		c := g.b.Class(cls, framework.Object)
		c.Field("x", g.valCls())
		work := c.Method("work", 0)
		v := work.New(g.valCls())
		work.PutThis("x", v)
		got := work.GetThis("x")
		work.Use(got, g.valCls())
		work.FreeThis("x")
		work.Return()
		p := g.onCreate.New(cls)
		g.onCreate.InvokeVoid(p, cls, "work")
	}
}

// mhbIGService combines Figure 4(a) and 4(b): a *guarded* use in
// onServiceConnected against a free in onServiceDisconnected. Both the
// MHB filter (SC always precedes SD) and the IG filter (guard + looper
// atomicity) prune it independently — the overlap Figure 5(a) reports.
func (g *gen) mhbIGService() {
	i := g.next()
	field := g.newField("mig", i)
	actCls := g.act.Name()
	g.allocInCreate(field)
	connCls := g.cls(fmt.Sprintf("GConn%d", i))
	conn := g.b.ServiceConn(connCls)
	conn.Field("outer", actCls)
	sc := conn.Method("onServiceConnected", 1)
	o := sc.GetThis("outer")
	guardedUseField(sc, o, actCls, field, g.valCls(), "skip")
	sc.Return()
	sd := conn.Method("onServiceDisconnected", 1)
	o2 := sd.GetThis("outer")
	sd.Free(o2, actCls, field)
	sd.Return()
	cn := g.onStart.New(connCls)
	g.onStart.PutField(cn, connCls, "outer", g.onStart.This())
	g.onStart.InvokeVoid(g.onStart.This(), actCls, "bindService", cn)
}

// serviceDestroy: a Service component whose onStartCommand uses a field
// that onDestroy frees — the DEvA Table 3 shape (e.g. Music's
// MediaPlaybackService.mPlayer). Intra-class, so DEvA sees it; nAdroid
// detects it and the MHB-Lifecycle filter prunes it.
func (g *gen) serviceDestroy() {
	i := g.next()
	svcCls := g.cls(fmt.Sprintf("Svc%d", i))
	svc := g.b.Service(svcCls)
	field := "f_svc"
	svc.Field(field, g.valCls())
	oc := svc.Method("onCreate", 0)
	v := oc.New(g.valCls())
	oc.PutThis(field, v)
	oc.Return()
	osc := svc.Method("onStartCommand", 1)
	f := osc.GetThis(field)
	osc.Use(f, g.valCls())
	osc.Return()
	od := svc.Method("onDestroy", 0)
	od.FreeThis(field)
	od.Return()
}

// chbIntraFinish: two callbacks on the SAME activity class where the
// freeing one calls finish() — DEvA reports it (intra-class, no HB
// reasoning); nAdroid's unsound CHB filter prunes it (the "rest two
// cases" of §8.7).
func (g *gen) chbIntraFinish() {
	i := g.next()
	actCls := g.cls(fmt.Sprintf("CFAct%d", i))
	act := g.b.Activity(actCls)
	field := "f_cf"
	act.Field(field, g.valCls())
	oc := act.Method("onCreate", 1)
	v := oc.New(g.valCls())
	oc.PutThis(field, v)
	oc.Return()
	menu := act.Method("onCreateContextMenu", 1)
	f := menu.GetThis(field)
	menu.Use(f, g.valCls())
	menu.Return()
	obp := act.Method("onBackPressed", 0)
	obp.FreeThis(field)
	obp.InvokeVoid(obp.This(), actCls, "finish")
	obp.Return()
}

// fragmentPair: a Fragment subclass with a use/free pair across its
// lifecycle callbacks. DEvA's intra-class analysis reports it; nAdroid's
// threadification does not model Fragment (§8.1), reproducing Table 3's
// "Not detected" row.
func (g *gen) fragmentPair() {
	i := g.next()
	fragCls := g.cls(fmt.Sprintf("Frag%d", i))
	frag := g.b.Class(fragCls, framework.Fragment)
	field := "f_frag"
	frag.Field(field, g.valCls())
	orr := frag.Method("onResume", 0)
	f := orr.GetThis(field)
	orr.Use(f, g.valCls())
	orr.Return()
	od := frag.Method("onDestroy", 0)
	od.FreeThis(field)
	od.Return()
}
