package threadify

import (
	"testing"

	"nadroid/internal/apk"
	"nadroid/internal/appbuilder"
	"nadroid/internal/framework"
)

// buildFigure3App reproduces the shape of the paper's Figure 3:
//
//	MainActivity: onCreate registers an OnClickListener and a
//	LocationListener; onStart binds a Service connection; onResume
//	registers a BroadcastReceiver.
//	onClick: sends a message to a Handler and posts a Runnable.
//	onLocationChanged: executes an AsyncTask whose doInBackground calls
//	publishProgress.
func buildFigure3App(t *testing.T) *apk.Package {
	t.Helper()
	b := appbuilder.New("figure3")

	act := b.Activity("app/MainActivity")
	act.Field("handler", "app/MyHandler")
	act.Field("view", framework.View)
	act.Field("locMgr", framework.LocationManager)

	click := b.Class("app/ClickListener", framework.Object, framework.OnClickListener)
	click.Field("outer", "app/MainActivity")
	loc := b.Class("app/LocListener", framework.Object, framework.LocationListener)

	// Handler subclass.
	h := b.HandlerClass("app/MyHandler")
	hm := h.Method("handleMessage", 1)
	hm.Return()

	// Runnable.
	run := b.Runnable("app/Job")
	rm := run.Method("run", 0)
	rm.Return()

	// AsyncTask.
	task := b.AsyncTaskClass("app/LoadTask")
	dib := task.Method("doInBackground", 0)
	dib.InvokeVoid(dib.This(), "app/LoadTask", "publishProgress")
	dib.Return()
	task.Method("onPreExecute", 0).Return()
	task.Method("onProgressUpdate", 0).Return()
	task.Method("onPostExecute", 0).Return()

	// ServiceConnection.
	conn := b.ServiceConn("app/Conn")
	conn.Method("onServiceConnected", 1).Return()
	conn.Method("onServiceDisconnected", 1).Return()

	// Receiver (registered imperatively, not in the manifest).
	rcv := b.Class("app/Rcv", framework.BroadcastReceiver)
	rcv.Method("onReceive", 1).Return()

	// Native thread.
	th := b.ThreadClass("app/Worker")
	th.Method("run", 0).Return()

	// onCreate: wire listeners and the handler.
	oc := act.Method("onCreate", 1)
	hreg := oc.New("app/MyHandler")
	oc.PutThis("handler", hreg)
	v := oc.GetThis("view")
	cl := oc.New("app/ClickListener")
	oc.PutField(cl, "app/ClickListener", "outer", oc.This())
	oc.InvokeVoid(v, framework.View, "setOnClickListener", cl)
	lm := oc.GetThis("locMgr")
	ll := oc.New("app/LocListener")
	dummy := oc.NullReg()
	oc.InvokeVoid(lm, framework.LocationManager, "requestLocationUpdates", ll, dummy)
	oc.Return()

	// onStart: bind the service connection; also start a native thread.
	os := act.Method("onStart", 0)
	cn := os.New("app/Conn")
	os.InvokeVoid(os.This(), "app/MainActivity", "bindService", cn)
	w := os.New("app/Worker")
	os.InvokeVoid(w, "app/Worker", "start")
	os.Return()

	// onResume: register the broadcast receiver.
	orm := act.Method("onResume", 0)
	rv := orm.New("app/Rcv")
	orm.InvokeVoid(orm.This(), "app/MainActivity", "registerReceiver", rv)
	orm.Return()

	// ClickListener.onClick: sendMessage + post.
	ocl := click.Method("onClick", 1)
	outer := ocl.GetThis("outer")
	hh := ocl.GetField(outer, "app/MainActivity", "handler")
	msg := ocl.New(framework.Message)
	ocl.InvokeVoid(hh, "app/MyHandler", "sendMessage", msg)
	job := ocl.New("app/Job")
	ocl.InvokeVoid(hh, "app/MyHandler", "post", job)
	ocl.Return()

	// LocListener.onLocationChanged: execute the AsyncTask.
	olc := loc.Method("onLocationChanged", 1)
	tk := olc.New("app/LoadTask")
	olc.InvokeVoid(tk, "app/LoadTask", "execute")
	olc.Return()

	pkg, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return pkg
}

func mustModel(t *testing.T, pkg *apk.Package) *Model {
	t.Helper()
	m, err := Build(pkg, Options{})
	if err != nil {
		t.Fatalf("Build model: %v", err)
	}
	return m
}

// findThread locates a thread by entry method suffix; fails the test if
// absent or ambiguous beyond the first.
func findThread(t *testing.T, m *Model, methodSuffix string) *Thread {
	t.Helper()
	var found *Thread
	for _, th := range m.Threads {
		if th.Kind == KindDummyMain {
			continue
		}
		if endsWith(th.Entry.Method, methodSuffix) {
			if found == nil {
				found = th
			}
		}
	}
	if found == nil {
		t.Fatalf("no thread with entry %q; have %v", methodSuffix, threadNames(m))
	}
	return found
}

func threadNames(m *Model) []string {
	var out []string
	for _, th := range m.Threads {
		out = append(out, th.Name()+"/"+th.Origin)
	}
	return out
}

func endsWith(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}

func TestLifecycleCallbacksAreECChildrenOfMain(t *testing.T) {
	m := mustModel(t, buildFigure3App(t))
	for _, cb := range []string{"onCreate", "onStart", "onResume"} {
		th := findThread(t, m, "MainActivity."+cb)
		if th.Kind != KindEntryCallback {
			t.Errorf("%s kind = %v, want EC", cb, th.Kind)
		}
		if th.Parent != 0 {
			t.Errorf("%s parent = %d, want dummy main", cb, th.Parent)
		}
		if !th.Looper {
			t.Errorf("%s must run on the looper", cb)
		}
	}
}

func TestListenersAreECChildrenOfMain(t *testing.T) {
	m := mustModel(t, buildFigure3App(t))
	for _, cb := range []string{"ClickListener.onClick", "LocListener.onLocationChanged"} {
		th := findThread(t, m, cb)
		if th.Kind != KindEntryCallback {
			t.Errorf("%s kind = %v, want EC", cb, th.Kind)
		}
		if th.Parent != 0 {
			t.Errorf("%s parent = %d, want dummy main (registered listeners are ECs)", cb, th.Parent)
		}
	}
}

func TestHandlerPostsArePCChildrenOfPoster(t *testing.T) {
	m := mustModel(t, buildFigure3App(t))
	onClick := findThread(t, m, "ClickListener.onClick")
	hm := findThread(t, m, "MyHandler.handleMessage")
	job := findThread(t, m, "Job.run")
	if hm.Kind != KindPostedCallback || job.Kind != KindPostedCallback {
		t.Errorf("handleMessage/run kinds = %v/%v, want PC", hm.Kind, job.Kind)
	}
	if hm.Parent != onClick.ID {
		t.Errorf("handleMessage parent = %d, want onClick %d", hm.Parent, onClick.ID)
	}
	if job.Parent != onClick.ID {
		t.Errorf("Job.run parent = %d, want onClick %d", job.Parent, onClick.ID)
	}
	if !job.Looper {
		t.Error("posted Runnable runs on the looper")
	}
}

func TestServiceConnectionChildrenOfBinder(t *testing.T) {
	m := mustModel(t, buildFigure3App(t))
	onStart := findThread(t, m, "MainActivity.onStart")
	for _, cb := range []string{"Conn.onServiceConnected", "Conn.onServiceDisconnected"} {
		th := findThread(t, m, cb)
		if th.Kind != KindPostedCallback {
			t.Errorf("%s kind = %v, want PC", cb, th.Kind)
		}
		if th.Parent != onStart.ID {
			t.Errorf("%s parent = %d, want onStart %d", cb, th.Parent, onStart.ID)
		}
	}
}

func TestReceiverChildOfRegistrar(t *testing.T) {
	m := mustModel(t, buildFigure3App(t))
	onResume := findThread(t, m, "MainActivity.onResume")
	rcv := findThread(t, m, "Rcv.onReceive")
	if rcv.Parent != onResume.ID {
		t.Errorf("onReceive parent = %d, want onResume %d", rcv.Parent, onResume.ID)
	}
}

func TestAsyncTaskShape(t *testing.T) {
	m := mustModel(t, buildFigure3App(t))
	olc := findThread(t, m, "LocListener.onLocationChanged")
	body := findThread(t, m, "LoadTask.doInBackground")
	if body.Kind != KindTaskBody {
		t.Errorf("doInBackground kind = %v, want task-body", body.Kind)
	}
	if body.Parent != olc.ID {
		t.Errorf("doInBackground parent = %d, want onLocationChanged %d", body.Parent, olc.ID)
	}
	if body.Looper {
		t.Error("doInBackground is a background thread, not a looper callback")
	}
	for _, cb := range []string{"LoadTask.onPreExecute", "LoadTask.onPostExecute", "LoadTask.onProgressUpdate"} {
		th := findThread(t, m, cb)
		if th.Parent != body.ID {
			t.Errorf("%s parent = %d, want doInBackground %d", cb, th.Parent, body.ID)
		}
		if th.Kind != KindPostedCallback {
			t.Errorf("%s kind = %v, want PC", cb, th.Kind)
		}
	}
}

func TestNativeThreadChildOfStarter(t *testing.T) {
	m := mustModel(t, buildFigure3App(t))
	onStart := findThread(t, m, "MainActivity.onStart")
	w := findThread(t, m, "Worker.run")
	if w.Kind != KindNativeThread {
		t.Errorf("Worker.run kind = %v, want native thread", w.Kind)
	}
	if w.Parent != onStart.ID {
		t.Errorf("Worker.run parent = %d, want onStart %d", w.Parent, onStart.ID)
	}
	if w.Looper {
		t.Error("native threads do not run on the looper")
	}
}

func TestStatsMatchFigure3(t *testing.T) {
	m := mustModel(t, buildFigure3App(t))
	s := m.Stats()
	// ECs: onCreate, onStart, onResume, onClick, onLocationChanged.
	if s.EC != 5 {
		t.Errorf("EC = %d, want 5 (%v)", s.EC, threadNames(m))
	}
	// PCs: handleMessage, Job.run, SC, SD, onReceive, pre, post, progress.
	if s.PC != 8 {
		t.Errorf("PC = %d, want 8 (%v)", s.PC, threadNames(m))
	}
	// T: dummy main + doInBackground + Worker.
	if s.T != 3 {
		t.Errorf("T = %d, want 3 (%v)", s.T, threadNames(m))
	}
}

func TestLineageMentionsAncestors(t *testing.T) {
	m := mustModel(t, buildFigure3App(t))
	prog := findThread(t, m, "LoadTask.onProgressUpdate")
	lin := m.Lineage(prog.ID)
	for _, part := range []string{"main", "onLocationChanged", "doInBackground", "onProgressUpdate"} {
		if !containsStr(lin, part) {
			t.Errorf("lineage %q missing %q", lin, part)
		}
	}
}

func TestIsAncestor(t *testing.T) {
	m := mustModel(t, buildFigure3App(t))
	olc := findThread(t, m, "LocListener.onLocationChanged")
	prog := findThread(t, m, "LoadTask.onProgressUpdate")
	if !m.IsAncestor(0, prog.ID) {
		t.Error("dummy main is an ancestor of everything")
	}
	if !m.IsAncestor(olc.ID, prog.ID) {
		t.Error("onLocationChanged must be an ancestor of onProgressUpdate")
	}
	if m.IsAncestor(prog.ID, olc.ID) {
		t.Error("ancestry must not be symmetric")
	}
}

func TestPostCycleTerminates(t *testing.T) {
	b := appbuilder.New("cycle")
	act := b.Activity("app/A")
	act.Field("handler", "app/H")
	h := b.HandlerClass("app/H")

	// Ping posts Pong, Pong posts Ping, forever.
	ping := b.Runnable("app/Ping")
	pong := b.Runnable("app/Pong")
	ping.Field("h", "app/H")
	pong.Field("h", "app/H")
	pr := ping.Method("run", 0)
	hh := pr.GetThis("h")
	po := pr.New("app/Pong")
	pr.PutField(po, "app/Pong", "h", hh)
	pr.InvokeVoid(hh, "app/H", "post", po)
	pr.Return()
	qr := pong.Method("run", 0)
	qh := qr.GetThis("h")
	pi := qr.New("app/Ping")
	qr.PutField(pi, "app/Ping", "h", qh)
	qr.InvokeVoid(qh, "app/H", "post", pi)
	qr.Return()

	oc := act.Method("onCreate", 1)
	hr := oc.New("app/H")
	oc.PutThis("handler", hr)
	first := oc.New("app/Ping")
	oc.PutField(first, "app/Ping", "h", hr)
	oc.InvokeVoid(hr, "app/H", "post", first)
	oc.Return()
	_ = h

	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(pkg, Options{MaxThreads: 512})
	if err != nil {
		t.Fatalf("cyclic posting must terminate, got %v", err)
	}
	if len(m.Threads) > 64 {
		t.Errorf("forest unexpectedly large: %d threads", len(m.Threads))
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestThreadsExecutingSharedHelper(t *testing.T) {
	b := appbuilder.New("shared")
	act := b.Activity("s/A")
	helper := act.Method("helper", 0)
	helper.Return()
	oc := act.Method("onCreate", 1)
	oc.InvokeThis("helper")
	oc.Return()
	orr := act.Method("onResume", 0)
	orr.InvokeThis("helper")
	orr.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mustModel(t, pkg)
	obj, ok := m.ComponentObj("s/A")
	if !ok {
		t.Fatal("component object missing")
	}
	ids := m.ThreadsExecuting(MCtx{Method: "s/A.helper", Recv: obj})
	if len(ids) != 2 {
		t.Fatalf("helper executed by %v, want onCreate and onResume", ids)
	}
}

func TestComponentObjUnknown(t *testing.T) {
	m := mustModel(t, buildFigure3App(t))
	if _, ok := m.ComponentObj("no/Such"); ok {
		t.Error("unknown components must not resolve")
	}
}

func TestReachIsCached(t *testing.T) {
	m := mustModel(t, buildFigure3App(t))
	r1 := m.Reach(1)
	r2 := m.Reach(1)
	if &r1 == &r2 {
		// maps compare by header; identity check via mutation instead.
	}
	r1[MCtx{Method: "sentinel", Recv: 0}] = true
	if !m.Reach(1)[MCtx{Method: "sentinel", Recv: 0}] {
		t.Error("Reach must return the cached set")
	}
}
