package threadify

import (
	"nadroid/internal/apk"
	"nadroid/internal/pointsto"
)

// Restore rebuilds a Model from previously serialized parts: the
// restored package, a points-to result rehydrated via
// pointsto.FromSnapshot, the thread forest, and the component-object
// table. It is the deserialization counterpart of BuildContext — no
// solving or spawn attachment happens, so restoring is cheap and a warm
// IR-cache hit skips the modeling phase entirely.
func Restore(pkg *apk.Package, pts *pointsto.Result, threads []*Thread, compObj map[string]pointsto.ObjID) *Model {
	return &Model{
		Pkg:     pkg,
		H:       pts.Hierarchy(),
		PTS:     pts,
		Threads: threads,
		reach:   make(map[int]map[MCtx]bool),
		adj:     buildAdjacency(pts),
		compObj: compObj,
	}
}

// ComponentObjs exposes the component-class → synthetic-receiver table
// for serialization (Restore takes it back verbatim).
func (m *Model) ComponentObjs() map[string]pointsto.ObjID { return m.compObj }
