// Package threadify implements the paper's core contribution (§4): it
// statically models every event callback of an Android application as a
// thread, converting single-threaded ordering violations between
// callbacks into multi-threaded ordering violations a conventional race
// detector can find.
//
// Entry callbacks (lifecycle, UI-listener, system callbacks — externally
// invoked by the Android runtime) become children of a dummy main
// thread. Posted callbacks (Handler posts/messages, service connection
// callbacks, broadcast receivers, AsyncTask callbacks — internally
// triggered by the application) become children of the posting callback
// or thread, preserving the poster/postee causal relation. Native
// threads (Thread.start, executors, timers, doInBackground) stay
// threads.
//
// The spawn discovery runs inside the points-to solve: a posting API
// call site resolves its target object exactly like a virtual call, but
// records a spawn edge instead of a call edge.
package threadify

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"nadroid/internal/apk"
	"nadroid/internal/cha"
	"nadroid/internal/framework"
	"nadroid/internal/ir"
	"nadroid/internal/manifest"
	"nadroid/internal/obs"
	"nadroid/internal/pointsto"
)

// Kind classifies a modeled thread.
type Kind int

const (
	// KindDummyMain is the synthetic root: the initial looper thread.
	KindDummyMain Kind = iota
	// KindEntryCallback (EC): externally invoked by the Android runtime.
	KindEntryCallback
	// KindPostedCallback (PC): internally posted, runs on the looper.
	KindPostedCallback
	// KindTaskBody is AsyncTask.doInBackground: a background thread.
	KindTaskBody
	// KindNativeThread is a plain thread (Thread.run, executor, timer).
	KindNativeThread
)

var kindNames = [...]string{"dummy-main", "EC", "PC", "task-body", "thread"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MCtx is a method context: an entry method plus the abstract receiver
// under which it runs.
type MCtx struct {
	Method string
	Recv   pointsto.ObjID
}

func (m MCtx) String() string { return fmt.Sprintf("%s@%d", m.Method, int(m.Recv)) }

// Thread is one modeled thread.
type Thread struct {
	ID   int
	Kind Kind
	// Post records the posting API for PCs/threads (PostNone for ECs).
	Post framework.PostKind
	// Origin is a short tag: "lifecycle", "ui", "service-lifecycle",
	// "receiver-manifest", "listener", or the posting API name.
	Origin string
	// Entry is the callback/thread body context; zero for the dummy main.
	Entry MCtx
	// Parent is the spawning thread's ID (-1 for the dummy main).
	Parent int
	// Site is the posting/registration instruction ("" for ECs).
	Site ir.InstrID
	// Looper is true when the body runs on the main looper (ECs and PCs)
	// and false for background threads. Callbacks on the same looper are
	// atomic with respect to each other.
	Looper bool
	// Component is the manifest component class this thread belongs to,
	// when known (lifecycle ECs and their descendants).
	Component string
}

// Name renders a compact human-readable thread name.
func (t *Thread) Name() string {
	if t.Kind == KindDummyMain {
		return "main"
	}
	_, name, _ := ir.SplitRef(t.Entry.Method)
	cls, _, _ := ir.SplitRef(t.Entry.Method)
	return fmt.Sprintf("%s.%s#%d", ir.ShortName(cls), name, t.ID)
}

// Model is the threadified program: the thread forest plus the points-to
// result it was derived from.
type Model struct {
	Pkg     *apk.Package
	H       *cha.Hierarchy
	PTS     *pointsto.Result
	Threads []*Thread
	// reach caches per-thread reachable method contexts.
	reach map[int]map[MCtx]bool
	// adj is the call-edge adjacency over method contexts.
	adj map[MCtx][]MCtx
	// compObj maps component class -> synthetic receiver object.
	compObj map[string]pointsto.ObjID
}

// Options configures modeling.
type Options struct {
	// K is the points-to object-sensitivity depth (default 2, as in §5).
	K int
	// MaxThreads caps the forest size against pathological post cycles.
	MaxThreads int
	// Presolved, when non-nil, is a points-to snapshot the caller
	// guarantees equals what the solve over this package would produce
	// (the incremental pipeline gates it on a digest over every
	// solver-consumed input). BuildContext then restores the result
	// instead of running the solve; everything downstream — thread
	// attachment, adjacency, reach — is rebuilt fresh against it.
	Presolved *pointsto.Snapshot
}

// spawn tags passed through the points-to solver.
const (
	tagRunnablePC   = iota + 1 // Handler.post / View.post / runOnUiThread
	tagHandlerMsg              // sendMessage -> handleMessage
	tagServiceConn             // bindService -> onServiceConnected/Disconnected
	tagReceiver                // registerReceiver -> onReceive
	tagTaskBody                // execute -> doInBackground
	tagTaskCallback            // execute -> onPreExecute / onPostExecute
	tagTaskProgress            // publishProgress -> onProgressUpdate
	tagNative                  // Thread.start / executor / timer
	tagListener                // setOnXListener / requestLocationUpdates ...
)

func tagPostKind(tag int) framework.PostKind {
	switch tag {
	case tagRunnablePC:
		return framework.PostRunnable
	case tagHandlerMsg:
		return framework.PostSendMessage
	case tagServiceConn:
		return framework.PostBindService
	case tagReceiver:
		return framework.PostRegisterReceiver
	case tagTaskBody, tagTaskCallback:
		return framework.PostExecuteTask
	case tagTaskProgress:
		return framework.PostPublishProgress
	case tagNative:
		return framework.PostStartThread
	}
	return framework.PostNone
}

// Build threadifies the package: discovers entry callbacks, runs the
// points-to solve with spawn discovery, and assembles the thread forest.
func Build(pkg *apk.Package, opts Options) (*Model, error) {
	return BuildContext(context.Background(), pkg, opts)
}

// ecSeed is one discovered entry callback.
type ecSeed struct {
	mctx      MCtx
	origin    string
	component string
}

// SolveInputs bundles everything BuildContext feeds the points-to
// solver: the hierarchy, the synthetic component objects, the entry
// contexts, and the solver options (spawn/factory oracles included).
// PrepareSolve exposes it so benchmarks and tools can measure or rerun
// pointsto.Solve in isolation without duplicating the setup.
type SolveInputs struct {
	H       *cha.Hierarchy
	Synths  []pointsto.Obj
	Entries []pointsto.Entry
	Opts    pointsto.Options

	seeds   []ecSeed
	compObj map[string]pointsto.ObjID
}

// PrepareSolve runs every modeling step up to (but excluding) the
// points-to solve: component discovery, entry-callback seeding, and
// oracle construction.
func PrepareSolve(pkg *apk.Package, opts Options) (*SolveInputs, error) {
	if opts.K <= 0 {
		opts.K = 2
	}
	h := cha.New(pkg.Program)

	// Synthetic receiver objects: one instance per manifest component
	// ("the framework allocates the component"), as in the paper's
	// single-instance assumption (§8.1).
	var synths []pointsto.Obj
	compObj := make(map[string]pointsto.ObjID)
	for _, comp := range pkg.Manifest.Components() {
		compObj[comp.Class] = pointsto.ObjID(len(synths))
		synths = append(synths, pointsto.Obj{
			Site:  "synthetic:" + comp.Class,
			Class: comp.Class,
		})
	}

	// Entry callbacks: lifecycle methods declared on component classes.
	var seeds []ecSeed
	for _, comp := range pkg.Manifest.Components() {
		names := entryCallbackNames(pkg.Program, comp)
		for _, n := range names {
			m := h.Resolve(comp.Class, n.method)
			if m == nil {
				continue
			}
			seeds = append(seeds, ecSeed{
				mctx:      MCtx{Method: m.Ref(), Recv: compObj[comp.Class]},
				origin:    n.origin,
				component: comp.Class,
			})
		}
	}

	oracle := newOracle(h)
	var entries []pointsto.Entry
	for _, s := range seeds {
		m, err := h.MethodByRef(s.mctx.Method)
		if err != nil {
			return nil, err
		}
		entries = append(entries, pointsto.Entry{Method: m, Receivers: []pointsto.ObjID{s.mctx.Recv}})
	}
	return &SolveInputs{
		H:       h,
		Synths:  synths,
		Entries: entries,
		Opts: pointsto.Options{
			K:       opts.K,
			Spawner: oracle.classify,
			Factory: oracle.factory,
		},
		seeds:   seeds,
		compObj: compObj,
	}, nil
}

// BuildContext is Build under an observability context: the points-to
// solve and thread attachment run in their own spans, and the modeled
// thread / spawn-edge counts land in the pipeline counters.
func BuildContext(ctx context.Context, pkg *apk.Package, opts Options) (*Model, error) {
	if opts.MaxThreads <= 0 {
		opts.MaxThreads = 4096
	}
	si, err := PrepareSolve(pkg, opts)
	if err != nil {
		return nil, err
	}
	h, compObj, seeds := si.H, si.compObj, si.seeds

	// Points-to solve with spawn discovery — or, when the caller carries
	// a digest-matched snapshot from a previous run, a restore.
	var pts *pointsto.Result
	if opts.Presolved != nil {
		pts = pointsto.FromSnapshot(h, opts.Presolved)
	} else {
		pts = pointsto.SolveWithSyntheticsContext(ctx, h, si.Synths, si.Entries, si.Opts)
	}

	m := &Model{
		Pkg:     pkg,
		H:       h,
		PTS:     pts,
		reach:   make(map[int]map[MCtx]bool),
		adj:     buildAdjacency(pts),
		compObj: compObj,
	}

	// Thread 0: dummy main.
	m.Threads = append(m.Threads, &Thread{ID: 0, Kind: KindDummyMain, Parent: -1, Looper: true, Origin: "dummy"})

	// EC threads.
	for _, s := range seeds {
		m.Threads = append(m.Threads, &Thread{
			ID:        len(m.Threads),
			Kind:      KindEntryCallback,
			Origin:    s.origin,
			Entry:     s.mctx,
			Parent:    0,
			Looper:    true,
			Component: s.component,
		})
	}

	_, span := obs.Start(ctx, "threadify.attach")
	err = m.attachSpawnedThreads(opts.MaxThreads)
	span.SetAttr("threads", len(m.Threads))
	span.End()
	if err != nil {
		return nil, err
	}
	obs.Add(ctx, "threads_modeled", int64(len(m.Threads)))
	obs.Add(ctx, "spawn_edges", int64(len(pts.SpawnEdges())))
	return m, nil
}

// namedCallback pairs a callback method name with its origin tag.
type namedCallback struct {
	method string
	origin string
}

// entryCallbackNames lists the lifecycle callbacks a component class (or
// its app-defined superclasses) declares.
func entryCallbackNames(prog *ir.Program, comp *manifest.Component) []namedCallback {
	var names []namedCallback
	seen := make(map[string]bool)
	for cur := comp.Class; cur != ""; {
		c := prog.Class(cur)
		if c == nil {
			break
		}
		for _, mth := range c.Methods {
			if mth.Abstract || seen[mth.Name] {
				continue
			}
			switch comp.Kind {
			case manifest.ActivityComponent:
				if framework.IsLifecycleCallback(mth.Name) {
					seen[mth.Name] = true
					names = append(names, namedCallback{mth.Name, "lifecycle"})
				}
			case manifest.ServiceComponent:
				if framework.IsServiceLifecycleCallback(mth.Name) {
					seen[mth.Name] = true
					names = append(names, namedCallback{mth.Name, "service-lifecycle"})
				}
			case manifest.ReceiverComponent:
				if mth.Name == framework.ReceiverCallback {
					seen[mth.Name] = true
					names = append(names, namedCallback{mth.Name, "receiver-manifest"})
				}
			}
		}
		// Stop at framework classes: their methods are abstract anyway.
		cur = c.Super
	}
	sort.Slice(names, func(i, j int) bool { return names[i].method < names[j].method })
	return names
}

// oracle classifies invokes into spawn specs using the class hierarchy.
type oracle struct {
	h *cha.Hierarchy
}

func newOracle(h *cha.Hierarchy) *oracle { return &oracle{h: h} }

// factory models framework calls that return fresh objects as
// allocations at the call site, so downstream analyses (no-sleep lock
// identity, view identity) can distinguish the results.
func (o *oracle) factory(caller *ir.Method, idx int, in ir.Instr) (string, bool) {
	if in.Op != ir.OpInvoke {
		return "", false
	}
	if framework.ClassifyWakeLock(o.h, in.Callee.Class, in.Callee.Name) == framework.WakeNew {
		return framework.WakeLock, true
	}
	switch in.Callee.Name {
	case "findViewById":
		if o.h.IsSubtypeOf(in.Callee.Class, framework.Activity) {
			return framework.View, true
		}
	case "obtainMessage":
		if o.h.IsSubtypeOf(in.Callee.Class, framework.Handler) {
			return framework.Message, true
		}
	}
	return "", false
}

func (o *oracle) classify(caller *ir.Method, idx int, in ir.Instr) []pointsto.SpawnSpec {
	if in.Op != ir.OpInvoke {
		return nil
	}
	recvClass := in.Callee.Class
	if argIdx, iface, ok := framework.IsRegistrationCall(o.h, recvClass, in.Callee.Name); ok {
		return []pointsto.SpawnSpec{{
			Tag:     tagListener,
			FromArg: argIdx,
			Methods: framework.ListenerMethods(iface),
		}}
	}
	switch framework.ClassifyPost(o.h, recvClass, in.Callee.Name) {
	case framework.PostRunnable:
		return []pointsto.SpawnSpec{{Tag: tagRunnablePC, FromArg: 0, Methods: []string{framework.RunMethod}}}
	case framework.PostSendMessage:
		return []pointsto.SpawnSpec{{Tag: tagHandlerMsg, FromArg: -1, Methods: []string{framework.HandlerCallback}}}
	case framework.PostBindService:
		return []pointsto.SpawnSpec{{Tag: tagServiceConn, FromArg: 0, Methods: framework.ServiceConnCallbacks}}
	case framework.PostRegisterReceiver:
		return []pointsto.SpawnSpec{{Tag: tagReceiver, FromArg: 0, Methods: []string{framework.ReceiverCallback}}}
	case framework.PostExecuteTask:
		return []pointsto.SpawnSpec{
			{Tag: tagTaskBody, FromArg: -1, Methods: []string{framework.AsyncTaskBody}},
			{Tag: tagTaskCallback, FromArg: -1, Methods: []string{"onPreExecute", "onPostExecute"}},
		}
	case framework.PostPublishProgress:
		return []pointsto.SpawnSpec{{Tag: tagTaskProgress, FromArg: -1, Methods: []string{"onProgressUpdate"}}}
	case framework.PostStartThread:
		return []pointsto.SpawnSpec{{Tag: tagNative, FromArg: -1, Methods: []string{framework.RunMethod}}}
	case framework.PostExecutorSubmit, framework.PostTimerSchedule:
		return []pointsto.SpawnSpec{{Tag: tagNative, FromArg: 0, Methods: []string{framework.RunMethod}}}
	}
	return nil
}

// buildAdjacency flattens the context-sensitive call graph.
func buildAdjacency(pts *pointsto.Result) map[MCtx][]MCtx {
	adj := make(map[MCtx][]MCtx)
	for _, e := range pts.CallEdges() {
		from := MCtx{e.CallerMethod, e.CallerRecv}
		to := MCtx{e.CalleeMethod, e.CalleeRecv}
		adj[from] = append(adj[from], to)
	}
	return adj
}

// Reach returns the method contexts thread t may execute (its entry plus
// everything reachable over call edges — spawn edges excluded).
func (m *Model) Reach(t int) map[MCtx]bool {
	if r, ok := m.reach[t]; ok {
		return r
	}
	r := make(map[MCtx]bool)
	th := m.Threads[t]
	if th.Kind != KindDummyMain {
		var stack []MCtx
		push := func(mc MCtx) {
			if !r[mc] {
				r[mc] = true
				stack = append(stack, mc)
			}
		}
		push(th.Entry)
		for len(stack) > 0 {
			mc := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, next := range m.adj[mc] {
				push(next)
			}
		}
	}
	m.reach[t] = r
	return r
}

// attachSpawnedThreads grows the forest to fixpoint: a spawn edge whose
// caller context is executed by thread t adds a child of t.
func (m *Model) attachSpawnedThreads(maxThreads int) error {
	edges := m.PTS.SpawnEdges()
	// Group deferred AsyncTask callbacks (children of the task body).
	type childKey struct {
		parent int
		entry  MCtx
		site   ir.InstrID
	}
	made := make(map[childKey]int)

	mkThread := func(parent int, kind Kind, tag int, entry MCtx, site ir.InstrID, looper bool, component string) int {
		key := childKey{parent, entry, site}
		if id, ok := made[key]; ok {
			return id
		}
		// Refuse to re-create an entry that is already on the ancestor
		// chain: posting cycles would otherwise unroll forever.
		for a := parent; a >= 0; a = m.Threads[a].Parent {
			t := m.Threads[a]
			if t.Entry == entry && t.Site == site {
				made[key] = a
				return a
			}
		}
		th := &Thread{
			ID:        len(m.Threads),
			Kind:      kind,
			Post:      tagPostKind(tag),
			Origin:    tagPostKind(tag).String(),
			Entry:     entry,
			Parent:    parent,
			Site:      site,
			Looper:    looper,
			Component: component,
		}
		if tag == tagListener {
			th.Origin = "listener"
			th.Post = framework.PostNone
		}
		m.Threads = append(m.Threads, th)
		made[key] = th.ID
		return th.ID
	}

	for changed := true; changed; {
		changed = false
		if len(m.Threads) > maxThreads {
			return fmt.Errorf("threadify: thread forest exceeded %d threads", maxThreads)
		}
		// Snapshot: iterating while appending is fine (children processed
		// in later passes), but we re-check each thread every pass and
		// dedupe through `made`.
		for tid := 0; tid < len(m.Threads); tid++ {
			reach := m.Reach(tid)
			for _, e := range edges {
				caller := MCtx{e.CallerMethod, e.CallerRecv}
				if !reach[caller] {
					continue
				}
				site := ir.InstrID{Method: e.CallerMethod, Index: e.Site}
				entry := MCtx{e.TargetMethod, e.TargetRecv}
				before := len(m.Threads)
				comp := m.Threads[tid].Component
				switch e.Tag {
				case tagListener:
					// UI/system listeners are entry callbacks: children of
					// the dummy main regardless of who registered them
					// (§4.1), but they still belong to the registering
					// thread's component for lifecycle/CHB reasoning.
					mkThread(0, KindEntryCallback, e.Tag, entry, site, true, comp)
				case tagNative:
					mkThread(tid, KindNativeThread, e.Tag, entry, site, false, comp)
				case tagTaskBody:
					mkThread(tid, KindTaskBody, e.Tag, entry, site, false, comp)
				case tagTaskCallback:
					// onPreExecute/onPostExecute: children of the AsyncTask
					// body thread for the same task object (§4.2).
					bodyEntry, ok := m.taskBodyEntry(e.TargetRecv)
					if !ok {
						break
					}
					bodyID, ok := made[childKey{tid, bodyEntry, site}]
					if !ok {
						break
					}
					mkThread(bodyID, KindPostedCallback, e.Tag, entry, site, true, comp)
				case tagTaskProgress:
					mkThread(tid, KindPostedCallback, e.Tag, entry, site, true, comp)
				default:
					mkThread(tid, KindPostedCallback, e.Tag, entry, site, true, comp)
				}
				if len(m.Threads) != before {
					changed = true
				}
			}
		}
	}
	return nil
}

// taskBodyEntry finds the doInBackground entry context for a task object.
func (m *Model) taskBodyEntry(task pointsto.ObjID) (MCtx, bool) {
	cls := m.PTS.Obj(task).Class
	tm := m.H.Resolve(cls, framework.AsyncTaskBody)
	if tm == nil {
		return MCtx{}, false
	}
	return MCtx{tm.Ref(), task}, true
}

// ComponentObj returns the synthetic receiver for a component class.
func (m *Model) ComponentObj(class string) (pointsto.ObjID, bool) {
	o, ok := m.compObj[class]
	return o, ok
}

// ThreadsExecuting returns the IDs of threads that may execute mc.
func (m *Model) ThreadsExecuting(mc MCtx) []int {
	var out []int
	for _, t := range m.Threads {
		if m.Reach(t.ID)[mc] {
			out = append(out, t.ID)
		}
	}
	return out
}

// IsAncestor reports whether thread a is an ancestor of b (or a == b).
func (m *Model) IsAncestor(a, b int) bool {
	for cur := b; cur >= 0; cur = m.Threads[cur].Parent {
		if cur == a {
			return true
		}
	}
	return false
}

// Lineage renders the ancestor chain of a thread, root first — the
// "callback and thread sequence" aid of §7.
func (m *Model) Lineage(t int) string {
	var parts []string
	for cur := t; cur >= 0; cur = m.Threads[cur].Parent {
		parts = append(parts, m.Threads[cur].Name())
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " -> ")
}

// Stats summarizes the model for Table 1's EC/PC/T columns.
type Stats struct {
	EC int // entry callbacks
	PC int // posted callbacks
	T  int // threads: dummy main + task bodies + native threads
}

// Stats counts thread kinds the way Table 1 reports them.
func (m *Model) Stats() Stats {
	var s Stats
	for _, t := range m.Threads {
		switch t.Kind {
		case KindDummyMain, KindTaskBody, KindNativeThread:
			s.T++
		case KindEntryCallback:
			s.EC++
		case KindPostedCallback:
			s.PC++
		}
	}
	return s
}
