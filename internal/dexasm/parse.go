package dexasm

import (
	"fmt"
	"strconv"
	"strings"

	"nadroid/internal/apk"
	"nadroid/internal/framework"
	"nadroid/internal/ir"
	"nadroid/internal/manifest"
)

// Parse reads dexasm text into a package. The framework skeletons are
// always pre-declared, so app classes may extend them without declaring
// them in the file.
func Parse(src string) (*apk.Package, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	return p.parse()
}

type parser struct {
	lines []string
	pos   int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("dexasm: line %d: %s", p.pos, fmt.Sprintf(format, args...))
}

// next returns the next non-empty, non-comment line (trimmed).
func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		p.pos++
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		return line, true
	}
	return "", false
}

func (p *parser) parse() (*apk.Package, error) {
	prog := ir.NewProgram()
	framework.Declare(prog)
	var man *manifest.Manifest
	appName := ""

	for {
		line, ok := p.next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(line, "app "):
			appName = strings.TrimSpace(strings.TrimPrefix(line, "app "))
		case line == "manifest {":
			if appName == "" {
				return nil, p.errf("manifest before app declaration")
			}
			man = manifest.New(appName)
			if err := p.parseManifest(man); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "class "):
			if err := p.parseClass(prog, line); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected %q", line)
		}
	}
	if appName == "" {
		return nil, fmt.Errorf("dexasm: missing app declaration")
	}
	if man == nil {
		man = manifest.New(appName)
	}
	pkg := &apk.Package{Name: appName, Program: prog, Manifest: man}
	if err := pkg.Validate(); err != nil {
		return nil, err
	}
	return pkg, nil
}

func (p *parser) parseManifest(man *manifest.Manifest) error {
	for {
		line, ok := p.next()
		if !ok {
			return p.errf("unterminated manifest")
		}
		if line == "}" {
			return nil
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return p.errf("malformed manifest entry %q", line)
		}
		kind, ok := componentKindFromName(fields[0])
		if !ok {
			return p.errf("unknown component kind %q", fields[0])
		}
		comp := &manifest.Component{Kind: kind, Class: fields[1], Reachable: true}
		for _, flag := range fields[2:] {
			switch flag {
			case "main":
				comp.Main = true
			case "unreachable":
				comp.Reachable = false
			default:
				return p.errf("unknown component flag %q", flag)
			}
		}
		man.Add(comp)
	}
}

func (p *parser) parseClass(prog *ir.Program, header string) error {
	// class NAME extends SUPER [implements I1 I2 ...] [inner OUTER] {
	h := strings.TrimSuffix(strings.TrimSpace(header), "{")
	fields := strings.Fields(h)
	if len(fields) < 4 || fields[0] != "class" || fields[2] != "extends" {
		return p.errf("malformed class header %q", header)
	}
	c := ir.NewClass(fields[1], fields[3])
	rest := fields[4:]
	for len(rest) > 0 {
		switch rest[0] {
		case "implements":
			rest = rest[1:]
			for len(rest) > 0 && rest[0] != "inner" {
				c.Interfaces = append(c.Interfaces, rest[0])
				rest = rest[1:]
			}
		case "inner":
			if len(rest) < 2 {
				return p.errf("inner without outer class")
			}
			c.Outer = rest[1]
			rest = rest[2:]
		default:
			return p.errf("unexpected token %q in class header", rest[0])
		}
	}
	prog.AddClass(c)

	for {
		line, ok := p.next()
		if !ok {
			return p.errf("unterminated class %s", c.Name)
		}
		if line == "}" {
			return nil
		}
		switch {
		case strings.HasPrefix(line, "field "):
			f := strings.Fields(line)
			if len(f) != 3 {
				return p.errf("malformed field %q", line)
			}
			c.AddField(&ir.Field{Name: f[1], Type: f[2]})
		case strings.HasPrefix(line, "static-field "):
			f := strings.Fields(line)
			if len(f) != 3 {
				return p.errf("malformed static field %q", line)
			}
			c.AddField(&ir.Field{Name: f[1], Type: f[2], Static: true})
		case strings.Contains(line, "method "):
			if err := p.parseMethod(c, line); err != nil {
				return err
			}
		default:
			return p.errf("unexpected class member %q", line)
		}
	}
}

func (p *parser) parseMethod(c *ir.Class, header string) error {
	static := strings.Contains(header, "static ")
	synch := strings.Contains(header, "synchronized ")
	abstract := strings.Contains(header, "abstract ")
	h := header
	idx := strings.Index(h, "method ")
	h = h[idx+len("method "):]
	h = strings.TrimSuffix(strings.TrimSpace(h), "{")
	h = strings.TrimSpace(h)
	open := strings.IndexByte(h, '(')
	close := strings.IndexByte(h, ')')
	if open <= 0 || close < open {
		return p.errf("malformed method header %q", header)
	}
	name := h[:open]
	nargs, err := strconv.Atoi(h[open+1 : close])
	if err != nil {
		return p.errf("bad arg count in %q", header)
	}
	m := ir.NewMethod(c.Name, name, nargs)
	m.Static = static
	m.Synch = synch
	m.Abstract = abstract
	c.AddMethod(m)
	if abstract {
		return nil
	}

	maxReg := m.NumRegs - 1
	track := func(regs ...int) {
		for _, r := range regs {
			if r > maxReg {
				maxReg = r
			}
		}
	}
	for {
		line, ok := p.next()
		if !ok {
			return p.errf("unterminated method %s", m.Ref())
		}
		if line == "}" {
			m.NumRegs = maxReg + 1
			return nil
		}
		if strings.HasSuffix(line, ":") {
			m.Labels[strings.TrimSuffix(line, ":")] = len(m.Instrs)
			continue
		}
		in, err := p.parseInstr(line)
		if err != nil {
			return err
		}
		if r, ok := in.DefReg(); ok {
			track(r)
		}
		track(in.Uses()...)
		m.Instrs = append(m.Instrs, in)
	}
}

// parseInstr decodes one instruction line.
func (p *parser) parseInstr(line string) (ir.Instr, error) {
	bad := func() (ir.Instr, error) { return ir.Instr{}, p.errf("cannot parse instruction %q", line) }
	switch {
	case line == "nop":
		return ir.Instr{Op: ir.OpNop}, nil
	case line == "return":
		return ir.Instr{Op: ir.OpReturn, A: ir.NoReg}, nil
	case strings.HasPrefix(line, "return r"):
		r, err := parseReg(strings.TrimPrefix(line, "return "))
		if err != nil {
			return bad()
		}
		return ir.Instr{Op: ir.OpReturn, A: r}, nil
	case strings.HasPrefix(line, "goto "):
		return ir.Instr{Op: ir.OpGoto, Target: strings.TrimSpace(strings.TrimPrefix(line, "goto "))}, nil
	case strings.HasPrefix(line, "if ? goto "):
		return ir.Instr{Op: ir.OpIfCond, Target: strings.TrimSpace(strings.TrimPrefix(line, "if ? goto "))}, nil
	case strings.HasPrefix(line, "if "):
		// if rN == null goto L | if rN != null goto L
		f := strings.Fields(line)
		if len(f) != 6 || f[2] != "null" && f[3] != "null" {
			return bad()
		}
		r, err := parseReg(f[1])
		if err != nil {
			return bad()
		}
		op := ir.OpIfNull
		if f[2] == "!=" {
			op = ir.OpIfNonNull
		} else if f[2] != "==" {
			return bad()
		}
		return ir.Instr{Op: op, B: r, Target: f[5]}, nil
	case strings.HasPrefix(line, "lock r"):
		r, err := parseReg(strings.TrimPrefix(line, "lock "))
		if err != nil {
			return bad()
		}
		return ir.Instr{Op: ir.OpMonitorEnter, B: r}, nil
	case strings.HasPrefix(line, "unlock r"):
		r, err := parseReg(strings.TrimPrefix(line, "unlock "))
		if err != nil {
			return bad()
		}
		return ir.Instr{Op: ir.OpMonitorExit, B: r}, nil
	case strings.HasPrefix(line, "throw r"):
		r, err := parseReg(strings.TrimPrefix(line, "throw "))
		if err != nil {
			return bad()
		}
		return ir.Instr{Op: ir.OpThrow, B: r}, nil
	case strings.HasPrefix(line, "call "):
		return p.parseCall(strings.TrimPrefix(line, "call "), ir.NoReg)
	case strings.HasPrefix(line, "static "):
		// static C.f = rN
		rest := strings.TrimPrefix(line, "static ")
		lhs, rhs, ok := cutAssign(rest)
		if !ok {
			return bad()
		}
		ref, ok := parseFieldRef(lhs)
		if !ok {
			return bad()
		}
		r, err := parseReg(rhs)
		if err != nil {
			return bad()
		}
		return ir.Instr{Op: ir.OpPutStatic, A: r, Field: ref}, nil
	}

	lhs, rhs, ok := cutAssign(line)
	if !ok {
		return bad()
	}
	// Putfield: rB.C.f = rA
	if strings.Contains(lhs, ".") {
		base, ref, ok := parseFieldAccess(lhs)
		if !ok {
			return bad()
		}
		r, err := parseReg(rhs)
		if err != nil {
			return bad()
		}
		return ir.Instr{Op: ir.OpPutField, B: base, A: r, Field: ref}, nil
	}
	// Everything else defines a register.
	dst, err := parseReg(lhs)
	if err != nil {
		return bad()
	}
	switch {
	case rhs == "null":
		return ir.Instr{Op: ir.OpConstNull, A: dst}, nil
	case strings.HasPrefix(rhs, "\""):
		s, err := strconv.Unquote(rhs)
		if err != nil {
			return bad()
		}
		return ir.Instr{Op: ir.OpConstStr, A: dst, StrVal: s}, nil
	case strings.HasPrefix(rhs, "new "):
		return ir.Instr{Op: ir.OpNew, A: dst, Type: strings.TrimSpace(strings.TrimPrefix(rhs, "new "))}, nil
	case strings.HasPrefix(rhs, "static "):
		ref, ok := parseFieldRef(strings.TrimSpace(strings.TrimPrefix(rhs, "static ")))
		if !ok {
			return bad()
		}
		return ir.Instr{Op: ir.OpGetStatic, A: dst, Field: ref}, nil
	case strings.HasSuffix(rhs, ")"):
		in, err := p.parseCall(rhs, dst)
		if err != nil {
			return bad()
		}
		return in, nil
	case strings.Contains(rhs, "."):
		base, ref, ok := parseFieldAccess(rhs)
		if !ok {
			return bad()
		}
		return ir.Instr{Op: ir.OpGetField, A: dst, B: base, Field: ref}, nil
	case strings.HasPrefix(rhs, "r"):
		src, err := parseReg(rhs)
		if err != nil {
			return bad()
		}
		return ir.Instr{Op: ir.OpMove, A: dst, B: src}, nil
	default:
		v, err := strconv.ParseInt(rhs, 10, 64)
		if err != nil {
			return bad()
		}
		return ir.Instr{Op: ir.OpConstInt, A: dst, IntVal: v}, nil
	}
}

// parseCall decodes `rB.C.m(r1, r2)` or `C.m(r1)` bodies.
func (p *parser) parseCall(s string, dst int) (ir.Instr, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return ir.Instr{}, p.errf("malformed call %q", s)
	}
	target := s[:open]
	var args []int
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	if inner != "" {
		for _, part := range strings.Split(inner, ",") {
			r, err := parseReg(strings.TrimSpace(part))
			if err != nil {
				return ir.Instr{}, p.errf("bad call arg %q", part)
			}
			args = append(args, r)
		}
	}
	if strings.HasPrefix(target, "r") {
		// rB.Class.name
		dot := strings.IndexByte(target, '.')
		if dot < 0 {
			return ir.Instr{}, p.errf("malformed virtual call %q", s)
		}
		recv, err := parseReg(target[:dot])
		if err != nil {
			return ir.Instr{}, p.errf("bad receiver in %q", s)
		}
		cls, name, ok := ir.SplitRef(target[dot+1:])
		if !ok {
			return ir.Instr{}, p.errf("bad callee ref in %q", s)
		}
		return ir.Instr{Op: ir.OpInvoke, A: dst, B: recv, Args: args, Callee: ir.MethodRef{Class: cls, Name: name}}, nil
	}
	cls, name, ok := ir.SplitRef(target)
	if !ok {
		return ir.Instr{}, p.errf("bad static callee in %q", s)
	}
	return ir.Instr{Op: ir.OpInvokeStatic, A: dst, Args: args, Callee: ir.MethodRef{Class: cls, Name: name}}, nil
}

// cutAssign splits "lhs = rhs" on the first top-level " = ".
func cutAssign(s string) (string, string, bool) {
	i := strings.Index(s, " = ")
	if i < 0 {
		return "", "", false
	}
	return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+3:]), true
}

func parseReg(s string) (int, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("not a register: %q", s)
	}
	return strconv.Atoi(s[1:])
}

// parseFieldAccess splits "rB.Class.name".
func parseFieldAccess(s string) (int, ir.FieldRef, bool) {
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		return 0, ir.FieldRef{}, false
	}
	base, err := parseReg(s[:dot])
	if err != nil {
		return 0, ir.FieldRef{}, false
	}
	ref, ok := parseFieldRef(s[dot+1:])
	return base, ref, ok
}

func parseFieldRef(s string) (ir.FieldRef, bool) {
	cls, name, ok := ir.SplitRef(s)
	if !ok {
		return ir.FieldRef{}, false
	}
	return ir.FieldRef{Class: cls, Name: name}, true
}
