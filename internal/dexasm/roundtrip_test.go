package dexasm_test

import (
	"testing"

	"nadroid/internal/corpus"
	"nadroid/internal/dexasm"
)

// TestCorpusRoundTrip proves the dexasm text format is a faithful wire
// format for every corpus app: Format is parseable, and re-formatting
// the parse reproduces the text byte for byte. nadroid-serve accepts
// dexasm as its wire input and content-addresses results by the
// canonical re-format, so a lossy round trip would corrupt both the
// analyses and the cache keys.
func TestCorpusRoundTrip(t *testing.T) {
	for _, app := range corpus.Apps() {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			pkg := app.Build()
			text := dexasm.Format(pkg)
			reparsed, err := dexasm.Parse(text)
			if err != nil {
				t.Fatalf("parse of formatted app: %v", err)
			}
			if reparsed.Name != pkg.Name {
				t.Errorf("name %q -> %q", pkg.Name, reparsed.Name)
			}
			text2 := dexasm.Format(reparsed)
			if text2 != text {
				t.Errorf("re-format differs from original format (lossy round trip)\nfirst diff near:\n%s",
					firstDiff(text, text2))
			}
		})
	}
}

// firstDiff returns a short window around the first differing byte.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	win := func(s string) string {
		hi := i + 80
		if hi > len(s) {
			hi = len(s)
		}
		if lo > len(s) {
			return ""
		}
		return s[lo:hi]
	}
	return "want: …" + win(a) + "…\ngot:  …" + win(b) + "…"
}
