// Package dexasm defines a textual assembly format for application
// packages — the stand-in for APK files on disk. It exists so apps can
// be authored or archived outside Go code and fed to cmd/nadroid, and so
// golden tests can diff program dumps.
//
//	app demo
//
//	manifest {
//	  activity demo/Main main
//	  service demo/Svc
//	  activity demo/Hidden unreachable
//	}
//
//	class demo/Main extends android/app/Activity {
//	  field f demo/V
//	  method onCreate(1) {
//	    r2 = new demo/V
//	    r0.demo/Main.f = r2
//	    return
//	  }
//	}
//
// Instruction mnemonics follow the IR printer; labels are lines ending
// with ':'.
package dexasm

import (
	"fmt"
	"sort"
	"strings"

	"nadroid/internal/apk"
	"nadroid/internal/ir"
	"nadroid/internal/manifest"
)

// Format renders a package to dexasm text. Classes are emitted in
// program order; framework classes (abstract skeletons) are skipped —
// the parser re-declares them.
func Format(pkg *apk.Package) string {
	var b strings.Builder
	fmt.Fprintf(&b, "app %s\n\n", pkg.Name)

	b.WriteString("manifest {\n")
	for _, c := range pkg.Manifest.Components() {
		fmt.Fprintf(&b, "  %s %s", c.Kind, c.Class)
		if c.Main {
			b.WriteString(" main")
		}
		if !c.Reachable {
			b.WriteString(" unreachable")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")

	for _, c := range pkg.Program.Classes() {
		if isFrameworkClass(c) {
			continue
		}
		b.WriteString("\n")
		writeClass(&b, c)
	}
	return b.String()
}

// isFrameworkClass detects the framework skeletons Declare installs:
// they contain only abstract methods and live outside the app's
// namespace. The heuristic is "all methods abstract and no fields", which
// holds for every class framework.Declare emits.
func isFrameworkClass(c *ir.Class) bool {
	if len(c.Fields) > 0 {
		return false
	}
	for _, m := range c.Methods {
		if !m.Abstract {
			return false
		}
	}
	// A concrete empty class authored by an app is rare but legal; keep
	// it if its name is not in a framework namespace.
	for _, prefix := range []string{"java/", "android/"} {
		if strings.HasPrefix(c.Name, prefix) {
			return true
		}
	}
	return len(c.Methods) > 0 // abstract-only app interfaces round-trip as framework-like
}

func writeClass(b *strings.Builder, c *ir.Class) {
	fmt.Fprintf(b, "class %s extends %s", c.Name, c.Super)
	if len(c.Interfaces) > 0 {
		fmt.Fprintf(b, " implements %s", strings.Join(c.Interfaces, " "))
	}
	if c.Outer != "" {
		fmt.Fprintf(b, " inner %s", c.Outer)
	}
	b.WriteString(" {\n")
	for _, f := range c.Fields {
		if f.Static {
			fmt.Fprintf(b, "  static-field %s %s\n", f.Name, f.Type)
		} else {
			fmt.Fprintf(b, "  field %s %s\n", f.Name, f.Type)
		}
	}
	for _, m := range c.Methods {
		writeMethod(b, m)
	}
	b.WriteString("}\n")
}

func writeMethod(b *strings.Builder, m *ir.Method) {
	mods := ""
	if m.Static {
		mods = "static "
	}
	if m.Synch {
		mods += "synchronized "
	}
	if m.Abstract {
		fmt.Fprintf(b, "  %sabstract method %s(%d)\n", mods, m.Name, m.NumArgs)
		return
	}
	fmt.Fprintf(b, "  %smethod %s(%d) {\n", mods, m.Name, m.NumArgs)
	labelAt := make(map[int][]string)
	for lbl, idx := range m.Labels {
		labelAt[idx] = append(labelAt[idx], lbl)
	}
	for i, in := range m.Instrs {
		for _, l := range sorted(labelAt[i]) {
			fmt.Fprintf(b, "  %s:\n", l)
		}
		fmt.Fprintf(b, "    %s\n", formatInstr(in))
	}
	for _, l := range sorted(labelAt[len(m.Instrs)]) {
		fmt.Fprintf(b, "  %s:\n", l)
	}
	b.WriteString("  }\n")
}

func sorted(ss []string) []string {
	out := append([]string(nil), ss...)
	sort.Strings(out)
	return out
}

// formatInstr renders one instruction; void invokes use the `call`
// mnemonic so every line parses unambiguously.
func formatInstr(in ir.Instr) string {
	switch in.Op {
	case ir.OpInvoke:
		args := regList(in.Args)
		if in.A == ir.NoReg {
			return fmt.Sprintf("call r%d.%s(%s)", in.B, in.Callee, args)
		}
		return fmt.Sprintf("r%d = r%d.%s(%s)", in.A, in.B, in.Callee, args)
	case ir.OpInvokeStatic:
		args := regList(in.Args)
		if in.A == ir.NoReg {
			return fmt.Sprintf("call %s(%s)", in.Callee, args)
		}
		return fmt.Sprintf("r%d = %s(%s)", in.A, in.Callee, args)
	default:
		return in.String()
	}
}

func regList(regs []int) string {
	parts := make([]string, len(regs))
	for i, r := range regs {
		parts[i] = fmt.Sprintf("r%d", r)
	}
	return strings.Join(parts, ", ")
}

// componentKindFromName parses a manifest component keyword.
func componentKindFromName(s string) (manifest.ComponentKind, bool) {
	switch s {
	case "activity":
		return manifest.ActivityComponent, true
	case "service":
		return manifest.ServiceComponent, true
	case "receiver":
		return manifest.ReceiverComponent, true
	}
	return 0, false
}
