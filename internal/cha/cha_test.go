package cha

import (
	"testing"

	"nadroid/internal/appbuilder"
	"nadroid/internal/framework"
	"nadroid/internal/ir"
)

func fixture(t *testing.T) *Hierarchy {
	t.Helper()
	b := appbuilder.New("cha")
	b.Class("c/Base", framework.Object).Method("m", 0).Return()
	sub := b.Class("c/Sub", "c/Base")
	sub.Method("m", 0).Return()
	b.Class("c/SubSub", "c/Sub") // inherits Sub.m
	b.Runnable("c/R").Method("run", 0).Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return New(pkg.Program)
}

func TestIsSubtypeOf(t *testing.T) {
	h := fixture(t)
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"c/Sub", "c/Base", true},
		{"c/SubSub", "c/Base", true},
		{"c/Base", "c/Sub", false},
		{"c/R", framework.Runnable, true},
		{"c/R", framework.Object, true},
		{"c/Base", framework.Runnable, false},
		{"c/Base", "c/Base", true},
	}
	for _, c := range cases {
		if got := h.IsSubtypeOf(c.sub, c.super); got != c.want {
			t.Errorf("IsSubtypeOf(%s, %s) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestResolveWalksSuperChain(t *testing.T) {
	h := fixture(t)
	m := h.Resolve("c/SubSub", "m")
	if m == nil || m.Class != "c/Sub" {
		t.Fatalf("Resolve(SubSub, m) = %v, want Sub.m", m)
	}
	if h.Resolve("c/Base", "nonexistent") != nil {
		t.Error("unknown methods resolve to nil")
	}
	// Abstract framework methods resolve to nil.
	if h.Resolve("c/R", "nosuch") != nil {
		t.Error("missing method must be nil")
	}
}

func TestDispatchCHA(t *testing.T) {
	h := fixture(t)
	targets := h.Dispatch("c/Base", "m")
	if len(targets) != 2 {
		t.Fatalf("Dispatch(Base, m) = %d targets, want 2 (Base.m, Sub.m)", len(targets))
	}
	refs := map[string]bool{}
	for _, m := range targets {
		refs[m.Ref()] = true
	}
	if !refs["c/Base.m"] || !refs["c/Sub.m"] {
		t.Errorf("targets = %v", refs)
	}
}

func TestImplementorsSorted(t *testing.T) {
	h := fixture(t)
	impls := h.ImplementorsOf("c/Base")
	want := []string{"c/Base", "c/Sub", "c/SubSub"}
	if len(impls) != len(want) {
		t.Fatalf("implementors = %v", impls)
	}
	for i := range want {
		if impls[i] != want[i] {
			t.Errorf("implementors[%d] = %s, want %s", i, impls[i], want[i])
		}
	}
}

func TestMethodByRef(t *testing.T) {
	h := fixture(t)
	if _, err := h.MethodByRef("c/Base.m"); err != nil {
		t.Errorf("MethodByRef: %v", err)
	}
	for _, bad := range []string{"nodots", "c/Missing.m", "c/Base.missing"} {
		if _, err := h.MethodByRef(bad); err == nil {
			t.Errorf("MethodByRef(%q) should fail", bad)
		}
	}
}

func TestCallGraphWithOriginRefinement(t *testing.T) {
	b := appbuilder.New("cg")
	b.Class("g/Base", framework.Object).Method("m", 0).Return()
	sub := b.Class("g/Sub", "g/Base")
	subM := sub.Method("m", 0)
	subM.InvokeThis("helper")
	subM.Return()
	sub.Method("helper", 0).Return()
	main := b.Class("g/Main", framework.Object)
	mm := main.Method("main", 0)
	mm.Method().Static = true
	o := mm.New("g/Sub")
	mm.InvokeVoid(o, "g/Base", "m") // static type Base, runtime Sub
	mm.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := New(pkg.Program)
	g := BuildCallGraph(h, []*ir.Method{mm.Method()}, nil)
	if !g.IsReachable("g/Sub.m") {
		t.Error("origin refinement must dispatch to Sub.m")
	}
	if g.IsReachable("g/Base.m") {
		t.Error("exact allocation type must exclude Base.m")
	}
	if !g.IsReachable("g/Sub.helper") {
		t.Error("transitive callee must be reachable")
	}
	callees := g.TransitiveCallees("g/Main.main")
	if !callees["g/Sub.helper"] {
		t.Errorf("TransitiveCallees = %v", callees)
	}
}

func TestCallGraphSkipFunc(t *testing.T) {
	b := appbuilder.New("cgskip")
	c := b.Class("s/C", framework.Object)
	c.Method("callee", 0).Return()
	mm := c.Method("main", 0)
	mm.InvokeThis("callee")
	mm.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := New(pkg.Program)
	skip := func(m *ir.Method, idx int, in ir.Instr) bool { return true }
	g := BuildCallGraph(h, []*ir.Method{mm.Method()}, skip)
	if g.IsReachable("s/C.callee") {
		t.Error("skip must cut all edges")
	}
}

func TestFieldResolutionAcrossHierarchy(t *testing.T) {
	b := appbuilder.New("fields")
	b.Class("f/Base", framework.Object).Field("x", "f/V")
	b.Class("f/Sub", "f/Base")
	b.Class("f/V", framework.Object)
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := New(pkg.Program)
	f := h.DeclaringClassOfField(ir.FieldRef{Class: "f/Sub", Name: "x"})
	if f == nil || f.Class != "f/Base" {
		t.Errorf("field x should resolve to f/Base, got %v", f)
	}
	if h.DeclaringClassOfField(ir.FieldRef{Class: "f/Sub", Name: "missing"}) != nil {
		t.Error("missing fields resolve to nil")
	}
}
