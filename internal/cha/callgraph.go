package cha

import (
	"sort"

	"nadroid/internal/ir"
)

// CallSite identifies one invoke instruction.
type CallSite struct {
	Caller string // canonical method ref
	Index  int
}

// Edge is one resolved call edge.
type Edge struct {
	Site   CallSite
	Callee string // canonical method ref
}

// CallGraph maps methods to their outgoing edges. It is built once per
// analysis over the set of reachable methods, seeded from thread entry
// points.
type CallGraph struct {
	h *Hierarchy
	// out[m] lists edges leaving method m, sorted by site then callee.
	out map[string][]Edge
	// in[m] lists methods calling m.
	in map[string][]string
	// reachable records every method reached during construction.
	reachable map[string]*ir.Method
}

// SkipFunc lets the caller exclude call edges: threadification passes a
// predicate that cuts posting-API edges (those become thread spawns, not
// calls) and framework intrinsics.
type SkipFunc func(caller *ir.Method, idx int, in ir.Instr) bool

// BuildCallGraph explores methods reachable from entries, resolving
// virtual calls with CHA refined by intra-procedural allocation-type
// tracking: when the receiver register definitely holds an object
// allocated at a known site, dispatch uses that exact class.
func BuildCallGraph(h *Hierarchy, entries []*ir.Method, skip SkipFunc) *CallGraph {
	g := &CallGraph{
		h:         h,
		out:       make(map[string][]Edge),
		in:        make(map[string][]string),
		reachable: make(map[string]*ir.Method),
	}
	var work []*ir.Method
	push := func(m *ir.Method) {
		if m == nil || m.Abstract {
			return
		}
		if _, ok := g.reachable[m.Ref()]; ok {
			return
		}
		g.reachable[m.Ref()] = m
		work = append(work, m)
	}
	for _, e := range entries {
		push(e)
	}
	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		oi := ir.ComputeOrigins(m)
		for i, in := range m.Instrs {
			if in.Op != ir.OpInvoke && in.Op != ir.OpInvokeStatic {
				continue
			}
			if skip != nil && skip(m, i, in) {
				continue
			}
			for _, tgt := range g.ResolveCall(m, oi, i) {
				g.addEdge(CallSite{m.Ref(), i}, tgt)
				push(tgt)
			}
		}
	}
	for m := range g.out {
		sort.Slice(g.out[m], func(a, b int) bool {
			ea, eb := g.out[m][a], g.out[m][b]
			if ea.Site.Index != eb.Site.Index {
				return ea.Site.Index < eb.Site.Index
			}
			return ea.Callee < eb.Callee
		})
	}
	return g
}

// ResolveCall returns the possible concrete targets of the invoke at
// instruction i of m, using origin info to sharpen the receiver type.
func (g *CallGraph) ResolveCall(m *ir.Method, oi *ir.OriginInfo, i int) []*ir.Method {
	in := m.Instrs[i]
	switch in.Op {
	case ir.OpInvokeStatic:
		if t := g.h.Resolve(in.Callee.Class, in.Callee.Name); t != nil {
			return []*ir.Method{t}
		}
		return nil
	case ir.OpInvoke:
		recvType := g.ReceiverType(m, oi, i)
		if recvType.exact {
			if t := g.h.Resolve(recvType.class, in.Callee.Name); t != nil {
				return []*ir.Method{t}
			}
			return nil
		}
		return g.h.Dispatch(recvType.class, in.Callee.Name)
	}
	return nil
}

// recvType is the inferred receiver type of a virtual call.
type recvType struct {
	class string
	exact bool // true when the allocation site pins the concrete class
}

// ReceiverType infers the receiver's type for the invoke at index i:
// exact when the register's origin is a New at a known site, the
// receiver class otherwise ("this" calls), else the static callee class.
func (g *CallGraph) ReceiverType(m *ir.Method, oi *ir.OriginInfo, i int) recvType {
	in := m.Instrs[i]
	o := oi.At(i, in.B)
	switch o.Kind {
	case ir.OriginNew:
		return recvType{class: m.Instrs[o.Site].Type, exact: true}
	case ir.OriginParam:
		if in.B == 0 && !m.Static {
			// `this` call: the runtime class is m.Class or a subclass
			// that inherits m; CHA over m.Class is the safe answer.
			return recvType{class: m.Class}
		}
	case ir.OriginLoad:
		// Loaded from a field: use the field's declared type when known.
		fi := m.Instrs[o.Site]
		if f := g.h.DeclaringClassOfField(fi.Field); f != nil && f.Type != "" {
			return recvType{class: f.Type}
		}
	}
	return recvType{class: in.Callee.Class}
}

// Reachable returns all methods reached during construction, sorted.
func (g *CallGraph) Reachable() []*ir.Method {
	refs := make([]string, 0, len(g.reachable))
	for r := range g.reachable {
		refs = append(refs, r)
	}
	sort.Strings(refs)
	out := make([]*ir.Method, len(refs))
	for i, r := range refs {
		out[i] = g.reachable[r]
	}
	return out
}

// IsReachable reports whether method ref was reached.
func (g *CallGraph) IsReachable(ref string) bool {
	_, ok := g.reachable[ref]
	return ok
}

// Callees returns edges leaving method ref.
func (g *CallGraph) Callees(ref string) []Edge { return g.out[ref] }

// Callers returns the methods with an edge into ref.
func (g *CallGraph) Callers(ref string) []string { return g.in[ref] }

func (g *CallGraph) addEdge(site CallSite, callee *ir.Method) {
	for _, e := range g.out[site.Caller] {
		if e.Site == site && e.Callee == callee.Ref() {
			return
		}
	}
	g.out[site.Caller] = append(g.out[site.Caller], Edge{Site: site, Callee: callee.Ref()})
	g.in[callee.Ref()] = append(g.in[callee.Ref()], site.Caller)
}

// TransitiveCallees returns every method reachable from entry by call
// edges (including entry itself), as a set.
func (g *CallGraph) TransitiveCallees(entry string) map[string]bool {
	seen := map[string]bool{entry: true}
	work := []string{entry}
	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range g.out[m] {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				work = append(work, e.Callee)
			}
		}
	}
	return seen
}
