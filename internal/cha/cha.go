// Package cha implements class-hierarchy analysis: subtype queries,
// virtual-dispatch resolution and a CHA-based call graph that later
// stages refine with points-to facts.
package cha

import (
	"fmt"
	"sort"

	"nadroid/internal/ir"
)

// Hierarchy caches subtype relations and method resolution over a sealed
// program. It satisfies framework.Hierarchy.
type Hierarchy struct {
	prog *ir.Program
	// supers[c] is the transitive set of superclasses and implemented
	// interfaces of c, including c itself.
	supers map[string]map[string]bool
	// subsOf[s] lists concrete classes that are subtypes of s, sorted.
	subsOf map[string][]string
}

// New builds the hierarchy. Unknown supertype names are tolerated (they
// behave as opaque externals); analyses only need what is declared.
func New(prog *ir.Program) *Hierarchy {
	h := &Hierarchy{
		prog:   prog,
		supers: make(map[string]map[string]bool),
		subsOf: make(map[string][]string),
	}
	for _, c := range prog.Classes() {
		h.supers[c.Name] = h.computeSupers(c.Name, make(map[string]bool))
	}
	for _, c := range prog.Classes() {
		if c.IsIface {
			continue
		}
		for s := range h.supers[c.Name] {
			h.subsOf[s] = append(h.subsOf[s], c.Name)
		}
	}
	for s := range h.subsOf {
		sort.Strings(h.subsOf[s])
	}
	return h
}

func (h *Hierarchy) computeSupers(name string, guard map[string]bool) map[string]bool {
	if s, ok := h.supers[name]; ok {
		return s
	}
	if guard[name] {
		panic("cha: cyclic class hierarchy at " + name)
	}
	guard[name] = true
	set := map[string]bool{name: true}
	c := h.prog.Class(name)
	if c == nil {
		h.supers[name] = set
		return set
	}
	if c.Super != "" {
		for s := range h.computeSupers(c.Super, guard) {
			set[s] = true
		}
	}
	for _, i := range c.Interfaces {
		for s := range h.computeSupers(i, guard) {
			set[s] = true
		}
	}
	h.supers[name] = set
	return set
}

// IsSubtypeOf reports whether sub is super or transitively extends or
// implements it.
func (h *Hierarchy) IsSubtypeOf(sub, super string) bool {
	s, ok := h.supers[sub]
	if !ok {
		return sub == super
	}
	return s[super]
}

// Program returns the underlying program.
func (h *Hierarchy) Program() *ir.Program { return h.prog }

// Resolve finds the implementation of method name on class cls by
// walking the superclass chain (Java virtual dispatch). It returns nil
// if no implementation exists (abstract or unknown).
func (h *Hierarchy) Resolve(cls, name string) *ir.Method {
	for cur := cls; cur != ""; {
		c := h.prog.Class(cur)
		if c == nil {
			return nil
		}
		if m := c.Method(name); m != nil {
			if m.Abstract {
				return nil
			}
			return m
		}
		cur = c.Super
	}
	return nil
}

// ResolveDeclared is like Resolve but also returns abstract declarations;
// used to check whether a method exists at all on a type.
func (h *Hierarchy) ResolveDeclared(cls, name string) *ir.Method {
	for cur := cls; cur != ""; {
		c := h.prog.Class(cur)
		if c == nil {
			return nil
		}
		if m := c.Method(name); m != nil {
			return m
		}
		cur = c.Super
	}
	return nil
}

// ImplementorsOf returns the concrete classes that are subtypes of cls
// (including cls itself when concrete), sorted.
func (h *Hierarchy) ImplementorsOf(cls string) []string {
	return h.subsOf[cls]
}

// Dispatch resolves a virtual call on a receiver whose concrete runtime
// class might be any concrete subtype of staticType: it returns the set
// of possible target methods (CHA dispatch).
func (h *Hierarchy) Dispatch(staticType, name string) []*ir.Method {
	var out []*ir.Method
	seen := make(map[string]bool)
	for _, impl := range h.ImplementorsOf(staticType) {
		if m := h.Resolve(impl, name); m != nil && !seen[m.Ref()] {
			seen[m.Ref()] = true
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ref() < out[j].Ref() })
	return out
}

// MethodByRef finds a method from its "Class.Name" spelling.
func (h *Hierarchy) MethodByRef(ref string) (*ir.Method, error) {
	cls, name, ok := ir.SplitRef(ref)
	if !ok {
		return nil, fmt.Errorf("cha: malformed method ref %q", ref)
	}
	c := h.prog.Class(cls)
	if c == nil {
		return nil, fmt.Errorf("cha: unknown class in ref %q", ref)
	}
	m := c.Method(name)
	if m == nil {
		return nil, fmt.Errorf("cha: unknown method in ref %q", ref)
	}
	return m, nil
}

// DeclaringClassOfField resolves a field reference against the hierarchy:
// a reference to C.f may denote a field declared on a superclass of C.
func (h *Hierarchy) DeclaringClassOfField(ref ir.FieldRef) *ir.Field {
	for cur := ref.Class; cur != ""; {
		c := h.prog.Class(cur)
		if c == nil {
			return nil
		}
		if f := c.Field(ref.Name); f != nil {
			return f
		}
		cur = c.Super
	}
	return nil
}
