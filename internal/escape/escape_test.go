package escape

import (
	"testing"

	"nadroid/internal/appbuilder"
	"nadroid/internal/framework"
	"nadroid/internal/pointsto"
	"nadroid/internal/threadify"
)

// buildModel makes an app with: a shared field on the activity (escapes:
// two listeners reach it), a thread-local object (one callback only),
// and a statically-reachable object.
func buildModel(t *testing.T) *threadify.Model {
	t.Helper()
	b := appbuilder.New("esc")
	act := b.Activity("e/A")
	act.Field("shared", "e/V")
	act.StaticField("global", "e/V")
	b.Class("e/V", framework.Object).Field("inner", "e/V")

	oc := act.Method("onCreate", 1)
	sv := oc.New("e/V") // stored in shared -> escapes
	oc.PutThis("shared", sv)
	gv := oc.New("e/V") // stored in a static -> escapes
	oc.PutStatic("e/A", "global", gv)
	lv := oc.New("e/V") // local only -> thread local
	_ = lv
	// Two listeners touch `shared`.
	for _, cls := range []string{"e/L1", "e/L2"} {
		l := b.Class(cls, framework.Object, framework.OnClickListener)
		l.Field("outer", "e/A")
		mb := l.Method("onClick", 1)
		o := mb.GetThis("outer")
		mb.GetField(o, "e/A", "shared")
		mb.Return()
		view := oc.New(framework.View)
		inst := oc.New(cls)
		oc.PutField(inst, cls, "outer", oc.This())
		oc.InvokeVoid(view, framework.View, "setOnClickListener", inst)
	}
	oc.Return()

	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// objBySite finds the abstract object allocated at the given site index
// of onCreate.
func objBySite(t *testing.T, m *threadify.Model, site string) pointsto.ObjID {
	t.Helper()
	for id, o := range m.PTS.Objects() {
		if o.Site == site {
			return pointsto.ObjID(id)
		}
	}
	t.Fatalf("no object with site %q", site)
	return -1
}

func TestSharedFieldEscapes(t *testing.T) {
	m := buildModel(t)
	res := Analyze(m)
	shared := objBySite(t, m, "e/A.onCreate:0")
	if !res.Escaped(shared) {
		t.Error("object stored in a two-listener field must escape")
	}
	if res.ReacherCount(shared) < 3 {
		t.Errorf("reachers = %d, want >= 3 (onCreate + two listeners)", res.ReacherCount(shared))
	}
}

func TestStaticReachableEscapes(t *testing.T) {
	m := buildModel(t)
	res := Analyze(m)
	global := objBySite(t, m, "e/A.onCreate:2")
	if !res.Escaped(global) {
		t.Error("statically-reachable objects escape")
	}
}

func TestLocalObjectDoesNotEscape(t *testing.T) {
	m := buildModel(t)
	res := Analyze(m)
	local := objBySite(t, m, "e/A.onCreate:4")
	if res.Escaped(local) {
		t.Error("an object confined to one callback must not escape")
	}
	if res.ReacherCount(local) != 1 {
		t.Errorf("local reachers = %d, want 1", res.ReacherCount(local))
	}
}

// Heap reachability is transitive: an object stored in a field of an
// escaped object escapes too.
func TestTransitiveHeapEscape(t *testing.T) {
	b := appbuilder.New("esc2")
	act := b.Activity("e2/A")
	act.Field("box", "e2/V")
	b.Class("e2/V", framework.Object).Field("inner", "e2/V")
	oc := act.Method("onCreate", 1)
	box := oc.New("e2/V")
	oc.PutThis("box", box)
	inner := oc.New("e2/V")
	oc.PutField(box, "e2/V", "inner", inner)
	l := b.Class("e2/L", framework.Object, framework.OnClickListener)
	l.Field("outer", "e2/A")
	mb := l.Method("onClick", 1)
	o := mb.GetThis("outer")
	mb.GetField(o, "e2/A", "box")
	mb.Return()
	view := oc.New(framework.View)
	inst := oc.New("e2/L")
	oc.PutField(inst, "e2/L", "outer", oc.This())
	oc.InvokeVoid(view, framework.View, "setOnClickListener", inst)
	oc.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze(m)
	in := objBySite(t, m, "e2/A.onCreate:2")
	if !res.Escaped(in) {
		t.Error("heap-transitive reachability must mark inner escaped")
	}
}
