// Package escape implements thread-escape analysis over the threadified
// model: an abstract object escapes when two distinct modeled threads can
// reach it (through local variables, field chains, or static fields).
// Chord's race detector uses the same notion to discard thread-local
// accesses (§5).
//
// The analysis is expressed in Datalog, as in the paper's Chord build:
//
//	Reach(t, h)  :- Root(t, h)
//	Reach(t, h2) :- Reach(t, h1), HeapPT(h1, f, h2)
//	Reach(t, h)  :- Touches(t), StaticPT(h)   (statics are global)
//	Escapes(h)   :- Reach(t1, h), Reach(t2, h), t1 != t2
package escape

import (
	"sort"

	"nadroid/internal/datalog"
	"nadroid/internal/pointsto"
	"nadroid/internal/threadify"
)

// Options tunes the analysis.
type Options struct {
	// Workers bounds the Datalog engine's per-round worker pool
	// (0 = GOMAXPROCS). Results are identical for any setting.
	Workers int
}

// Result maps object IDs to their escape status.
type Result struct {
	escaped map[pointsto.ObjID]bool
	// reachers counts how many threads reach each object (diagnostics).
	reachers map[pointsto.ObjID]int
}

// Escaped reports whether obj is reachable from two or more threads.
func (r *Result) Escaped(obj pointsto.ObjID) bool { return r.escaped[obj] }

// ReacherCount returns how many threads reach obj.
func (r *Result) ReacherCount(obj pointsto.ObjID) int { return r.reachers[obj] }

// Snapshot flattens the result for serialization: one row per object
// with a recorded reacher count, escaped derived per row. The order is
// unspecified; FromSnapshot rebuilds an equivalent Result.
func (r *Result) Snapshot() (objs []pointsto.ObjID, reachers []int, escaped []bool) {
	for o, n := range r.reachers {
		objs = append(objs, o)
		reachers = append(reachers, n)
		escaped = append(escaped, r.escaped[o])
	}
	return objs, reachers, escaped
}

// FromSnapshot rebuilds a Result from Snapshot's parallel slices.
func FromSnapshot(objs []pointsto.ObjID, reachers []int, escaped []bool) *Result {
	r := &Result{
		escaped:  make(map[pointsto.ObjID]bool, len(objs)),
		reachers: make(map[pointsto.ObjID]int, len(objs)),
	}
	for i, o := range objs {
		r.reachers[o] = reachers[i]
		if escaped[i] {
			r.escaped[o] = true
		}
	}
	return r
}

// Analyze computes escape facts for every abstract object in the model.
func Analyze(m *threadify.Model) *Result { return AnalyzeWith(m, Options{}) }

// AnalyzeWith is Analyze with explicit options.
func AnalyzeWith(m *threadify.Model, opts Options) *Result {
	e := solvedEngine(m, opts)
	pts := m.PTS
	objSym := func(o pointsto.ObjID) datalog.Sym { return e.IntSym('h', int(o)) }
	res := &Result{
		escaped:  make(map[pointsto.ObjID]bool),
		reachers: make(map[pointsto.ObjID]int),
	}
	for id := range pts.Objects() {
		o := pointsto.ObjID(id)
		sym := objSym(o)
		if e.Has("Escapes", sym) {
			res.escaped[o] = true
		}
		res.reachers[o] = len(e.Query("Reach", datalog.Wild, sym))
	}
	return res
}

// solvedEngine builds the escape engine — root, heap, and static facts
// plus the reach/escape rules — and runs it to fixpoint.
func solvedEngine(m *threadify.Model, opts Options) *datalog.Engine {
	e := datalog.NewEngine()
	e.SetWorkers(opts.Workers)
	objSym := func(o pointsto.ObjID) datalog.Sym { return e.IntSym('h', int(o)) }
	thrSym := func(t int) datalog.Sym { return e.IntSym('t', t) }

	// Roots: for each thread, every object any reachable variable points
	// to (including the entry receiver, bound to `this` during the
	// solve). We enumerate var points-to sets via the per-context
	// reachable methods.
	pts := m.PTS
	for _, th := range m.Threads {
		if th.Kind == threadify.KindDummyMain {
			continue
		}
		for _, o := range RootObjs(m, th.ID) {
			e.Fact("Root", thrSym(th.ID), objSym(o))
		}
		e.Fact("Touches", thrSym(th.ID))
	}

	// Heap edges.
	for _, edge := range HeapEdges(pts) {
		e.Fact("HeapPT", objSym(edge.Src), e.Sym("f:"+edge.Field), objSym(edge.Dst))
	}

	// Static fields are globally reachable.
	for _, o := range StaticSeeds(pts) {
		e.Fact("StaticPT", objSym(o))
	}

	installReachRules(e)
	e.MustRule("Escapes(h) :- Reach(t1, h), Reach(t2, h), t1 != t2")
	e.Run()
	return e
}

// installReachRules installs the reach-closure subset of the escape
// rules — everything except the Escapes self-join, which the
// incremental combiner replaces with per-object reacher counting.
func installReachRules(e *datalog.Engine) {
	e.MustRule("Reach(t, h) :- Root(t, h)")
	e.MustRule("Reach(t, h2) :- Reach(t, h1), HeapPT(h1, f, h2)")
	e.MustRule("Reach(t, h) :- Touches(t), StaticPT(h)")
	e.MustRule("StaticPT(h2) :- StaticPT(h1), HeapPT(h1, f, h2)")
}

// RootObjs enumerates a thread's root objects in deterministic fact
// order: every object any register of any reachable method context
// points to. The same enumeration seeds the engine's Root facts, so
// digests over it gate partition reuse exactly.
func RootObjs(m *threadify.Model, thread int) []pointsto.ObjID {
	pts := m.PTS
	var out []pointsto.ObjID
	for mc := range m.Reach(thread) {
		mth, err := m.H.MethodByRef(mc.Method)
		if err != nil || mth.Abstract {
			continue
		}
		for reg := 0; reg < mth.NumRegs; reg++ {
			out = append(out, pts.PointsTo(mc.Method, mc.Recv, reg)...)
		}
	}
	return out
}

// HeapEdge is one points-to heap edge: Src.Field may point to Dst.
type HeapEdge struct {
	Src   pointsto.ObjID
	Field string
	Dst   pointsto.ObjID
}

// HeapEdges enumerates every heap points-to edge in deterministic
// order (object ID, then declared-field order up the hierarchy).
func HeapEdges(pts *pointsto.Result) []HeapEdge {
	var out []HeapEdge
	for id := range pts.Objects() {
		o := pointsto.ObjID(id)
		for _, f := range fieldsOf(pts, o) {
			for _, o2 := range pts.FieldPointsTo(o, f) {
				out = append(out, HeapEdge{Src: o, Field: f, Dst: o2})
			}
		}
	}
	return out
}

// StaticSeeds enumerates the objects held by static fields — the seed
// set of the StaticPT relation, before heap closure — in deterministic
// declaration order.
func StaticSeeds(pts *pointsto.Result) []pointsto.ObjID {
	var out []pointsto.ObjID
	for _, f := range staticFieldsOf(pts) {
		out = append(out, pts.StaticPointsTo(f)...)
	}
	return out
}

// Detail carries the factored reach state AnalyzeDetailed extracts
// alongside the Result: per-thread reach rows and the closed static
// set. These are the per-thread fact partitions the incremental
// pipeline persists and replays.
type Detail struct {
	// Reach maps thread ID -> sorted object IDs the thread reaches.
	// Dummy-main threads are absent.
	Reach map[int][]pointsto.ObjID
	// Statics is the sorted closed static-reachable object set (the
	// StaticPT relation after heap closure).
	Statics []pointsto.ObjID
}

// AnalyzeDetailed is AnalyzeWith plus partition extraction: it runs the
// identical engine and returns the identical Result, along with the
// per-thread reach rows and closed static set a later incremental run
// preloads.
func AnalyzeDetailed(m *threadify.Model, opts Options) (*Result, *Detail) {
	e := solvedEngine(m, opts)
	pts := m.PTS
	objSym := func(o pointsto.ObjID) datalog.Sym { return e.IntSym('h', int(o)) }
	res := &Result{
		escaped:  make(map[pointsto.ObjID]bool),
		reachers: make(map[pointsto.ObjID]int),
	}
	for id := range pts.Objects() {
		o := pointsto.ObjID(id)
		sym := objSym(o)
		if e.Has("Escapes", sym) {
			res.escaped[o] = true
		}
		res.reachers[o] = len(e.Query("Reach", datalog.Wild, sym))
	}
	det := &Detail{Reach: make(map[int][]pointsto.ObjID)}
	for _, th := range m.Threads {
		if th.Kind == threadify.KindDummyMain {
			continue
		}
		det.Reach[th.ID] = reachRow(e, e.IntSym('t', th.ID))
	}
	for _, row := range e.Query("StaticPT", datalog.Wild) {
		if _, v, ok := e.IntSymVal(row[0]); ok {
			det.Statics = append(det.Statics, pointsto.ObjID(v))
		}
	}
	sort.Slice(det.Statics, func(i, j int) bool { return det.Statics[i] < det.Statics[j] })
	return res, det
}

// reachRow extracts one thread's sorted reach set from the engine.
func reachRow(e *datalog.Engine, thr datalog.Sym) []pointsto.ObjID {
	rows := e.Query("Reach", thr, datalog.Wild)
	out := make([]pointsto.ObjID, 0, len(rows))
	for _, row := range rows {
		if _, v, ok := e.IntSymVal(row[1]); ok {
			out = append(out, pointsto.ObjID(v))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IncrementalInput is the reusable state a previous run's partitions
// provide to AnalyzeIncremental. The caller is responsible for the
// reuse gates: CleanReach rows must be the exact fixpoint rows the
// current model would derive for those threads (root-digest match) and
// Statics must be the closed static set under an identical heap.
type IncrementalInput struct {
	// CleanReach maps surviving thread ID -> its base-run reach rows.
	CleanReach map[int][]pointsto.ObjID
	// StaleReach maps dirty or removed thread ID -> its base-run reach
	// rows. They are preloaded and then retracted, exercising the
	// partition-retraction path; threads absent from the base run
	// simply have no entry.
	StaleReach map[int][]pointsto.ObjID
	// Statics is the base run's closed static-reachable set.
	Statics []pointsto.ObjID
	// Dirty lists the thread IDs whose reach must be recomputed (every
	// current non-dummy thread not covered by CleanReach).
	Dirty []int
	// Workers bounds the Datalog engine's worker pool.
	Workers int
}

// IncrementalStats counts the delta work an incremental solve did.
type IncrementalStats struct {
	// Retracted is the number of fact-partition rows removed.
	Retracted int
	// Asserted is the number of fresh delta facts asserted.
	Asserted int
	// Engine is the underlying Datalog engine's counters.
	Engine datalog.Stats
}

// AnalyzeIncremental recomputes escape facts from a previous run's
// partitions: clean threads' reach rows are preloaded below the engine
// fixpoint, dirty partitions are retracted, fresh root facts for the
// dirty threads are asserted as the delta, and the semi-naive engine
// derives only what changed. The Escapes self-join — the dominant cost
// of the cold solve — is replaced by counting reachers per object,
// which is equivalent by definition (an object escapes iff two distinct
// threads reach it).
//
// The Result and Detail are identical to AnalyzeDetailed's on the same
// model whenever the IncrementalInput contract holds.
func AnalyzeIncremental(m *threadify.Model, in IncrementalInput) (*Result, *Detail, IncrementalStats) {
	var stats IncrementalStats
	e := datalog.NewEngine()
	e.SetWorkers(in.Workers)
	objSym := func(o pointsto.ObjID) datalog.Sym { return e.IntSym('h', int(o)) }
	thrSym := func(t int) datalog.Sym { return e.IntSym('t', t) }
	pts := m.PTS

	// Preload the reusable fixpoint: heap edges (digest-matched, so
	// identical to the base run's), the closed static set, clean
	// threads' reach rows and Touches marks, and the stale partitions
	// about to be retracted.
	for _, edge := range HeapEdges(pts) {
		e.Fact("HeapPT", objSym(edge.Src), e.Sym("f:"+edge.Field), objSym(edge.Dst))
	}
	for _, o := range in.Statics {
		e.Fact("StaticPT", objSym(o))
	}
	dirty := make(map[int]bool, len(in.Dirty))
	for _, t := range in.Dirty {
		dirty[t] = true
	}
	for _, th := range m.Threads {
		if th.Kind == threadify.KindDummyMain || dirty[th.ID] {
			continue
		}
		for _, o := range in.CleanReach[th.ID] {
			e.Fact("Reach", thrSym(th.ID), objSym(o))
		}
		e.Fact("Touches", thrSym(th.ID))
	}
	staleThreads := make([]int, 0, len(in.StaleReach))
	for t := range in.StaleReach {
		staleThreads = append(staleThreads, t)
	}
	sort.Ints(staleThreads)
	for _, t := range staleThreads {
		for _, o := range in.StaleReach[t] {
			e.Fact("Reach", thrSym(t), objSym(o))
		}
	}

	installReachRules(e)
	e.MarkFixpoint()

	// Retract the invalidated partitions, then assert the fresh root
	// facts of the dirty threads — the sole delta the Run sees.
	for _, t := range staleThreads {
		stats.Retracted += e.RetractWhere("Reach", 0, thrSym(t))
	}
	before := e.Stats().Facts
	for _, th := range m.Threads {
		if th.Kind == threadify.KindDummyMain || !dirty[th.ID] {
			continue
		}
		for _, o := range RootObjs(m, th.ID) {
			e.Fact("Root", thrSym(th.ID), objSym(o))
		}
		e.Fact("Touches", thrSym(th.ID))
	}
	stats.Asserted = e.Stats().Facts - before
	e.Run()
	stats.Engine = e.Stats()

	// Combine: clean rows pass through, dirty rows come off the engine,
	// and escape status falls out of per-object reacher counts.
	det := &Detail{Reach: make(map[int][]pointsto.ObjID)}
	for _, th := range m.Threads {
		if th.Kind == threadify.KindDummyMain {
			continue
		}
		if dirty[th.ID] {
			det.Reach[th.ID] = reachRow(e, thrSym(th.ID))
		} else {
			det.Reach[th.ID] = in.CleanReach[th.ID]
		}
	}
	for _, row := range e.Query("StaticPT", datalog.Wild) {
		if _, v, ok := e.IntSymVal(row[0]); ok {
			det.Statics = append(det.Statics, pointsto.ObjID(v))
		}
	}
	sort.Slice(det.Statics, func(i, j int) bool { return det.Statics[i] < det.Statics[j] })
	return resultFromReach(len(pts.Objects()), det.Reach), det, stats
}

// resultFromReach derives the escape Result from per-thread reach
// sets: an object's reacher count is the number of threads whose set
// contains it, and it escapes when that count is at least two —
// exactly what the Escapes Datalog rule derives.
func resultFromReach(numObjs int, reach map[int][]pointsto.ObjID) *Result {
	counts := make([]int, numObjs)
	for _, objs := range reach {
		for _, o := range objs {
			if int(o) < numObjs {
				counts[o]++
			}
		}
	}
	res := &Result{
		escaped:  make(map[pointsto.ObjID]bool),
		reachers: make(map[pointsto.ObjID]int, numObjs),
	}
	for o := 0; o < numObjs; o++ {
		res.reachers[pointsto.ObjID(o)] = counts[o]
		if counts[o] >= 2 {
			res.escaped[pointsto.ObjID(o)] = true
		}
	}
	return res
}

// fieldsOf enumerates field names with recorded pointees on o. The
// points-to result has no direct field-name index, so we consult the
// class's declared fields up the hierarchy.
func fieldsOf(pts *pointsto.Result, o pointsto.ObjID) []string {
	// FieldPointsTo on arbitrary names returns empty sets, so probing
	// declared fields is sufficient and cheap.
	var names []string
	obj := pts.Obj(o)
	h := pts.Hierarchy()
	for cur := obj.Class; cur != ""; {
		c := h.Program().Class(cur)
		if c == nil {
			break
		}
		for _, f := range c.Fields {
			if !f.Static {
				names = append(names, f.Name)
			}
		}
		cur = c.Super
	}
	return names
}

// staticFieldsOf enumerates static field refs declared in the program.
func staticFieldsOf(pts *pointsto.Result) []string {
	var out []string
	for _, c := range pts.Hierarchy().Program().Classes() {
		for _, f := range c.Fields {
			if f.Static {
				out = append(out, f.Ref())
			}
		}
	}
	return out
}
