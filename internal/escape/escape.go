// Package escape implements thread-escape analysis over the threadified
// model: an abstract object escapes when two distinct modeled threads can
// reach it (through local variables, field chains, or static fields).
// Chord's race detector uses the same notion to discard thread-local
// accesses (§5).
//
// The analysis is expressed in Datalog, as in the paper's Chord build:
//
//	Reach(t, h)  :- Root(t, h)
//	Reach(t, h2) :- Reach(t, h1), HeapPT(h1, f, h2)
//	Reach(t, h)  :- Touches(t), StaticPT(h)   (statics are global)
//	Escapes(h)   :- Reach(t1, h), Reach(t2, h), t1 != t2
package escape

import (
	"nadroid/internal/datalog"
	"nadroid/internal/pointsto"
	"nadroid/internal/threadify"
)

// Options tunes the analysis.
type Options struct {
	// Workers bounds the Datalog engine's per-round worker pool
	// (0 = GOMAXPROCS). Results are identical for any setting.
	Workers int
}

// Result maps object IDs to their escape status.
type Result struct {
	escaped map[pointsto.ObjID]bool
	// reachers counts how many threads reach each object (diagnostics).
	reachers map[pointsto.ObjID]int
}

// Escaped reports whether obj is reachable from two or more threads.
func (r *Result) Escaped(obj pointsto.ObjID) bool { return r.escaped[obj] }

// ReacherCount returns how many threads reach obj.
func (r *Result) ReacherCount(obj pointsto.ObjID) int { return r.reachers[obj] }

// Snapshot flattens the result for serialization: one row per object
// with a recorded reacher count, escaped derived per row. The order is
// unspecified; FromSnapshot rebuilds an equivalent Result.
func (r *Result) Snapshot() (objs []pointsto.ObjID, reachers []int, escaped []bool) {
	for o, n := range r.reachers {
		objs = append(objs, o)
		reachers = append(reachers, n)
		escaped = append(escaped, r.escaped[o])
	}
	return objs, reachers, escaped
}

// FromSnapshot rebuilds a Result from Snapshot's parallel slices.
func FromSnapshot(objs []pointsto.ObjID, reachers []int, escaped []bool) *Result {
	r := &Result{
		escaped:  make(map[pointsto.ObjID]bool, len(objs)),
		reachers: make(map[pointsto.ObjID]int, len(objs)),
	}
	for i, o := range objs {
		r.reachers[o] = reachers[i]
		if escaped[i] {
			r.escaped[o] = true
		}
	}
	return r
}

// Analyze computes escape facts for every abstract object in the model.
func Analyze(m *threadify.Model) *Result { return AnalyzeWith(m, Options{}) }

// AnalyzeWith is Analyze with explicit options.
func AnalyzeWith(m *threadify.Model, opts Options) *Result {
	e := datalog.NewEngine()
	e.SetWorkers(opts.Workers)
	objSym := func(o pointsto.ObjID) datalog.Sym { return e.IntSym('h', int(o)) }
	thrSym := func(t int) datalog.Sym { return e.IntSym('t', t) }

	// Roots: for each thread, every object any reachable variable points
	// to (including the entry receiver, bound to `this` during the
	// solve). We enumerate var points-to sets via the per-context
	// reachable methods.
	pts := m.PTS
	for _, th := range m.Threads {
		if th.Kind == threadify.KindDummyMain {
			continue
		}
		for mc := range m.Reach(th.ID) {
			mth, err := m.H.MethodByRef(mc.Method)
			if err != nil || mth.Abstract {
				continue
			}
			for reg := 0; reg < mth.NumRegs; reg++ {
				for _, o := range pts.PointsTo(mc.Method, mc.Recv, reg) {
					e.Fact("Root", thrSym(th.ID), objSym(o))
				}
			}
		}
		e.Fact("Touches", thrSym(th.ID))
	}

	// Heap edges.
	for id := range pts.Objects() {
		o := pointsto.ObjID(id)
		for _, f := range fieldsOf(pts, o) {
			for _, o2 := range pts.FieldPointsTo(o, f) {
				e.Fact("HeapPT", objSym(o), e.Sym("f:"+f), objSym(o2))
			}
		}
	}

	// Static fields are globally reachable.
	for _, f := range staticFieldsOf(pts) {
		for _, o := range pts.StaticPointsTo(f) {
			e.Fact("StaticPT", objSym(o))
		}
	}

	e.MustRule("Reach(t, h) :- Root(t, h)")
	e.MustRule("Reach(t, h2) :- Reach(t, h1), HeapPT(h1, f, h2)")
	e.MustRule("Reach(t, h) :- Touches(t), StaticPT(h)")
	e.MustRule("StaticPT(h2) :- StaticPT(h1), HeapPT(h1, f, h2)")
	e.MustRule("Escapes(h) :- Reach(t1, h), Reach(t2, h), t1 != t2")
	e.Run()

	res := &Result{
		escaped:  make(map[pointsto.ObjID]bool),
		reachers: make(map[pointsto.ObjID]int),
	}
	for id := range pts.Objects() {
		o := pointsto.ObjID(id)
		sym := objSym(o)
		if e.Has("Escapes", sym) {
			res.escaped[o] = true
		}
		res.reachers[o] = len(e.Query("Reach", datalog.Wild, sym))
	}
	return res
}

// fieldsOf enumerates field names with recorded pointees on o. The
// points-to result has no direct field-name index, so we consult the
// class's declared fields up the hierarchy.
func fieldsOf(pts *pointsto.Result, o pointsto.ObjID) []string {
	// FieldPointsTo on arbitrary names returns empty sets, so probing
	// declared fields is sufficient and cheap.
	var names []string
	obj := pts.Obj(o)
	h := pts.Hierarchy()
	for cur := obj.Class; cur != ""; {
		c := h.Program().Class(cur)
		if c == nil {
			break
		}
		for _, f := range c.Fields {
			if !f.Static {
				names = append(names, f.Name)
			}
		}
		cur = c.Super
	}
	return names
}

// staticFieldsOf enumerates static field refs declared in the program.
func staticFieldsOf(pts *pointsto.Result) []string {
	var out []string
	for _, c := range pts.Hierarchy().Program().Classes() {
		for _, f := range c.Fields {
			if f.Static {
				out = append(out, f.Ref())
			}
		}
	}
	return out
}
