// Package deva re-implements the DEvA event-anomaly detector
// (Safi et al., ESEC/FSE'15) as the paper's comparison baseline (§8.7).
// DEvA's documented limitations are reproduced deliberately:
//
//   - Intra-class scope: read/write sets are computed per class plus its
//     inner classes; racy accesses across unrelated classes are invisible
//     (so callbacks and their background Runnables in separate classes
//     are missed).
//   - No thread model: only event callbacks participate; native threads
//     and AsyncTask bodies are ignored.
//   - Unsound IG/IA: the if-guard and intra-allocation filters apply
//     without any atomicity analysis, as if all methods were atomic.
//   - No happens-before reasoning: onServiceConnected/Disconnected,
//     lifecycle and AsyncTask orders are not consulted, producing the
//     false positives Table 3 shows nAdroid filtering.
package deva

import (
	"sort"
	"strings"

	"nadroid/internal/apk"
	"nadroid/internal/framework"
	"nadroid/internal/ir"
)

// Anomaly is one DEvA "event anomaly" restricted to UAF shape: an event
// callback uses a field another event callback sets to null.
type Anomaly struct {
	Field        ir.FieldRef
	UseCallback  string // canonical method ref
	FreeCallback string
	Use          ir.InstrID
	Free         ir.InstrID
}

// Key gives a stable identity.
func (a Anomaly) Key() string {
	return a.Field.String() + "|" + a.Use.String() + "|" + a.Free.String()
}

// Analyze runs DEvA over a package.
func Analyze(pkg *apk.Package) []Anomaly {
	scopes := classScopes(pkg.Program)
	var out []Anomaly
	for _, scope := range scopes {
		out = append(out, analyzeScope(pkg.Program, scope)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// classScopes groups each top-level class with its inner classes.
func classScopes(prog *ir.Program) [][]*ir.Class {
	byOuter := make(map[string][]*ir.Class)
	var roots []*ir.Class
	for _, c := range prog.Classes() {
		if c.Outer != "" {
			byOuter[c.Outer] = append(byOuter[c.Outer], c)
		} else {
			roots = append(roots, c)
		}
	}
	var scopes [][]*ir.Class
	for _, r := range roots {
		scope := []*ir.Class{r}
		scope = append(scope, collectInner(byOuter, r.Name)...)
		scopes = append(scopes, scope)
	}
	return scopes
}

func collectInner(byOuter map[string][]*ir.Class, name string) []*ir.Class {
	var out []*ir.Class
	for _, c := range byOuter[name] {
		out = append(out, c)
		out = append(out, collectInner(byOuter, c.Name)...)
	}
	return out
}

// access is one read or null-write of an in-scope field.
type access struct {
	callback string
	instr    ir.InstrID
	field    ir.FieldRef
	isFree   bool
}

func analyzeScope(prog *ir.Program, scope []*ir.Class) []Anomaly {
	inScope := make(map[string]bool, len(scope))
	for _, c := range scope {
		inScope[c.Name] = true
	}
	var reads, frees []access
	for _, c := range scope {
		for _, m := range c.Methods {
			if m.Abstract || !isEventCallback(m.Name) {
				continue
			}
			oi := ir.ComputeOrigins(m)
			for i, in := range m.Instrs {
				switch in.Op {
				case ir.OpGetField, ir.OpGetStatic:
					if !inScope[in.Field.Class] {
						continue // intra-class restriction
					}
					// Unsound IG: any guard or preceding allocation
					// suppresses the use, atomic or not.
					if guardedAnywhere(m, i) || allocatedBefore(m, i) {
						continue
					}
					reads = append(reads, access{m.Ref(), ir.InstrID{Method: m.Ref(), Index: i}, in.Field, false})
				case ir.OpPutField, ir.OpPutStatic:
					if !inScope[in.Field.Class] {
						continue
					}
					if ir.IsFree(oi, m, i) {
						frees = append(frees, access{m.Ref(), ir.InstrID{Method: m.Ref(), Index: i}, in.Field, true})
					}
				}
			}
		}
	}
	var out []Anomaly
	for _, r := range reads {
		for _, f := range frees {
			if r.field != f.field || r.callback == f.callback {
				continue
			}
			out = append(out, Anomaly{
				Field:        r.field,
				UseCallback:  r.callback,
				FreeCallback: f.callback,
				Use:          r.instr,
				Free:         f.instr,
			})
		}
	}
	return out
}

// isEventCallback recognizes the callbacks DEvA models: lifecycle,
// listener, handler, service-connection, receiver and AsyncTask looper
// callbacks — but NOT run() bodies or doInBackground (no thread model).
func isEventCallback(name string) bool {
	if framework.IsLifecycleCallback(name) || framework.IsServiceLifecycleCallback(name) {
		return true
	}
	for _, lc := range framework.ListenerCallbacks {
		if lc.Method == name {
			return true
		}
	}
	switch name {
	case framework.HandlerCallback, framework.ReceiverCallback,
		"onServiceConnected", "onServiceDisconnected",
		"onPreExecute", "onProgressUpdate", "onPostExecute":
		return true
	}
	return false
}

// guardedAnywhere is DEvA's unsound if-guard: any null check of the same
// field before the use, with no dominance or store-interference checks.
func guardedAnywhere(m *ir.Method, idx int) bool {
	use := m.Instrs[idx]
	oi := ir.ComputeOrigins(m)
	for j := 0; j < idx; j++ {
		in := m.Instrs[j]
		if in.Op != ir.OpIfNull && in.Op != ir.OpIfNonNull {
			continue
		}
		chk := oi.At(j, in.B)
		if chk.Kind != ir.OriginLoad {
			continue
		}
		if m.Instrs[chk.Site].Field == use.Field {
			return true
		}
	}
	return false
}

// allocatedBefore is DEvA's unsound intra-allocation: any earlier store
// of a fresh allocation (or call result) to the field.
func allocatedBefore(m *ir.Method, idx int) bool {
	use := m.Instrs[idx]
	oi := ir.ComputeOrigins(m)
	for j := 0; j < idx; j++ {
		in := m.Instrs[j]
		if in.Op != ir.OpPutField && in.Op != ir.OpPutStatic {
			continue
		}
		if in.Field != use.Field {
			continue
		}
		switch oi.At(j, in.A).Kind {
		case ir.OriginNew, ir.OriginCall:
			return true
		}
	}
	return false
}

// Summary renders anomalies compactly for Table 3.
func Summary(anomalies []Anomaly) string {
	var b strings.Builder
	for _, a := range anomalies {
		b.WriteString(a.Field.String())
		b.WriteString(": use ")
		b.WriteString(a.UseCallback)
		b.WriteString(" vs free ")
		b.WriteString(a.FreeCallback)
		b.WriteString("\n")
	}
	return b.String()
}
