package deva

import (
	"strings"
	"testing"

	"nadroid/internal/appbuilder"
	"nadroid/internal/corpus"
	"nadroid/internal/framework"
)

func TestDetectsIntraClassLifecycleAnomaly(t *testing.T) {
	b := appbuilder.New("deva1")
	act := b.Activity("d/A")
	act.Field("db", "d/V")
	b.Class("d/V", framework.Object)
	oar := act.Method("onActivityResult", 1)
	oar.GetThis("db")
	oar.Return()
	od := act.Method("onDestroy", 0)
	od.FreeThis("db")
	od.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := Analyze(pkg)
	if len(got) != 1 {
		t.Fatalf("anomalies = %d, want 1", len(got))
	}
	a := got[0]
	if !strings.Contains(a.UseCallback, "onActivityResult") || !strings.Contains(a.FreeCallback, "onDestroy") {
		t.Errorf("anomaly = %+v", a)
	}
}

// DEvA's intra-class restriction: a use in a separate top-level listener
// class is invisible even though nAdroid sees it.
func TestMissesInterClassRace(t *testing.T) {
	b := appbuilder.New("deva2")
	act := b.Activity("d/A")
	act.Field("f", "d/V")
	b.Class("d/V", framework.Object)
	op := act.Method("onPause", 0)
	op.FreeThis("f")
	op.Return()
	l := b.Class("d/L", framework.Object, framework.OnClickListener) // top-level
	l.Field("outer", "d/A")
	mb := l.Method("onClick", 1)
	o := mb.GetThis("outer")
	mb.GetField(o, "d/A", "f")
	mb.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := Analyze(pkg); len(got) != 0 {
		t.Errorf("inter-class race should be invisible to DEvA: %v", got)
	}
}

// With the listener marked as an inner class, DEvA sees it.
func TestInnerClassExtendsScope(t *testing.T) {
	b := appbuilder.New("deva3")
	act := b.Activity("d/A")
	act.Field("f", "d/V")
	b.Class("d/V", framework.Object)
	op := act.Method("onPause", 0)
	op.FreeThis("f")
	op.Return()
	l := b.Class("d/L", framework.Object, framework.OnClickListener)
	l.Outer("d/A")
	l.Field("outer", "d/A")
	mb := l.Method("onClick", 1)
	o := mb.GetThis("outer")
	mb.GetField(o, "d/A", "f")
	mb.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := Analyze(pkg)
	found := false
	for _, a := range got {
		if strings.Contains(a.UseCallback, "onClick") && strings.Contains(a.FreeCallback, "onPause") {
			found = true
		}
	}
	if !found {
		t.Errorf("inner-class listener should be in scope: %v", got)
	}
}

// DEvA's unsound IG: ANY earlier null check suppresses the use, with no
// atomicity reasoning — the §2.3 false-negative source.
func TestUnsoundIfGuardSuppresses(t *testing.T) {
	b := appbuilder.New("deva4")
	act := b.Activity("d/A")
	act.Field("f", "d/V")
	b.Class("d/V", framework.Object).Method("use", 0).Return()
	cb := act.Method("onBackPressed", 0)
	chk := cb.GetThis("f")
	cb.IfNull(chk, "skip")
	f := cb.GetThis("f")
	cb.Use(f, "d/V")
	cb.Label("skip")
	cb.Return()
	op := act.Method("onPause", 0)
	op.FreeThis("f")
	op.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The guarded use is suppressed; the guard load itself has no check
	// before it and remains — DEvA reports it.
	got := Analyze(pkg)
	for _, a := range got {
		if a.Use.Index == 2 { // the guarded re-load
			t.Errorf("guarded use must be unsoundly suppressed: %v", a)
		}
	}
}

// DEvA misses thread bodies entirely.
func TestNoThreadModel(t *testing.T) {
	b := appbuilder.New("deva5")
	act := b.Activity("d/A")
	act.Field("f", "d/V")
	b.Class("d/V", framework.Object)
	op := act.Method("onPause", 0)
	op.FreeThis("f")
	op.Return()
	th := b.ThreadClass("d/T")
	th.Outer("d/A") // even inside the class scope
	th.Field("outer", "d/A")
	run := th.Method("run", 0)
	o := run.GetThis("outer")
	run.GetField(o, "d/A", "f")
	run.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := Analyze(pkg); len(got) != 0 {
		t.Errorf("run() is not an event callback for DEvA: %v", got)
	}
}

// On ConnectBot, DEvA finds none of the 13 seeded bugs (they all cross
// class boundaries through ServiceConnection/Runnable classes).
func TestConnectBotFalseNegatives(t *testing.T) {
	app, ok := corpus.ByName("ConnectBot")
	if !ok {
		t.Fatal("missing corpus app")
	}
	got := Analyze(app.Build())
	for _, a := range got {
		if strings.HasPrefix(a.Field.Name, "f_svc") || strings.HasPrefix(a.Field.Name, "f_post") {
			t.Errorf("DEvA should miss the seeded ConnectBot bugs, found %v", a)
		}
	}
}
