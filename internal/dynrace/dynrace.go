// Package dynrace is a CAFA/DroidRacer-style trace-based dynamic race
// detector — the class of tools §2.3 compares nAdroid against. It
// consumes the execution traces interp records (per-task field accesses
// plus the happens-before edges between tasks: posting, spawning,
// registration, lifecycle and service-connection order) and reports
// use/free pairs in HB-unordered tasks.
//
// Its defining property is the paper's point: detection is *sound for
// the observed trace* but covers only what the schedule exercised. On
// ConnectBot's default schedule it finds almost none of the 13 bugs the
// static pipeline reports (CAFA reported zero, Table 1 of [17]);
// unioning traces over many explored schedules closes the gap only
// gradually.
package dynrace

import (
	"fmt"
	"sort"

	"nadroid/internal/interp"
	"nadroid/internal/ir"
)

// Race is one dynamic use/free race: two accesses to the same field of
// the same runtime object from HB-unordered tasks.
type Race struct {
	Field ir.FieldRef
	Use   ir.InstrID
	Free  ir.InstrID
	// UseTask / FreeTask name the tasks involved.
	UseTask, FreeTask string
}

// Key identifies a race by its static locations (for cross-trace
// unioning and comparison against static warnings).
func (r Race) Key() string {
	return fmt.Sprintf("%s|%s|%s", r.Field, r.Use, r.Free)
}

// Options tunes detection.
type Options struct {
	// UseFreeOnly keeps only read vs null-write pairs (the UAF shape);
	// otherwise every read-write/write-write conflict is reported.
	UseFreeOnly bool
}

// Analyze runs offline HB race detection over one recorded trace.
func Analyze(log *interp.TraceLog, opts Options) []Race {
	n := len(log.TaskNames)
	hb := closure(n, log.HB)
	ordered := func(a, b int) bool { return hb[a][b] || hb[b][a] }

	type key struct {
		field ir.FieldRef
		obj   int
	}
	byLoc := make(map[key][]interp.AccessEvent)
	for _, a := range log.Accesses {
		byLoc[key{a.Field, a.Obj}] = append(byLoc[key{a.Field, a.Obj}], a)
	}

	seen := make(map[string]bool)
	var out []Race
	for _, accs := range byLoc {
		for i, a := range accs {
			for _, b := range accs[i+1:] {
				if a.Task == b.Task || a.Task < 0 || b.Task < 0 {
					continue
				}
				if ordered(a.Task, b.Task) {
					continue
				}
				use, free := a, b
				if opts.UseFreeOnly {
					switch {
					case !a.IsWrite && b.IsWrite && b.IsNull:
						use, free = a, b
					case !b.IsWrite && a.IsWrite && a.IsNull:
						use, free = b, a
					default:
						continue
					}
				} else {
					if !a.IsWrite && !b.IsWrite {
						continue
					}
					if b.IsWrite && !a.IsWrite {
						use, free = a, b
					} else if a.IsWrite && !b.IsWrite {
						use, free = b, a
					}
				}
				r := Race{
					Field:    use.Field,
					Use:      use.Instr,
					Free:     free.Instr,
					UseTask:  log.TaskNames[use.Task],
					FreeTask: log.TaskNames[free.Task],
				}
				if !seen[r.Key()] {
					seen[r.Key()] = true
					out = append(out, r)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// closure computes per-task reachability over the HB DAG.
func closure(n int, edges [][2]int) [][]bool {
	adj := make([][]int, n)
	for _, e := range edges {
		if e[0] >= 0 && e[0] < n && e[1] >= 0 && e[1] < n {
			adj[e[0]] = append(adj[e[0]], e[1])
		}
	}
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		stack := append([]int(nil), adj[i]...)
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reach[i][t] {
				continue
			}
			reach[i][t] = true
			stack = append(stack, adj[t]...)
		}
	}
	return reach
}

// Union merges races found across multiple traces (the dynamic tool's
// coverage grows with every explored schedule).
func Union(sets ...[]Race) []Race {
	seen := make(map[string]bool)
	var out []Race
	for _, set := range sets {
		for _, r := range set {
			if !seen[r.Key()] {
				seen[r.Key()] = true
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}
