package dynrace

import (
	"strings"
	"testing"

	"nadroid/internal/corpus"
	"nadroid/internal/filters"
	"nadroid/internal/interp"
	"nadroid/internal/ir"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// runTrace executes one schedule with recording on. uiOnly models a
// CAFA/DroidRacer input generator: lifecycle and UI events can be
// driven, but rare system events (service disconnects, broadcasts,
// binder calls) cannot be forced by UI exploration.
func runTrace(t *testing.T, app string, schedule []int, uiOnly bool) *interp.TraceLog {
	t.Helper()
	a, ok := corpus.ByName(app)
	if !ok {
		t.Fatalf("unknown app %s", app)
	}
	opts := interp.Options{Record: true}
	if uiOnly {
		opts.EventFilter = func(method, component, name string) bool {
			if strings.Contains(name, "onServiceDisconnected") ||
				strings.HasPrefix(name, "receiver:") ||
				strings.HasPrefix(name, "binder:") {
				return false
			}
			return true
		}
	}
	w := interp.NewWorld(a.Build(), opts)
	interp.Run(w, schedule)
	return w.Recorded()
}

func TestHBClosureSuppressesOrderedPairs(t *testing.T) {
	log := &interp.TraceLog{
		TaskNames: []string{"t0", "t1", "t2"},
		HB:        [][2]int{{0, 1}, {1, 2}},
		Accesses: []interp.AccessEvent{
			{Task: 0, Instr: ir.InstrID{Method: "C.m", Index: 0}, Field: ir.FieldRef{Class: "C", Name: "f"}, Obj: 7},
			{Task: 2, Instr: ir.InstrID{Method: "C.n", Index: 0}, Field: ir.FieldRef{Class: "C", Name: "f"}, Obj: 7, IsWrite: true, IsNull: true},
		},
	}
	if races := Analyze(log, Options{UseFreeOnly: true}); len(races) != 0 {
		t.Errorf("transitively ordered tasks must not race: %v", races)
	}
}

func TestUnorderedUseFreePairRaces(t *testing.T) {
	log := &interp.TraceLog{
		TaskNames: []string{"use-task", "free-task"},
		Accesses: []interp.AccessEvent{
			{Task: 0, Instr: ir.InstrID{Method: "C.m", Index: 0}, Field: ir.FieldRef{Class: "C", Name: "f"}, Obj: 7},
			{Task: 1, Instr: ir.InstrID{Method: "C.n", Index: 0}, Field: ir.FieldRef{Class: "C", Name: "f"}, Obj: 7, IsWrite: true, IsNull: true},
		},
	}
	races := Analyze(log, Options{UseFreeOnly: true})
	if len(races) != 1 {
		t.Fatalf("races = %v, want 1", races)
	}
	if races[0].UseTask != "use-task" || races[0].FreeTask != "free-task" {
		t.Errorf("task attribution wrong: %+v", races[0])
	}
}

func TestDifferentObjectsDoNotRace(t *testing.T) {
	log := &interp.TraceLog{
		TaskNames: []string{"a", "b"},
		Accesses: []interp.AccessEvent{
			{Task: 0, Field: ir.FieldRef{Class: "C", Name: "f"}, Obj: 1},
			{Task: 1, Field: ir.FieldRef{Class: "C", Name: "f"}, Obj: 2, IsWrite: true, IsNull: true},
		},
	}
	if races := Analyze(log, Options{UseFreeOnly: true}); len(races) != 0 {
		t.Errorf("distinct runtime objects must not race: %v", races)
	}
}

func TestUseFreeOnlyExcludesNonNullWrites(t *testing.T) {
	log := &interp.TraceLog{
		TaskNames: []string{"a", "b"},
		Accesses: []interp.AccessEvent{
			{Task: 0, Field: ir.FieldRef{Class: "C", Name: "f"}, Obj: 1},
			{Task: 1, Field: ir.FieldRef{Class: "C", Name: "f"}, Obj: 1, IsWrite: true, IsNull: false},
		},
	}
	if races := Analyze(log, Options{UseFreeOnly: true}); len(races) != 0 {
		t.Errorf("non-null writes are not frees: %v", races)
	}
	if races := Analyze(log, Options{}); len(races) != 1 {
		t.Errorf("general mode must keep the read-write pair: %v", races)
	}
}

// The §2.3 coverage experiment: a UI-exploration-driven dynamic detector
// cannot trigger service disconnects, so it observes none of ConnectBot's
// 13 service UAFs (CAFA reported zero on real ConnectBot); the static
// pipeline reports all 13. With full system-event injection the dynamic
// detector does see them — the inputs, not the algorithm, are the limit.
func TestCoverageGapOnConnectBot(t *testing.T) {
	countSeeded := func(races []Race) int {
		n := 0
		for _, r := range races {
			if strings.HasPrefix(r.Field.Name, "f_svc") || strings.HasPrefix(r.Field.Name, "f_post") {
				n++
			}
		}
		return n
	}
	uiDriven := countSeeded(Analyze(runTrace(t, "ConnectBot", nil, true), Options{UseFreeOnly: true}))
	fullInject := countSeeded(Analyze(runTrace(t, "ConnectBot", nil, false), Options{UseFreeOnly: true}))

	app, _ := corpus.ByName("ConnectBot")
	m, err := threadify.Build(app.Build(), threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := uaf.Detect(m)
	st := filters.Run(d)

	if st.AfterUnsound != 13 {
		t.Fatalf("static survivors = %d, want 13", st.AfterUnsound)
	}
	if uiDriven != 0 {
		t.Errorf("UI-driven dynamic coverage = %d, want 0 (disconnects cannot be forced)", uiDriven)
	}
	if fullInject != 13 {
		t.Errorf("full-injection dynamic coverage = %d, want 13", fullInject)
	}
	t.Logf("dynamic coverage: UI-driven %d/13, full system-event injection %d/13, static 13/13", uiDriven, fullInject)
}

// Unioning traces across schedules grows coverage monotonically.
func TestUnionGrowsCoverage(t *testing.T) {
	base := Analyze(runTrace(t, "ConnectBot", nil, true), Options{UseFreeOnly: true})
	grown := Union(base)
	for i := 0; i < 6; i++ {
		log := runTrace(t, "ConnectBot", []int{i, i + 1, i * 3, 2, 1}, true)
		grown = Union(grown, Analyze(log, Options{UseFreeOnly: true}))
	}
	if len(grown) < len(base) {
		t.Errorf("union shrank: %d -> %d", len(base), len(grown))
	}
}
