package manifest

import "testing"

func TestComponentAccessors(t *testing.T) {
	m := New("demo")
	m.Add(&Component{Kind: ActivityComponent, Class: "a/Main", Main: true, Reachable: true})
	m.Add(&Component{Kind: ActivityComponent, Class: "a/Other", Reachable: true})
	m.Add(&Component{Kind: ServiceComponent, Class: "a/Svc", Reachable: true})
	m.Add(&Component{Kind: ReceiverComponent, Class: "a/Rcv", Reachable: false})

	if got := len(m.Components()); got != 4 {
		t.Fatalf("components = %d", got)
	}
	if got := len(m.Activities()); got != 2 {
		t.Errorf("activities = %d", got)
	}
	if got := len(m.Services()); got != 1 {
		t.Errorf("services = %d", got)
	}
	if got := len(m.Receivers()); got != 1 {
		t.Errorf("receivers = %d", got)
	}
	if c := m.Component("a/Svc"); c == nil || c.Kind != ServiceComponent {
		t.Error("Component lookup failed")
	}
	if m.Component("a/Missing") != nil {
		t.Error("missing components are nil")
	}
}

func TestMainActivitySelection(t *testing.T) {
	m := New("demo")
	m.Add(&Component{Kind: ActivityComponent, Class: "a/First", Reachable: true})
	m.Add(&Component{Kind: ActivityComponent, Class: "a/Marked", Main: true, Reachable: true})
	if got := m.MainActivity(); got == nil || got.Class != "a/Marked" {
		t.Errorf("MainActivity = %v, want the marked one", got)
	}

	m2 := New("demo2")
	m2.Add(&Component{Kind: ServiceComponent, Class: "a/Svc"})
	m2.Add(&Component{Kind: ActivityComponent, Class: "a/Only"})
	if got := m2.MainActivity(); got == nil || got.Class != "a/Only" {
		t.Errorf("fallback MainActivity = %v", got)
	}

	m3 := New("demo3")
	if m3.MainActivity() != nil {
		t.Error("no activities -> nil")
	}
}

func TestDuplicateComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate component")
		}
	}()
	m := New("demo")
	m.Add(&Component{Kind: ActivityComponent, Class: "a/X"})
	m.Add(&Component{Kind: ServiceComponent, Class: "a/X"})
}

func TestSortedClasses(t *testing.T) {
	m := New("demo")
	m.Add(&Component{Kind: ActivityComponent, Class: "z/Z"})
	m.Add(&Component{Kind: ActivityComponent, Class: "a/A"})
	got := m.SortedClasses()
	if len(got) != 2 || got[0] != "a/A" || got[1] != "z/Z" {
		t.Errorf("SortedClasses = %v", got)
	}
}

func TestKindString(t *testing.T) {
	if ActivityComponent.String() != "activity" || ServiceComponent.String() != "service" || ReceiverComponent.String() != "receiver" {
		t.Error("kind names wrong")
	}
}
