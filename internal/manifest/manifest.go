// Package manifest models the AndroidManifest information nAdroid needs:
// the declared components, their kinds, and whether they are reachable
// via an explicit or implicit intent. Unreachable components are one of
// the paper's false-positive sources (§8.5 "Not Reachable") — their
// callbacks are still analyzed (the paper's tool finds such warnings and
// classifies them as FPs afterwards), so reachability is recorded here
// rather than enforced.
package manifest

import (
	"fmt"
	"sort"
)

// ComponentKind enumerates Android component kinds.
type ComponentKind int

const (
	ActivityComponent ComponentKind = iota
	ServiceComponent
	ReceiverComponent
)

var kindNames = [...]string{"activity", "service", "receiver"}

func (k ComponentKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Component is one declared component.
type Component struct {
	Kind  ComponentKind
	Class string // implementing class
	// Main marks the launcher activity.
	Main bool
	// Reachable is false for components no intent can reach.
	Reachable bool
}

// Manifest is the parsed manifest of one application.
type Manifest struct {
	Package    string
	components []*Component
	byClass    map[string]*Component
}

// New returns an empty manifest for the given package name.
func New(pkg string) *Manifest {
	return &Manifest{Package: pkg, byClass: make(map[string]*Component)}
}

// Add declares a component. Duplicate classes panic: a class backs at
// most one component.
func (m *Manifest) Add(c *Component) {
	if _, dup := m.byClass[c.Class]; dup {
		panic("manifest: duplicate component " + c.Class)
	}
	m.components = append(m.components, c)
	m.byClass[c.Class] = c
}

// Components returns all components in declaration order.
func (m *Manifest) Components() []*Component { return m.components }

// Component returns the component backed by class, or nil.
func (m *Manifest) Component(class string) *Component { return m.byClass[class] }

// Activities returns activity components in declaration order.
func (m *Manifest) Activities() []*Component { return m.ofKind(ActivityComponent) }

// Services returns service components.
func (m *Manifest) Services() []*Component { return m.ofKind(ServiceComponent) }

// Receivers returns receiver components.
func (m *Manifest) Receivers() []*Component { return m.ofKind(ReceiverComponent) }

func (m *Manifest) ofKind(k ComponentKind) []*Component {
	var out []*Component
	for _, c := range m.components {
		if c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

// MainActivity returns the launcher activity, or the first declared
// activity when none is marked Main, or nil for app with no activities.
func (m *Manifest) MainActivity() *Component {
	var first *Component
	for _, c := range m.components {
		if c.Kind != ActivityComponent {
			continue
		}
		if c.Main {
			return c
		}
		if first == nil {
			first = c
		}
	}
	return first
}

// SortedClasses returns component class names sorted for deterministic
// iteration.
func (m *Manifest) SortedClasses() []string {
	out := make([]string, 0, len(m.components))
	for _, c := range m.components {
		out = append(out, c.Class)
	}
	sort.Strings(out)
	return out
}
