// Package evidence defines the per-warning provenance record the
// analyzer assembles when Options.Provenance is on: the Datalog
// derivation tree behind the candidate racy pair, the points-to
// aliasing chain of the racing accesses, every filter's keep/kill
// verdict, and the validating witness schedule when one exists. The
// record is plain data — JSON for the wire and store, Render for
// humans — keyed by the warning's stable fingerprint.
package evidence

import (
	"fmt"
	"strings"

	"nadroid/internal/datalog"
	"nadroid/internal/filters"
)

// Witness is the dynamic-validation half of the record: the schedule
// that dereferenced the null loaded at the warning's use site.
type Witness struct {
	Schedule            []int  `json:"schedule"`
	NPE                 string `json:"npe,omitempty"`
	OpaqueBranchesTaken bool   `json:"opaque_branches_taken,omitempty"`
	Executions          int    `json:"executions,omitempty"`
}

// Evidence is one warning's full provenance record.
type Evidence struct {
	Fingerprint string `json:"fingerprint"`
	Detector    string `json:"detector"`
	App         string `json:"app,omitempty"`
	Field       string `json:"field,omitempty"`
	Use         string `json:"use,omitempty"`
	Free        string `json:"free,omitempty"`
	// Category is the §7 classification (set for surviving warnings).
	Category string `json:"category,omitempty"`
	// Alive reports whether the warning survived the filter pipeline.
	Alive bool `json:"alive"`
	// Derivation is the bounded Datalog proof tree of the first racy
	// pair underlying the warning; its leaves are base facts extracted
	// straight from the program.
	Derivation *datalog.Derivation `json:"derivation,omitempty"`
	// Aliasing describes the points-to chains that made the two
	// accesses touch the same memory.
	Aliasing []string `json:"aliasing,omitempty"`
	// Filters is the §6 trail: every filter's verdict in pipeline order.
	Filters []filters.Verdict `json:"filters,omitempty"`
	// Witness is the confirming schedule (validate runs only).
	Witness *Witness `json:"witness,omitempty"`
}

// Render formats the record as a human-readable tree.
func (ev *Evidence) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "warning %s", ev.Fingerprint)
	if ev.Category != "" {
		fmt.Fprintf(&b, "  (%s)", ev.Category)
	}
	if !ev.Alive {
		b.WriteString("  [filtered]")
	}
	b.WriteByte('\n')
	if ev.Field != "" {
		fmt.Fprintf(&b, "  field %s\n  use   %s\n  free  %s\n", ev.Field, ev.Use, ev.Free)
	}
	if ev.Derivation != nil {
		b.WriteString("derivation:\n")
		renderDerivation(&b, ev.Derivation, "  ")
	}
	if len(ev.Aliasing) > 0 {
		b.WriteString("aliasing:\n")
		for _, a := range ev.Aliasing {
			fmt.Fprintf(&b, "  %s\n", a)
		}
	}
	if len(ev.Filters) > 0 {
		b.WriteString("filters:\n")
		for _, v := range ev.Filters {
			mark := "keep"
			if !v.Kept {
				mark = "kill"
			}
			kind := "sound"
			if !v.Sound {
				kind = "unsound"
			}
			fmt.Fprintf(&b, "  [%s] %-3s (%s, removed %d of %d pairs): %s\n",
				mark, v.Filter, kind, v.PairsRemoved, v.PairsBefore, v.Reason)
		}
	}
	if ev.Witness != nil {
		fmt.Fprintf(&b, "witness: schedule %v", ev.Witness.Schedule)
		if ev.Witness.NPE != "" {
			fmt.Fprintf(&b, " -> %s", ev.Witness.NPE)
		}
		if ev.Witness.Executions > 0 {
			fmt.Fprintf(&b, " (after %d executions)", ev.Witness.Executions)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func renderDerivation(b *strings.Builder, d *datalog.Derivation, indent string) {
	fmt.Fprintf(b, "%s%s(%s)", indent, d.Rel, strings.Join(d.Tuple, ", "))
	if d.IsBase() {
		b.WriteString("  [fact]")
	} else {
		fmt.Fprintf(b, "  <- %s", d.Rule)
	}
	if d.Truncated {
		b.WriteString("  [truncated]")
	}
	b.WriteByte('\n')
	for _, p := range d.Premises {
		renderDerivation(b, p, indent+"  ")
	}
}
