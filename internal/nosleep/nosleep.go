// Package nosleep implements the §9 extension the paper sketches:
// applying nAdroid's machinery to no-sleep energy bugs (Pathak et al.,
// MobiSys'12), where racy wake-lock API calls lead to ordering
// violations. A WakeLock.acquire() that is not guaranteed to be followed
// by a release() keeps the device awake and drains the battery — the
// energy analogue of a use-after-free.
//
// Detection runs over the same threadified model as the UAF detector:
//
//   - every acquire/release call site is collected per modeled thread,
//     with the wake-lock objects it may operate on (points-to);
//   - an acquire is *covered* when a release on the same abstract lock
//     either post-dominates it in the same callback, or lives in a
//     callback the acquire must-happen-before (the MHB graph of §6.1.1 —
//     e.g. a release in onDestroy covers every entry callback's acquire);
//   - uncovered acquires are no-sleep warnings, ranked like UAF warnings
//     by the §7 origin taxonomy.
package nosleep

import (
	"fmt"
	"sort"

	"nadroid/internal/framework"
	"nadroid/internal/hb"
	"nadroid/internal/ir"
	"nadroid/internal/pointsto"
	"nadroid/internal/threadify"
)

// Site is one wake-lock API call executed by one modeled thread.
type Site struct {
	Thread int
	MCtx   threadify.MCtx
	Instr  ir.InstrID
	Op     framework.WakeLockOp
	// Locks are the abstract wake-lock objects the receiver may denote.
	Locks []pointsto.ObjID
}

// Warning is one uncovered acquire.
type Warning struct {
	Acquire Site
	// Lineage is the §7 callback/thread chain of the acquiring thread.
	Lineage string
	// PartialReleases lists releases on the same lock that exist but do
	// not cover the acquire (wrong order or wrong path) — the programmer
	// hint corresponding to §7's free-side lineage.
	PartialReleases []Site
}

func (w Warning) String() string {
	return fmt.Sprintf("no-sleep: acquire at %s never guaranteed released (via %s)", w.Acquire.Instr, w.Lineage)
}

// Result bundles one analysis run.
type Result struct {
	Acquires []Site
	Releases []Site
	Warnings []Warning
}

// Detect finds uncovered wake-lock acquires in the model.
func Detect(m *threadify.Model) *Result {
	return DetectWith(m, hb.BuildMHB(m))
}

// DetectWith is Detect against a prebuilt MHB graph, letting callers
// that already computed the graph (the shared detector context) avoid
// rebuilding it.
func DetectWith(m *threadify.Model, g *hb.Graph) *Result {
	res := &Result{}
	collect(m, res)

	for _, a := range res.Acquires {
		if coveredIntra(m, a) {
			continue
		}
		covered := false
		var partial []Site
		for _, r := range res.Releases {
			if !sharesLock(a, r) {
				continue
			}
			// A release in a thread the acquire must-happen-before is
			// guaranteed to run after the acquire. A release merely in
			// the same thread does NOT cover: only post-domination does,
			// and coveredIntra already checked that.
			if g.HB(a.Thread, r.Thread) {
				covered = true
				break
			}
			partial = append(partial, r)
		}
		if covered {
			continue
		}
		res.Warnings = append(res.Warnings, Warning{
			Acquire:         a,
			Lineage:         m.Lineage(a.Thread),
			PartialReleases: partial,
		})
	}
	sort.Slice(res.Warnings, func(i, j int) bool {
		return res.Warnings[i].Acquire.Instr.Less(res.Warnings[j].Acquire.Instr)
	})
	return res
}

// collect walks every thread's reachable contexts for wake-lock calls.
func collect(m *threadify.Model, res *Result) {
	for _, th := range m.Threads {
		if th.Kind == threadify.KindDummyMain {
			continue
		}
		mcs := make([]threadify.MCtx, 0, len(m.Reach(th.ID)))
		for mc := range m.Reach(th.ID) {
			mcs = append(mcs, mc)
		}
		sort.Slice(mcs, func(i, j int) bool {
			if mcs[i].Method != mcs[j].Method {
				return mcs[i].Method < mcs[j].Method
			}
			return mcs[i].Recv < mcs[j].Recv
		})
		for _, mc := range mcs {
			mth, err := m.H.MethodByRef(mc.Method)
			if err != nil || mth.Abstract {
				continue
			}
			for i, in := range mth.Instrs {
				if in.Op != ir.OpInvoke {
					continue
				}
				op := framework.ClassifyWakeLock(m.H, in.Callee.Class, in.Callee.Name)
				if op != framework.WakeAcquire && op != framework.WakeRelease {
					continue
				}
				site := Site{
					Thread: th.ID,
					MCtx:   mc,
					Instr:  ir.InstrID{Method: mc.Method, Index: i},
					Op:     op,
					Locks:  m.PTS.PointsTo(mc.Method, mc.Recv, in.B),
				}
				if op == framework.WakeAcquire {
					res.Acquires = append(res.Acquires, site)
				} else {
					res.Releases = append(res.Releases, site)
				}
			}
		}
	}
}

// coveredIntra reports whether a release on the same lock post-dominates
// the acquire within the same method: every path from the acquire to a
// return passes a release. Approximated with the CFG: a release
// instruction r covers when r's block post-dominates the acquire's —
// computed by checking the acquire cannot reach an exit without passing
// a release (path-insensitive DFS).
func coveredIntra(m *threadify.Model, a Site) bool {
	mth, err := m.H.MethodByRef(a.MCtx.Method)
	if err != nil {
		return false
	}
	releases := make(map[int]bool)
	for i, in := range mth.Instrs {
		if in.Op != ir.OpInvoke {
			continue
		}
		if framework.ClassifyWakeLock(m.H, in.Callee.Class, in.Callee.Name) != framework.WakeRelease {
			continue
		}
		if sharesLock(a, Site{Locks: m.PTS.PointsTo(a.MCtx.Method, a.MCtx.Recv, in.B)}) {
			releases[i] = true
		}
	}
	if len(releases) == 0 {
		return false
	}
	// DFS from the instruction after the acquire; reaching a return
	// without crossing a release means uncovered.
	seen := make(map[int]bool)
	var reachExit func(i int) bool
	reachExit = func(i int) bool {
		for {
			if i >= len(mth.Instrs) {
				return true // fell off the end without a release
			}
			if seen[i] {
				return false
			}
			seen[i] = true
			if releases[i] {
				return false // released on this path
			}
			in := mth.Instrs[i]
			switch {
			case in.Op == ir.OpReturn || in.Op == ir.OpThrow:
				return true
			case in.Op == ir.OpGoto:
				i = mth.Index(in.Target)
			case in.IsBranch():
				if reachExit(mth.Index(in.Target)) {
					return true
				}
				i++
			default:
				i++
			}
		}
	}
	return !reachExit(a.Instr.Index + 1)
}

// sharesLock reports overlap of the two sites' lock sets. Empty sets
// (opaque receivers) conservatively overlap with everything.
func sharesLock(a, b Site) bool {
	if len(a.Locks) == 0 || len(b.Locks) == 0 {
		return true
	}
	set := make(map[pointsto.ObjID]bool, len(a.Locks))
	for _, l := range a.Locks {
		set[l] = true
	}
	for _, l := range b.Locks {
		if set[l] {
			return true
		}
	}
	return false
}
