package nosleep

import (
	"strings"
	"testing"

	"nadroid/internal/apk"
	"nadroid/internal/appbuilder"
	"nadroid/internal/explore"
	"nadroid/internal/framework"
	"nadroid/internal/threadify"
)

// wakeApp builds an activity holding a wake lock, with configurable
// release placement.
type wakeApp struct {
	b   *appbuilder.Builder
	act *appbuilder.ClassBuilder
}

func newWakeApp() *wakeApp {
	b := appbuilder.New("ns")
	act := b.Activity("ns/A")
	act.Field("wl", framework.WakeLock)
	oc := act.Method("onCreate", 1)
	pm := oc.New(framework.PowerManager)
	wl := oc.Invoke(pm, framework.PowerManager, "newWakeLock")
	oc.PutThis("wl", wl)
	oc.Return()
	return &wakeApp{b: b, act: act}
}

func (wa *wakeApp) method(name string, body func(mb *appbuilder.MethodBuilder, wl int)) {
	mb := wa.act.Method(name, 0)
	wl := mb.GetThis("wl")
	body(mb, wl)
	mb.Return()
}

func (wa *wakeApp) detect(t *testing.T) (*apk.Package, *Result) {
	t.Helper()
	pkg, err := wa.b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return pkg, Detect(m)
}

// Acquire in onResume with release in onPause only: the back-button
// cycle means onPause is NOT guaranteed after onResume statically —
// but more importantly a release in onDestroy covers everything.
func TestAcquireWithoutAnyRelease(t *testing.T) {
	wa := newWakeApp()
	wa.method("onResume", func(mb *appbuilder.MethodBuilder, wl int) {
		mb.InvokeVoid(wl, framework.WakeLock, "acquire")
	})
	pkg, res := wa.detect(t)
	if len(res.Warnings) != 1 {
		t.Fatalf("warnings = %d, want 1", len(res.Warnings))
	}
	if !strings.Contains(res.Warnings[0].Lineage, "onResume") {
		t.Errorf("lineage = %q", res.Warnings[0].Lineage)
	}
	// Dynamic witness: some complete execution ends awake.
	if _, ok := explore.FindNoSleep(pkg, explore.Options{MaxSchedules: 500}); !ok {
		t.Error("explorer must find an execution ending with the lock held")
	}
}

// A release later in the same callback covers the acquire.
func TestIntraCallbackReleaseCovers(t *testing.T) {
	wa := newWakeApp()
	wa.method("onResume", func(mb *appbuilder.MethodBuilder, wl int) {
		mb.InvokeVoid(wl, framework.WakeLock, "acquire")
		mb.InvokeVoid(wl, framework.WakeLock, "release")
	})
	pkg, res := wa.detect(t)
	if len(res.Warnings) != 0 {
		t.Fatalf("covered acquire reported: %v", res.Warnings)
	}
	if wit, ok := explore.FindNoSleep(pkg, explore.Options{MaxSchedules: 500}); ok {
		t.Errorf("no execution should end awake, got %v", wit)
	}
}

// A release on only one branch does not cover (the classic no-sleep
// bug shape from Pathak et al.: the error path forgets the release).
func TestBranchWithoutReleaseUncovered(t *testing.T) {
	wa := newWakeApp()
	wa.method("onResume", func(mb *appbuilder.MethodBuilder, wl int) {
		mb.InvokeVoid(wl, framework.WakeLock, "acquire")
		mb.IfCond("err")
		mb.InvokeVoid(wl, framework.WakeLock, "release")
		mb.Label("err")
	})
	_, res := wa.detect(t)
	if len(res.Warnings) != 1 {
		t.Fatalf("branchy release must not cover: %v", res.Warnings)
	}
	if len(res.Warnings[0].PartialReleases) == 0 {
		t.Error("the partial release should be listed as a hint")
	}
}

// A release in onDestroy covers acquires in entry callbacks: every EC
// must-happens-before onDestroy (MHB-Lifecycle).
func TestDestroyReleaseCoversViaMHB(t *testing.T) {
	wa := newWakeApp()
	wa.method("onResume", func(mb *appbuilder.MethodBuilder, wl int) {
		mb.InvokeVoid(wl, framework.WakeLock, "acquire")
	})
	wa.method("onDestroy", func(mb *appbuilder.MethodBuilder, wl int) {
		mb.InvokeVoid(wl, framework.WakeLock, "release")
	})
	_, res := wa.detect(t)
	if len(res.Warnings) != 0 {
		t.Fatalf("onDestroy release must cover EC acquires via MHB: %v", res.Warnings)
	}
}

// A release in a *sibling* callback with no HB order does not cover:
// onPause may never run again after the last onResume.
func TestSiblingCallbackReleaseDoesNotCover(t *testing.T) {
	wa := newWakeApp()
	wa.method("onResume", func(mb *appbuilder.MethodBuilder, wl int) {
		mb.InvokeVoid(wl, framework.WakeLock, "acquire")
	})
	wa.method("onPause", func(mb *appbuilder.MethodBuilder, wl int) {
		mb.InvokeVoid(wl, framework.WakeLock, "release")
	})
	pkg, res := wa.detect(t)
	if len(res.Warnings) != 1 {
		t.Fatalf("sibling release must not cover: %v", res.Warnings)
	}
	// And the explorer can demonstrate it: resume (acquire) then the
	// world quiesces without another pause.
	if _, ok := explore.FindNoSleep(pkg, explore.Options{MaxSchedules: 1000}); !ok {
		t.Error("explorer must find an awake-at-exit schedule")
	}
}

// A background thread releasing the lock does not cover either (no HB),
// and the site inventory sees through the thread boundary.
func TestThreadReleaseCollected(t *testing.T) {
	wa := newWakeApp()
	th := wa.b.ThreadClass("ns/W")
	th.Field("outer", "ns/A")
	run := th.Method("run", 0)
	o := run.GetThis("outer")
	wl := run.GetField(o, "ns/A", "wl")
	run.InvokeVoid(wl, framework.WakeLock, "release")
	run.Return()
	wa.method("onResume", func(mb *appbuilder.MethodBuilder, wl int) {
		mb.InvokeVoid(wl, framework.WakeLock, "acquire")
		t2 := mb.New("ns/W")
		mb.PutField(t2, "ns/W", "outer", mb.This())
		// NB: mb.This() here is the listener... onResume's this IS the
		// activity, so the outer wiring is direct.
		mb.InvokeVoid(t2, "ns/W", "start")
	})
	_, res := wa.detect(t)
	if len(res.Releases) != 1 {
		t.Fatalf("releases = %d, want the thread's", len(res.Releases))
	}
	if len(res.Warnings) != 1 {
		t.Fatalf("thread release must not statically cover: %v", res.Warnings)
	}
}

// Two independent locks do not cover each other.
func TestDistinctLocksDoNotAlias(t *testing.T) {
	b := appbuilder.New("ns2")
	act := b.Activity("n2/A")
	act.Field("wl1", framework.WakeLock)
	act.Field("wl2", framework.WakeLock)
	oc := act.Method("onCreate", 1)
	pm := oc.New(framework.PowerManager)
	w1 := oc.Invoke(pm, framework.PowerManager, "newWakeLock")
	oc.PutThis("wl1", w1)
	w2 := oc.Invoke(pm, framework.PowerManager, "newWakeLock")
	oc.PutThis("wl2", w2)
	oc.Return()
	orr := act.Method("onResume", 0)
	l1 := orr.GetThis("wl1")
	orr.InvokeVoid(l1, framework.WakeLock, "acquire")
	orr.Return()
	od := act.Method("onDestroy", 0)
	l2 := od.GetThis("wl2")
	od.InvokeVoid(l2, framework.WakeLock, "release")
	od.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := Detect(m)
	if len(res.Warnings) != 1 {
		t.Fatalf("releasing a different lock must not cover: %v", res.Warnings)
	}
}
