package filters

import (
	"nadroid/internal/framework"
	"nadroid/internal/ir"
	"nadroid/internal/pointsto"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// rhbFilter — Resume-Happens-Before (§6.2.1). An activity is often
// paused and resumed; careful programs re-allocate state in onResume.
// RHB prunes a pair whose free sits in onPause and whose use sits in a
// UI callback of the same component when some path through onResume
// re-allocates the field. Unsound: the allocation is a may-analysis.
type rhbFilter struct{}

func (rhbFilter) Name() string { return NameRHB }
func (rhbFilter) Sound() bool  { return false }

func (rhbFilter) Apply(ctx *Context, w *uaf.Warning) int {
	return w.RemovePairs(NameRHB, func(p uaf.ThreadPair) bool {
		tu, tf := ctx.Model.Threads[p.Use], ctx.Model.Threads[p.Free]
		if entryName(tf) != "onPause" {
			return false
		}
		if tu.Kind != threadify.KindEntryCallback || tu.Component == "" || tu.Component != tf.Component {
			return false
		}
		un := entryName(tu)
		if un == "onPause" || un == "onDestroy" {
			return false
		}
		resume := ctx.Model.H.Resolve(tu.Component, "onResume")
		return resume != nil && methodMayAllocateField(resume, w.Field)
	})
}

// chbFilter — Cancel-Happens-Before (§6.2.1). After an event callback
// invokes finish / unbindService / unregisterReceiver /
// removeCallbacksAndMessages / AsyncTask.cancel, the corresponding
// callback family no longer runs, so a use in that family must precede
// the canceller's free. Unsound: reaching the cancel call is a
// may-analysis (the paper's Browser/Puzzles false negatives come from
// error-path finish() calls).
type chbFilter struct{}

func (chbFilter) Name() string { return NameCHB }
func (chbFilter) Sound() bool  { return false }

func (chbFilter) Apply(ctx *Context, w *uaf.Warning) int {
	return w.RemovePairs(NameCHB, func(p uaf.ThreadPair) bool {
		ops := ctx.cancels[p.Free]
		if len(ops) == 0 {
			return false
		}
		tu := ctx.Model.Threads[p.Use]
		for _, op := range ops {
			if cancelCovers(ctx, op, tu) {
				return true
			}
		}
		return false
	})
}

// cancelCovers reports whether a cancellation op stops the use thread's
// callback family from running after the canceller.
func cancelCovers(ctx *Context, op cancelOp, use *threadify.Thread) bool {
	switch op.kind {
	case framework.CancelFinish:
		if op.component == "" || use.Component != op.component {
			return false
		}
		// finish() stops the component's UI and connection callbacks, but
		// onDestroy still runs (it is *caused* by finish).
		if entryName(use) == "onDestroy" {
			return false
		}
		switch use.Kind {
		case threadify.KindEntryCallback:
			return true
		case threadify.KindPostedCallback:
			return use.Post == framework.PostBindService || use.Post == framework.PostRegisterReceiver
		}
		return false
	case framework.CancelUnbindService:
		return use.Post == framework.PostBindService && objMember(op.objs, use.Entry.Recv)
	case framework.CancelUnregisterReceiver:
		return use.Post == framework.PostRegisterReceiver && objMember(op.objs, use.Entry.Recv)
	case framework.CancelRemoveCallbacks:
		// Pending messages of the handler are dropped. (Runnables posted
		// through the handler share its queue but are not tracked back to
		// the handler object; see the package documentation.)
		return use.Post == framework.PostSendMessage && objMember(op.objs, use.Entry.Recv)
	case framework.CancelTask:
		return (use.Post == framework.PostExecuteTask || use.Post == framework.PostPublishProgress) &&
			objMember(op.objs, use.Entry.Recv)
	}
	return false
}

func objMember(objs []pointsto.ObjID, o pointsto.ObjID) bool {
	for _, x := range objs {
		if x == o {
			return true
		}
	}
	return false
}

// phbFilter — Post-Happens-Before (§6.2.1). When the use's callback
// (transitively) posted the free's callback on the same looper, the
// atomic use completes before the posted free starts. Unsound: a second
// runtime instance of the posting callback may interleave.
type phbFilter struct{}

func (phbFilter) Name() string { return NamePHB }
func (phbFilter) Sound() bool  { return false }

func (phbFilter) Apply(ctx *Context, w *uaf.Warning) int {
	return w.RemovePairs(NamePHB, func(p uaf.ThreadPair) bool {
		tu := ctx.Model.Threads[p.Use]
		if !tu.Looper {
			return false
		}
		// Walk the free thread's ancestry down to the use thread; every
		// hop must be a looper-posted callback.
		for cur := p.Free; cur >= 0; {
			t := ctx.Model.Threads[cur]
			if cur == p.Use {
				return true
			}
			if t.Kind != threadify.KindPostedCallback || !t.Looper {
				return false
			}
			cur = t.Parent
		}
		return false
	})
}

// maFilter — Maybe-Allocation (§6.2.2): like IA but accepting getter
// results as allocations, assuming custom getters never return null.
type maFilter struct{}

func (maFilter) Name() string { return NameMA }
func (maFilter) Sound() bool  { return false }

func (maFilter) Apply(ctx *Context, w *uaf.Warning) int {
	mth := ctx.method(w.Use.Method)
	if mth == nil {
		return 0
	}
	if !hasDominatingStoreOf(mth, w.Use.Index, ir.OriginCall) {
		return 0
	}
	return w.RemovePairs(NameMA, func(p uaf.ThreadPair) bool {
		return ctx.atomicPair(w, p)
	})
}

// urFilter — Used-for-Return (§6.2.3): the loaded value is only
// returned, compared against null, or passed as an argument; it is never
// dereferenced through this load, so the warning is commonly benign.
type urFilter struct{}

func (urFilter) Name() string { return NameUR }
func (urFilter) Sound() bool  { return false }

func (urFilter) Apply(ctx *Context, w *uaf.Warning) int {
	mth := ctx.method(w.Use.Method)
	if mth == nil {
		return 0
	}
	if !isBenignUse(mth, w.Use.Index) {
		return 0
	}
	return w.RemovePairs(NameUR, func(uaf.ThreadPair) bool { return true })
}

// ttFilter — Thread-Thread (§6.2.4): races purely between native
// threads are the classic well-studied case; nAdroid deprioritizes them
// to focus on Android-specific callback races.
type ttFilter struct{}

func (ttFilter) Name() string { return NameTT }
func (ttFilter) Sound() bool  { return false }

func (ttFilter) Apply(ctx *Context, w *uaf.Warning) int {
	return w.RemovePairs(NameTT, func(p uaf.ThreadPair) bool {
		tu, tf := ctx.Model.Threads[p.Use], ctx.Model.Threads[p.Free]
		return !tu.Looper && !tf.Looper
	})
}
