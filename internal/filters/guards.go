package filters

import "nadroid/internal/ir"

// This file holds the intra-procedural pattern analyses behind the IG,
// IA, MA, RHB and UR filters: if-guard detection, dominating
// allocation-store detection, and benign-use classification.

// sameBase reports whether the base registers of two field accesses in
// the same method definitely denote the same object: identical origin
// (receiver parameter, same load site, or same allocation site).
func sameBase(oi *ir.OriginInfo, i1, r1, i2, r2 int) bool {
	o1, o2 := oi.At(i1, r1), oi.At(i2, r2)
	if o1.Kind != o2.Kind {
		return false
	}
	switch o1.Kind {
	case ir.OriginParam:
		return r1 == r2
	case ir.OriginLoad, ir.OriginNew:
		return o1.Site == o2.Site
	}
	return false
}

// isGuardedUse reports whether the use (a getfield/getstatic) at idx is
// dominated by a null check of the same field on the same base, with no
// intervening store to that field — the §6.1.2 "if-guard" pattern.
func isGuardedUse(mth *ir.Method, idx int) bool {
	use := mth.Instrs[idx]
	if use.Op != ir.OpGetField && use.Op != ir.OpGetStatic {
		return false
	}
	oi := ir.ComputeOrigins(mth)
	g := ir.BuildCFG(mth)
	idom := g.Dominators()
	for j, in := range mth.Instrs {
		if in.Op != ir.OpIfNull && in.Op != ir.OpIfNonNull {
			continue
		}
		// The checked register must hold a load of the same field/base.
		chk := oi.At(j, in.B)
		if chk.Kind != ir.OriginLoad {
			continue
		}
		ld := mth.Instrs[chk.Site]
		if ld.Field != use.Field {
			continue
		}
		if use.Op == ir.OpGetField {
			if ld.Op != ir.OpGetField || !sameBase(oi, chk.Site, ld.B, idx, use.B) {
				continue
			}
		} else if ld.Op != ir.OpGetStatic {
			continue
		}
		// Find the entry instruction of the non-null branch.
		var nonNull int
		if in.Op == ir.OpIfNull {
			nonNull = j + 1 // fall through when non-null
		} else {
			nonNull = mth.Index(in.Target)
		}
		if nonNull >= len(mth.Instrs) {
			continue
		}
		if !g.Dominates(idom, nonNull, idx) {
			continue
		}
		if storeBetween(mth, use.Field, min(j, idx), max(j, idx)) {
			continue
		}
		return true
	}
	return false
}

// isGuardLoad reports whether the value loaded at idx flows only into
// null checks — the load *is* the guard, so dereference never happens
// through it.
func isGuardLoad(mth *ir.Method, idx int) bool {
	in := mth.Instrs[idx]
	if in.Op != ir.OpGetField && in.Op != ir.OpGetStatic {
		return false
	}
	uses := ir.UsesOfDef(mth, idx)
	if len(uses) == 0 {
		return false
	}
	for _, u := range uses {
		switch mth.Instrs[u].Op {
		case ir.OpIfNull, ir.OpIfNonNull, ir.OpMove:
		default:
			return false
		}
	}
	return true
}

// hasDominatingStoreOf reports whether a store to the use's field (same
// base) whose value has one of the given origins dominates the use —
// the IA pattern with OriginNew, the MA pattern with OriginCall.
func hasDominatingStoreOf(mth *ir.Method, idx int, kinds ...ir.OriginKind) bool {
	use := mth.Instrs[idx]
	if use.Op != ir.OpGetField && use.Op != ir.OpGetStatic {
		return false
	}
	oi := ir.ComputeOrigins(mth)
	g := ir.BuildCFG(mth)
	idom := g.Dominators()
	for j, in := range mth.Instrs {
		if j >= idx {
			break
		}
		isStore := (use.Op == ir.OpGetField && in.Op == ir.OpPutField) ||
			(use.Op == ir.OpGetStatic && in.Op == ir.OpPutStatic)
		if !isStore || in.Field != use.Field {
			continue
		}
		if use.Op == ir.OpGetField && !sameBase(oi, j, in.B, idx, use.B) {
			continue
		}
		stored := oi.At(j, in.A)
		match := false
		for _, k := range kinds {
			if stored.Kind == k {
				match = true
			}
		}
		if !match {
			continue
		}
		if !g.Dominates(idom, j, idx) {
			continue
		}
		if storeBetween(mth, use.Field, j+1, idx) {
			continue
		}
		return true
	}
	return false
}

// methodMayAllocateField reports whether any path through mth stores a
// fresh allocation (or getter result) into the named field — the RHB
// filter's may-analysis over onResume.
func methodMayAllocateField(mth *ir.Method, field ir.FieldRef) bool {
	if mth == nil || mth.Abstract {
		return false
	}
	oi := ir.ComputeOrigins(mth)
	for j, in := range mth.Instrs {
		if in.Op != ir.OpPutField && in.Op != ir.OpPutStatic {
			continue
		}
		if in.Field.Name != field.Name {
			continue
		}
		switch oi.At(j, in.A).Kind {
		case ir.OriginNew, ir.OriginCall:
			return true
		}
	}
	return false
}

// isBenignUse reports whether the loaded value is only returned, null
// checked, or passed as a call argument (never dereferenced as a
// receiver) — the UR filter (§6.2.3).
func isBenignUse(mth *ir.Method, idx int) bool {
	in := mth.Instrs[idx]
	if in.Op != ir.OpGetField && in.Op != ir.OpGetStatic {
		return false
	}
	def, ok := in.DefReg()
	if !ok {
		return false
	}
	uses := ir.UsesOfDef(mth, idx)
	if len(uses) == 0 {
		return true // dead load cannot fault
	}
	for _, u := range uses {
		ui := mth.Instrs[u]
		switch ui.Op {
		case ir.OpReturn, ir.OpIfNull, ir.OpIfNonNull, ir.OpMove:
			continue
		case ir.OpInvoke:
			// Receiver dereference faults; argument passing does not.
			if regFeedsReceiver(mth, idx, def, u) {
				return false
			}
			continue
		case ir.OpInvokeStatic:
			continue
		case ir.OpPutField, ir.OpPutStatic:
			// Stored elsewhere: the value may be dereferenced later.
			return false
		default:
			return false
		}
	}
	return true
}

// regFeedsReceiver reports whether the value defined at def reaches the
// receiver operand of the invoke at u (directly or through moves).
func regFeedsReceiver(mth *ir.Method, defIdx, defReg, u int) bool {
	in := mth.Instrs[u]
	oi := ir.ComputeOrigins(mth)
	o := oi.At(u, in.B)
	switch o.Kind {
	case ir.OriginLoad:
		return o.Site == defIdx
	}
	return in.B == defReg
}

// storeBetween reports a putfield/putstatic of the field in (lo, hi).
// The check is index-range based (path insensitive, conservative).
func storeBetween(mth *ir.Method, f ir.FieldRef, lo, hi int) bool {
	for j := lo + 1; j < hi; j++ {
		in := mth.Instrs[j]
		if (in.Op == ir.OpPutField || in.Op == ir.OpPutStatic) && in.Field == f {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
