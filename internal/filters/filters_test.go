package filters

import (
	"strings"
	"testing"

	"nadroid/internal/apk"
	"nadroid/internal/appbuilder"
	"nadroid/internal/framework"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

var _ = apk.Package{} // keep the import pinned for fixture helpers

// fixture builds apps shaped like the paper's Figure 4 examples: an
// activity with a field `f`, two click listeners with custom bodies,
// and optional extra wiring.
type fixture struct {
	b   *appbuilder.Builder
	act *appbuilder.ClassBuilder
}

const (
	actCls = "fx/A"
	valCls = "fx/V"
)

func newFixture() *fixture {
	b := appbuilder.New("fixture")
	act := b.Activity(actCls)
	act.Field("f", valCls)
	act.Field("view", framework.View)
	b.Class(valCls, framework.Object).Method("use", 0).Return()
	return &fixture{b: b, act: act}
}

// listener declares a click listener class holding an `outer` activity
// reference, returning its method builder with `outer` pre-loaded.
func (fx *fixture) listener(name string) (*appbuilder.MethodBuilder, int) {
	l := fx.b.Class(name, framework.Object, framework.OnClickListener)
	l.Field("outer", actCls)
	mb := l.Method("onClick", 1)
	outer := mb.GetThis("outer")
	return mb, outer
}

// register wires listeners in onCreate.
func (fx *fixture) register(classes ...string) {
	oc := fx.act.Method("onCreate", 1)
	v := oc.GetThis("view")
	for _, cls := range classes {
		l := oc.New(cls)
		oc.PutField(l, cls, "outer", oc.This())
		oc.InvokeVoid(v, framework.View, "setOnClickListener", l)
	}
	oc.Return()
}

func (fx *fixture) detect(t *testing.T) (*uaf.Detection, *Context) {
	t.Helper()
	pkg, err := fx.b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return detectPkg(t, pkg)
}

func detectPkg(t *testing.T, pkg *apk.Package) (*uaf.Detection, *Context) {
	t.Helper()
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatalf("threadify: %v", err)
	}
	d := uaf.Detect(m)
	return d, NewContext(d)
}

// findWarning returns the warning whose use and free methods contain the
// given substrings.
func findWarning(t *testing.T, d *uaf.Detection, useIn, freeIn string) *uaf.Warning {
	t.Helper()
	for _, w := range d.Warnings {
		if strings.Contains(w.Use.Method, useIn) && strings.Contains(w.Free.Method, freeIn) {
			return w
		}
	}
	t.Fatalf("no warning use~%q free~%q among %d warnings", useIn, freeIn, len(d.Warnings))
	return nil
}

func applyFilter(ctx *Context, d *uaf.Detection, f Filter) {
	for _, w := range d.Warnings {
		if w.Alive() {
			f.Apply(ctx, w)
		}
	}
}

// --- Figure 4(a): MHB-Service ------------------------------------------

func buildMHBServiceFixture() *fixture {
	fx := newFixture()
	conn := fx.b.ServiceConn("fx/Conn")
	conn.Field("outer", actCls)
	sc := conn.Method("onServiceConnected", 1)
	o := sc.GetThis("outer")
	f := sc.GetField(o, actCls, "f")
	sc.Use(f, valCls)
	sc.Return()
	sd := conn.Method("onServiceDisconnected", 1)
	o2 := sd.GetThis("outer")
	sd.Free(o2, actCls, "f")
	sd.Return()
	os := fx.act.Method("onStart", 0)
	cn := os.New("fx/Conn")
	os.PutField(cn, "fx/Conn", "outer", os.This())
	os.InvokeVoid(os.This(), actCls, "bindService", cn)
	os.Return()
	return fx
}

func TestMHBPrunesServiceConnectedVsDisconnected(t *testing.T) {
	fx := buildMHBServiceFixture()
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "onServiceConnected", "onServiceDisconnected")
	applyFilter(ctx, d, mhbFilter{})
	if w.Alive() {
		t.Error("MHB must prune use-in-SC vs free-in-SD (SC always precedes SD)")
	}
}

func TestMHBKeepsReverseDirection(t *testing.T) {
	// Free in SC, use in SD would mean free HB use: guaranteed null — not
	// pruned by MHB (it prunes only use-HB-free).
	fx := newFixture()
	conn := fx.b.ServiceConn("fx/Conn")
	conn.Field("outer", actCls)
	sc := conn.Method("onServiceConnected", 1)
	o := sc.GetThis("outer")
	sc.Free(o, actCls, "f")
	sc.Return()
	sd := conn.Method("onServiceDisconnected", 1)
	o2 := sd.GetThis("outer")
	f := sd.GetField(o2, actCls, "f")
	sd.Use(f, valCls)
	sd.Return()
	os := fx.act.Method("onStart", 0)
	cn := os.New("fx/Conn")
	os.PutField(cn, "fx/Conn", "outer", os.This())
	os.InvokeVoid(os.This(), actCls, "bindService", cn)
	os.Return()
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "onServiceDisconnected", "onServiceConnected")
	applyFilter(ctx, d, mhbFilter{})
	if !w.Alive() {
		t.Error("MHB must not prune free-in-SC vs use-in-SD")
	}
}

func TestMHBLifecyclePrunesOnDestroyFrees(t *testing.T) {
	fx := newFixture()
	// use in onActivityResult, free in onDestroy (the DEvA Table 3 shape).
	oar := fx.act.Method("onActivityResult", 1)
	f := oar.GetThis("f")
	oar.Use(f, valCls)
	oar.Return()
	od := fx.act.Method("onDestroy", 0)
	od.FreeThis("f")
	od.Return()
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "onActivityResult", "onDestroy")
	applyFilter(ctx, d, mhbFilter{})
	if w.Alive() {
		t.Error("MHB-Lifecycle must prune use-before-onDestroy frees")
	}
}

func TestMHBDoesNotOrderResumeAndPause(t *testing.T) {
	fx := newFixture()
	orr := fx.act.Method("onResume", 0)
	f := orr.GetThis("f")
	orr.Use(f, valCls)
	orr.Return()
	op := fx.act.Method("onPause", 0)
	op.FreeThis("f")
	op.Return()
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "onResume", "onPause")
	applyFilter(ctx, d, mhbFilter{})
	if !w.Alive() {
		t.Error("the back-button cycle forbids MHB between onResume and onPause (§6.1.1)")
	}
}

// --- Figure 4(b): IG -----------------------------------------------------

func buildIGFixture() *fixture {
	fx := newFixture()
	c1, o1 := fx.listener("fx/L1")
	chk := c1.GetField(o1, actCls, "f")
	c1.IfNull(chk, "skip")
	f := c1.GetField(o1, actCls, "f")
	c1.Use(f, valCls)
	c1.Label("skip")
	c1.Return()
	c2, o2 := fx.listener("fx/L2")
	c2.Free(o2, actCls, "f")
	c2.Return()
	fx.register("fx/L1", "fx/L2")
	return fx
}

func TestIGPrunesGuardedUseBetweenCallbacks(t *testing.T) {
	fx := buildIGFixture()
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "L1.onClick", "L2.onClick")
	applyFilter(ctx, d, igFilter{})
	if w.Alive() {
		t.Error("IG must prune a guarded use between same-looper callbacks")
	}
}

func TestIGDoesNotPruneUnguardedUse(t *testing.T) {
	fx := newFixture()
	c1, o1 := fx.listener("fx/L1")
	f := c1.GetField(o1, actCls, "f")
	c1.Use(f, valCls)
	c1.Return()
	c2, o2 := fx.listener("fx/L2")
	c2.Free(o2, actCls, "f")
	c2.Return()
	fx.register("fx/L1", "fx/L2")
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "L1.onClick", "L2.onClick")
	applyFilter(ctx, d, igFilter{})
	if !w.Alive() {
		t.Error("IG must not prune an unguarded use")
	}
}

// A guard is NOT atomic against a background thread without a lock: the
// free can interleave between check and use (Figure 1(c)'s pattern).
func TestIGUnsafeAgainstThreadWithoutLock(t *testing.T) {
	fx := newFixture()
	c1, o1 := fx.listener("fx/L1")
	chk := c1.GetField(o1, actCls, "f")
	c1.IfNull(chk, "skip")
	f := c1.GetField(o1, actCls, "f")
	c1.Use(f, valCls)
	c1.Label("skip")
	c1.Return()
	// Background thread frees the field.
	w := fx.b.ThreadClass("fx/W")
	w.Field("outer", actCls)
	run := w.Method("run", 0)
	o := run.GetThis("outer")
	run.Free(o, actCls, "f")
	run.Return()
	os := fx.act.Method("onStart", 0)
	th := os.New("fx/W")
	os.PutField(th, "fx/W", "outer", os.This())
	os.InvokeVoid(th, "fx/W", "start")
	os.Return()
	fx.register("fx/L1")
	d, ctx := fx.detect(t)
	warn := findWarning(t, d, "L1.onClick", "W.run")
	applyFilter(ctx, d, igFilter{})
	if !warn.Alive() {
		t.Error("IG must not prune callback-vs-thread guards without a common lock")
	}
}

// With a common lock on both sides, IG applies even across threads.
func TestIGSafeAgainstThreadWithCommonLock(t *testing.T) {
	fx := newFixture()
	fx.act.Field("lock", valCls)
	c1, o1 := fx.listener("fx/L1")
	lk := c1.GetField(o1, actCls, "lock")
	c1.Lock(lk)
	chk := c1.GetField(o1, actCls, "f")
	c1.IfNull(chk, "skip")
	f := c1.GetField(o1, actCls, "f")
	c1.Use(f, valCls)
	c1.Label("skip")
	c1.Unlock(lk)
	c1.Return()
	w := fx.b.ThreadClass("fx/W")
	w.Field("outer", actCls)
	run := w.Method("run", 0)
	o := run.GetThis("outer")
	lk2 := run.GetField(o, actCls, "lock")
	run.Lock(lk2)
	run.Free(o, actCls, "f")
	run.Unlock(lk2)
	run.Return()
	oc := fx.act.Method("onCreate", 1)
	l := oc.New(valCls)
	oc.PutThis("lock", l)
	v := oc.GetThis("view")
	ls := oc.New("fx/L1")
	oc.PutField(ls, "fx/L1", "outer", oc.This())
	oc.InvokeVoid(v, framework.View, "setOnClickListener", ls)
	th := oc.New("fx/W")
	oc.PutField(th, "fx/W", "outer", oc.This())
	oc.InvokeVoid(th, "fx/W", "start")
	oc.Return()
	d, ctx := fx.detect(t)
	warn := findWarning(t, d, "L1.onClick", "W.run")
	applyFilter(ctx, d, igFilter{})
	if warn.Alive() {
		t.Error("IG should prune guarded use vs locked free when both hold the same lock")
	}
}

// --- Figure 4(c): IA -----------------------------------------------------

func TestIAPrunesUseAfterFreshAllocation(t *testing.T) {
	fx := newFixture()
	c1, o1 := fx.listener("fx/L1")
	nv := c1.New(valCls)
	c1.PutField(o1, actCls, "f", nv)
	f := c1.GetField(o1, actCls, "f")
	c1.Use(f, valCls)
	c1.Return()
	c2, o2 := fx.listener("fx/L2")
	c2.Free(o2, actCls, "f")
	c2.Return()
	fx.register("fx/L1", "fx/L2")
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "L1.onClick", "L2.onClick")
	applyFilter(ctx, d, iaFilter{})
	if w.Alive() {
		t.Error("IA must prune uses dominated by a fresh allocation store")
	}
}

func TestIADoesNotPruneGetterAllocation(t *testing.T) {
	fx := newFixture()
	fx.act.Method("getF", 0).Return() // opaque getter
	c1, o1 := fx.listener("fx/L1")
	got := c1.Invoke(o1, actCls, "getF")
	c1.PutField(o1, actCls, "f", got)
	f := c1.GetField(o1, actCls, "f")
	c1.Use(f, valCls)
	c1.Return()
	c2, o2 := fx.listener("fx/L2")
	c2.Free(o2, actCls, "f")
	c2.Return()
	fx.register("fx/L1", "fx/L2")
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "L1.onClick", "L2.onClick")
	applyFilter(ctx, d, iaFilter{})
	if !w.Alive() {
		t.Error("IA is conservative: getter results are left to the unsound MA filter")
	}
	applyFilter(ctx, d, maFilter{})
	if w.Alive() {
		t.Error("MA must prune getter-allocation uses")
	}
}

// --- Figure 4(d): RHB ----------------------------------------------------

func TestRHBPrunesWithResumeAllocation(t *testing.T) {
	fx := newFixture()
	orr := fx.act.Method("onResume", 0)
	nv := orr.New(valCls)
	orr.PutThis("f", nv)
	orr.Return()
	op := fx.act.Method("onPause", 0)
	op.FreeThis("f")
	op.Return()
	c1, o1 := fx.listener("fx/L1")
	f := c1.GetField(o1, actCls, "f")
	c1.Use(f, valCls)
	c1.Return()
	fx.register("fx/L1")
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "L1.onClick", "onPause")
	applyFilter(ctx, d, rhbFilter{})
	if w.Alive() {
		t.Error("RHB must prune UI-use vs onPause-free when onResume re-allocates")
	}
}

func TestRHBKeepsWithoutResumeAllocation(t *testing.T) {
	fx := newFixture()
	fx.act.Method("onResume", 0).Return() // no allocation
	op := fx.act.Method("onPause", 0)
	op.FreeThis("f")
	op.Return()
	c1, o1 := fx.listener("fx/L1")
	f := c1.GetField(o1, actCls, "f")
	c1.Use(f, valCls)
	c1.Return()
	fx.register("fx/L1")
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "L1.onClick", "onPause")
	applyFilter(ctx, d, rhbFilter{})
	if !w.Alive() {
		t.Error("RHB requires an allocation in onResume — the Figure 4(d) harmful case")
	}
}

// --- Figure 4(e): CHB ----------------------------------------------------

func TestCHBPrunesFinishCanceller(t *testing.T) {
	fx := newFixture()
	c1, o1 := fx.listener("fx/L1")
	c1.Free(o1, actCls, "f")
	c1.InvokeVoid(o1, actCls, "finish")
	c1.Return()
	c2, o2 := fx.listener("fx/L2")
	f := c2.GetField(o2, actCls, "f")
	c2.Use(f, valCls)
	c2.Return()
	fx.register("fx/L1", "fx/L2")
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "L2.onClick", "L1.onClick")
	applyFilter(ctx, d, chbFilter{})
	if w.Alive() {
		t.Error("CHB must prune: after L1 finishes the activity, L2 cannot run")
	}
}

func TestCHBKeepsWithoutCancel(t *testing.T) {
	fx := newFixture()
	c1, o1 := fx.listener("fx/L1")
	c1.Free(o1, actCls, "f")
	c1.Return()
	c2, o2 := fx.listener("fx/L2")
	f := c2.GetField(o2, actCls, "f")
	c2.Use(f, valCls)
	c2.Return()
	fx.register("fx/L1", "fx/L2")
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "L2.onClick", "L1.onClick")
	applyFilter(ctx, d, chbFilter{})
	if !w.Alive() {
		t.Error("CHB must not prune without a cancellation call")
	}
}

// --- Figure 4(f): PHB ----------------------------------------------------

func TestPHBPrunesPosterUseVsPosteeFree(t *testing.T) {
	fx := newFixture()
	fx.act.Field("handler", "fx/H")
	h := fx.b.HandlerClass("fx/H")
	h.Field("outer", actCls)
	hm := h.Method("handleMessage", 1)
	ho := hm.GetThis("outer")
	hm.Free(ho, actCls, "f")
	hm.Return()
	c1, o1 := fx.listener("fx/L1")
	hh := c1.GetField(o1, actCls, "handler")
	msg := c1.New(framework.Message)
	c1.InvokeVoid(hh, "fx/H", "sendMessage", msg)
	f := c1.GetField(o1, actCls, "f")
	c1.Use(f, valCls)
	c1.Return()
	oc := fx.act.Method("onCreate", 1)
	hr := oc.New("fx/H")
	oc.PutField(hr, "fx/H", "outer", oc.This())
	oc.PutThis("handler", hr)
	v := oc.GetThis("view")
	l := oc.New("fx/L1")
	oc.PutField(l, "fx/L1", "outer", oc.This())
	oc.InvokeVoid(v, framework.View, "setOnClickListener", l)
	oc.Return()
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "L1.onClick", "H.handleMessage")
	applyFilter(ctx, d, phbFilter{})
	if w.Alive() {
		t.Error("PHB must prune: the posted handleMessage runs only after onClick completes")
	}
}

func TestPHBKeepsReversePosting(t *testing.T) {
	// The postee uses; the poster frees after posting. Atomicity does not
	// save this: the free precedes the posted use.
	fx := newFixture()
	fx.act.Field("handler", "fx/H")
	h := fx.b.HandlerClass("fx/H")
	h.Field("outer", actCls)
	hm := h.Method("handleMessage", 1)
	ho := hm.GetThis("outer")
	f := hm.GetField(ho, actCls, "f")
	hm.Use(f, valCls)
	hm.Return()
	c1, o1 := fx.listener("fx/L1")
	hh := c1.GetField(o1, actCls, "handler")
	msg := c1.New(framework.Message)
	c1.InvokeVoid(hh, "fx/H", "sendMessage", msg)
	c1.Free(o1, actCls, "f")
	c1.Return()
	oc := fx.act.Method("onCreate", 1)
	hr := oc.New("fx/H")
	oc.PutField(hr, "fx/H", "outer", oc.This())
	oc.PutThis("handler", hr)
	v := oc.GetThis("view")
	l := oc.New("fx/L1")
	oc.PutField(l, "fx/L1", "outer", oc.This())
	oc.InvokeVoid(v, framework.View, "setOnClickListener", l)
	oc.Return()
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "H.handleMessage", "L1.onClick")
	applyFilter(ctx, d, phbFilter{})
	if !w.Alive() {
		t.Error("PHB must not prune free-in-poster vs use-in-postee (real UAF direction)")
	}
}

// --- Figure 4(g): UR -----------------------------------------------------

func TestURPrunesReturnOnlyUse(t *testing.T) {
	fx := newFixture()
	g := fx.act.Method("getF", 0)
	f := g.GetThis("f")
	g.ReturnReg(f)
	c1, o1 := fx.listener("fx/L1")
	c1.Invoke(o1, actCls, "getF")
	c1.Return()
	c2, o2 := fx.listener("fx/L2")
	c2.Free(o2, actCls, "f")
	c2.Return()
	fx.register("fx/L1", "fx/L2")
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "A.getF", "L2.onClick")
	applyFilter(ctx, d, urFilter{})
	if w.Alive() {
		t.Error("UR must prune loads that are only returned")
	}
}

func TestURKeepsDereferencedUse(t *testing.T) {
	fx := newFixture()
	c1, o1 := fx.listener("fx/L1")
	f := c1.GetField(o1, actCls, "f")
	c1.Use(f, valCls)
	c1.Return()
	c2, o2 := fx.listener("fx/L2")
	c2.Free(o2, actCls, "f")
	c2.Return()
	fx.register("fx/L1", "fx/L2")
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "L1.onClick", "L2.onClick")
	applyFilter(ctx, d, urFilter{})
	if !w.Alive() {
		t.Error("UR must keep dereferenced uses")
	}
}

// --- TT ------------------------------------------------------------------

func TestTTPrunesThreadThreadPairs(t *testing.T) {
	fx := newFixture()
	for _, name := range []string{"fx/W1", "fx/W2"} {
		w := fx.b.ThreadClass(name)
		w.Field("outer", actCls)
	}
	r1 := fx.b.Program().Class("fx/W1")
	_ = r1
	w1 := fx.b.Program().Class("fx/W1")
	_ = w1
	run1 := appbuilderMethod(fx, "fx/W1", "run")
	o := run1.GetThis("outer")
	f := run1.GetField(o, actCls, "f")
	run1.Use(f, valCls)
	run1.Return()
	run2 := appbuilderMethod(fx, "fx/W2", "run")
	o2 := run2.GetThis("outer")
	run2.Free(o2, actCls, "f")
	run2.Return()
	os := fx.act.Method("onStart", 0)
	for _, name := range []string{"fx/W1", "fx/W2"} {
		th := os.New(name)
		os.PutField(th, name, "outer", os.This())
		os.InvokeVoid(th, name, "start")
	}
	os.Return()
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "W1.run", "W2.run")
	applyFilter(ctx, d, ttFilter{})
	if w.Alive() {
		t.Error("TT must prune pure thread-thread warnings")
	}
}

func TestTTKeepsCallbackThreadPairs(t *testing.T) {
	fx := newFixture()
	w := fx.b.ThreadClass("fx/W")
	w.Field("outer", actCls)
	run := appbuilderMethod(fx, "fx/W", "run")
	o := run.GetThis("outer")
	run.Free(o, actCls, "f")
	run.Return()
	c1, o1 := fx.listener("fx/L1")
	f := c1.GetField(o1, actCls, "f")
	c1.Use(f, valCls)
	c1.Return()
	os := fx.act.Method("onStart", 0)
	th := os.New("fx/W")
	os.PutField(th, "fx/W", "outer", os.This())
	os.InvokeVoid(th, "fx/W", "start")
	os.Return()
	fx.register("fx/L1")
	d, ctx := fx.detect(t)
	warn := findWarning(t, d, "L1.onClick", "W.run")
	applyFilter(ctx, d, ttFilter{})
	if !warn.Alive() {
		t.Error("TT must keep callback-vs-thread warnings")
	}
}

// appbuilderMethod adds a method to an already-declared class through the
// fixture's builder (helper to keep TT fixtures compact).
func appbuilderMethod(fx *fixture, cls, name string) *appbuilder.MethodBuilder {
	return fx.b.MethodOn(cls, name, 0)
}

// --- Pipeline ------------------------------------------------------------

func TestPipelineSequenceAndStats(t *testing.T) {
	fx := buildIGFixture()
	d, _ := fx.detect(t)
	st := Run(d)
	if st.Potential == 0 {
		t.Fatal("expected potential warnings")
	}
	if st.AfterSound > st.Potential || st.AfterUnsound > st.AfterSound {
		t.Errorf("monotonicity violated: %d -> %d -> %d", st.Potential, st.AfterSound, st.AfterUnsound)
	}
}

func TestMeasureIndependentRestoresState(t *testing.T) {
	fx := buildIGFixture()
	d, _ := fx.detect(t)
	before := d.AliveCount()
	removed, start := MeasureIndependent(d, SoundFilters(), false)
	if start != before {
		t.Errorf("start = %d, want %d", start, before)
	}
	if d.AliveCount() != before {
		t.Errorf("MeasureIndependent must restore warnings: %d != %d", d.AliveCount(), before)
	}
	if removed[NameIG] == 0 {
		t.Error("IG should remove the guarded warning in independent measurement")
	}
}

// --- §8.1 multi-looper downgrade ------------------------------------------

// With MultiLooper set, looper-looper atomicity is no longer trusted:
// IG must not prune the Figure 4(b) pattern without a lock.
func TestMultiLooperDowngradesIG(t *testing.T) {
	fx := buildIGFixture()
	pkg, err := fx.b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := uaf.Detect(m)
	ctx := NewContextWith(d, Options{MultiLooper: true})
	w := findWarning(t, d, "L1.onClick", "L2.onClick")
	applyFilter(ctx, d, igFilter{})
	if !w.Alive() {
		t.Error("MultiLooper must downgrade IG: no lock, no pruning")
	}
}

// --- CHB cancel-kind coverage ---------------------------------------------

// unregisterReceiver in the freeing callback cancels the receiver's
// onReceive uses.
func TestCHBUnregisterReceiver(t *testing.T) {
	fx := newFixture()
	rcv := fx.b.Class("fx/Rcv", framework.BroadcastReceiver)
	rcv.Field("outer", actCls)
	or := rcv.Method("onReceive", 1)
	o := or.GetThis("outer")
	f := or.GetField(o, actCls, "f")
	or.Use(f, valCls)
	or.Return()
	fx.act.Field("rcv", "fx/Rcv")
	oc := fx.act.Method("onCreate", 1)
	v := oc.New(valCls)
	oc.PutThis("f", v)
	rv := oc.New("fx/Rcv")
	oc.PutField(rv, "fx/Rcv", "outer", oc.This())
	oc.PutThis("rcv", rv)
	oc.InvokeVoid(oc.This(), actCls, "registerReceiver", rv)
	view := oc.GetThis("view")
	l := oc.New("fx/L1")
	oc.PutField(l, "fx/L1", "outer", oc.This())
	oc.InvokeVoid(view, framework.View, "setOnClickListener", l)
	oc.Return()
	l1 := fx.b.Class("fx/L1", framework.Object, framework.OnClickListener)
	l1.Field("outer", actCls)
	c1 := l1.Method("onClick", 1)
	o1 := c1.GetThis("outer")
	r := c1.GetField(o1, actCls, "rcv")
	c1.InvokeVoid(o1, actCls, "unregisterReceiver", r)
	c1.Free(o1, actCls, "f")
	c1.Return()
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "Rcv.onReceive", "L1.onClick")
	applyFilter(ctx, d, chbFilter{})
	if w.Alive() {
		t.Error("CHB must prune onReceive-use vs unregister+free")
	}
}

// AsyncTask.cancel covers the task's own callbacks.
func TestCHBTaskCancel(t *testing.T) {
	fx := newFixture()
	task := fx.b.AsyncTaskClass("fx/T")
	task.Field("outer", actCls)
	prog := task.Method("onProgressUpdate", 0)
	o := prog.GetThis("outer")
	f := prog.GetField(o, actCls, "f")
	prog.Use(f, valCls)
	prog.Return()
	dib := task.Method("doInBackground", 0)
	dib.InvokeVoid(dib.This(), "fx/T", "publishProgress")
	dib.Return()
	fx.act.Field("task", "fx/T")
	oc := fx.act.Method("onCreate", 1)
	v := oc.New(valCls)
	oc.PutThis("f", v)
	tk := oc.New("fx/T")
	oc.PutField(tk, "fx/T", "outer", oc.This())
	oc.PutThis("task", tk)
	oc.InvokeVoid(tk, "fx/T", "execute")
	view := oc.GetThis("view")
	l := oc.New("fx/L1")
	oc.PutField(l, "fx/L1", "outer", oc.This())
	oc.InvokeVoid(view, framework.View, "setOnClickListener", l)
	oc.Return()
	l1 := fx.b.Class("fx/L1", framework.Object, framework.OnClickListener)
	l1.Field("outer", actCls)
	c1 := l1.Method("onClick", 1)
	o1 := c1.GetThis("outer")
	tk2 := c1.GetField(o1, actCls, "task")
	c1.InvokeVoid(tk2, "fx/T", "cancel")
	c1.Free(o1, actCls, "f")
	c1.Return()
	d, ctx := fx.detect(t)
	w := findWarning(t, d, "T.onProgressUpdate", "L1.onClick")
	applyFilter(ctx, d, chbFilter{})
	if w.Alive() {
		t.Error("CHB must prune task-callback uses vs cancel+free")
	}
}

// MA respects atomicity: against a background thread without a common
// lock, the getter-allocation assumption is not enough.
func TestMARequiresAtomicity(t *testing.T) {
	fx := newFixture()
	fx.act.Field("backing", valCls)
	g := fx.act.Method("getF", 0)
	r := g.GetThis("backing")
	g.ReturnReg(r)
	c1, o1 := fx.listener("fx/L1")
	got := c1.Invoke(o1, actCls, "getF")
	c1.PutField(o1, actCls, "f", got)
	f := c1.GetField(o1, actCls, "f")
	c1.Use(f, valCls)
	c1.Return()
	w := fx.b.ThreadClass("fx/W")
	w.Field("outer", actCls)
	run := w.Method("run", 0)
	o := run.GetThis("outer")
	run.Free(o, actCls, "f")
	run.Return()
	os := fx.act.Method("onStart", 0)
	th := os.New("fx/W")
	os.PutField(th, "fx/W", "outer", os.This())
	os.InvokeVoid(th, "fx/W", "start")
	os.Return()
	fx.register("fx/L1")
	d, ctx := fx.detect(t)
	warn := findWarning(t, d, "L1.onClick", "W.run")
	applyFilter(ctx, d, maFilter{})
	if !warn.Alive() {
		t.Error("MA must not prune against an unlocked background thread")
	}
}
