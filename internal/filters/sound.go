package filters

import (
	"nadroid/internal/ir"
	"nadroid/internal/uaf"
)

// mhbFilter prunes pairs where the use must happen before the free
// (§6.1.1): the dereference always completes before the field is
// nulled, so no UAF order exists.
type mhbFilter struct{}

func (mhbFilter) Name() string { return NameMHB }
func (mhbFilter) Sound() bool  { return true }

func (mhbFilter) Apply(ctx *Context, w *uaf.Warning) int {
	return w.RemovePairs(NameMHB, func(p uaf.ThreadPair) bool {
		return ctx.MHB.HB(p.Use, p.Free)
	})
}

// igFilter prunes pairs whose use is protected by an if-guard AND whose
// two sides are atomic with respect to each other — same looper, or a
// common lock (§6.1.2). The guard may be a dominating null check, or the
// use may itself be the guard load (its value flows only into the check).
type igFilter struct{}

func (igFilter) Name() string { return NameIG }
func (igFilter) Sound() bool  { return true }

func (igFilter) Apply(ctx *Context, w *uaf.Warning) int {
	mth := ctx.method(w.Use.Method)
	if mth == nil {
		return 0
	}
	guarded := isGuardedUse(mth, w.Use.Index) || isGuardLoad(mth, w.Use.Index)
	if !guarded {
		return 0
	}
	return w.RemovePairs(NameIG, func(p uaf.ThreadPair) bool {
		return ctx.atomicPair(w, p)
	})
}

// iaFilter prunes pairs whose use is dominated by a store of a fresh
// allocation into the same field (intra-allocation, §6.1.3), under the
// same atomicity condition as IG. Allocation via getter methods is NOT
// handled here — that is the unsound MA filter.
type iaFilter struct{}

func (iaFilter) Name() string { return NameIA }
func (iaFilter) Sound() bool  { return true }

func (iaFilter) Apply(ctx *Context, w *uaf.Warning) int {
	mth := ctx.method(w.Use.Method)
	if mth == nil {
		return 0
	}
	if !hasDominatingStoreOf(mth, w.Use.Index, ir.OriginNew) {
		return 0
	}
	return w.RemovePairs(NameIA, func(p uaf.ThreadPair) bool {
		return ctx.atomicPair(w, p)
	})
}
