// Package filters implements nAdroid's false-positive pruning stage
// (§6): three sound filters derived from Android's must-happens-before
// relations and atomicity guarantees, and six unsound filters derived
// from may-happens-before relations and common Android idioms. The
// unsound filters double as a ranking system: warnings they prune are
// deprioritized rather than trusted gone.
package filters

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"nadroid/internal/framework"
	"nadroid/internal/hb"
	"nadroid/internal/ir"
	"nadroid/internal/lockset"
	"nadroid/internal/obs"
	"nadroid/internal/pointsto"
	"nadroid/internal/race"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// Filter prunes thread pairs from one warning, returning how many pairs
// it removed.
type Filter interface {
	Name() string
	Sound() bool
	Apply(ctx *Context, w *uaf.Warning) int
}

// Context carries the shared immutable analyses filters consult.
type Context struct {
	D     *uaf.Detection
	Model *threadify.Model
	MHB   *hb.Graph
	Locks *lockset.Result
	// trustLooperAtomicity is the single-looper assumption of §8.1: two
	// looper callbacks never preempt each other. Apps with user-created
	// looper threads break it, downgrading IG/IA to lock-only atomicity.
	trustLooperAtomicity bool
	// accIdx resolves (thread, instr, kind) to the access record.
	accIdx map[accKey]race.Access
	// cancels caches per-thread cancellation operations (CHB).
	cancels map[int][]cancelOp
	// methodCache avoids re-fetching methods; mu guards it because
	// filters may apply to warnings concurrently.
	mu          sync.Mutex
	methodCache map[string]*ir.Method
}

// Options tunes the filter context.
type Options struct {
	// MultiLooper drops the single-looper atomicity assumption (§8.1):
	// the IG and IA filters then require a common lock even between
	// looper callbacks, making them behave like unsound filters demoted
	// to sound-under-locks.
	MultiLooper bool
}

type accKey struct {
	thread int
	instr  ir.InstrID
	kind   race.AccessKind
}

type cancelOp struct {
	kind      framework.CancelKind
	component string
	objs      []pointsto.ObjID
}

// NewContext builds the filter context: the MHB graph, lock sets, and
// access/cancellation indexes.
func NewContext(d *uaf.Detection) *Context { return NewContextWith(d, Options{}) }

// NewContextWith is NewContext with explicit options.
func NewContextWith(d *uaf.Detection, opts Options) *Context {
	return newContextMHB(d, opts, nil)
}

// newContextMHB builds the filter context around a prebuilt MHB graph
// (nil rebuilds it from the model).
func newContextMHB(d *uaf.Detection, opts Options, g *hb.Graph) *Context {
	if g == nil {
		g = hb.BuildMHB(d.Model)
	}
	ctx := &Context{
		D:                    d,
		Model:                d.Model,
		MHB:                  g,
		Locks:                lockset.Analyze(d.Model),
		trustLooperAtomicity: !opts.MultiLooper,
		accIdx:               make(map[accKey]race.Access),
		cancels:              make(map[int][]cancelOp),
		methodCache:          make(map[string]*ir.Method),
	}
	for _, a := range d.Race.Accesses {
		ctx.accIdx[accKey{a.Thread, a.Instr, a.Kind}] = a
	}
	ctx.indexCancels()
	return ctx
}

func (ctx *Context) method(ref string) *ir.Method {
	ctx.mu.Lock()
	m, ok := ctx.methodCache[ref]
	ctx.mu.Unlock()
	if ok {
		return m
	}
	m, err := ctx.Model.H.MethodByRef(ref)
	if err != nil {
		m = nil
	}
	ctx.mu.Lock()
	ctx.methodCache[ref] = m
	ctx.mu.Unlock()
	return m
}

// useAccess finds the use-side access of a warning for a thread pair.
func (ctx *Context) useAccess(w *uaf.Warning, p uaf.ThreadPair) (race.Access, bool) {
	a, ok := ctx.accIdx[accKey{p.Use, w.Use, race.Read}]
	return a, ok
}

// freeAccess finds the free-side access of a warning for a thread pair.
func (ctx *Context) freeAccess(w *uaf.Warning, p uaf.ThreadPair) (race.Access, bool) {
	a, ok := ctx.accIdx[accKey{p.Free, w.Free, race.NullWrite}]
	return a, ok
}

// atomicPair reports whether the two sides of the pair execute atomically
// with respect to each other: both on the single main looper (callbacks
// never preempt callbacks), or both holding a common lock (§6.1.2).
func (ctx *Context) atomicPair(w *uaf.Warning, p uaf.ThreadPair) bool {
	tu, tf := ctx.Model.Threads[p.Use], ctx.Model.Threads[p.Free]
	if ctx.trustLooperAtomicity && tu.Looper && tf.Looper {
		return true
	}
	ua, ok1 := ctx.useAccess(w, p)
	fa, ok2 := ctx.freeAccess(w, p)
	if !ok1 || !ok2 {
		return false
	}
	return ctx.Locks.CommonLock(ua.MCtx, ua.Index, fa.MCtx, fa.Index)
}

// indexCancels scans every thread's reachable code for cancellation API
// calls (§6.2.1 CHB).
func (ctx *Context) indexCancels() {
	m := ctx.Model
	for _, th := range m.Threads {
		if th.Kind == threadify.KindDummyMain {
			continue
		}
		var ops []cancelOp
		for mc := range m.Reach(th.ID) {
			mth := ctx.method(mc.Method)
			if mth == nil || mth.Abstract {
				continue
			}
			for _, in := range mth.Instrs {
				if in.Op != ir.OpInvoke {
					continue
				}
				kind := framework.ClassifyCancel(m.H, in.Callee.Class, in.Callee.Name)
				if kind == framework.CancelNone {
					continue
				}
				op := cancelOp{kind: kind}
				switch kind {
				case framework.CancelFinish:
					// The finished component: the receiver's class(es).
					for _, o := range m.PTS.PointsTo(mc.Method, mc.Recv, in.B) {
						op.component = m.PTS.Obj(o).Class
					}
					if op.component == "" {
						op.component = in.Callee.Class
					}
				case framework.CancelUnbindService, framework.CancelUnregisterReceiver:
					if len(in.Args) > 0 {
						op.objs = m.PTS.PointsTo(mc.Method, mc.Recv, in.Args[0])
					}
				case framework.CancelRemoveCallbacks, framework.CancelTask:
					op.objs = m.PTS.PointsTo(mc.Method, mc.Recv, in.B)
				}
				ops = append(ops, op)
			}
		}
		if len(ops) > 0 {
			ctx.cancels[th.ID] = ops
		}
	}
}

// Names of the standard filters, in pipeline order.
const (
	NameMHB = "MHB"
	NameIG  = "IG"
	NameIA  = "IA"
	NameRHB = "RHB"
	NameCHB = "CHB"
	NamePHB = "PHB"
	NameMA  = "MA"
	NameUR  = "UR"
	NameTT  = "TT"
)

// SoundFilters returns the §6.1 filters in order.
func SoundFilters() []Filter {
	return []Filter{mhbFilter{}, igFilter{}, iaFilter{}}
}

// UnsoundFilters returns the §6.2 filters in order.
func UnsoundFilters() []Filter {
	return []Filter{rhbFilter{}, chbFilter{}, phbFilter{}, maFilter{}, urFilter{}, ttFilter{}}
}

// ByName resolves filter names; unknown names return an error.
func ByName(names []string) ([]Filter, error) {
	all := append(SoundFilters(), UnsoundFilters()...)
	idx := make(map[string]Filter, len(all))
	for _, f := range all {
		idx[f.Name()] = f
	}
	var out []Filter
	for _, n := range names {
		f, ok := idx[n]
		if !ok {
			return nil, fmt.Errorf("filters: unknown filter %q", n)
		}
		out = append(out, f)
	}
	return out, nil
}

// Verdict is one filter's outcome on one warning: what it examined and
// what it decided, with a human-readable reason. A sequence of verdicts
// is the warning's filter trail — the §6 half of its evidence record.
type Verdict struct {
	// Filter is the filter name (MHB, IG, …).
	Filter string `json:"filter"`
	// Sound distinguishes §6.1 sound filters from §6.2 unsound ones.
	Sound bool `json:"sound"`
	// Kept reports whether the warning was still alive after the filter.
	Kept bool `json:"kept"`
	// PairsBefore / PairsRemoved count the warning's thread pairs going
	// in and how many this filter pruned.
	PairsBefore  int `json:"pairs_before"`
	PairsRemoved int `json:"pairs_removed,omitempty"`
	// Reason states the filter's criterion and whether it matched.
	Reason string `json:"reason"`
}

// filterCriterion states what each standard filter looks for, phrased
// so "matched: …" / "no pair matched: …" both read naturally.
var filterCriterion = map[string]string{
	NameMHB: "use must-happen-before free in the Android lifecycle MHB graph",
	NameIG:  "use is null-guarded and the guarded block is atomic with the free",
	NameIA:  "a dominating store of a fresh allocation precedes the use atomically",
	NameRHB: "onResume re-allocates the field after the onPause-path free",
	NameCHB: "a cancellation API stops the racing callback family first",
	NamePHB: "the use's callback transitively posted the free's callback on the same looper",
	NameMA:  "the loaded value comes from a getter treated as an allocation",
	NameUR:  "the loaded value is never dereferenced (only returned, compared, or passed on)",
	NameTT:  "both sides run on native threads (deprioritized, not dismissed)",
}

// Trail collects per-warning filter verdicts, keyed by uaf.Warning.Key.
// Safe for the filter pipeline's concurrent warning fan-out; verdicts
// land in pipeline order because filters run strictly one at a time.
type Trail struct {
	mu    sync.Mutex
	byKey map[string][]Verdict
}

// NewTrail returns an empty trail.
func NewTrail() *Trail { return &Trail{byKey: make(map[string][]Verdict)} }

// record appends one filter's verdict on one warning.
func (t *Trail) record(w *uaf.Warning, f Filter, before, removed int) {
	crit, ok := filterCriterion[f.Name()]
	if !ok {
		crit = "filter criterion"
	}
	v := Verdict{
		Filter:       f.Name(),
		Sound:        f.Sound(),
		Kept:         w.Alive(),
		PairsBefore:  before,
		PairsRemoved: removed,
	}
	switch {
	case removed == 0:
		v.Reason = "no pair matched: " + crit
	case v.Kept:
		v.Reason = fmt.Sprintf("matched %d of %d pair(s): %s", removed, before, crit)
	default:
		v.Reason = "matched every pair: " + crit
	}
	t.mu.Lock()
	t.byKey[w.Key()] = append(t.byKey[w.Key()], v)
	t.mu.Unlock()
}

// For returns the verdict sequence recorded for a warning key.
func (t *Trail) For(key string) []Verdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byKey[key]
}

// Stats reports the outcome of a pipeline run.
type Stats struct {
	// Potential is the warning count before filtering.
	Potential int
	// AfterSound is the count surviving the sound filters.
	AfterSound int
	// AfterUnsound is the count surviving sound + unsound filters.
	AfterUnsound int
	// Removed maps filter name to warnings it fully killed (sequential
	// attribution: a warning counts for the filter that removed its last
	// pair).
	Removed map[string]int
}

// RunConfig selects which filter passes RunWith applies.
type RunConfig struct {
	Options
	// SkipSound disables the §6.1 pass.
	SkipSound bool
	// SkipUnsound disables the §6.2 pass.
	SkipUnsound bool
	// Workers bounds each filter's fan-out across warnings
	// (0 = GOMAXPROCS, 1 = sequential). Filters still run strictly in
	// pipeline order, so attribution is identical for any setting.
	Workers int
	// MHB, when non-nil, is a prebuilt must-happen-before graph reused
	// from the shared detector context; nil rebuilds it from the model.
	MHB *hb.Graph
	// Trail, when non-nil, records every filter's verdict on every
	// warning it examined. Off by default: the record costs one entry
	// per (warning, filter) and is only wanted for evidence assembly.
	Trail *Trail
}

// Run applies the sound filters then the unsound filters in sequence,
// mutating the detection's warnings.
func Run(d *uaf.Detection) *Stats {
	return RunWith(context.Background(), d, RunConfig{})
}

// RunWith is the instrumented filter pipeline: the shared filter
// context (MHB graph + lock sets) and every individual filter run in
// their own spans, and each filter reports warnings examined, thread
// pairs removed, and warnings killed as per-filter pipeline counters.
func RunWith(octx context.Context, d *uaf.Detection, cfg RunConfig) *Stats {
	_, span := obs.Start(octx, "filters.context")
	ctx := newContextMHB(d, cfg.Options, cfg.MHB)
	span.End()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	obs.Add(octx, "filter_workers", int64(workers))

	st := &Stats{Potential: d.AliveCount(), Removed: make(map[string]int)}
	apply := func(fs []Filter) {
		for _, f := range fs {
			_, fspan := obs.Start(octx, "filter:"+f.Name(), obs.KV("sound", f.Sound()))
			alive := make([]*uaf.Warning, 0, len(d.Warnings))
			for _, w := range d.Warnings {
				if w.Alive() {
					alive = append(alive, w)
				}
			}
			examined := len(alive)
			pairsRemoved, killed := applyOne(ctx, f, alive, workers, cfg.Trail)
			if killed > 0 {
				st.Removed[f.Name()] += killed
			}
			fspan.SetAttr("examined", examined)
			fspan.SetAttr("pairs_removed", pairsRemoved)
			fspan.SetAttr("warnings_removed", killed)
			fspan.End()
			label := fmt.Sprintf("{filter=%q}", f.Name())
			obs.Add(octx, "filter_examined"+label, int64(examined))
			obs.Add(octx, "filter_pairs_removed"+label, int64(pairsRemoved))
			obs.Add(octx, "filter_warnings_removed"+label, int64(killed))
		}
	}
	if !cfg.SkipSound {
		apply(SoundFilters())
	}
	st.AfterSound = d.AliveCount()
	if !cfg.SkipUnsound {
		apply(UnsoundFilters())
	}
	st.AfterUnsound = d.AliveCount()
	return st
}

// applyOne applies one filter to every alive warning, fanning out across
// a bounded worker pool. Warnings are disjoint, so each is mutated by
// exactly one goroutine; the aggregate counters are order-independent,
// making the outcome identical to the sequential pass.
func applyOne(ctx *Context, f Filter, alive []*uaf.Warning, workers int, trail *Trail) (pairsRemoved, killed int) {
	if workers > len(alive) {
		workers = len(alive)
	}
	applyTo := func(w *uaf.Warning) int {
		before := len(w.Pairs)
		removed := f.Apply(ctx, w)
		if trail != nil {
			trail.record(w, f, before, removed)
		}
		return removed
	}
	if workers <= 1 {
		for _, w := range alive {
			pairsRemoved += applyTo(w)
			if !w.Alive() {
				killed++
			}
		}
		return pairsRemoved, killed
	}
	var next, pairsTotal, killedTotal atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pairs, dead := 0, 0
			for {
				j := int(next.Add(1)) - 1
				if j >= len(alive) {
					break
				}
				w := alive[j]
				pairs += applyTo(w)
				if !w.Alive() {
					dead++
				}
			}
			pairsTotal.Add(int64(pairs))
			killedTotal.Add(int64(dead))
		}()
	}
	wg.Wait()
	return int(pairsTotal.Load()), int(killedTotal.Load())
}

// MeasureIndependent evaluates each filter alone against the unfiltered
// warning set (Figure 5's methodology: "Each filter is evaluated
// independently, so there is overlap"). base selects the starting set:
// when baseSound is true, the sound filters are applied first and the
// unsound filters are measured against the survivors (Figure 5(b)).
// It returns warnings-removed per filter name plus the starting count.
func MeasureIndependent(d *uaf.Detection, fs []Filter, baseSound bool) (map[string]int, int) {
	ctx := NewContext(d)
	// Snapshot pair sets so each filter starts fresh.
	type snap struct {
		w     *uaf.Warning
		pairs []uaf.ThreadPair
	}
	prepare := func() []snap {
		var out []snap
		for _, w := range d.Warnings {
			out = append(out, snap{w, append([]uaf.ThreadPair(nil), w.Pairs...)}) //nolint:gocritic
		}
		return out
	}
	restore := func(s []snap) {
		for _, e := range s {
			e.w.Pairs = append(e.w.Pairs[:0], e.pairs...)
			e.w.FilteredBy = nil
		}
	}

	original := prepare()
	if baseSound {
		for _, f := range SoundFilters() {
			for _, w := range d.Warnings {
				if w.Alive() {
					f.Apply(ctx, w)
				}
			}
		}
	}
	baseline := prepare()
	start := d.AliveCount()

	removed := make(map[string]int)
	names := make([]string, 0, len(fs))
	for _, f := range fs {
		names = append(names, f.Name())
	}
	sort.Strings(names)
	for _, f := range fs {
		restore(baseline)
		before := d.AliveCount()
		for _, w := range d.Warnings {
			if w.Alive() {
				f.Apply(ctx, w)
			}
		}
		removed[f.Name()] = before - d.AliveCount()
	}
	restore(original)
	return removed, start
}

// entryName returns the bare method name of a thread's entry callback.
func entryName(t *threadify.Thread) string {
	if t.Kind == threadify.KindDummyMain {
		return ""
	}
	_, name, _ := ir.SplitRef(t.Entry.Method)
	return name
}
