// obs_test.go covers the observability surface added to the service:
// the /metrics exposition format (parser-based), the per-job trace
// endpoint, the JSON health check, and pprof gating.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"nadroid/internal/obs"
	"nadroid/internal/store"
)

// expoLine matches one Prometheus-style exposition line:
// name{labels} value  or  name value.
var expoLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.+eEIinf]+)$`)

// TestMetricsExposition parses every /metrics line after a real
// analysis: names are well-formed, values are numeric, histogram le
// labels are numeric milliseconds (not duration strings), buckets are
// cumulative-monotone, and the +Inf bucket equals the _count line.
func TestMetricsExposition(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, Store: st})
	resp, _ := postJSON(t, ts.URL+"/v1/analyze", map[string]string{"app": "ConnectBot"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status = %d", resp.StatusCode)
	}

	resp, data := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	text := string(data)

	type bucket struct {
		le  string
		val float64
	}
	buckets := map[string][]bucket{} // phase -> cumulative buckets in output order
	counts := map[string]float64{}
	var waitBuckets []bucket // nadroid_queue_wait_bucket in output order
	seen := map[string]bool{}
	vals := map[string]float64{} // last value per family (unlabeled families)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		m := expoLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable metrics line: %q", line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		seen[name] = true
		if labels == "" {
			vals[name] = val
		}
		switch name {
		case "nadroid_phase_latency_bucket":
			phase := labelValue(t, labels, "phase")
			le := labelValue(t, labels, "le")
			if le != "+Inf" {
				if _, err := strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("le label %q is not numeric (line %q)", le, line)
				}
			}
			buckets[phase] = append(buckets[phase], bucket{le, val})
		case "nadroid_phase_latency_count":
			counts[labelValue(t, labels, "phase")] = val
		case "nadroid_queue_wait_bucket":
			waitBuckets = append(waitBuckets, bucket{labelValue(t, labels, "le"), val})
		}
	}

	for _, name := range []string{
		"nadroid_build_info", "nadroid_jobs_done_total", "nadroid_cache_misses_total",
		"nadroid_go_goroutines", "nadroid_go_heap_alloc_bytes",
		"nadroid_store_hits_total", "nadroid_store_misses_total", "nadroid_store_puts_total",
		"nadroid_store_gc_removed_total", "nadroid_store_load_errors_total",
		"nadroid_store_runs", "nadroid_store_warm_loaded",
		"nadroid_store_bytes", "nadroid_ircache_bytes",
		"nadroid_suppressed_warnings_total",
	} {
		if !seen[name] {
			t.Errorf("metric family %s missing from exposition", name)
		}
	}
	// The analysis above was persisted, so the store families are live.
	if vals["nadroid_store_puts_total"] != 1 || vals["nadroid_store_runs"] != 1 {
		t.Errorf("store families not fed by the analysis: puts=%v runs=%v",
			vals["nadroid_store_puts_total"], vals["nadroid_store_runs"])
	}
	// The run wrote a cold-start blob and an incremental partition, so
	// the size gauges are non-zero (and the cache area is part of the
	// store total).
	if vals["nadroid_ircache_bytes"] <= 0 || vals["nadroid_store_bytes"] < vals["nadroid_ircache_bytes"] {
		t.Errorf("size gauges not live: store_bytes=%v ircache_bytes=%v",
			vals["nadroid_store_bytes"], vals["nadroid_ircache_bytes"])
	}

	// The analysis must have surfaced deep pipeline counters.
	for _, name := range []string{
		"nadroid_pipeline_pointsto_iterations",
		"nadroid_pipeline_datalog_facts",
		"nadroid_pipeline_race_pairs",
		"nadroid_pipeline_filter_examined",
	} {
		if !seen[name] {
			t.Errorf("pipeline counter %s missing; exposition:\n%s", name, text)
		}
	}

	// The queue gauge and wait histogram are live: exactly one job went
	// through the pool, so the wait histogram counted it and the depth
	// gauge is back to zero.
	if depth, ok := vals["nadroid_queue_depth"]; !ok || depth != 0 {
		t.Errorf("nadroid_queue_depth = %v (present=%v), want 0 after the sync analysis", depth, ok)
	}
	if len(waitBuckets) == 0 {
		t.Fatal("no nadroid_queue_wait_bucket lines rendered")
	}
	if last := waitBuckets[len(waitBuckets)-1]; last.le != "+Inf" || last.val != 1 {
		t.Errorf("queue wait +Inf bucket = %+v, want le=+Inf val=1", last)
	}
	prevWait := -1.0
	for _, bk := range waitBuckets {
		if bk.val < prevWait {
			t.Errorf("queue wait buckets not cumulative (%v after %v)", bk.val, prevWait)
		}
		prevWait = bk.val
	}
	if vals["nadroid_queue_wait_count"] != 1 {
		t.Errorf("nadroid_queue_wait_count = %v, want 1", vals["nadroid_queue_wait_count"])
	}
	if _, ok := vals["nadroid_queue_wait_sum_ms"]; !ok {
		t.Error("nadroid_queue_wait_sum_ms missing")
	}

	if len(buckets) == 0 {
		t.Fatal("no phase latency buckets rendered")
	}
	for phase, bs := range buckets {
		last := bs[len(bs)-1]
		if last.le != "+Inf" {
			t.Errorf("phase %s: last bucket le = %q, want +Inf", phase, last.le)
		}
		prevBound := -1.0
		prevCum := -1.0
		for _, bk := range bs {
			if bk.le != "+Inf" {
				bound, _ := strconv.ParseFloat(bk.le, 64)
				if bound <= prevBound {
					t.Errorf("phase %s: bucket bounds not increasing (%v after %v)", phase, bound, prevBound)
				}
				prevBound = bound
			}
			if bk.val < prevCum {
				t.Errorf("phase %s: cumulative count decreased (%v after %v)", phase, bk.val, prevCum)
			}
			prevCum = bk.val
		}
		if counts[phase] != last.val {
			t.Errorf("phase %s: _count %v != +Inf bucket %v", phase, counts[phase], last.val)
		}
	}

	// Stable ordering: two renders agree apart from runtime gauge values.
	_, data2 := getBody(t, ts.URL+"/metrics")
	if names1, names2 := lineNames(string(data)), lineNames(string(data2)); names1 != names2 {
		t.Errorf("metric line order unstable:\n%s\nvs\n%s", names1, names2)
	}
}

// labelValue extracts key="v" from a {…} label blob.
func labelValue(t *testing.T, labels, key string) string {
	t.Helper()
	re := regexp.MustCompile(key + `="([^"]*)"`)
	m := re.FindStringSubmatch(labels)
	if m == nil {
		t.Fatalf("label %s missing in %q", key, labels)
	}
	return m[1]
}

func lineNames(text string) string {
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		name, _, _ := strings.Cut(line, " ")
		b.WriteString(name)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestJobTraceEndpoint runs an async analysis and fetches its span tree:
// the acceptance criterion's nesting (analyze → modeling → pointsto.solve,
// detection with ≥2 sub-spans, filtering with per-filter children) must
// arrive over the wire, and ?format=chrome must serve parseable
// trace_event JSON.
func TestJobTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, data := postJSON(t, ts.URL+"/v1/analyze?async=true", map[string]string{"app": "ConnectBot"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status = %d: %s", resp.StatusCode, data)
	}
	var jw JobWire
	if err := json.Unmarshal(data, &jw); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, data = getBody(t, fmt.Sprintf("%s/v1/jobs/%s", ts.URL, jw.ID))
		if err := json.Unmarshal(data, &jw); err != nil {
			t.Fatal(err)
		}
		if jw.State == StateDone {
			break
		}
		if jw.State == StateFailed || jw.State == StateCanceled {
			t.Fatalf("job ended %s: %s", jw.State, jw.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after 30s", jw.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, data = getBody(t, fmt.Sprintf("%s/v1/jobs/%s/trace", ts.URL, jw.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d: %s", resp.StatusCode, data)
	}
	var tw struct {
		Job   string          `json:"job"`
		Spans int             `json:"spans"`
		Roots []*obs.SpanNode `json:"roots"`
	}
	if err := json.Unmarshal(data, &tw); err != nil {
		t.Fatalf("trace body not JSON: %v\n%s", err, data)
	}
	if tw.Job != jw.ID || tw.Spans == 0 || len(tw.Roots) != 1 {
		t.Fatalf("trace envelope = %+v, want job %s with one root", tw, jw.ID)
	}
	analyze := tw.Roots[0]
	if analyze.Name != "analyze" {
		t.Fatalf("root span = %q, want analyze", analyze.Name)
	}
	child := func(n *obs.SpanNode, name string) *obs.SpanNode {
		for _, c := range n.Children {
			if c.Name == name {
				return c
			}
		}
		t.Fatalf("span %q has no child %q (children: %v)", n.Name, name, spanNames(n.Children))
		return nil
	}
	modeling := child(analyze, "modeling")
	child(modeling, "pointsto.solve")
	detection := child(analyze, "detection")
	if len(detection.Children) < 2 {
		t.Fatalf("detection children = %v, want ≥2 sub-spans", spanNames(detection.Children))
	}
	filtering := child(analyze, "filtering")
	var filterSpans int
	for _, c := range filtering.Children {
		if strings.HasPrefix(c.Name, "filter:") {
			filterSpans++
		}
	}
	if filterSpans < 2 {
		t.Fatalf("filtering children = %v, want ≥2 filter:* spans", spanNames(filtering.Children))
	}

	resp, data = getBody(t, fmt.Sprintf("%s/v1/jobs/%s/trace?format=chrome", ts.URL, jw.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome trace status = %d", resp.StatusCode)
	}
	var chrome struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &chrome); err != nil {
		t.Fatalf("chrome trace not JSON: %v", err)
	}
	if len(chrome.TraceEvents) != tw.Spans {
		t.Fatalf("chrome events = %d, want %d (one per span)", len(chrome.TraceEvents), tw.Spans)
	}

	// Unknown jobs and bad subresources still 404.
	resp, _ = getBody(t, ts.URL+"/v1/jobs/job-99999999/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace status = %d, want 404", resp.StatusCode)
	}
	resp, _ = getBody(t, fmt.Sprintf("%s/v1/jobs/%s/bogus", ts.URL, jw.ID))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus subresource status = %d, want 404", resp.StatusCode)
	}
}

// TestSpanBudgetDropped forces a tiny per-job span budget and checks the
// loss is visible on both surfaces: the trace response's "dropped" field
// and the nadroid_pipeline_spans_dropped counter in /metrics.
func TestSpanBudgetDropped(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SpanLimit: 3})

	resp, data := postJSON(t, ts.URL+"/v1/analyze?async=true", map[string]string{"app": "ConnectBot"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status = %d: %s", resp.StatusCode, data)
	}
	var jw JobWire
	if err := json.Unmarshal(data, &jw); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for jw.State != StateDone {
		if jw.State == StateFailed || jw.State == StateCanceled {
			t.Fatalf("job ended %s: %s", jw.State, jw.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after 30s", jw.State)
		}
		time.Sleep(10 * time.Millisecond)
		_, data = getBody(t, fmt.Sprintf("%s/v1/jobs/%s", ts.URL, jw.ID))
		if err := json.Unmarshal(data, &jw); err != nil {
			t.Fatal(err)
		}
	}

	_, data = getBody(t, fmt.Sprintf("%s/v1/jobs/%s/trace", ts.URL, jw.ID))
	var tw struct {
		Spans   int `json:"spans"`
		Dropped int `json:"dropped"`
	}
	if err := json.Unmarshal(data, &tw); err != nil {
		t.Fatalf("trace body not JSON: %v\n%s", err, data)
	}
	if tw.Spans != 3 || tw.Dropped == 0 {
		t.Errorf("trace = %+v, want exactly 3 spans kept and a nonzero dropped count", tw)
	}

	_, data = getBody(t, ts.URL+"/metrics")
	line := ""
	for _, l := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(l, "nadroid_pipeline_spans_dropped ") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("nadroid_pipeline_spans_dropped missing from /metrics")
	}
	n, err := strconv.Atoi(strings.TrimPrefix(line, "nadroid_pipeline_spans_dropped "))
	if err != nil || n != tw.Dropped {
		t.Errorf("spans_dropped counter = %q, want %d (the trace's dropped count)", line, tw.Dropped)
	}
}

func spanNames(nodes []*obs.SpanNode) []string {
	var out []string
	for _, n := range nodes {
		out = append(out, n.Name)
	}
	return out
}

// TestHealthzBuildInfo checks the JSON health document carries the
// build/version facts.
func TestHealthzBuildInfo(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	resp, data := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var h struct {
		Status    string `json:"status"`
		Workers   int    `json:"workers"`
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
		KDefault  int    `json:"k_default"`
	}
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, data)
	}
	if h.Status != "ok" || h.Workers != 3 {
		t.Errorf("healthz = %+v, want status ok / workers 3", h)
	}
	if h.Version == "" || !strings.HasPrefix(h.GoVersion, "go") || h.KDefault != 2 {
		t.Errorf("build info = %+v, want version, goX.Y, k_default 2", h)
	}
}

// TestPprofGating: the profiler is mounted only when asked for.
func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, _ := getBody(t, off.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without flag status = %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, data := getBody(t, on.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "goroutine") {
		t.Errorf("pprof index status = %d, want 200 with profile listing", resp.StatusCode)
	}
}

// TestValidationMetricsExposition runs a store-backed, validated
// analysis and asserts the validation counter families — schedule
// executions, prune counts, and witness-cache traffic — surface both in
// the /metrics exposition and in the per-job trace's counter snapshot.
func TestValidationMetricsExposition(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, Store: st})

	resp, data := postJSON(t, ts.URL+"/v1/analyze?async=true", map[string]interface{}{
		"app":     "Aard", // deep enough searches for the pruner to collapse classes
		"options": map[string]interface{}{"validate": true, "max_schedules": 500},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status = %d: %s", resp.StatusCode, data)
	}
	var jw JobWire
	if err := json.Unmarshal(data, &jw); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, data = getBody(t, fmt.Sprintf("%s/v1/jobs/%s", ts.URL, jw.ID))
		if err := json.Unmarshal(data, &jw); err != nil {
			t.Fatal(err)
		}
		if jw.State == StateDone {
			break
		}
		if jw.State == StateFailed || jw.State == StateCanceled {
			t.Fatalf("job ended %s: %s", jw.State, jw.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after 60s", jw.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	families := []string{
		"nadroid_pipeline_validation_schedules_executed",
		"nadroid_pipeline_validation_schedules_pruned",
		"nadroid_pipeline_validation_witness_cache_hits",
		"nadroid_pipeline_validation_witness_cache_misses",
		"nadroid_pipeline_ircache_misses",
	}

	resp, expo := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	vals := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(string(expo), "\n"), "\n") {
		m := expoLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable metrics line: %q", line)
		}
		if m[2] == "" {
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("non-numeric value in %q: %v", line, err)
			}
			vals[m[1]] = v
		}
	}
	for _, name := range families {
		if _, ok := vals[name]; !ok {
			t.Errorf("metric family %s missing from exposition", name)
		}
	}
	if vals["nadroid_pipeline_validation_schedules_executed"] <= 0 {
		t.Errorf("validation_schedules_executed = %v, want > 0",
			vals["nadroid_pipeline_validation_schedules_executed"])
	}
	if vals["nadroid_pipeline_validation_schedules_pruned"] <= 0 {
		t.Errorf("validation_schedules_pruned = %v, want > 0 (pruner not biting)",
			vals["nadroid_pipeline_validation_schedules_pruned"])
	}
	// First run against an empty store: every witness lookup missed.
	if vals["nadroid_pipeline_validation_witness_cache_misses"] <= 0 {
		t.Errorf("witness_cache_misses = %v, want > 0 on a cold store",
			vals["nadroid_pipeline_validation_witness_cache_misses"])
	}

	// The same counters ride on the finished job's trace response.
	resp, data = getBody(t, fmt.Sprintf("%s/v1/jobs/%s/trace", ts.URL, jw.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d: %s", resp.StatusCode, data)
	}
	var tw struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &tw); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"validation_schedules_executed", "validation_schedules_pruned",
		"validation_witness_cache_misses",
	} {
		if tw.Counters[name] <= 0 {
			t.Errorf("per-job trace counter %s = %d, want > 0", name, tw.Counters[name])
		}
	}
}
