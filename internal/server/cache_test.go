package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestResultKeyContentAddressing(t *testing.T) {
	a := ResultKey("app demo\n", OptionsWire{})
	b := ResultKey("app demo\n", OptionsWire{K: 2}) // K=2 is the normalized default
	if a != b {
		t.Error("default and explicit-default options must share a key")
	}
	if ResultKey("app demo\n", OptionsWire{MultiLooper: true}) == a {
		t.Error("different options must change the key")
	}
	if ResultKey("app other\n", OptionsWire{}) == a {
		t.Error("different programs must change the key")
	}
	// MaxSchedules is only meaningful when validating.
	if ResultKey("app demo\n", OptionsWire{MaxSchedules: 99}) != a {
		t.Error("max_schedules without validate must not split entries")
	}
	if ResultKey("app demo\n", OptionsWire{Validate: true, MaxSchedules: 99}) ==
		ResultKey("app demo\n", OptionsWire{Validate: true, MaxSchedules: 100}) {
		t.Error("max_schedules with validate must split entries")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	k1, k2, k3 := CacheKey("k1"), CacheKey("k2"), CacheKey("k3")
	c.Put(k1, &ResultWire{App: "1"})
	c.Put(k2, &ResultWire{App: "2"})
	if _, ok := c.Get(k1); !ok { // bump k1 to most-recent
		t.Fatal("k1 must be present")
	}
	c.Put(k3, &ResultWire{App: "3"}) // evicts k2, the LRU entry
	if _, ok := c.Get(k2); ok {
		t.Error("k2 must have been evicted")
	}
	if _, ok := c.Get(k1); !ok {
		t.Error("k1 must have survived (recently used)")
	}
	if _, ok := c.Get(k3); !ok {
		t.Error("k3 must be present")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	hits, misses := c.Counters()
	if hits != 3 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", hits, misses)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache(4)
	k := CacheKey("k")
	c.Put(k, &ResultWire{App: "old"})
	c.Put(k, &ResultWire{App: "new"})
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
	res, ok := c.Get(k)
	if !ok || res.App != "new" {
		t.Errorf("got %+v, want the refreshed value", res)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := CacheKey(fmt.Sprintf("k%d", (g+i)%16))
				if i%3 == 0 {
					c.Put(k, &ResultWire{App: string(k)})
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("len = %d exceeds capacity", c.Len())
	}
}
