package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nadroid/internal/corpus"
	"nadroid/internal/dexasm"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestAnalyzeConnectBotDexasmAndCacheHit is the acceptance scenario:
// ConnectBot submitted as dexasm over loopback HTTP returns the paper's
// 13 warnings as JSON, and an identical resubmission is a cache hit.
func TestAnalyzeConnectBotDexasmAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	app, ok := corpus.ByName("ConnectBot")
	if !ok {
		t.Fatal("missing corpus app")
	}
	src := dexasm.Format(app.Build())
	req := AnalyzeRequest{Dexasm: src}

	resp, data := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var res ResultWire
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("bad result JSON: %v", err)
	}
	if res.App != "ConnectBot" {
		t.Errorf("app = %q, want ConnectBot", res.App)
	}
	if res.Stats.AfterUnsound != 13 || len(res.Warnings) != 13 {
		t.Errorf("warnings = %d (stats %d), want the paper's 13",
			len(res.Warnings), res.Stats.AfterUnsound)
	}
	if res.Cached {
		t.Error("first submission must not be a cache hit")
	}
	if res.Timing.DetectionMS <= 0 {
		t.Error("timing must be populated")
	}

	// Resubmit with cosmetic dexasm differences: comments and blank
	// lines must not split the cache entry (content addressing is over
	// the canonical re-format).
	req.Dexasm = "# resubmission\n\n" + src
	resp, data = postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var res2 ResultWire
	if err := json.Unmarshal(data, &res2); err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Error("identical resubmission must be served from cache")
	}
	if len(res2.Warnings) != 13 {
		t.Errorf("cached warnings = %d, want 13", len(res2.Warnings))
	}

	_, metrics := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"nadroid_cache_hits_total 1",
		"nadroid_cache_misses_total 1",
		"nadroid_jobs_done_total 1",
		`nadroid_phase_latency_count{phase="detection"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Different options → different cache key → a fresh run.
	req.Options = OptionsWire{SkipUnsoundFilters: true}
	resp, data = postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var res3 ResultWire
	if err := json.Unmarshal(data, &res3); err != nil {
		t.Fatal(err)
	}
	if res3.Cached {
		t.Error("different options must not share a cache entry")
	}
	if res3.Stats.AfterUnsound != 14 {
		t.Errorf("sound-only survivors = %d, want 14", res3.Stats.AfterUnsound)
	}
}

// TestAsyncJobLifecycle submits async and polls the job to completion.
func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, data := postJSON(t, ts.URL+"/v1/analyze?async=true", AnalyzeRequest{App: "ToDoList"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var jw JobWire
	if err := json.Unmarshal(data, &jw); err != nil {
		t.Fatal(err)
	}
	if jw.ID == "" {
		t.Fatal("async submission must return a job id")
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		_, data = getBody(t, ts.URL+"/v1/jobs/"+jw.ID)
		if err := json.Unmarshal(data, &jw); err != nil {
			t.Fatal(err)
		}
		if jw.State == StateDone {
			break
		}
		if jw.State == StateFailed || jw.State == StateCanceled {
			t.Fatalf("job ended %s: %s", jw.State, jw.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", jw.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if jw.Result == nil || jw.Result.App != "ToDoList" {
		t.Fatalf("done job must carry its result: %+v", jw)
	}

	resp, _ = getBody(t, ts.URL+"/v1/jobs/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestCancelInFlightJob cancels a running analysis via DELETE and
// expects the cancellation-aware pipeline to abort it (Mms is the
// corpus's slowest app; its detection phase alone gives a >100ms
// cancellation window).
func TestCancelInFlightJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, data := postJSON(t, ts.URL+"/v1/analyze?async=true", AnalyzeRequest{
		App:     "Mms",
		Options: OptionsWire{Validate: true, MaxSchedules: 1_000_000},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var jw JobWire
	if err := json.Unmarshal(data, &jw); err != nil {
		t.Fatal(err)
	}

	// Wait until it is actually in flight, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, data = getBody(t, ts.URL+"/v1/jobs/"+jw.ID)
		if err := json.Unmarshal(data, &jw); err != nil {
			t.Fatal(err)
		}
		if jw.State != StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
	}
	if jw.State != StateRunning {
		t.Fatalf("job state %s before cancel, want running", jw.State)
	}
	httpReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jw.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http.DefaultClient.Do(httpReq); err != nil {
		t.Fatal(err)
	}

	for {
		_, data = getBody(t, ts.URL+"/v1/jobs/"+jw.ID)
		if err := json.Unmarshal(data, &jw); err != nil {
			t.Fatal(err)
		}
		if jw.State != StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancel never took effect")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if jw.State != StateCanceled {
		t.Fatalf("job state %s, want canceled", jw.State)
	}
	if jw.Result != nil {
		t.Error("canceled job must not carry a result")
	}

	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "nadroid_jobs_canceled_total 1") {
		t.Errorf("metrics missing canceled counter:\n%s", metrics)
	}
}

// TestPerJobDeadline submits with a timeout far too small for the
// analysis and expects a canceled (deadline-aborted) job.
func TestPerJobDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, data := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		App:       "Mms",
		TimeoutMS: 1,
	})
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("1ms deadline must not complete an Mms run: %s", data)
	}
	var ae apiError
	if err := json.Unmarshal(data, &ae); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ae.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", ae.Error)
	}
}

func TestAppsHealthzAndBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, data := getBody(t, ts.URL+"/v1/apps")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apps: status %d", resp.StatusCode)
	}
	var apps []AppWire
	if err := json.Unmarshal(data, &apps); err != nil {
		t.Fatal(err)
	}
	if len(apps) != 27 {
		t.Errorf("apps = %d, want the 27-app corpus", len(apps))
	}
	seen := false
	for _, a := range apps {
		if a.Name == "ConnectBot" && a.TrueHarmful == 13 {
			seen = true
		}
	}
	if !seen {
		t.Error("corpus listing must include ConnectBot with 13 seeded bugs")
	}

	resp, data = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "ok") {
		t.Errorf("healthz: %d %q", resp.StatusCode, data)
	}

	for name, body := range map[string]interface{}{
		"neither":     AnalyzeRequest{},
		"both":        AnalyzeRequest{App: "ConnectBot", Dexasm: "app x\n"},
		"unknown app": AnalyzeRequest{App: "NoSuchApp"},
		"bad dexasm":  AnalyzeRequest{Dexasm: "class oops"},
	} {
		resp, _ := postJSON(t, ts.URL+"/v1/analyze", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestShutdownDrainsAndRejects verifies graceful shutdown: in-flight
// work completes, later submissions are turned away.
func TestShutdownDrainsAndRejects(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, data := postJSON(t, ts.URL+"/v1/analyze?async=true", AnalyzeRequest{App: "ToDoList"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var jw JobWire
	if err := json.Unmarshal(data, &jw); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	_, data = getBody(t, ts.URL+"/v1/jobs/"+jw.ID)
	if err := json.Unmarshal(data, &jw); err != nil {
		t.Fatal(err)
	}
	if jw.State != StateDone {
		t.Errorf("drained job state = %s, want done", jw.State)
	}

	// Cache hits are still served during shutdown (they cost nothing)…
	resp, data = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{App: "ToDoList"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-shutdown cached submit: status %d, want 200", resp.StatusCode)
	}
	var cached ResultWire
	if err := json.Unmarshal(data, &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Error("post-shutdown hit must come from the cache")
	}
	// …but anything needing a worker is turned away.
	resp, _ = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{App: "Browser"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit: status %d, want 503", resp.StatusCode)
	}
}

// TestConcurrentSubmissions hammers the sync endpoint from several
// goroutines (race-detector fodder for the pool + cache).
func TestConcurrentSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	apps := []string{"ToDoList", "ToDoList", "Swiftnotes", "Swiftnotes", "ClipStack", "ClipStack"}
	errc := make(chan error, len(apps))
	for _, name := range apps {
		go func(name string) {
			buf, err := json.Marshal(AnalyzeRequest{App: name})
			if err != nil {
				errc <- err
				return
			}
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(buf))
			if err != nil {
				errc <- err
				return
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errc <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("%s: status %d: %s", name, resp.StatusCode, data)
				return
			}
			var res ResultWire
			if err := json.Unmarshal(data, &res); err != nil {
				errc <- err
				return
			}
			if res.App != name {
				errc <- fmt.Errorf("got app %q, want %q", res.App, name)
				return
			}
			errc <- nil
		}(name)
	}
	for range apps {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}

	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "nadroid_queue_depth 0") {
		t.Errorf("queue must drain to zero:\n%s", metrics)
	}
}
