// Package server is the nadroid-serve subsystem: an HTTP JSON API that
// runs the nAdroid pipeline as a service. Requests (dexasm payloads or
// corpus app names) flow through a bounded worker pool with a FIFO
// queue; results are memoized in a content-addressed LRU cache keyed by
// canonical program text + normalized options; every job gets a
// cancelable context with an optional deadline that the pipeline
// honors between phases (and per schedule during validation).
//
// Endpoints:
//
//	POST   /v1/analyze             analyze (sync; ?async=true returns a job ID)
//	GET    /v1/jobs/{id}           job status + result
//	DELETE /v1/jobs/{id}           cancel a queued or running job
//	GET    /v1/jobs/{id}/trace     span tree of a finished job (?format=chrome)
//	GET    /v1/apps                corpus listing
//	GET    /v1/apps/{app}/runs     stored analysis history (requires Config.Store)
//	GET    /v1/apps/{app}/diff     delta between two runs (?from=&to=, default latest pair)
//	GET    /v1/apps/{app}/warnings/{fp}/explain
//	                               provenance record of one warning (?format=text renders
//	                               the human tree; fp may be a unique prefix)
//	GET    /healthz                liveness + build info JSON
//	GET    /metrics                plain-text counters, histograms, pipeline families
//	GET    /debug/pprof/*          Go profiler (only with Config.EnablePprof)
//
// With Config.Store set, every completed analysis is persisted as a
// run record (the disk tier of the result cache — a restarted service
// serves previously analyzed programs as cache hits), results are
// filtered through the app's baseline when one exists, and the
// run-history endpoints come alive.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"

	"nadroid"
	"nadroid/internal/apk"
	"nadroid/internal/buildinfo"
	"nadroid/internal/corpus"
	"nadroid/internal/dexasm"
	"nadroid/internal/evidence"
	"nadroid/internal/obs"
	"nadroid/internal/store"
)

// Config sizes the service.
type Config struct {
	// Workers is the analysis concurrency (default 4).
	Workers int
	// PipelineWorkers bounds each job's intra-pipeline worker pools (the
	// detection Datalog engines, per-filter warning fan-out, validation
	// sweep). Default: NumCPU/Workers, at least 1, so concurrent jobs
	// share the machine instead of each fanning out to every core.
	// Worker counts never change analysis results.
	PipelineWorkers int
	// QueueDepth bounds the FIFO job queue (default 64).
	QueueDepth int
	// CacheEntries bounds the result cache (default 256).
	CacheEntries int
	// DefaultTimeout applies to jobs that set no timeout_ms; zero means
	// no deadline.
	DefaultTimeout time.Duration
	// MaxDexasmBytes bounds the request body (default 8 MiB).
	MaxDexasmBytes int64
	// SpanLimit bounds each job's trace to this many spans (0 =
	// obs.DefaultSpanLimit). Spans past the budget are counted rather
	// than recorded: the trace response reports them as "dropped" and
	// /metrics grows nadroid_pipeline_spans_dropped.
	SpanLimit int
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profiler exposes stack traces and should not face
	// untrusted traffic.
	EnablePprof bool
	// Logger receives structured job lifecycle logs (job id, app, phase
	// timings). Nil means no logging.
	Logger *slog.Logger
	// Store, when non-nil, persists every completed analysis and backs
	// the run-history and diff endpoints. On startup the result cache is
	// warm-started from the store's payloads.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.PipelineWorkers <= 0 {
		c.PipelineWorkers = runtime.NumCPU() / c.Workers
		if c.PipelineWorkers < 1 {
			c.PipelineWorkers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.MaxDexasmBytes <= 0 {
		c.MaxDexasmBytes = 8 << 20
	}
	return c
}

// Server implements http.Handler.
type Server struct {
	cfg     Config
	cache   *Cache
	pool    *Pool
	metrics *Metrics
	store   *store.Store
	mux     *http.ServeMux
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheEntries),
		metrics: NewMetrics(),
		store:   cfg.Store,
	}
	s.warmStart()
	s.pool = NewPool(cfg.Workers, cfg.QueueDepth, s.metrics)
	s.pool.spanLimit = cfg.SpanLimit
	if cfg.Logger != nil {
		s.pool.SetLogger(cfg.Logger)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/v1/apps", s.handleApps)
	s.mux.HandleFunc("/v1/apps/", s.handleAppHistory)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// warmStart preloads the result cache from the store's persisted
// payloads so a restarted service answers previously analyzed programs
// without recomputing. Newest runs win the LRU budget.
func (s *Server) warmStart() {
	if s.store == nil {
		return
	}
	runs := s.store.All() // newest first
	if len(runs) > s.cfg.CacheEntries {
		runs = runs[:s.cfg.CacheEntries]
	}
	loaded := 0
	// Insert oldest-to-newest so the newest run ends most recently used.
	for i := len(runs) - 1; i >= 0; i-- {
		r := runs[i]
		if len(r.Payload) == 0 {
			continue
		}
		var res ResultWire
		if err := json.Unmarshal(r.Payload, &res); err != nil {
			if s.cfg.Logger != nil {
				s.cfg.Logger.Warn("store payload unreadable, skipping warm start entry",
					"run", r.ID, "error", err)
			}
			continue
		}
		s.applyStoreBaseline(&res)
		s.cache.Put(CacheKey(r.ID), &res)
		loaded++
	}
	s.metrics.SetWarmLoaded(loaded)
	if s.cfg.Logger != nil && loaded > 0 {
		s.cfg.Logger.Info("warm-started result cache from store", "entries", loaded)
	}
}

// applyStoreBaseline suppresses baselined warnings in a result about to
// enter the cache. Stored runs stay pristine; the baseline is applied
// when a result is (re)materialized, so edits to a baseline take effect
// on the next analysis or restart without rewriting history.
func (s *Server) applyStoreBaseline(res *ResultWire) {
	if s.store == nil {
		return
	}
	base, ok := s.store.Baseline(res.App)
	if !ok {
		return
	}
	if n := ApplyBaseline(res, base); n > 0 {
		s.metrics.AddSuppressed(n)
	}
}

// ServeHTTP dispatches to the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the counter set (tests and embedders).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Shutdown drains the pool (see Pool.Shutdown).
func (s *Server) Shutdown(ctx context.Context) error { return s.pool.Shutdown(ctx) }

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// resolveRequest turns an AnalyzeRequest into a package plus the
// canonical dexasm text that addresses its cache entry. Dexasm payloads
// are canonicalized by re-formatting the parsed package, so formatting
// differences (comments, blank lines, ordering the formatter fixes)
// cannot split cache entries for the same program.
func resolveRequest(req *AnalyzeRequest) (*apk.Package, string, error) {
	switch {
	case req.App != "" && req.Dexasm != "":
		return nil, "", errors.New("set exactly one of app or dexasm, not both")
	case req.App != "":
		app, ok := corpus.ByName(req.App)
		if !ok {
			return nil, "", fmt.Errorf("unknown corpus app %q (GET /v1/apps lists them)", req.App)
		}
		pkg := app.Build()
		return pkg, dexasm.Format(pkg), nil
	case req.Dexasm != "":
		pkg, err := dexasm.Parse(req.Dexasm)
		if err != nil {
			return nil, "", err
		}
		return pkg, dexasm.Format(pkg), nil
	default:
		return nil, "", errors.New("set app (corpus name) or dexasm (program text)")
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req AnalyzeRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxDexasmBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	pkg, canonical, err := resolveRequest(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := req.Options.Check(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	key := ResultKey(canonical, req.Options)
	if res, ok := s.cache.Get(key); ok {
		hit := *res
		hit.Cached = true
		writeJSON(w, http.StatusOK, &hit)
		return
	}
	// Disk tier: a run persisted by an earlier process (or evicted from
	// the LRU) still answers without re-analysis.
	if res, ok := s.storedResult(key); ok {
		s.cache.Put(key, res)
		hit := *res
		hit.Cached = true
		writeJSON(w, http.StatusOK, &hit)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	opts := req.Options.ToOptions()
	opts.Workers = s.cfg.PipelineWorkers
	digest := store.IRDigest(canonical)
	if s.store != nil {
		// Store-backed servers run warm by default: modeled IR and witness
		// outcomes are reused across processes keyed by the program digest.
		opts.Store = s.store
		opts.IRCache = true
		// Store-backed servers also diff automatically: a changed program
		// anchors on the nearest stored run and re-analyzes only deltas.
		opts.Incremental = true
		opts.IRDigest = digest
	}
	appName := pkg.Name
	job, err := s.pool.Submit(appName, timeout, func(ctx context.Context) (*ResultWire, error) {
		res, err := nadroid.AnalyzeContext(ctx, pkg, opts)
		if err != nil {
			return nil, err
		}
		out := EncodeResult(appName, res)
		s.metrics.ObserveTiming(out.Timing)
		if res.Detect != nil {
			s.metrics.AddDetectorWarnings(res.Detect.Counts)
		}
		s.persistRun(key, req.Options, out, digest)
		s.applyStoreBaseline(out)
		s.cache.Put(key, out)
		return out, nil
	})
	if err != nil {
		status := http.StatusServiceUnavailable
		writeError(w, status, "%v", err)
		return
	}

	if r.URL.Query().Get("async") == "true" {
		writeJSON(w, http.StatusAccepted, job.Status())
		return
	}

	select {
	case <-job.Done():
	case <-r.Context().Done():
		// The client went away: stop burning CPU on its behalf.
		job.Cancel()
		<-job.Done()
	}
	st := job.Status()
	switch st.State {
	case StateDone:
		writeJSON(w, http.StatusOK, st.Result)
	case StateCanceled:
		writeError(w, http.StatusRequestTimeout, "analysis canceled: %s", st.Error)
	default:
		writeError(w, http.StatusInternalServerError, "analysis failed: %s", st.Error)
	}
}

// storedResult materializes a cached result from the store's disk tier.
func (s *Server) storedResult(key CacheKey) (*ResultWire, bool) {
	if s.store == nil {
		return nil, false
	}
	run, ok := s.store.Get(string(key))
	if !ok || len(run.Payload) == 0 {
		return nil, false
	}
	var res ResultWire
	if err := json.Unmarshal(run.Payload, &res); err != nil {
		if s.cfg.Logger != nil {
			s.cfg.Logger.Warn("store payload unreadable", "run", run.ID, "error", err)
		}
		return nil, false
	}
	s.applyStoreBaseline(&res)
	return &res, true
}

// persistRun writes a completed analysis to the store (pristine, before
// baseline suppression). Persistence failures are logged, never fatal:
// the analysis still answers from memory.
func (s *Server) persistRun(key CacheKey, opts OptionsWire, res *ResultWire, digest string) {
	if s.store == nil {
		return
	}
	run, err := StoreRun(key, opts, res, time.Now())
	if err == nil {
		run.IRDigest = digest
		err = s.store.Put(run)
	}
	if err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("persisting run failed", "app", res.App, "error", err)
	}
}

// handleAppHistory serves the store-backed per-app endpoints:
// GET /v1/apps/{app}/runs and GET /v1/apps/{app}/diff?from=&to=.
func (s *Server) handleAppHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/apps/")
	// The final segment selects the view; the app name may itself
	// contain slashes (dexasm package paths).
	cut := strings.LastIndex(rest, "/")
	if cut <= 0 {
		writeError(w, http.StatusNotFound, "want /v1/apps/{app}/runs or /v1/apps/{app}/diff")
		return
	}
	app, view := rest[:cut], rest[cut+1:]
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable, "no store configured (start nadroid-serve with -store-dir)")
		return
	}
	if view == "explain" {
		// /v1/apps/{app}/warnings/{fp}/explain — the app name may contain
		// slashes, so split on the /warnings/ marker, not positionally.
		mark := strings.LastIndex(app, "/warnings/")
		if mark <= 0 {
			writeError(w, http.StatusNotFound, "want /v1/apps/{app}/warnings/{fingerprint}/explain")
			return
		}
		s.handleExplain(w, r, app[:mark], app[mark+len("/warnings/"):])
		return
	}
	switch view {
	case "runs":
		runs := s.store.Runs(app)
		if len(runs) == 0 {
			writeError(w, http.StatusNotFound, "no stored runs for app %q", app)
			return
		}
		out := make([]RunWire, 0, len(runs))
		for _, run := range runs {
			out = append(out, RunToWire(run))
		}
		writeJSON(w, http.StatusOK, out)
	case "diff":
		d, err := s.store.Diff(app, r.URL.Query().Get("from"), r.URL.Query().Get("to"))
		if err != nil {
			status := http.StatusBadRequest
			if len(s.store.Runs(app)) == 0 {
				status = http.StatusNotFound
			}
			writeError(w, status, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, d)
	default:
		writeError(w, http.StatusNotFound, "unknown view %q (want runs or diff)", view)
	}
}

// handleExplain serves one warning's provenance record from the newest
// stored run that carries evidence for the fingerprint (or a unique
// prefix of it). Evidence exists only for runs analyzed with
// "provenance": true.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, app, fp string) {
	raw, runID, ok := s.store.EvidenceFor(app, fp)
	if !ok {
		writeError(w, http.StatusNotFound,
			"no evidence for warning %q in app %q (analyze with \"provenance\": true, or the prefix is ambiguous)", fp, app)
		return
	}
	var ev evidence.Evidence
	if err := json.Unmarshal(raw, &ev); err != nil {
		writeError(w, http.StatusInternalServerError, "stored evidence unreadable: %v", err)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, ev.Render())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		App      string             `json:"app"`
		Run      string             `json:"run"`
		Evidence *evidence.Evidence `json:"evidence"`
	}{App: app, Run: runID, Evidence: &ev})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(id, "/")
	if id == "" || (sub != "" && sub != "trace") {
		writeError(w, http.StatusNotFound, "job id required")
		return
	}
	job, ok := s.pool.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if sub == "trace" {
		s.handleJobTrace(w, r, job)
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, job.Status())
	case http.MethodDelete:
		job.Cancel()
		writeJSON(w, http.StatusOK, job.Status())
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or DELETE required")
	}
}

// handleJobTrace serves a finished job's span tree: a nested
// obs.SpanNode JSON document by default, or a Chrome trace_event file
// with ?format=chrome (load it in chrome://tracing or Perfetto).
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request, job *Job) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	tr, ok := job.Trace()
	if !ok {
		writeError(w, http.StatusNotFound, "trace for job %q not available until the job finishes", job.ID)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		data, err := tr.ChromeTrace()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "encoding trace: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Job      string           `json:"job"`
		Spans    int              `json:"spans"`
		Dropped  int              `json:"dropped,omitempty"`
		Counters map[string]int64 `json:"counters,omitempty"`
		Roots    []*obs.SpanNode  `json:"roots"`
	}{Job: job.ID, Spans: tr.SpanCount(), Dropped: tr.Dropped(), Counters: job.Pipeline(), Roots: tr.Nodes()})
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	var out []AppWire
	for _, a := range corpus.Apps() {
		out = append(out, AppWire{Name: a.Name(), Group: a.Spec.Group, TrueHarmful: a.Spec.TrueTotal()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	bi := buildinfo.Get()
	writeJSON(w, http.StatusOK, struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
		buildinfo.Info
	}{Status: "ok", Workers: s.cfg.Workers, Info: bi})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.metrics.Render(s.cache, s.store))
}
