// detect_test.go covers the detector-selection surface of the service:
// detector sets participate in the result cache / store key, selection
// errors answer 400 before queuing, per-detector warning totals reach
// /metrics, stored runs record their detector set, and the diff endpoint
// refuses to compare runs produced by different detector pipelines.
package server

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"nadroid/internal/detect"
)

func TestResultKeyDetectorSets(t *testing.T) {
	def := ResultKey("app demo\n", OptionsWire{})
	// The explicit full set in any order is the default set: same key.
	full := ResultKey("app demo\n", OptionsWire{Detectors: []string{"lost-result", "uaf", "nosleep", "leaked-thread"}})
	if full != def {
		t.Error("explicit full detector set must share the default cache key")
	}
	sub := ResultKey("app demo\n", OptionsWire{Detectors: []string{"uaf"}})
	if sub == def {
		t.Error("a detector subset must not collide with the default key")
	}
	sub2 := ResultKey("app demo\n", OptionsWire{Detectors: []string{"uaf", "nosleep"}})
	if sub2 == sub || sub2 == def {
		t.Error("distinct detector subsets must have distinct keys")
	}
	// Spelling order of the same subset does not split the key.
	if ResultKey("app demo\n", OptionsWire{Detectors: []string{"nosleep", "uaf"}}) != sub2 {
		t.Error("detector subset key must be order-insensitive")
	}
}

func TestStoreRunRecordsDetectors(t *testing.T) {
	res := &ResultWire{App: "Demo"}
	run, err := StoreRun("key1", OptionsWire{}, res, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	// The default expands to the full registry so future registry growth
	// doesn't make old runs silently comparable to differently-shaped ones.
	if want := detect.Names(); strings.Join(run.Detectors, ",") != strings.Join(want, ",") {
		t.Errorf("default run detectors = %v, want %v", run.Detectors, want)
	}
	run, err = StoreRun("key2", OptionsWire{Detectors: []string{"nosleep", "uaf"}}, res, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(run.Detectors, ",") != "uaf,nosleep" {
		t.Errorf("subset run detectors = %v, want canonical [uaf nosleep]", run.Detectors)
	}
}

// TestAnalyzeDetectorSelectionEndToEnd drives detector selection over
// HTTP against an async-corpus app: default runs report the family with
// detector-qualified warnings, a uaf-only run hides them under a
// separate cache key, bad names answer 400, /metrics exposes the
// per-detector totals, and mismatched runs refuse to diff.
func TestAnalyzeDetectorSelectionEndToEnd(t *testing.T) {
	st := openStore(t, t.TempDir())
	_, ts := newTestServer(t, Config{Workers: 1, Store: st})

	full := analyzeApp(t, ts.URL, "ThreadHerder", nil)
	var leaked int
	for _, w := range full.Warnings {
		if w.Detector == "leaked-thread" {
			leaked++
			if !strings.HasPrefix(w.Category, "leaked-thread:") {
				t.Errorf("category = %q, want detector-qualified", w.Category)
			}
			if w.Fingerprint == "" {
				t.Error("detector warning served without a fingerprint")
			}
		}
	}
	if leaked != 2 {
		t.Fatalf("leaked-thread warnings served = %d, want the 2 seeded", leaked)
	}

	uafOnly := analyzeApp(t, ts.URL, "ThreadHerder", map[string]interface{}{"detectors": []string{"uaf"}})
	if uafOnly.Cached {
		t.Error("detector subset must miss the default-set cache entry")
	}
	for _, w := range uafOnly.Warnings {
		if w.Detector != "" {
			t.Errorf("uaf-only run still served %s warning %q", w.Detector, w.Field)
		}
	}

	// Unknown detector names answer 400 before any job is queued.
	resp, data := postJSON(t, ts.URL+"/v1/analyze", map[string]interface{}{
		"app": "ThreadHerder", "options": map[string]interface{}{"detectors": []string{"raceomatic"}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown detector: status %d, want 400 (%s)", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "raceomatic") {
		t.Errorf("400 body %q should name the unknown detector", data)
	}

	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), `nadroid_detector_warnings_total{detector="leaked-thread"} 2`) {
		t.Errorf("/metrics missing leaked-thread warning total:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), `nadroid_detector_warnings_total{detector="uaf"}`) {
		t.Error("/metrics missing uaf detector total")
	}

	// The two stored runs were produced by different detector pipelines:
	// diffing them is a phantom delta and must be refused.
	resp, data = getBody(t, ts.URL+"/v1/apps/ThreadHerder/diff")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched-detector diff: status %d, want 400 (%s)", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "detector") {
		t.Errorf("diff refusal %q should explain the detector mismatch", data)
	}
}
