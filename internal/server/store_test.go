// store_test.go covers the persistence tier of the service: runs
// written on job completion, cache warm-start across restarts, the
// store as a second-level cache after LRU eviction, baseline
// suppression in served results, and the run-history/diff endpoints.
package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"nadroid/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func analyzeApp(t *testing.T, url, app string, opts map[string]interface{}) *ResultWire {
	t.Helper()
	body := map[string]interface{}{"app": app}
	if opts != nil {
		body["options"] = opts
	}
	resp, data := postJSON(t, url+"/v1/analyze", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze %s: status %d: %s", app, resp.StatusCode, data)
	}
	var res ResultWire
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("analyze %s: %v", app, err)
	}
	return &res
}

// TestRestartServesFromStore: a service restarted over the same store
// directory answers a previously analyzed app as a cache hit without
// queuing a job — the acceptance scenario for the disk tier.
func TestRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()

	_, ts := newTestServer(t, Config{Workers: 1, Store: openStore(t, dir)})
	first := analyzeApp(t, ts.URL, "ConnectBot", nil)
	if first.Cached {
		t.Fatal("first analysis must not be cached")
	}
	if len(first.Warnings) == 0 || first.Warnings[0].Fingerprint == "" {
		t.Fatal("served warnings must carry fingerprints")
	}
	ts.Close()

	// A fresh process: new server, new store handle, same directory.
	s2, ts2 := newTestServer(t, Config{Workers: 1, Store: openStore(t, dir)})
	second := analyzeApp(t, ts2.URL, "ConnectBot", nil)
	if !second.Cached {
		t.Fatal("restart must serve the stored result as a cache hit")
	}
	if len(second.Warnings) != len(first.Warnings) {
		t.Errorf("restart warnings = %d, want %d", len(second.Warnings), len(first.Warnings))
	}
	if n := s2.Metrics().Counters().JobsQueued; n != 0 {
		t.Errorf("restart queued %d job(s); want 0 (warm cache)", n)
	}
	_, metrics := getBody(t, ts2.URL+"/metrics")
	for _, want := range []string{"nadroid_store_warm_loaded 1", "nadroid_cache_hits_total 1"} {
		if !strings.Contains(string(metrics), want+"\n") {
			t.Errorf("/metrics missing %q after warm restart:\n%s", want, metrics)
		}
	}
}

// TestStoreIsSecondCacheTier: with an LRU of one entry, an evicted
// result is re-served from disk (store hit), not recomputed.
func TestStoreIsSecondCacheTier(t *testing.T) {
	st := openStore(t, t.TempDir())
	s, ts := newTestServer(t, Config{Workers: 1, CacheEntries: 1, Store: st})

	analyzeApp(t, ts.URL, "ConnectBot", nil)
	analyzeApp(t, ts.URL, "Swiftnotes", nil) // evicts ConnectBot from the LRU
	res := analyzeApp(t, ts.URL, "ConnectBot", nil)
	if !res.Cached {
		t.Fatal("evicted entry must be served from the store tier as cached")
	}
	if got := s.Metrics().Counters().JobsQueued; got != 2 {
		t.Errorf("jobs queued = %d, want 2 (third request answered from disk)", got)
	}
	if c := st.Counters(); c.Hits == 0 {
		t.Errorf("store hit counter not bumped: %+v", c)
	}
}

// TestRunHistoryAndDiffEndpoints: two analyses of one app with
// different options yield two stored runs; the endpoints list them and
// diff them.
func TestRunHistoryAndDiffEndpoints(t *testing.T) {
	st := openStore(t, t.TempDir())
	_, ts := newTestServer(t, Config{Workers: 1, Store: st})

	strict := analyzeApp(t, ts.URL, "ConnectBot", nil)
	loose := analyzeApp(t, ts.URL, "ConnectBot", map[string]interface{}{"skip_unsound_filters": true})
	if len(loose.Warnings) <= len(strict.Warnings) {
		t.Fatalf("skip_unsound_filters must widen the warning set (%d vs %d)",
			len(loose.Warnings), len(strict.Warnings))
	}

	resp, data := getBody(t, ts.URL+"/v1/apps/ConnectBot/runs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("runs status = %d: %s", resp.StatusCode, data)
	}
	var runs []RunWire
	if err := json.Unmarshal(data, &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].App != "ConnectBot" {
		t.Fatalf("runs = %+v, want 2 ConnectBot entries", runs)
	}
	if runs[0].CreatedAt.Before(runs[1].CreatedAt) {
		t.Error("runs not newest-first")
	}

	// Diff strict -> loose: the unsound-filtered warnings appear as new.
	resp, data = getBody(t, ts.URL+"/v1/apps/ConnectBot/diff?from="+runs[1].ID+"&to="+runs[0].ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff status = %d: %s", resp.StatusCode, data)
	}
	var d store.Diff
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Persisting) != len(strict.Warnings) {
		t.Errorf("persisting = %d, want %d (the strict set)", len(d.Persisting), len(strict.Warnings))
	}
	if len(d.New) != len(loose.Warnings)-len(strict.Warnings) {
		t.Errorf("new = %d, want %d", len(d.New), len(loose.Warnings)-len(strict.Warnings))
	}
	if len(d.Fixed) != 0 {
		t.Errorf("fixed = %d, want 0", len(d.Fixed))
	}

	// Defaults pick the latest pair.
	resp, data = getBody(t, ts.URL+"/v1/apps/ConnectBot/diff")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default diff status = %d: %s", resp.StatusCode, data)
	}

	// Error surface.
	for path, want := range map[string]int{
		"/v1/apps/NoSuchApp/runs":       http.StatusNotFound,
		"/v1/apps/NoSuchApp/diff":       http.StatusNotFound,
		"/v1/apps/ConnectBot/nonsense":  http.StatusNotFound,
		"/v1/apps/ConnectBot/diff?from": http.StatusOK, // empty from falls back to default
	} {
		if resp, _ := getBody(t, ts.URL+path); resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	// Without a store the history endpoints are 503.
	_, tsNoStore := newTestServer(t, Config{Workers: 1})
	if resp, _ := getBody(t, tsNoStore.URL+"/v1/apps/ConnectBot/runs"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("no-store runs status = %d, want 503", resp.StatusCode)
	}
}

// TestBaselineSuppressionInServedResults: after a reviewer baselines a
// run, a restarted service serves the same program with every baselined
// warning flagged suppressed, and /metrics counts them.
func TestBaselineSuppressionInServedResults(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	_, ts := newTestServer(t, Config{Workers: 1, Store: st})
	first := analyzeApp(t, ts.URL, "ConnectBot", nil)
	ts.Close()

	runs := st.Runs("ConnectBot")
	if len(runs) != 1 {
		t.Fatalf("stored runs = %d, want 1", len(runs))
	}
	if err := st.PutBaseline(store.BaselineFromRun(runs[0], "reviewed: all benign", time.Now())); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, Config{Workers: 1, Store: openStore(t, dir)})
	res := analyzeApp(t, ts2.URL, "ConnectBot", nil)
	if res.Stats.Suppressed != len(first.Warnings) {
		t.Errorf("suppressed = %d, want all %d", res.Stats.Suppressed, len(first.Warnings))
	}
	for _, w := range res.Warnings {
		if !w.Suppressed {
			t.Errorf("warning %s not suppressed despite baseline", w.Fingerprint)
		}
	}
	_, metrics := getBody(t, ts2.URL+"/metrics")
	want := "nadroid_suppressed_warnings_total " + strconv.Itoa(len(first.Warnings)) + "\n"
	if !strings.Contains(string(metrics), want) {
		t.Errorf("/metrics missing %q:\n%s", want, metrics)
	}
}
