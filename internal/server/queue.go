// queue.go is the bounded worker pool behind nadroid-serve: submissions
// enter a FIFO channel, a fixed set of workers drains it, and every job
// carries its own cancelable context with an optional deadline. Sync
// requests are jobs the handler waits on; async requests return the job
// ID immediately. Shutdown closes the intake and drains what is already
// in flight.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"nadroid/internal/obs"
)

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// ErrQueueFull is returned when the FIFO queue is at capacity.
var ErrQueueFull = errors.New("job queue full")

// ErrShuttingDown is returned for submissions after Shutdown started.
var ErrShuttingDown = errors.New("server shutting down")

// Job is one queued analysis.
type Job struct {
	ID  string
	App string

	run     func(ctx context.Context) (*ResultWire, error)
	timeout time.Duration
	// enqueuedAt stamps Submit time; the queue-wait histogram measures
	// enqueue -> worker pickup.
	enqueuedAt time.Time

	mu       sync.Mutex
	state    string
	err      error
	result   *ResultWire
	cancel   context.CancelFunc
	canceled bool // cancel was requested (distinguishes cancel from deadline)
	// trace captures the job's span tree; pipeline its deep counters.
	// Both are set when the job starts running and are safe to export
	// once done is closed.
	trace    *obs.Tracer
	pipeline *obs.Metrics

	done chan struct{}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job for the wire.
func (j *Job) Status() JobWire {
	j.mu.Lock()
	defer j.mu.Unlock()
	w := JobWire{ID: j.ID, State: j.state, App: j.App, Result: j.result}
	if j.err != nil {
		w.Error = j.err.Error()
	}
	return w
}

// Trace returns the job's recorded span tree. ok is false until the
// job reaches a terminal state (a half-built tree would render spans
// with garbage durations).
func (j *Job) Trace() (*obs.Tracer, bool) {
	select {
	case <-j.done:
	default:
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace, j.trace != nil
}

// Pipeline returns the job's deep pipeline counter snapshot (schedule
// executions, prune counts, cache hits, ...). Nil until the job reaches
// a terminal state.
func (j *Job) Pipeline() map[string]int64 {
	select {
	case <-j.done:
	default:
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.pipeline == nil {
		return nil
	}
	return j.pipeline.Snapshot()
}

// Cancel requests cancellation: a queued job is terminally canceled in
// place; a running job has its context canceled and finishes as
// canceled when the pipeline unwinds. Terminal jobs are unaffected.
func (j *Job) Cancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.canceled = true
		j.state = StateCanceled
		j.err = context.Canceled
		close(j.done)
	case StateRunning:
		j.canceled = true
		if j.cancel != nil {
			j.cancel()
		}
	}
}

// Pool runs jobs with a fixed worker count and a bounded FIFO queue.
type Pool struct {
	metrics *Metrics
	logger  *slog.Logger
	queue   chan *Job
	wg      sync.WaitGroup
	// spanLimit overrides each job tracer's span budget when positive.
	// Set before the first Submit (the queue channel publishes it to
	// workers).
	spanLimit int

	mu      sync.Mutex
	jobs    map[string]*Job
	nextID  uint64
	closed  bool
	baseCtx context.Context
	stop    context.CancelFunc
}

// NewPool starts workers goroutines over a queue of depth queueDepth.
func NewPool(workers, queueDepth int, metrics *Metrics) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		metrics: metrics,
		logger:  obs.Logger(context.Background()), // no-op until SetLogger
		queue:   make(chan *Job, queueDepth),
		jobs:    make(map[string]*Job),
		baseCtx: ctx,
		stop:    cancel,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// SetLogger installs the structured logger used for job lifecycle
// events. Call before the first Submit.
func (p *Pool) SetLogger(l *slog.Logger) {
	if l != nil {
		p.logger = l
	}
}

// Submit enqueues an analysis; timeout <= 0 means no per-job deadline.
func (p *Pool) Submit(app string, timeout time.Duration, run func(ctx context.Context) (*ResultWire, error)) (*Job, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrShuttingDown
	}
	p.nextID++
	j := &Job{
		ID:         fmt.Sprintf("job-%08d", p.nextID),
		App:        app,
		run:        run,
		timeout:    timeout,
		enqueuedAt: time.Now(),
		state:      StateQueued,
		done:       make(chan struct{}),
	}
	p.jobs[j.ID] = j
	p.mu.Unlock()

	select {
	case p.queue <- j:
		p.metrics.JobQueued()
		return j, nil
	default:
		p.mu.Lock()
		delete(p.jobs, j.ID)
		p.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// Job looks up a job by ID.
func (p *Pool) Job(id string) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	return j, ok
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.runJob(j)
	}
}

func (p *Pool) runJob(j *Job) {
	p.metrics.ObserveQueueWait(time.Since(j.enqueuedAt))
	j.mu.Lock()
	if j.state != StateQueued {
		// Canceled while waiting in the queue; its metrics slot still
		// needs to move queued -> finished.
		j.mu.Unlock()
		p.metrics.JobStarted()
		p.metrics.JobFinished(StateCanceled)
		return
	}
	ctx, cancel := context.WithCancel(p.baseCtx)
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(p.baseCtx, j.timeout)
	}
	// Every job gets its own span tracer and counter set, plus a logger
	// stamped with the job/app identity, all carried down the pipeline
	// through the context.
	tracer := obs.NewTracer()
	if p.spanLimit > 0 {
		tracer.SetLimit(p.spanLimit)
	}
	pipeline := obs.NewMetrics()
	logger := p.logger.With("job", j.ID, "app", j.App)
	ctx = obs.WithTracer(ctx, tracer)
	ctx = obs.WithMetrics(ctx, pipeline)
	ctx = obs.WithLogger(ctx, logger)

	j.state = StateRunning
	j.cancel = cancel
	j.trace = tracer
	j.pipeline = pipeline
	j.mu.Unlock()
	p.metrics.JobStarted()
	logger.Info("job started")

	started := time.Now()
	res, err := j.run(ctx)
	cancel()

	j.mu.Lock()
	j.result = res
	j.err = err
	switch {
	case err == nil:
		j.state = StateDone
	case j.canceled || errors.Is(err, context.Canceled):
		j.state = StateCanceled
	default:
		j.state = StateFailed
	}
	state := j.state
	close(j.done)
	j.mu.Unlock()
	p.metrics.JobFinished(state)
	// A job whose span tree hit the tracer budget silently loses its
	// tail; surface the loss as a counter so truncated traces are
	// discoverable from /metrics, not just the per-job trace response.
	if n := tracer.Dropped(); n > 0 {
		pipeline.Add("spans_dropped", int64(n))
	}
	p.metrics.MergePipeline(pipeline.Snapshot())
	if err != nil {
		logger.Warn("job finished", "state", state, "ms", time.Since(started).Milliseconds(), "error", err)
	} else {
		logger.Info("job finished", "state", state, "ms", time.Since(started).Milliseconds(),
			"spans", tracer.SpanCount())
	}
}

// Shutdown stops intake and waits for queued + running jobs to finish.
// If ctx expires first, in-flight jobs are canceled and Shutdown waits
// for them to unwind, returning ctx's error.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		p.stop() // cancel every in-flight job's base context
		<-drained
		return ctx.Err()
	}
}
