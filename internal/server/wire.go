// wire.go defines the JSON wire format shared by cmd/nadroid's -json
// flag and the nadroid-serve HTTP API, so the CLI and the service emit
// byte-compatible reports. Every type here is a plain encoding/json
// struct; the conversion helpers are the only place analysis results
// are flattened for transport.
package server

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"nadroid"
	"nadroid/internal/detect"
	"nadroid/internal/evidence"
	"nadroid/internal/explore"
	"nadroid/internal/store"
)

// OptionsWire mirrors nadroid.Options for transport. Zero values mean
// "the default": K falls back to 2 and MaxSchedules to the explorer's
// default, matching the CLI flags.
type OptionsWire struct {
	K                  int  `json:"k,omitempty"`
	SkipSoundFilters   bool `json:"skip_sound_filters,omitempty"`
	SkipUnsoundFilters bool `json:"skip_unsound_filters,omitempty"`
	MultiLooper        bool `json:"multi_looper,omitempty"`
	Validate           bool `json:"validate,omitempty"`
	MaxSchedules       int  `json:"max_schedules,omitempty"`
	// Detectors selects the bug-family detectors by registry name.
	// Absent/null means every detector (the default).
	Detectors []string `json:"detectors,omitempty"`
	// Provenance records per-warning evidence (derivation trees, filter
	// verdicts, witnesses) served by the explain endpoints.
	Provenance bool `json:"provenance,omitempty"`
}

// Normalize fills defaults so that two requests meaning the same run
// produce identical cache keys. Detector sets are canonicalized (the
// full set collapses to the default nil); unknown names are left as-is
// here and rejected by Validate / the analysis itself.
func (o OptionsWire) Normalize() OptionsWire {
	if o.K <= 0 {
		o.K = 2
	}
	if !o.Validate {
		o.MaxSchedules = 0
	} else if o.MaxSchedules <= 0 {
		o.MaxSchedules = 3000
	}
	if ds, err := detect.Normalize(o.Detectors); err == nil {
		o.Detectors = ds
	}
	return o
}

// Check rejects options the pipeline would refuse, so the API can
// answer 400 before queuing a job.
func (o OptionsWire) Check() error {
	_, err := detect.Select(o.Detectors)
	return err
}

// ToOptions converts to the analysis option set.
func (o OptionsWire) ToOptions() nadroid.Options {
	o = o.Normalize()
	return nadroid.Options{
		K:                  o.K,
		SkipSoundFilters:   o.SkipSoundFilters,
		SkipUnsoundFilters: o.SkipUnsoundFilters,
		MultiLooper:        o.MultiLooper,
		Validate:           o.Validate,
		Explore:            explore.Options{MaxSchedules: o.MaxSchedules},
		Detectors:          o.Detectors,
		Provenance:         o.Provenance,
	}
}

// cacheKeyPart renders the normalized options canonically for hashing.
// The detector set participates so runs with different detector sets
// never collide; the default (all) renders nothing, keeping default
// keys identical to historical ones.
func (o OptionsWire) cacheKeyPart() string {
	o = o.Normalize()
	part := fmt.Sprintf("k=%d sound=%t unsound=%t multilooper=%t validate=%t budget=%d",
		o.K, o.SkipSoundFilters, o.SkipUnsoundFilters, o.MultiLooper, o.Validate, o.MaxSchedules)
	if o.Detectors != nil {
		part += " detectors=" + strings.Join(o.Detectors, ",")
	}
	// Appended only when set, keeping default keys identical to
	// historical ones (same pattern as the detector set above).
	if o.Provenance {
		part += " provenance=true"
	}
	return part
}

// AnalyzeRequest is the POST /v1/analyze body. Exactly one of App (a
// corpus app name) or Dexasm (dexasm source text) must be set.
type AnalyzeRequest struct {
	App       string      `json:"app,omitempty"`
	Dexasm    string      `json:"dexasm,omitempty"`
	Options   OptionsWire `json:"options"`
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
}

// StatsWire is the filter-pipeline summary.
type StatsWire struct {
	Potential    int            `json:"potential"`
	AfterSound   int            `json:"after_sound"`
	AfterUnsound int            `json:"after_unsound"`
	RemovedBy    map[string]int `json:"removed_by,omitempty"`
	// Suppressed counts warnings a baseline hid from this result.
	Suppressed int `json:"suppressed,omitempty"`
}

// WarningWire is one surviving warning with its §7 review aids.
type WarningWire struct {
	// Fingerprint is the stable content-derived identity baselines and
	// run diffs key on.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Detector names the bug family for non-UAF warnings ("" = uaf, the
	// classic family, so historical payloads keep their shape).
	Detector    string `json:"detector,omitempty"`
	Field       string `json:"field"`
	Use         string `json:"use"`
	Free        string `json:"free"`
	Category    string `json:"category"`
	UseLineage  string `json:"use_lineage,omitempty"`
	FreeLineage string `json:"free_lineage,omitempty"`
	// Suppressed marks a warning whose fingerprint the app's baseline
	// covers: kept in the payload (so reviewers can audit), flagged so
	// clients can hide it.
	Suppressed bool `json:"suppressed,omitempty"`
}

// TimingWire is the per-phase wall-clock split in milliseconds.
type TimingWire struct {
	ModelingMS   float64 `json:"modeling_ms"`
	DetectionMS  float64 `json:"detection_ms"`
	FilteringMS  float64 `json:"filtering_ms"`
	ValidationMS float64 `json:"validation_ms,omitempty"`
	TotalMS      float64 `json:"total_ms"`
}

// ResultWire is the full analysis report: the POST /v1/analyze response
// body and the payload of a completed job.
type ResultWire struct {
	App      string        `json:"app"`
	Stats    StatsWire     `json:"stats"`
	Warnings []WarningWire `json:"warnings"`
	// Harmful lists the dynamically confirmed subset (validate runs only).
	Harmful []WarningWire `json:"harmful,omitempty"`
	Timing  TimingWire    `json:"timing"`
	// Cached is true when the result was served from the content cache.
	Cached bool `json:"cached,omitempty"`
	// Evidence maps fingerprints to provenance records (provenance runs
	// only); absent otherwise, so historical payloads are unchanged.
	Evidence map[string]*evidence.Evidence `json:"evidence,omitempty"`
}

// JobWire is the GET /v1/jobs/{id} response body.
type JobWire struct {
	ID     string      `json:"id"`
	State  string      `json:"state"` // queued | running | done | failed | canceled
	App    string      `json:"app,omitempty"`
	Error  string      `json:"error,omitempty"`
	Result *ResultWire `json:"result,omitempty"`
}

// RunWire is one GET /v1/apps/{app}/runs entry: the stored run's
// metadata without the (potentially large) payload.
type RunWire struct {
	ID        string    `json:"id"`
	App       string    `json:"app"`
	Options   string    `json:"options,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	Stats     StatsWire `json:"stats"`
	Warnings  int       `json:"warnings"`
}

// RunToWire summarizes a stored run for the runs listing.
func RunToWire(r *store.Run) RunWire {
	return RunWire{
		ID: r.ID, App: r.App, Options: r.Options, CreatedAt: r.CreatedAt,
		Stats: StatsWire{
			Potential:    r.Stats.Potential,
			AfterSound:   r.Stats.AfterSound,
			AfterUnsound: r.Stats.AfterUnsound,
		},
		Warnings: len(r.Warnings),
	}
}

// AppWire is one GET /v1/apps corpus entry.
type AppWire struct {
	Name  string `json:"name"`
	Group string `json:"group"`
	// TrueHarmful is the seeded ground-truth bug count.
	TrueHarmful int `json:"true_harmful"`
}

// ms converts a duration to fractional milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// EncodeResult flattens an analysis result into the wire format.
func EncodeResult(app string, res *nadroid.Result) *ResultWire {
	out := &ResultWire{
		App: app,
		Stats: StatsWire{
			Potential:    res.Stats.Potential,
			AfterSound:   res.Stats.AfterSound,
			AfterUnsound: res.Stats.AfterUnsound,
		},
		Warnings: []WarningWire{},
		Timing: TimingWire{
			ModelingMS:   ms(res.Timing.Modeling),
			DetectionMS:  ms(res.Timing.Detection),
			FilteringMS:  ms(res.Timing.Filtering),
			ValidationMS: ms(res.Timing.Validation),
			TotalMS:      ms(res.Timing.Total()),
		},
	}
	if len(res.Stats.Removed) > 0 {
		out.Stats.RemovedBy = make(map[string]int, len(res.Stats.Removed))
		for k, v := range res.Stats.Removed {
			out.Stats.RemovedBy[k] = v
		}
	}
	byKey := make(map[string]WarningWire)
	for _, e := range res.Report.Entries {
		w := WarningWire{
			Fingerprint: string(e.Fingerprint),
			Field:       e.Warning.Field.String(),
			Use:         e.Warning.Use.String(),
			Free:        e.Warning.Free.String(),
			Category:    e.Category.String(),
			UseLineage:  e.UseLineage,
			FreeLineage: e.FreeLineage,
		}
		out.Warnings = append(out.Warnings, w)
		byKey[e.Warning.Key()] = w
	}
	// Non-UAF detector warnings ride along with the detector name set,
	// mirroring the report's Extras rows (subject in the field column,
	// site in the use column, detector-qualified tag as category).
	for _, x := range res.Report.Extras {
		out.Warnings = append(out.Warnings, WarningWire{
			Fingerprint: string(x.Fingerprint),
			Detector:    x.Detector,
			Field:       x.Subject,
			Use:         x.Site.String(),
			Free:        "-",
			Category:    x.Detector + ":" + x.Tag,
			UseLineage:  x.Lineage,
			FreeLineage: x.Detail,
		})
	}
	out.Evidence = res.Evidence
	for _, h := range res.Harmful {
		if w, ok := byKey[h.Key()]; ok {
			out.Harmful = append(out.Harmful, w)
		} else {
			// A validated warning should always be a report entry, but
			// degrade gracefully rather than drop it.
			out.Harmful = append(out.Harmful, WarningWire{
				Field: h.Field.String(), Use: h.Use.String(), Free: h.Free.String(),
			})
		}
	}
	return out
}

// StoreRun converts a fresh (pre-baseline) wire result into a store
// record addressed by the service's cache key, with the full result
// embedded as the payload so a restarted service can serve it without
// re-analyzing.
func StoreRun(key CacheKey, opts OptionsWire, res *ResultWire, now time.Time) (*store.Run, error) {
	payload, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	// Persist the enabled detector set explicitly (the default nil
	// expands to every registered name), so diffs can refuse to compare
	// runs produced by different detector pipelines.
	detectors := opts.Normalize().Detectors
	if detectors == nil {
		detectors = detect.Names()
	}
	r := &store.Run{
		ID: string(key), App: res.App, Options: opts.cacheKeyPart(), CreatedAt: now.UTC(),
		Detectors: detectors,
		Stats: store.Stats{
			Potential:    res.Stats.Potential,
			AfterSound:   res.Stats.AfterSound,
			AfterUnsound: res.Stats.AfterUnsound,
		},
		Warnings: make([]store.Warning, 0, len(res.Warnings)),
		Payload:  payload,
	}
	for _, w := range res.Warnings {
		r.Warnings = append(r.Warnings, store.Warning{
			Fingerprint: w.Fingerprint, Detector: w.Detector, Field: w.Field, Use: w.Use, Free: w.Free,
			Category: w.Category, UseLineage: w.UseLineage, FreeLineage: w.FreeLineage,
		})
	}
	if len(res.Evidence) > 0 {
		r.Evidence = make(map[string]json.RawMessage, len(res.Evidence))
		for fp, ev := range res.Evidence {
			raw, err := json.Marshal(ev)
			if err != nil {
				return nil, err
			}
			r.Evidence[fp] = raw
		}
	}
	return r, nil
}

// ApplyBaseline marks every warning the baseline covers as suppressed
// and records the count in the stats. Idempotent; returns how many
// warnings are suppressed. Stored runs stay pristine — suppression is
// applied at serve time so baseline edits take effect without
// re-analysis.
func ApplyBaseline(res *ResultWire, base *store.Baseline) int {
	n := 0
	for i := range res.Warnings {
		res.Warnings[i].Suppressed = base.Has(res.Warnings[i].Fingerprint)
		if res.Warnings[i].Suppressed {
			n++
		}
	}
	res.Stats.Suppressed = n
	return n
}
