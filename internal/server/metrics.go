// metrics.go keeps the service's observable state: monotonic job
// counters, gauges for queue/worker occupancy, the cache hit/miss pair,
// per-phase latency histograms fed from Result.Timing, and the deep
// pipeline counters (points-to iterations, datalog facts, per-filter
// removals, schedules explored, …) merged in from every finished job's
// obs.Metrics. Rendering is a Prometheus-parseable plain-text format:
// every line is `name value` or `name{labels} value`, histogram buckets
// carry numeric-millisecond le labels, and output order is stable.
package server

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nadroid/internal/buildinfo"
	"nadroid/internal/store"
)

// histBounds are the histogram bucket upper bounds. Detection dominates
// wall-clock (§8.8), so the decades span sub-millisecond filtering up
// to multi-minute validation runs.
var histBounds = []time.Duration{
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
	time.Minute,
}

// histogram is a fixed-bucket latency histogram; the slot past the last
// bound is +Inf.
type histogram struct {
	counts []uint64
	sum    time.Duration
	total  uint64
}

func (h *histogram) observe(d time.Duration) {
	if h.counts == nil {
		h.counts = make([]uint64, len(histBounds)+1)
	}
	i := sort.Search(len(histBounds), func(i int) bool { return d <= histBounds[i] })
	h.counts[i]++
	h.sum += d
	h.total++
}

// Metrics aggregates everything GET /metrics renders.
type Metrics struct {
	mu sync.Mutex

	jobsQueued   uint64 // total ever enqueued
	jobsDone     uint64
	jobsFailed   uint64
	jobsCanceled uint64
	queueDepth   int // currently waiting
	running      int // currently executing

	suppressed uint64 // baseline-suppressed warnings across all results served
	warmLoaded int    // cache entries preloaded from the store at startup

	// detectors counts warnings per bug-family detector across every
	// completed analysis (nadroid_detector_warnings_total{detector=…}).
	detectors map[string]uint64

	// queueWait measures enqueue -> worker pickup latency, the signal
	// that the pool is undersized for the offered load.
	queueWait histogram

	phases map[string]*histogram
	// pipeline accumulates the per-job obs counter snapshots. Keys are
	// already metric-shaped (`name` or `name{label="v"}`) and are exported
	// under the nadroid_pipeline_ prefix.
	pipeline map[string]int64
}

// NewMetrics builds an empty metric set.
func NewMetrics() *Metrics {
	return &Metrics{
		phases:    make(map[string]*histogram),
		pipeline:  make(map[string]int64),
		detectors: make(map[string]uint64),
	}
}

// AddDetectorWarnings folds one analysis's per-detector warning counts
// into the service totals. Detectors that ran with zero warnings still
// register, so the family shows up in /metrics from its first run.
func (m *Metrics) AddDetectorWarnings(counts map[string]int) {
	m.mu.Lock()
	for name, n := range counts {
		m.detectors[name] += uint64(n)
	}
	m.mu.Unlock()
}

// MergePipeline folds one job's deep pipeline counters into the
// service totals.
func (m *Metrics) MergePipeline(snap map[string]int64) {
	m.mu.Lock()
	for k, v := range snap {
		m.pipeline[k] += v
	}
	m.mu.Unlock()
}

// JobQueued / JobStarted / JobFinished track the queue and worker gauges.
func (m *Metrics) JobQueued() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsQueued++
	m.queueDepth++
}

func (m *Metrics) JobStarted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueDepth--
	m.running++
}

// JobFinished records a terminal state: "done", "failed", or "canceled".
func (m *Metrics) JobFinished(state string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	switch state {
	case StateDone:
		m.jobsDone++
	case StateCanceled:
		m.jobsCanceled++
	default:
		m.jobsFailed++
	}
}

// ObserveQueueWait records how long one job sat in the queue before a
// worker picked it up.
func (m *Metrics) ObserveQueueWait(d time.Duration) {
	m.mu.Lock()
	m.queueWait.observe(d)
	m.mu.Unlock()
}

// AddSuppressed counts warnings a baseline hid from a materialized
// result.
func (m *Metrics) AddSuppressed(n int) {
	m.mu.Lock()
	m.suppressed += uint64(n)
	m.mu.Unlock()
}

// SetWarmLoaded records how many cache entries the store preloaded at
// startup.
func (m *Metrics) SetWarmLoaded(n int) {
	m.mu.Lock()
	m.warmLoaded = n
	m.mu.Unlock()
}

// ObserveTiming feeds one analysis's phase split into the histograms.
func (m *Metrics) ObserveTiming(t TimingWire) {
	m.mu.Lock()
	defer m.mu.Unlock()
	obs := func(phase string, msVal float64) {
		h := m.phases[phase]
		if h == nil {
			h = &histogram{}
			m.phases[phase] = h
		}
		h.observe(time.Duration(msVal * float64(time.Millisecond)))
	}
	obs("modeling", t.ModelingMS)
	obs("detection", t.DetectionMS)
	obs("filtering", t.FilteringMS)
	if t.ValidationMS > 0 {
		obs("validation", t.ValidationMS)
	}
}

// Snapshot is a point-in-time counter read, used by tests and the
// /metrics renderer.
type Snapshot struct {
	JobsQueued, JobsDone, JobsFailed, JobsCanceled uint64
	QueueDepth, Running                            int
}

// Counters returns the current job counters.
func (m *Metrics) Counters() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		JobsQueued: m.jobsQueued, JobsDone: m.jobsDone,
		JobsFailed: m.jobsFailed, JobsCanceled: m.jobsCanceled,
		QueueDepth: m.queueDepth, Running: m.running,
	}
}

// Render writes the plain-text exposition: build info, job/cache
// counters, store counters (when a store is configured), phase
// histograms, deep pipeline counters, and Go runtime gauges. Output
// order is stable across calls.
func (m *Metrics) Render(cache *Cache, st *store.Store) string {
	hits, misses := cache.Counters()
	bi := buildinfo.Get()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	goroutines := runtime.NumGoroutine()

	m.mu.Lock()
	defer m.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "nadroid_build_info{version=%q,revision=%q,go=%q,k_default=\"%d\"} 1\n",
		bi.Version, bi.Revision, bi.GoVersion, bi.DefaultK)
	fmt.Fprintf(&b, "nadroid_jobs_queued_total %d\n", m.jobsQueued)
	fmt.Fprintf(&b, "nadroid_jobs_done_total %d\n", m.jobsDone)
	fmt.Fprintf(&b, "nadroid_jobs_failed_total %d\n", m.jobsFailed)
	fmt.Fprintf(&b, "nadroid_jobs_canceled_total %d\n", m.jobsCanceled)
	fmt.Fprintf(&b, "nadroid_queue_depth %d\n", m.queueDepth)
	fmt.Fprintf(&b, "nadroid_jobs_running %d\n", m.running)
	if m.queueWait.total > 0 {
		cum := uint64(0)
		for i, bound := range histBounds {
			cum += m.queueWait.counts[i]
			fmt.Fprintf(&b, "nadroid_queue_wait_bucket{le=%q} %d\n", leLabel(bound), cum)
		}
		cum += m.queueWait.counts[len(histBounds)]
		fmt.Fprintf(&b, "nadroid_queue_wait_bucket{le=\"+Inf\"} %d\n", cum)
		fmt.Fprintf(&b, "nadroid_queue_wait_sum_ms %.3f\n", float64(m.queueWait.sum)/float64(time.Millisecond))
		fmt.Fprintf(&b, "nadroid_queue_wait_count %d\n", m.queueWait.total)
	}
	fmt.Fprintf(&b, "nadroid_cache_hits_total %d\n", hits)
	fmt.Fprintf(&b, "nadroid_cache_misses_total %d\n", misses)
	fmt.Fprintf(&b, "nadroid_cache_entries %d\n", cache.Len())
	fmt.Fprintf(&b, "nadroid_suppressed_warnings_total %d\n", m.suppressed)
	dets := make([]string, 0, len(m.detectors))
	for d := range m.detectors {
		dets = append(dets, d)
	}
	sort.Strings(dets)
	for _, d := range dets {
		fmt.Fprintf(&b, "nadroid_detector_warnings_total{detector=%q} %d\n", d, m.detectors[d])
	}
	if st != nil {
		sc := st.Counters()
		fmt.Fprintf(&b, "nadroid_store_hits_total %d\n", sc.Hits)
		fmt.Fprintf(&b, "nadroid_store_misses_total %d\n", sc.Misses)
		fmt.Fprintf(&b, "nadroid_store_puts_total %d\n", sc.Puts)
		fmt.Fprintf(&b, "nadroid_store_gc_removed_total %d\n", sc.GCRemoved)
		fmt.Fprintf(&b, "nadroid_store_load_errors_total %d\n", sc.LoadErrors)
		fmt.Fprintf(&b, "nadroid_store_runs %d\n", st.Len())
		fmt.Fprintf(&b, "nadroid_store_warm_loaded %d\n", m.warmLoaded)
		du := st.Usage()
		fmt.Fprintf(&b, "nadroid_store_bytes %d\n", du.Total)
		fmt.Fprintf(&b, "nadroid_ircache_bytes %d\n", du.IRCache)
	}

	phases := make([]string, 0, len(m.phases))
	for p := range m.phases {
		phases = append(phases, p)
	}
	sort.Strings(phases)
	for _, p := range phases {
		h := m.phases[p]
		cum := uint64(0)
		for i, bound := range histBounds {
			cum += h.counts[i]
			fmt.Fprintf(&b, "nadroid_phase_latency_bucket{phase=%q,le=%q} %d\n", p, leLabel(bound), cum)
		}
		cum += h.counts[len(histBounds)]
		fmt.Fprintf(&b, "nadroid_phase_latency_bucket{phase=%q,le=\"+Inf\"} %d\n", p, cum)
		fmt.Fprintf(&b, "nadroid_phase_latency_sum_ms{phase=%q} %.3f\n", p, float64(h.sum)/float64(time.Millisecond))
		fmt.Fprintf(&b, "nadroid_phase_latency_count{phase=%q} %d\n", p, h.total)
	}

	keys := make([]string, 0, len(m.pipeline))
	for k := range m.pipeline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "nadroid_pipeline_%s %d\n", k, m.pipeline[k])
	}

	fmt.Fprintf(&b, "nadroid_go_goroutines %d\n", goroutines)
	fmt.Fprintf(&b, "nadroid_go_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(&b, "nadroid_go_heap_objects %d\n", ms.HeapObjects)
	fmt.Fprintf(&b, "nadroid_go_gc_cycles_total %d\n", ms.NumGC)
	return b.String()
}

// leLabel renders a histogram bound as numeric milliseconds ("1", "10",
// …, "60000") — duration strings like "1ms" are not parseable by
// Prometheus-style scrapers.
func leLabel(bound time.Duration) string {
	return strconv.FormatFloat(float64(bound)/float64(time.Millisecond), 'f', -1, 64)
}
