package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// blockingRun returns a run func that signals started and then blocks
// until released or its context is canceled.
func blockingRun(started chan<- string, release <-chan struct{}, id string) func(context.Context) (*ResultWire, error) {
	return func(ctx context.Context) (*ResultWire, error) {
		if started != nil {
			started <- id
		}
		select {
		case <-release:
			return &ResultWire{App: id}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestPoolRunsJobsFIFO(t *testing.T) {
	m := NewMetrics()
	p := NewPool(1, 16, m)
	defer p.Shutdown(context.Background())

	var mu sync.Mutex
	var order []string
	var jobs []*Job
	for _, id := range []string{"a", "b", "c", "d"} {
		id := id
		j, err := p.Submit(id, 0, func(ctx context.Context) (*ResultWire, error) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return &ResultWire{App: id}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.Done()
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 4 || order[0] != "a" || order[1] != "b" || order[2] != "c" || order[3] != "d" {
		t.Errorf("execution order %v, want FIFO a b c d", order)
	}
	if c := m.Counters(); c.JobsDone != 4 || c.QueueDepth != 0 || c.Running != 0 {
		t.Errorf("counters %+v", c)
	}
}

func TestPoolQueueFull(t *testing.T) {
	m := NewMetrics()
	p := NewPool(1, 1, m)
	release := make(chan struct{})
	started := make(chan string, 8)
	defer func() {
		close(release)
		p.Shutdown(context.Background())
	}()

	// First job occupies the worker; second fills the queue slot.
	if _, err := p.Submit("run", 0, blockingRun(started, release, "run")); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := p.Submit("wait", 0, blockingRun(nil, release, "wait")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit("reject", 0, blockingRun(nil, release, "reject")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestPoolCancelQueuedJob(t *testing.T) {
	m := NewMetrics()
	p := NewPool(1, 4, m)
	release := make(chan struct{})
	started := make(chan string, 8)
	defer func() {
		close(release)
		p.Shutdown(context.Background())
	}()

	if _, err := p.Submit("blocker", 0, blockingRun(started, release, "blocker")); err != nil {
		t.Fatal(err)
	}
	<-started
	ran := false
	j, err := p.Submit("victim", 0, func(ctx context.Context) (*ResultWire, error) {
		ran = true
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	<-j.Done()
	if st := j.Status(); st.State != StateCanceled {
		t.Errorf("state = %s, want canceled", st.State)
	}
	if ran {
		t.Error("canceled queued job must never run")
	}
}

func TestPoolCancelRunningJob(t *testing.T) {
	m := NewMetrics()
	p := NewPool(1, 4, m)
	defer p.Shutdown(context.Background())

	started := make(chan string, 1)
	j, err := p.Submit("victim", 0, blockingRun(started, nil, "victim"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j.Cancel()
	<-j.Done()
	if st := j.Status(); st.State != StateCanceled {
		t.Errorf("state = %s, want canceled (err %q)", st.State, st.Error)
	}
	if c := m.Counters(); c.JobsCanceled != 1 {
		t.Errorf("canceled counter = %d, want 1", c.JobsCanceled)
	}
}

func TestPoolPerJobDeadline(t *testing.T) {
	m := NewMetrics()
	p := NewPool(1, 4, m)
	defer p.Shutdown(context.Background())

	j, err := p.Submit("deadline", time.Millisecond, blockingRun(nil, nil, "deadline"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("deadline never fired")
	}
	st := j.Status()
	if st.State != StateFailed {
		t.Errorf("state = %s, want failed", st.State)
	}
	if !errors.Is(j.err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", j.err)
	}
}

func TestPoolShutdownDrainsQueuedWork(t *testing.T) {
	m := NewMetrics()
	p := NewPool(2, 16, m)
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, err := p.Submit("j", 0, func(ctx context.Context) (*ResultWire, error) {
			time.Sleep(time.Millisecond)
			return &ResultWire{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if st := j.Status(); st.State != StateDone {
			t.Errorf("job %s state %s after drain, want done", st.ID, st.State)
		}
	}
	if _, err := p.Submit("late", 0, blockingRun(nil, nil, "late")); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("err = %v, want ErrShuttingDown", err)
	}
	// A second Shutdown is a no-op.
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPoolShutdownDeadlineCancelsInFlight(t *testing.T) {
	m := NewMetrics()
	p := NewPool(1, 4, m)
	started := make(chan string, 1)
	j, err := p.Submit("stuck", 0, blockingRun(started, nil, "stuck"))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err = %v, want DeadlineExceeded", err)
	}
	// The forced stop must have unwound the job.
	<-j.Done()
	if st := j.Status(); st.State != StateFailed && st.State != StateCanceled {
		t.Errorf("state = %s, want a terminal aborted state", st.State)
	}
}
