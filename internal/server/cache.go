// cache.go implements the content-addressed result cache: analyses are
// keyed by the SHA-256 of the app's canonical dexasm text plus the
// normalized option set, so two submissions of the same program (however
// formatted) with equivalent options share one entry. Eviction is LRU
// over a fixed entry budget — analysis results are small next to the
// cost of recomputing them, so a count bound is enough.
package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// CacheKey addresses one (program, options) analysis.
type CacheKey string

// ResultKey hashes canonical dexasm text and normalized options into a
// cache key.
func ResultKey(canonicalDexasm string, opts OptionsWire) CacheKey {
	h := sha256.New()
	h.Write([]byte(canonicalDexasm))
	h.Write([]byte{0}) // domain-separate program text from options
	h.Write([]byte(opts.cacheKeyPart()))
	return CacheKey(hex.EncodeToString(h.Sum(nil)))
}

// Cache is a thread-safe LRU mapping CacheKey to *ResultWire.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[CacheKey]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key CacheKey
	res *ResultWire
}

// NewCache builds a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, order: list.New(), entries: make(map[CacheKey]*list.Element)}
}

// Get returns the cached result and bumps its recency. Every call
// counts as a hit or a miss.
func (c *Cache) Get(key CacheKey) (*ResultWire, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores a result, evicting the least recently used entry when over
// capacity. Storing an existing key refreshes its value and recency.
func (c *Cache) Put(key CacheKey, res *ResultWire) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns the lifetime hit/miss totals.
func (c *Cache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
