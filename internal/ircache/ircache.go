// Package ircache is the binary cold-start cache: a versioned,
// digest-keyed serialization of everything the parse and modeling
// phases produce — the IR program, the manifest, the threadified model,
// and the solved points-to state (the base facts every detector builds
// on). A warm run decodes the blob instead of parsing dexasm and
// re-running the points-to solve, which eliminates PhaseParse and
// PhaseModeling entirely.
//
// The format is hand-rolled (no gob, no reflection on the hot path):
// a magic + version header, an interned string table, then a body of
// uvarint/zigzag-varint fields. Strings repeat heavily across an IR
// program (class names, method refs, field refs), so interning is the
// dominant size win. Encoding is deterministic: identical inputs
// produce identical bytes, so blobs are content-stable under their
// digest key.
//
// Compatibility is by rejection, not migration: the version is baked
// into both the header and the cache filename, so a newer binary simply
// misses old entries and rewrites them (GC collects the orphans).
package ircache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"nadroid/internal/apk"
	"nadroid/internal/cha"
	"nadroid/internal/escape"
	"nadroid/internal/framework"
	"nadroid/internal/ir"
	"nadroid/internal/manifest"
	"nadroid/internal/pointsto"
	"nadroid/internal/threadify"
)

// Version is bumped whenever the encoding or any serialized structure
// changes shape; mismatched blobs are treated as cache misses.
//
// v2 appended the thread-escape result (the costliest of the base facts
// the detection context builds on).
const Version = 2

var magic = [4]byte{'N', 'I', 'R', 'C'}

// Name renders the cache filename for an app digest under sensitivity
// depth k. The digest leads (everything before the first '-') so the
// store's GC can map entries back to runs.
func Name(digest string, k int) string {
	return fmt.Sprintf("%s-v%d-k%d.bin", digest, Version, k)
}

// DigestOf extracts the app digest back out of a cache filename
// (ok=false for names not produced by Name).
func DigestOf(filename string) (string, bool) {
	for i := 0; i < len(filename); i++ {
		if filename[i] == '-' {
			return filename[:i], i > 0
		}
	}
	return "", false
}

// --- encoder ----------------------------------------------------------

type enc struct {
	strs map[string]uint64
	tab  []string
	body []byte
}

func (e *enc) u(v uint64) { e.body = binary.AppendUvarint(e.body, v) }
func (e *enc) i(v int64)  { e.body = binary.AppendVarint(e.body, v) }
func (e *enc) b(v bool) {
	if v {
		e.u(1)
	} else {
		e.u(0)
	}
}
func (e *enc) s(s string) {
	id, ok := e.strs[s]
	if !ok {
		id = uint64(len(e.tab))
		e.strs[s] = id
		e.tab = append(e.tab, s)
	}
	e.u(id)
}
func (e *enc) ints(v []int) {
	e.u(uint64(len(v)))
	for _, x := range v {
		e.i(int64(x))
	}
}
func (e *enc) words(v []uint64) {
	e.u(uint64(len(v)))
	for _, x := range v {
		e.u(x)
	}
}
func (e *enc) i32s(v []int32) {
	e.u(uint64(len(v)))
	for _, x := range v {
		e.i(int64(x))
	}
}

// Encode serializes a parsed+modeled application plus its thread-escape
// facts. The model must carry its points-to result (every BuildContext
// model does).
func Encode(pkg *apk.Package, model *threadify.Model, esc *escape.Result) []byte {
	e := &enc{strs: make(map[string]uint64)}
	e.encodePackage(pkg)
	e.encodeModel(model)
	e.encodeSnapshot(model.PTS.Snapshot())
	e.encodeEscape(esc)

	// Header + string table + body.
	out := make([]byte, 0, len(e.body)+len(e.tab)*16+64)
	out = append(out, magic[:]...)
	out = binary.AppendUvarint(out, Version)
	out = binary.AppendUvarint(out, uint64(len(e.tab)))
	for _, s := range e.tab {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	return append(out, e.body...)
}

func (e *enc) encodePackage(pkg *apk.Package) {
	e.s(pkg.Name)
	classes := pkg.Program.Classes()
	e.u(uint64(len(classes)))
	for _, c := range classes {
		e.s(c.Name)
		e.s(c.Super)
		e.u(uint64(len(c.Interfaces)))
		for _, iface := range c.Interfaces {
			e.s(iface)
		}
		e.s(c.Outer)
		e.b(c.IsIface)
		e.u(uint64(len(c.Fields)))
		for _, f := range c.Fields {
			e.s(f.Name)
			e.s(f.Type)
			e.b(f.Static)
		}
		e.u(uint64(len(c.Methods)))
		for _, m := range c.Methods {
			e.encodeMethod(m)
		}
	}
	m := pkg.Manifest
	e.s(m.Package)
	comps := m.Components()
	e.u(uint64(len(comps)))
	for _, c := range comps {
		e.i(int64(c.Kind))
		e.s(c.Class)
		e.b(c.Main)
		e.b(c.Reachable)
	}
}

func (e *enc) encodeMethod(m *ir.Method) {
	e.s(m.Name)
	e.i(int64(m.NumArgs))
	e.b(m.Static)
	e.b(m.Synch)
	e.b(m.Abstract)
	e.i(int64(m.NumRegs))
	labels := make([]string, 0, len(m.Labels))
	for l := range m.Labels {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	e.u(uint64(len(labels)))
	for _, l := range labels {
		e.s(l)
		e.i(int64(m.Labels[l]))
	}
	e.u(uint64(len(m.Instrs)))
	for _, in := range m.Instrs {
		e.i(int64(in.Op))
		e.i(int64(in.A))
		e.i(int64(in.B))
		e.ints(in.Args)
		e.s(in.Field.Class)
		e.s(in.Field.Name)
		e.s(in.Type)
		e.s(in.Callee.Class)
		e.s(in.Callee.Name)
		e.s(in.Target)
		e.i(in.IntVal)
		e.s(in.StrVal)
	}
}

func (e *enc) encodeModel(model *threadify.Model) {
	e.u(uint64(len(model.Threads)))
	for _, t := range model.Threads {
		e.i(int64(t.ID))
		e.i(int64(t.Kind))
		e.i(int64(t.Post))
		e.s(t.Origin)
		e.s(t.Entry.Method)
		e.i(int64(t.Entry.Recv))
		e.i(int64(t.Parent))
		e.s(t.Site.Method)
		e.i(int64(t.Site.Index))
		e.b(t.Looper)
		e.s(t.Component)
	}
	compObj := model.ComponentObjs()
	classes := make([]string, 0, len(compObj))
	for cls := range compObj {
		classes = append(classes, cls)
	}
	sort.Strings(classes)
	e.u(uint64(len(classes)))
	for _, cls := range classes {
		e.s(cls)
		e.i(int64(compObj[cls]))
	}
}

func (e *enc) encodeSnapshot(s *pointsto.Snapshot) {
	e.u(uint64(len(s.Objs)))
	for _, o := range s.Objs {
		e.s(o.Site)
		e.s(o.Class)
		e.s(o.Ctx)
	}
	e.u(uint64(len(s.MethodNames)))
	for _, n := range s.MethodNames {
		e.s(n)
	}
	e.u(uint64(len(s.MethodMctxs)))
	for _, mcs := range s.MethodMctxs {
		e.i32s(mcs)
	}
	e.u(uint64(len(s.Mctxs)))
	for _, mc := range s.Mctxs {
		e.i(int64(mc.Method))
		e.i(int64(mc.Recv))
		e.i(int64(mc.VarBase))
		e.i(int64(mc.NRegs))
	}
	e.u(uint64(len(s.FieldNames)))
	for _, n := range s.FieldNames {
		e.s(n)
	}
	e.u(uint64(len(s.VarPts)))
	for _, w := range s.VarPts {
		e.words(w)
	}
	e.i32s(s.Parent)
	e.words(s.FPKeys)
	e.u(uint64(len(s.FPSets)))
	for _, w := range s.FPSets {
		e.words(w)
	}
	e.u(uint64(len(s.StaticNames)))
	for _, n := range s.StaticNames {
		e.s(n)
	}
	e.u(uint64(len(s.StaticSets)))
	for _, w := range s.StaticSets {
		e.words(w)
	}
	e.words(s.EdgeKeys)
	e.u(uint64(len(s.EdgeVals)))
	for _, v := range s.EdgeVals {
		e.i32s(v)
	}
	e.u(uint64(len(s.SpawnEdges)))
	for _, se := range s.SpawnEdges {
		e.s(se.CallerMethod)
		e.i(int64(se.CallerRecv))
		e.i(int64(se.Site))
		e.i(int64(se.Tag))
		e.s(se.TargetMethod)
		e.i(int64(se.TargetRecv))
	}
	e.i(int64(s.Iterations))
	e.i(s.DeltaObjs)
}

// --- decoder ----------------------------------------------------------

var errTruncated = errors.New("ircache: truncated blob")

type dec struct {
	data []byte
	pos  int
	tab  []string
}

func (d *dec) u() uint64 {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		panic(errTruncated)
	}
	d.pos += n
	return v
}
func (d *dec) i() int64 {
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		panic(errTruncated)
	}
	d.pos += n
	return v
}
func (d *dec) b() bool { return d.u() != 0 }
func (d *dec) s() string {
	id := d.u()
	if id >= uint64(len(d.tab)) {
		panic(fmt.Errorf("ircache: string id %d out of table range %d", id, len(d.tab)))
	}
	return d.tab[id]
}

// n reads a count and sanity-bounds it against the remaining bytes (any
// element costs ≥1 byte), so corrupt counts fail instead of allocating.
func (d *dec) n() int {
	v := d.u()
	if v > uint64(len(d.data)-d.pos) {
		panic(fmt.Errorf("ircache: count %d exceeds remaining %d bytes", v, len(d.data)-d.pos))
	}
	return int(v)
}
func (d *dec) ints() []int {
	n := d.n()
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.i())
	}
	return out
}
func (d *dec) words() []uint64 {
	n := d.n()
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.u()
	}
	return out
}
func (d *dec) i32s() []int32 {
	n := d.n()
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.i())
	}
	return out
}

// Decoded is a restored application: the package, the fully wired
// model (hierarchy, points-to result, thread forest), and the
// thread-escape facts the detection context builds on.
type Decoded struct {
	Pkg    *apk.Package
	Model  *threadify.Model
	Escape *escape.Result
}

// Decode rebuilds a Decoded from an Encode blob. Any malformed input —
// wrong magic, version skew, truncation, out-of-range references —
// returns an error; the decoder never panics out.
func Decode(data []byte) (out *Decoded, err error) {
	defer func() {
		// The IR constructors panic on structural violations (duplicate
		// class, bad label) and the reader panics on truncation; a corrupt
		// blob surfaces all of those as a decode error.
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("ircache: corrupt blob: %w", e)
			} else {
				err = fmt.Errorf("ircache: corrupt blob: %v", r)
			}
			out = nil
		}
	}()
	if len(data) < len(magic)+2 || string(data[:4]) != string(magic[:]) {
		return nil, errors.New("ircache: bad magic")
	}
	d := &dec{data: data, pos: len(magic)}
	if v := d.u(); v != Version {
		return nil, fmt.Errorf("ircache: version %d, want %d", v, Version)
	}
	nstr := d.n()
	d.tab = make([]string, nstr)
	for i := range d.tab {
		l := d.n()
		if d.pos+l > len(d.data) {
			return nil, errTruncated
		}
		d.tab[i] = string(d.data[d.pos : d.pos+l])
		d.pos += l
	}

	pkg := d.decodePackage()
	threads, compObj := d.decodeModelParts()
	snap := d.decodeSnapshot()
	esc := d.decodeEscape()
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("ircache: %d trailing bytes", len(d.data)-d.pos)
	}

	h := cha.New(pkg.Program)
	pts := pointsto.FromSnapshot(h, snap)
	model := threadify.Restore(pkg, pts, threads, compObj)
	return &Decoded{Pkg: pkg, Model: model, Escape: esc}, nil
}

func (d *dec) decodePackage() *apk.Package {
	name := d.s()
	prog := ir.NewProgram()
	for nc := d.n(); nc > 0; nc-- {
		c := ir.NewClass(d.s(), d.s())
		for ni := d.n(); ni > 0; ni-- {
			c.Interfaces = append(c.Interfaces, d.s())
		}
		c.Outer = d.s()
		c.IsIface = d.b()
		for nf := d.n(); nf > 0; nf-- {
			c.AddField(&ir.Field{Name: d.s(), Type: d.s(), Static: d.b()})
		}
		for nm := d.n(); nm > 0; nm-- {
			c.AddMethod(d.decodeMethod(c.Name))
		}
		prog.AddClass(c)
	}
	man := manifest.New(d.s())
	for n := d.n(); n > 0; n-- {
		man.Add(&manifest.Component{
			Kind:      manifest.ComponentKind(d.i()),
			Class:     d.s(),
			Main:      d.b(),
			Reachable: d.b(),
		})
	}
	return &apk.Package{Name: name, Program: prog, Manifest: man}
}

func (d *dec) decodeMethod(class string) *ir.Method {
	m := ir.NewMethod(class, d.s(), int(d.i()))
	m.Static = d.b()
	m.Synch = d.b()
	m.Abstract = d.b()
	m.NumRegs = int(d.i())
	for n := d.n(); n > 0; n-- {
		m.Labels[d.s()] = int(d.i())
	}
	ni := d.n()
	if ni > 0 {
		m.Instrs = make([]ir.Instr, ni)
	}
	for i := 0; i < ni; i++ {
		m.Instrs[i] = ir.Instr{
			Op:     ir.Op(d.i()),
			A:      int(d.i()),
			B:      int(d.i()),
			Args:   d.ints(),
			Field:  ir.FieldRef{Class: d.s(), Name: d.s()},
			Type:   d.s(),
			Callee: ir.MethodRef{Class: d.s(), Name: d.s()},
			Target: d.s(),
			IntVal: d.i(),
			StrVal: d.s(),
		}
	}
	return m
}

func (d *dec) decodeModelParts() ([]*threadify.Thread, map[string]pointsto.ObjID) {
	n := d.n()
	threads := make([]*threadify.Thread, 0, n)
	for ; n > 0; n-- {
		threads = append(threads, &threadify.Thread{
			ID:        int(d.i()),
			Kind:      threadify.Kind(d.i()),
			Post:      framework.PostKind(d.i()),
			Origin:    d.s(),
			Entry:     threadify.MCtx{Method: d.s(), Recv: pointsto.ObjID(d.i())},
			Parent:    int(d.i()),
			Site:      ir.InstrID{Method: d.s(), Index: int(d.i())},
			Looper:    d.b(),
			Component: d.s(),
		})
	}
	compObj := make(map[string]pointsto.ObjID)
	for n := d.n(); n > 0; n-- {
		compObj[d.s()] = pointsto.ObjID(d.i())
	}
	return threads, compObj
}

func (d *dec) decodeSnapshot() *pointsto.Snapshot {
	s := &pointsto.Snapshot{}
	s.Objs = make([]pointsto.Obj, d.n())
	for i := range s.Objs {
		s.Objs[i] = pointsto.Obj{Site: d.s(), Class: d.s(), Ctx: d.s()}
	}
	s.MethodNames = make([]string, d.n())
	for i := range s.MethodNames {
		s.MethodNames[i] = d.s()
	}
	s.MethodMctxs = make([][]int32, d.n())
	for i := range s.MethodMctxs {
		s.MethodMctxs[i] = d.i32s()
	}
	s.Mctxs = make([]pointsto.MctxSnap, d.n())
	for i := range s.Mctxs {
		s.Mctxs[i] = pointsto.MctxSnap{
			Method: int32(d.i()), Recv: int32(d.i()),
			VarBase: int32(d.i()), NRegs: int32(d.i()),
		}
	}
	s.FieldNames = make([]string, d.n())
	for i := range s.FieldNames {
		s.FieldNames[i] = d.s()
	}
	s.VarPts = make([][]uint64, d.n())
	for i := range s.VarPts {
		s.VarPts[i] = d.words()
	}
	s.Parent = d.i32s()
	s.FPKeys = d.words()
	s.FPSets = make([][]uint64, d.n())
	for i := range s.FPSets {
		s.FPSets[i] = d.words()
	}
	s.StaticNames = make([]string, d.n())
	for i := range s.StaticNames {
		s.StaticNames[i] = d.s()
	}
	s.StaticSets = make([][]uint64, d.n())
	for i := range s.StaticSets {
		s.StaticSets[i] = d.words()
	}
	s.EdgeKeys = d.words()
	s.EdgeVals = make([][]int32, d.n())
	for i := range s.EdgeVals {
		s.EdgeVals[i] = d.i32s()
	}
	s.SpawnEdges = make([]pointsto.SpawnEdge, d.n())
	for i := range s.SpawnEdges {
		s.SpawnEdges[i] = pointsto.SpawnEdge{
			CallerMethod: d.s(),
			CallerRecv:   pointsto.ObjID(d.i()),
			Site:         int(d.i()),
			Tag:          int(d.i()),
			TargetMethod: d.s(),
			TargetRecv:   pointsto.ObjID(d.i()),
		}
	}
	s.Iterations = int(d.i())
	s.DeltaObjs = d.i()
	return s
}

// encodeEscape writes the thread-escape rows sorted by object ID, so
// identical inputs keep producing identical bytes.
func (e *enc) encodeEscape(esc *escape.Result) {
	objs, reachers, escaped := esc.Snapshot()
	idx := make([]int, len(objs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return objs[idx[a]] < objs[idx[b]] })
	e.u(uint64(len(objs)))
	for _, i := range idx {
		e.i(int64(objs[i]))
		e.u(uint64(reachers[i]))
		e.b(escaped[i])
	}
}

func (d *dec) decodeEscape() *escape.Result {
	n := d.n()
	objs := make([]pointsto.ObjID, n)
	reachers := make([]int, n)
	escaped := make([]bool, n)
	for i := 0; i < n; i++ {
		objs[i] = pointsto.ObjID(d.i())
		reachers[i] = int(d.u())
		escaped[i] = d.b()
	}
	return escape.FromSnapshot(objs, reachers, escaped)
}
