package apk

import (
	"testing"

	"nadroid/internal/framework"
	"nadroid/internal/ir"
	"nadroid/internal/manifest"
)

func TestValidateCatchesMissingComponentClass(t *testing.T) {
	prog := ir.NewProgram()
	framework.Declare(prog)
	man := manifest.New("demo")
	man.Add(&manifest.Component{Kind: manifest.ActivityComponent, Class: "demo/Missing", Reachable: true})
	pkg := &Package{Name: "demo", Program: prog, Manifest: man}
	if err := pkg.Validate(); err == nil {
		t.Fatal("expected error for missing component class")
	}
}

func TestValidateCatchesBadIR(t *testing.T) {
	prog := ir.NewProgram()
	framework.Declare(prog)
	c := ir.NewClass("demo/A", framework.Activity)
	m := ir.NewMethod("demo/A", "onCreate", 1)
	m.Instrs = []ir.Instr{{Op: ir.OpGoto, Target: "nowhere"}}
	c.AddMethod(m)
	prog.AddClass(c)
	man := manifest.New("demo")
	man.Add(&manifest.Component{Kind: manifest.ActivityComponent, Class: "demo/A", Reachable: true})
	pkg := &Package{Name: "demo", Program: prog, Manifest: man}
	if err := pkg.Validate(); err == nil {
		t.Fatal("expected IR validation error")
	}
}

func TestValidOKAndSize(t *testing.T) {
	prog := ir.NewProgram()
	framework.Declare(prog)
	c := ir.NewClass("demo/A", framework.Activity)
	m := ir.NewMethod("demo/A", "onCreate", 1)
	m.Instrs = []ir.Instr{{Op: ir.OpReturn, A: ir.NoReg}}
	c.AddMethod(m)
	prog.AddClass(c)
	man := manifest.New("demo")
	man.Add(&manifest.Component{Kind: manifest.ActivityComponent, Class: "demo/A", Reachable: true})
	pkg := &Package{Name: "demo", Program: prog, Manifest: man}
	if err := pkg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if pkg.Size() != 1 {
		t.Errorf("Size = %d, want 1", pkg.Size())
	}
}
