// Package apk bundles a program and its manifest into the unit nAdroid
// analyzes — the stand-in for an Android APK package.
package apk

import (
	"fmt"

	"nadroid/internal/ir"
	"nadroid/internal/manifest"
)

// Package is one analyzable application.
type Package struct {
	Name     string
	Program  *ir.Program
	Manifest *manifest.Manifest
}

// Validate checks the package for structural problems: IR invariants and
// manifest components whose classes do not exist.
func (p *Package) Validate() error {
	if err := p.Program.Validate(); err != nil {
		return err
	}
	for _, c := range p.Manifest.Components() {
		if p.Program.Class(c.Class) == nil {
			return fmt.Errorf("apk %s: manifest %s component %s has no class", p.Name, c.Kind, c.Class)
		}
	}
	return nil
}

// Size returns total instruction count (the corpus LOC stand-in).
func (p *Package) Size() int { return p.Program.Size() }
