package framework_test

import (
	"testing"

	"nadroid/internal/appbuilder"
	"nadroid/internal/cha"
	"nadroid/internal/framework"
)

// hierarchyFixture builds a hierarchy with app subclasses of the
// framework types.
func hierarchyFixture(t *testing.T) *cha.Hierarchy {
	t.Helper()
	b := appbuilder.New("fw")
	b.Activity("fw/Act")
	b.HandlerClass("fw/H")
	b.AsyncTaskClass("fw/Task")
	b.ThreadClass("fw/Thr")
	// A second-level Thread subclass: teardown/cancel classification must
	// see through the full super chain, not just the direct parent.
	b.Class("fw/Thr2", "fw/Thr")
	b.Runnable("fw/Run")
	b.Class("fw/Pool", framework.Object, framework.ExecutorService)
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cha.New(pkg.Program)
}

func TestClassifyPost(t *testing.T) {
	h := hierarchyFixture(t)
	cases := []struct {
		recv, method string
		want         framework.PostKind
	}{
		{"fw/H", "post", framework.PostRunnable},
		{"fw/H", "postDelayed", framework.PostRunnable},
		{"fw/H", "sendMessage", framework.PostSendMessage},
		{"fw/H", "sendEmptyMessage", framework.PostSendMessage},
		{framework.View, "post", framework.PostRunnable},
		{"fw/Act", "runOnUiThread", framework.PostRunnable},
		{"fw/Act", "bindService", framework.PostBindService},
		{"fw/Act", "registerReceiver", framework.PostRegisterReceiver},
		{"fw/Task", "execute", framework.PostExecuteTask},
		{"fw/Task", "publishProgress", framework.PostPublishProgress},
		{"fw/Thr", "start", framework.PostStartThread},
		{"fw/Pool", "execute", framework.PostExecutorSubmit},
		{"fw/Pool", "submit", framework.PostExecutorSubmit},
		{framework.Timer, "schedule", framework.PostTimerSchedule},
		// Non-posting lookalikes.
		{"fw/Run", "post", framework.PostNone},
		{"fw/Act", "sendMessage", framework.PostNone},
		{"fw/Thr", "execute", framework.PostNone},
	}
	for _, c := range cases {
		if got := framework.ClassifyPost(h, c.recv, c.method); got != c.want {
			t.Errorf("ClassifyPost(%s, %s) = %v, want %v", c.recv, c.method, got, c.want)
		}
	}
}

func TestClassifyCancel(t *testing.T) {
	h := hierarchyFixture(t)
	cases := []struct {
		recv, method string
		want         framework.CancelKind
	}{
		{"fw/Act", "finish", framework.CancelFinish},
		{"fw/Act", "unbindService", framework.CancelUnbindService},
		{"fw/Act", "unregisterReceiver", framework.CancelUnregisterReceiver},
		{"fw/H", "removeCallbacksAndMessages", framework.CancelRemoveCallbacks},
		{"fw/Task", "cancel", framework.CancelTask},
		{"fw/H", "finish", framework.CancelNone},
		{"fw/Run", "cancel", framework.CancelNone},
	}
	for _, c := range cases {
		if got := framework.ClassifyCancel(h, c.recv, c.method); got != c.want {
			t.Errorf("ClassifyCancel(%s, %s) = %v, want %v", c.recv, c.method, got, c.want)
		}
	}
}

// TestClassifyCancelEdgeCases pins down the overload pair and the
// receiver-type gates: both Handler.removeCallbacks spellings cancel,
// same-named methods on non-framework receivers never do, and the
// receiver check walks the whole super chain.
func TestClassifyCancelEdgeCases(t *testing.T) {
	h := hierarchyFixture(t)
	cases := []struct {
		recv, method string
		want         framework.CancelKind
	}{
		// Handler.removeCallbacks / removeCallbacksAndMessages are an
		// overload pair: both drop pending posts.
		{"fw/H", "removeCallbacks", framework.CancelRemoveCallbacks},
		{framework.Handler, "removeCallbacks", framework.CancelRemoveCallbacks},
		{framework.Handler, "removeCallbacksAndMessages", framework.CancelRemoveCallbacks},
		// The method name alone is not enough — the receiver must be the
		// right framework type.
		{"fw/Act", "removeCallbacks", framework.CancelNone},
		{"fw/H", "cancel", framework.CancelNone},
		{framework.Timer, "cancel", framework.CancelNone},
		{"fw/Thr", "cancel", framework.CancelNone},
		{"fw/H", "unregisterReceiver", framework.CancelNone},
		{"fw/Run", "finish", framework.CancelNone},
		// Activities are Contexts: the Context-gated cancels apply.
		{"fw/Act", "unbindService", framework.CancelUnbindService},
		// cancel on a deep AsyncTask chain would classify; an unrelated
		// deep chain (Thread sub-subclass) must not.
		{"fw/Thr2", "cancel", framework.CancelNone},
		// Unknown receivers classify as nothing rather than panicking.
		{"fw/Nope", "finish", framework.CancelNone},
	}
	for _, c := range cases {
		if got := framework.ClassifyCancel(h, c.recv, c.method); got != c.want {
			t.Errorf("ClassifyCancel(%s, %s) = %v, want %v", c.recv, c.method, got, c.want)
		}
	}
}

// TestClassifyThreadControl covers the leaked-thread teardown evidence:
// join/interrupt classify only on Thread subtypes — including aliased
// receivers typed as a deeper subclass or as the framework root — and
// lookalike methods on non-thread receivers classify as none.
func TestClassifyThreadControl(t *testing.T) {
	h := hierarchyFixture(t)
	cases := []struct {
		recv, method string
		want         framework.ThreadControlKind
	}{
		{framework.Thread, "join", framework.ThreadControlJoin},
		{framework.Thread, "interrupt", framework.ThreadControlInterrupt},
		{"fw/Thr", "join", framework.ThreadControlJoin},
		{"fw/Thr", "interrupt", framework.ThreadControlInterrupt},
		// The receiver's static type may be a deeper subclass (an aliased
		// receiver after threadification); the super chain still reaches
		// Thread.
		{"fw/Thr2", "join", framework.ThreadControlJoin},
		{"fw/Thr2", "interrupt", framework.ThreadControlInterrupt},
		// Non-framework lookalikes: a Runnable is not a Thread, an
		// Activity is not a Thread, and HandlerThread-ish method names on
		// the wrong receiver stay unclassified.
		{"fw/Run", "join", framework.ThreadControlNone},
		{"fw/Run", "interrupt", framework.ThreadControlNone},
		{"fw/Act", "interrupt", framework.ThreadControlNone},
		{"fw/Task", "join", framework.ThreadControlNone},
		{"fw/Pool", "join", framework.ThreadControlNone},
		// Other Thread methods are not teardown evidence.
		{"fw/Thr", "start", framework.ThreadControlNone},
		{"fw/Thr", "run", framework.ThreadControlNone},
		{"fw/Nope", "join", framework.ThreadControlNone},
	}
	for _, c := range cases {
		if got := framework.ClassifyThreadControl(h, c.recv, c.method); got != c.want {
			t.Errorf("ClassifyThreadControl(%s, %s) = %v, want %v", c.recv, c.method, got, c.want)
		}
	}
}

func TestRegistrationCalls(t *testing.T) {
	h := hierarchyFixture(t)
	arg, iface, ok := framework.IsRegistrationCall(h, framework.View, "setOnClickListener")
	if !ok || arg != 0 || iface != framework.OnClickListener {
		t.Errorf("setOnClickListener = (%d,%q,%v)", arg, iface, ok)
	}
	_, iface, ok = framework.IsRegistrationCall(h, framework.LocationManager, "requestLocationUpdates")
	if !ok || iface != framework.LocationListener {
		t.Errorf("requestLocationUpdates = (%q,%v)", iface, ok)
	}
	if _, _, ok := framework.IsRegistrationCall(h, "fw/Act", "setOnClickListener"); ok {
		t.Error("setOnClickListener on a non-View must not register")
	}
}

func TestCallbackCatalogs(t *testing.T) {
	for _, n := range []string{"onCreate", "onResume", "onDestroy", "onCreateContextMenu", "onActivityResult"} {
		if !framework.IsLifecycleCallback(n) {
			t.Errorf("%s should be a lifecycle callback", n)
		}
	}
	if framework.IsLifecycleCallback("run") {
		t.Error("run is not a lifecycle callback")
	}
	if !framework.IsServiceLifecycleCallback("onStartCommand") {
		t.Error("onStartCommand is a service callback")
	}
	if ms := framework.ListenerMethods(framework.OnClickListener); len(ms) != 1 || ms[0] != "onClick" {
		t.Errorf("OnClickListener methods = %v", ms)
	}
	if framework.ListenerMethods("nonexistent/Iface") != nil {
		t.Error("unknown interfaces have no listener methods")
	}
}
