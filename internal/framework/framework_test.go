package framework_test

import (
	"testing"

	"nadroid/internal/appbuilder"
	"nadroid/internal/cha"
	"nadroid/internal/framework"
)

// hierarchyFixture builds a hierarchy with app subclasses of the
// framework types.
func hierarchyFixture(t *testing.T) *cha.Hierarchy {
	t.Helper()
	b := appbuilder.New("fw")
	b.Activity("fw/Act")
	b.HandlerClass("fw/H")
	b.AsyncTaskClass("fw/Task")
	b.ThreadClass("fw/Thr")
	b.Runnable("fw/Run")
	b.Class("fw/Pool", framework.Object, framework.ExecutorService)
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cha.New(pkg.Program)
}

func TestClassifyPost(t *testing.T) {
	h := hierarchyFixture(t)
	cases := []struct {
		recv, method string
		want         framework.PostKind
	}{
		{"fw/H", "post", framework.PostRunnable},
		{"fw/H", "postDelayed", framework.PostRunnable},
		{"fw/H", "sendMessage", framework.PostSendMessage},
		{"fw/H", "sendEmptyMessage", framework.PostSendMessage},
		{framework.View, "post", framework.PostRunnable},
		{"fw/Act", "runOnUiThread", framework.PostRunnable},
		{"fw/Act", "bindService", framework.PostBindService},
		{"fw/Act", "registerReceiver", framework.PostRegisterReceiver},
		{"fw/Task", "execute", framework.PostExecuteTask},
		{"fw/Task", "publishProgress", framework.PostPublishProgress},
		{"fw/Thr", "start", framework.PostStartThread},
		{"fw/Pool", "execute", framework.PostExecutorSubmit},
		{"fw/Pool", "submit", framework.PostExecutorSubmit},
		{framework.Timer, "schedule", framework.PostTimerSchedule},
		// Non-posting lookalikes.
		{"fw/Run", "post", framework.PostNone},
		{"fw/Act", "sendMessage", framework.PostNone},
		{"fw/Thr", "execute", framework.PostNone},
	}
	for _, c := range cases {
		if got := framework.ClassifyPost(h, c.recv, c.method); got != c.want {
			t.Errorf("ClassifyPost(%s, %s) = %v, want %v", c.recv, c.method, got, c.want)
		}
	}
}

func TestClassifyCancel(t *testing.T) {
	h := hierarchyFixture(t)
	cases := []struct {
		recv, method string
		want         framework.CancelKind
	}{
		{"fw/Act", "finish", framework.CancelFinish},
		{"fw/Act", "unbindService", framework.CancelUnbindService},
		{"fw/Act", "unregisterReceiver", framework.CancelUnregisterReceiver},
		{"fw/H", "removeCallbacksAndMessages", framework.CancelRemoveCallbacks},
		{"fw/Task", "cancel", framework.CancelTask},
		{"fw/H", "finish", framework.CancelNone},
		{"fw/Run", "cancel", framework.CancelNone},
	}
	for _, c := range cases {
		if got := framework.ClassifyCancel(h, c.recv, c.method); got != c.want {
			t.Errorf("ClassifyCancel(%s, %s) = %v, want %v", c.recv, c.method, got, c.want)
		}
	}
}

func TestRegistrationCalls(t *testing.T) {
	h := hierarchyFixture(t)
	arg, iface, ok := framework.IsRegistrationCall(h, framework.View, "setOnClickListener")
	if !ok || arg != 0 || iface != framework.OnClickListener {
		t.Errorf("setOnClickListener = (%d,%q,%v)", arg, iface, ok)
	}
	_, iface, ok = framework.IsRegistrationCall(h, framework.LocationManager, "requestLocationUpdates")
	if !ok || iface != framework.LocationListener {
		t.Errorf("requestLocationUpdates = (%q,%v)", iface, ok)
	}
	if _, _, ok := framework.IsRegistrationCall(h, "fw/Act", "setOnClickListener"); ok {
		t.Error("setOnClickListener on a non-View must not register")
	}
}

func TestCallbackCatalogs(t *testing.T) {
	for _, n := range []string{"onCreate", "onResume", "onDestroy", "onCreateContextMenu", "onActivityResult"} {
		if !framework.IsLifecycleCallback(n) {
			t.Errorf("%s should be a lifecycle callback", n)
		}
	}
	if framework.IsLifecycleCallback("run") {
		t.Error("run is not a lifecycle callback")
	}
	if !framework.IsServiceLifecycleCallback("onStartCommand") {
		t.Error("onStartCommand is a service callback")
	}
	if ms := framework.ListenerMethods(framework.OnClickListener); len(ms) != 1 || ms[0] != "onClick" {
		t.Errorf("OnClickListener methods = %v", ms)
	}
	if framework.ListenerMethods("nonexistent/Iface") != nil {
		t.Error("unknown interfaces have no listener methods")
	}
}
