// Package framework models the slice of the Android framework that
// nAdroid's analyses depend on: the class/interface catalog, the
// lifecycle and listener callback lists (the role FlowDroid's
// listener-callback list plays in the paper), the event-posting APIs that
// create posted callbacks, and the cancellation APIs behind the CHB
// filter.
package framework

// Well-known framework class and interface names. Apps subclass or
// implement these; the analyses recognize members by walking the class
// hierarchy up to one of these roots.
const (
	Object              = "java/lang/Object"
	Thread              = "java/lang/Thread"
	Runnable            = "java/lang/Runnable"
	Exception           = "java/lang/Exception"
	NullPointerExc      = "java/lang/NullPointerException"
	Context             = "android/content/Context"
	Activity            = "android/app/Activity"
	Service             = "android/app/Service"
	BroadcastReceiver   = "android/content/BroadcastReceiver"
	Handler             = "android/os/Handler"
	Message             = "android/os/Message"
	AsyncTask           = "android/os/AsyncTask"
	View                = "android/view/View"
	Intent              = "android/content/Intent"
	Bundle              = "android/os/Bundle"
	IBinder             = "android/os/IBinder"
	Binder              = "android/os/Binder"
	ServiceConnection   = "android/content/ServiceConnection"
	OnClickListener     = "android/view/View$OnClickListener"
	OnLongClickListener = "android/view/View$OnLongClickListener"
	OnTouchListener     = "android/view/View$OnTouchListener"
	LocationListener    = "android/location/LocationListener"
	LocationManager     = "android/location/LocationManager"
	SensorListener      = "android/hardware/SensorEventListener"
	SensorManager       = "android/hardware/SensorManager"
	SharedPrefsListener = "android/content/SharedPreferences$OnSharedPreferenceChangeListener"
	ExecutorService     = "java/util/concurrent/ExecutorService"
	Timer               = "java/util/Timer"
	TimerTask           = "java/util/TimerTask"
	Looper              = "android/os/Looper"
	// Fragment is declared so apps can subclass it, but threadification
	// deliberately does not model Fragment callbacks — the paper's
	// prototype shares this limitation (§8.1), and the Table 3 "Not
	// detected" row depends on it.
	Fragment = "android/app/Fragment"
	// ServiceManager.addService registers an IBinder whose transact
	// callback is invoked through the framework; the static analysis does
	// not model this channel (the §8.6 "unanalyzed code" false-negative
	// source), but the dynamic interpreter does.
	ServiceManager = "android/os/ServiceManager"
	// PowerManager / WakeLock back the §9 no-sleep energy-bug extension:
	// acquire/release ordering violations drain the battery the way
	// free/use ordering violations crash the app.
	PowerManager = "android/os/PowerManager"
	WakeLock     = "android/os/PowerManager$WakeLock"
)

// WakeLockOp classifies wake-lock API calls for the no-sleep detector.
type WakeLockOp int

const (
	WakeNone WakeLockOp = iota
	// WakeAcquire keeps the device awake until a matching release.
	WakeAcquire
	// WakeRelease ends the wake hold.
	WakeRelease
	// WakeNew creates a lock (PowerManager.newWakeLock).
	WakeNew
)

// ClassifyWakeLock classifies a virtual call against the wake-lock API.
func ClassifyWakeLock(h Hierarchy, recvClass, method string) WakeLockOp {
	switch method {
	case "acquire":
		if h.IsSubtypeOf(recvClass, WakeLock) {
			return WakeAcquire
		}
	case "release":
		if h.IsSubtypeOf(recvClass, WakeLock) {
			return WakeRelease
		}
	case "newWakeLock":
		if h.IsSubtypeOf(recvClass, PowerManager) {
			return WakeNew
		}
	}
	return WakeNone
}

// Lifecycle callback method names on Activity subclasses, in framework
// order. onCreate must happen before every other lifecycle or UI
// callback; onDestroy must happen after (MHB-Lifecycle, §6.1.1).
var LifecycleCallbacks = []string{
	"onCreate", "onStart", "onResume", "onPause", "onStop", "onDestroy",
	"onRestart", "onActivityResult", "onNewIntent", "onSaveInstanceState",
	"onRestoreInstanceState", "onRetainNonConfigurationInstance",
	"onConfigurationChanged", "onLowMemory", "onBackPressed",
	"onCreateContextMenu", "onCreateOptionsMenu", "onOptionsItemSelected",
	"onContextItemSelected", "onPrepareOptionsMenu", "onWindowFocusChanged",
}

// lifecycleSet indexes LifecycleCallbacks.
var lifecycleSet = toSet(LifecycleCallbacks)

// ServiceLifecycleCallbacks are lifecycle callbacks on Service subclasses.
var ServiceLifecycleCallbacks = []string{
	"onCreate", "onStartCommand", "onBind", "onUnbind", "onRebind", "onDestroy",
	"onLocChgAsyc", // paper Table 3 (MyTracks TrackRecordingService)
}

var serviceLifecycleSet = toSet(ServiceLifecycleCallbacks)

// ListenerCallback is one (interface, method) entry of the
// listener-callback catalog.
type ListenerCallback struct {
	Interface string
	Method    string
}

// ListenerCallbacks catalogs UI and system listener callbacks: apps
// register an object implementing Interface, after which the framework
// asynchronously invokes Method on it. These are entry callbacks.
var ListenerCallbacks = []ListenerCallback{
	{OnClickListener, "onClick"},
	{OnLongClickListener, "onLongClick"},
	{OnTouchListener, "onTouch"},
	{LocationListener, "onLocationChanged"},
	{LocationListener, "onProviderDisabled"},
	{LocationListener, "onProviderEnabled"},
	{SensorListener, "onSensorChanged"},
	{SensorListener, "onAccuracyChanged"},
	{SharedPrefsListener, "onSharedPreferenceChanged"},
}

// listenerByIface maps interface name -> callback method names.
var listenerByIface = func() map[string][]string {
	m := make(map[string][]string)
	for _, lc := range ListenerCallbacks {
		m[lc.Interface] = append(m[lc.Interface], lc.Method)
	}
	return m
}()

// PostKind enumerates the posting APIs of §4.2 plus native thread
// creation. Each recognized call site turns into one or more modeled
// child threads during threadification.
type PostKind int

const (
	PostNone PostKind = iota
	// PostRunnable: Handler.post / View.post / Activity.runOnUiThread —
	// enqueues arg0's run() on the receiver's looper.
	PostRunnable
	// PostSendMessage: Handler.sendMessage — schedules the *handler's*
	// handleMessage on its looper.
	PostSendMessage
	// PostBindService: Context.bindService(conn) — arg0's
	// onServiceConnected / onServiceDisconnected become posted callbacks.
	PostBindService
	// PostRegisterReceiver: Context.registerReceiver(rcv) — arg0's
	// onReceive becomes a posted callback.
	PostRegisterReceiver
	// PostExecuteTask: AsyncTask.execute — spawns doInBackground on a
	// background thread plus the onPreExecute/onPostExecute callbacks.
	PostExecuteTask
	// PostPublishProgress: AsyncTask.publishProgress — schedules
	// onProgressUpdate on the parent looper.
	PostPublishProgress
	// PostStartThread: Thread.start — spawns the receiver's run() as a
	// native thread.
	PostStartThread
	// PostExecutorSubmit: ExecutorService.execute/submit — runs arg0's
	// run() on a pool thread (native thread, non-looper).
	PostExecutorSubmit
	// PostTimerSchedule: Timer.schedule — runs arg0's run() on the timer
	// thread (native thread).
	PostTimerSchedule
)

var postKindNames = map[PostKind]string{
	PostNone:             "none",
	PostRunnable:         "post",
	PostSendMessage:      "sendMessage",
	PostBindService:      "bindService",
	PostRegisterReceiver: "registerReceiver",
	PostExecuteTask:      "execute",
	PostPublishProgress:  "publishProgress",
	PostStartThread:      "start",
	PostExecutorSubmit:   "submit",
	PostTimerSchedule:    "schedule",
}

func (k PostKind) String() string { return postKindNames[k] }

// CancelKind enumerates the API-based cancellation methods behind the
// unsound CHB filter (§6.2.1).
type CancelKind int

const (
	CancelNone CancelKind = iota
	// CancelFinish: Activity.finish — no UI callbacks of the activity run
	// afterwards.
	CancelFinish
	// CancelUnbindService: Context.unbindService — no further service
	// connection callbacks.
	CancelUnbindService
	// CancelUnregisterReceiver: Context.unregisterReceiver — no further
	// onReceive.
	CancelUnregisterReceiver
	// CancelRemoveCallbacks: Handler.removeCallbacksAndMessages — pending
	// posts/messages of the handler are dropped.
	CancelRemoveCallbacks
	// CancelTask: AsyncTask.cancel.
	CancelTask
)

var cancelKindNames = map[CancelKind]string{
	CancelNone:               "none",
	CancelFinish:             "finish",
	CancelUnbindService:      "unbindService",
	CancelUnregisterReceiver: "unregisterReceiver",
	CancelRemoveCallbacks:    "removeCallbacksAndMessages",
	CancelTask:               "cancel",
}

func (k CancelKind) String() string { return cancelKindNames[k] }

// Hierarchy answers subtype queries; package cha provides the
// implementation. framework depends only on this interface to avoid an
// import cycle.
type Hierarchy interface {
	// IsSubtypeOf reports whether class sub is super, extends it
	// (transitively) or implements it (transitively).
	IsSubtypeOf(sub, super string) bool
}

// ClassifyPost classifies a virtual call as a posting API given the
// receiver's static class and the invoked method name.
func ClassifyPost(h Hierarchy, recvClass, method string) PostKind {
	switch method {
	case "post", "postDelayed":
		if h.IsSubtypeOf(recvClass, Handler) || h.IsSubtypeOf(recvClass, View) {
			return PostRunnable
		}
	case "runOnUiThread":
		if h.IsSubtypeOf(recvClass, Activity) {
			return PostRunnable
		}
	case "sendMessage", "sendMessageDelayed", "sendEmptyMessage":
		if h.IsSubtypeOf(recvClass, Handler) {
			return PostSendMessage
		}
	case "bindService":
		if h.IsSubtypeOf(recvClass, Context) {
			return PostBindService
		}
	case "registerReceiver":
		if h.IsSubtypeOf(recvClass, Context) {
			return PostRegisterReceiver
		}
	case "execute":
		if h.IsSubtypeOf(recvClass, AsyncTask) {
			return PostExecuteTask
		}
		if h.IsSubtypeOf(recvClass, ExecutorService) {
			return PostExecutorSubmit
		}
	case "submit":
		if h.IsSubtypeOf(recvClass, ExecutorService) {
			return PostExecutorSubmit
		}
	case "publishProgress":
		if h.IsSubtypeOf(recvClass, AsyncTask) {
			return PostPublishProgress
		}
	case "start":
		if h.IsSubtypeOf(recvClass, Thread) {
			return PostStartThread
		}
	case "schedule":
		if h.IsSubtypeOf(recvClass, Timer) {
			return PostTimerSchedule
		}
	}
	return PostNone
}

// ThreadControlKind enumerates the thread-teardown APIs the
// leaked-thread detector accepts as evidence that a background thread is
// collected before its component dies.
type ThreadControlKind int

const (
	ThreadControlNone ThreadControlKind = iota
	// ThreadControlJoin: Thread.join — the caller blocks until the
	// receiver thread exits.
	ThreadControlJoin
	// ThreadControlInterrupt: Thread.interrupt — the receiver thread is
	// asked to wind down.
	ThreadControlInterrupt
)

var threadControlNames = map[ThreadControlKind]string{
	ThreadControlNone:      "none",
	ThreadControlJoin:      "join",
	ThreadControlInterrupt: "interrupt",
}

func (k ThreadControlKind) String() string { return threadControlNames[k] }

// ClassifyThreadControl classifies a virtual call as a thread-teardown
// API (join/interrupt on a Thread subclass).
func ClassifyThreadControl(h Hierarchy, recvClass, method string) ThreadControlKind {
	switch method {
	case "join":
		if h.IsSubtypeOf(recvClass, Thread) {
			return ThreadControlJoin
		}
	case "interrupt":
		if h.IsSubtypeOf(recvClass, Thread) {
			return ThreadControlInterrupt
		}
	}
	return ThreadControlNone
}

// ClassifyCancel classifies a virtual call as a cancellation API.
func ClassifyCancel(h Hierarchy, recvClass, method string) CancelKind {
	switch method {
	case "finish":
		if h.IsSubtypeOf(recvClass, Activity) {
			return CancelFinish
		}
	case "unbindService":
		if h.IsSubtypeOf(recvClass, Context) {
			return CancelUnbindService
		}
	case "unregisterReceiver":
		if h.IsSubtypeOf(recvClass, Context) {
			return CancelUnregisterReceiver
		}
	case "removeCallbacksAndMessages", "removeCallbacks":
		if h.IsSubtypeOf(recvClass, Handler) {
			return CancelRemoveCallbacks
		}
	case "cancel":
		if h.IsSubtypeOf(recvClass, AsyncTask) {
			return CancelTask
		}
	}
	return CancelNone
}

// IsLifecycleCallback reports whether method name is an Activity
// lifecycle (or lifecycle-adjacent UI) callback.
func IsLifecycleCallback(name string) bool { return lifecycleSet[name] }

// IsServiceLifecycleCallback reports whether method name is a Service
// lifecycle callback.
func IsServiceLifecycleCallback(name string) bool { return serviceLifecycleSet[name] }

// ListenerMethods returns the callback methods declared by listener
// interface iface, or nil if iface is not a known listener interface.
func ListenerMethods(iface string) []string { return listenerByIface[iface] }

// IsRegistrationCall reports whether a call registers a listener whose
// callbacks become entry callbacks (e.g. setOnClickListener,
// requestLocationUpdates), returning the argument index holding the
// listener and the listener interface.
func IsRegistrationCall(h Hierarchy, recvClass, method string) (argIdx int, iface string, ok bool) {
	switch method {
	case "setOnClickListener":
		if h.IsSubtypeOf(recvClass, View) {
			return 0, OnClickListener, true
		}
	case "setOnLongClickListener":
		if h.IsSubtypeOf(recvClass, View) {
			return 0, OnLongClickListener, true
		}
	case "setOnTouchListener":
		if h.IsSubtypeOf(recvClass, View) {
			return 0, OnTouchListener, true
		}
	case "requestLocationUpdates":
		if h.IsSubtypeOf(recvClass, LocationManager) {
			return 0, LocationListener, true
		}
	case "registerListener":
		if h.IsSubtypeOf(recvClass, SensorManager) {
			return 0, SensorListener, true
		}
	}
	return 0, "", false
}

// AsyncTaskBody is the background method of AsyncTask subclasses.
const AsyncTaskBody = "doInBackground"

// AsyncTaskCallbacks are the looper-side AsyncTask callbacks and their
// MHB positions: onPreExecute MHB {doInBackground, onProgressUpdate} MHB
// onPostExecute.
var AsyncTaskCallbacks = []string{"onPreExecute", "onProgressUpdate", "onPostExecute"}

// ServiceConnCallbacks are the ServiceConnection callbacks;
// onServiceConnected MHB onServiceDisconnected.
var ServiceConnCallbacks = []string{"onServiceConnected", "onServiceDisconnected"}

// ReceiverCallback is the BroadcastReceiver callback.
const ReceiverCallback = "onReceive"

// HandlerCallback is the Handler message callback.
const HandlerCallback = "handleMessage"

// RunMethod is Runnable.run / Thread.run.
const RunMethod = "run"

func toSet(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}
