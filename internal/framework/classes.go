package framework

import "nadroid/internal/ir"

// Declare adds the framework class skeletons to prog so app classes have
// resolvable supertypes. Framework methods are declared abstract; the
// static analyses treat calls to them as intrinsics (ClassifyPost /
// ClassifyCancel / IsRegistrationCall), and the dynamic interpreter
// implements their semantics natively.
func Declare(prog *ir.Program) {
	obj := ir.NewClass(Object, "")
	prog.AddClass(obj)

	iface := func(name string, methods ...string) *ir.Class {
		c := ir.NewClass(name, Object)
		c.IsIface = true
		for _, m := range methods {
			am := ir.NewMethod(name, m, 1)
			am.Abstract = true
			c.AddMethod(am)
		}
		prog.AddClass(c)
		return c
	}
	class := func(name, super string, methods ...string) *ir.Class {
		c := ir.NewClass(name, super)
		for _, m := range methods {
			am := ir.NewMethod(name, m, methodArity(m))
			am.Abstract = true
			c.AddMethod(am)
		}
		prog.AddClass(c)
		return c
	}

	iface(Runnable, RunMethod)
	iface(ServiceConnection, ServiceConnCallbacks...)
	iface(OnClickListener, "onClick")
	iface(OnLongClickListener, "onLongClick")
	iface(OnTouchListener, "onTouch")
	iface(LocationListener, "onLocationChanged", "onProviderDisabled", "onProviderEnabled")
	iface(SensorListener, "onSensorChanged", "onAccuracyChanged")
	iface(SharedPrefsListener, "onSharedPreferenceChanged")
	iface(ExecutorService, "execute", "submit")
	iface(IBinder, "transact")

	class(Exception, Object)
	class(NullPointerExc, Exception)
	class(Intent, Object)
	class(Bundle, Object)
	class(Message, Object)
	class(Looper, Object)
	class(Binder, Object, "transact")
	prog.Class(Binder).Interfaces = []string{IBinder}

	thread := class(Thread, Object, "start", RunMethod, "join", "interrupt")
	thread.Interfaces = []string{Runnable}

	class(Context, Object,
		"bindService", "unbindService", "registerReceiver", "unregisterReceiver",
		"startService", "stopService", "getSystemService")
	class(Activity, Context,
		"finish", "runOnUiThread", "findViewById", "getIntent", "setContentView")
	class(Service, Context, "stopSelf")
	class(BroadcastReceiver, Object)
	class(Handler, Object,
		"post", "postDelayed", "sendMessage", "sendMessageDelayed",
		"sendEmptyMessage", "removeCallbacksAndMessages", "removeCallbacks",
		"obtainMessage")
	class(AsyncTask, Object,
		"execute", "cancel", "publishProgress", "isCancelled")
	class(View, Object,
		"post", "setOnClickListener", "setOnLongClickListener",
		"setOnTouchListener", "setVisibility", "setEnabled")
	class(LocationManager, Object, "requestLocationUpdates", "removeUpdates")
	class(SensorManager, Object, "registerListener", "unregisterListener")
	class(Timer, Object, "schedule", "cancel")
	class(TimerTask, Object, RunMethod)
	prog.Class(TimerTask).Interfaces = []string{Runnable}
	class(Fragment, Object)
	class(ServiceManager, Object, "addService")
	class(PowerManager, Object, "newWakeLock")
	class(WakeLock, Object, "acquire", "release", "isHeld")
}

// methodArity gives the parameter count used for abstract framework
// method declarations; it only matters for builder bookkeeping.
func methodArity(m string) int {
	switch m {
	case "bindService", "registerReceiver", "requestLocationUpdates", "registerListener", "schedule", "postDelayed", "sendMessageDelayed":
		return 2
	case "finish", "stopSelf", "removeCallbacksAndMessages", "obtainMessage", "getIntent", "isCancelled":
		return 0
	default:
		return 1
	}
}
