// Package appbuilder provides a fluent API for constructing application
// packages in Go. The synthetic corpus, the unit-test fixtures and the
// examples all author apps through it rather than writing raw IR.
package appbuilder

import (
	"nadroid/internal/apk"
	"nadroid/internal/framework"
	"nadroid/internal/ir"
	"nadroid/internal/manifest"
)

// Builder accumulates one application package.
type Builder struct {
	name string
	prog *ir.Program
	man  *manifest.Manifest
}

// New starts an application named name with the framework classes
// pre-declared.
func New(name string) *Builder {
	prog := ir.NewProgram()
	framework.Declare(prog)
	return &Builder{name: name, prog: prog, man: manifest.New(name)}
}

// Program exposes the program under construction (tests use this).
func (b *Builder) Program() *ir.Program { return b.prog }

// Activity declares an Activity component class and registers it in the
// manifest as reachable.
func (b *Builder) Activity(name string) *ClassBuilder {
	cb := b.Class(name, framework.Activity)
	b.man.Add(&manifest.Component{Kind: manifest.ActivityComponent, Class: name, Reachable: true})
	return cb
}

// MainActivity declares the launcher activity.
func (b *Builder) MainActivity(name string) *ClassBuilder {
	cb := b.Class(name, framework.Activity)
	b.man.Add(&manifest.Component{Kind: manifest.ActivityComponent, Class: name, Main: true, Reachable: true})
	return cb
}

// UnreachableActivity declares an activity no intent can reach (a
// false-positive source in §8.5).
func (b *Builder) UnreachableActivity(name string) *ClassBuilder {
	cb := b.Class(name, framework.Activity)
	b.man.Add(&manifest.Component{Kind: manifest.ActivityComponent, Class: name, Reachable: false})
	return cb
}

// Service declares a Service component.
func (b *Builder) Service(name string) *ClassBuilder {
	cb := b.Class(name, framework.Service)
	b.man.Add(&manifest.Component{Kind: manifest.ServiceComponent, Class: name, Reachable: true})
	return cb
}

// Receiver declares a BroadcastReceiver component.
func (b *Builder) Receiver(name string) *ClassBuilder {
	cb := b.Class(name, framework.BroadcastReceiver)
	b.man.Add(&manifest.Component{Kind: manifest.ReceiverComponent, Class: name, Reachable: true})
	return cb
}

// Class declares a plain class extending super and implementing ifaces.
func (b *Builder) Class(name, super string, ifaces ...string) *ClassBuilder {
	c := ir.NewClass(name, super)
	c.Interfaces = append(c.Interfaces, ifaces...)
	b.prog.AddClass(c)
	return &ClassBuilder{b: b, c: c}
}

// Runnable declares a class implementing Runnable.
func (b *Builder) Runnable(name string) *ClassBuilder {
	return b.Class(name, framework.Object, framework.Runnable)
}

// HandlerClass declares a Handler subclass.
func (b *Builder) HandlerClass(name string) *ClassBuilder {
	return b.Class(name, framework.Handler)
}

// AsyncTaskClass declares an AsyncTask subclass.
func (b *Builder) AsyncTaskClass(name string) *ClassBuilder {
	return b.Class(name, framework.AsyncTask)
}

// ThreadClass declares a Thread subclass.
func (b *Builder) ThreadClass(name string) *ClassBuilder {
	return b.Class(name, framework.Thread)
}

// ServiceConn declares a ServiceConnection implementation.
func (b *Builder) ServiceConn(name string) *ClassBuilder {
	return b.Class(name, framework.Object, framework.ServiceConnection)
}

// Build seals and validates the package.
func (b *Builder) Build() (*apk.Package, error) {
	pkg := &apk.Package{Name: b.name, Program: b.prog, Manifest: b.man}
	if err := pkg.Validate(); err != nil {
		return nil, err
	}
	return pkg, nil
}

// MustBuild is Build that panics on error; corpus construction uses it
// because a malformed corpus app is a programming error.
func (b *Builder) MustBuild() *apk.Package {
	pkg, err := b.Build()
	if err != nil {
		panic(err)
	}
	return pkg
}

// ClassBuilder adds members to one class.
type ClassBuilder struct {
	b *Builder
	c *ir.Class
}

// Name returns the class name.
func (cb *ClassBuilder) Name() string { return cb.c.Name }

// Class returns the underlying IR class.
func (cb *ClassBuilder) Class() *ir.Class { return cb.c }

// Outer marks this class as an inner class of outer (affects DEvA's
// intra-class analysis scope).
func (cb *ClassBuilder) Outer(outer string) *ClassBuilder {
	cb.c.Outer = outer
	return cb
}

// Field declares a reference-typed instance field.
func (cb *ClassBuilder) Field(name, typ string) *ClassBuilder {
	cb.c.AddField(&ir.Field{Name: name, Type: typ})
	return cb
}

// StaticField declares a static field.
func (cb *ClassBuilder) StaticField(name, typ string) *ClassBuilder {
	cb.c.AddField(&ir.Field{Name: name, Type: typ, Static: true})
	return cb
}

// Method starts a method body with nargs parameters.
func (cb *ClassBuilder) Method(name string, nargs int) *MethodBuilder {
	m := ir.NewMethod(cb.c.Name, name, nargs)
	cb.c.AddMethod(m)
	return &MethodBuilder{cb: cb, m: m, next: m.NumRegs}
}

// SyncMethod starts a synchronized method.
func (cb *ClassBuilder) SyncMethod(name string, nargs int) *MethodBuilder {
	mb := cb.Method(name, nargs)
	mb.m.Synch = true
	return mb
}

// MethodBuilder emits instructions into one method. All emitters return
// the builder (or a result register) so bodies read top to bottom.
type MethodBuilder struct {
	cb   *ClassBuilder
	m    *ir.Method
	next int // next fresh register
}

// Method returns the method under construction.
func (mb *MethodBuilder) Method() *ir.Method { return mb.m }

// Reg allocates a fresh register.
func (mb *MethodBuilder) Reg() int {
	r := mb.next
	mb.next++
	if mb.next > mb.m.NumRegs {
		mb.m.NumRegs = mb.next
	}
	return r
}

// This returns the receiver register.
func (mb *MethodBuilder) This() int { return mb.m.ThisReg() }

// Arg returns the i-th parameter register.
func (mb *MethodBuilder) Arg(i int) int { return mb.m.ArgReg(i) }

func (mb *MethodBuilder) emit(in ir.Instr) *MethodBuilder {
	mb.m.Instrs = append(mb.m.Instrs, in)
	return mb
}

// Null sets register r to null.
func (mb *MethodBuilder) Null(r int) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpConstNull, A: r})
}

// NullReg allocates a register holding null.
func (mb *MethodBuilder) NullReg() int {
	r := mb.Reg()
	mb.Null(r)
	return r
}

// Int sets register r to an int constant.
func (mb *MethodBuilder) Int(r int, v int64) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpConstInt, A: r, IntVal: v})
}

// Str sets register r to a string constant.
func (mb *MethodBuilder) Str(r int, s string) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpConstStr, A: r, StrVal: s})
}

// New allocates an instance of cls into a fresh register.
func (mb *MethodBuilder) New(cls string) int {
	r := mb.Reg()
	mb.emit(ir.Instr{Op: ir.OpNew, A: r, Type: cls})
	return r
}

// NewInto allocates an instance of cls into r.
func (mb *MethodBuilder) NewInto(r int, cls string) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpNew, A: r, Type: cls})
}

// Move copies src into dst.
func (mb *MethodBuilder) Move(dst, src int) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpMove, A: dst, B: src})
}

// GetField loads base.cls.fld into a fresh register.
func (mb *MethodBuilder) GetField(base int, cls, fld string) int {
	r := mb.Reg()
	mb.emit(ir.Instr{Op: ir.OpGetField, A: r, B: base, Field: ir.FieldRef{Class: cls, Name: fld}})
	return r
}

// GetThis loads this.fld (field resolved on the declaring class chain).
func (mb *MethodBuilder) GetThis(fld string) int {
	return mb.GetField(mb.This(), mb.cb.c.Name, fld)
}

// PutField stores src into base.cls.fld.
func (mb *MethodBuilder) PutField(base int, cls, fld string, src int) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpPutField, B: base, A: src, Field: ir.FieldRef{Class: cls, Name: fld}})
}

// PutThis stores src into this.fld.
func (mb *MethodBuilder) PutThis(fld string, src int) *MethodBuilder {
	return mb.PutField(mb.This(), mb.cb.c.Name, fld, src)
}

// FreeThis stores null into this.fld — the paper's "free" operation.
func (mb *MethodBuilder) FreeThis(fld string) *MethodBuilder {
	return mb.PutThis(fld, mb.NullReg())
}

// Free stores null into base.cls.fld.
func (mb *MethodBuilder) Free(base int, cls, fld string) *MethodBuilder {
	return mb.PutField(base, cls, fld, mb.NullReg())
}

// GetStatic loads a static field into a fresh register.
func (mb *MethodBuilder) GetStatic(cls, fld string) int {
	r := mb.Reg()
	mb.emit(ir.Instr{Op: ir.OpGetStatic, A: r, Field: ir.FieldRef{Class: cls, Name: fld}})
	return r
}

// PutStatic stores src into a static field.
func (mb *MethodBuilder) PutStatic(cls, fld string, src int) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpPutStatic, A: src, Field: ir.FieldRef{Class: cls, Name: fld}})
}

// Invoke calls recv.cls.name(args...) returning a fresh result register.
func (mb *MethodBuilder) Invoke(recv int, cls, name string, args ...int) int {
	r := mb.Reg()
	mb.emit(ir.Instr{Op: ir.OpInvoke, A: r, B: recv, Args: args, Callee: ir.MethodRef{Class: cls, Name: name}})
	return r
}

// InvokeVoid calls recv.cls.name(args...) discarding the result.
func (mb *MethodBuilder) InvokeVoid(recv int, cls, name string, args ...int) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpInvoke, A: ir.NoReg, B: recv, Args: args, Callee: ir.MethodRef{Class: cls, Name: name}})
}

// InvokeThis calls this.name(args...) on the declaring class.
func (mb *MethodBuilder) InvokeThis(name string, args ...int) int {
	return mb.Invoke(mb.This(), mb.cb.c.Name, name, args...)
}

// InvokeStatic calls cls.name(args...).
func (mb *MethodBuilder) InvokeStatic(cls, name string, args ...int) int {
	r := mb.Reg()
	mb.emit(ir.Instr{Op: ir.OpInvokeStatic, A: r, Args: args, Callee: ir.MethodRef{Class: cls, Name: name}})
	return r
}

// Use dereferences the object in r by invoking a method on it; it is the
// canonical "f.use()" from the paper's examples. The callee class is the
// object's static type.
func (mb *MethodBuilder) Use(r int, cls string) *MethodBuilder {
	return mb.InvokeVoid(r, cls, "use")
}

// Label defines a label at the next instruction index.
func (mb *MethodBuilder) Label(name string) *MethodBuilder {
	mb.m.Labels[name] = len(mb.m.Instrs)
	return mb
}

// Goto jumps to label.
func (mb *MethodBuilder) Goto(label string) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpGoto, Target: label})
}

// IfNull branches to label when r is null.
func (mb *MethodBuilder) IfNull(r int, label string) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpIfNull, B: r, Target: label})
}

// IfNonNull branches to label when r is non-null.
func (mb *MethodBuilder) IfNonNull(r int, label string) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpIfNonNull, B: r, Target: label})
}

// IfCond emits an opaque conditional branch (path-insensitive to the
// static analysis; the interpreter treats it per interp.Options).
func (mb *MethodBuilder) IfCond(label string) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpIfCond, Target: label})
}

// Return emits a void return.
func (mb *MethodBuilder) Return() *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpReturn, A: ir.NoReg})
}

// ReturnReg returns the value in r.
func (mb *MethodBuilder) ReturnReg(r int) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpReturn, A: r})
}

// Lock acquires the monitor of the object in r.
func (mb *MethodBuilder) Lock(r int) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpMonitorEnter, B: r})
}

// Unlock releases the monitor of the object in r.
func (mb *MethodBuilder) Unlock(r int) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpMonitorExit, B: r})
}

// Throw throws the object in r.
func (mb *MethodBuilder) Throw(r int) *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpThrow, B: r})
}

// Nop emits a no-op (used by injection to keep indices stable).
func (mb *MethodBuilder) Nop() *MethodBuilder {
	return mb.emit(ir.Instr{Op: ir.OpNop})
}

// MethodOn adds a method to a class that was declared earlier; it panics
// on unknown classes (a fixture programming error).
func (b *Builder) MethodOn(cls, name string, nargs int) *MethodBuilder {
	c := b.prog.Class(cls)
	if c == nil {
		panic("appbuilder: MethodOn unknown class " + cls)
	}
	m := ir.NewMethod(cls, name, nargs)
	c.AddMethod(m)
	return &MethodBuilder{cb: &ClassBuilder{b: b, c: c}, m: m, next: m.NumRegs}
}
