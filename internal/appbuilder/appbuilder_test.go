package appbuilder

import (
	"testing"

	"nadroid/internal/framework"
	"nadroid/internal/ir"
)

func TestBuildValidates(t *testing.T) {
	b := New("demo")
	act := b.Activity("d/A")
	oc := act.Method("onCreate", 1)
	oc.Goto("nowhere") // invalid: label never defined
	pkg, err := b.Build()
	if err == nil {
		t.Fatalf("expected validation error, got package %v", pkg.Name)
	}
}

func TestComponentDeclaration(t *testing.T) {
	b := New("demo")
	b.MainActivity("d/Main")
	b.Activity("d/Other")
	b.UnreachableActivity("d/Dead")
	b.Service("d/Svc")
	b.Receiver("d/Rcv")
	for _, cls := range []string{"d/Main", "d/Other", "d/Dead", "d/Svc", "d/Rcv"} {
		if b.Program().Class(cls) == nil {
			t.Errorf("missing class %s", cls)
		}
	}
	pkg := b.MustBuild()
	if pkg.Manifest.MainActivity().Class != "d/Main" {
		t.Error("main activity not marked")
	}
	if pkg.Manifest.Component("d/Dead").Reachable {
		t.Error("unreachable activity must be marked")
	}
	if got := pkg.Manifest.Component("d/Svc").Kind.String(); got != "service" {
		t.Errorf("service kind = %s", got)
	}
}

func TestSupertypeWiring(t *testing.T) {
	b := New("demo")
	cases := map[string]string{
		b.HandlerClass("d/H").Name():   framework.Handler,
		b.AsyncTaskClass("d/T").Name(): framework.AsyncTask,
		b.ThreadClass("d/W").Name():    framework.Thread,
	}
	for cls, super := range cases {
		if got := b.Program().Class(cls).Super; got != super {
			t.Errorf("%s super = %s, want %s", cls, got, super)
		}
	}
	r := b.Runnable("d/R")
	if len(r.Class().Interfaces) != 1 || r.Class().Interfaces[0] != framework.Runnable {
		t.Error("Runnable interface missing")
	}
	sc := b.ServiceConn("d/C")
	if sc.Class().Interfaces[0] != framework.ServiceConnection {
		t.Error("ServiceConnection interface missing")
	}
}

func TestMethodBuilderEmitsExpectedInstrs(t *testing.T) {
	b := New("demo")
	c := b.Class("d/C", framework.Object)
	c.Field("f", "d/V")
	b.Class("d/V", framework.Object)
	mb := c.Method("m", 1)
	v := mb.New("d/V")
	mb.PutThis("f", v)
	got := mb.GetThis("f")
	mb.IfNonNull(got, "ok")
	mb.Return()
	mb.Label("ok")
	mb.Use(got, "d/V")
	mb.ReturnReg(got)

	m := mb.Method()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantOps := []ir.Op{ir.OpNew, ir.OpPutField, ir.OpGetField, ir.OpIfNonNull, ir.OpReturn, ir.OpInvoke, ir.OpReturn}
	if len(m.Instrs) != len(wantOps) {
		t.Fatalf("instr count = %d, want %d", len(m.Instrs), len(wantOps))
	}
	for i, op := range wantOps {
		if m.Instrs[i].Op != op {
			t.Errorf("instr %d = %v, want %v", i, m.Instrs[i].Op, op)
		}
	}
	if m.NumRegs < 3 {
		t.Errorf("NumRegs = %d, want >= 3", m.NumRegs)
	}
}

func TestFreeThisEmitsNullStore(t *testing.T) {
	b := New("demo")
	c := b.Class("d/C", framework.Object)
	c.Field("f", "d/V")
	b.Class("d/V", framework.Object)
	mb := c.Method("clear", 0)
	mb.FreeThis("f")
	mb.Return()
	m := mb.Method()
	oi := ir.ComputeOrigins(m)
	if !ir.IsFree(oi, m, 1) {
		t.Error("FreeThis must produce a free (putfield null)")
	}
}

func TestSyncMethodFlag(t *testing.T) {
	b := New("demo")
	c := b.Class("d/C", framework.Object)
	sm := c.SyncMethod("locked", 0)
	sm.Return()
	if !sm.Method().Synch {
		t.Error("SyncMethod must set Synch")
	}
}

func TestMethodOn(t *testing.T) {
	b := New("demo")
	b.Class("d/C", framework.Object)
	mb := b.MethodOn("d/C", "late", 0)
	mb.Return()
	if b.Program().Class("d/C").Method("late") == nil {
		t.Error("MethodOn must attach the method")
	}
	defer func() {
		if recover() == nil {
			t.Error("MethodOn on unknown class must panic")
		}
	}()
	b.MethodOn("d/Missing", "m", 0)
}
