package interp

import (
	"strings"
	"testing"

	"nadroid/internal/apk"
	"nadroid/internal/appbuilder"
	"nadroid/internal/framework"
)

func buildPkg(t *testing.T, f func(b *appbuilder.Builder)) *apk.Package {
	t.Helper()
	b := appbuilder.New("it")
	f(b)
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func runAll(pkg *apk.Package, opts Options) *World {
	w := NewWorld(pkg, opts)
	Run(w, nil)
	return w
}

func TestLifecycleOrderOnDefaultSchedule(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/A")
		for _, n := range []string{"onStart", "onResume", "onPause", "onStop", "onDestroy"} {
			act.Method(n, 0).Return()
		}
		act.Method("onCreate", 1).Return()
	})
	w := runAll(pkg, Options{Trace: true})
	trace := strings.Join(w.Trace(), "\n")
	idx := func(s string) int { return strings.Index(trace, s) }
	if !(idx("fire lifecycle:onCreate") >= 0 &&
		idx("fire lifecycle:onCreate") < idx("fire lifecycle:onStart") &&
		idx("fire lifecycle:onStart") < idx("fire lifecycle:onResume")) {
		t.Errorf("lifecycle chain out of order:\n%s", trace)
	}
}

func TestUIEventsRequireResumedState(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/A")
		act.Method("onResume", 0).Return()
		act.Method("onPause", 0).Return()
		oc := act.Method("onCreate", 1)
		view := oc.New(framework.View)
		l := oc.New("it/L")
		oc.InvokeVoid(view, framework.View, "setOnClickListener", l)
		oc.Return()
		b.Class("it/L", framework.Object, framework.OnClickListener).Method("onClick", 1).Return()
	})
	w := NewWorld(pkg, Options{Trace: true})
	Run(w, nil)
	trace := strings.Join(w.Trace(), "\n")
	clickAt := strings.Index(trace, "fire ui:")
	resumeAt := strings.Index(trace, "fire lifecycle:onResume")
	if clickAt >= 0 && (resumeAt < 0 || clickAt < resumeAt) {
		t.Errorf("clicks before onResume:\n%s", trace)
	}
}

func TestRemoveCallbacksDropsPendingMessages(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/A")
		act.Field("h", "it/H")
		h := b.HandlerClass("it/H")
		h.Field("outer", "it/A")
		hm := h.Method("handleMessage", 1)
		o := hm.GetThis("outer")
		f := hm.GetField(o, "it/A", "absent")
		hm.Use(f, framework.Object) // would NPE (field never set)
		hm.Return()
		act.Field("absent", framework.Object)
		oc := act.Method("onCreate", 1)
		hr := oc.New("it/H")
		oc.PutField(hr, "it/H", "outer", oc.This())
		oc.PutThis("h", hr)
		msg := oc.New(framework.Message)
		oc.InvokeVoid(hr, "it/H", "sendMessage", msg)
		// Immediately cancel: the pending handleMessage must never run.
		oc.InvokeVoid(hr, "it/H", "removeCallbacksAndMessages")
		oc.Return()
	})
	w := runAll(pkg, Options{})
	if len(w.NPEs()) != 0 {
		t.Errorf("removed message still ran: %v", w.NPEs())
	}
}

func TestUnregisterReceiverDisablesEvents(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/A")
		act.Field("rcv", "it/R")
		act.Field("f", framework.Object)
		r := b.Class("it/R", framework.BroadcastReceiver)
		r.Field("outer", "it/A")
		or := r.Method("onReceive", 1)
		o := or.GetThis("outer")
		f := or.GetField(o, "it/A", "f")
		or.Use(f, framework.Object)
		or.Return()
		oc := act.Method("onCreate", 1)
		rv := oc.New("it/R")
		oc.PutField(rv, "it/R", "outer", oc.This())
		oc.PutThis("rcv", rv)
		oc.InvokeVoid(oc.This(), "it/A", "registerReceiver", rv)
		oc.InvokeVoid(oc.This(), "it/A", "unregisterReceiver", rv)
		oc.Return()
	})
	w := runAll(pkg, Options{})
	if len(w.NPEs()) != 0 {
		t.Errorf("unregistered receiver still fired: %v", w.NPEs())
	}
}

func TestMaxStepsBoundsRunaway(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/A")
		oc := act.Method("onCreate", 1)
		oc.Label("loop")
		oc.Goto("loop")
	})
	w := NewWorld(pkg, Options{MaxSteps: 500})
	Run(w, nil)
	if w.Steps() > 500 {
		t.Errorf("steps = %d, want <= 500", w.Steps())
	}
}

func TestThrowAbortsTaskOnly(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/A")
		oc := act.Method("onCreate", 1)
		ex := oc.New(framework.Exception)
		oc.Throw(ex)
		oc.Return() // unreachable
		orr := act.Method("onResume", 0)
		orr.Return()
	})
	w := runAll(pkg, Options{Trace: true})
	trace := strings.Join(w.Trace(), "\n")
	if !strings.Contains(trace, "throw") {
		t.Error("throw not traced")
	}
	if !strings.Contains(trace, "fire lifecycle:onResume") {
		t.Error("execution must continue after an aborted task")
	}
}

func TestNPEAttributionNamesLoadSite(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/A")
		act.Field("f", "it/V")
		b.Class("it/V", framework.Object).Method("use", 0).Return()
		oc := act.Method("onCreate", 1)
		f := oc.GetThis("f") // null: never assigned
		oc.Use(f, "it/V")
		oc.Return()
	})
	w := runAll(pkg, Options{})
	if len(w.NPEs()) != 1 {
		t.Fatalf("NPEs = %v", w.NPEs())
	}
	npe := w.NPEs()[0]
	if npe.Field.Name != "f" {
		t.Errorf("NPE field = %v, want f", npe.Field)
	}
	if !strings.Contains(npe.LoadedAt.Method, "onCreate") {
		t.Errorf("LoadedAt = %v", npe.LoadedAt)
	}
}

func TestNPEAttributionThroughCallArguments(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/A")
		act.Field("f", "it/V")
		b.Class("it/V", framework.Object).Method("use", 0).Return()
		helper := act.Method("deref", 1)
		helper.Use(helper.Arg(0), "it/V")
		helper.Return()
		oc := act.Method("onCreate", 1)
		f := oc.GetThis("f")
		oc.InvokeThis("deref", f)
		oc.Return()
	})
	w := runAll(pkg, Options{})
	if len(w.NPEs()) != 1 {
		t.Fatalf("NPEs = %v", w.NPEs())
	}
	if !strings.Contains(w.NPEs()[0].LoadedAt.Method, "onCreate") {
		t.Errorf("load-site attribution lost across call: %v", w.NPEs()[0])
	}
}

func TestStopOnNPEHalts(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/A")
		act.Field("f", "it/V")
		b.Class("it/V", framework.Object).Method("use", 0).Return()
		oc := act.Method("onCreate", 1)
		f := oc.GetThis("f")
		oc.Use(f, "it/V")
		oc.Return()
		orr := act.Method("onResume", 0)
		g := orr.GetThis("f")
		orr.Use(g, "it/V")
		orr.Return()
	})
	w := NewWorld(pkg, Options{StopOnNPE: true})
	Run(w, nil)
	if len(w.NPEs()) != 1 {
		t.Errorf("StopOnNPE should record exactly one NPE, got %d", len(w.NPEs()))
	}
}

func TestUnreachableComponentsNeverRun(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		dead := b.UnreachableActivity("it/Dead")
		oc := dead.Method("onCreate", 1)
		f := oc.GetThis("f")
		oc.Use(f, framework.Object)
		oc.Return()
		dead.Field("f", framework.Object)
	})
	w := runAll(pkg, Options{})
	if len(w.NPEs()) != 0 {
		t.Errorf("unreachable component executed: %v", w.NPEs())
	}
}

func TestAsyncTaskChainOrder(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/A")
		task := b.AsyncTaskClass("it/T")
		task.Field("v", framework.Object)
		pre := task.Method("onPreExecute", 0)
		o := pre.New(framework.Object)
		pre.PutThis("v", o)
		pre.Return()
		dib := task.Method("doInBackground", 0)
		v := dib.GetThis("v")
		dib.Use(v, framework.Object) // safe only if pre ran first
		dib.Return()
		post := task.Method("onPostExecute", 0)
		v2 := post.GetThis("v")
		post.Use(v2, framework.Object)
		post.Return()
		oc := act.Method("onCreate", 1)
		tk := oc.New("it/T")
		oc.InvokeVoid(tk, "it/T", "execute")
		oc.Return()
	})
	w := runAll(pkg, Options{})
	if len(w.NPEs()) != 0 {
		t.Errorf("AsyncTask chain violated pre->body->post order: %v", w.NPEs())
	}
}

func TestWakeLockCounting(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/A")
		act.Field("wl", framework.WakeLock)
		oc := act.Method("onCreate", 1)
		pm := oc.New(framework.PowerManager)
		wl := oc.Invoke(pm, framework.PowerManager, "newWakeLock")
		oc.PutThis("wl", wl)
		oc.InvokeVoid(wl, framework.WakeLock, "acquire")
		oc.InvokeVoid(wl, framework.WakeLock, "acquire") // reentrant
		oc.InvokeVoid(wl, framework.WakeLock, "release")
		oc.Return()
	})
	w := runAll(pkg, Options{})
	if w.HeldWakeLocks() != 1 {
		t.Errorf("held = %d, want 1 (2 acquires - 1 release)", w.HeldWakeLocks())
	}

	pkg2 := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/B")
		oc := act.Method("onCreate", 1)
		pm := oc.New(framework.PowerManager)
		wl := oc.Invoke(pm, framework.PowerManager, "newWakeLock")
		oc.InvokeVoid(wl, framework.WakeLock, "acquire")
		oc.InvokeVoid(wl, framework.WakeLock, "release")
		oc.Return()
	})
	w2 := runAll(pkg2, Options{})
	if w2.HeldWakeLocks() != 0 {
		t.Errorf("held = %d, want 0 (balanced)", w2.HeldWakeLocks())
	}
}

func TestExecutorAndTimerSpawnThreads(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/A")
		act.Field("done", framework.Object)
		job := b.Runnable("it/Job")
		job.Field("outer", "it/A")
		rm := job.Method("run", 0)
		o := rm.GetThis("outer")
		v := rm.New(framework.Object)
		rm.PutField(o, "it/A", "done", v)
		rm.Return()
		tt := b.Class("it/Tick", framework.TimerTask)
		tt.Field("outer", "it/A")
		tm := tt.Method("run", 0)
		to := tm.GetThis("outer")
		tv := tm.New(framework.Object)
		tm.PutField(to, "it/A", "done", tv)
		tm.Return()
		oc := act.Method("onCreate", 1)
		pool := oc.New(framework.ExecutorService)
		j := oc.New("it/Job")
		oc.PutField(j, "it/Job", "outer", oc.This())
		oc.InvokeVoid(pool, framework.ExecutorService, "execute", j)
		timer := oc.New(framework.Timer)
		k := oc.New("it/Tick")
		oc.PutField(k, "it/Tick", "outer", oc.This())
		zero := oc.Reg()
		oc.Int(zero, 0)
		oc.InvokeVoid(timer, framework.Timer, "schedule", k, zero)
		oc.Return()
	})
	w := NewWorld(pkg, Options{Trace: true})
	Run(w, nil)
	trace := strings.Join(w.Trace(), "\n")
	if !strings.Contains(trace, "spawn pool:it/Job") {
		t.Errorf("executor job not spawned:\n%s", trace)
	}
	if !strings.Contains(trace, "spawn pool:it/Tick") {
		t.Errorf("timer task not spawned:\n%s", trace)
	}
}

func TestViewPostEnqueuesRunnable(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/A")
		job := b.Runnable("it/Job")
		job.Method("run", 0).Return()
		oc := act.Method("onCreate", 1)
		view := oc.New(framework.View)
		j := oc.New("it/Job")
		oc.InvokeVoid(view, framework.View, "post", j)
		oc.Return()
	})
	w := NewWorld(pkg, Options{Trace: true})
	Run(w, nil)
	trace := strings.Join(w.Trace(), "\n")
	if !strings.Contains(trace, "enqueue post:it/Job.run") {
		t.Errorf("View.post must enqueue on the looper:\n%s", trace)
	}
}

func TestSpawnFilterSuppressesThreads(t *testing.T) {
	pkg := buildPkg(t, func(b *appbuilder.Builder) {
		act := b.Activity("it/A")
		th := b.ThreadClass("it/W")
		th.Method("run", 0).Return()
		oc := act.Method("onCreate", 1)
		tv := oc.New("it/W")
		oc.InvokeVoid(tv, "it/W", "start")
		oc.Return()
	})
	opts := Options{Trace: true, SpawnFilter: func(class string) bool { return false }}
	w := NewWorld(pkg, opts)
	Run(w, nil)
	for _, line := range w.Trace() {
		if strings.HasPrefix(line, "spawn") {
			t.Errorf("spawn filter ignored: %s", line)
		}
	}
}
