package interp

import (
	"fmt"
	"sort"

	"nadroid/internal/apk"
	"nadroid/internal/cha"
	"nadroid/internal/framework"
	"nadroid/internal/ir"
	"nadroid/internal/manifest"
)

// Options configures a run.
type Options struct {
	// MaxSteps bounds total executed instructions (default 100k).
	MaxSteps int
	// MaxUIFires bounds how often each UI/listener event fires (default 2,
	// enough to expose the PHB unsoundness of repeated clicks).
	MaxUIFires int
	// MaxResumeCycles bounds onResume/onPause re-entries (default 2).
	MaxResumeCycles int
	// StopOnNPE ends the run at the first NullPointerException.
	StopOnNPE bool
	// TakeOpaqueBranches makes if-cond branches jump rather than fall
	// through (the static analysis is path-insensitive; the interpreter
	// must pick one policy per run).
	TakeOpaqueBranches bool
	// Trace records a human-readable execution trace.
	Trace bool
	// EventFilter, when set, restricts which external events may fire:
	// only events for which it returns true are schedulable. The
	// explorer uses it to focus a run on the callbacks involved in one
	// warning (the §7 "root entry callbacks" hint), shrinking the
	// schedule space.
	EventFilter func(method, component, name string) bool
	// SpawnFilter, when set, suppresses background threads whose class
	// it rejects — the thread-side counterpart of EventFilter for
	// focused exploration. Looper tasks are never suppressed.
	SpawnFilter func(class string) bool
	// Record captures a CAFA/DroidRacer-style execution trace: per-task
	// field accesses plus the happens-before edges between tasks
	// (posting, spawning, registration, lifecycle order). Package
	// dynrace consumes it for offline race detection.
	Record bool
	// RecordChoices makes Run keep the full option row (key + entry
	// method) at every multi-option choice point in ScheduleInfo.Choices.
	// The explorer's partial-order reduction needs the identities to
	// canonicalize schedule prefixes; off by default because computing
	// the entry refs allocates per choice point.
	RecordChoices bool
}

// AccessEvent is one recorded field access (Options.Record).
type AccessEvent struct {
	Task    int
	Instr   ir.InstrID
	Field   ir.FieldRef
	Obj     int // receiver object id; 0 for statics
	IsWrite bool
	IsNull  bool // write of null (a dynamic "free")
}

// TraceLog is the recorded execution: tasks, accesses, and HB edges.
type TraceLog struct {
	// TaskNames[i] names task i ("lifecycle:onCreate", "thread:...").
	TaskNames []string
	Accesses  []AccessEvent
	// HB lists (earlier, later) task edges: poster->postee,
	// spawner->thread, registrar->callback, and event-order constraints.
	HB [][2]int
}

func (o Options) withDefaults() Options {
	if o.MaxSteps <= 0 {
		o.MaxSteps = 100_000
	}
	if o.MaxUIFires <= 0 {
		o.MaxUIFires = 2
	}
	if o.MaxResumeCycles <= 0 {
		o.MaxResumeCycles = 2
	}
	return o
}

// NPE records one NullPointerException.
type NPE struct {
	// At is the faulting instruction (the dereference).
	At ir.InstrID
	// LoadedAt is the getfield that produced the null base, when known.
	LoadedAt ir.InstrID
	// Field is the field the null base was loaded from, when known.
	Field ir.FieldRef
	// Task names the callback/thread that faulted.
	Task string
}

func (n NPE) String() string {
	return fmt.Sprintf("NPE at %s (base loaded at %s from %s) in %s", n.At, n.LoadedAt, n.Field, n.Task)
}

// Frame is one activation record.
type frame struct {
	m     *ir.Method
	regs  []Value
	pc    int
	retTo int // caller register receiving the return value (NoReg: none)
	// loadSite tracks, per register, the getfield that produced its value
	// (for NPE attribution).
	loadSite map[int]ir.InstrID
}

// executor runs a stack of frames: the looper or one background thread.
type executor struct {
	id   int
	name string
	// looper executors pull tasks from the world queue when idle.
	isLooper bool
	stack    []*frame
	// component is the manifest component this execution belongs to.
	component string
	// onDone runs when the current task's outermost frame returns.
	onDone func(w *World)
	dead   bool
	// curTask is the trace task id currently executing (-1 when idle).
	curTask int
}

func (e *executor) idle() bool { return len(e.stack) == 0 }

// task is a queued looper work item.
type task struct {
	name      string
	m         *ir.Method
	recv      Value
	args      []Value
	component string
	onDone    func(w *World)
	// handler is the Handler object the task was posted through (for
	// removeCallbacksAndMessages).
	handler *Object
	// posterTask is the trace task that enqueued this one (-1 external).
	posterTask int
}

// extEvent is one external event the environment may deliver.
type extEvent struct {
	id        int
	name      string
	component string
	m         *ir.Method
	recv      Value
	args      []Value
	fired     int
	maxFires  int
	after     []*extEvent
	removed   bool
	// uiLike events stop firing once the component is finished/destroyed.
	uiLike bool
	// owner ties dynamically-registered events to the object passed to
	// the registration API (for unbind/unregister).
	owner *Object
	// needsResumed gates user-input events on the activity being in the
	// resumed state (real Android only delivers input to resumed
	// activities). Only set when the component declares onResume.
	needsResumed bool
	// view is the View the listener was registered on; setVisibility /
	// setEnabled on that view disables the event (the §8.5 "Missing
	// Happens-Before" UI semantics static analysis cannot see).
	view *Object
	// registrarTask is the trace task that installed this event (-1 for
	// framework lifecycle events); firing creates an HB edge from it.
	registrarTask int
	// lastFiredTask is the trace task id of the most recent firing, so
	// `after` constraints become HB edges (SC fired before SD).
	lastFiredTask int
}

func (ev *extEvent) enabled(w *World) bool {
	if ev.removed || ev.fired >= ev.maxFires {
		return false
	}
	for _, a := range ev.after {
		if a.fired == 0 {
			return false
		}
	}
	if ev.uiLike && ev.component != "" {
		if w.finished[ev.component] || w.destroyed[ev.component] {
			return false
		}
	}
	if ev.needsResumed && !w.resumed[ev.component] {
		return false
	}
	if ev.view != nil && w.hiddenViews[ev.view] {
		return false
	}
	if w.opts.EventFilter != nil {
		ref := ""
		if ev.m != nil {
			ref = ev.m.Ref()
		}
		if !w.opts.EventFilter(ref, ev.component, ev.name) {
			return false
		}
	}
	return true
}

// World is the full runtime state of one execution.
type World struct {
	pkg  *apk.Package
	h    *cha.Hierarchy
	opts Options

	statics   map[string]Value
	nextObjID int

	looper *executor
	bgs    []*executor
	nextEx int

	queue  []*task
	events []*extEvent

	// component instances (the framework "allocates" these).
	compInstance map[string]*Object
	finished     map[string]bool
	destroyed    map[string]bool
	// resumed tracks which activities are between onResume and onPause.
	resumed map[string]bool
	// hasResumeMethod records components that declare onResume (input
	// gating applies only to those).
	hasResumeMethod map[string]bool
	// hiddenViews records views disabled via setVisibility/setEnabled.
	hiddenViews map[*Object]bool
	// wakeHeld tracks wake-lock objects with a positive hold count.
	wakeHeld map[*Object]bool

	steps  int
	npes   []NPE
	trace  []string
	halted bool

	// Recorded trace (Options.Record).
	rec TraceLog
	// activeExec is the executor currently inside quantum().
	activeExec *executor
	// pendingTask maps queued tasks / events / spawns to the trace task
	// id of whoever caused them, so HB edges land at start time.
	taskSeq int
}

// NewWorld prepares a run: component instances are allocated and the
// environment's lifecycle events installed.
func NewWorld(pkg *apk.Package, opts Options) *World {
	w := &World{
		pkg:             pkg,
		h:               cha.New(pkg.Program),
		opts:            opts.withDefaults(),
		statics:         make(map[string]Value),
		compInstance:    make(map[string]*Object),
		finished:        make(map[string]bool),
		destroyed:       make(map[string]bool),
		resumed:         make(map[string]bool),
		hiddenViews:     make(map[*Object]bool),
		wakeHeld:        make(map[*Object]bool),
		hasResumeMethod: make(map[string]bool),
	}
	w.looper = &executor{id: 0, name: "looper", isLooper: true, curTask: -1}
	w.nextEx = 1
	for _, comp := range pkg.Manifest.Components() {
		if !comp.Reachable {
			continue
		}
		obj := w.alloc(comp.Class)
		w.compInstance[comp.Class] = obj
		w.installLifecycleEvents(comp, obj)
	}
	return w
}

func (w *World) alloc(class string) *Object {
	w.nextObjID++
	return &Object{ID: w.nextObjID, Class: class, Fields: make(map[string]Value)}
}

// installLifecycleEvents wires the component's framework-driven events.
func (w *World) installLifecycleEvents(comp *manifest.Component, obj *Object) {
	switch comp.Kind {
	case manifest.ActivityComponent:
		chainNames := []string{"onCreate", "onStart", "onResume", "onPause", "onStop", "onDestroy"}
		var prev *extEvent
		byName := make(map[string]*extEvent)
		for _, n := range chainNames {
			m := w.h.Resolve(comp.Class, n)
			if m == nil {
				continue
			}
			max := 1
			if n == "onResume" || n == "onPause" {
				max = w.opts.MaxResumeCycles
			}
			ev := w.addEvent(&extEvent{
				name: "lifecycle:" + n, component: comp.Class,
				m: m, recv: obj, args: lifecycleArgs(m),
				maxFires: max, uiLike: n != "onDestroy",
			})
			if prev != nil {
				ev.after = append(ev.after, prev)
			}
			byName[n] = ev
			prev = ev
		}
		// Remaining lifecycle-adjacent callbacks: enabled after onCreate,
		// and (like all user input) only while the activity is resumed.
		hasResume := byName["onResume"] != nil
		for _, n := range framework.LifecycleCallbacks {
			if byName[n] != nil {
				continue
			}
			switch n {
			case "onCreate", "onStart", "onResume", "onPause", "onStop", "onDestroy":
				continue
			}
			m := w.h.Resolve(comp.Class, n)
			if m == nil {
				continue
			}
			ev := w.addEvent(&extEvent{
				name: "lifecycle:" + n, component: comp.Class,
				m: m, recv: obj, args: lifecycleArgs(m),
				maxFires: w.opts.MaxUIFires, uiLike: true,
				needsResumed: hasResume,
			})
			if c := byName["onCreate"]; c != nil {
				ev.after = append(ev.after, c)
			}
		}
		w.hasResumeMethod[comp.Class] = hasResume
	case manifest.ServiceComponent:
		var prev *extEvent
		for _, n := range framework.ServiceLifecycleCallbacks {
			m := w.h.Resolve(comp.Class, n)
			if m == nil {
				continue
			}
			ev := w.addEvent(&extEvent{
				name: "service:" + n, component: comp.Class,
				m: m, recv: obj, args: lifecycleArgs(m),
				maxFires: 1, uiLike: n != "onDestroy",
			})
			if n == "onDestroy" && prev != nil {
				ev.after = append(ev.after, prev)
			}
			if n == "onCreate" {
				prev = ev
			}
		}
	case manifest.ReceiverComponent:
		m := w.h.Resolve(comp.Class, framework.ReceiverCallback)
		if m != nil {
			w.addEvent(&extEvent{
				name: "receiver:" + framework.ReceiverCallback, component: comp.Class,
				m: m, recv: obj, args: lifecycleArgs(m),
				maxFires: w.opts.MaxUIFires, uiLike: true,
			})
		}
	}
}

func lifecycleArgs(m *ir.Method) []Value {
	return make([]Value, m.NumArgs)
}

func (w *World) addEvent(ev *extEvent) *extEvent {
	ev.id = len(w.events)
	ev.lastFiredTask = -1
	if ev.registrarTask == 0 {
		ev.registrarTask = -1
	}
	w.events = append(w.events, ev)
	return ev
}

// newTraceTask allocates a trace task id.
func (w *World) newTraceTask(name string) int {
	id := w.taskSeq
	w.taskSeq++
	if w.opts.Record {
		w.rec.TaskNames = append(w.rec.TaskNames, name)
	}
	return id
}

// hbEdge records earlier-happens-before-later between trace tasks.
func (w *World) hbEdge(earlier, later int) {
	if !w.opts.Record || earlier < 0 || later < 0 || earlier == later {
		return
	}
	w.rec.HB = append(w.rec.HB, [2]int{earlier, later})
}

// Recorded returns the captured trace (empty unless Options.Record).
func (w *World) Recorded() *TraceLog { return &w.rec }

// NPEs returns the recorded exceptions.
func (w *World) NPEs() []NPE { return w.npes }

// Steps returns executed instruction count.
func (w *World) Steps() int { return w.steps }

// Trace returns the recorded execution trace (empty unless Options.Trace).
func (w *World) Trace() []string { return w.trace }

// HeldWakeLocks reports how many wake locks are still held — non-zero at
// the end of a quiescent execution witnesses a no-sleep bug (§9).
func (w *World) HeldWakeLocks() int { return len(w.wakeHeld) }

func (w *World) tracef(format string, args ...interface{}) {
	if w.opts.Trace {
		w.trace = append(w.trace, fmt.Sprintf(format, args...))
	}
}

// option is one scheduler alternative at a choice point.
type option struct {
	key string
	// method is the entry method ref behind the option (the task or
	// thread body it runs/starts). Only populated under
	// Options.RecordChoices; "" when unknown.
	method string
	run    func(w *World)
}

// options enumerates the current scheduler alternatives in a stable
// order: advancing a busy executor, or (when the looper is idle)
// dispatching a queued task or firing an enabled external event.
func (w *World) Options() []option {
	rec := w.opts.RecordChoices
	var opts []option
	if !w.looper.idle() {
		o := option{key: "run:looper", run: func(w *World) { w.quantum(w.looper) }}
		if rec {
			o.method = w.looper.stack[0].m.Ref()
		}
		opts = append(opts, o)
	} else {
		if len(w.queue) > 0 {
			// FIFO dispatch: the Android looper processes its queue in
			// order, so only the head is dispatchable.
			t := w.queue[0]
			o := option{key: "dispatch:" + t.name, run: func(w *World) {
				w.queue = w.queue[1:]
				w.startTask(w.looper, t)
			}}
			if rec && t.m != nil {
				o.method = t.m.Ref()
			}
			opts = append(opts, o)
		}
		for _, ev := range w.events {
			if !ev.enabled(w) {
				continue
			}
			ev := ev
			o := option{key: fmt.Sprintf("event:%d:%s", ev.id, ev.name), run: func(w *World) {
				ev.fired++
				w.fireEvent(ev)
			}}
			if rec && ev.m != nil {
				o.method = ev.m.Ref()
			}
			opts = append(opts, o)
		}
	}
	for _, bg := range w.bgs {
		if bg.dead || bg.idle() {
			continue
		}
		bg := bg
		o := option{key: "run:" + bg.name, run: func(w *World) { w.quantum(bg) }}
		if rec {
			o.method = bg.stack[0].m.Ref()
		}
		opts = append(opts, o)
	}
	sort.Slice(opts, func(i, j int) bool { return opts[i].key < opts[j].key })
	return opts
}

// Done reports whether execution cannot proceed (or was halted).
func (w *World) Done() bool {
	if w.halted || w.steps >= w.opts.MaxSteps {
		return true
	}
	return len(w.Options()) == 0
}

func (w *World) fireEvent(ev *extEvent) {
	w.tracef("fire %s", ev.name)
	switch ev.name {
	case "lifecycle:onDestroy":
		w.destroyed[ev.component] = true
	case "lifecycle:onResume":
		w.resumed[ev.component] = true
	case "lifecycle:onPause":
		w.resumed[ev.component] = false
	}
	t := &task{name: ev.name, m: ev.m, recv: ev.recv, args: ev.args, component: ev.component, posterTask: -1}
	tid := w.startTask(w.looper, t)
	// HB: registration precedes the callback; prior firings of HB-before
	// events precede this one (the CAFA/DroidRacer event HB model).
	w.hbEdge(ev.registrarTask, tid)
	for _, a := range ev.after {
		w.hbEdge(a.lastFiredTask, tid)
	}
	ev.lastFiredTask = tid
}

func (w *World) startTask(e *executor, t *task) int {
	w.tracef("start %s on %s", t.name, e.name)
	e.component = t.component
	e.onDone = t.onDone
	e.curTask = w.newTraceTask(t.name)
	w.hbEdge(t.posterTask, e.curTask)
	e.push(t.m, t.recv, t.args, ir.NoReg)
	return e.curTask
}

func (e *executor) push(m *ir.Method, recv Value, args []Value, retTo int) {
	e.pushWithSites(m, recv, args, retTo, ir.InstrID{}, nil)
}

// pushWithSites is push plus load-site attribution for the receiver and
// arguments, so an NPE deep in a callee still names the getfield that
// produced the null.
func (e *executor) pushWithSites(m *ir.Method, recv Value, args []Value, retTo int, recvSite ir.InstrID, argSites []ir.InstrID) {
	f := &frame{m: m, regs: make([]Value, m.NumRegs), retTo: retTo, loadSite: make(map[int]ir.InstrID)}
	if !m.Static {
		f.regs[m.ThisReg()] = recv
		if recvSite.Method != "" {
			f.loadSite[m.ThisReg()] = recvSite
		}
	}
	for i, a := range args {
		if i < m.NumArgs {
			f.regs[m.ArgReg(i)] = a
			if i < len(argSites) && argSites[i].Method != "" {
				f.loadSite[m.ArgReg(i)] = argSites[i]
			}
		}
	}
	e.stack = append(e.stack, f)
}

// spawnBg starts a background thread executing m on recv.
func (w *World) spawnBg(name string, m *ir.Method, recv Value, args []Value, component string, onDone func(*World)) {
	if w.opts.SpawnFilter != nil && !w.opts.SpawnFilter(m.Class) {
		// Focused exploration: this thread is irrelevant to the warning
		// under validation. Its completion hook still runs so AsyncTask
		// chains stay consistent.
		if onDone != nil {
			onDone(w)
		}
		return
	}
	e := &executor{id: w.nextEx, name: fmt.Sprintf("%s#%d", name, w.nextEx), component: component, onDone: onDone}
	w.nextEx++
	e.curTask = w.newTraceTask(name)
	w.hbEdge(w.currentTask(), e.curTask)
	e.push(m, recv, args, ir.NoReg)
	w.bgs = append(w.bgs, e)
	w.tracef("spawn %s", e.name)
}

// currentTask returns the trace task of the executor that is presently
// running an intrinsic/step. The scheduler runs one quantum at a time,
// so the active executor is the one whose step invoked us; World tracks
// it in activeExec.
func (w *World) currentTask() int {
	if w.activeExec != nil {
		return w.activeExec.curTask
	}
	return -1
}

// enqueue appends a looper task, attributing the poster for HB.
func (w *World) enqueue(t *task) {
	w.tracef("enqueue %s", t.name)
	t.posterTask = w.currentTask()
	w.queue = append(w.queue, t)
}
