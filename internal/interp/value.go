// Package interp is a dynamic event-loop interpreter for the IR: it
// executes an application package under an Android-like runtime — a main
// looper with an event queue, background threads, and the framework
// posting/cancellation APIs — throwing NullPointerException on null
// dereferences. The explorer (package explore) drives it over many
// schedules to confirm statically-reported UAF warnings as harmful, the
// role manual validation plays in §7 of the paper.
package interp

import "fmt"

// Value is a runtime value: nil (null), *Object, int64 or string.
type Value interface{}

// Object is a heap object.
type Object struct {
	ID     int
	Class  string
	Fields map[string]Value
}

func (o *Object) String() string {
	if o == nil {
		return "null"
	}
	return fmt.Sprintf("%s@%d", o.Class, o.ID)
}

// Get reads a field (null when unset).
func (o *Object) Get(name string) Value { return o.Fields[name] }

// Set writes a field.
func (o *Object) Set(name string, v Value) {
	if o.Fields == nil {
		o.Fields = make(map[string]Value)
	}
	o.Fields[name] = v
}
