package interp

import (
	"nadroid/internal/framework"
	"nadroid/internal/ir"
)

// quantum advances one executor: it runs instructions until the executor
// idles, blocks on a monitor, or completes a field access. Ending each
// quantum right after a field access lets the scheduler interleave
// executors at every point that matters for UAF manifestation while
// keeping schedules short.
func (w *World) quantum(e *executor) {
	prev := w.activeExec
	w.activeExec = e
	defer func() { w.activeExec = prev }()
	for {
		if w.halted || w.steps >= w.opts.MaxSteps {
			return
		}
		if e.idle() {
			if e.onDone != nil {
				done := e.onDone
				e.onDone = nil
				done(w)
			}
			if !e.isLooper {
				e.dead = true
			}
			return
		}
		f := e.top()
		if f.pc >= len(f.m.Instrs) {
			w.popFrame(e, nil)
			continue
		}
		in := f.m.Instrs[f.pc]
		w.steps++
		fieldAccess, blocked := w.exec(e, f, in)
		if blocked {
			return
		}
		if fieldAccess {
			return
		}
	}
}

func (e *executor) top() *frame { return e.stack[len(e.stack)-1] }

// popFrame returns from the top frame, delivering ret to the caller.
func (w *World) popFrame(e *executor, ret Value) {
	f := e.stack[len(e.stack)-1]
	e.stack = e.stack[:len(e.stack)-1]
	if f.m.Synch && !f.m.Static {
		if obj, ok := f.regs[f.m.ThisReg()].(*Object); ok {
			w.unlock(e, obj)
		}
	}
	if len(e.stack) > 0 && f.retTo != ir.NoReg {
		e.top().regs[f.retTo] = ret
	}
}

// exec runs one instruction. It returns (fieldAccess, blocked).
func (w *World) exec(e *executor, f *frame, in ir.Instr) (bool, bool) {
	advance := func() { f.pc++ }
	switch in.Op {
	case ir.OpNop:
		advance()
	case ir.OpConstNull:
		f.regs[in.A] = nil
		delete(f.loadSite, in.A)
		advance()
	case ir.OpConstInt:
		f.regs[in.A] = in.IntVal
		advance()
	case ir.OpConstStr:
		f.regs[in.A] = in.StrVal
		advance()
	case ir.OpNew:
		f.regs[in.A] = w.alloc(in.Type)
		delete(f.loadSite, in.A)
		advance()
	case ir.OpMove:
		f.regs[in.A] = f.regs[in.B]
		if s, ok := f.loadSite[in.B]; ok {
			f.loadSite[in.A] = s
		} else {
			delete(f.loadSite, in.A)
		}
		advance()

	case ir.OpGetField:
		base, ok := f.regs[in.B].(*Object)
		if !ok {
			w.throwNPE(e, f, in)
			return true, false
		}
		f.regs[in.A] = base.Get(in.Field.Name)
		f.loadSite[in.A] = w.here(e, f)
		w.recordAccess(e, f, in, base, false, false)
		advance()
		return true, false
	case ir.OpPutField:
		base, ok := f.regs[in.B].(*Object)
		if !ok {
			w.throwNPE(e, f, in)
			return true, false
		}
		base.Set(in.Field.Name, f.regs[in.A])
		w.recordAccess(e, f, in, base, true, f.regs[in.A] == nil)
		advance()
		return true, false
	case ir.OpGetStatic:
		f.regs[in.A] = w.statics[in.Field.String()]
		f.loadSite[in.A] = w.here(e, f)
		w.recordAccess(e, f, in, nil, false, false)
		advance()
		return true, false
	case ir.OpPutStatic:
		w.statics[in.Field.String()] = f.regs[in.A]
		w.recordAccess(e, f, in, nil, true, f.regs[in.A] == nil)
		advance()
		return true, false

	case ir.OpReturn:
		var ret Value
		if in.A != ir.NoReg {
			ret = f.regs[in.A]
		}
		w.popFrame(e, ret)

	case ir.OpGoto:
		f.pc = f.m.Index(in.Target)
	case ir.OpIfNull:
		if f.regs[in.B] == nil {
			f.pc = f.m.Index(in.Target)
		} else {
			advance()
		}
	case ir.OpIfNonNull:
		if f.regs[in.B] != nil {
			f.pc = f.m.Index(in.Target)
		} else {
			advance()
		}
	case ir.OpIfCond:
		if w.opts.TakeOpaqueBranches {
			f.pc = f.m.Index(in.Target)
		} else {
			advance()
		}

	case ir.OpMonitorEnter:
		obj, ok := f.regs[in.B].(*Object)
		if !ok {
			w.throwNPE(e, f, in)
			return true, false
		}
		if !w.lock(e, obj) {
			return false, true // blocked; pc unchanged, retried later
		}
		advance()
	case ir.OpMonitorExit:
		if obj, ok := f.regs[in.B].(*Object); ok {
			w.unlock(e, obj)
		}
		advance()

	case ir.OpThrow:
		w.tracef("throw in %s", e.name)
		w.abortTask(e)

	case ir.OpInvoke:
		return w.execInvoke(e, f, in), false
	case ir.OpInvokeStatic:
		if m := w.h.Resolve(in.Callee.Class, in.Callee.Name); m != nil && !m.Abstract {
			args := make([]Value, len(in.Args))
			for i, r := range in.Args {
				args[i] = f.regs[r]
			}
			f.pc++
			e.push(m, nil, args, in.A)
			w.lockSyncEntry(e, m, nil)
			return false, false
		}
		if in.A != ir.NoReg {
			f.regs[in.A] = nil
		}
		advance()
	default:
		advance()
	}
	return false, false
}

// execInvoke handles virtual calls: app methods push frames; framework
// methods run as intrinsics. Returns true when the step counts as a
// field-access-like boundary (posting and NPE points do).
func (w *World) execInvoke(e *executor, f *frame, in ir.Instr) bool {
	recv := f.regs[in.B]
	obj, isObj := recv.(*Object)
	if !isObj {
		w.throwNPE(e, f, in)
		return true
	}
	args := make([]Value, len(in.Args))
	for i, r := range in.Args {
		args[i] = f.regs[r]
	}
	// Concrete app method?
	if m := w.h.Resolve(obj.Class, in.Callee.Name); m != nil && !m.Abstract {
		argSites := make([]ir.InstrID, len(in.Args))
		for i, r := range in.Args {
			argSites[i] = f.loadSite[r]
		}
		f.pc++
		e.pushWithSites(m, obj, args, in.A, f.loadSite[in.B], argSites)
		w.lockSyncEntry(e, m, obj)
		return false
	}
	// Framework intrinsic.
	ret, boundary := w.intrinsic(e, in.Callee.Name, obj, args)
	if in.A != ir.NoReg {
		f.regs[in.A] = ret
	}
	f.pc++
	return boundary
}

// recordAccess appends one trace access event (Options.Record).
func (w *World) recordAccess(e *executor, f *frame, in ir.Instr, base *Object, isWrite, isNull bool) {
	if !w.opts.Record {
		return
	}
	objID := 0
	if base != nil {
		objID = base.ID
	}
	w.rec.Accesses = append(w.rec.Accesses, AccessEvent{
		Task:    e.curTask,
		Instr:   w.here(e, f),
		Field:   in.Field,
		Obj:     objID,
		IsWrite: isWrite,
		IsNull:  isNull,
	})
}

// lockSyncEntry acquires the receiver lock for synchronized methods.
// Cooperative scheduling means acquisition at entry cannot block here:
// if the lock is held by another executor we simply spin the frame at
// pc=0 via a monitor instruction convention. To keep semantics simple,
// synchronized-method locks are acquired unconditionally; contention is
// modeled only for explicit monitor instructions.
func (w *World) lockSyncEntry(e *executor, m *ir.Method, obj *Object) {
	if m.Synch && obj != nil {
		w.lock(e, obj)
	}
}

// lock tries to acquire obj's monitor for e; false means blocked.
func (w *World) lock(e *executor, obj *Object) bool {
	owner, _ := obj.Fields["$lockOwner"].(int64)
	depth, _ := obj.Fields["$lockDepth"].(int64)
	if depth > 0 && owner != int64(e.id) {
		return false
	}
	obj.Fields["$lockOwner"] = int64(e.id)
	obj.Fields["$lockDepth"] = depth + 1
	return true
}

func (w *World) unlock(e *executor, obj *Object) {
	depth, _ := obj.Fields["$lockDepth"].(int64)
	if depth > 0 {
		obj.Fields["$lockDepth"] = depth - 1
	}
}

// here returns the current instruction's ID.
func (w *World) here(e *executor, f *frame) ir.InstrID {
	return ir.InstrID{Method: f.m.Ref(), Index: f.pc}
}

// throwNPE records a NullPointerException at the current instruction and
// aborts the faulting task/thread.
func (w *World) throwNPE(e *executor, f *frame, in ir.Instr) {
	npe := NPE{At: w.here(e, f), Task: e.name}
	if site, ok := f.loadSite[in.B]; ok {
		npe.LoadedAt = site
		if m, err := w.h.MethodByRef(site.Method); err == nil && site.Index < len(m.Instrs) {
			npe.Field = m.Instrs[site.Index].Field
		}
	}
	w.npes = append(w.npes, npe)
	w.tracef("NPE %s", npe)
	w.abortTask(e)
	if w.opts.StopOnNPE {
		w.halted = true
	}
}

// abortTask unwinds the executor (uncaught exception).
func (w *World) abortTask(e *executor) {
	for len(e.stack) > 0 {
		w.popFrame(e, nil)
	}
	e.onDone = nil
	if !e.isLooper {
		e.dead = true
	}
}

// intrinsic implements framework API semantics. It returns the call's
// result and whether the call is a scheduling boundary.
func (w *World) intrinsic(e *executor, name string, recv *Object, args []Value) (Value, bool) {
	h := w.h
	argObj := func(i int) *Object {
		if i < len(args) {
			o, _ := args[i].(*Object)
			return o
		}
		return nil
	}

	// Registration APIs install external events.
	if argIdx, iface, ok := framework.IsRegistrationCall(h, recv.Class, name); ok {
		if l := argObj(argIdx); l != nil {
			var view *Object
			if h.IsSubtypeOf(recv.Class, framework.View) {
				view = recv
			}
			for _, cb := range framework.ListenerMethods(iface) {
				if m := h.Resolve(l.Class, cb); m != nil {
					w.addEvent(&extEvent{
						name: "ui:" + l.Class + "." + cb, component: e.component,
						m: m, recv: l, args: lifecycleArgs(m),
						maxFires: w.opts.MaxUIFires, uiLike: true,
						needsResumed:  w.hasResumeMethod[e.component],
						view:          view,
						registrarTask: e.curTask,
					})
				}
			}
		}
		return nil, true
	}

	switch framework.ClassifyPost(h, recv.Class, name) {
	case framework.PostRunnable:
		// Handler.post, View.post and runOnUiThread all take the runnable
		// as their first argument.
		if target := argObj(0); target != nil {
			if m := h.Resolve(target.Class, framework.RunMethod); m != nil {
				var hd *Object
				if h.IsSubtypeOf(recv.Class, framework.Handler) {
					hd = recv
				}
				w.enqueue(&task{name: "post:" + target.Class + ".run", m: m, recv: target,
					component: e.component, handler: hd})
			}
		}
		return nil, true
	case framework.PostSendMessage:
		if m := h.Resolve(recv.Class, framework.HandlerCallback); m != nil {
			msg := args
			w.enqueue(&task{name: "msg:" + recv.Class + ".handleMessage", m: m, recv: recv,
				args: msg, component: e.component, handler: recv})
		}
		return nil, true
	case framework.PostBindService:
		if conn := argObj(0); conn != nil {
			w.bindServiceEvents(e, conn)
		}
		return nil, true
	case framework.PostRegisterReceiver:
		if rcv := argObj(0); rcv != nil {
			if m := h.Resolve(rcv.Class, framework.ReceiverCallback); m != nil {
				w.addEvent(&extEvent{
					name: "receiver:" + rcv.Class + ".onReceive", component: e.component,
					m: m, recv: rcv, args: lifecycleArgs(m),
					maxFires: w.opts.MaxUIFires, uiLike: true,
					registrarTask: e.curTask,
				})
			}
		}
		return nil, true
	case framework.PostExecuteTask:
		w.executeAsyncTask(e, recv)
		return nil, true
	case framework.PostPublishProgress:
		if m := h.Resolve(recv.Class, "onProgressUpdate"); m != nil {
			w.enqueue(&task{name: "progress:" + recv.Class, m: m, recv: recv, component: e.component})
		}
		return nil, true
	case framework.PostStartThread:
		if m := h.Resolve(recv.Class, framework.RunMethod); m != nil {
			w.spawnBg("thread:"+recv.Class, m, recv, nil, e.component, nil)
		}
		return nil, true
	case framework.PostExecutorSubmit, framework.PostTimerSchedule:
		if r := argObj(0); r != nil {
			if m := h.Resolve(r.Class, framework.RunMethod); m != nil {
				w.spawnBg("pool:"+r.Class, m, r, nil, e.component, nil)
			}
		}
		return nil, true
	}

	switch framework.ClassifyCancel(h, recv.Class, name) {
	case framework.CancelFinish:
		w.finished[recv.Class] = true
		w.tracef("finish %s", recv.Class)
		return nil, true
	case framework.CancelUnbindService:
		if conn := argObj(0); conn != nil {
			w.removeEventsFor(conn)
		}
		return nil, true
	case framework.CancelUnregisterReceiver:
		if rcv := argObj(0); rcv != nil {
			w.removeEventsFor(rcv)
		}
		return nil, true
	case framework.CancelRemoveCallbacks:
		kept := w.queue[:0]
		for _, t := range w.queue {
			if t.handler != recv {
				kept = append(kept, t)
			}
		}
		w.queue = kept
		return nil, true
	case framework.CancelTask:
		return nil, true
	}

	// ServiceManager.addService registers an IBinder whose transact()
	// the framework may invoke later. The static analysis has no model
	// for this channel (§8.6 "unanalyzed code"), but the runtime does —
	// exactly the asymmetry behind Table 2's missed detections.
	if name == "addService" && h.IsSubtypeOf(recv.Class, framework.ServiceManager) {
		if b := argObj(0); b != nil {
			if m := h.Resolve(b.Class, "transact"); m != nil {
				w.addEvent(&extEvent{
					name: "binder:" + b.Class + ".transact", component: e.component,
					m: m, recv: b, args: lifecycleArgs(m),
					maxFires: w.opts.MaxUIFires, uiLike: true,
					registrarTask: e.curTask,
				})
			}
		}
		return nil, true
	}

	// UI state changes that enable/disable other events (§8.5 "Missing
	// Happens-Before").
	if name == "setVisibility" || name == "setEnabled" {
		if h.IsSubtypeOf(recv.Class, framework.View) {
			w.hiddenViews[recv] = true
			return nil, true
		}
	}

	// Wake-lock API (§9 no-sleep extension): the world tracks held
	// counts so the explorer can witness executions that end awake.
	switch framework.ClassifyWakeLock(h, recv.Class, name) {
	case framework.WakeNew:
		return w.alloc(framework.WakeLock), false
	case framework.WakeAcquire:
		n, _ := recv.Fields["$wakeHeld"].(int64)
		recv.Fields["$wakeHeld"] = n + 1
		w.wakeHeld[recv] = true
		w.tracef("acquire wakelock %s", recv)
		return nil, true
	case framework.WakeRelease:
		n, _ := recv.Fields["$wakeHeld"].(int64)
		if n > 0 {
			recv.Fields["$wakeHeld"] = n - 1
			if n-1 == 0 {
				delete(w.wakeHeld, recv)
			}
		}
		w.tracef("release wakelock %s", recv)
		return nil, true
	}

	// Value-producing conveniences.
	switch name {
	case "findViewById", "setContentView":
		return w.alloc(framework.View), false
	case "getSystemService":
		return w.alloc(framework.LocationManager), false
	case "obtainMessage":
		return w.alloc(framework.Message), false
	case "getIntent":
		return w.alloc(framework.Intent), false
	}
	// Unknown framework or absent app method: no-op.
	return nil, false
}

// bindServiceEvents installs the onServiceConnected / onServiceDisconnected
// pair for a connection: SC fires before SD (the MHB-Service relation).
func (w *World) bindServiceEvents(e *executor, conn *Object) {
	var sc *extEvent
	if m := w.h.Resolve(conn.Class, "onServiceConnected"); m != nil {
		sc = w.addEvent(&extEvent{
			name: "svc:" + conn.Class + ".onServiceConnected", component: e.component,
			m: m, recv: conn, args: lifecycleArgs(m), maxFires: 1, uiLike: true,
			registrarTask: e.curTask,
		})
		sc.owner = conn
	}
	if m := w.h.Resolve(conn.Class, "onServiceDisconnected"); m != nil {
		sd := w.addEvent(&extEvent{
			name: "svc:" + conn.Class + ".onServiceDisconnected", component: e.component,
			m: m, recv: conn, args: lifecycleArgs(m), maxFires: 1, uiLike: true,
			registrarTask: e.curTask,
		})
		sd.owner = conn
		if sc != nil {
			sd.after = append(sd.after, sc)
		}
	}
	if sc != nil {
		sc.owner = conn
	}
}

// executeAsyncTask wires onPreExecute -> doInBackground -> onPostExecute.
func (w *World) executeAsyncTask(e *executor, taskObj *Object) {
	comp := e.component
	body := w.h.Resolve(taskObj.Class, framework.AsyncTaskBody)
	post := w.h.Resolve(taskObj.Class, "onPostExecute")
	startBody := func(w *World) {
		if body == nil {
			if post != nil {
				w.enqueue(&task{name: "task-post:" + taskObj.Class, m: post, recv: taskObj, component: comp})
			}
			return
		}
		w.spawnBg("task:"+taskObj.Class, body, taskObj, nil, comp, func(w *World) {
			if post != nil {
				w.enqueue(&task{name: "task-post:" + taskObj.Class, m: post, recv: taskObj, component: comp})
			}
		})
	}
	if pre := w.h.Resolve(taskObj.Class, "onPreExecute"); pre != nil {
		w.enqueue(&task{name: "task-pre:" + taskObj.Class, m: pre, recv: taskObj, component: comp, onDone: startBody})
	} else {
		startBody(w)
	}
}

// removeEventsFor disables all events whose receiver object is obj.
func (w *World) removeEventsFor(obj *Object) {
	for _, ev := range w.events {
		if ev.recv == obj || ev.owner == obj {
			ev.removed = true
		}
	}
}
