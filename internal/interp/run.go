package interp

import "nadroid/internal/ir"

// blockedOnMonitor reports whether the executor's next instruction is a
// monitor-enter on a lock held by someone else; such executors are not
// schedulable until the lock frees.
func (w *World) blockedOnMonitor(e *executor) bool {
	if e.idle() {
		return false
	}
	f := e.top()
	if f.pc >= len(f.m.Instrs) {
		return false
	}
	in := f.m.Instrs[f.pc]
	if in.Op != ir.OpMonitorEnter {
		return false
	}
	obj, ok := f.regs[in.B].(*Object)
	if !ok {
		return false // will NPE, still schedulable
	}
	owner, _ := obj.Fields["$lockOwner"].(int64)
	depth, _ := obj.Fields["$lockDepth"].(int64)
	return depth > 0 && owner != int64(e.id)
}

// ScheduleInfo records the branching structure a run encountered, so an
// explorer can enumerate sibling schedules.
type ScheduleInfo struct {
	// Arity[i] is the number of options at the i-th choice point (only
	// points with >1 option consume a schedule entry).
	Arity []int
	// Taken[i] is the option index chosen at the i-th choice point.
	Taken []int
	// Choices[i] is the full option row at the i-th choice point (only
	// under Options.RecordChoices). Choices[i][Taken[i]] is the action
	// the run performed there.
	Choices [][]Choice
	// Forced[i] counts the hidden forced actions (single-option steps
	// other than a plain "run:looper" drain quantum) taken between
	// choice point i-1 and choice point i (only under
	// Options.RecordChoices). A partial-order reducer must not commute
	// recorded actions across a boundary with hidden actions: those
	// steps belong to neither neighbor.
	Forced []int
}

// Choice identifies one scheduler alternative: its stable option key and
// the entry method of the task/thread it advances or starts ("" when
// unknown). The explorer's partial-order reduction keys its conflict
// summaries on Method and its trace-equivalence classes on Key.
type Choice struct {
	Key    string
	Method string
}

// Run executes the package under a schedule: whenever more than one
// scheduler option exists, the next schedule entry picks one (modulo the
// option count); after the schedule is exhausted, option 0 is taken.
// Single-option points do not consume schedule entries, keeping
// schedules short and stable for DFS exploration.
func Run(w *World, schedule []int) *ScheduleInfo {
	info := &ScheduleInfo{}
	pos := 0
	forced := 0
	for !w.halted && w.steps < w.opts.MaxSteps {
		opts := w.Options()
		// Drop blocked executors from the option list.
		filtered := opts[:0]
		for _, o := range opts {
			o := o
			if len(o.key) > 4 && o.key[:4] == "run:" {
				if ex := w.executorFor(o.key[4:]); ex != nil && w.blockedOnMonitor(ex) {
					continue
				}
			}
			filtered = append(filtered, o)
		}
		opts = filtered
		if len(opts) == 0 {
			break
		}
		choice := 0
		if len(opts) > 1 {
			if pos < len(schedule) {
				choice = schedule[pos] % len(opts)
				if choice < 0 {
					choice += len(opts)
				}
			}
			info.Arity = append(info.Arity, len(opts))
			info.Taken = append(info.Taken, choice)
			if w.opts.RecordChoices {
				row := make([]Choice, len(opts))
				for i, o := range opts {
					row[i] = Choice{Key: o.key, Method: o.method}
				}
				info.Choices = append(info.Choices, row)
				info.Forced = append(info.Forced, forced)
				forced = 0
			}
			pos++
		} else if w.opts.RecordChoices && opts[0].key != "run:looper" {
			forced++
		}
		opts[choice].run(w)
	}
	return info
}

// executorFor finds an executor by name ("looper" or a bg name).
func (w *World) executorFor(name string) *executor {
	if name == "looper" {
		return w.looper
	}
	for _, bg := range w.bgs {
		if bg.name == name {
			return bg
		}
	}
	return nil
}

// RunPackage is the convenience entry: build a world and run it.
// Deterministic for a fixed schedule.
func RunDefault(w *World) *ScheduleInfo { return Run(w, nil) }
