package fingerprint

import (
	"regexp"
	"strings"
	"testing"

	"nadroid/internal/apk"
	"nadroid/internal/appbuilder"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// buildOpts selects structural mutations of the fixture app. Every
// mutation shifts instruction indices or thread numbering; none of them
// may change the fingerprint of the base warning.
type buildOpts struct {
	// extraMethod adds an unrelated method to the activity (shifts
	// nothing inside existing bodies but adds call-graph surface).
	extraMethod bool
	// padUse emits unrelated statements before the use, shifting its
	// instruction index.
	padUse bool
	// padFree emits unrelated statements before the free.
	padFree bool
	// renameHelper renames an uninvolved helper class.
	renameHelper bool
	// secondField plants a second, distinct UAF (own field) whose use
	// and free share methods with the base warning.
	secondField bool
	// secondUse reads the base field twice in the same use method,
	// yielding two warnings distinguished only by access ordinal.
	secondUse bool
}

// buildApp is a Figure 1(a)-shaped fixture: a service connection frees
// `bound`, an entry callback uses it unguarded.
func buildApp(t *testing.T, o buildOpts) *apk.Package {
	t.Helper()
	b := appbuilder.New("fp-fixture")
	act := b.Activity("fp/Act")
	act.Field("bound", "fp/Binding")
	if o.secondField {
		act.Field("extra", "fp/Binding")
	}
	b.Class("fp/Binding", "java/lang/Object").Method("use", 0).Return()
	helper := "fp/Helper"
	if o.renameHelper {
		helper = "fp/RenamedHelper"
	}
	b.Class(helper, "java/lang/Object").Method("assist", 0).Return()

	conn := b.ServiceConn("fp/Conn")
	conn.Field("outer", "fp/Act")
	sc := conn.Method("onServiceConnected", 1)
	o1 := sc.GetThis("outer")
	bnd := sc.New("fp/Binding")
	sc.PutField(o1, "fp/Act", "bound", bnd)
	if o.secondField {
		e := sc.New("fp/Binding")
		sc.PutField(o1, "fp/Act", "extra", e)
	}
	sc.Return()
	sd := conn.Method("onServiceDisconnected", 1)
	o2 := sd.GetThis("outer")
	if o.padFree {
		h := sd.New(helper)
		sd.Use(h, helper)
	}
	sd.Free(o2, "fp/Act", "bound")
	if o.secondField {
		sd.Free(o2, "fp/Act", "extra")
	}
	sd.Return()

	os := act.Method("onStart", 0)
	cn := os.New("fp/Conn")
	os.PutField(cn, "fp/Conn", "outer", os.This())
	os.InvokeVoid(os.This(), "fp/Act", "bindService", cn)
	os.Return()

	menu := act.Method("onCreateContextMenu", 1)
	if o.padUse {
		h := menu.New(helper)
		menu.Use(h, helper)
		menu.Nop()
	}
	bb := menu.GetThis("bound")
	menu.Use(bb, "fp/Binding")
	if o.secondUse {
		bb2 := menu.GetThis("bound")
		menu.Use(bb2, "fp/Binding")
	}
	if o.secondField {
		ee := menu.GetThis("extra")
		menu.Use(ee, "fp/Binding")
	}
	menu.Return()

	if o.extraMethod {
		um := act.Method("unrelatedNewMethod", 0)
		h := um.New(helper)
		um.Use(h, helper)
		um.Return()
	}

	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// detect runs modeling + detection on the fixture.
func detect(t *testing.T, pkg *apk.Package) (*threadify.Model, *uaf.Detection) {
	t.Helper()
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatalf("threadify: %v", err)
	}
	return m, uaf.Detect(m)
}

// findWarnings returns the fingerprints of all warnings on a field,
// ordered by warning key.
func findWarnings(t *testing.T, m *threadify.Model, d *uaf.Detection, field string) []ID {
	t.Helper()
	var out []ID
	for _, w := range d.Warnings {
		if w.Field.Name == field {
			out = append(out, Warning(m, w))
		}
	}
	if len(out) == 0 {
		t.Fatalf("no warning on field %q (have %d warnings)", field, len(d.Warnings))
	}
	return out
}

var hexID = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestFingerprintShape(t *testing.T) {
	m, d := detect(t, buildApp(t, buildOpts{}))
	for _, w := range d.Warnings {
		id := Warning(m, w)
		if !hexID.MatchString(string(id)) {
			t.Errorf("fingerprint %q is not 16 hex chars", id)
		}
		if id2 := Warning(m, w); id2 != id {
			t.Errorf("fingerprint not deterministic: %s vs %s", id, id2)
		}
	}
}

// TestFingerprintStability: structural mutations that do not touch the
// warning keep its ID; the table names each survivable change.
func TestFingerprintStability(t *testing.T) {
	baseM, baseD := detect(t, buildApp(t, buildOpts{}))
	base := findWarnings(t, baseM, baseD, "bound")
	if len(base) != 1 {
		t.Fatalf("base fixture: want exactly 1 warning on bound, got %d", len(base))
	}

	cases := []struct {
		name string
		opts buildOpts
	}{
		{"unrelated method added", buildOpts{extraMethod: true}},
		{"statements reordered before use", buildOpts{padUse: true}},
		{"statements reordered before free", buildOpts{padFree: true}},
		{"unrelated class renamed", buildOpts{renameHelper: true}},
		{"all of the above", buildOpts{extraMethod: true, padUse: true, padFree: true, renameHelper: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, d := detect(t, buildApp(t, tc.opts))
			got := findWarnings(t, m, d, "bound")
			if len(got) != 1 || got[0] != base[0] {
				t.Errorf("fingerprint drifted: got %v, want %v", got, base)
			}
		})
	}
}

// TestFingerprintDistinctness: warnings that are genuinely different
// must not collide, even when they share methods — a second field, and
// a second use of the same field in the same method (ordinal).
func TestFingerprintDistinctness(t *testing.T) {
	t.Run("second field in same methods", func(t *testing.T) {
		m, d := detect(t, buildApp(t, buildOpts{secondField: true}))
		bound := findWarnings(t, m, d, "bound")
		extra := findWarnings(t, m, d, "extra")
		for _, b := range bound {
			for _, e := range extra {
				if b == e {
					t.Errorf("bound and extra warnings collide on %s", b)
				}
			}
		}
	})
	t.Run("second use of same field in same method", func(t *testing.T) {
		m, d := detect(t, buildApp(t, buildOpts{secondUse: true}))
		ids := findWarnings(t, m, d, "bound")
		if len(ids) != 2 {
			t.Fatalf("want 2 warnings (two use sites), got %d", len(ids))
		}
		if ids[0] == ids[1] {
			t.Errorf("distinct use sites collide on %s", ids[0])
		}
	})
}

// TestFingerprintSeparatesUseAndFreeRoles: a warning's ID must bind the
// field to its specific use/free methods — sanity-check the hashed
// components via the normalizer.
func TestNormalizeSiteComponents(t *testing.T) {
	m, d := detect(t, buildApp(t, buildOpts{}))
	w := d.Warnings[0]
	for _, ww := range d.Warnings {
		if ww.Field.Name == "bound" {
			w = ww
		}
	}
	sig, kind, _ := normalizeSite(m, w.Use)
	if !strings.HasSuffix(sig, "/1") || kind != "read" {
		t.Errorf("use site = (%s, %s), want .../1 arity and read kind", sig, kind)
	}
	sig, kind, _ = normalizeSite(m, w.Free)
	if !strings.HasSuffix(sig, "/1") || kind != "null-write" {
		t.Errorf("free site = (%s, %s), want .../1 arity and null-write kind", sig, kind)
	}
}
