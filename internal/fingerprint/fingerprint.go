// Package fingerprint derives stable, content-addressed identities for
// UAF warnings, so a warning keeps the same ID across re-analyses of
// evolving versions of an app (§7's triage workflow depends on lineage:
// "is this warning new, or the one we reviewed last week?").
//
// A fingerprint deliberately hashes *what* the warning is about, never
// *where* it happens to sit today:
//
//   - the shared field ("Class.Name"),
//   - the use and free sides' normalized method signatures
//     ("Class.Name/arity") and access kinds (read vs null-write),
//   - the per-field access ordinal inside each method (the k-th access
//     of that field, not the raw instruction index),
//   - the callback-lineage categories of the racing thread pairs (the
//     root-to-leaf thread-kind chains, e.g. "dummy-main>EC>PC").
//
// Adding an unrelated method, renaming an uninvolved class, or
// reordering statements that do not touch the field all shift raw
// instruction indices and thread numbering but leave every hashed
// component — and therefore the fingerprint — unchanged. Two distinct
// warnings in the same method differ in field or ordinal and get
// distinct IDs.
package fingerprint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"nadroid/internal/ir"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// ID is a stable warning identity: 16 lowercase hex characters (the
// first 8 bytes of a SHA-256 over the warning's content components).
// Baseline files and run stores key warnings by it.
type ID string

// version is the domain-separation tag; bump it whenever the hashed
// component set changes, so stale baselines miss instead of mismatching
// silently.
const version = "nadroid/fp/v1"

// genericVersion domain-separates fingerprints of non-UAF detector
// warnings from the UAF scheme above.
const genericVersion = "nadroid/fp/v2"

// Generic fingerprints a non-UAF detector warning from its detector
// name and the detector-chosen stable content parts (never raw thread
// IDs or instruction indices — detectors pass normalized sites and
// lineage categories).
func Generic(detector string, parts ...string) ID {
	h := sha256.New()
	io.WriteString(h, genericVersion)
	io.WriteString(h, "\x00")
	io.WriteString(h, detector)
	io.WriteString(h, "\x00")
	for _, p := range parts {
		io.WriteString(h, p)
		io.WriteString(h, "\x00")
	}
	return ID(hex.EncodeToString(h.Sum(nil)[:8]))
}

// Warning fingerprints one warning against the model it was detected
// in. The model supplies the program (for method arities and access
// ordinals) and the thread forest (for lineage categories).
func Warning(m *threadify.Model, w *uaf.Warning) ID {
	h := sha256.New()
	io.WriteString(h, version)
	io.WriteString(h, "\x00")
	io.WriteString(h, w.Field.String())
	io.WriteString(h, "\x00")
	writeSite(h, m, "use", w.Use)
	writeSite(h, m, "free", w.Free)
	for _, cat := range lineageCategories(m, w) {
		io.WriteString(h, cat)
		io.WriteString(h, "\x00")
	}
	return ID(hex.EncodeToString(h.Sum(nil)[:8]))
}

// writeSite hashes one side of the warning: role ("use"/"free"), the
// normalized method signature, the access kind the instruction's opcode
// implies, and the ordinal of this access among the method's accesses
// of the same field with the same kind. The raw instruction index is
// used only to locate the instruction; it is never hashed.
func writeSite(h io.Writer, m *threadify.Model, role string, id ir.InstrID) {
	sig, kind, ordinal := normalizeSite(m, id)
	fmt.Fprintf(h, "%s|%s|%s|%d\x00", role, sig, kind, ordinal)
}

// normalizeSite resolves an instruction site to its hashable
// components. Sites that cannot be resolved (synthetic methods, stale
// indices) degrade to arity "?" / ordinal 0 deterministically.
func normalizeSite(m *threadify.Model, id ir.InstrID) (sig, kind string, ordinal int) {
	sig = id.Method + "/?"
	kind = "access"
	method := lookupMethod(m, id.Method)
	if method == nil {
		return sig, kind, 0
	}
	sig = fmt.Sprintf("%s/%d", id.Method, method.NumArgs)
	if id.Index < 0 || id.Index >= len(method.Instrs) {
		return sig, kind, 0
	}
	site := method.Instrs[id.Index]
	kind = accessKind(site.Op)
	for i := 0; i < id.Index; i++ {
		in := method.Instrs[i]
		if accessKind(in.Op) == kind && in.Field == site.Field {
			ordinal++
		}
	}
	return sig, kind, ordinal
}

// accessKind maps a field opcode to the race taxonomy's access kinds:
// gets are the paper's "use" (read), puts its "free" candidate (write —
// the detector only pairs definitely-null writes, so within a warning a
// put site is a null-write).
func accessKind(op ir.Op) string {
	switch op {
	case ir.OpGetField, ir.OpGetStatic:
		return "read"
	case ir.OpPutField, ir.OpPutStatic:
		return "null-write"
	default:
		return "access"
	}
}

func lookupMethod(m *threadify.Model, ref string) *ir.Method {
	if m == nil || m.Pkg == nil || m.Pkg.Program == nil {
		return nil
	}
	cls, name, ok := ir.SplitRef(ref)
	if !ok {
		return nil
	}
	c := m.Pkg.Program.Class(cls)
	if c == nil {
		return nil
	}
	return c.Method(name)
}

// lineageCategories returns the sorted distinct thread-kind chain pairs
// ("use-chain|free-chain") over every thread pair the detector found —
// surviving and filtered alike, so the fingerprint does not depend on
// which filter configuration the run used.
func lineageCategories(m *threadify.Model, w *uaf.Warning) []string {
	seen := make(map[string]bool)
	add := func(p uaf.ThreadPair) {
		cat := kindChain(m, p.Use) + "|" + kindChain(m, p.Free)
		seen[cat] = true
	}
	for _, p := range w.Pairs {
		add(p)
	}
	for p := range w.FilteredBy {
		add(p)
	}
	out := make([]string, 0, len(seen))
	for cat := range seen {
		out = append(out, cat)
	}
	sort.Strings(out)
	return out
}

// kindChain renders a thread's ancestry root-first as thread kinds
// ("dummy-main>EC>PC"). Kinds are stable category names; thread IDs and
// entry-method names are deliberately excluded.
func kindChain(m *threadify.Model, t int) string {
	if m == nil || t < 0 || t >= len(m.Threads) {
		return "?"
	}
	var kinds []string
	for cur := t; cur >= 0; cur = m.Threads[cur].Parent {
		kinds = append(kinds, m.Threads[cur].Kind.String())
	}
	var b []byte
	for i := len(kinds) - 1; i >= 0; i-- {
		if len(b) > 0 {
			b = append(b, '>')
		}
		b = append(b, kinds[i]...)
	}
	return string(b)
}

// Snapshot captures everything the filter pipeline may touch on a
// warning — its stable identity plus the surviving thread pairs and the
// per-pair filter attribution — in a directly comparable form. The
// parallel-determinism tests diff Snapshots across worker counts; the
// differential engine compares the ID fields across runs.
type Snapshot struct {
	ID       ID
	Pairs    []uaf.ThreadPair
	Filtered map[uaf.ThreadPair]string
}

// Snap builds a Snapshot for one warning.
func Snap(m *threadify.Model, w *uaf.Warning) Snapshot {
	return Snapshot{
		ID:       Warning(m, w),
		Pairs:    append([]uaf.ThreadPair(nil), w.Pairs...),
		Filtered: w.FilteredBy,
	}
}
