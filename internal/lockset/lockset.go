// Package lockset computes the set of locks that must be held at every
// instruction of every analyzed method context. nAdroid ignores locksets
// for race detection itself (locks cannot prevent ordering violations,
// §5) but the IG and IA filters use them selectively: an if-guard or
// intra-allocation between two background threads is only sound when a
// common lock provides atomicity (§6.1.2).
//
// A lock is identified by an abstract object; to stay a *must* analysis,
// a monitor expression contributes a lock only when its points-to set is
// a singleton (must-alias). Held sets flow into callees as the
// intersection over all call sites (plus the receiver for synchronized
// methods).
package lockset

import (
	"sort"

	"nadroid/internal/ir"
	"nadroid/internal/pointsto"
	"nadroid/internal/threadify"
)

// LockID is the abstract object serving as a lock.
type LockID = pointsto.ObjID

// Result answers "which locks are definitely held here".
type Result struct {
	m *threadify.Model
	// entry[mc] is the set of locks held on every path reaching mc.
	entry map[threadify.MCtx]lockSet
	// intra caches per-method monitor-region analyses.
	intra map[string][]lockSet // method ref -> per-instruction held set
}

type lockSet map[LockID]struct{}

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k := range s {
		out[k] = struct{}{}
	}
	return out
}

func intersect(a, b lockSet) lockSet {
	out := make(lockSet)
	for k := range a {
		if _, ok := b[k]; ok {
			out[k] = struct{}{}
		}
	}
	return out
}

func equal(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// Analyze computes lock sets for every method context in the model.
func Analyze(m *threadify.Model) *Result {
	r := &Result{
		m:     m,
		entry: make(map[threadify.MCtx]lockSet),
		intra: make(map[string][]lockSet),
	}

	// Entry-lock propagation: a worklist over call edges. Thread entries
	// start with no locks.
	type edge struct {
		to   threadify.MCtx
		held lockSet
	}
	var work []edge
	for _, th := range m.Threads {
		if th.Kind == threadify.KindDummyMain {
			continue
		}
		work = append(work, edge{th.Entry, make(lockSet)})
	}
	for len(work) > 0 {
		e := work[len(work)-1]
		work = work[:len(work)-1]
		cur, seen := r.entry[e.to]
		var next lockSet
		if !seen {
			next = e.held.clone()
		} else {
			next = intersect(cur, e.held)
			if equal(next, cur) {
				continue
			}
		}
		r.entry[e.to] = next

		mth, err := m.H.MethodByRef(e.to.Method)
		if err != nil || mth.Abstract {
			continue
		}
		held := r.heldVector(e.to, mth, next)
		// Propagate to callees.
		for i := range mth.Instrs {
			for _, callee := range m.PTS.CalleeContextsAt(e.to.Method, e.to.Recv, i) {
				work = append(work, edge{
					to:   threadify.MCtx{Method: callee.Method, Recv: callee.Recv},
					held: held[i],
				})
			}
		}
	}
	return r
}

// heldVector computes the per-instruction must-held set inside one
// method context, given the locks held on entry.
func (r *Result) heldVector(mc threadify.MCtx, mth *ir.Method, entry lockSet) []lockSet {
	n := len(mth.Instrs)
	out := make([]lockSet, n+1)
	base := entry.clone()
	if mth.Synch && !mth.Static {
		for _, o := range mustAlias(r.m.PTS.PointsTo(mc.Method, mc.Recv, mth.ThisReg())) {
			base[o] = struct{}{}
		}
	}
	// Forward must-dataflow over the CFG.
	g := ir.BuildCFG(mth)
	in := make([]lockSet, len(g.Blocks))
	in[0] = base
	work := []int{0}
	inWork := make([]bool, len(g.Blocks))
	inWork[0] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		state := in[b].clone()
		blk := g.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			out[i] = state.clone()
			switch mth.Instrs[i].Op {
			case ir.OpMonitorEnter:
				for _, o := range mustAlias(r.m.PTS.PointsTo(mc.Method, mc.Recv, mth.Instrs[i].B)) {
					state[o] = struct{}{}
				}
			case ir.OpMonitorExit:
				for _, o := range r.m.PTS.PointsTo(mc.Method, mc.Recv, mth.Instrs[i].B) {
					delete(state, o)
				}
			}
		}
		for _, s := range blk.Succs {
			var merged lockSet
			if in[s] == nil {
				merged = state.clone()
			} else {
				merged = intersect(in[s], state)
				if equal(merged, in[s]) {
					continue
				}
			}
			in[s] = merged
			if !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
	for i := range out {
		if out[i] == nil {
			out[i] = make(lockSet)
		}
	}
	return out
}

// mustAlias keeps the lock only when the points-to set is a singleton.
func mustAlias(objs []pointsto.ObjID) []pointsto.ObjID {
	if len(objs) == 1 {
		return objs
	}
	return nil
}

// HeldAt returns the locks definitely held at instruction idx of the
// given method context, sorted.
func (r *Result) HeldAt(mc threadify.MCtx, idx int) []LockID {
	entry, ok := r.entry[mc]
	if !ok {
		return nil
	}
	mth, err := r.m.H.MethodByRef(mc.Method)
	if err != nil || mth.Abstract || idx >= len(mth.Instrs) {
		return nil
	}
	vec := r.heldVector(mc, mth, entry)
	set := vec[idx]
	out := make([]LockID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CommonLock reports whether the two sites definitely hold a common lock.
func (r *Result) CommonLock(a threadify.MCtx, ai int, b threadify.MCtx, bi int) bool {
	la := r.HeldAt(a, ai)
	if len(la) == 0 {
		return false
	}
	lb := r.HeldAt(b, bi)
	set := make(map[LockID]bool, len(la))
	for _, l := range la {
		set[l] = true
	}
	for _, l := range lb {
		if set[l] {
			return true
		}
	}
	return false
}
