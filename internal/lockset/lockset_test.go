package lockset

import (
	"strings"
	"testing"

	"nadroid/internal/apk"
	"nadroid/internal/appbuilder"
	"nadroid/internal/framework"
	"nadroid/internal/ir"
	"nadroid/internal/threadify"
)

// build makes an app where two threads access a field under a shared
// lock, plus an unlocked accessor and a synchronized method.
func build(t *testing.T) (*apk.Package, *threadify.Model) {
	t.Helper()
	b := appbuilder.New("ls")
	act := b.Activity("ls/A")
	act.Field("lock", "ls/V")
	act.Field("f", "ls/V")
	b.Class("ls/V", framework.Object).Method("use", 0).Return()

	mkThread := func(name string, locked bool) {
		th := b.ThreadClass(name)
		th.Field("outer", "ls/A")
		run := th.Method("run", 0)
		o := run.GetThis("outer")
		if locked {
			lk := run.GetField(o, "ls/A", "lock")
			run.Lock(lk)
			run.GetField(o, "ls/A", "f")
			run.Unlock(lk)
		} else {
			run.GetField(o, "ls/A", "f")
		}
		run.Return()
	}
	mkThread("ls/Locked1", true)
	mkThread("ls/Locked2", true)
	mkThread("ls/Unlocked", false)

	sync := b.Class("ls/S", framework.Thread)
	sync.Field("outer", "ls/A")
	sm := sync.SyncMethod("run", 0)
	o := sm.GetThis("outer")
	sm.GetField(o, "ls/A", "f")
	sm.Return()

	oc := act.Method("onCreate", 1)
	lv := oc.New("ls/V")
	oc.PutThis("lock", lv)
	fv := oc.New("ls/V")
	oc.PutThis("f", fv)
	for _, cls := range []string{"ls/Locked1", "ls/Locked2", "ls/Unlocked", "ls/S"} {
		tv := oc.New(cls)
		oc.PutField(tv, cls, "outer", oc.This())
		oc.InvokeVoid(tv, cls, "start")
	}
	oc.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return pkg, m
}

// accessSite finds the (mctx, index) of the getfield of `f` inside the
// named class's run method.
func accessSite(t *testing.T, m *threadify.Model, cls string) (threadify.MCtx, int) {
	t.Helper()
	for _, th := range m.Threads {
		if th.Kind == threadify.KindDummyMain || !strings.HasPrefix(th.Entry.Method, cls+".") {
			continue
		}
		mth, err := m.H.MethodByRef(th.Entry.Method)
		if err != nil {
			t.Fatal(err)
		}
		for i, in := range mth.Instrs {
			if in.Op == ir.OpGetField && in.Field.Name == "f" {
				return th.Entry, i
			}
		}
	}
	t.Fatalf("no access site in %s", cls)
	return threadify.MCtx{}, 0
}

func TestLockedAccessHoldsLock(t *testing.T) {
	_, m := build(t)
	r := Analyze(m)
	mc, idx := accessSite(t, m, "ls/Locked1")
	if got := r.HeldAt(mc, idx); len(got) != 1 {
		t.Errorf("locked access holds %v, want exactly one lock", got)
	}
}

func TestUnlockedAccessHoldsNothing(t *testing.T) {
	_, m := build(t)
	r := Analyze(m)
	mc, idx := accessSite(t, m, "ls/Unlocked")
	if got := r.HeldAt(mc, idx); len(got) != 0 {
		t.Errorf("unlocked access holds %v, want none", got)
	}
}

func TestCommonLockAcrossThreads(t *testing.T) {
	_, m := build(t)
	r := Analyze(m)
	a, ai := accessSite(t, m, "ls/Locked1")
	b, bi := accessSite(t, m, "ls/Locked2")
	if !r.CommonLock(a, ai, b, bi) {
		t.Error("both threads lock the same object; CommonLock must hold")
	}
	c, ci := accessSite(t, m, "ls/Unlocked")
	if r.CommonLock(a, ai, c, ci) {
		t.Error("no common lock with the unlocked access")
	}
}

func TestSynchronizedMethodHoldsReceiverLock(t *testing.T) {
	_, m := build(t)
	r := Analyze(m)
	mc, idx := accessSite(t, m, "ls/S")
	if got := r.HeldAt(mc, idx); len(got) != 1 {
		t.Errorf("synchronized run holds %v, want the receiver lock", got)
	}
}

// A lock released before the access is no longer held (must-analysis).
func TestReleasedLockNotHeld(t *testing.T) {
	b := appbuilder.New("ls2")
	act := b.Activity("l2/A")
	act.Field("lock", "l2/V")
	act.Field("f", "l2/V")
	b.Class("l2/V", framework.Object)
	th := b.ThreadClass("l2/T")
	th.Field("outer", "l2/A")
	run := th.Method("run", 0)
	o := run.GetThis("outer")
	lk := run.GetField(o, "l2/A", "lock")
	run.Lock(lk)
	run.Unlock(lk)
	run.GetField(o, "l2/A", "f") // after release
	run.Return()
	oc := act.Method("onCreate", 1)
	lv := oc.New("l2/V")
	oc.PutThis("lock", lv)
	tv := oc.New("l2/T")
	oc.PutField(tv, "l2/T", "outer", oc.This())
	oc.InvokeVoid(tv, "l2/T", "start")
	oc.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(m)
	mc, idx := accessSite(t, m, "l2/T")
	if got := r.HeldAt(mc, idx); len(got) != 0 {
		t.Errorf("released lock still reported: %v", got)
	}
}

// Locks flow into callees: an access inside a helper called from a
// monitor region is protected.
func TestInterproceduralLockPropagation(t *testing.T) {
	b := appbuilder.New("ls3")
	act := b.Activity("l3/A")
	act.Field("lock", "l3/V")
	act.Field("f", "l3/V")
	b.Class("l3/V", framework.Object)
	th := b.ThreadClass("l3/T")
	th.Field("outer", "l3/A")
	helper := th.Method("helper", 0)
	ho := helper.GetThis("outer")
	helper.GetField(ho, "l3/A", "f")
	helper.Return()
	run := th.Method("run", 0)
	o := run.GetThis("outer")
	lk := run.GetField(o, "l3/A", "lock")
	run.Lock(lk)
	run.InvokeThis("helper")
	run.Unlock(lk)
	run.Return()
	oc := act.Method("onCreate", 1)
	lv := oc.New("l3/V")
	oc.PutThis("lock", lv)
	tv := oc.New("l3/T")
	oc.PutField(tv, "l3/T", "outer", oc.This())
	oc.InvokeVoid(tv, "l3/T", "start")
	oc.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(m)
	// Find the helper's access site.
	mth, err := m.H.MethodByRef("l3/T.helper")
	if err != nil {
		t.Fatal(err)
	}
	idx := -1
	for i, in := range mth.Instrs {
		if in.Op == ir.OpGetField && in.Field.Name == "f" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("no access in helper")
	}
	// The helper runs under the thread's context (its receiver object).
	var mc threadify.MCtx
	for _, th := range m.Threads {
		if strings.HasPrefix(th.Entry.Method, "l3/T.") {
			mc = threadify.MCtx{Method: "l3/T.helper", Recv: th.Entry.Recv}
		}
	}
	if got := r.HeldAt(mc, idx); len(got) != 1 {
		t.Errorf("callee access holds %v, want the caller's lock", got)
	}
}
