package uaf

import (
	"strings"
	"testing"

	"nadroid/internal/apk"
	"nadroid/internal/appbuilder"
	"nadroid/internal/framework"
	"nadroid/internal/ir"
	"nadroid/internal/race"
	"nadroid/internal/threadify"
)

func fieldRef(cls, name string) ir.FieldRef { return ir.FieldRef{Class: cls, Name: name} }
func instrID(m string, i int) ir.InstrID    { return ir.InstrID{Method: m, Index: i} }

// buildConnectBotLike reproduces Figure 1(a): an activity binds to a
// service; onServiceConnected sets `bound`, onServiceDisconnected frees
// it, and onCreateContextMenu uses it without a guard.
func buildConnectBotLike(t *testing.T) *apk.Package {
	t.Helper()
	b := appbuilder.New("connectbot-like")
	act := b.Activity("cb/ConsoleActivity")
	act.Field("bound", "cb/Binding")
	b.Class("cb/Binding", framework.Object).Method("use", 0).Return()

	conn := b.ServiceConn("cb/Conn")
	conn.Field("outer", "cb/ConsoleActivity")
	sc := conn.Method("onServiceConnected", 1)
	o := sc.GetThis("outer")
	bnd := sc.New("cb/Binding")
	sc.PutField(o, "cb/ConsoleActivity", "bound", bnd)
	sc.Return()
	sd := conn.Method("onServiceDisconnected", 1)
	o2 := sd.GetThis("outer")
	sd.Free(o2, "cb/ConsoleActivity", "bound")
	sd.Return()

	os := act.Method("onStart", 0)
	cn := os.New("cb/Conn")
	os.PutField(cn, "cb/Conn", "outer", os.This())
	os.InvokeVoid(os.This(), "cb/ConsoleActivity", "bindService", cn)
	os.Return()

	menu := act.Method("onCreateContextMenu", 1)
	bb := menu.GetThis("bound")
	menu.Use(bb, "cb/Binding")
	menu.Return()

	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func detect(t *testing.T, pkg *apk.Package) *Detection {
	t.Helper()
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatalf("threadify: %v", err)
	}
	return Detect(m)
}

func TestDetectsFigure1aUAF(t *testing.T) {
	d := detect(t, buildConnectBotLike(t))
	var hit *Warning
	for _, w := range d.Warnings {
		if w.Field.Name == "bound" &&
			strings.Contains(w.Use.Method, "onCreateContextMenu") &&
			strings.Contains(w.Free.Method, "onServiceDisconnected") {
			hit = w
		}
	}
	if hit == nil {
		t.Fatalf("missing the Figure 1(a) warning; got %d warnings: %v", len(d.Warnings), keys(d))
	}
	if len(hit.Pairs) == 0 {
		t.Fatal("warning has no thread pairs")
	}
	// The use thread is an EC, the free thread a PC.
	p := hit.Pairs[0]
	if d.Model.Threads[p.Use].Kind != threadify.KindEntryCallback {
		t.Errorf("use thread kind = %v, want EC", d.Model.Threads[p.Use].Kind)
	}
	if d.Model.Threads[p.Free].Kind != threadify.KindPostedCallback {
		t.Errorf("free thread kind = %v, want PC", d.Model.Threads[p.Free].Kind)
	}
}

func TestUseFreeRestriction(t *testing.T) {
	d := detect(t, buildConnectBotLike(t))
	for _, w := range d.Warnings {
		use := d.AccessFor(findAccessID(t, d, w.Use, race.Read))
		free := d.AccessFor(findAccessID(t, d, w.Free, race.NullWrite))
		if use.Kind != race.Read {
			t.Errorf("use %v kind = %v", w.Use, use.Kind)
		}
		if free.Kind != race.NullWrite {
			t.Errorf("free %v kind = %v", w.Free, free.Kind)
		}
	}
}

// The onServiceConnected store is a Write (not a free): no warning may
// list it as its free side.
func TestNonNullStoreIsNotAFree(t *testing.T) {
	d := detect(t, buildConnectBotLike(t))
	for _, w := range d.Warnings {
		if strings.Contains(w.Free.Method, "onServiceConnected") {
			t.Errorf("onServiceConnected's store must not be a free: %v", w.Free)
		}
	}
}

// Thread-local objects must not race: an activity-local object freed and
// used only within one callback has no pairs.
func TestThreadLocalObjectDoesNotRace(t *testing.T) {
	b := appbuilder.New("local")
	act := b.Activity("l/A")
	b.Class("l/Box", framework.Object).Field("f", "l/V")
	b.Class("l/V", framework.Object)
	oc := act.Method("onCreate", 1)
	box := oc.New("l/Box")
	v := oc.New("l/V")
	oc.PutField(box, "l/Box", "f", v)
	got := oc.GetField(box, "l/Box", "f")
	_ = got
	oc.Free(box, "l/Box", "f")
	oc.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := detect(t, pkg)
	if n := d.AliveCount(); n != 0 {
		t.Errorf("thread-local box produced %d warnings", n)
	}
}

// Two UI callbacks freeing/using a shared field race after
// threadification (the paper's single-threaded data race).
func TestSingleThreadedRaceBetweenCallbacks(t *testing.T) {
	b := appbuilder.New("ui")
	act := b.Activity("u/A")
	act.Field("f", "u/V")
	act.Field("view", framework.View)
	b.Class("u/V", framework.Object).Method("use", 0).Return()
	l1 := b.Class("u/L1", framework.Object, framework.OnClickListener)
	l1.Field("outer", "u/A")
	c1 := l1.Method("onClick", 1)
	o := c1.GetThis("outer")
	f := c1.GetField(o, "u/A", "f")
	c1.Use(f, "u/V")
	c1.Return()
	l2 := b.Class("u/L2", framework.Object, framework.OnClickListener)
	l2.Field("outer", "u/A")
	c2 := l2.Method("onClick", 1)
	o2 := c2.GetThis("outer")
	c2.Free(o2, "u/A", "f")
	c2.Return()
	oc := act.Method("onCreate", 1)
	v := oc.GetThis("view")
	a1 := oc.New("u/L1")
	oc.PutField(a1, "u/L1", "outer", oc.This())
	oc.InvokeVoid(v, framework.View, "setOnClickListener", a1)
	a2 := oc.New("u/L2")
	oc.PutField(a2, "u/L2", "outer", oc.This())
	oc.InvokeVoid(v, framework.View, "setOnClickListener", a2)
	oc.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := detect(t, pkg)
	found := false
	for _, w := range d.Warnings {
		if w.Field.Name == "f" && strings.Contains(w.Use.Method, "L1.onClick") && strings.Contains(w.Free.Method, "L2.onClick") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing EC-EC single-looper race; warnings: %v", keys(d))
	}
}

func findAccessID(t *testing.T, d *Detection, instr interface{ String() string }, kind race.AccessKind) int {
	t.Helper()
	for _, a := range d.Race.Accesses {
		if a.Instr.String() == instr.String() && a.Kind == kind {
			return a.ID
		}
	}
	t.Fatalf("no access for %v kind %v", instr, kind)
	return -1
}

func keys(d *Detection) []string {
	var out []string
	for _, w := range d.Warnings {
		out = append(out, w.Key())
	}
	return out
}

// --- Warning bookkeeping ---------------------------------------------------

func TestRemovePairsRecordsFilter(t *testing.T) {
	w := &Warning{
		Pairs: []ThreadPair{{Use: 1, Free: 2}, {Use: 3, Free: 4}, {Use: 5, Free: 6}},
	}
	n := w.RemovePairs("MHB", func(p ThreadPair) bool { return p.Use == 3 })
	if n != 1 {
		t.Fatalf("removed = %d, want 1", n)
	}
	if len(w.Pairs) != 2 {
		t.Fatalf("pairs left = %d, want 2", len(w.Pairs))
	}
	if w.FilteredBy[ThreadPair{Use: 3, Free: 4}] != "MHB" {
		t.Errorf("FilteredBy = %v", w.FilteredBy)
	}
	if !w.Alive() {
		t.Error("warning with remaining pairs must be alive")
	}
	w.RemovePairs("TT", func(ThreadPair) bool { return true })
	if w.Alive() {
		t.Error("warning with no pairs must be dead")
	}
	if w.FilteredBy[ThreadPair{Use: 1, Free: 2}] != "TT" {
		t.Errorf("later filter attribution lost: %v", w.FilteredBy)
	}
}

func TestWarningKeyStable(t *testing.T) {
	w1 := &Warning{
		Field: fieldRef("C", "f"),
		Use:   instrID("C.m", 1),
		Free:  instrID("C.n", 2),
	}
	w2 := &Warning{
		Field: fieldRef("C", "f"),
		Use:   instrID("C.m", 1),
		Free:  instrID("C.n", 2),
	}
	if w1.Key() != w2.Key() {
		t.Error("identical warnings must share a key")
	}
	w2.Free = instrID("C.n", 3)
	if w1.Key() == w2.Key() {
		t.Error("different frees must differ")
	}
}
