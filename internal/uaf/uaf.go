// Package uaf turns raw racy pairs into use-after-free warnings (§5):
// a warning is a (use, free) pair of instructions on the same field,
// annotated with every (use-thread, free-thread) combination the race
// detector found. Filters (§6) prune thread pairs; a warning survives
// while at least one pair survives.
package uaf

import (
	"context"
	"fmt"
	"sort"

	"nadroid/internal/ir"
	"nadroid/internal/obs"
	"nadroid/internal/pointsto"
	"nadroid/internal/race"
	"nadroid/internal/threadify"
)

// ThreadPair is one (use-thread, free-thread) combination.
type ThreadPair struct {
	Use, Free int
}

// Warning is one potential UAF: a use and a free of the same field that
// may execute in an order that dereferences null.
type Warning struct {
	Field ir.FieldRef
	Use   ir.InstrID
	Free  ir.InstrID
	// Pairs are the thread combinations still alive; filters remove
	// entries and annotate Filtered.
	Pairs []ThreadPair
	// Objs are the shared abstract objects underlying the race.
	Objs []pointsto.ObjID
	// FilteredBy records, per removed pair, which filter removed it.
	FilteredBy map[ThreadPair]string
	// Races are the racy access-ID pairs that contributed to this
	// warning, in detection order — the hooks provenance queries use to
	// re-derive the warning from the Datalog engine.
	Races []race.Pair
}

// Key identifies a warning for deduplication and reporting.
func (w *Warning) Key() string {
	return fmt.Sprintf("%s|%s|%s", w.Field, w.Use, w.Free)
}

// Alive reports whether any thread pair survives.
func (w *Warning) Alive() bool { return len(w.Pairs) > 0 }

// RemovePairs deletes the pairs selected by keep==false, recording the
// filter name; it returns how many pairs were removed.
func (w *Warning) RemovePairs(filter string, remove func(ThreadPair) bool) int {
	kept := w.Pairs[:0]
	n := 0
	for _, p := range w.Pairs {
		if remove(p) {
			if w.FilteredBy == nil {
				w.FilteredBy = make(map[ThreadPair]string)
			}
			w.FilteredBy[p] = filter
			n++
		} else {
			kept = append(kept, p)
		}
	}
	w.Pairs = kept
	return n
}

// Detection is the result of the UAF stage.
type Detection struct {
	Model    *threadify.Model
	Race     *race.Result
	Warnings []*Warning
	// accByID lets filters look up access metadata.
	accByID map[int]race.Access
}

// AccessFor returns the access metadata for an id.
func (d *Detection) AccessFor(id int) race.Access { return d.accByID[id] }

// Options tunes the detection stage.
type Options struct {
	// Workers bounds the Datalog engines' per-round worker pools
	// (0 = GOMAXPROCS). Results are identical for any setting.
	Workers int
}

// Detect runs race detection restricted to use/free pairs and groups the
// racy pairs into warnings keyed by (field, use instr, free instr).
func Detect(m *threadify.Model) *Detection {
	return DetectContext(context.Background(), m)
}

// DetectContext is Detect under an observability context: race
// detection and warning grouping run in their own spans, and the racy
// pair / warning counts land in the pipeline counters.
func DetectContext(ctx context.Context, m *threadify.Model) *Detection {
	return DetectWith(ctx, m, Options{})
}

// DetectWith is DetectContext with explicit options.
func DetectWith(ctx context.Context, m *threadify.Model, opts Options) *Detection {
	rr := race.DetectContext(ctx, m, race.Options{UseFreeOnly: true, Workers: opts.Workers})
	_, span := obs.Start(ctx, "uaf.group")
	d := Group(m, rr)
	pairs := 0
	for _, w := range d.Warnings {
		pairs += len(w.Pairs)
	}
	span.SetAttr("warnings", len(d.Warnings))
	span.SetAttr("thread_pairs", pairs)
	span.End()
	obs.Add(ctx, "uaf_warnings", int64(len(d.Warnings)))
	obs.Add(ctx, "uaf_thread_pairs", int64(pairs))
	return d
}

// Group assembles warnings from a race result.
func Group(m *threadify.Model, rr *race.Result) *Detection {
	d := &Detection{Model: m, Race: rr, accByID: make(map[int]race.Access)}
	for _, a := range rr.Accesses {
		d.accByID[a.ID] = a
	}
	byKey := make(map[string]*Warning)
	var order []string
	for _, p := range rr.Pairs {
		use, free := d.accByID[p.A], d.accByID[p.B]
		if use.Kind != race.Read || free.Kind != race.NullWrite {
			continue
		}
		w := &Warning{Field: use.Field, Use: use.Instr, Free: free.Instr}
		k := w.Key()
		existing, ok := byKey[k]
		if !ok {
			byKey[k] = w
			order = append(order, k)
			existing = w
		}
		pair := ThreadPair{Use: use.Thread, Free: free.Thread}
		if !hasPair(existing.Pairs, pair) {
			existing.Pairs = append(existing.Pairs, pair)
		}
		existing.Races = append(existing.Races, p)
		existing.Objs = mergeObjs(existing.Objs, intersect(use.Objs, free.Objs))
	}
	sort.Strings(order)
	for _, k := range order {
		d.Warnings = append(d.Warnings, byKey[k])
	}
	for _, w := range d.Warnings {
		sort.Slice(w.Pairs, func(i, j int) bool {
			if w.Pairs[i].Use != w.Pairs[j].Use {
				return w.Pairs[i].Use < w.Pairs[j].Use
			}
			return w.Pairs[i].Free < w.Pairs[j].Free
		})
	}
	return d
}

// AliveCount counts warnings with at least one surviving pair.
func (d *Detection) AliveCount() int {
	n := 0
	for _, w := range d.Warnings {
		if w.Alive() {
			n++
		}
	}
	return n
}

// Alive returns the surviving warnings.
func (d *Detection) Alive() []*Warning {
	var out []*Warning
	for _, w := range d.Warnings {
		if w.Alive() {
			out = append(out, w)
		}
	}
	return out
}

func hasPair(pairs []ThreadPair, p ThreadPair) bool {
	for _, q := range pairs {
		if q == p {
			return true
		}
	}
	return false
}

func intersect(a, b []pointsto.ObjID) []pointsto.ObjID {
	set := make(map[pointsto.ObjID]bool, len(a))
	for _, o := range a {
		set[o] = true
	}
	var out []pointsto.ObjID
	for _, o := range b {
		if set[o] {
			out = append(out, o)
		}
	}
	if out == nil && len(a) == 0 && len(b) == 0 {
		// Static accesses carry no objects; keep empty.
		return nil
	}
	return out
}

func mergeObjs(a, b []pointsto.ObjID) []pointsto.ObjID {
	set := make(map[pointsto.ObjID]bool, len(a)+len(b))
	for _, o := range a {
		set[o] = true
	}
	for _, o := range b {
		set[o] = true
	}
	out := make([]pointsto.ObjID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
