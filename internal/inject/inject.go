// Package inject runs the false-negative study of §8.6 (Table 2):
// artificial UAF ordering violations are planted at DroidRacer-style
// locations in 8 test applications, and the static pipeline is asked to
// find them. Two mechanisms cause misses, both reproduced here:
// framework-mediated call paths the call graph cannot see (IBinder
// passed to the framework) and real UAFs wrongly pruned by the unsound
// CHB filter (error-path finish()).
package inject

import (
	"fmt"
	"sort"

	"nadroid/internal/corpus"
	"nadroid/internal/filters"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// Outcome classifies what the pipeline did with one injected UAF.
type Outcome int

const (
	// Detected: a warning for the injected field survives all filters.
	Detected Outcome = iota
	// PrunedByUnsound: detected, but an unsound filter removed it.
	PrunedByUnsound
	// PrunedBySound: detected, but a sound filter removed it (would be a
	// soundness bug — tests assert this never happens).
	PrunedBySound
	// Missed: no warning at all references the injected field.
	Missed
)

var outcomeNames = [...]string{"detected", "pruned-unsound", "pruned-sound", "missed"}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// SiteResult pairs an injected site with its outcome.
type SiteResult struct {
	Site    corpus.InjectedSite
	Outcome Outcome
}

// Row aggregates one application of the study.
type Row struct {
	App     string
	Results []SiteResult
	// ByKind counts injections per kind.
	ByKind map[corpus.InjectionKind]int
}

// All returns the injected count.
func (r Row) All() int { return len(r.Results) }

// Missed counts injections with no warning.
func (r Row) Missed() int { return r.count(Missed) }

// PrunedUnsound counts injections lost to unsound filters.
func (r Row) PrunedUnsound() int { return r.count(PrunedByUnsound) }

// Detected counts surviving injections.
func (r Row) Detected() int { return r.count(Detected) }

func (r Row) count(o Outcome) int {
	n := 0
	for _, res := range r.Results {
		if res.Outcome == o {
			n++
		}
	}
	return n
}

// Plan is the per-app injection list; the default mirrors Table 2's 28
// injections over 8 DroidRacer apps.
type Plan struct {
	App   string
	Kinds []corpus.InjectionKind
}

// DefaultPlans reproduces Table 2: 28 injections, of which Mms's two
// hidden-binder sites are missed and the three error-finish sites
// (Browser ×2, Puzzles ×1) are pruned by the unsound CHB filter.
func DefaultPlans() []Plan {
	k := func(ks ...corpus.InjectionKind) []corpus.InjectionKind { return ks }
	return []Plan{
		{"Tomdroid", k(corpus.InjectECPC)},
		{"SGTPuzzles", k(
			corpus.InjectECEC, corpus.InjectECPC, corpus.InjectECPC,
			corpus.InjectECPC, corpus.InjectECPC, corpus.InjectPCPC,
			corpus.InjectPCPC, corpus.InjectCNT, corpus.InjectErrorFinish)},
		{"Aard", k(corpus.InjectECPC)},
		{"Music", k(
			corpus.InjectECPC, corpus.InjectECPC, corpus.InjectPCPC,
			corpus.InjectCNT, corpus.InjectCNT, corpus.InjectCNT)},
		{"Mms", k(
			corpus.InjectECPC, corpus.InjectECPC, corpus.InjectPCPC,
			corpus.InjectCRT, corpus.InjectHiddenBinder, corpus.InjectHiddenBinder)},
		{"Browser", k(corpus.InjectCNT, corpus.InjectErrorFinish, corpus.InjectErrorFinish)},
		{"MyTracks_2", k(corpus.InjectPCPC)},
		{"K9Mail", k(corpus.InjectCNT)},
	}
}

// Run executes the study for the given plans (DefaultPlans when nil).
func Run(plans []Plan) ([]Row, error) {
	if plans == nil {
		plans = DefaultPlans()
	}
	var rows []Row
	for _, p := range plans {
		app, ok := corpus.ByName(p.App)
		if !ok {
			return nil, fmt.Errorf("inject: unknown corpus app %q", p.App)
		}
		pkg, sites := app.Spec.BuildInjected(p.Kinds)
		model, err := threadify.Build(pkg, threadify.Options{})
		if err != nil {
			return nil, fmt.Errorf("inject: %s: %v", p.App, err)
		}
		d := uaf.Detect(model)
		filters.Run(d)
		row := Row{App: p.App, ByKind: make(map[corpus.InjectionKind]int)}
		for _, site := range sites {
			row.ByKind[site.Kind]++
			row.Results = append(row.Results, SiteResult{Site: site, Outcome: classify(d, site)})
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// classify inspects the detection for one injected site.
func classify(d *uaf.Detection, site corpus.InjectedSite) Outcome {
	soundNames := map[string]bool{filters.NameMHB: true, filters.NameIG: true, filters.NameIA: true}
	found := false
	anyAlive := false
	anyUnsound := false
	for _, w := range d.Warnings {
		if w.Field.Class != site.Class || w.Field.Name != site.Field {
			continue
		}
		found = true
		if w.Alive() {
			anyAlive = true
			continue
		}
		for _, name := range w.FilteredBy {
			if !soundNames[name] {
				anyUnsound = true
			}
		}
	}
	switch {
	case !found:
		return Missed
	case anyAlive:
		return Detected
	case anyUnsound:
		return PrunedByUnsound
	default:
		return PrunedBySound
	}
}

// Totals sums all rows.
func Totals(rows []Row) (all, missed, prunedUnsound int) {
	for _, r := range rows {
		all += r.All()
		missed += r.Missed()
		prunedUnsound += r.PrunedUnsound()
	}
	return
}

// KindsInOrder returns the kinds present across rows, sorted for stable
// table rendering.
func KindsInOrder(rows []Row) []corpus.InjectionKind {
	seen := map[corpus.InjectionKind]bool{}
	for _, r := range rows {
		for k := range r.ByKind {
			seen[k] = true
		}
	}
	var out []corpus.InjectionKind
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
