package inject

import (
	"testing"

	"nadroid/internal/corpus"
)

// TestDefaultStudyMatchesPaper regenerates Table 2 and asserts the
// paper's headline: 28 injections, 2 missed by detection (both the
// framework-mediated binder path in Mms), 3 pruned by the unsound CHB
// filter (Browser x2, Puzzles x1), everything else detected.
func TestDefaultStudyMatchesPaper(t *testing.T) {
	rows, err := Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	all, missed, pruned := Totals(rows)
	if all != 28 {
		t.Errorf("injected = %d, want 28", all)
	}
	if missed != 2 {
		t.Errorf("missed = %d, want 2", missed)
	}
	if pruned != 3 {
		t.Errorf("pruned by unsound = %d, want 3", pruned)
	}
	byApp := map[string]Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	if byApp["Mms"].Missed() != 2 {
		t.Errorf("Mms missed = %d, want 2 (hidden binder)", byApp["Mms"].Missed())
	}
	if byApp["Browser"].PrunedUnsound() != 2 {
		t.Errorf("Browser pruned = %d, want 2 (error finish)", byApp["Browser"].PrunedUnsound())
	}
	if byApp["SGTPuzzles"].PrunedUnsound() != 1 {
		t.Errorf("Puzzles pruned = %d, want 1", byApp["SGTPuzzles"].PrunedUnsound())
	}
	// The sound filters must never eat an injected true bug.
	for _, r := range rows {
		for _, res := range r.Results {
			if res.Outcome == PrunedBySound {
				t.Errorf("%s: injected %v pruned by a SOUND filter — soundness bug", r.App, res.Site)
			}
		}
	}
}

// Every basic injection kind is detectable in a minimal app.
func TestEachKindDetectedInIsolation(t *testing.T) {
	base := corpus.Spec{Name: "iso"}
	for _, k := range []corpus.InjectionKind{
		corpus.InjectECEC, corpus.InjectECPC, corpus.InjectPCPC,
		corpus.InjectCRT, corpus.InjectCNT,
	} {
		rows, err := Run([]Plan{{App: "Tomdroid", Kinds: []corpus.InjectionKind{k}}})
		if err != nil {
			t.Fatal(err)
		}
		if rows[0].Detected() != 1 {
			t.Errorf("kind %v: detected = %d, want 1", k, rows[0].Detected())
		}
	}
	_ = base
}

func TestUnknownAppRejected(t *testing.T) {
	if _, err := Run([]Plan{{App: "NoSuchApp"}}); err == nil {
		t.Fatal("unknown apps must error")
	}
}
