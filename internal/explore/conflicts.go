// Conflict-aware partial-order reduction (DPOR-style). Two schedules
// that only permute adjacent independent actions drive the interpreter
// to equivalent states, so the explorer needs to execute just one
// representative per trace-equivalence class. Conflicts precomputes the
// pairwise independence facts from analysis results the pipeline already
// has — the per-thread field footprints (race.CollectAccesses) and the
// model's call graph — and a per-warning pruner canonicalizes schedule
// prefixes by bubbling independent out-of-order actions into a normal
// form, so the DFS dedup map collapses whole equivalence classes.
//
// The interpreter records a choice point only where more than one
// scheduler option exists. That gives recorded actions two distinct
// granularities, with different commutation arguments:
//
//   - Atomic selections ("event:…", "dispatch:…" taken at a
//     looper-idle point). When no multi-option point interrupts, the
//     selection's entire callback drains through forced single-option
//     "run:looper" quanta before the next recorded point — the recorded
//     action IS the whole callback execution. Two adjacent atomic
//     selections commute, even on the same (looper) executor, when
//     their effects commute as state transformers: field footprints
//     don't conflict (field instructions are the IR's only heap
//     effects, so complete footprints make this exact), and they don't
//     both touch the same non-heap state component — the looper queue
//     (posting/cancelling/dispatch order is FIFO), the binder/receiver
//     registration state, or the world flags (finish, resumed/destroyed
//     lifecycle flags, view visibility, wake locks). Thread spawns are
//     conservatively never commuted. Listener registrations are benign:
//     a registered event cannot fire before its registration, so the
//     reordered run is either unrealizable (harmless — it is never
//     generated) or state-isomorphic.
//
//   - Drain quanta ("run:looper", "run:<bg>" taken where several
//     executors are runnable). These are partial executions, so they
//     only commute across different executors, and only when both
//     sides' entry closures are strictly clean (no scheduler-visible
//     effects at all, no monitor ops, no throws) with non-conflicting
//     footprints. A mixed pair (selection next to a quantum) means a
//     background executor was live, so the selection was a pure
//     enqueue — it commutes with a clean non-conflicting quantum of a
//     different executor.
//
// Neither form may commute across a boundary where the interpreter took
// hidden forced actions (single-option steps other than a plain looper
// drain — e.g. the initial forced onCreate): those steps belong to
// neither neighbor, so the boundary is a barrier (ScheduleInfo.Forced).
//
// Since every action in a class executes from an equivalent state, it
// behaves identically in every member — including any NPE it raises —
// so witness detection (and StopOnNPE truncation) is class-invariant.
package explore

import (
	"strconv"
	"strings"

	"nadroid/internal/interp"
	"nadroid/internal/ir"
	"nadroid/internal/race"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// Effect buckets: two atomic selections conflict when both touch the
// same bucket (or either spawns). The names under-pin the interpreter's
// intrinsics; classifying by name alone over-approximates the
// classifier set (which also checks receiver types), which is the safe
// direction — a false positive only costs pruning power.
var (
	// queueNames mutate the looper queue (enqueue, cancel): FIFO makes
	// their order observable.
	queueNames = map[string]bool{
		"post": true, "postDelayed": true, "runOnUiThread": true,
		"sendMessage": true, "sendMessageDelayed": true, "sendEmptyMessage": true,
		"execute": true, "submit": true, "publishProgress": true, "schedule": true,
		"removeCallbacksAndMessages": true, "removeCallbacks": true, "cancel": true,
	}
	// bindNames mutate binder/receiver/listener registration state.
	bindNames = map[string]bool{
		"bindService": true, "unbindService": true,
		"registerReceiver": true, "unregisterReceiver": true,
		"requestLocationUpdates": true, "registerListener": true,
		"addService": true,
	}
	// flagNames mutate world flags (component lifecycle, view gating,
	// wake locks): toggles do not commute with each other.
	flagNames = map[string]bool{
		"finish": true, "setVisibility": true, "setEnabled": true,
		"acquire": true, "release": true,
	}
	// spawnNames start a new executor; spawners never commute.
	spawnNames = map[string]bool{"start": true}
)

// footAccess is one footprint entry: a field the entry-method closure
// may touch, with the strongest access kind seen and the receiver
// objects (empty = unknown receivers, treated as overlapping all).
type footAccess struct {
	write  bool
	static bool
	objs   map[int]bool
	anyObj bool // some access had no receiver info: overlap everything
}

// summary is the merged effect summary of one thread-entry method
// (merged across every modeled thread sharing that entry).
type summary struct {
	// resolved: every closure member resolved to a concrete body, so
	// the footprint and effect bits below are complete. Unresolved
	// summaries never license swaps.
	resolved bool
	// quantumClean: the strict cleanliness drain quanta need — no
	// effect bits at all, no monitor ops, no throws.
	quantumClean bool
	// Atomic effect buckets (see the package comment).
	queue, bind, flags, spawn bool
	// fields maps canonical field refs to the merged footprint entry.
	fields map[string]*footAccess
	// reach is the method-ref closure (the visited set of the effect
	// scan, kept for diagnostics).
	reach map[string]bool
}

// Conflicts holds the per-entry-method effect summaries for one model.
// Build it once per analysis (NewConflicts) and share it across
// warnings and workers: it is immutable after construction.
type Conflicts struct {
	byMethod map[string]*summary
}

// NewConflicts derives the independence facts for partial-order
// reduction from the model and its collected accesses (the same
// race.CollectAccesses output the detectors consume).
func NewConflicts(model *threadify.Model, accesses []race.Access) *Conflicts {
	c := &Conflicts{byMethod: make(map[string]*summary)}

	// Thread -> summary slot keyed by entry method.
	slot := func(t *threadify.Thread) *summary {
		s := c.byMethod[t.Entry.Method]
		if s == nil {
			s = &summary{resolved: true, quantumClean: true,
				fields: make(map[string]*footAccess), reach: make(map[string]bool)}
			c.byMethod[t.Entry.Method] = s
		}
		return s
	}

	byThread := make(map[int]*summary)
	for _, t := range model.Threads {
		if t.Kind == threadify.KindDummyMain {
			continue
		}
		s := slot(t)
		byThread[t.ID] = s
		// Completing a task body enqueues onPostExecute on the looper: a
		// queue effect the instruction scan cannot see.
		if t.Kind == threadify.KindTaskBody {
			s.queue = true
			s.quantumClean = false
		}
		for mc := range model.Reach(t.ID) {
			if s.reach[mc.Method] {
				continue
			}
			s.reach[mc.Method] = true
			mth, err := model.H.MethodByRef(mc.Method)
			if err != nil || mth == nil || mth.Abstract {
				// Unresolvable closure member: the footprint below is
				// incomplete, so the summary must not license swaps.
				s.resolved = false
				s.quantumClean = false
				continue
			}
			scanEffects(s, mth)
		}
	}

	// Footprints: the complete per-thread field accesses, attributed to
	// the thread's entry method.
	for i := range accesses {
		a := &accesses[i]
		s := byThread[a.Thread]
		if s == nil {
			continue
		}
		f := s.fields[a.Field.String()]
		if f == nil {
			f = &footAccess{objs: make(map[int]bool)}
			s.fields[a.Field.String()] = f
		}
		if a.Kind != race.Read {
			f.write = true
		}
		if a.Static {
			f.static = true
		}
		if len(a.Objs) == 0 && !a.Static {
			f.anyObj = true
		}
		for _, o := range a.Objs {
			f.objs[int(o)] = true
		}
	}
	return c
}

// scanEffects folds one method body into the summary's effect bits.
func scanEffects(s *summary, m *ir.Method) {
	if m.Synch {
		s.quantumClean = false
	}
	for _, in := range m.Instrs {
		switch in.Op {
		case ir.OpMonitorEnter, ir.OpMonitorExit, ir.OpThrow:
			// Monitor ops and throws stay inside an atomic callback
			// (nothing interleaves mid-drain) but make quantum slices
			// scheduler-sensitive.
			s.quantumClean = false
		case ir.OpInvoke, ir.OpInvokeStatic:
			n := in.Callee.Name
			switch {
			case queueNames[n]:
				s.queue = true
			case bindNames[n]:
				s.bind = true
			case flagNames[n]:
				s.flags = true
			case spawnNames[n]:
				s.spawn = true
			}
		}
	}
	if s.queue || s.bind || s.flags || s.spawn {
		s.quantumClean = false
	}
}

// conflicting reports whether two footprints share a field with a write
// on either side and overlapping receivers.
func conflicting(a, b *summary) bool {
	// Iterate the smaller footprint.
	if len(b.fields) < len(a.fields) {
		a, b = b, a
	}
	for ref, fa := range a.fields {
		fb, ok := b.fields[ref]
		if !ok {
			continue
		}
		if !fa.write && !fb.write {
			continue
		}
		if fa.static || fb.static || fa.anyObj || fb.anyObj {
			return true
		}
		for o := range fa.objs {
			if fb.objs[o] {
				return true
			}
		}
	}
	return false
}

// ForWarning returns the schedule pruner for one warning's validation
// search. Safe to call concurrently; the returned pruner is for use by
// a single goroutine.
func (c *Conflicts) ForWarning(w *uaf.Warning) *pruner {
	return &pruner{c: c, indep: make(map[string]bool)}
}

// pruner canonicalizes schedule prefixes into trace-equivalence normal
// forms for one warning's search. Single-goroutine use (the
// independence cache is unsynchronized); the shared Conflicts is
// read-only.
type pruner struct {
	c     *Conflicts
	indep map[string]bool
}

// execOf extracts the executor identity behind an option key. Every
// looper-side action (looper quantum, dispatch, event) maps to
// "looper"; background quanta map to their unique executor name.
func execOf(key string) string {
	switch {
	case key == "run:looper":
		return "looper"
	case strings.HasPrefix(key, "dispatch:"), strings.HasPrefix(key, "event:"):
		return "looper"
	case strings.HasPrefix(key, "run:"):
		return key[len("run:"):]
	}
	return ""
}

// selection reports whether the action is a looper-idle selection
// (event firing or queue dispatch) rather than a drain quantum.
func selection(key string) bool {
	return strings.HasPrefix(key, "event:") || strings.HasPrefix(key, "dispatch:")
}

// eventFlagEffect reports whether firing the event itself writes a
// world flag (interp.fireEvent mutates resumed/destroyed for these
// lifecycle events), independent of the callback body.
func eventFlagEffect(key string) bool {
	if !strings.HasPrefix(key, "event:") {
		return false
	}
	name := key[len("event:"):]
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name = name[i+1:]
	}
	switch name {
	case "lifecycle:onResume", "lifecycle:onPause", "lifecycle:onDestroy":
		return true
	}
	return false
}

// independent decides whether adjacent actions a and b commute (see the
// package comment for the argument). Symmetric. The boundary-barrier
// condition is the caller's (canonicalKey checks Forced counts).
func (p *pruner) independent(a, b interp.Choice) bool {
	ck := a.Key + "\x01" + a.Method + "\x02" + b.Key + "\x01" + b.Method
	if v, ok := p.indep[ck]; ok {
		return v
	}
	v := p.independentUncached(a, b)
	p.indep[ck] = v
	return v
}

func (p *pruner) independentUncached(a, b interp.Choice) bool {
	ea, eb := execOf(a.Key), execOf(b.Key)
	if ea == "" || eb == "" {
		return false
	}
	if selection(a.Key) && selection(b.Key) {
		// Atomic-selection pair: whole-callback commutation.
		sa, sb := p.c.byMethod[a.Method], p.c.byMethod[b.Method]
		if sa == nil || sb == nil || !sa.resolved || !sb.resolved {
			return false
		}
		if sa.spawn || sb.spawn {
			return false
		}
		// Implicit per-action effects: a dispatch pops the queue; some
		// lifecycle event firings write world flags.
		qa, qb := sa.queue || strings.HasPrefix(a.Key, "dispatch:"), sb.queue || strings.HasPrefix(b.Key, "dispatch:")
		fa, fb := sa.flags || eventFlagEffect(a.Key), sb.flags || eventFlagEffect(b.Key)
		if (qa && qb) || (sa.bind && sb.bind) || (fa && fb) {
			return false
		}
		return !conflicting(sa, sb)
	}
	// At least one drain quantum: only different executors commute, and
	// only under strict cleanliness.
	if ea == eb {
		return false
	}
	qa, oka := p.quantumSide(a)
	qb, okb := p.quantumSide(b)
	if !oka || !okb {
		return false
	}
	if qa != nil && qb != nil && conflicting(qa, qb) {
		return false
	}
	return true
}

// quantumSide resolves one side of a mixed or quantum pair. A selection
// adjacent to a quantum was a pure enqueue (the live background
// executor forces the drain through recorded points), so it has an
// empty footprint: nil summary with ok=true. Quanta need a strictly
// clean summary.
func (p *pruner) quantumSide(ch interp.Choice) (*summary, bool) {
	if selection(ch.Key) {
		if eventFlagEffect(ch.Key) {
			return nil, false
		}
		return nil, true
	}
	s := p.c.byMethod[ch.Method]
	if s == nil || !s.resolved || !s.quantumClean {
		return nil, false
	}
	return s, true
}

// canonicalKey renders the trace-equivalence normal form of an action
// prefix: independent out-of-order adjacent actions are bubbled into
// sorted order to a fixpoint, then the keys are joined. forced[i] is
// the hidden-action count on the boundary before acts[i]
// (ScheduleInfo.Forced): swaps never cross a non-zero boundary, and
// non-zero boundaries are rendered into the key (they are part of the
// class identity). Prefixes with equal normal forms drive the
// interpreter to equivalent states, so the DFS executes only the first
// one it sees.
func (p *pruner) canonicalKey(acts []interp.Choice, forced []int) string {
	if len(acts) > 1 {
		a := append([]interp.Choice(nil), acts...)
		for changed := true; changed; {
			changed = false
			for i := 0; i+1 < len(a); i++ {
				if a[i+1].Key >= a[i].Key {
					continue
				}
				if i+1 < len(forced) && forced[i+1] != 0 {
					continue
				}
				if p.independent(a[i], a[i+1]) {
					a[i], a[i+1] = a[i+1], a[i]
					changed = true
				}
			}
		}
		acts = a
	}
	var sb strings.Builder
	for i, ch := range acts {
		if i > 0 {
			sb.WriteByte(0)
		}
		if i < len(forced) && forced[i] != 0 {
			sb.WriteByte('#')
			sb.WriteString(strconv.Itoa(forced[i]))
			sb.WriteByte(0)
		}
		sb.WriteString(ch.Key)
	}
	return sb.String()
}

// Summaries reports how many entry methods have summaries and how many
// are fully resolved (candidates for atomic commutation) — surfaced by
// tests and benchmarks to sanity-check pruning power.
func (c *Conflicts) Summaries() (total, resolved int) {
	for _, s := range c.byMethod {
		total++
		if s.resolved {
			resolved++
		}
	}
	return total, resolved
}
