// Package explore systematically enumerates event orders and thread
// interleavings of an application under the interp runtime, searching
// for schedules that trigger a NullPointerException. It mechanizes the
// manual validation step of §7: a statically-reported UAF warning is
// confirmed harmful when some schedule dereferences the null loaded at
// the warning's use site.
//
// Exploration is stateless (re-execution from scratch per schedule) with
// a standard DFS over scheduler choice points, bounded by a schedule
// budget.
package explore

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"nadroid/internal/apk"
	"nadroid/internal/interp"
	"nadroid/internal/obs"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// Options bounds the search.
type Options struct {
	// MaxSchedules caps how many executions are attempted (default 4000).
	MaxSchedules int
	// Interp configures each execution.
	Interp interp.Options
	// BothBranchPolicies additionally explores with opaque branches
	// taken (doubling the budget's use).
	BothBranchPolicies bool
	// Workers bounds ValidateAll's fan-out across warnings
	// (0 = GOMAXPROCS, 1 = sequential). The confirmed subset and its
	// order are identical for any setting.
	Workers int
	// Conflicts, when set, enables partial-order reduction for warning
	// validation: schedule prefixes that only permute independent
	// actions collapse into one trace-equivalence class, and the DFS
	// executes a single representative per class. nil explores
	// exhaustively. Only ValidateWarning-family searches prune (they
	// know the warning's use site); FindNPE/FindNoSleep never do.
	Conflicts *Conflicts
}

func (o Options) withDefaults() Options {
	if o.MaxSchedules <= 0 {
		o.MaxSchedules = 4000
	}
	o.Interp.StopOnNPE = true
	return o
}

// Witness is a schedule that triggered a matching NPE.
type Witness struct {
	Schedule []int
	NPE      interp.NPE
	// OpaqueBranchesTaken records which branch policy produced it.
	OpaqueBranchesTaken bool
	// Executions is how many schedules were run before the hit.
	Executions int
}

func (w *Witness) String() string {
	return fmt.Sprintf("%v after %d executions (schedule %v)", w.NPE, w.Executions, w.Schedule)
}

// FindNPE searches for any schedule whose execution raises an NPE
// accepted by match (nil matches every NPE).
func FindNPE(pkg *apk.Package, opts Options, match func(interp.NPE) bool) (*Witness, bool) {
	w, ok, _ := FindNPEContext(context.Background(), pkg, opts, match)
	return w, ok
}

// FindNPEContext is FindNPE with cancellation: ctx is checked before
// every schedule execution, so a canceled or expired context stops the
// search mid-budget and reports ctx.Err(). A nil error with ok == false
// means the budget was exhausted without a witness.
func FindNPEContext(ctx context.Context, pkg *apk.Package, opts Options, match func(interp.NPE) bool) (*Witness, bool, error) {
	return findNPE(ctx, pkg, opts, match, nil)
}

// findNPE is the shared search core; pr enables partial-order reduction
// when non-nil (ValidateWarning-family callers only).
func findNPE(ctx context.Context, pkg *apk.Package, opts Options, match func(interp.NPE) bool, pr *pruner) (*Witness, bool, error) {
	opts = opts.withDefaults()
	if match == nil {
		match = func(interp.NPE) bool { return true }
	}
	budget := opts.MaxSchedules
	policies := []bool{false}
	if opts.BothBranchPolicies {
		policies = []bool{false, true}
	}
	executions := 0
	for _, takeOpaque := range policies {
		iopts := opts.Interp
		iopts.TakeOpaqueBranches = takeOpaque
		iopts.RecordChoices = pr != nil
		w, ok, err := dfs(ctx, pkg, iopts, budget/len(policies), &executions, match, takeOpaque, pr)
		if ok || err != nil {
			return w, ok, err
		}
	}
	return nil, false, nil
}

// dfs runs the schedule-tree exploration for one branch policy. With a
// nil pruner the dedup map is keyed by the literal choice-index prefix
// (exhaustive exploration); with a pruner it is keyed by the prefix's
// trace-equivalence normal form, so permutations of independent actions
// count as one node and only the first representative executes.
func dfs(ctx context.Context, pkg *apk.Package, iopts interp.Options, budget int, executions *int, match func(interp.NPE) bool, takeOpaque bool, pr *pruner) (wit *Witness, found bool, err error) {
	type item struct {
		schedule []int
		// acts is the action prefix behind schedule (pruner mode only):
		// the option chosen at each frozen choice point.
		acts []interp.Choice
	}
	stack := []item{{nil, nil}}
	seen := map[string]bool{"": true}
	// Counter deltas are accumulated locally and flushed once — a lock
	// per executed schedule would be measurable on big budgets.
	executed, pruned := 0, 0
	defer func() {
		obs.Add(ctx, "validation_schedules_executed", int64(executed))
		obs.Add(ctx, "validation_schedules_pruned", int64(pruned))
		if found {
			obs.Add(ctx, "explore_witnesses", 1)
		}
	}()
	for len(stack) > 0 && budget > 0 {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		budget--
		*executions++
		executed++

		_, span := obs.Start(ctx, "schedule", obs.KV("depth", len(it.schedule)))
		w := interp.NewWorld(pkg, iopts)
		info := interp.Run(w, it.schedule)
		span.End()
		for _, npe := range w.NPEs() {
			if match(npe) {
				return &Witness{
					Schedule:            append([]int(nil), it.schedule...),
					NPE:                 npe,
					OpaqueBranchesTaken: takeOpaque,
					Executions:          *executions,
				}, true, nil
			}
		}
		// The action actually taken at each choice point of this run,
		// for extending sibling prefixes in pruner mode.
		var chosen []interp.Choice
		if pr != nil {
			chosen = make([]interp.Choice, len(info.Choices))
			for j, row := range info.Choices {
				chosen[j] = row[info.Taken[j]]
			}
		}
		// Expand siblings at every choice point at or beyond the frozen
		// prefix (earlier points are owned by ancestors in the DFS tree).
		for i := len(it.schedule); i < len(info.Arity); i++ {
			for alt := 0; alt < info.Arity[i]; alt++ {
				if alt == info.Taken[i] {
					continue
				}
				next := make([]int, i+1)
				copy(next, info.Taken[:i])
				next[i] = alt
				var key string
				var acts []interp.Choice
				if pr != nil {
					acts = make([]interp.Choice, i+1)
					copy(acts, chosen[:i])
					acts[i] = info.Choices[i][alt]
					key = pr.canonicalKey(acts, info.Forced[:i+1])
				} else {
					key = fmt.Sprint(next)
				}
				if !seen[key] {
					seen[key] = true
					stack = append(stack, item{next, acts})
				} else {
					pruned++
				}
			}
		}
	}
	return nil, false, nil
}

// ValidateWarning searches for a schedule in which the value loaded at
// the warning's use site is null when dereferenced — the mechanical
// definition of "true harmful UAF". When model is non-nil the search is
// focused: only external events belonging to the warning's callback
// lineages (plus their components' lifecycle chains) may fire, which is
// the paper's §7 hint of starting exploration from the root entry
// callbacks.
func ValidateWarning(pkg *apk.Package, model *threadify.Model, w *uaf.Warning, opts Options) (*Witness, bool) {
	wit, ok, _ := ValidateWarningContext(context.Background(), pkg, model, w, opts)
	return wit, ok
}

// ValidateWarningContext is ValidateWarning with cancellation (see
// FindNPEContext for the error contract).
func ValidateWarningContext(ctx context.Context, pkg *apk.Package, model *threadify.Model, w *uaf.Warning, opts Options) (*Witness, bool, error) {
	if model != nil {
		opts.Interp.EventFilter = warningEventFilter(model, w)
		opts.Interp.SpawnFilter = warningSpawnFilter(model, w)
	}
	var pr *pruner
	if opts.Conflicts != nil {
		pr = opts.Conflicts.ForWarning(w)
	}
	return findNPE(ctx, pkg, opts, func(n interp.NPE) bool {
		return n.LoadedAt == w.Use
	}, pr)
}

// warningSpawnFilter allows only the background-thread classes on the
// warning's lineages to spawn.
func warningSpawnFilter(model *threadify.Model, w *uaf.Warning) func(class string) bool {
	classes := make(map[string]bool)
	addLineage := func(tid int) {
		for cur := tid; cur >= 0; cur = model.Threads[cur].Parent {
			t := model.Threads[cur]
			if t.Kind == threadify.KindNativeThread || t.Kind == threadify.KindTaskBody {
				cls, _, _ := splitRef(t.Entry.Method)
				classes[cls] = true
			}
		}
	}
	for _, p := range w.Pairs {
		addLineage(p.Use)
		addLineage(p.Free)
	}
	return func(class string) bool { return classes[class] }
}

// warningEventFilter allows the entry callbacks on the use/free thread
// lineages, their service-connection partners, and the full lifecycle
// chain of every involved component.
func warningEventFilter(model *threadify.Model, w *uaf.Warning) func(method, component, name string) bool {
	methods := make(map[string]bool)
	comps := make(map[string]bool)
	addLineage := func(tid int) {
		for cur := tid; cur >= 0; cur = model.Threads[cur].Parent {
			t := model.Threads[cur]
			if t.Kind != threadify.KindDummyMain {
				methods[t.Entry.Method] = true
			}
			if t.Component != "" {
				comps[t.Component] = true
			}
		}
	}
	for _, p := range w.Pairs {
		addLineage(p.Use)
		addLineage(p.Free)
	}
	// onServiceDisconnected is only enabled after its partner fires.
	for m := range methods {
		cls, name, ok := splitRef(m)
		if ok && name == "onServiceDisconnected" {
			methods[cls+".onServiceConnected"] = true
		}
	}
	return func(method, component, name string) bool {
		if methods[method] {
			return true
		}
		if comps[component] && (hasPrefix(name, "lifecycle:") || hasPrefix(name, "service:")) {
			return true
		}
		return false
	}
}

func splitRef(ref string) (string, string, bool) {
	for i := len(ref) - 1; i > 0; i-- {
		if ref[i] == '.' {
			return ref[:i], ref[i+1:], true
		}
	}
	return "", ref, false
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// ValidateAll classifies each warning, returning the confirmed-harmful
// subset (in input order). model focuses each warning's search; pass nil
// to explore unfocused.
func ValidateAll(pkg *apk.Package, model *threadify.Model, warnings []*uaf.Warning, opts Options) []*uaf.Warning {
	out, _ := ValidateAllContext(context.Background(), pkg, model, warnings, opts)
	return out
}

// ValidateAllContext is ValidateAll with cancellation: the per-warning
// schedule budget still applies, but ctx is additionally checked before
// every schedule execution, so an expired deadline stops the sweep
// mid-warning. On cancellation it returns the harmful subset confirmed
// so far along with ctx.Err().
//
// Warnings are validated concurrently by up to Options.Workers
// goroutines; each warning's search is independent, and results are
// assembled in input order, so the confirmed subset matches the
// sequential sweep exactly.
func ValidateAllContext(ctx context.Context, pkg *apk.Package, model *threadify.Model, warnings []*uaf.Warning, opts Options) ([]*uaf.Warning, error) {
	vs, err := ValidateAllDetailed(ctx, pkg, model, warnings, opts)
	var out []*uaf.Warning
	for _, v := range vs {
		if v.Harmful {
			out = append(out, v.Warning)
		}
	}
	return out, err
}

// Validation is one warning's dynamic-validation outcome: whether a
// harmful schedule was found, and the witness itself when one was —
// the exploration half of the warning's evidence record.
type Validation struct {
	Warning *uaf.Warning
	// Harmful reports whether some schedule dereferenced the null loaded
	// at the warning's use site.
	Harmful bool
	// Witness is the confirming schedule (nil unless Harmful).
	Witness *Witness
}

// ValidateAllDetailed is ValidateAllContext keeping the per-warning
// witnesses instead of discarding them. Results are in input order and
// cover every warning validated before cancellation.
func ValidateAllDetailed(ctx context.Context, pkg *apk.Package, model *threadify.Model, warnings []*uaf.Warning, opts Options) ([]Validation, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(warnings) {
		workers = len(warnings)
	}
	obs.Add(ctx, "explore_workers", int64(workers))

	type outcome struct {
		wit *Witness
		ok  bool
		err error
	}
	results := make([]outcome, len(warnings))
	validate := func(i int) {
		w := warnings[i]
		wctx, span := obs.Start(ctx, "validate",
			obs.KV("field", w.Field.String()), obs.KV("use", w.Use.String()), obs.KV("free", w.Free.String()))
		wit, ok, err := ValidateWarningContext(wctx, pkg, model, w, opts)
		span.SetAttr("harmful", ok)
		if wit != nil {
			span.SetAttr("executions", wit.Executions)
		}
		span.End()
		results[i] = outcome{wit, ok, err}
	}
	if workers <= 1 {
		for i := range warnings {
			validate(i)
			// Stop early like the sequential sweep always has: a failed
			// warning aborts the rest.
			if results[i].err != nil {
				break
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(warnings) {
						return
					}
					validate(i)
				}
			}()
		}
		wg.Wait()
	}

	var out []Validation
	for i, w := range warnings {
		r := results[i]
		if r.err != nil {
			return out, r.err
		}
		out = append(out, Validation{Warning: w, Harmful: r.ok, Witness: r.wit})
		if r.ok {
			obs.Logger(ctx).Info("warning validated harmful",
				"field", w.Field.String(), "use", w.Use.String(), "free", w.Free.String(),
				"executions", r.wit.Executions)
		}
	}
	return out, nil
}

// FindNoSleep searches for a schedule whose execution runs to quiescence
// with a wake lock still held — the dynamic witness of a §9 no-sleep
// energy bug. Schedules that merely hit the step bound do not count.
func FindNoSleep(pkg *apk.Package, opts Options) (*Witness, bool) {
	opts = opts.withDefaults()
	opts.Interp.StopOnNPE = false
	if opts.Interp.MaxSteps <= 0 {
		opts.Interp.MaxSteps = 100_000 // keep the quiescence check meaningful
	}
	budget := opts.MaxSchedules
	executions := 0
	type item struct{ schedule []int }
	stack := []item{{nil}}
	seen := map[string]bool{"": true}
	for len(stack) > 0 && budget > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		budget--
		executions++
		w := interp.NewWorld(pkg, opts.Interp)
		info := interp.Run(w, it.schedule)
		if w.HeldWakeLocks() > 0 && w.Done() && w.Steps() < opts.Interp.MaxSteps {
			return &Witness{Schedule: append([]int(nil), it.schedule...), Executions: executions}, true
		}
		for i := len(it.schedule); i < len(info.Arity); i++ {
			for alt := 0; alt < info.Arity[i]; alt++ {
				if alt == info.Taken[i] {
					continue
				}
				next := make([]int, i+1)
				copy(next, info.Taken[:i])
				next[i] = alt
				key := fmt.Sprint(next)
				if !seen[key] {
					seen[key] = true
					stack = append(stack, item{next})
				}
			}
		}
	}
	return nil, false
}

// Replay re-executes a witness schedule with tracing enabled and returns
// the event-level narrative (which callbacks fired in which order, where
// the exception struck) — the §7 aid in executable form. The schedule is
// only meaningful under the same scheduler option set it was found with,
// so Replay takes the same focusing inputs as ValidateWarning: pass the
// model and warning used to find the witness (nil model replays
// unfocused searches, e.g. FindNPE/FindNoSleep results).
func Replay(pkg *apk.Package, model *threadify.Model, w *uaf.Warning, wit *Witness, opts Options) []string {
	opts = opts.withDefaults()
	iopts := opts.Interp
	if model != nil && w != nil {
		iopts.EventFilter = warningEventFilter(model, w)
		iopts.SpawnFilter = warningSpawnFilter(model, w)
	}
	iopts.TakeOpaqueBranches = wit.OpaqueBranchesTaken
	iopts.Trace = true
	iopts.StopOnNPE = true
	world := interp.NewWorld(pkg, iopts)
	interp.Run(world, wit.Schedule)
	return world.Trace()
}
