package explore

import (
	"strings"
	"testing"

	"nadroid/internal/apk"
	"nadroid/internal/appbuilder"
	"nadroid/internal/framework"
	"nadroid/internal/interp"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

const (
	actCls = "x/A"
	valCls = "x/V"
)

// base returns an activity fixture with field f and a `use`-able value
// class.
func base() (*appbuilder.Builder, *appbuilder.ClassBuilder) {
	b := appbuilder.New("explore-fixture")
	act := b.Activity(actCls)
	act.Field("f", valCls)
	act.Field("view", framework.View)
	b.Class(valCls, framework.Object).Method("use", 0).Return()
	return b, act
}

func build(t *testing.T, b *appbuilder.Builder) *apk.Package {
	t.Helper()
	pkg, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return pkg
}

// connectBotApp reproduces Figure 1(a) dynamically: onStart binds a
// connection whose onServiceConnected allocates `f` and whose
// onServiceDisconnected frees it; onCreateContextMenu dereferences it.
func connectBotApp(t *testing.T) *apk.Package {
	b, act := base()
	conn := b.ServiceConn("x/Conn")
	conn.Field("outer", actCls)
	sc := conn.Method("onServiceConnected", 1)
	o := sc.GetThis("outer")
	v := sc.New(valCls)
	sc.PutField(o, actCls, "f", v)
	sc.Return()
	sd := conn.Method("onServiceDisconnected", 1)
	o2 := sd.GetThis("outer")
	sd.Free(o2, actCls, "f")
	sd.Return()
	oc := act.Method("onCreate", 1)
	oc.Return()
	os := act.Method("onStart", 0)
	cn := os.New("x/Conn")
	os.PutField(cn, "x/Conn", "outer", os.This())
	os.InvokeVoid(os.This(), actCls, "bindService", cn)
	os.Return()
	menu := act.Method("onCreateContextMenu", 1)
	f := menu.GetThis("f")
	menu.Use(f, valCls)
	menu.Return()
	return build(t, b)
}

func TestDefaultScheduleRunsLifecycle(t *testing.T) {
	b, act := base()
	oc := act.Method("onCreate", 1)
	nv := oc.New(valCls)
	oc.PutThis("f", nv)
	oc.Return()
	pkg := build(t, b)
	w := interp.NewWorld(pkg, interp.Options{Trace: true})
	interp.Run(w, nil)
	if len(w.NPEs()) != 0 {
		t.Fatalf("safe app raised NPE: %v", w.NPEs())
	}
	joined := strings.Join(w.Trace(), "\n")
	if !strings.Contains(joined, "lifecycle:onCreate") {
		t.Errorf("trace missing onCreate:\n%s", joined)
	}
}

func TestExplorerFindsConnectBotUAF(t *testing.T) {
	pkg := connectBotApp(t)
	wit, ok := FindNPE(pkg, Options{MaxSchedules: 2000}, nil)
	if !ok {
		t.Fatal("explorer must find the Figure 1(a) NPE")
	}
	if !strings.Contains(wit.NPE.LoadedAt.Method, "onCreateContextMenu") {
		t.Errorf("NPE loaded at %v, want onCreateContextMenu", wit.NPE.LoadedAt)
	}
	if wit.NPE.Field.Name != "f" {
		t.Errorf("NPE field = %v, want f", wit.NPE.Field)
	}
}

func TestValidateWarningConfirmsStaticReport(t *testing.T) {
	pkg := connectBotApp(t)
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := uaf.Detect(m)
	var target *uaf.Warning
	for _, w := range d.Warnings {
		if strings.Contains(w.Use.Method, "onCreateContextMenu") &&
			strings.Contains(w.Free.Method, "onServiceDisconnected") {
			target = w
		}
	}
	if target == nil {
		t.Fatal("static stage missed the warning")
	}
	if _, ok := ValidateWarning(pkg, m, target, Options{MaxSchedules: 2000}); !ok {
		t.Error("dynamic validation must confirm the warning as harmful")
	}
}

// A properly if-guarded use between two looper callbacks can never NPE:
// callbacks are atomic on the looper.
func TestGuardedLooperCallbacksAreSafe(t *testing.T) {
	b, act := base()
	l1 := b.Class("x/L1", framework.Object, framework.OnClickListener)
	l1.Field("outer", actCls)
	c1 := l1.Method("onClick", 1)
	o := c1.GetThis("outer")
	chk := c1.GetField(o, actCls, "f")
	c1.IfNull(chk, "skip")
	f := c1.GetField(o, actCls, "f")
	c1.Use(f, valCls)
	c1.Label("skip")
	c1.Return()
	l2 := b.Class("x/L2", framework.Object, framework.OnClickListener)
	l2.Field("outer", actCls)
	c2 := l2.Method("onClick", 1)
	o2 := c2.GetThis("outer")
	c2.Free(o2, actCls, "f")
	c2.Return()
	oc := act.Method("onCreate", 1)
	v := oc.GetThis("view")
	_ = v
	view := oc.New(framework.View)
	oc.PutThis("view", view)
	for _, cls := range []string{"x/L1", "x/L2"} {
		l := oc.New(cls)
		oc.PutField(l, cls, "outer", oc.This())
		oc.InvokeVoid(view, framework.View, "setOnClickListener", l)
	}
	oc.Return()
	pkg := build(t, b)
	if wit, ok := FindNPE(pkg, Options{MaxSchedules: 3000}, nil); ok {
		t.Fatalf("guarded looper callbacks must be safe, got %v", wit)
	}
}

// The same guard is NOT safe against a background thread: Figure 1(c).
func TestGuardUnsafeAgainstBackgroundThread(t *testing.T) {
	b, act := base()
	l1 := b.Class("x/L1", framework.Object, framework.OnClickListener)
	l1.Field("outer", actCls)
	c1 := l1.Method("onClick", 1)
	o := c1.GetThis("outer")
	chk := c1.GetField(o, actCls, "f")
	c1.IfNull(chk, "skip")
	f := c1.GetField(o, actCls, "f")
	c1.Use(f, valCls)
	c1.Label("skip")
	c1.Return()
	w := b.ThreadClass("x/W")
	w.Field("outer", actCls)
	run := w.Method("run", 0)
	wo := run.GetThis("outer")
	run.Free(wo, actCls, "f")
	run.Return()
	oc := act.Method("onCreate", 1)
	nv := oc.New(valCls)
	oc.PutThis("f", nv)
	view := oc.New(framework.View)
	oc.PutThis("view", view)
	l := oc.New("x/L1")
	oc.PutField(l, "x/L1", "outer", oc.This())
	oc.InvokeVoid(view, framework.View, "setOnClickListener", l)
	th := oc.New("x/W")
	oc.PutField(th, "x/W", "outer", oc.This())
	oc.InvokeVoid(th, "x/W", "start")
	oc.Return()
	pkg := build(t, b)
	wit, ok := FindNPE(pkg, Options{MaxSchedules: 4000}, nil)
	if !ok {
		t.Fatal("check-then-use vs background free must be explorable to an NPE")
	}
	if !strings.Contains(wit.NPE.At.Method, "onClick") {
		t.Errorf("NPE at %v, want inside onClick", wit.NPE.At)
	}
}

// finish() stops UI events: a free-then-finish canceller makes the
// post-finish use unreachable.
func TestFinishPreventsLaterUICallbacks(t *testing.T) {
	b, act := base()
	l1 := b.Class("x/L1", framework.Object, framework.OnClickListener)
	l1.Field("outer", actCls)
	c1 := l1.Method("onClick", 1)
	o := c1.GetThis("outer")
	c1.Free(o, actCls, "f")
	c1.InvokeVoid(o, actCls, "finish")
	c1.Return()
	l2 := b.Class("x/L2", framework.Object, framework.OnClickListener)
	l2.Field("outer", actCls)
	c2 := l2.Method("onClick", 1)
	o2 := c2.GetThis("outer")
	f := c2.GetField(o2, actCls, "f")
	c2.Use(f, valCls)
	c2.Return()
	oc := act.Method("onCreate", 1)
	nv := oc.New(valCls)
	oc.PutThis("f", nv)
	view := oc.New(framework.View)
	oc.PutThis("view", view)
	for _, cls := range []string{"x/L1", "x/L2"} {
		l := oc.New(cls)
		oc.PutField(l, cls, "outer", oc.This())
		oc.InvokeVoid(view, framework.View, "setOnClickListener", l)
	}
	oc.Return()
	pkg := build(t, b)
	if wit, ok := FindNPE(pkg, Options{MaxSchedules: 4000}, nil); ok {
		t.Fatalf("finish() must prevent the post-free use, got %v", wit)
	}
}

// PHB's unsoundness: a SECOND click can interleave after the posted free.
func TestSecondClickExposesPostedFree(t *testing.T) {
	b, act := base()
	act.Field("handler", "x/H")
	h := b.HandlerClass("x/H")
	h.Field("outer", actCls)
	hm := h.Method("handleMessage", 1)
	ho := hm.GetThis("outer")
	hm.Free(ho, actCls, "f")
	hm.Return()
	l1 := b.Class("x/L1", framework.Object, framework.OnClickListener)
	l1.Field("outer", actCls)
	c1 := l1.Method("onClick", 1)
	o := c1.GetThis("outer")
	hh := c1.GetField(o, actCls, "handler")
	msg := c1.New(framework.Message)
	c1.InvokeVoid(hh, "x/H", "sendMessage", msg)
	f := c1.GetField(o, actCls, "f")
	c1.Use(f, valCls)
	c1.Return()
	oc := act.Method("onCreate", 1)
	nv := oc.New(valCls)
	oc.PutThis("f", nv)
	hr := oc.New("x/H")
	oc.PutField(hr, "x/H", "outer", oc.This())
	oc.PutThis("handler", hr)
	view := oc.New(framework.View)
	oc.PutThis("view", view)
	l := oc.New("x/L1")
	oc.PutField(l, "x/L1", "outer", oc.This())
	oc.InvokeVoid(view, framework.View, "setOnClickListener", l)
	oc.Return()
	pkg := build(t, b)
	// One click: safe (PHB reasoning holds).
	if wit, ok := FindNPE(pkg, Options{MaxSchedules: 3000, Interp: interp.Options{MaxUIFires: 1}}, nil); ok {
		t.Fatalf("single click must be safe, got %v", wit)
	}
	// Two clicks: the second click's use can follow the first's posted free.
	if _, ok := FindNPE(pkg, Options{MaxSchedules: 6000, Interp: interp.Options{MaxUIFires: 2}}, nil); !ok {
		t.Fatal("double click must expose the posted free (PHB unsoundness)")
	}
}

// Monitor locks exclude the interleaving: guarded use and free both under
// the same lock never NPE.
func TestLocksPreventInterleaving(t *testing.T) {
	b, act := base()
	act.Field("lock", valCls)
	l1 := b.Class("x/L1", framework.Object, framework.OnClickListener)
	l1.Field("outer", actCls)
	c1 := l1.Method("onClick", 1)
	o := c1.GetThis("outer")
	lk := c1.GetField(o, actCls, "lock")
	c1.Lock(lk)
	chk := c1.GetField(o, actCls, "f")
	c1.IfNull(chk, "skip")
	f := c1.GetField(o, actCls, "f")
	c1.Use(f, valCls)
	c1.Label("skip")
	c1.Unlock(lk)
	c1.Return()
	w := b.ThreadClass("x/W")
	w.Field("outer", actCls)
	run := w.Method("run", 0)
	wo := run.GetThis("outer")
	lk2 := run.GetField(wo, actCls, "lock")
	run.Lock(lk2)
	run.Free(wo, actCls, "f")
	run.Unlock(lk2)
	run.Return()
	oc := act.Method("onCreate", 1)
	lv := oc.New(valCls)
	oc.PutThis("lock", lv)
	nv := oc.New(valCls)
	oc.PutThis("f", nv)
	view := oc.New(framework.View)
	oc.PutThis("view", view)
	l := oc.New("x/L1")
	oc.PutField(l, "x/L1", "outer", oc.This())
	oc.InvokeVoid(view, framework.View, "setOnClickListener", l)
	th := oc.New("x/W")
	oc.PutField(th, "x/W", "outer", oc.This())
	oc.InvokeVoid(th, "x/W", "start")
	oc.Return()
	pkg := build(t, b)
	if wit, ok := FindNPE(pkg, Options{MaxSchedules: 4000}, nil); ok {
		t.Fatalf("lock-protected check-then-use must be safe, got %v", wit)
	}
}

// Determinism: running the same schedule twice yields identical NPEs —
// required for witness replay to be meaningful.
func TestRunDeterministic(t *testing.T) {
	pkg := connectBotApp(t)
	for _, schedule := range [][]int{nil, {1}, {2, 1}, {0, 3, 1}} {
		w1 := interp.NewWorld(pkg, interp.Options{})
		interp.Run(w1, schedule)
		w2 := interp.NewWorld(pkg, interp.Options{})
		interp.Run(w2, schedule)
		if len(w1.NPEs()) != len(w2.NPEs()) {
			t.Fatalf("schedule %v: NPE counts differ: %d vs %d", schedule, len(w1.NPEs()), len(w2.NPEs()))
		}
		for i := range w1.NPEs() {
			if w1.NPEs()[i].At != w2.NPEs()[i].At {
				t.Errorf("schedule %v: NPE %d differs: %v vs %v", schedule, i, w1.NPEs()[i], w2.NPEs()[i])
			}
		}
		if w1.Steps() != w2.Steps() {
			t.Errorf("schedule %v: steps differ: %d vs %d", schedule, w1.Steps(), w2.Steps())
		}
	}
}

// A witness found by ValidateWarning must reproduce under Replay (the
// narrative must end in the same NPE).
func TestWitnessReplayReproduces(t *testing.T) {
	pkg := connectBotApp(t)
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := uaf.Detect(m)
	for _, w := range d.Warnings {
		if !strings.Contains(w.Use.Method, "onCreateContextMenu") {
			continue
		}
		wit, ok := ValidateWarning(pkg, m, w, Options{MaxSchedules: 2000})
		if !ok {
			t.Fatal("no witness")
		}
		lines := Replay(pkg, m, w, wit, Options{})
		joined := strings.Join(lines, "\n")
		if !strings.Contains(joined, "NPE") {
			t.Errorf("replay narrative missing the NPE:\n%s", joined)
		}
		return
	}
	t.Fatal("target warning not found")
}
