// Package buildinfo surfaces what build of nadroid is running: the
// module version and VCS revision baked in by the Go linker, the Go
// toolchain version, and the analysis defaults callers most often need
// to know when comparing results across deployments. /healthz and the
// nadroid_build_info metric line are fed from here.
package buildinfo

import (
	"runtime"
	"runtime/debug"
)

// DefaultK is the points-to object-sensitivity depth used when a caller
// does not set one — the paper's k=2 setting (§5). Exposed in build
// info because two deployments with different defaults produce
// different warning counts for the same request.
const DefaultK = 2

// Info describes the running build.
type Info struct {
	// Version is the main module version ("(devel)" for local builds).
	Version string `json:"version"`
	// Revision is the VCS commit, when stamped by the toolchain.
	Revision string `json:"revision,omitempty"`
	// GoVersion is the toolchain that compiled the binary.
	GoVersion string `json:"go_version"`
	// DefaultK is the analysis's default object-sensitivity depth.
	DefaultK int `json:"k_default"`
}

// Get reads the build metadata once per call (ReadBuildInfo is cheap:
// the data is baked into the binary).
func Get() Info {
	info := Info{Version: "(devel)", GoVersion: runtime.Version(), DefaultK: DefaultK}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			info.Revision = s.Value
		}
	}
	return info
}
