package store

import (
	"strings"
	"testing"
	"time"
)

func warnFP(fps ...string) []Warning {
	var out []Warning
	for _, fp := range fps {
		out = append(out, Warning{Fingerprint: fp, Field: "A.f"})
	}
	return out
}

func fps(ws []Warning) []string {
	out := make([]string, 0, len(ws))
	for _, w := range ws {
		out = append(out, w.Fingerprint)
	}
	return out
}

func eq(a []string, b ...string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestComputeDiffClassification(t *testing.T) {
	from := &Run{ID: "f", App: "App", Warnings: warnFP("aa", "bb", "cc")}
	to := &Run{ID: "t", App: "App", Warnings: warnFP("bb", "cc", "dd")}

	d := ComputeDiff(from, to, nil)
	if !eq(fps(d.New), "dd") || !eq(fps(d.Fixed), "aa") || !eq(fps(d.Persisting), "bb", "cc") {
		t.Errorf("diff = new %v fixed %v persisting %v", fps(d.New), fps(d.Fixed), fps(d.Persisting))
	}
	if len(d.Suppressed) != 0 || d.BaselineApplied {
		t.Error("no baseline: nothing may be suppressed")
	}
	if nw, fx, p, sup := d.Counts(); nw != 1 || fx != 1 || p != 2 || sup != 0 {
		t.Errorf("Counts = %d %d %d %d", nw, fx, p, sup)
	}
}

func TestComputeDiffBaseline(t *testing.T) {
	from := &Run{ID: "f", App: "App", Warnings: warnFP("aa", "bb")}
	to := &Run{ID: "t", App: "App", Warnings: warnFP("bb", "dd", "ee")}
	base := &Baseline{App: "App", Entries: []BaselineEntry{
		{Fingerprint: "bb", Note: "benign"}, // persisting -> suppressed
		{Fingerprint: "dd", Note: "benign"}, // would-be new -> suppressed
		{Fingerprint: "aa", Note: "stale"},  // gone -> still reports fixed
	}}
	d := ComputeDiff(from, to, base)
	if !d.BaselineApplied {
		t.Error("BaselineApplied not set")
	}
	if !eq(fps(d.New), "ee") || !eq(fps(d.Persisting)) || !eq(fps(d.Suppressed), "bb", "dd") {
		t.Errorf("diff = new %v persisting %v suppressed %v", fps(d.New), fps(d.Persisting), fps(d.Suppressed))
	}
	// A baselined warning that disappeared reports as fixed so the
	// reviewer can prune the stale entry.
	if !eq(fps(d.Fixed), "aa") {
		t.Errorf("fixed = %v, want [aa]", fps(d.Fixed))
	}
}

func TestComputeDiffDuplicateFingerprints(t *testing.T) {
	from := &Run{ID: "f", App: "App", Warnings: warnFP("aa", "aa")}
	to := &Run{ID: "t", App: "App", Warnings: warnFP("aa", "aa", "bb", "bb")}
	d := ComputeDiff(from, to, nil)
	if !eq(fps(d.New), "bb") || !eq(fps(d.Persisting), "aa") || len(d.Fixed) != 0 {
		t.Errorf("dup collapse failed: new %v persisting %v fixed %v", fps(d.New), fps(d.Persisting), fps(d.Fixed))
	}
}

func TestStoreDiffDefaultsAndErrors(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	r0 := testRun("App", "r0", base, "aa")
	r1 := testRun("App", "r1", base.Add(time.Hour), "aa", "bb")
	r2 := testRun("App", "r2", base.Add(2*time.Hour), "bb", "cc")
	other := testRun("Other", "ox", base, "zz")
	for _, r := range []*Run{r0, r1, r2, other} {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}

	// Defaults: previous vs latest.
	d, err := s.Diff("App", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if d.From != "r1" || d.To != "r2" {
		t.Errorf("default diff = %s..%s, want r1..r2", d.From, d.To)
	}
	if !eq(fps(d.New), "cc") || !eq(fps(d.Fixed), "aa") || !eq(fps(d.Persisting), "bb") {
		t.Errorf("default diff buckets wrong: %+v", d)
	}

	// Explicit IDs, any two runs.
	d, err = s.Diff("App", "r0", "r2")
	if err != nil {
		t.Fatal(err)
	}
	if !eq(fps(d.Fixed), "aa") || !eq(fps(d.New), "bb", "cc") {
		t.Errorf("r0..r2 = %+v", d)
	}

	// The store's baseline applies automatically.
	if err := s.PutBaseline(&Baseline{App: "App", RunID: "r1",
		Entries: []BaselineEntry{{Fingerprint: "cc", Note: "benign"}}}); err != nil {
		t.Fatal(err)
	}
	d, err = s.Diff("App", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if !eq(fps(d.New)) || !eq(fps(d.Suppressed), "cc") {
		t.Errorf("baseline-aware diff = new %v suppressed %v", fps(d.New), fps(d.Suppressed))
	}

	for _, tc := range []struct{ app, from, to string }{
		{"App", "r0", "nope"}, // unknown to
		{"App", "nope", "r2"}, // unknown from
		{"App", "ox", "r2"},   // run from another app
		{"Other", "", ""},     // only one run: no default pair
		{"Absent", "", ""},    // no runs at all
	} {
		if _, err := s.Diff(tc.app, tc.from, tc.to); err == nil {
			t.Errorf("Diff(%q,%q,%q): expected error", tc.app, tc.from, tc.to)
		}
	}
}

// TestDiffRefusesMismatchedDetectorSets: comparing a run produced with a
// reduced detector set against a full-set run would report every
// disabled family's warnings as fixed — a phantom delta the store must
// refuse to compute. Legacy runs without detector metadata stay
// comparable against anything.
func TestDiffRefusesMismatchedDetectorSets(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 2, 0, 0, 0, 0, time.UTC)
	full := testRun("App", "full", base, "aa")
	full.Detectors = []string{"uaf", "nosleep", "leaked-thread", "lost-result"}
	reduced := testRun("App", "reduced", base.Add(time.Hour), "aa", "bb")
	reduced.Detectors = []string{"uaf"}
	legacy := testRun("App", "legacy", base.Add(2*time.Hour), "bb")
	sameReordered := testRun("App", "same", base.Add(3*time.Hour), "aa")
	sameReordered.Detectors = []string{"lost-result", "uaf", "leaked-thread", "nosleep"}
	for _, r := range []*Run{full, reduced, legacy, sameReordered} {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := s.Diff("App", "full", "reduced"); err == nil {
		t.Error("diffing full-set vs reduced-set runs must fail")
	} else if !strings.Contains(err.Error(), "detector") {
		t.Errorf("mismatch error %q should mention detector sets", err)
	}
	// Same set, different order: comparable.
	if _, err := s.Diff("App", "full", "same"); err != nil {
		t.Errorf("order-insensitive set comparison failed: %v", err)
	}
	// Legacy runs (no recorded detectors) diff against anything.
	if _, err := s.Diff("App", "reduced", "legacy"); err != nil {
		t.Errorf("legacy run should be comparable: %v", err)
	}
	if _, err := s.Diff("App", "legacy", "full"); err != nil {
		t.Errorf("legacy run should be comparable: %v", err)
	}
}
