// diff.go: the differential engine. Given two stored runs of the same
// app, warnings are matched by stable fingerprint and classified as
// new (in `to` only), fixed (in `from` only), or persisting (both). A
// baseline suppresses reviewed warnings out of new/persisting — a
// production pipeline re-analyzing every commit acts on the delta, not
// the full list. A baselined warning that disappears still reports as
// fixed, flagging the stale baseline entry for cleanup.
package store

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Diff is the classified delta between two runs.
type Diff struct {
	App string `json:"app"`
	// From/To identify the compared runs.
	From        string    `json:"from"`
	To          string    `json:"to"`
	FromCreated time.Time `json:"from_created,omitempty"`
	ToCreated   time.Time `json:"to_created,omitempty"`
	// BaselineApplied is true when a baseline filtered the delta.
	BaselineApplied bool `json:"baseline_applied,omitempty"`

	New        []Warning `json:"new"`
	Fixed      []Warning `json:"fixed"`
	Persisting []Warning `json:"persisting"`
	// Suppressed lists warnings present in `to` whose fingerprints the
	// baseline covers.
	Suppressed []Warning `json:"suppressed,omitempty"`
}

// Counts summarizes the delta sizes (new, fixed, persisting,
// suppressed).
func (d *Diff) Counts() (nw, fixed, persisting, suppressed int) {
	return len(d.New), len(d.Fixed), len(d.Persisting), len(d.Suppressed)
}

// ComputeDiff classifies `to`'s warnings against `from`'s by
// fingerprint, applying an optional baseline. Order within each bucket
// follows the source run's report order (most suspicious first);
// duplicate fingerprints within one run collapse to their first
// occurrence.
func ComputeDiff(from, to *Run, base *Baseline) *Diff {
	d := &Diff{
		App: to.App, From: from.ID, To: to.ID,
		FromCreated: from.CreatedAt, ToCreated: to.CreatedAt,
		BaselineApplied: base != nil,
		New:             []Warning{}, Fixed: []Warning{}, Persisting: []Warning{},
	}
	inFrom := make(map[string]bool, len(from.Warnings))
	for _, w := range from.Warnings {
		inFrom[w.Fingerprint] = true
	}
	seenTo := make(map[string]bool, len(to.Warnings))
	for _, w := range to.Warnings {
		if seenTo[w.Fingerprint] {
			continue
		}
		seenTo[w.Fingerprint] = true
		switch {
		case base.Has(w.Fingerprint):
			d.Suppressed = append(d.Suppressed, w)
		case inFrom[w.Fingerprint]:
			d.Persisting = append(d.Persisting, w)
		default:
			d.New = append(d.New, w)
		}
	}
	seenFrom := make(map[string]bool, len(from.Warnings))
	for _, w := range from.Warnings {
		if seenFrom[w.Fingerprint] || seenTo[w.Fingerprint] {
			continue
		}
		seenFrom[w.Fingerprint] = true
		d.Fixed = append(d.Fixed, w)
	}
	return d
}

// Diff resolves two of an app's stored runs and computes their delta,
// applying the store's baseline for the app when one exists. Empty IDs
// default to the two most recent runs (from = previous, to = latest).
func (s *Store) Diff(app, fromID, toID string) (*Diff, error) {
	runs := s.Runs(app)
	resolve := func(id, role string, fallback int) (*Run, error) {
		if id == "" {
			if fallback >= len(runs) {
				return nil, fmt.Errorf("store: app %q has %d run(s); need %d for a default %s",
					app, len(runs), fallback+1, role)
			}
			return runs[fallback], nil
		}
		r, ok := s.Get(id)
		if !ok {
			return nil, fmt.Errorf("store: unknown run %q", id)
		}
		if r.App != app {
			return nil, fmt.Errorf("store: run %q belongs to app %q, not %q", id, r.App, app)
		}
		return r, nil
	}
	to, err := resolve(toID, "to", 0)
	if err != nil {
		return nil, err
	}
	from, err := resolve(fromID, "from", 1)
	if err != nil {
		return nil, err
	}
	if err := CheckComparable(from, to); err != nil {
		return nil, err
	}
	base, _ := s.Baseline(app)
	return ComputeDiff(from, to, base), nil
}

// CheckComparable refuses to diff runs produced by different detector
// sets: a disabled detector's warnings would otherwise all read as
// "fixed" (and re-enabling them as "new") — phantom deltas, not code
// changes. Runs persisted before detector metadata existed (no
// Detectors recorded) are accepted against anything.
func CheckComparable(from, to *Run) error {
	if len(from.Detectors) == 0 || len(to.Detectors) == 0 {
		return nil
	}
	f := canonDetectors(from.Detectors)
	t := canonDetectors(to.Detectors)
	if f != t {
		return fmt.Errorf("store: runs were produced with different detector sets (%s vs %s); re-run with matching -detectors to diff them",
			f, t)
	}
	return nil
}

// canonDetectors renders a detector set order-insensitively.
func canonDetectors(names []string) string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return strings.Join(out, ",")
}
