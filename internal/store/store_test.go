package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testRun(app, id string, created time.Time, fps ...string) *Run {
	r := &Run{ID: id, App: app, CreatedAt: created, Options: "k=2"}
	for _, fp := range fps {
		r.Warnings = append(r.Warnings, Warning{
			Fingerprint: fp, Field: app + "/Act.f", Use: "u:1", Free: "f:2", Category: "EC-PC",
		})
	}
	r.Stats = Stats{Potential: len(fps), AfterSound: len(fps), AfterUnsound: len(fps)}
	return r
}

func TestPutGetRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC().Truncate(time.Second)
	r := testRun("App", RunID("program text", "k=2"), now, "aa11", "bb22")
	r.Payload = []byte(`{"app":"App"}`)
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}

	got, ok := s.Get(r.ID)
	if !ok {
		t.Fatal("run missing after Put")
	}
	if got.App != "App" || len(got.Warnings) != 2 || !got.CreatedAt.Equal(now) {
		t.Errorf("roundtrip mismatch: %+v", got)
	}

	// A second handle on the same directory sees the run from disk.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got2, ok := s2.Get(r.ID)
	if !ok {
		t.Fatal("second handle: run missing")
	}
	var payload struct {
		App string `json:"app"`
	}
	if err := json.Unmarshal(got2.Payload, &payload); err != nil || payload.App != "App" {
		t.Fatalf("second handle payload = %s (err %v)", got2.Payload, err)
	}
	if c := s2.Counters(); c.Hits != 1 || c.Misses != 0 {
		t.Errorf("counters = %+v, want 1 hit", c)
	}
	if _, ok := s2.Get("0000"); ok {
		t.Error("unknown id must miss")
	}
	if c := s2.Counters(); c.Misses != 1 {
		t.Errorf("counters = %+v, want 1 miss", c)
	}
}

// TestCorruptEntriesSkipped: truncated or garbage entries are skipped
// with a logged warning and counted; valid entries still load; nothing
// crashes.
func TestCorruptEntriesSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := testRun("App", "a1b2", time.Now(), "aa11")
	if err := s.Put(good); err != nil {
		t.Fatal(err)
	}
	// A truncated write (as if the process died mid-write without the
	// atomic rename), pure garbage, and a record missing its app.
	for name, content := range map[string]string{
		"truncated.json": `{"id": "truncated", "app": "App", "warni`,
		"garbage.json":   "\x00\x01not json at all",
		"noapp.json":     `{"id": "noapp"}`,
	} {
		if err := os.WriteFile(filepath.Join(dir, "runs", name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	logged := slog.New(slog.NewTextHandler(&buf, nil))
	s2, err := Open(dir, Options{Logger: logged})
	if err != nil {
		t.Fatalf("Open over corrupt entries must not fail: %v", err)
	}
	if s2.Len() != 1 {
		t.Errorf("Len = %d, want 1 (only the valid run)", s2.Len())
	}
	if _, ok := s2.Get("a1b2"); !ok {
		t.Error("valid run lost among corrupt neighbors")
	}
	if c := s2.Counters(); c.LoadErrors != 3 {
		t.Errorf("LoadErrors = %d, want 3", c.LoadErrors)
	}
	if !strings.Contains(buf.String(), "skipping corrupt run entry") {
		t.Errorf("corrupt skip not logged:\n%s", buf.String())
	}

	// Rescans must not double-count the same bad files.
	s2.Runs("App")
	if c := s2.Counters(); c.LoadErrors != 3 {
		t.Errorf("LoadErrors after rescan = %d, want 3 (no re-count)", c.LoadErrors)
	}
}

// TestConcurrentWriters: many goroutines over two independent handles
// on one directory — the shape of two corpus sweeps persisting results
// concurrently. Run under -race via `make check`.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const perHandle = 20
	var wg sync.WaitGroup
	for h, s := range []*Store{s1, s2} {
		for i := 0; i < perHandle; i++ {
			wg.Add(1)
			go func(s *Store, h, i int) {
				defer wg.Done()
				r := testRun(fmt.Sprintf("App%d", i%4), fmt.Sprintf("h%d-run%02d", h, i), time.Now(), "aa11")
				if err := s.Put(r); err != nil {
					t.Errorf("Put: %v", err)
				}
				s.Get(r.ID)
				s.Runs(r.App)
			}(s, h, i)
		}
	}
	wg.Wait()

	fresh, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 2*perHandle {
		t.Errorf("after concurrent writes: %d runs, want %d", fresh.Len(), 2*perHandle)
	}
	if got := len(fresh.Apps()); got != 4 {
		t.Errorf("apps = %d, want 4", got)
	}
}

func TestRunsOrderedNewestFirst(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		if err := s.Put(testRun("App", fmt.Sprintf("r%d", i), base.Add(time.Duration(i)*time.Hour))); err != nil {
			t.Fatal(err)
		}
	}
	runs := s.Runs("App")
	if len(runs) != 3 || runs[0].ID != "r2" || runs[2].ID != "r0" {
		ids := make([]string, len(runs))
		for i, r := range runs {
			ids[i] = r.ID
		}
		t.Errorf("order = %v, want [r2 r1 r0]", ids)
	}
	if runs := s.Runs("Other"); len(runs) != 0 {
		t.Errorf("unknown app has %d runs", len(runs))
	}
}

// TestGC covers the count bound, the age bound, and the invariant that
// a baseline's reference run is never collected.
func TestGC(t *testing.T) {
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	t.Run("count bound keeps newest", func(t *testing.T) {
		s, _ := Open(t.TempDir(), Options{MaxRunsPerApp: 2})
		for i := 0; i < 5; i++ {
			s.Put(testRun("App", fmt.Sprintf("r%d", i), now.Add(time.Duration(i)*time.Minute)))
		}
		if removed := s.GC(now.Add(time.Hour)); removed != 3 {
			t.Errorf("removed = %d, want 3", removed)
		}
		runs := s.Runs("App")
		if len(runs) != 2 || runs[0].ID != "r4" || runs[1].ID != "r3" {
			t.Errorf("survivors wrong: %+v", runs)
		}
		if c := s.Counters(); c.GCRemoved != 3 {
			t.Errorf("GCRemoved = %d, want 3", c.GCRemoved)
		}
	})
	t.Run("age bound", func(t *testing.T) {
		s, _ := Open(t.TempDir(), Options{MaxAge: 24 * time.Hour})
		s.Put(testRun("App", "old", now.Add(-48*time.Hour)))
		s.Put(testRun("App", "fresh", now.Add(-time.Hour)))
		if removed := s.GC(now); removed != 1 {
			t.Errorf("removed = %d, want 1", removed)
		}
		if _, ok := s.Get("fresh"); !ok {
			t.Error("fresh run collected")
		}
		if _, ok := s.Get("old"); ok {
			t.Error("expired run survived")
		}
	})
	t.Run("baseline reference is never collected", func(t *testing.T) {
		s, _ := Open(t.TempDir(), Options{MaxRunsPerApp: 1, MaxAge: time.Hour})
		reviewed := testRun("App", "reviewed", now.Add(-72*time.Hour), "aa11")
		s.Put(reviewed)
		s.Put(testRun("App", "latest", now))
		if err := s.PutBaseline(BaselineFromRun(reviewed, "reviewed 2026-08", now)); err != nil {
			t.Fatal(err)
		}
		s.GC(now)
		if _, ok := s.Get("reviewed"); !ok {
			t.Fatal("GC deleted a run referenced by a baseline")
		}
		if _, ok := s.Get("latest"); !ok {
			t.Fatal("GC deleted the newest run")
		}
		// Disk agrees with the index after GC.
		fresh, _ := Open(s.Dir(), Options{})
		if fresh.Len() != 2 {
			t.Errorf("on disk: %d runs, want 2", fresh.Len())
		}
	})
}

func TestBaselineRoundtripAndSafeNames(t *testing.T) {
	s, _ := Open(t.TempDir(), Options{})
	now := time.Now().UTC().Truncate(time.Second)
	for _, app := range []string{"Plain", "weird/name with spaces", "../escape"} {
		r := testRun(app, RunID(app, "k=2"), now, "aa11", "bb22")
		b := BaselineFromRun(r, "benign", now)
		if err := s.PutBaseline(b); err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		got, ok := s.Baseline(app)
		if !ok || got.App != app || len(got.Entries) != 2 || got.RunID != r.ID {
			t.Fatalf("%s: baseline roundtrip = %+v ok=%v", app, got, ok)
		}
		if !got.Has("aa11") || got.Has("cc33") {
			t.Errorf("%s: Has misbehaves", app)
		}
		if got.Entries[0].Note != "benign" {
			t.Errorf("%s: note lost", app)
		}
	}
	if n := len(s.Baselines()); n != 3 {
		t.Errorf("Baselines() = %d, want 3", n)
	}
	// Baseline files must stay inside the store directory.
	ents, err := os.ReadDir(filepath.Join(s.Dir(), "baselines"))
	if err != nil || len(ents) != 3 {
		t.Fatalf("baseline dir: %v entries, err=%v", len(ents), err)
	}
}

func TestBaselineStandaloneFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nadroid-baseline.json")
	b := &Baseline{App: "App", RunID: "r1", CreatedAt: time.Now(),
		Entries: []BaselineEntry{{Fingerprint: "aa11", Note: "ok"}}}
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaselineFile(path)
	if err != nil || got.App != "App" || !got.Has("aa11") {
		t.Fatalf("roundtrip: %+v, %v", got, err)
	}
	if _, err := ReadBaselineFile(filepath.Join(t.TempDir(), "missing.json")); !os.IsNotExist(err) {
		t.Errorf("missing file error = %v, want IsNotExist", err)
	}
}

func TestRunID(t *testing.T) {
	a := RunID("prog", "k=2")
	if a != RunID("prog", "k=2") {
		t.Error("RunID not deterministic")
	}
	if a == RunID("prog", "k=3") || a == RunID("prog2", "k=2") {
		t.Error("RunID must separate program and options")
	}
	if len(a) != 64 {
		t.Errorf("RunID length = %d, want 64 hex", len(a))
	}
	// Domain separation: moving bytes across the program/options
	// boundary changes the ID.
	if RunID("ab", "c") == RunID("a", "bc") {
		t.Error("RunID lacks domain separation")
	}
}
