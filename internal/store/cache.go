package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// This file adds the store's two derived-cache areas next to runs/ and
// baselines/:
//
//   witness/  — per-warning validation outcomes (JSON), keyed by a
//               caller-computed hash over the app's IR digest, the
//               warning fingerprint, the normalized validation options,
//               and the detector set. A hit replays the outcome instead
//               of re-running the schedule sweep.
//   ircache/  — binary cold-start blobs (internal/ircache), named
//               "<digest>-v<version>-k<K>.bin" so GC can map an entry
//               back to the runs that reference its digest.
//
// Both areas are content-addressed and write-once per key: entries are
// never modified in place, and a corrupt or unreadable entry is a miss
// (callers fall back to the cold path), never an error that stops an
// analysis.

func (s *Store) witnessDir() string { return filepath.Join(s.dir, "witness") }
func (s *Store) ircacheDir() string { return filepath.Join(s.dir, "ircache") }
func (s *Store) incrDir() string    { return filepath.Join(s.dir, "incr") }

// WitnessEntry is one cached validation outcome. NPE carries the
// witness's interp.NPE record verbatim (wire JSON) when Harmful; the
// store stays ignorant of the interpreter's types.
type WitnessEntry struct {
	IRDigest       string          `json:"ir_digest"`
	Fingerprint    string          `json:"fingerprint"`
	Harmful        bool            `json:"harmful"`
	Schedule       []int           `json:"schedule,omitempty"`
	OpaqueBranches bool            `json:"opaque_branches,omitempty"`
	Executions     int             `json:"executions,omitempty"`
	NPE            json.RawMessage `json:"npe,omitempty"`
	CreatedAt      time.Time       `json:"created_at"`
}

// PutWitness persists one validation outcome under key (a hex hash from
// WitnessKey-style derivation; the store only requires a safe filename).
func (s *Store) PutWitness(key string, e *WitnessEntry) error {
	if !safeKey(key) {
		return fmt.Errorf("store: unsafe witness key %q", key)
	}
	if e.IRDigest == "" {
		return errors.New("store: witness entry needs IRDigest")
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := atomicWrite(filepath.Join(s.witnessDir(), key+".json"), append(data, '\n')); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// GetWitness loads a cached validation outcome. A miss returns
// (nil, nil); a corrupt entry returns (nil, err) and is counted as a
// load error, so the caller can log the skip and fall back to cold
// validation.
func (s *Store) GetWitness(key string) (*WitnessEntry, error) {
	if !safeKey(key) {
		return nil, nil
	}
	data, err := os.ReadFile(filepath.Join(s.witnessDir(), key+".json"))
	if err != nil {
		return nil, nil // miss
	}
	var e WitnessEntry
	if err := json.Unmarshal(data, &e); err != nil || e.IRDigest == "" {
		s.mu.Lock()
		s.c.LoadErrors++
		s.mu.Unlock()
		if err == nil {
			err = errors.New("missing ir_digest")
		}
		return nil, fmt.Errorf("store: corrupt witness entry %s: %w", key, err)
	}
	return &e, nil
}

// PutIRCache persists one cold-start blob under its filename (from
// ircache.Name, "<digest>-v<version>-k<K>.bin").
func (s *Store) PutIRCache(name string, data []byte) error {
	if !safeKey(strings.TrimSuffix(name, ".bin")) || !strings.HasSuffix(name, ".bin") {
		return fmt.Errorf("store: unsafe ircache name %q", name)
	}
	if err := atomicWrite(filepath.Join(s.ircacheDir(), name), data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// GetIRCache loads a cold-start blob; ok=false is a miss. Decoding (and
// thus corruption detection) is the caller's concern — the blob is
// opaque here.
func (s *Store) GetIRCache(name string) ([]byte, bool) {
	if !safeKey(strings.TrimSuffix(name, ".bin")) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(s.ircacheDir(), name))
	if err != nil {
		return nil, false
	}
	return data, true
}

// PutIncr persists one incremental fact partition under its filename
// (from incr.Name, "<digest>-v<version>-k<K>.incr").
func (s *Store) PutIncr(name string, data []byte) error {
	if !safeKey(strings.TrimSuffix(name, ".incr")) || !strings.HasSuffix(name, ".incr") {
		return fmt.Errorf("store: unsafe incr name %q", name)
	}
	if err := atomicWrite(filepath.Join(s.incrDir(), name), data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// GetIncr loads an incremental fact partition; ok=false is a miss.
// Like IR-cache blobs, the bytes are opaque here — the caller decodes
// and treats corruption as a cold-start miss.
func (s *Store) GetIncr(name string) ([]byte, bool) {
	if !safeKey(strings.TrimSuffix(name, ".incr")) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(s.incrDir(), name))
	if err != nil {
		return nil, false
	}
	return data, true
}

// IncrNames lists the incremental partitions on disk, newest first by
// modification time. The incremental pipeline uses this as the anchor
// fallback when no stored run names a base digest (library callers
// analyze through the store without persisting runs).
func (s *Store) IncrNames() []string {
	entries, err := os.ReadDir(s.incrDir())
	if err != nil {
		return nil
	}
	type ent struct {
		name string
		mod  time.Time
	}
	list := make([]ent, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".incr") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		list = append(list, ent{e.Name(), info.ModTime()})
	}
	sort.Slice(list, func(i, j int) bool {
		if !list[i].mod.Equal(list[j].mod) {
			return list[i].mod.After(list[j].mod)
		}
		return list[i].name < list[j].name
	})
	out := make([]string, len(list))
	for i, e := range list {
		out[i] = e.name
	}
	return out
}

// DiskUsage reports the byte totals of the store's areas (for the
// /metrics gauges). Incremental partitions are accounted under IRCache
// — they live and die with the same digests.
type DiskUsage struct {
	// Total is the byte size of everything under the store directory.
	Total int64
	// IRCache is the byte size of the derived binary caches: ircache
	// blobs plus incremental partitions.
	IRCache int64
}

// Usage walks the store directory and sums file sizes per area.
func (s *Store) Usage() DiskUsage {
	var u DiskUsage
	var sum func(dir string) int64
	sum = func(dir string) int64 {
		var n int64
		entries, err := os.ReadDir(dir)
		if err != nil {
			return 0
		}
		for _, e := range entries {
			if e.IsDir() {
				n += sum(filepath.Join(dir, e.Name()))
				continue
			}
			if info, err := e.Info(); err == nil {
				n += info.Size()
			}
		}
		return n
	}
	u.Total = sum(s.dir)
	u.IRCache = sum(s.ircacheDir()) + sum(s.incrDir())
	return u
}

// IRDigest computes the content digest of an app's canonical program
// text — the key that ties runs, witness entries, and IR-cache blobs to
// one parsed input.
func IRDigest(canonicalText string) string {
	h := sha256.Sum256([]byte(canonicalText))
	return hex.EncodeToString(h[:])
}

// WitnessKey derives the witness-cache key: any change to the program
// (digest), the warning (fingerprint), the validation options, or the
// enabled detector set lands on a different key, which is how
// invalidation works — stale entries are simply never looked up again
// (GC collects them once their digest has no surviving run).
func WitnessKey(irDigest, fingerprint, normalizedOptions string, detectors []string) string {
	h := sha256.New()
	h.Write([]byte("nadroid-witness-v1"))
	for _, part := range []string{irDigest, fingerprint, normalizedOptions, strings.Join(detectors, ",")} {
		h.Write([]byte{0})
		h.Write([]byte(part))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// safeKey accepts the hex/dash/dot character set our derived filenames
// use, rejecting anything that could escape the cache directory.
func safeKey(k string) bool {
	if k == "" || len(k) > 200 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '.', c == '_':
		default:
			return false
		}
	}
	return !strings.Contains(k, "..")
}

// gcCaches removes witness and IR-cache entries whose IR digest no
// longer belongs to any surviving run (callers pass the protected
// digest set: every run left after run-GC, which by construction
// includes every baseline-referenced run). Unparseable entries are
// orphans by definition and are removed too. Returns how many entries
// were deleted; the caller accounts them in GCRemoved.
func (s *Store) gcCaches(protected map[string]bool) int {
	removed := 0
	if entries, err := os.ReadDir(s.ircacheDir()); err == nil {
		for _, ent := range entries {
			name := ent.Name()
			if ent.IsDir() || !strings.HasSuffix(name, ".bin") {
				continue
			}
			digest := name
			if i := strings.IndexByte(name, '-'); i > 0 {
				digest = name[:i]
			}
			if protected[digest] {
				continue
			}
			if err := os.Remove(filepath.Join(s.ircacheDir(), name)); err == nil {
				removed++
				s.log.Info("store: gc removed ircache entry", "file", name)
			}
		}
	}
	if entries, err := os.ReadDir(s.incrDir()); err == nil {
		for _, ent := range entries {
			name := ent.Name()
			if ent.IsDir() || !strings.HasSuffix(name, ".incr") {
				continue
			}
			digest := name
			if i := strings.IndexByte(name, '-'); i > 0 {
				digest = name[:i]
			}
			if protected[digest] {
				continue
			}
			if err := os.Remove(filepath.Join(s.incrDir(), name)); err == nil {
				removed++
				s.log.Info("store: gc removed incr partition", "file", name)
			}
		}
	}
	if entries, err := os.ReadDir(s.witnessDir()); err == nil {
		for _, ent := range entries {
			name := ent.Name()
			if ent.IsDir() || !strings.HasSuffix(name, ".json") {
				continue
			}
			path := filepath.Join(s.witnessDir(), name)
			var e WitnessEntry
			data, err := os.ReadFile(path)
			orphan := err != nil || json.Unmarshal(data, &e) != nil || !protected[e.IRDigest]
			if !orphan {
				continue
			}
			if err := os.Remove(path); err == nil {
				removed++
				s.log.Info("store: gc removed witness entry", "file", name)
			}
		}
	}
	return removed
}
