// baseline.go: reviewed-warning baselines. A baseline is a committed
// list of warning fingerprints with reviewer notes — the §7 triage
// outcome made durable. Re-analyses suppress baselined warnings so
// attention stays on the delta; diffs report them separately.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// BaselineEntry records one reviewed warning.
type BaselineEntry struct {
	Fingerprint string `json:"fingerprint"`
	// Field is denormalized context for the human reading the file.
	Field string `json:"field,omitempty"`
	// Note is the reviewer's verdict ("benign: guarded by isFinishing",
	// "tracked in #123", …).
	Note string `json:"note,omitempty"`
}

// Baseline is the reviewed-warning set for one app.
type Baseline struct {
	App string `json:"app"`
	// RunID is the run the review was performed against; GC never
	// deletes it while the baseline exists.
	RunID     string          `json:"run_id,omitempty"`
	CreatedAt time.Time       `json:"created_at"`
	Entries   []BaselineEntry `json:"entries"`
}

// Has reports whether a fingerprint is baselined.
func (b *Baseline) Has(fp string) bool {
	if b == nil {
		return false
	}
	for _, e := range b.Entries {
		if e.Fingerprint == fp {
			return true
		}
	}
	return false
}

// BaselineFromRun builds a baseline covering every warning of a run,
// stamping each entry with the note.
func BaselineFromRun(r *Run, note string, now time.Time) *Baseline {
	b := &Baseline{App: r.App, RunID: r.ID, CreatedAt: now}
	for _, w := range r.Warnings {
		b.Entries = append(b.Entries, BaselineEntry{Fingerprint: w.Fingerprint, Field: w.Field, Note: note})
	}
	return b
}

// PutBaseline writes an app's baseline atomically (one baseline per
// app; writing replaces the previous one).
func (s *Store) PutBaseline(b *Baseline) error {
	if b == nil || b.App == "" {
		return errors.New("store: baseline needs App")
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(s.baselineDir(), safeName(b.App)+".json")
	if err := atomicWrite(path, append(data, '\n')); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Baseline loads an app's baseline. Baselines are always read from
// disk so another process's `baseline write` is visible immediately.
func (s *Store) Baseline(app string) (*Baseline, bool) {
	b, err := ReadBaselineFile(filepath.Join(s.baselineDir(), safeName(app)+".json"))
	if err != nil {
		if !os.IsNotExist(err) {
			s.mu.Lock()
			s.c.LoadErrors++
			s.mu.Unlock()
			s.log.Warn("store: skipping corrupt baseline", "app", app, "error", err)
		}
		return nil, false
	}
	return b, true
}

// Baselines loads every readable baseline in the store, skipping
// corrupt files.
func (s *Store) Baselines() []*Baseline {
	entries, err := os.ReadDir(s.baselineDir())
	if err != nil {
		return nil
	}
	var out []*Baseline
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := ReadBaselineFile(filepath.Join(s.baselineDir(), e.Name()))
		if err != nil {
			s.mu.Lock()
			s.c.LoadErrors++
			s.mu.Unlock()
			s.log.Warn("store: skipping corrupt baseline", "file", e.Name(), "error", err)
			continue
		}
		out = append(out, b)
	}
	return out
}

// ReadBaselineFile parses a baseline file (store-managed or committed
// to an app repository and passed via -baseline).
func ReadBaselineFile(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.App == "" {
		return nil, fmt.Errorf("baseline %s: missing app", path)
	}
	return &b, nil
}

// WriteFile renders the baseline to a standalone file (for committing
// next to the app's source).
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(path, append(data, '\n'))
}
