package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWitnessRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := WitnessKey("digestA", "fp1", "k=2;max_schedules=3000", []string{"uaf"})
	e := &WitnessEntry{
		IRDigest:    "digestA",
		Fingerprint: "fp1",
		Harmful:     true,
		Schedule:    []int{0, 2, 1},
		Executions:  7,
		NPE:         []byte(`{"field":"App/Act.f"}`),
		CreatedAt:   time.Now().UTC().Truncate(time.Second),
	}
	if err := s.PutWitness(key, e); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetWitness(key)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("witness entry missing after Put")
	}
	if !got.Harmful || got.Executions != 7 || len(got.Schedule) != 3 {
		t.Errorf("roundtrip mismatch: %+v", got)
	}
	var npe struct {
		Field string `json:"field"`
	}
	if err := json.Unmarshal(got.NPE, &npe); err != nil || npe.Field != "App/Act.f" {
		t.Errorf("NPE payload mismatch: %s (err %v)", got.NPE, err)
	}

	// An absent key is a silent miss, not an error.
	if e, err := s.GetWitness(WitnessKey("other", "fp", "opts", nil)); e != nil || err != nil {
		t.Errorf("absent key: entry=%v err=%v, want nil/nil", e, err)
	}
}

func TestWitnessCorruptEntryIsError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := WitnessKey("digestA", "fp1", "opts", nil)
	if err := os.WriteFile(filepath.Join(dir, "witness", key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := s.GetWitness(key)
	if e != nil || err == nil {
		t.Fatalf("corrupt entry: entry=%v err=%v, want nil entry + error", e, err)
	}
	if s.Counters().LoadErrors != 1 {
		t.Errorf("LoadErrors = %d, want 1", s.Counters().LoadErrors)
	}
	// An entry missing its digest is corrupt too (GC could never map it
	// to a run).
	key2 := WitnessKey("digestA", "fp2", "opts", nil)
	if err := os.WriteFile(filepath.Join(dir, "witness", key2+".json"), []byte(`{"harmful":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if e, err := s.GetWitness(key2); e != nil || err == nil {
		t.Fatalf("digestless entry: entry=%v err=%v, want nil entry + error", e, err)
	}
}

// TestWitnessKeyInvalidation locks the invalidation mechanism: any
// change to the program, warning, options, or detector set must land on
// a distinct key, so stale outcomes are never looked up.
func TestWitnessKeyInvalidation(t *testing.T) {
	base := WitnessKey("digestA", "fp1", "k=2;max_schedules=3000", []string{"uaf"})
	variants := map[string]string{
		"digest":    WitnessKey("digestB", "fp1", "k=2;max_schedules=3000", []string{"uaf"}),
		"warning":   WitnessKey("digestA", "fp2", "k=2;max_schedules=3000", []string{"uaf"}),
		"options":   WitnessKey("digestA", "fp1", "k=2;max_schedules=500", []string{"uaf"}),
		"detectors": WitnessKey("digestA", "fp1", "k=2;max_schedules=3000", []string{"uaf", "nosleep"}),
	}
	seen := map[string]string{base: "base"}
	for dim, key := range variants {
		if prev, dup := seen[key]; dup {
			t.Errorf("changing %s collides with %s", dim, prev)
		}
		seen[key] = dim
	}
	// Key material with separator-like content must not collapse: the
	// derivation is length-delimited, not string-concatenated.
	if WitnessKey("a", "b,c", "d", nil) == WitnessKey("a", "b", "c,d", nil) {
		t.Error("witness key is concatenation-ambiguous")
	}
}

func TestPutWitnessRejectsUnsafeKeys(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := &WitnessEntry{IRDigest: "d", Fingerprint: "f"}
	for _, key := range []string{"", "../escape", "a/b", strings.Repeat("x", 201)} {
		if err := s.PutWitness(key, e); err == nil {
			t.Errorf("PutWitness(%q) accepted an unsafe key", key)
		}
	}
	if err := s.PutWitness("ok-key", &WitnessEntry{Fingerprint: "f"}); err == nil {
		t.Error("PutWitness accepted an entry without IRDigest")
	}
}

func TestIRCacheRoundTripAndNames(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte{'N', 'I', 'R', 'C', 1, 2, 3}
	if err := s.PutIRCache("digestA-v1-k2.bin", blob); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetIRCache("digestA-v1-k2.bin")
	if !ok || string(got) != string(blob) {
		t.Fatalf("roundtrip: ok=%v blob=%v", ok, got)
	}
	if _, ok := s.GetIRCache("digestA-v1-k3.bin"); ok {
		t.Error("different K hit the same entry")
	}
	for _, name := range []string{"../x.bin", "noext", "a/b.bin"} {
		if err := s.PutIRCache(name, blob); err == nil {
			t.Errorf("PutIRCache(%q) accepted an unsafe name", name)
		}
	}
}

// TestGCCollectsOrphanedCaches exercises the cache half of GC: entries
// whose digest no surviving run carries are removed; entries backing a
// surviving run — including one that survives only through a baseline
// reference — are kept.
func TestGCCollectsOrphanedCaches(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxRunsPerApp: 1})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC()

	newer := testRun("App", "run-newer", now, "aa")
	newer.IRDigest = "digestnew"
	older := testRun("App", "run-older", now.Add(-time.Hour), "bb")
	older.IRDigest = "digestold"
	for _, r := range []*Run{newer, older} {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	// The baseline pins the older run, which MaxRunsPerApp=1 would
	// otherwise collect — and with it, its cache entries.
	if err := s.PutBaseline(&Baseline{App: "App", RunID: "run-older", CreatedAt: now}); err != nil {
		t.Fatal(err)
	}

	put := func(digest string) {
		t.Helper()
		if err := s.PutIRCache(digest+"-v1-k2.bin", []byte("blob")); err != nil {
			t.Fatal(err)
		}
		key := WitnessKey(digest, "fp", "opts", nil)
		if err := s.PutWitness(key, &WitnessEntry{IRDigest: digest, Fingerprint: "fp"}); err != nil {
			t.Fatal(err)
		}
	}
	put("digestnew")
	put("digestold")
	put("digestorphan") // no run carries this digest
	// A syntactically broken witness entry is an orphan by definition.
	if err := os.WriteFile(filepath.Join(dir, "witness", "deadbeef.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed := s.GC(now)
	// Orphan ircache blob + orphan witness + corrupt witness = 3; both
	// runs survive (newest by count, older by baseline), so removed
	// counts no run.
	if removed != 3 {
		t.Errorf("GC removed %d records, want 3", removed)
	}
	for _, digest := range []string{"digestnew", "digestold"} {
		if _, ok := s.GetIRCache(digest + "-v1-k2.bin"); !ok {
			t.Errorf("GC collected live ircache entry for %s", digest)
		}
		if e, err := s.GetWitness(WitnessKey(digest, "fp", "opts", nil)); e == nil || err != nil {
			t.Errorf("GC collected live witness entry for %s", digest)
		}
	}
	if _, ok := s.GetIRCache("digestorphan-v1-k2.bin"); ok {
		t.Error("orphaned ircache entry survived GC")
	}
	if e, _ := s.GetWitness(WitnessKey("digestorphan", "fp", "opts", nil)); e != nil {
		t.Error("orphaned witness entry survived GC")
	}
	if _, ok := s.Get("run-older"); !ok {
		t.Error("baseline-referenced run was collected")
	}
}
