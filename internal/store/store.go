// Package store persists analysis results on disk so warnings have a
// history: a content-addressed store of runs (keyed by the app's
// canonical IR digest plus the normalized analyzer options), an index
// of runs per app, baseline files carrying reviewed-warning
// fingerprints, and a differential engine that classifies warnings
// between two runs as new, fixed, or persisting.
//
// Durability model: every record is one JSON file written atomically
// (temp file + rename in the same directory), so a crash never leaves a
// half-written entry visible. Loads are corruption-tolerant — an entry
// that fails to parse is skipped with a logged warning and counted, not
// fatal — so one bad file cannot take down the service. Multiple
// processes may share a directory: writers never modify files in place,
// and readers rescan the directory on demand, so a CLI writing runs
// while nadroid-serve is live is safe.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stats is the filter-pipeline summary persisted with a run.
type Stats struct {
	Potential    int `json:"potential"`
	AfterSound   int `json:"after_sound"`
	AfterUnsound int `json:"after_unsound"`
}

// Warning is one surviving warning as stored: the stable fingerprint
// plus the human-facing review aids.
type Warning struct {
	Fingerprint string `json:"fingerprint"`
	// Detector names the bug family ("" = uaf, the classic family).
	Detector    string `json:"detector,omitempty"`
	Field       string `json:"field"`
	Use         string `json:"use"`
	Free        string `json:"free"`
	Category    string `json:"category"`
	UseLineage  string `json:"use_lineage,omitempty"`
	FreeLineage string `json:"free_lineage,omitempty"`
}

// Run is one persisted analysis. ID is the content address — the
// SHA-256 of the app's canonical dexasm text and the normalized option
// set — so re-analyzing identical input lands on the same record.
type Run struct {
	ID        string    `json:"id"`
	App       string    `json:"app"`
	Options   string    `json:"options,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	// IRDigest is the content digest of the app's canonical program text
	// (store.IRDigest). It links the run to its witness-cache and
	// IR-cache entries: GC keeps a cache entry alive only while some run
	// still carries its digest.
	IRDigest string `json:"ir_digest,omitempty"`
	// Detectors is the enabled detector set that produced the run.
	// Runs persisted before detector selection existed have none; the
	// differ only refuses when both sides carry metadata and disagree.
	Detectors []string  `json:"detectors,omitempty"`
	Stats     Stats     `json:"stats"`
	Warnings  []Warning `json:"warnings"`
	// Payload carries the caller's full wire-format result verbatim, so
	// a restarted service can serve it as a cache hit without
	// re-analyzing.
	Payload json.RawMessage `json:"payload,omitempty"`
	// Evidence maps warning fingerprints to their provenance records
	// (wire-format JSON, stored verbatim). Present only for runs
	// analyzed with provenance on; the explain surfaces read it.
	Evidence map[string]json.RawMessage `json:"evidence,omitempty"`
}

// Options tunes a store.
type Options struct {
	// MaxRunsPerApp bounds how many runs GC keeps per app, newest
	// first (0 = unlimited).
	MaxRunsPerApp int
	// MaxAge expires runs older than this at GC time (0 = never).
	MaxAge time.Duration
	// Logger receives skip warnings for corrupt entries and GC
	// activity. Nil means silent.
	Logger *slog.Logger
}

// Counters is a point-in-time read of the store's lifetime counters,
// exported as the nadroid_store_* metric families.
type Counters struct {
	Hits       uint64 // Get found a run
	Misses     uint64 // Get found nothing
	Puts       uint64 // runs written
	GCRemoved  uint64 // runs deleted by GC
	LoadErrors uint64 // corrupt/truncated entries skipped on load
}

// Store is a handle on one store directory. All methods are safe for
// concurrent use; independent handles on the same directory are safe
// because writes are atomic renames.
type Store struct {
	dir  string
	opts Options
	log  *slog.Logger

	mu   sync.Mutex
	runs map[string]*Run // id -> run
	bad  map[string]bool // filenames already reported as corrupt
	c    Counters
}

// Open creates (if needed) and loads a store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{dir: dir, opts: opts, log: opts.Logger, runs: make(map[string]*Run), bad: make(map[string]bool)}
	if s.log == nil {
		s.log = slog.New(discardHandler{})
	}
	for _, sub := range []string{s.runDir(), s.baselineDir(), s.witnessDir(), s.ircacheDir(), s.incrDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) runDir() string      { return filepath.Join(s.dir, "runs") }
func (s *Store) baselineDir() string { return filepath.Join(s.dir, "baselines") }

// refreshLocked scans the runs directory and loads entries this handle
// has not seen yet, tolerating corrupt files. Callers hold s.mu.
func (s *Store) refreshLocked() {
	entries, err := os.ReadDir(s.runDir())
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if _, ok := s.runs[id]; ok || s.bad[name] {
			continue
		}
		r, err := readRunFile(filepath.Join(s.runDir(), name))
		if err != nil {
			s.bad[name] = true
			s.c.LoadErrors++
			s.log.Warn("store: skipping corrupt run entry", "file", name, "error", err)
			continue
		}
		if r.ID != id {
			// A renamed or hand-edited file; trust the filename as the
			// address but keep the record's claim visible in logs.
			s.log.Warn("store: run id mismatch, using filename", "file", name, "record_id", r.ID)
			r.ID = id
		}
		s.runs[id] = r
	}
}

func readRunFile(path string) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Run
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.App == "" {
		return nil, errors.New("missing app name")
	}
	return &r, nil
}

// Put writes a run atomically and indexes it. Re-putting an existing ID
// refreshes the record (same content address ⇒ same result, so this is
// a timestamp/payload refresh, not a semantic change).
func (s *Store) Put(r *Run) error {
	if r.ID == "" || r.App == "" {
		return errors.New("store: run needs ID and App")
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(s.runDir(), r.ID+".json")
	if err := atomicWrite(path, append(data, '\n')); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	cp := *r
	s.mu.Lock()
	s.runs[r.ID] = &cp
	s.c.Puts++
	s.mu.Unlock()
	return nil
}

// Get returns a run by content address. A miss rescans the directory
// once, so runs written by another process are visible.
func (s *Store) Get(id string) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		s.refreshLocked()
		r, ok = s.runs[id]
	}
	if ok {
		s.c.Hits++
	} else {
		s.c.Misses++
	}
	return r, ok
}

// Runs lists an app's runs, newest first (ties broken by ID for
// stability). It rescans the directory, so cross-process writes show
// up.
func (s *Store) Runs(app string) []*Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	var out []*Run
	for _, r := range s.runs {
		if r.App == app {
			out = append(out, r)
		}
	}
	sortRuns(out)
	return out
}

// All lists every run, newest first.
func (s *Store) All() []*Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	out := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		out = append(out, r)
	}
	sortRuns(out)
	return out
}

func sortRuns(runs []*Run) {
	sort.Slice(runs, func(i, j int) bool {
		if !runs[i].CreatedAt.Equal(runs[j].CreatedAt) {
			return runs[i].CreatedAt.After(runs[j].CreatedAt)
		}
		return runs[i].ID < runs[j].ID
	})
}

// EvidenceFor finds the newest stored evidence record matching a
// fingerprint, searching app's runs (every app when app is empty),
// newest first. The fingerprint may be a unique prefix; ambiguous
// prefixes and misses return ok == false.
func (s *Store) EvidenceFor(app, fp string) (raw json.RawMessage, runID string, ok bool) {
	if fp == "" {
		return nil, "", false
	}
	var runs []*Run
	if app != "" {
		runs = s.Runs(app)
	} else {
		runs = s.All()
	}
	for _, r := range runs {
		if len(r.Evidence) == 0 {
			continue
		}
		if raw, ok := r.Evidence[fp]; ok {
			return raw, r.ID, true
		}
		var match json.RawMessage
		matches := 0
		for k, v := range r.Evidence {
			if strings.HasPrefix(k, fp) {
				match = v
				matches++
			}
		}
		if matches == 1 {
			return match, r.ID, true
		}
		if matches > 1 {
			return nil, "", false // ambiguous within the newest matching run
		}
	}
	return nil, "", false
}

// Apps lists the distinct app names with at least one run, sorted.
func (s *Store) Apps() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	seen := make(map[string]bool)
	for _, r := range s.runs {
		seen[r.App] = true
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Len reports the indexed run count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

// Counters reads the lifetime counters.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

// GC removes runs beyond the per-app count bound or older than the age
// bound, except runs referenced by a baseline (a reviewed baseline must
// keep its reference run diffable). It then collects orphaned derived
// caches: witness and IR-cache entries whose digest no surviving run
// carries (baseline-referenced runs always survive, so their cache
// entries are never collected). It returns how many records — runs and
// cache entries — were removed.
func (s *Store) GC(now time.Time) int {
	protected := make(map[string]bool)
	for _, b := range s.Baselines() {
		if b.RunID != "" {
			protected[b.RunID] = true
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	byApp := make(map[string][]*Run)
	for _, r := range s.runs {
		byApp[r.App] = append(byApp[r.App], r)
	}
	removed := 0
	for _, runs := range byApp {
		sortRuns(runs)
		for i, r := range runs {
			tooMany := s.opts.MaxRunsPerApp > 0 && i >= s.opts.MaxRunsPerApp
			tooOld := s.opts.MaxAge > 0 && now.Sub(r.CreatedAt) > s.opts.MaxAge
			if !tooMany && !tooOld {
				continue
			}
			if protected[r.ID] {
				continue
			}
			if err := os.Remove(filepath.Join(s.runDir(), r.ID+".json")); err != nil && !os.IsNotExist(err) {
				s.log.Warn("store: gc remove failed", "run", r.ID, "error", err)
				continue
			}
			delete(s.runs, r.ID)
			s.c.GCRemoved++
			removed++
			s.log.Info("store: gc removed run", "run", r.ID, "app", r.App,
				"age", now.Sub(r.CreatedAt).String(), "over_count", tooMany)
		}
	}
	// Digests of every surviving run protect their cache entries.
	digests := make(map[string]bool)
	for _, r := range s.runs {
		if r.IRDigest != "" {
			digests[r.IRDigest] = true
		}
	}
	cacheRemoved := s.gcCaches(digests)
	s.c.GCRemoved += uint64(cacheRemoved)
	return removed + cacheRemoved
}

// RunID computes the content address for an analysis: the SHA-256 of
// the canonical program text and the normalized option rendering,
// domain-separated. It matches the service's result-cache key so the
// store doubles as the cache's disk tier.
func RunID(canonicalText, normalizedOptions string) string {
	h := sha256.New()
	h.Write([]byte(canonicalText))
	h.Write([]byte{0})
	h.Write([]byte(normalizedOptions))
	return hex.EncodeToString(h.Sum(nil))
}

// atomicWrite writes data to path via a temp file + rename so readers
// never observe a partial file.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp)
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// safeName renders an app name as a filesystem-safe, collision-free
// filename stem: sanitized characters plus a short content hash.
func safeName(app string) string {
	var b strings.Builder
	for _, r := range app {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	sum := sha256.Sum256([]byte(app))
	return b.String() + "-" + hex.EncodeToString(sum[:4])
}

// discardHandler is a no-op slog handler (slog.DiscardHandler arrived
// in go1.24; this keeps the module's go1.22 floor).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
