// Package obs is the pipeline's zero-dependency observability layer:
// a span tracer, named counters, and structured logging, all carried
// through context.Context. Every entry point is nil-safe — when no
// tracer/metrics/logger is attached to the context, Start returns a nil
// span and Add/Logger degrade to no-ops — so instrumented code pays only
// a context lookup when observation is off. The analysis packages bump
// counters and open spans; cmd/nadroid and internal/server attach
// collectors and export what accumulated (Chrome trace JSON, indented
// span trees, nadroid_pipeline_* metric families).
package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val interface{}
}

// KV builds an Attr.
func KV(key string, val interface{}) Attr { return Attr{Key: key, Val: val} }

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	metricsKey
	loggerKey
)

// DefaultSpanLimit bounds how many spans a tracer records before it
// starts dropping (schedule exploration can open one span per executed
// schedule; an unbounded tracer would turn a big validation run into a
// memory leak).
const DefaultSpanLimit = 50_000

// Tracer records a forest of spans. It is safe for concurrent use; a
// server attaches one tracer per job.
type Tracer struct {
	mu      sync.Mutex
	roots   []*Span
	count   int
	limit   int
	dropped int
}

// NewTracer returns an empty tracer bounded to DefaultSpanLimit spans.
func NewTracer() *Tracer { return &Tracer{limit: DefaultSpanLimit} }

// SetLimit adjusts the span budget (minimum 1).
func (t *Tracer) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Dropped reports how many spans were discarded over the budget.
func (t *Tracer) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanCount reports how many spans were recorded.
func (t *Tracer) SpanCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Roots returns the top-level spans in start order.
func (t *Tracer) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Span is one timed region of the pipeline. All methods are nil-safe so
// call sites never need to check whether tracing is on.
type Span struct {
	tracer   *Tracer
	parent   *Span
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// WithTracer attaches a tracer to the context.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the attached tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// Start opens a span named name under the context's current span (or as
// a new root) and returns a derived context in which the new span is
// current. With no tracer attached — or with the tracer's span budget
// exhausted — it returns ctx unchanged and a nil span.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey).(*Span)
	s := &Span{tracer: t, parent: parent, name: name, start: time.Now(), attrs: attrs}
	t.mu.Lock()
	if t.count >= t.limit {
		t.dropped++
		t.mu.Unlock()
		return ctx, nil
	}
	t.count++
	if parent != nil {
		parent.children = append(parent.children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.mu.Unlock()
	return context.WithValue(ctx, spanKey, s), s
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.tracer.mu.Unlock()
}

// SetAttr annotates the span after Start.
func (s *Span) SetAttr(key string, val interface{}) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, val})
	s.tracer.mu.Unlock()
}

// Name returns the span name ("" for nil spans).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns end-start; for an unfinished span it measures up to
// now.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Children returns the sub-spans in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attrs returns the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Metrics is a named counter set. Analysis stages Add into it through
// the context; collectors Snapshot and Merge it. Counter names use
// prometheus-style "name" or `name{label="value"}` keys so the server
// can export them verbatim as nadroid_pipeline_* families.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics { return &Metrics{counters: make(map[string]int64)} }

// WithMetrics attaches a counter set to the context.
func WithMetrics(ctx context.Context, m *Metrics) context.Context {
	return context.WithValue(ctx, metricsKey, m)
}

// MetricsFrom returns the attached counter set, or nil.
func MetricsFrom(ctx context.Context) *Metrics {
	m, _ := ctx.Value(metricsKey).(*Metrics)
	return m
}

// Add bumps the named counter on the context's metric set (no-op when
// none is attached).
func Add(ctx context.Context, name string, delta int64) {
	if m := MetricsFrom(ctx); m != nil {
		m.Add(name, delta)
	}
}

// Add bumps a counter directly.
func (m *Metrics) Add(name string, delta int64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Get reads one counter.
func (m *Metrics) Get(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Snapshot copies the counter map.
func (m *Metrics) Snapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters))
	for k, v := range m.counters {
		out[k] = v
	}
	return out
}

// Merge adds another snapshot into this set (the server accumulates
// per-job counters into service totals this way).
func (m *Metrics) Merge(snap map[string]int64) {
	m.mu.Lock()
	for k, v := range snap {
		m.counters[k] += v
	}
	m.mu.Unlock()
}

// Names returns the counter names, sorted.
func (m *Metrics) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.counters))
	for k := range m.counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
