// export.go renders a tracer's span forest for humans and tools: a
// Chrome trace_event JSON file (open in chrome://tracing or Perfetto),
// a JSON span tree (the GET /v1/jobs/{id}/trace payload), and an
// indented plain-text tree for terminals.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// SpanNode is the JSON tree form of a span.
type SpanNode struct {
	Name     string            `json:"name"`
	StartUS  int64             `json:"start_us"`
	DurUS    int64             `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// Nodes converts the recorded forest into SpanNodes. Start times are
// relative to the earliest recorded span so traces are stable across
// runs.
func (t *Tracer) Nodes() []*SpanNode {
	roots := t.Roots()
	base := time.Time{}
	for _, r := range roots {
		if base.IsZero() || r.start.Before(base) {
			base = r.start
		}
	}
	out := make([]*SpanNode, 0, len(roots))
	for _, r := range roots {
		out = append(out, nodeOf(r, base))
	}
	return out
}

func nodeOf(s *Span, base time.Time) *SpanNode {
	n := &SpanNode{
		Name:    s.Name(),
		StartUS: s.startTime().Sub(base).Microseconds(),
		DurUS:   s.Duration().Microseconds(),
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		n.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			n.Attrs[a.Key] = fmt.Sprint(a.Val)
		}
	}
	for _, c := range s.Children() {
		n.Children = append(n.Children, nodeOf(c, base))
	}
	return n
}

func (s *Span) startTime() time.Time {
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return s.start
}

// chromeEvent is one trace_event entry (the "X" complete-event form).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`  // microseconds
	Dur  int64             `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace serializes the forest as Chrome trace_event JSON.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	var events []chromeEvent
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		events = append(events, chromeEvent{
			Name: n.Name, Ph: "X", TS: n.StartUS, Dur: n.DurUS,
			PID: 1, TID: 1, Args: n.Attrs,
		})
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Nodes() {
		walk(r)
	}
	return json.MarshalIndent(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
}

// Tree renders the forest as an indented plain-text tree, one span per
// line: name, duration, attributes.
func (t *Tracer) Tree() string {
	var b strings.Builder
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		fmt.Fprintf(&b, "%s%s %.3fms", strings.Repeat("  ", depth), n.Name, float64(n.DurUS)/1000)
		if len(n.Attrs) > 0 {
			keys := make([]string, 0, len(n.Attrs))
			for k := range n.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%s", k, n.Attrs[k])
			}
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Nodes() {
		walk(r, 0)
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(+%d spans dropped over the %d-span budget)\n", d, t.limitNow())
	}
	return b.String()
}

func (t *Tracer) limitNow() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.limit
}
