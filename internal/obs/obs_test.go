package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	rctx, root := Start(ctx, "analyze", KV("app", "Mms"))
	cctx, child := Start(rctx, "modeling")
	_, grand := Start(cctx, "pointsto.solve", KV("k", 2))
	grand.End()
	child.End()
	_, sib := Start(rctx, "detection")
	sib.SetAttr("pairs", 7)
	sib.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "analyze" {
		t.Fatalf("roots = %v, want one analyze root", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name() != "modeling" || kids[1].Name() != "detection" {
		t.Fatalf("children = %v, want [modeling detection]", kids)
	}
	gk := kids[0].Children()
	if len(gk) != 1 || gk[0].Name() != "pointsto.solve" {
		t.Fatalf("grandchildren = %v, want [pointsto.solve]", gk)
	}
	if got := tr.SpanCount(); got != 4 {
		t.Fatalf("SpanCount = %d, want 4", got)
	}
	if roots[0].Duration() < kids[0].Duration() {
		t.Fatalf("root duration %v shorter than child %v", roots[0].Duration(), kids[0].Duration())
	}
	var foundAttr bool
	for _, a := range kids[1].Attrs() {
		if a.Key == "pairs" {
			foundAttr = true
		}
	}
	if !foundAttr {
		t.Fatal("SetAttr(pairs) not recorded on detection span")
	}
}

func TestStartWithoutTracerIsNoop(t *testing.T) {
	ctx, span := Start(context.Background(), "orphan", KV("x", 1))
	if span != nil {
		t.Fatalf("Start without tracer returned span %v, want nil", span)
	}
	// Every method must be nil-safe.
	span.End()
	span.SetAttr("k", "v")
	_ = span.Name()
	_ = span.Duration()
	_ = span.Children()
	_ = span.Attrs()
	// And counters without a Metrics must not panic either.
	Add(ctx, "pointsto_iterations", 3)
}

func TestSpanLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(3)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, s := Start(ctx, "schedule")
		s.End()
	}
	if got := tr.SpanCount(); got != 3 {
		t.Fatalf("SpanCount = %d, want 3 (limit)", got)
	}
	if got := tr.Dropped(); got != 7 {
		t.Fatalf("Dropped = %d, want 7", got)
	}
	if !strings.Contains(tr.Tree(), "dropped") {
		t.Fatal("Tree() does not mention dropped spans")
	}
}

func TestChromeTraceJSON(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	rctx, root := Start(ctx, "analyze")
	_, child := Start(rctx, "modeling", KV("threads", 4))
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	data, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			TS   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			PID  int                    `json:"pid"`
			TID  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("ChromeTrace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want 2", len(doc.TraceEvents))
	}
	byName := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has ph=%q, want X (complete)", ev.Name, ev.Ph)
		}
		byName[ev.Name] = true
	}
	if !byName["analyze"] || !byName["modeling"] {
		t.Fatalf("events %v, want analyze and modeling", byName)
	}
}

func TestNodesRelativeStarts(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	rctx, root := Start(ctx, "root")
	time.Sleep(time.Millisecond)
	_, c := Start(rctx, "late")
	c.End()
	root.End()

	nodes := tr.Nodes()
	if len(nodes) != 1 {
		t.Fatalf("nodes = %d, want 1", len(nodes))
	}
	if nodes[0].StartUS != 0 {
		t.Fatalf("root StartUS = %d, want 0 (relative to earliest span)", nodes[0].StartUS)
	}
	if len(nodes[0].Children) != 1 || nodes[0].Children[0].StartUS <= 0 {
		t.Fatalf("child node = %+v, want positive relative start", nodes[0].Children)
	}
}

func TestMetricsConcurrentAddAndMerge(t *testing.T) {
	m := NewMetrics()
	ctx := WithMetrics(context.Background(), m)
	const workers, perWorker = 8, 1000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := NewMetrics()
			lctx := WithMetrics(context.Background(), local)
			for i := 0; i < perWorker; i++ {
				Add(ctx, "shared", 1)
				Add(lctx, "local", 1)
			}
			m.Merge(local.Snapshot())
		}()
	}
	wg.Wait()

	if got := m.Get("shared"); got != workers*perWorker {
		t.Fatalf("shared = %d, want %d", got, workers*perWorker)
	}
	if got := m.Get("local"); got != workers*perWorker {
		t.Fatalf("merged local = %d, want %d", got, workers*perWorker)
	}
	snap := m.Snapshot()
	snap["shared"] = -1 // snapshots are copies, not views
	if m.Get("shared") == -1 {
		t.Fatal("Snapshot aliases the live counter map")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	rctx, root := Start(ctx, "root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, s := Start(rctx, "worker-span")
				s.SetAttr("i", i)
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := tr.SpanCount(); got != 801 {
		t.Fatalf("SpanCount = %d, want 801", got)
	}
	if got := len(tr.Roots()[0].Children()); got != 800 {
		t.Fatalf("root children = %d, want 800", got)
	}
}

func TestLoggerDefaultIsNoop(t *testing.T) {
	l := Logger(context.Background())
	if l == nil {
		t.Fatal("Logger returned nil")
	}
	l.Info("must not panic", "k", "v")
	if l.Enabled(context.Background(), 8) {
		t.Fatal("discard logger claims to be enabled")
	}
}
