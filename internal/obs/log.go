// log.go carries a *slog.Logger through the context so the pipeline can
// emit structured phase logs with the job/request IDs the server (or
// CLI) stamped on the logger. With no logger attached, Logger returns a
// shared no-op logger whose handler reports Enabled=false, so call
// sites never pay for formatting.
package obs

import (
	"context"
	"log/slog"
)

// WithLogger attaches a logger to the context.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// Logger returns the attached logger, or a no-op logger.
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
		return l
	}
	return nopLogger
}

var nopLogger = slog.New(discardHandler{})

// discardHandler drops every record before it is formatted.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
