// Package race implements Chord-style static data-race detection over
// the threadified program (§5): it enumerates field accesses per modeled
// thread, and reports racy pairs — two accesses to the same field of an
// aliased, thread-escaping object from different modeled threads, at
// least one of which is a write.
//
// Per the paper, the detector deliberately ignores lockset analysis
// (locks do not prevent ordering violations) and MHP analysis (replaced
// by the happens-before filters of §6); both are computed elsewhere and
// applied selectively by the filters.
package race

import (
	"context"
	"fmt"
	"sort"

	"nadroid/internal/datalog"
	"nadroid/internal/escape"
	"nadroid/internal/ir"
	"nadroid/internal/obs"
	"nadroid/internal/pointsto"
	"nadroid/internal/threadify"
)

// AccessKind distinguishes reads, writes and null writes.
type AccessKind int

const (
	// Read is a getfield/getstatic — the paper's "use".
	Read AccessKind = iota
	// Write is a putfield/putstatic of a non-null (or unknown) value.
	Write
	// NullWrite is a putfield/putstatic of a definitely-null value — the
	// paper's "free".
	NullWrite
)

func (k AccessKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case NullWrite:
		return "free"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Access is one field access executed by one modeled thread.
type Access struct {
	ID     int
	Thread int
	MCtx   threadify.MCtx
	Instr  ir.InstrID
	Index  int // instruction index within the method
	Field  ir.FieldRef
	Kind   AccessKind
	Static bool
	// Objs are the abstract receiver objects (empty for statics).
	Objs []pointsto.ObjID
}

// Pair is one racy pair of access IDs (by convention A is the read/use
// when one side is a read).
type Pair struct {
	A, B int
}

// Result bundles the accesses and racy pairs of one detection run.
type Result struct {
	Accesses []Access
	Pairs    []Pair
	Escape   *escape.Result
}

// Options tunes detection.
type Options struct {
	// RequireEscape drops pairs on objects reachable from a single
	// thread (Chord's thread-escape pruning). Defaults to true via
	// Detect; set SkipEscape to disable for ablation.
	SkipEscape bool
	// UseFreeOnly keeps only (read, null-write) pairs — nAdroid's UAF
	// restriction (§5). When false the detector reports every
	// read-write/write-write race, like stock Chord.
	UseFreeOnly bool
	// Workers bounds the Datalog engines' per-round worker pools
	// (0 = GOMAXPROCS). Results are identical for any setting.
	Workers int
}

// CollectAccesses enumerates the field accesses of every modeled thread.
// The same instruction yields one access per (thread, context) executing
// it.
func CollectAccesses(m *threadify.Model) []Access {
	var out []Access
	for _, th := range m.Threads {
		if th.Kind == threadify.KindDummyMain {
			continue
		}
		for _, acc := range CollectThreadAccesses(m, th.ID) {
			acc.ID = len(out)
			out = append(out, acc)
		}
	}
	return out
}

// CollectThreadAccesses enumerates one thread's field accesses with IDs
// local to the thread (0-based, in the same deterministic order
// CollectAccesses emits). Per-thread access partitions concatenate into
// exactly the CollectAccesses result once IDs are renumbered
// sequentially, which is what lets the incremental pipeline reuse
// unchanged threads' partitions verbatim.
func CollectThreadAccesses(m *threadify.Model, thread int) []Access {
	var out []Access
	mcs := make([]threadify.MCtx, 0, len(m.Reach(thread)))
	for mc := range m.Reach(thread) {
		mcs = append(mcs, mc)
	}
	sort.Slice(mcs, func(i, j int) bool {
		if mcs[i].Method != mcs[j].Method {
			return mcs[i].Method < mcs[j].Method
		}
		return mcs[i].Recv < mcs[j].Recv
	})
	for _, mc := range mcs {
		mth, err := m.H.MethodByRef(mc.Method)
		if err != nil || mth.Abstract {
			continue
		}
		oi := ir.ComputeOrigins(mth)
		for i, in := range mth.Instrs {
			var acc *Access
			switch in.Op {
			case ir.OpGetField:
				acc = &Access{
					Kind:  Read,
					Field: canonicalField(m, in.Field),
					Objs:  m.PTS.PointsTo(mc.Method, mc.Recv, in.B),
				}
			case ir.OpPutField:
				kind := Write
				if ir.IsFree(oi, mth, i) {
					kind = NullWrite
				}
				acc = &Access{
					Kind:  kind,
					Field: canonicalField(m, in.Field),
					Objs:  m.PTS.PointsTo(mc.Method, mc.Recv, in.B),
				}
			case ir.OpGetStatic:
				acc = &Access{Kind: Read, Field: in.Field, Static: true}
			case ir.OpPutStatic:
				kind := Write
				if ir.IsFree(oi, mth, i) {
					kind = NullWrite
				}
				acc = &Access{Kind: kind, Field: in.Field, Static: true}
			}
			if acc == nil {
				continue
			}
			acc.ID = len(out)
			acc.Thread = thread
			acc.MCtx = mc
			acc.Instr = ir.InstrID{Method: mc.Method, Index: i}
			acc.Index = i
			out = append(out, *acc)
		}
	}
	return out
}

// canonicalField resolves a field reference to its declaring class so
// accesses through subclasses unify.
func canonicalField(m *threadify.Model, ref ir.FieldRef) ir.FieldRef {
	if f := m.H.DeclaringClassOfField(ref); f != nil {
		return ir.FieldRef{Class: f.Class, Name: f.Name}
	}
	return ref
}

// Detect runs the full pipeline: collect accesses, escape analysis, and
// the Datalog race derivation.
func Detect(m *threadify.Model, opts Options) *Result {
	return DetectContext(context.Background(), m, opts)
}

// DetectContext is Detect under an observability context: each stage
// runs in its own span (access collection, escape analysis, the Datalog
// pairing) and contributes pipeline counters.
func DetectContext(ctx context.Context, m *threadify.Model, opts Options) *Result {
	_, span := obs.Start(ctx, "race.collect-accesses")
	accesses := CollectAccesses(m)
	span.SetAttr("accesses", len(accesses))
	span.End()

	_, span = obs.Start(ctx, "escape.analyze")
	esc := escape.AnalyzeWith(m, escape.Options{Workers: opts.Workers})
	span.End()

	pctx, span := obs.Start(ctx, "race.pair")
	pairs := DetectPairsContext(pctx, m, accesses, esc, opts)
	span.SetAttr("pairs", len(pairs))
	span.End()

	obs.Add(ctx, "race_accesses", int64(len(accesses)))
	obs.Add(ctx, "race_pairs", int64(len(pairs)))
	return &Result{Accesses: accesses, Pairs: pairs, Escape: esc}
}

// DetectPairs derives racy pairs with a Datalog program, mirroring how
// Chord expresses its race detector:
//
//	Racy(a, b) :- RdAcc(a, t1, f, h), WrAcc(b, t2, f, h), t1 != t2, Esc(h)
//	Racy(a, b) :- WrAcc(a, t1, f, h), WrAcc(b, t2, f, h), t1 != t2, Esc(h)
func DetectPairs(m *threadify.Model, accesses []Access, esc *escape.Result, opts Options) []Pair {
	return DetectPairsContext(context.Background(), m, accesses, esc, opts)
}

// DetectPairsContext is DetectPairs with Datalog engine telemetry
// (fact/derived-tuple/iteration counters) reported through ctx.
func DetectPairsContext(ctx context.Context, m *threadify.Model, accesses []Access, esc *escape.Result, opts Options) []Pair {
	e := datalog.NewEngine()
	e.SetWorkers(opts.Workers)
	PopulateFacts(e, accesses, esc, opts)
	InstallRacyRules(e, opts)
	return PairsFromEngine(ctx, e, accesses, opts)
}

// PopulateFacts loads the access and escape fact base into e: RdAcc and
// WrAcc tuples per (access, thread, field, object) and the Esc relation
// over thread-escaping objects. Detectors that share one engine call
// this once and layer their own relations and rules on top.
func PopulateFacts(e *datalog.Engine, accesses []Access, esc *escape.Result, opts Options) {
	accSym := func(id int) datalog.Sym { return e.IntSym('a', id) }
	thrSym := func(t int) datalog.Sym { return e.IntSym('t', t) }
	objSym := func(o pointsto.ObjID) datalog.Sym { return e.IntSym('h', int(o)) }
	staticObj := e.Sym("h:static")

	// Make sure relations exist even when a side contributes no facts.
	e.Relation("RdAcc", 4)
	e.Relation("WrAcc", 4)
	e.Relation("Esc", 1)

	for _, a := range accesses {
		fieldSym := e.Sym("f:" + a.Field.String())
		rel := "WrAcc"
		if a.Kind == Read {
			rel = "RdAcc"
		}
		if opts.UseFreeOnly {
			// Only uses and frees participate.
			if a.Kind == Write {
				continue
			}
		}
		if a.Static {
			e.Fact(rel, accSym(a.ID), thrSym(a.Thread), fieldSym, staticObj)
			continue
		}
		for _, o := range a.Objs {
			e.Fact(rel, accSym(a.ID), thrSym(a.Thread), fieldSym, objSym(o))
		}
	}
	// Escape facts; statics always escape.
	e.Fact("Esc", staticObj)
	seenObj := make(map[pointsto.ObjID]bool)
	for _, a := range accesses {
		for _, o := range a.Objs {
			if seenObj[o] {
				continue
			}
			seenObj[o] = true
			if opts.SkipEscape || esc.Escaped(o) {
				e.Fact("Esc", objSym(o))
			}
		}
	}
}

// InstallRacyRules adds the Racy derivation rules to an engine loaded by
// PopulateFacts. Install at most once per engine — the engine does not
// dedupe rules, so a second install would re-fire the same derivations
// on every later Run.
func InstallRacyRules(e *datalog.Engine, opts Options) {
	e.MustRule("Racy(a, b) :- RdAcc(a, t1, f, h), WrAcc(b, t2, f, h), t1 != t2, Esc(h)")
	if !opts.UseFreeOnly {
		e.MustRule("Racy(a, b) :- WrAcc(a, t1, f, h), WrAcc(b, t2, f, h), t1 != t2, Esc(h)")
	}
}

// PairsFromEngine runs an engine loaded by PopulateFacts with the Racy
// rules installed (InstallRacyRules) and decodes the racy pairs. Engine
// telemetry (fact/derived-tuple/iteration counters) is reported through
// ctx.
func PairsFromEngine(ctx context.Context, e *datalog.Engine, accesses []Access, opts Options) []Pair {
	e.Run()
	st := e.Stats()
	obs.Add(ctx, "datalog_facts", int64(st.Facts))
	obs.Add(ctx, "datalog_derived", int64(st.Derived))
	obs.Add(ctx, "datalog_iterations", int64(st.Iterations))
	obs.Add(ctx, "datalog_workers", int64(st.Workers))
	// Per-rule evaluation stats, labeled by head relation (rules sharing
	// a head accumulate into one series). The server exposes these as
	// the nadroid_datalog_rule_* metric families.
	for _, rs := range e.RuleStats() {
		obs.Add(ctx, fmt.Sprintf("datalog_rule_derived{rule=%q}", rs.Head), int64(rs.Derived))
		obs.Add(ctx, fmt.Sprintf("datalog_rule_rounds{rule=%q}", rs.Head), int64(rs.Rounds))
		obs.Add(ctx, fmt.Sprintf("datalog_rule_time_us{rule=%q}", rs.Head), rs.Time.Microseconds())
	}

	var pairs []Pair
	for _, row := range e.Query("Racy", datalog.Wild, datalog.Wild) {
		_, a, _ := e.IntSymVal(row[0])
		_, b, _ := e.IntSymVal(row[1])
		if !opts.UseFreeOnly && a > b && sameKindPair(accesses, a, b) {
			// Write-write pairs arrive in both orders; keep one.
			continue
		}
		pairs = append(pairs, Pair{A: a, B: b})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return pairs
}

func sameKindPair(accesses []Access, a, b int) bool {
	return accesses[a].Kind != Read && accesses[b].Kind != Read
}
