package race

import (
	"testing"

	"nadroid/internal/appbuilder"
	"nadroid/internal/escape"
	"nadroid/internal/framework"
	"nadroid/internal/ir"
	"nadroid/internal/threadify"
)

// twoListenerApp builds an activity with two click listeners performing
// the given accesses on a shared field.
func twoListenerApp(t *testing.T, l1Free, l2Write bool) *threadify.Model {
	t.Helper()
	b := appbuilder.New("race")
	act := b.Activity("r/A")
	act.Field("f", "r/V")
	b.Class("r/V", framework.Object).Method("use", 0).Return()
	oc := act.Method("onCreate", 1)
	v := oc.New("r/V")
	oc.PutThis("f", v)
	mk := func(cls string, free, write bool) {
		l := b.Class(cls, framework.Object, framework.OnClickListener)
		l.Field("outer", "r/A")
		mb := l.Method("onClick", 1)
		o := mb.GetThis("outer")
		switch {
		case free:
			mb.Free(o, "r/A", "f")
		case write:
			nv := mb.New("r/V")
			mb.PutField(o, "r/A", "f", nv)
		default:
			f := mb.GetField(o, "r/A", "f")
			mb.Use(f, "r/V")
		}
		mb.Return()
		view := oc.New(framework.View)
		inst := oc.New(cls)
		oc.PutField(inst, cls, "outer", oc.This())
		oc.InvokeVoid(view, framework.View, "setOnClickListener", inst)
	}
	mk("r/L1", l1Free, false)
	mk("r/L2", false, l2Write)
	oc.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCollectAccessesKinds(t *testing.T) {
	m := twoListenerApp(t, true, false)
	accs := CollectAccesses(m)
	var reads, frees, writes int
	for _, a := range accs {
		if a.Field.Name != "f" {
			continue
		}
		switch a.Kind {
		case Read:
			reads++
		case NullWrite:
			frees++
		case Write:
			writes++
		}
	}
	if frees == 0 {
		t.Error("the const-null store must be a NullWrite")
	}
	if reads == 0 {
		t.Error("the getfield must be a Read")
	}
	if writes == 0 {
		t.Error("onCreate's store of a fresh object must be a Write")
	}
}

func TestFieldCanonicalization(t *testing.T) {
	// Accessing an inherited field through the subclass must unify with
	// the declaring class.
	b := appbuilder.New("canon")
	base := b.Class("c/Base", framework.Activity)
	base.Field("f", "c/V")
	b.Class("c/V", framework.Object)
	sub := b.Class("c/Sub", "c/Base")
	m := sub.Method("m", 0)
	m.GetField(m.This(), "c/Sub", "f") // ref through subclass
	m.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	model, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := canonicalField(model, ir.FieldRef{Class: "c/Sub", Name: "f"})
	if ref.Class != "c/Base" {
		t.Errorf("canonical class = %q, want c/Base", ref.Class)
	}
}

func TestUseFreeOnlyExcludesWriteWritePairs(t *testing.T) {
	m := twoListenerApp(t, true, true) // L1 frees, L2 writes non-null
	accs := CollectAccesses(m)
	esc := escape.Analyze(m)
	full := DetectPairs(m, accs, esc, Options{})
	uafOnly := DetectPairs(m, accs, esc, Options{UseFreeOnly: true})
	if len(uafOnly) >= len(full) {
		t.Errorf("UseFreeOnly should shrink pairs: %d vs %d", len(uafOnly), len(full))
	}
	for _, p := range uafOnly {
		a, b := accs[p.A], accs[p.B]
		if a.Kind != Read || b.Kind != NullWrite {
			t.Errorf("UseFreeOnly pair kinds = %v/%v", a.Kind, b.Kind)
		}
	}
}

func TestSkipEscapeFindsMorePairs(t *testing.T) {
	// A thread-local object produces pairs only when escape is skipped.
	b := appbuilder.New("skipesc")
	act := b.Activity("s/A")
	b.Class("s/Box", framework.Object).Field("v", "s/V")
	b.Class("s/V", framework.Object)
	// Two callbacks with their own local boxes: objects never escape, but
	// the abstract object is shared across the two listener contexts only
	// if aliasing says so — here each allocates its own box, so even
	// SkipEscape finds nothing across threads. Instead share via field.
	act.Field("box", "s/Box")
	oc := act.Method("onCreate", 1)
	box := oc.New("s/Box")
	oc.PutThis("box", box)
	vv := oc.New("s/V")
	oc.PutField(box, "s/Box", "v", vv)
	oc.Return()
	// Only onCreate touches it: single thread, pairs need SkipEscape AND
	// a second thread — so expect zero either way for this shape.
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	accs := CollectAccesses(m)
	esc := escape.Analyze(m)
	if pairs := DetectPairs(m, accs, esc, Options{UseFreeOnly: true}); len(pairs) != 0 {
		t.Errorf("single-thread accesses cannot race: %v", pairs)
	}
}

func TestSameFieldDifferentObjectsDoNotRace(t *testing.T) {
	// Two activities each with their own field object: the races stay
	// within each synthetic instance; across instances the field is the
	// same but objects differ, and both components do race on their own
	// object. Verify object-level separation via an app where aliasing
	// rules them out: listener of A1 uses A1.f; listener of A2 frees A2.f.
	b := appbuilder.New("sep")
	b.Class("p/V", framework.Object).Method("use", 0).Return()
	for _, suffix := range []string{"1", "2"} {
		act := b.Activity("p/A" + suffix)
		act.Field("f", "p/V")
		oc := act.Method("onCreate", 1)
		v := oc.New("p/V")
		oc.PutThis("f", v)
		cls := "p/L" + suffix
		l := b.Class(cls, framework.Object, framework.OnClickListener)
		l.Field("outer", "p/A"+suffix)
		mb := l.Method("onClick", 1)
		o := mb.GetThis("outer")
		if suffix == "1" {
			f := mb.GetField(o, "p/A1", "f")
			mb.Use(f, "p/V")
		} else {
			mb.Free(o, "p/A2", "f")
		}
		mb.Return()
		view := oc.New(framework.View)
		inst := oc.New(cls)
		oc.PutField(inst, cls, "outer", oc.This())
		oc.InvokeVoid(view, framework.View, "setOnClickListener", inst)
		oc.Return()
	}
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := threadify.Build(pkg, threadify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rr := Detect(m, Options{UseFreeOnly: true})
	for _, p := range rr.Pairs {
		a, b := rr.Accesses[p.A], rr.Accesses[p.B]
		t.Errorf("cross-activity pair should not exist: %v vs %v", a.Instr, b.Instr)
	}
}
