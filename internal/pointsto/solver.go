package pointsto

import (
	"strconv"
	"strings"

	"nadroid/internal/cha"
	"nadroid/internal/ir"
)

// Interned handle types. Every hot identifier the solver juggles —
// method refs, method contexts, variables, instance fields, static
// fields — is an int32 index into a dense table, so constraint-graph
// edges are integer pairs instead of struct-keyed map entries.
type (
	methodID = int32
	mctxID   = int32
	varID    = int32
	fieldID  = int32
	staticID = int32
)

// mctxInfo is one interned method context: a method analyzed under one
// receiver object. Its registers occupy the contiguous varID block
// [varBase, varBase+nregs); varBase is -1 when the method could not be
// resolved (the context still counts as analyzed, matching the
// map-based solver this replaced).
type mctxInfo struct {
	method  methodID
	recv    ObjID
	varBase varID
	nregs   int32
	m       *ir.Method
}

// core is the interned analysis state shared by the solver and the
// public Result accessors. After the solve finishes the union-find in
// parent is flattened (parent[v] is the class representative directly),
// so accessors never mutate it and a Result is safe for concurrent use.
type core struct {
	h *cha.Hierarchy

	objs   []Obj
	objIdx map[Obj]ObjID

	methodNames []string
	methodIdx   map[string]methodID
	methodOf    []*ir.Method // resolved method per id; nil if unresolved
	methodMctxs [][]mctxID   // contexts per method, in creation order

	mctxs   []mctxInfo
	mctxIdx map[uint64]mctxID

	fieldNames []string
	fieldIdx   map[string]fieldID

	// Per-variable points-to state, indexed by varID through parent.
	varPts   []bitset
	varDelta []bitset
	parent   []varID // union-find over copy-cycle-collapsed variables

	// Instance-field points-to: (obj, field) -> set.
	fpIdx  map[uint64]int32
	fpSets []bitset

	// Static-field points-to: "Class.field" -> set.
	staticIdx  map[string]staticID
	staticSets []bitset

	calleeEdges map[uint64][]mctxID
	spawnEdges  []SpawnEdge

	iterations int
	deltaObjs  int64
}

func mctxKeyOf(mid methodID, recv ObjID) uint64 {
	return uint64(uint32(mid))<<32 | uint64(uint32(int32(recv)))
}

func edgeKeyOf(mc mctxID, site int32) uint64 {
	return uint64(uint32(mc))<<32 | uint64(uint32(site))
}

func fpKeyOf(obj ObjID, fid fieldID) uint64 {
	return uint64(uint32(int32(obj)))<<32 | uint64(uint32(fid))
}

// internObj interns an abstract object, returning its stable id.
func (c *core) internObj(o Obj) ObjID {
	if id, ok := c.objIdx[o]; ok {
		return id
	}
	id := ObjID(len(c.objs))
	c.objs = append(c.objs, o)
	c.objIdx[o] = id
	return id
}

// find returns v's class representative with path compression. Solver
// use only: it mutates parent, so post-solve readers go through the
// flattened parent slice instead.
func (c *core) find(v varID) varID {
	for c.parent[v] != v {
		c.parent[v] = c.parent[c.parent[v]]
		v = c.parent[v]
	}
	return v
}

// flattenParent path-compresses every variable to its root so that
// parent[v] is always a direct representative and concurrent readers
// never write.
func (c *core) flattenParent() {
	for v := range c.parent {
		c.parent[v] = c.find(varID(v))
	}
}

// root returns v's class representative without mutation. Only valid
// after flattenParent, which every solve runs before returning; Result
// accessors use it so they are safe for concurrent readers.
func (c *core) root(v varID) varID { return c.parent[v] }

// Constraint edge types, attached to the variable whose growth triggers
// them (base var for loads/stores/invokes, value var for store-sources
// and static stores, target var for spawns).
type (
	loadC struct {
		field fieldID
		dst   varID
	}
	// storeC with field >= 0 is an instance-field store hanging off the
	// base variable; field < 0 encodes a static store ^field hanging off
	// the value variable (statics interleave with instance stores in the
	// same list to preserve the original solver's drain order).
	storeC struct {
		field int32
		src   varID
	}
	storeSrcC struct {
		base  varID
		field fieldID
	}
	invokeC struct {
		caller mctxID
		idx    int32
	}
	spawnC struct {
		caller mctxID
		idx    int32
		spec   SpawnSpec
	}
)

type spawnKey struct {
	caller mctxID
	site   int32
	tag    int32
	target methodID
	recv   ObjID
}

// collapseEvery is the number of newly inserted copy edges between
// online SCC-collapse passes. Copy cycles come from context cloning
// (the same parameter chains re-materialized per receiver object), and
// collapsing them early keeps one merged set per cycle instead of
// ping-ponging deltas around it.
const collapseEvery = 128

// solver carries the constraint graph and worklist. All per-variable
// slices are indexed by varID and grown in lock-step by internMctx.
type solver struct {
	h    *cha.Hierarchy
	opts Options
	c    *core

	methodIdxByPtr map[*ir.Method]methodID
	methodRets     [][]int32 // cached return registers per methodID
	methodRetsOK   []bool

	copyOut   [][]varID
	loads     [][]loadC
	stores    [][]storeC
	storeSrcs [][]storeSrcC
	invokes   [][]invokeC
	spawns    [][]spawnC
	inWork    []bool

	fpDeps     [][]varID // load destinations per fp set
	staticDeps [][]varID // load destinations per static field

	work      []varID
	copySeen  map[uint64]bool
	spawnSeen map[spawnKey]bool

	copiesSinceCollapse int

	hctx   []string // heap-context cache per receiver ObjID
	hctxOK []bool
}

func solveWithSynthetics(h *cha.Hierarchy, synths []Obj, entries []Entry, opts Options) *Result {
	if opts.K < 1 {
		opts.K = 2
	}
	c := &core{
		h:           h,
		objIdx:      make(map[Obj]ObjID),
		methodIdx:   make(map[string]methodID),
		mctxIdx:     make(map[uint64]mctxID),
		fieldIdx:    make(map[string]fieldID),
		fpIdx:       make(map[uint64]int32),
		staticIdx:   make(map[string]staticID),
		calleeEdges: make(map[uint64][]mctxID),
	}
	s := &solver{
		h:              h,
		opts:           opts,
		c:              c,
		methodIdxByPtr: make(map[*ir.Method]methodID),
		copySeen:       make(map[uint64]bool),
		spawnSeen:      make(map[spawnKey]bool),
	}
	for _, o := range synths {
		c.internObj(o)
	}
	for _, e := range entries {
		if e.Method == nil || e.Method.Abstract {
			continue
		}
		mid := s.internMethod(e.Method)
		if len(e.Receivers) == 0 {
			s.processMethod(mid, NoRecv)
			continue
		}
		for _, recv := range e.Receivers {
			mc := s.processMethod(mid, recv)
			if base := c.mctxs[mc].varBase; base >= 0 {
				s.addObj(base+varID(e.Method.ThisReg()), recv)
			}
		}
	}
	s.run()
	c.flattenParent()
	return &Result{c: c}
}

// internMethod interns a resolved method, keyed by pointer on the hot
// path so virtual dispatch doesn't rebuild ref strings.
func (s *solver) internMethod(m *ir.Method) methodID {
	if mid, ok := s.methodIdxByPtr[m]; ok {
		return mid
	}
	ref := m.Ref()
	mid, ok := s.c.methodIdx[ref]
	if !ok {
		mid = methodID(len(s.c.methodNames))
		s.c.methodNames = append(s.c.methodNames, ref)
		s.c.methodOf = append(s.c.methodOf, m)
		s.c.methodMctxs = append(s.c.methodMctxs, nil)
		s.methodRets = append(s.methodRets, nil)
		s.methodRetsOK = append(s.methodRetsOK, false)
		s.c.methodIdx[ref] = mid
	}
	s.methodIdxByPtr[m] = mid
	return mid
}

func (s *solver) internField(name string) fieldID {
	if fid, ok := s.c.fieldIdx[name]; ok {
		return fid
	}
	fid := fieldID(len(s.c.fieldNames))
	s.c.fieldNames = append(s.c.fieldNames, name)
	s.c.fieldIdx[name] = fid
	return fid
}

func (s *solver) internStatic(field string) staticID {
	if sid, ok := s.c.staticIdx[field]; ok {
		return sid
	}
	sid := staticID(len(s.c.staticSets))
	s.c.staticSets = append(s.c.staticSets, nil)
	s.staticDeps = append(s.staticDeps, nil)
	s.c.staticIdx[field] = sid
	return sid
}

// fpIntern interns the (obj, field) points-to set slot.
func (s *solver) fpIntern(obj ObjID, fid fieldID) int32 {
	key := fpKeyOf(obj, fid)
	if si, ok := s.c.fpIdx[key]; ok {
		return si
	}
	si := int32(len(s.c.fpSets))
	s.c.fpSets = append(s.c.fpSets, nil)
	s.fpDeps = append(s.fpDeps, nil)
	s.c.fpIdx[key] = si
	return si
}

// internMctx interns a method context and allocates its register block.
func (s *solver) internMctx(mid methodID, recv ObjID) (mctxID, bool) {
	key := mctxKeyOf(mid, recv)
	if mc, ok := s.c.mctxIdx[key]; ok {
		return mc, false
	}
	mc := mctxID(len(s.c.mctxs))
	info := mctxInfo{method: mid, recv: recv, varBase: -1}
	if m := s.c.methodOf[mid]; m != nil && !m.Abstract {
		info.m = m
		info.nregs = int32(m.NumRegs)
		info.varBase = varID(len(s.c.varPts))
		for i := 0; i < m.NumRegs; i++ {
			v := varID(len(s.c.parent))
			s.c.varPts = append(s.c.varPts, nil)
			s.c.varDelta = append(s.c.varDelta, nil)
			s.c.parent = append(s.c.parent, v)
			s.inWork = append(s.inWork, false)
			s.copyOut = append(s.copyOut, nil)
			s.loads = append(s.loads, nil)
			s.stores = append(s.stores, nil)
			s.storeSrcs = append(s.storeSrcs, nil)
			s.invokes = append(s.invokes, nil)
			s.spawns = append(s.spawns, nil)
		}
	}
	s.c.mctxs = append(s.c.mctxs, info)
	s.c.mctxIdx[key] = mc
	s.c.methodMctxs[mid] = append(s.c.methodMctxs[mid], mc)
	return mc, true
}

// heapCtxOf derives the heap context for allocations analyzed under
// receiver recv: [recv.Site | recv.Ctx] truncated to k-1 sites. Cached
// per receiver — every method context under the same receiver shares it.
func (s *solver) heapCtxOf(recv ObjID) string {
	if recv == NoRecv || s.opts.K <= 1 {
		return ""
	}
	for int(recv) >= len(s.hctx) {
		s.hctx = append(s.hctx, "")
		s.hctxOK = append(s.hctxOK, false)
	}
	if s.hctxOK[recv] {
		return s.hctx[recv]
	}
	ro := s.c.objs[recv]
	parts := []string{ro.Site}
	if ro.Ctx != "" {
		parts = append(parts, strings.Split(ro.Ctx, "|")...)
	}
	if len(parts) > s.opts.K-1 {
		parts = parts[:s.opts.K-1]
	}
	h := strings.Join(parts, "|")
	s.hctx[recv] = h
	s.hctxOK[recv] = true
	return h
}

// returnRegsOf lists registers returned by a method (cached per id).
func (s *solver) returnRegsOf(mid methodID, m *ir.Method) []int32 {
	if s.methodRetsOK[mid] {
		return s.methodRets[mid]
	}
	var out []int32
	for _, in := range m.Instrs {
		if in.Op == ir.OpReturn && in.A != ir.NoReg {
			out = append(out, int32(in.A))
		}
	}
	s.methodRets[mid] = out
	s.methodRetsOK[mid] = true
	return out
}

// processMethod installs the constraints of one method context. Returns
// the context id whether it was new or already processed.
func (s *solver) processMethod(mid methodID, recv ObjID) mctxID {
	mc, created := s.internMctx(mid, recv)
	if !created {
		return mc
	}
	m := s.c.mctxs[mc].m
	if m == nil {
		return mc
	}
	base := s.c.mctxs[mc].varBase
	hctx := s.heapCtxOf(recv)
	methodRef := s.c.methodNames[mid]
	vk := func(reg int) varID { return base + varID(reg) }
	for i, in := range m.Instrs {
		switch in.Op {
		case ir.OpNew:
			obj := s.c.internObj(Obj{
				Site:  methodRef + ":" + strconv.Itoa(i),
				Class: in.Type,
				Ctx:   hctx,
			})
			s.addObj(vk(in.A), obj)
		case ir.OpMove:
			s.addCopy(vk(in.B), vk(in.A))
		case ir.OpGetField:
			b := vk(in.B)
			s.loads[b] = append(s.loads[b], loadC{s.internField(in.Field.Name), vk(in.A)})
			s.retrigger(b)
		case ir.OpPutField:
			b, src := vk(in.B), vk(in.A)
			fid := s.internField(in.Field.Name)
			s.stores[b] = append(s.stores[b], storeC{field: int32(fid), src: src})
			s.storeSrcs[src] = append(s.storeSrcs[src], storeSrcC{base: b, field: fid})
			s.retrigger(b)
			s.retrigger(src)
		case ir.OpGetStatic:
			s.addStaticLoad(in.Field.String(), vk(in.A))
		case ir.OpPutStatic:
			s.addStaticStore(vk(in.A), in.Field.String())
		case ir.OpInvoke:
			if s.opts.SkipCall != nil && s.opts.SkipCall(m, i, in) {
				continue
			}
			if s.opts.Factory != nil && in.A != ir.NoReg {
				if cls, ok := s.opts.Factory(m, i, in); ok {
					obj := s.c.internObj(Obj{
						Site:  methodRef + ":" + strconv.Itoa(i),
						Class: cls,
						Ctx:   hctx,
					})
					s.addObj(vk(in.A), obj)
					continue
				}
			}
			if s.opts.Spawner != nil {
				if specs := s.opts.Spawner(m, i, in); len(specs) > 0 {
					for _, spec := range specs {
						var target varID
						if spec.FromArg < 0 {
							target = vk(in.B)
						} else if spec.FromArg < len(in.Args) {
							target = vk(in.Args[spec.FromArg])
						} else {
							continue
						}
						s.spawns[target] = append(s.spawns[target], spawnC{mc, int32(i), spec})
						s.retrigger(target)
					}
					continue // spawn sites are not synchronous calls
				}
			}
			b := vk(in.B)
			s.invokes[b] = append(s.invokes[b], invokeC{mc, int32(i)})
			s.retrigger(b)
		case ir.OpInvokeStatic:
			if s.opts.SkipCall != nil && s.opts.SkipCall(m, i, in) {
				continue
			}
			s.linkStaticCall(mc, base, i, in)
		case ir.OpReturn:
			// Handled at call sites via return-reg linking.
		}
	}
	return mc
}

// addCalleeEdge records the context-sensitive call edge (dedup'd).
func (s *solver) addCalleeEdge(caller mctxID, site int32, callee mctxID) {
	key := edgeKeyOf(caller, site)
	list := s.c.calleeEdges[key]
	for _, e := range list {
		if e == callee {
			return
		}
	}
	s.c.calleeEdges[key] = append(list, callee)
}

// linkStaticCall wires a static call in caller context mc.
func (s *solver) linkStaticCall(mc mctxID, callerBase varID, idx int, in ir.Instr) {
	target := s.h.Resolve(in.Callee.Class, in.Callee.Name)
	if target == nil || target.Abstract {
		return
	}
	tmid := s.internMethod(target)
	recv := s.c.mctxs[mc].recv // statics inherit the caller context
	callee := s.processMethod(tmid, recv)
	s.addCalleeEdge(mc, int32(idx), callee)
	cb := s.c.mctxs[callee].varBase
	if cb < 0 {
		return
	}
	for ai, areg := range in.Args {
		if ai >= target.NumArgs {
			break
		}
		s.addCopy(callerBase+varID(areg), cb+varID(target.ArgReg(ai)))
	}
	if in.A != ir.NoReg {
		for _, rr := range s.returnRegsOf(tmid, target) {
			s.addCopy(cb+varID(rr), callerBase+varID(in.A))
		}
	}
}

// linkVirtualCall wires one resolved virtual dispatch for receiver obj.
func (s *solver) linkVirtualCall(ic invokeC, recvObj ObjID) {
	caller := s.c.mctxs[ic.caller]
	in := caller.m.Instrs[ic.idx]
	cls := s.c.objs[recvObj].Class
	if !s.h.IsSubtypeOf(cls, in.Callee.Class) {
		// The receiver set can contain objects of unrelated types when a
		// variable merges flows; dispatching on them would be spurious.
		return
	}
	target := s.h.Resolve(cls, in.Callee.Name)
	if target == nil || target.Abstract {
		return
	}
	tmid := s.internMethod(target)
	callee := s.processMethod(tmid, recvObj)
	s.addCalleeEdge(ic.caller, ic.idx, callee)
	cb := s.c.mctxs[callee].varBase
	if cb < 0 {
		return
	}
	// Receiver binding.
	s.addObj(cb+varID(target.ThisReg()), recvObj)
	for ai, areg := range in.Args {
		if ai >= target.NumArgs {
			break
		}
		s.addCopy(caller.varBase+varID(areg), cb+varID(target.ArgReg(ai)))
	}
	if in.A != ir.NoReg {
		for _, rr := range s.returnRegsOf(tmid, target) {
			s.addCopy(cb+varID(rr), caller.varBase+varID(in.A))
		}
	}
}

// linkSpawn wires one spawn site to a concrete target object: every
// spec'd method resolvable on the object's class becomes a spawned-thread
// entry context.
func (s *solver) linkSpawn(sc spawnC, target ObjID) {
	caller := s.c.mctxs[sc.caller]
	in := caller.m.Instrs[sc.idx]
	cls := s.c.objs[target].Class
	for _, name := range sc.spec.Methods {
		tm := s.h.Resolve(cls, name)
		if tm == nil || tm.Abstract {
			continue
		}
		tmid := s.internMethod(tm)
		skey := spawnKey{caller: sc.caller, site: sc.idx, tag: int32(sc.spec.Tag), target: tmid, recv: target}
		if s.spawnSeen[skey] {
			continue
		}
		s.spawnSeen[skey] = true
		s.c.spawnEdges = append(s.c.spawnEdges, SpawnEdge{
			CallerMethod: s.c.methodNames[caller.method],
			CallerRecv:   caller.recv,
			Site:         int(sc.idx),
			Tag:          sc.spec.Tag,
			TargetMethod: s.c.methodNames[tmid],
			TargetRecv:   target,
		})
		callee := s.processMethod(tmid, target)
		cb := s.c.mctxs[callee].varBase
		if cb < 0 {
			continue
		}
		s.addObj(cb+varID(tm.ThisReg()), target)
		// Bind the spawn call's arguments positionally (covers
		// sendMessage's Message flowing into handleMessage).
		for ai, areg := range in.Args {
			if ai >= tm.NumArgs {
				break
			}
			s.addCopy(caller.varBase+varID(areg), cb+varID(tm.ArgReg(ai)))
		}
	}
}

// push schedules v (a class representative) for a worklist drain.
func (s *solver) push(v varID) {
	if !s.inWork[v] {
		s.inWork[v] = true
		s.work = append(s.work, v)
	}
}

// addObj adds one object to a var's set, scheduling propagation.
func (s *solver) addObj(v varID, o ObjID) {
	v = s.c.find(v)
	if s.c.varPts[v].add(o) {
		s.c.varDelta[v].add(o)
		s.push(v)
	}
}

// addSet unions set into dst's points-to set with delta tracking.
func (s *solver) addSet(dst varID, set bitset) {
	dst = s.c.find(dst)
	if s.c.varPts[dst].orInto(set, &s.c.varDelta[dst]) > 0 {
		s.push(dst)
	}
}

// retrigger reprocesses constraints hanging off v against its full set.
func (s *solver) retrigger(v varID) {
	v = s.c.find(v)
	if !s.c.varPts[v].empty() {
		s.c.varDelta[v].or(s.c.varPts[v])
		s.push(v)
	}
}

// addCopy installs src ⊆ dst and propagates existing facts.
func (s *solver) addCopy(src, dst varID) {
	src, dst = s.c.find(src), s.c.find(dst)
	if src == dst {
		return // collapsed into the same class: the edge is a tautology
	}
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	if s.copySeen[key] {
		return
	}
	s.copySeen[key] = true
	s.copyOut[src] = append(s.copyOut[src], dst)
	s.copiesSinceCollapse++
	s.addSet(dst, s.c.varPts[src])
}

func (s *solver) addStaticLoad(field string, dst varID) {
	sid := s.internStatic(field)
	s.staticDeps[sid] = append(s.staticDeps[sid], dst)
	s.addSet(dst, s.c.staticSets[sid])
}

func (s *solver) addStaticStore(src varID, field string) {
	sid := s.internStatic(field)
	v := s.c.find(src)
	// A static store rides the value var's store list with a negative
	// field id; growth re-triggers it like any other store constraint.
	s.stores[v] = append(s.stores[v], storeC{field: ^int32(sid)})
	s.staticAddBits(sid, s.c.varPts[v])
}

// staticAddBits unions bits into a static field's set, feeding loads.
func (s *solver) staticAddBits(sid staticID, bits bitset) {
	var delta bitset
	if (&s.c.staticSets[sid]).orInto(bits, &delta) == 0 {
		return
	}
	for _, dst := range s.staticDeps[sid] {
		s.addSet(dst, delta)
	}
}

// fpAddBits unions bits into an instance field's set, feeding loads.
func (s *solver) fpAddBits(si int32, bits bitset) {
	var delta bitset
	if (&s.c.fpSets[si]).orInto(bits, &delta) == 0 {
		return
	}
	for _, dst := range s.fpDeps[si] {
		s.addSet(dst, delta)
	}
}

// run drains the worklist to fixpoint, collapsing copy cycles whenever
// enough new copy edges have accumulated.
func (s *solver) run() {
	for len(s.work) > 0 {
		if s.copiesSinceCollapse >= collapseEvery {
			s.collapseSCCs()
		}
		v := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		v = s.c.find(v)
		if !s.inWork[v] {
			continue // stale entry: drained or merged away
		}
		s.inWork[v] = false
		d := s.c.varDelta[v]
		s.c.varDelta[v] = nil
		if d.empty() {
			continue
		}
		s.c.iterations++
		s.c.deltaObjs += int64(d.count())
		s.drain(v, d)
	}
}

// drain pushes one variable's delta through every constraint attached to
// it, in the same category order as the original map-based solver:
// copies, loads, stores (statics interleaved), store-sources, invokes,
// spawns.
func (s *solver) drain(v varID, d bitset) {
	// Copies.
	cps := s.copyOut[v]
	for i := range cps {
		dst := s.c.find(cps[i])
		if dst == v {
			continue
		}
		if s.c.varPts[dst].orInto(d, &s.c.varDelta[dst]) > 0 {
			s.push(dst)
		}
	}
	// Loads: new base objects feed their field contents into dst.
	lcs := s.loads[v]
	for i := range lcs {
		lc := lcs[i]
		d.forEach(func(base ObjID) {
			si := s.fpIntern(base, lc.field)
			s.fpDeps[si] = appendUniqueVarID(s.fpDeps[si], lc.dst)
			s.addSet(lc.dst, s.c.fpSets[si])
		})
	}
	// Stores where v is the base (or the value var, for statics).
	scs := s.stores[v]
	for i := range scs {
		sc := scs[i]
		if sc.field < 0 {
			s.staticAddBits(^sc.field, d)
			continue
		}
		srcSet := s.c.varPts[s.c.find(sc.src)]
		if srcSet.empty() {
			continue
		}
		d.forEach(func(base ObjID) {
			s.fpAddBits(s.fpIntern(base, sc.field), srcSet)
		})
	}
	// Stores where v is the source: flow new objects into all bases.
	rcs := s.storeSrcs[v]
	for i := range rcs {
		rc := rcs[i]
		baseSet := s.c.varPts[s.c.find(rc.base)]
		baseSet.forEach(func(base ObjID) {
			s.fpAddBits(s.fpIntern(base, rc.field), d)
		})
	}
	// Invokes.
	ics := s.invokes[v]
	for i := range ics {
		ic := ics[i]
		d.forEach(func(recv ObjID) {
			s.linkVirtualCall(ic, recv)
		})
	}
	// Spawns.
	sps := s.spawns[v]
	for i := range sps {
		sc := sps[i]
		d.forEach(func(target ObjID) {
			s.linkSpawn(sc, target)
		})
	}
}

// collapseSCCs finds strongly connected components of the copy graph
// (over current class representatives) with an iterative Tarjan pass
// and merges each multi-node component into its minimum-varID member.
func (s *solver) collapseSCCs() {
	s.copiesSinceCollapse = 0
	n := len(s.c.parent)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	stack := make([]varID, 0, 64)
	type frame struct {
		v  varID
		ei int
	}
	var frames []frame
	var next int32
	for start := 0; start < n; start++ {
		sv := varID(start)
		if index[sv] != 0 || s.c.find(sv) != sv || len(s.copyOut[sv]) == 0 {
			continue
		}
		next++
		index[sv], low[sv] = next, next
		stack = append(stack, sv)
		onStack[sv] = true
		frames = append(frames[:0], frame{sv, 0})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < len(s.copyOut[v]) {
				w := s.c.find(s.copyOut[v][f.ei])
				f.ei++
				if w == v {
					continue
				}
				if index[w] == 0 {
					next++
					index[w], low[w] = next, next
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := frames[len(frames)-1].v; low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				top := len(stack)
				for stack[top-1] != v {
					top--
				}
				comp := stack[top:]
				for _, w := range comp {
					onStack[w] = false
				}
				if len(comp) > 1 {
					s.unionComp(comp)
				}
				stack = stack[:top]
			}
		}
	}
}

// unionComp merges a copy cycle into its minimum-varID member: sets,
// deltas, and constraint lists all move to the representative, and the
// representative is fully re-triggered so merged constraints observe
// the union.
func (s *solver) unionComp(comp []varID) {
	rep := comp[0]
	for _, w := range comp {
		if w < rep {
			rep = w
		}
	}
	for _, w := range comp {
		if w == rep {
			continue
		}
		s.c.parent[w] = rep
		s.c.varPts[rep].or(s.c.varPts[w])
		s.c.varPts[w] = nil
		s.c.varDelta[rep].or(s.c.varDelta[w])
		s.c.varDelta[w] = nil
		s.copyOut[rep] = append(s.copyOut[rep], s.copyOut[w]...)
		s.copyOut[w] = nil
		s.loads[rep] = append(s.loads[rep], s.loads[w]...)
		s.loads[w] = nil
		s.stores[rep] = append(s.stores[rep], s.stores[w]...)
		s.stores[w] = nil
		s.storeSrcs[rep] = append(s.storeSrcs[rep], s.storeSrcs[w]...)
		s.storeSrcs[w] = nil
		s.invokes[rep] = append(s.invokes[rep], s.invokes[w]...)
		s.invokes[w] = nil
		s.spawns[rep] = append(s.spawns[rep], s.spawns[w]...)
		s.spawns[w] = nil
		s.inWork[w] = false
	}
	// Normalize the merged copy list: resolve through find, drop
	// self-loops, dedup in place.
	out := s.copyOut[rep][:0]
	seen := make(map[varID]bool, len(s.copyOut[rep]))
	for _, d0 := range s.copyOut[rep] {
		d := s.c.find(d0)
		if d == rep || seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	s.copyOut[rep] = out
	// Re-trigger the representative against the merged set so every
	// adopted constraint sees the full union.
	if !s.c.varPts[rep].empty() {
		s.c.varDelta[rep].or(s.c.varPts[rep])
		s.push(rep)
	}
}

func appendUniqueVarID(list []varID, v varID) []varID {
	for _, e := range list {
		if e == v {
			return list
		}
	}
	return append(list, v)
}
