// Package pointsto implements a k-object-sensitive, flow-insensitive,
// inclusion-based (Andersen-style) points-to analysis with an on-the-fly
// call graph — the same analysis family Chord contributes to the paper's
// pipeline (§5, "k-object-sensitive-analysis" with default k=2).
//
// Abstract objects are allocation sites qualified by a heap context: the
// chain of up to k-1 allocation sites of the receivers under which the
// allocation was analyzed. Instance methods are analyzed once per
// abstract receiver object (object sensitivity); static methods inherit
// the caller's context.
package pointsto

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"nadroid/internal/cha"
	"nadroid/internal/ir"
	"nadroid/internal/obs"
)

// ObjID identifies an abstract heap object (allocation site + context).
type ObjID int

// Obj describes an abstract object.
type Obj struct {
	// Site is "method:index" for real allocations or "synthetic:<name>"
	// for component instances the framework allocates.
	Site string
	// Class is the allocated class.
	Class string
	// Ctx is the heap context: up to k-1 receiver allocation sites,
	// outermost last, joined with '|'. "" is the empty context.
	Ctx string
}

func (o Obj) String() string {
	if o.Ctx == "" {
		return o.Site
	}
	return o.Site + "[" + o.Ctx + "]"
}

// Options configures the solver.
type Options struct {
	// K is the object-sensitivity depth; the paper's default is 2
	// (receiver chain of length 1 qualifying each allocation).
	K int
	// SkipCall lets threadification cut posting-API call sites out of
	// the call graph (they became thread spawns).
	SkipCall func(m *ir.Method, idx int, in ir.Instr) bool
	// Spawner classifies invokes as thread-spawn sites (posting APIs,
	// Thread.start, listener registrations). A spawn site does not
	// transfer control synchronously; instead the solver creates callee
	// contexts for the spec'd methods on the target object and records
	// SpawnEdges threadification consumes.
	Spawner SpawnOracle
	// Factory classifies invokes that behave like allocations (framework
	// factories such as PowerManager.newWakeLock or findViewById): the
	// call site is modeled as an allocation of the returned class.
	Factory FactoryOracle
}

// FactoryOracle returns the allocated class for factory-like invokes, or
// ok=false for ordinary calls.
type FactoryOracle func(caller *ir.Method, idx int, in ir.Instr) (class string, ok bool)

// SpawnSpec describes one family of threads created by a spawn site.
type SpawnSpec struct {
	// Tag is an opaque client tag (threadify stores its PostKind here).
	Tag int
	// FromArg selects the register whose pointees become the spawned
	// thread's receiver: -1 for the invoke receiver, else an arg index.
	FromArg int
	// Methods are candidate entry method names resolved against the
	// target object's class; unresolved names are skipped.
	Methods []string
}

// SpawnOracle classifies an invoke instruction; nil/empty means the call
// is an ordinary call.
type SpawnOracle func(caller *ir.Method, idx int, in ir.Instr) []SpawnSpec

// SpawnEdge is one resolved spawn: the spawn site, the client tag, and
// the entry method context of the spawned thread.
type SpawnEdge struct {
	CallerMethod string
	CallerRecv   ObjID
	Site         int
	Tag          int
	TargetMethod string
	TargetRecv   ObjID
}

// CallEdge is one context-sensitive call-graph edge.
type CallEdge struct {
	CallerMethod string
	CallerRecv   ObjID
	Site         int
	CalleeMethod string
	CalleeRecv   ObjID
}

// Entry seeds the solver: an entry method plus the abstract objects its
// receiver may point to. Static entry methods use no receiver.
type Entry struct {
	Method    *ir.Method
	Receivers []ObjID
}

// Result is the solved points-to state.
type Result struct {
	h    *cha.Hierarchy
	objs []Obj
	// varPts maps (method-context, reg) to its points-to set.
	varPts map[varKey]objSet
	// mctxs enumerates analyzed method contexts.
	mctxs map[mctxKey]bool
	// calleeEdges records resolved call edges: (caller mctx, site idx) ->
	// callee mctx, for clients that need a context-sensitive call graph.
	calleeEdges map[edgeKey][]mctxKey
	// fieldPts maps (obj, field name) to pointees.
	fieldPts map[fieldKey]objSet
	// staticPts maps "Class.field" to pointees.
	staticPts map[string]objSet
	// spawnEdges records resolved thread-spawn sites.
	spawnEdges []SpawnEdge
	spawnSeen  map[SpawnEdge]bool
	// iterations is the worklist items drained by the solve.
	iterations int
}

type objSet map[ObjID]struct{}

type varKey struct {
	method string
	recv   ObjID // receiver object defining the context; -1 for none
	reg    int
}

type mctxKey struct {
	method string
	recv   ObjID
}

type edgeKey struct {
	caller mctxKey
	site   int
}

type fieldKey struct {
	obj   ObjID
	field string
}

// NoRecv is the receiver value for context-free (static/entry) contexts.
const NoRecv = ObjID(-1)

// solver carries mutable analysis state.
type solver struct {
	h    *cha.Hierarchy
	opts Options
	res  *Result

	objIdx map[Obj]ObjID
	// copyEdges propagate points-to sets var -> var.
	copyEdges map[varKey][]varKey
	// loads[base] and stores[base] are field constraints re-triggered
	// when base grows.
	loads  map[varKey][]fieldConstraint
	stores map[varKey][]fieldConstraint
	// invokes[base] are call sites re-triggered when base grows.
	invokes map[varKey][]invokeConstraint
	// storeSrcs[src] lists (base, field) stores whose value is src.
	storeSrcs map[varKey][]storeSource
	// spawns[v] lists spawn constraints triggered when v grows.
	spawns map[varKey][]spawnConstraint
	// fieldLoadInto[fk] lists destination vars fed by a field.
	fieldLoadInto map[fieldKey][]varKey
	// work is the worklist of vars whose sets grew.
	work []varKey
	// delta holds pending additions per var.
	delta map[varKey]objSet
	// processed method contexts.
	done map[mctxKey]bool
	// origins caches per-method origin info for receiver sharpening.
	origins map[string]*ir.OriginInfo
}

type fieldConstraint struct {
	field string
	other varKey // dst for loads, src for stores
}

type invokeConstraint struct {
	caller mctxKey
	idx    int
}

type spawnConstraint struct {
	caller mctxKey
	idx    int
	spec   SpawnSpec
}

// Solve runs the analysis from the given entries.
func Solve(h *cha.Hierarchy, entries []Entry, opts Options) *Result {
	return SolveWithSynthetics(h, nil, entries, opts)
}

// SolveStats summarizes the work a solve did.
type SolveStats struct {
	// Iterations is the number of worklist items drained to fixpoint.
	Iterations int
	// VarFacts is the total points-to tuple count over all variables.
	VarFacts int
	// Objects is the abstract-object count (synthetics included).
	Objects int
	// MCtxs is the number of analyzed method contexts.
	MCtxs int
}

// Stats recomputes the solve summary from the result (O(vars)).
func (r *Result) Stats() SolveStats {
	st := SolveStats{Iterations: r.iterations, Objects: len(r.objs), MCtxs: len(r.mctxs)}
	for _, set := range r.varPts {
		st.VarFacts += len(set)
	}
	return st
}

// internObj interns an abstract object, returning its stable id.
func (r *Result) internObj(o Obj, s *solver) ObjID {
	if id, ok := s.objIdx[o]; ok {
		return id
	}
	id := ObjID(len(r.objs))
	r.objs = append(r.objs, o)
	s.objIdx[o] = id
	return id
}

// SolveWithSynthetics runs Solve with pre-interned synthetic objects:
// synths[i] is assigned ObjID(i), letting threadification seed entry
// receivers (component instances "allocated by the framework") before
// the solve.
func SolveWithSynthetics(h *cha.Hierarchy, synths []Obj, entries []Entry, opts Options) *Result {
	return SolveWithSyntheticsContext(context.Background(), h, synths, entries, opts)
}

// SolveWithSyntheticsContext is SolveWithSynthetics under an
// observability context: the solve runs inside a "pointsto.solve" span
// and reports iteration/fact/object counts as pipeline counters.
func SolveWithSyntheticsContext(ctx context.Context, h *cha.Hierarchy, synths []Obj, entries []Entry, opts Options) *Result {
	_, span := obs.Start(ctx, "pointsto.solve", obs.KV("k", opts.K), obs.KV("entries", len(entries)))
	res := solveWithSynthetics(h, synths, entries, opts)
	st := res.Stats()
	span.SetAttr("iterations", st.Iterations)
	span.SetAttr("var_facts", st.VarFacts)
	span.SetAttr("objects", st.Objects)
	span.SetAttr("mctxs", st.MCtxs)
	span.End()
	obs.Add(ctx, "pointsto_iterations", int64(st.Iterations))
	obs.Add(ctx, "pointsto_var_facts", int64(st.VarFacts))
	obs.Add(ctx, "pointsto_objects", int64(st.Objects))
	obs.Add(ctx, "pointsto_mctxs", int64(st.MCtxs))
	return res
}

func solveWithSynthetics(h *cha.Hierarchy, synths []Obj, entries []Entry, opts Options) *Result {
	if opts.K < 1 {
		opts.K = 2
	}
	res := &Result{
		h:           h,
		varPts:      make(map[varKey]objSet),
		mctxs:       make(map[mctxKey]bool),
		calleeEdges: make(map[edgeKey][]mctxKey),
		fieldPts:    make(map[fieldKey]objSet),
		staticPts:   make(map[string]objSet),
		spawnSeen:   make(map[SpawnEdge]bool),
	}
	s := &solver{
		h:             h,
		opts:          opts,
		res:           res,
		objIdx:        make(map[Obj]ObjID),
		copyEdges:     make(map[varKey][]varKey),
		loads:         make(map[varKey][]fieldConstraint),
		stores:        make(map[varKey][]fieldConstraint),
		invokes:       make(map[varKey][]invokeConstraint),
		storeSrcs:     make(map[varKey][]storeSource),
		spawns:        make(map[varKey][]spawnConstraint),
		fieldLoadInto: make(map[fieldKey][]varKey),
		delta:         make(map[varKey]objSet),
		done:          make(map[mctxKey]bool),
		origins:       make(map[string]*ir.OriginInfo),
	}
	for _, o := range synths {
		res.internObj(o, s)
	}
	for _, e := range entries {
		if e.Method == nil || e.Method.Abstract {
			continue
		}
		if len(e.Receivers) == 0 {
			s.processMethod(mctxKey{method: e.Method.Ref(), recv: NoRecv})
			continue
		}
		for _, recv := range e.Receivers {
			mc := mctxKey{method: e.Method.Ref(), recv: recv}
			s.processMethod(mc)
			s.addObj(varKey{e.Method.Ref(), recv, e.Method.ThisReg()}, recv)
		}
	}
	s.run()
	return res
}

// heapCtxOf derives the heap context for allocations analyzed under
// receiver recv: [recv.Site | recv.Ctx] truncated to k-1 sites.
func (s *solver) heapCtxOf(recv ObjID) string {
	if recv == NoRecv || s.opts.K <= 1 {
		return ""
	}
	ro := s.res.objs[recv]
	parts := []string{ro.Site}
	if ro.Ctx != "" {
		parts = append(parts, strings.Split(ro.Ctx, "|")...)
	}
	if len(parts) > s.opts.K-1 {
		parts = parts[:s.opts.K-1]
	}
	return strings.Join(parts, "|")
}

// processMethod installs the constraints of one method context.
func (s *solver) processMethod(mc mctxKey) {
	if s.done[mc] {
		return
	}
	s.done[mc] = true
	s.res.mctxs[mc] = true
	m, err := s.h.MethodByRef(mc.method)
	if err != nil || m.Abstract {
		return
	}
	oi := s.originOf(m)
	hctx := s.heapCtxOf(mc.recv)
	vk := func(reg int) varKey { return varKey{mc.method, mc.recv, reg} }
	for i, in := range m.Instrs {
		switch in.Op {
		case ir.OpNew:
			obj := s.res.internObj(Obj{
				Site:  fmt.Sprintf("%s:%d", mc.method, i),
				Class: in.Type,
				Ctx:   hctx,
			}, s)
			s.addObj(vk(in.A), obj)
		case ir.OpMove:
			s.addCopy(vk(in.B), vk(in.A))
		case ir.OpGetField:
			base := vk(in.B)
			s.loads[base] = append(s.loads[base], fieldConstraint{in.Field.Name, vk(in.A)})
			s.retrigger(base)
		case ir.OpPutField:
			base, src := vk(in.B), vk(in.A)
			s.stores[base] = append(s.stores[base], fieldConstraint{in.Field.Name, src})
			s.storeSrcs[src] = append(s.storeSrcs[src], storeSource{baseVar: base, field: in.Field.Name})
			s.retrigger(base)
			s.retrigger(src)
		case ir.OpGetStatic:
			s.addStaticLoad(in.Field.String(), vk(in.A))
		case ir.OpPutStatic:
			s.addStaticStore(vk(in.A), in.Field.String())
		case ir.OpInvoke:
			if s.opts.SkipCall != nil && s.opts.SkipCall(m, i, in) {
				continue
			}
			if s.opts.Factory != nil && in.A != ir.NoReg {
				if cls, ok := s.opts.Factory(m, i, in); ok {
					obj := s.res.internObj(Obj{
						Site:  fmt.Sprintf("%s:%d", mc.method, i),
						Class: cls,
						Ctx:   hctx,
					}, s)
					s.addObj(vk(in.A), obj)
					continue
				}
			}
			if s.opts.Spawner != nil {
				if specs := s.opts.Spawner(m, i, in); len(specs) > 0 {
					for _, spec := range specs {
						var target varKey
						if spec.FromArg < 0 {
							target = vk(in.B)
						} else if spec.FromArg < len(in.Args) {
							target = vk(in.Args[spec.FromArg])
						} else {
							continue
						}
						s.spawns[target] = append(s.spawns[target], spawnConstraint{mc, i, spec})
						s.retrigger(target)
					}
					continue // spawn sites are not synchronous calls
				}
			}
			base := vk(in.B)
			s.invokes[base] = append(s.invokes[base], invokeConstraint{mc, i})
			s.retrigger(base)
		case ir.OpInvokeStatic:
			if s.opts.SkipCall != nil && s.opts.SkipCall(m, i, in) {
				continue
			}
			s.linkStaticCall(mc, m, i, in)
		case ir.OpReturn:
			// Handled at call sites via returnVar linking.
		}
	}
	_ = oi
}

// returnVarsOf lists registers returned by a method.
func returnRegsOf(m *ir.Method) []int {
	var out []int
	for _, in := range m.Instrs {
		if in.Op == ir.OpReturn && in.A != ir.NoReg {
			out = append(out, in.A)
		}
	}
	return out
}

func (s *solver) originOf(m *ir.Method) *ir.OriginInfo {
	oi, ok := s.origins[m.Ref()]
	if !ok {
		oi = ir.ComputeOrigins(m)
		s.origins[m.Ref()] = oi
	}
	return oi
}

// linkStaticCall wires a static call in caller context mc.
func (s *solver) linkStaticCall(mc mctxKey, m *ir.Method, idx int, in ir.Instr) {
	target := s.h.Resolve(in.Callee.Class, in.Callee.Name)
	if target == nil || target.Abstract {
		return
	}
	callee := mctxKey{method: target.Ref(), recv: mc.recv} // statics inherit caller ctx
	s.processMethod(callee)
	s.res.calleeEdges[edgeKey{mc, idx}] = appendUniqueMctx(s.res.calleeEdges[edgeKey{mc, idx}], callee)
	for ai, areg := range in.Args {
		if ai >= target.NumArgs {
			break
		}
		s.addCopy(varKey{mc.method, mc.recv, areg}, varKey{callee.method, callee.recv, target.ArgReg(ai)})
	}
	if in.A != ir.NoReg {
		for _, rr := range returnRegsOf(target) {
			s.addCopy(varKey{callee.method, callee.recv, rr}, varKey{mc.method, mc.recv, in.A})
		}
	}
}

// linkVirtualCall wires one resolved virtual dispatch for receiver obj.
func (s *solver) linkVirtualCall(ic invokeConstraint, recvObj ObjID) {
	caller, err := s.h.MethodByRef(ic.caller.method)
	if err != nil {
		return
	}
	in := caller.Instrs[ic.idx]
	cls := s.res.objs[recvObj].Class
	if !s.h.IsSubtypeOf(cls, in.Callee.Class) {
		// The receiver set can contain objects of unrelated types when a
		// variable merges flows; dispatching on them would be spurious.
		return
	}
	target := s.h.Resolve(cls, in.Callee.Name)
	if target == nil || target.Abstract {
		return
	}
	callee := mctxKey{method: target.Ref(), recv: recvObj}
	s.processMethod(callee)
	s.res.calleeEdges[edgeKey{ic.caller, ic.idx}] = appendUniqueMctx(s.res.calleeEdges[edgeKey{ic.caller, ic.idx}], callee)
	// Receiver binding.
	s.addObj(varKey{callee.method, callee.recv, target.ThisReg()}, recvObj)
	for ai, areg := range in.Args {
		if ai >= target.NumArgs {
			break
		}
		s.addCopy(varKey{ic.caller.method, ic.caller.recv, areg}, varKey{callee.method, callee.recv, target.ArgReg(ai)})
	}
	if in.A != ir.NoReg {
		for _, rr := range returnRegsOf(target) {
			s.addCopy(varKey{callee.method, callee.recv, rr}, varKey{ic.caller.method, ic.caller.recv, in.A})
		}
	}
}

func appendUniqueMctx(list []mctxKey, mc mctxKey) []mctxKey {
	for _, e := range list {
		if e == mc {
			return list
		}
	}
	return append(list, mc)
}

// addCopy installs src ⊆ dst and propagates existing facts.
func (s *solver) addCopy(src, dst varKey) {
	for _, e := range s.copyEdges[src] {
		if e == dst {
			return
		}
	}
	s.copyEdges[src] = append(s.copyEdges[src], dst)
	for o := range s.res.varPts[src] {
		s.addObj(dst, o)
	}
}

func (s *solver) addStaticLoad(field string, dst varKey) {
	fk := fieldKey{obj: -2, field: field} // -2 namespace for statics
	s.fieldLoadInto[fk] = append(s.fieldLoadInto[fk], dst)
	for o := range s.res.staticPts[field] {
		s.addObj(dst, o)
	}
}

func (s *solver) addStaticStore(src varKey, field string) {
	// Model a static field as a copy target keyed by name.
	s.stores[src] = append(s.stores[src], fieldConstraint{field: "static:" + field, other: varKey{}})
	for o := range s.res.varPts[src] {
		s.addToStatic(field, o)
	}
	// Also re-trigger on growth: handled in flush via stores with
	// "static:" prefix.
}

func (s *solver) addToStatic(field string, o ObjID) {
	set, ok := s.res.staticPts[field]
	if !ok {
		set = make(objSet)
		s.res.staticPts[field] = set
	}
	if _, has := set[o]; has {
		return
	}
	set[o] = struct{}{}
	fk := fieldKey{obj: -2, field: field}
	for _, dst := range s.fieldLoadInto[fk] {
		s.addObj(dst, o)
	}
}

// addObj adds one object to a var's set, scheduling propagation.
func (s *solver) addObj(v varKey, o ObjID) {
	set, ok := s.res.varPts[v]
	if !ok {
		set = make(objSet)
		s.res.varPts[v] = set
	}
	if _, has := set[o]; has {
		return
	}
	set[o] = struct{}{}
	d, ok := s.delta[v]
	if !ok {
		d = make(objSet)
		s.delta[v] = d
		s.work = append(s.work, v)
	}
	d[o] = struct{}{}
}

// addToField adds o to (obj, field), feeding dependent loads.
func (s *solver) addToField(obj ObjID, field string, o ObjID) {
	fk := fieldKey{obj, field}
	set, ok := s.res.fieldPts[fk]
	if !ok {
		set = make(objSet)
		s.res.fieldPts[fk] = set
	}
	if _, has := set[o]; has {
		return
	}
	set[o] = struct{}{}
	for _, dst := range s.fieldLoadInto[fk] {
		s.addObj(dst, o)
	}
}

// retrigger reprocesses constraints hanging off v against its full set.
func (s *solver) retrigger(v varKey) {
	if set, ok := s.res.varPts[v]; ok && len(set) > 0 {
		d, pending := s.delta[v]
		if !pending {
			d = make(objSet)
			s.delta[v] = d
			s.work = append(s.work, v)
		}
		for o := range set {
			d[o] = struct{}{}
		}
	}
}

// run drains the worklist to fixpoint.
func (s *solver) run() {
	for len(s.work) > 0 {
		s.res.iterations++
		v := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		d := s.delta[v]
		delete(s.delta, v)
		if len(d) == 0 {
			continue
		}
		// Copies.
		for _, dst := range s.copyEdges[v] {
			for o := range d {
				s.addObj(dst, o)
			}
		}
		// Loads: new base objects feed their field contents into dst.
		for _, lc := range s.loads[v] {
			for base := range d {
				fk := fieldKey{base, lc.field}
				s.fieldLoadInto[fk] = appendUniqueVar(s.fieldLoadInto[fk], lc.other)
				for o := range s.res.fieldPts[fk] {
					s.addObj(lc.other, o)
				}
			}
		}
		// Stores where v is the base: everything in src flows into field.
		for _, sc := range s.stores[v] {
			if strings.HasPrefix(sc.field, "static:") {
				for o := range d {
					s.addToStatic(strings.TrimPrefix(sc.field, "static:"), o)
				}
				continue
			}
			for base := range d {
				for o := range s.res.varPts[sc.other] {
					s.addToField(base, sc.field, o)
				}
			}
		}
		// Stores where v is the source: flow new objects into all bases.
		for _, rc := range s.storeSrcs[v] {
			for base := range s.res.varPts[rc.baseVar] {
				for o := range d {
					s.addToField(base, rc.field, o)
				}
			}
		}
		// Invokes.
		for _, ic := range s.invokes[v] {
			for recv := range d {
				s.linkVirtualCall(ic, recv)
			}
		}
		// Spawns.
		for _, sc := range s.spawns[v] {
			for target := range d {
				s.linkSpawn(sc, target)
			}
		}
	}
}

// linkSpawn wires one spawn site to a concrete target object: every
// spec'd method resolvable on the object's class becomes a spawned-thread
// entry context.
func (s *solver) linkSpawn(sc spawnConstraint, target ObjID) {
	caller, err := s.h.MethodByRef(sc.caller.method)
	if err != nil {
		return
	}
	in := caller.Instrs[sc.idx]
	cls := s.res.objs[target].Class
	for _, name := range sc.spec.Methods {
		tm := s.h.Resolve(cls, name)
		if tm == nil || tm.Abstract {
			continue
		}
		callee := mctxKey{method: tm.Ref(), recv: target}
		edge := SpawnEdge{
			CallerMethod: sc.caller.method,
			CallerRecv:   sc.caller.recv,
			Site:         sc.idx,
			Tag:          sc.spec.Tag,
			TargetMethod: tm.Ref(),
			TargetRecv:   target,
		}
		if s.res.spawnSeen[edge] {
			continue
		}
		s.res.spawnSeen[edge] = true
		s.res.spawnEdges = append(s.res.spawnEdges, edge)
		s.processMethod(callee)
		s.addObj(varKey{callee.method, callee.recv, tm.ThisReg()}, target)
		// Bind the spawn call's arguments positionally (covers
		// sendMessage's Message flowing into handleMessage).
		for ai, areg := range in.Args {
			if ai >= tm.NumArgs {
				break
			}
			s.addCopy(varKey{sc.caller.method, sc.caller.recv, areg}, varKey{callee.method, callee.recv, tm.ArgReg(ai)})
		}
	}
}

// storeSource tracks that v appears as the stored value of (base, field).
type storeSource struct {
	baseVar varKey
	field   string
}

func appendUniqueVar(list []varKey, v varKey) []varKey {
	for _, e := range list {
		if e == v {
			return list
		}
	}
	return append(list, v)
}

// --- Result accessors -------------------------------------------------

// Objects returns the interned object table.
func (r *Result) Objects() []Obj { return r.objs }

// Obj returns the descriptor for id.
func (r *Result) Obj(id ObjID) Obj { return r.objs[id] }

// PointsTo returns the sorted points-to set of register reg of method
// (by canonical ref) under the context keyed by receiver object recv.
func (r *Result) PointsTo(method string, recv ObjID, reg int) []ObjID {
	set := r.varPts[varKey{method, recv, reg}]
	out := make([]ObjID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PointsToAnyCtx unions the points-to sets of reg across every analyzed
// context of method.
func (r *Result) PointsToAnyCtx(method string, reg int) []ObjID {
	seen := make(objSet)
	for mc := range r.mctxs {
		if mc.method != method {
			continue
		}
		for o := range r.varPts[varKey{method, mc.recv, reg}] {
			seen[o] = struct{}{}
		}
	}
	out := make([]ObjID, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContextsOf returns the receiver objects under which method was
// analyzed (NoRecv for context-free).
func (r *Result) ContextsOf(method string) []ObjID {
	var out []ObjID
	for mc := range r.mctxs {
		if mc.method == method {
			out = append(out, mc.recv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reachable reports whether method was analyzed under any context.
func (r *Result) Reachable(method string) bool {
	return len(r.ContextsOf(method)) > 0
}

// ReachableMethods lists every analyzed method ref, sorted.
func (r *Result) ReachableMethods() []string {
	seen := make(map[string]bool)
	for mc := range r.mctxs {
		seen[mc.method] = true
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// FieldPointsTo returns the pointees of (obj, field), sorted.
func (r *Result) FieldPointsTo(obj ObjID, field string) []ObjID {
	set := r.fieldPts[fieldKey{obj, field}]
	out := make([]ObjID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StaticPointsTo returns the pointees of a static field "Class.name".
func (r *Result) StaticPointsTo(field string) []ObjID {
	set := r.staticPts[field]
	out := make([]ObjID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CalleesAt returns callee method refs resolved at (method, recv, site).
func (r *Result) CalleesAt(method string, recv ObjID, site int) []string {
	var out []string
	for _, mc := range r.calleeEdges[edgeKey{mctxKey{method, recv}, site}] {
		out = append(out, mc.method)
	}
	sort.Strings(out)
	return out
}

// CalleeContextsAt returns (calleeMethod, calleeRecv) pairs at a site.
func (r *Result) CalleeContextsAt(method string, recv ObjID, site int) []struct {
	Method string
	Recv   ObjID
} {
	var out []struct {
		Method string
		Recv   ObjID
	}
	for _, mc := range r.calleeEdges[edgeKey{mctxKey{method, recv}, site}] {
		out = append(out, struct {
			Method string
			Recv   ObjID
		}{mc.Method(), mc.recv})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Method != out[j].Method {
			return out[i].Method < out[j].Method
		}
		return out[i].Recv < out[j].Recv
	})
	return out
}

// Method exposes the method of an mctxKey (for CalleeContextsAt).
func (mc mctxKey) Method() string { return mc.method }

// SpawnEdges returns the resolved spawn edges in discovery order.
func (r *Result) SpawnEdges() []SpawnEdge { return r.spawnEdges }

// CallEdges flattens the context-sensitive call graph. Edges are sorted
// for deterministic consumption.
func (r *Result) CallEdges() []CallEdge {
	var out []CallEdge
	for ek, callees := range r.calleeEdges {
		for _, mc := range callees {
			out = append(out, CallEdge{
				CallerMethod: ek.caller.method,
				CallerRecv:   ek.caller.recv,
				Site:         ek.site,
				CalleeMethod: mc.method,
				CalleeRecv:   mc.recv,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.CallerMethod != b.CallerMethod {
			return a.CallerMethod < b.CallerMethod
		}
		if a.CallerRecv != b.CallerRecv {
			return a.CallerRecv < b.CallerRecv
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if a.CalleeMethod != b.CalleeMethod {
			return a.CalleeMethod < b.CalleeMethod
		}
		return a.CalleeRecv < b.CalleeRecv
	})
	return out
}

// Hierarchy returns the class hierarchy the result was solved against.
func (r *Result) Hierarchy() *cha.Hierarchy { return r.h }
