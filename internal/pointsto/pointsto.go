// Package pointsto implements a k-object-sensitive, flow-insensitive,
// inclusion-based (Andersen-style) points-to analysis with an on-the-fly
// call graph — the same analysis family Chord contributes to the paper's
// pipeline (§5, "k-object-sensitive-analysis" with default k=2).
//
// Abstract objects are allocation sites qualified by a heap context: the
// chain of up to k-1 allocation sites of the receivers under which the
// allocation was analyzed. Instance methods are analyzed once per
// abstract receiver object (object sensitivity); static methods inherit
// the caller's context.
//
// Internally the solver runs on a dense, interned constraint graph:
// method refs, method contexts, field names, and static fields become
// int32 handles; each method context owns a contiguous block of variable
// IDs (one per register); points-to sets are word-packed bitsets with
// difference propagation (each worklist drain pushes only the delta);
// and copy-edge cycles are collapsed online through a path-compressed
// union-find so context-cloned copy chains stop re-propagating.
package pointsto

import (
	"context"
	"sort"

	"nadroid/internal/cha"
	"nadroid/internal/ir"
	"nadroid/internal/obs"
)

// ObjID identifies an abstract heap object (allocation site + context).
type ObjID int

// Obj describes an abstract object.
type Obj struct {
	// Site is "method:index" for real allocations or "synthetic:<name>"
	// for component instances the framework allocates.
	Site string
	// Class is the allocated class.
	Class string
	// Ctx is the heap context: up to k-1 receiver allocation sites,
	// outermost last, joined with '|'. "" is the empty context.
	Ctx string
}

func (o Obj) String() string {
	if o.Ctx == "" {
		return o.Site
	}
	return o.Site + "[" + o.Ctx + "]"
}

// Options configures the solver.
type Options struct {
	// K is the object-sensitivity depth; the paper's default is 2
	// (receiver chain of length 1 qualifying each allocation).
	K int
	// SkipCall lets threadification cut posting-API call sites out of
	// the call graph (they became thread spawns).
	SkipCall func(m *ir.Method, idx int, in ir.Instr) bool
	// Spawner classifies invokes as thread-spawn sites (posting APIs,
	// Thread.start, listener registrations). A spawn site does not
	// transfer control synchronously; instead the solver creates callee
	// contexts for the spec'd methods on the target object and records
	// SpawnEdges threadification consumes.
	Spawner SpawnOracle
	// Factory classifies invokes that behave like allocations (framework
	// factories such as PowerManager.newWakeLock or findViewById): the
	// call site is modeled as an allocation of the returned class.
	Factory FactoryOracle
}

// FactoryOracle returns the allocated class for factory-like invokes, or
// ok=false for ordinary calls.
type FactoryOracle func(caller *ir.Method, idx int, in ir.Instr) (class string, ok bool)

// SpawnSpec describes one family of threads created by a spawn site.
type SpawnSpec struct {
	// Tag is an opaque client tag (threadify stores its PostKind here).
	Tag int
	// FromArg selects the register whose pointees become the spawned
	// thread's receiver: -1 for the invoke receiver, else an arg index.
	FromArg int
	// Methods are candidate entry method names resolved against the
	// target object's class; unresolved names are skipped.
	Methods []string
}

// SpawnOracle classifies an invoke instruction; nil/empty means the call
// is an ordinary call.
type SpawnOracle func(caller *ir.Method, idx int, in ir.Instr) []SpawnSpec

// SpawnEdge is one resolved spawn: the spawn site, the client tag, and
// the entry method context of the spawned thread.
type SpawnEdge struct {
	CallerMethod string
	CallerRecv   ObjID
	Site         int
	Tag          int
	TargetMethod string
	TargetRecv   ObjID
}

// CallEdge is one context-sensitive call-graph edge.
type CallEdge struct {
	CallerMethod string
	CallerRecv   ObjID
	Site         int
	CalleeMethod string
	CalleeRecv   ObjID
}

// Entry seeds the solver: an entry method plus the abstract objects its
// receiver may point to. Static entry methods use no receiver.
type Entry struct {
	Method    *ir.Method
	Receivers []ObjID
}

// NoRecv is the receiver value for context-free (static/entry) contexts.
const NoRecv = ObjID(-1)

// Result is the solved points-to state. Accessors are safe for
// concurrent use: the union-find is fully flattened when the solve
// finishes, so lookups never mutate shared state.
type Result struct {
	c *core
}

// SolveStats summarizes the work a solve did.
type SolveStats struct {
	// Iterations is the number of worklist items drained to fixpoint.
	Iterations int
	// DeltaObjs is the total number of objects pushed through worklist
	// deltas — the difference-propagation volume (each drain moves only
	// the new objects, not the var's full set).
	DeltaObjs int
	// VarFacts is the total points-to tuple count over all variables.
	VarFacts int
	// Objects is the abstract-object count (synthetics included).
	Objects int
	// MCtxs is the number of analyzed method contexts.
	MCtxs int
}

// Stats recomputes the solve summary from the result (O(vars)).
func (r *Result) Stats() SolveStats {
	c := r.c
	st := SolveStats{
		Iterations: c.iterations,
		DeltaObjs:  int(c.deltaObjs),
		Objects:    len(c.objs),
		MCtxs:      len(c.mctxs),
	}
	for _, mc := range c.mctxs {
		if mc.varBase < 0 {
			continue
		}
		for reg := int32(0); reg < mc.nregs; reg++ {
			st.VarFacts += c.varPts[c.root(mc.varBase+varID(reg))].count()
		}
	}
	return st
}

// Solve runs the analysis from the given entries.
func Solve(h *cha.Hierarchy, entries []Entry, opts Options) *Result {
	return SolveWithSynthetics(h, nil, entries, opts)
}

// SolveWithSynthetics runs Solve with pre-interned synthetic objects:
// synths[i] is assigned ObjID(i), letting threadification seed entry
// receivers (component instances "allocated by the framework") before
// the solve.
func SolveWithSynthetics(h *cha.Hierarchy, synths []Obj, entries []Entry, opts Options) *Result {
	return SolveWithSyntheticsContext(context.Background(), h, synths, entries, opts)
}

// SolveWithSyntheticsContext is SolveWithSynthetics under an
// observability context: the solve runs inside a "pointsto.solve" span
// and reports iteration/delta/fact/object counts as pipeline counters.
func SolveWithSyntheticsContext(ctx context.Context, h *cha.Hierarchy, synths []Obj, entries []Entry, opts Options) *Result {
	_, span := obs.Start(ctx, "pointsto.solve", obs.KV("k", opts.K), obs.KV("entries", len(entries)))
	res := solveWithSynthetics(h, synths, entries, opts)
	st := res.Stats()
	span.SetAttr("iterations", st.Iterations)
	span.SetAttr("delta_objs", st.DeltaObjs)
	span.SetAttr("var_facts", st.VarFacts)
	span.SetAttr("objects", st.Objects)
	span.SetAttr("mctxs", st.MCtxs)
	span.End()
	obs.Add(ctx, "pointsto_iterations", int64(st.Iterations))
	obs.Add(ctx, "pointsto_delta_objs", int64(st.DeltaObjs))
	obs.Add(ctx, "pointsto_var_facts", int64(st.VarFacts))
	obs.Add(ctx, "pointsto_objects", int64(st.Objects))
	obs.Add(ctx, "pointsto_mctxs", int64(st.MCtxs))
	return res
}

// --- Result accessors -------------------------------------------------

// Objects returns the interned object table.
func (r *Result) Objects() []Obj { return r.c.objs }

// Obj returns the descriptor for id.
func (r *Result) Obj(id ObjID) Obj { return r.c.objs[id] }

// varSet returns the points-to bitset of (method, recv, reg), or nil.
func (r *Result) varSet(method string, recv ObjID, reg int) bitset {
	c := r.c
	mid, ok := c.methodIdx[method]
	if !ok {
		return nil
	}
	mc, ok := c.mctxIdx[mctxKeyOf(mid, recv)]
	if !ok {
		return nil
	}
	info := &c.mctxs[mc]
	if info.varBase < 0 || reg < 0 || reg >= int(info.nregs) {
		return nil
	}
	return c.varPts[c.root(info.varBase+varID(reg))]
}

// PointsTo returns the sorted points-to set of register reg of method
// (by canonical ref) under the context keyed by receiver object recv.
func (r *Result) PointsTo(method string, recv ObjID, reg int) []ObjID {
	set := r.varSet(method, recv, reg)
	return set.appendIDs(make([]ObjID, 0, set.count()))
}

// PointsToAnyCtx unions the points-to sets of reg across every analyzed
// context of method.
func (r *Result) PointsToAnyCtx(method string, reg int) []ObjID {
	c := r.c
	mid, ok := c.methodIdx[method]
	if !ok {
		return nil
	}
	var union bitset
	for _, mc := range c.methodMctxs[mid] {
		info := &c.mctxs[mc]
		if info.varBase < 0 || reg < 0 || reg >= int(info.nregs) {
			continue
		}
		union.or(c.varPts[c.root(info.varBase+varID(reg))])
	}
	return union.appendIDs(nil)
}

// ContextsOf returns the receiver objects under which method was
// analyzed (NoRecv for context-free).
func (r *Result) ContextsOf(method string) []ObjID {
	c := r.c
	mid, ok := c.methodIdx[method]
	if !ok {
		return nil
	}
	var out []ObjID
	for _, mc := range c.methodMctxs[mid] {
		out = append(out, c.mctxs[mc].recv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reachable reports whether method was analyzed under any context.
func (r *Result) Reachable(method string) bool {
	mid, ok := r.c.methodIdx[method]
	return ok && len(r.c.methodMctxs[mid]) > 0
}

// ReachableMethods lists every analyzed method ref, sorted.
func (r *Result) ReachableMethods() []string {
	c := r.c
	out := make([]string, 0, len(c.methodNames))
	for mid, name := range c.methodNames {
		if len(c.methodMctxs[mid]) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// FieldPointsTo returns the pointees of (obj, field), sorted.
func (r *Result) FieldPointsTo(obj ObjID, field string) []ObjID {
	c := r.c
	fid, ok := c.fieldIdx[field]
	if !ok {
		return nil
	}
	si, ok := c.fpIdx[fpKeyOf(obj, fid)]
	if !ok {
		return nil
	}
	return c.fpSets[si].appendIDs(nil)
}

// StaticPointsTo returns the pointees of a static field "Class.name".
func (r *Result) StaticPointsTo(field string) []ObjID {
	c := r.c
	sid, ok := c.staticIdx[field]
	if !ok {
		return nil
	}
	return c.staticSets[sid].appendIDs(nil)
}

// CalleesAt returns callee method refs resolved at (method, recv, site).
func (r *Result) CalleesAt(method string, recv ObjID, site int) []string {
	c := r.c
	var out []string
	for _, mc := range r.calleeMctxsAt(method, recv, site) {
		out = append(out, c.methodNames[c.mctxs[mc].method])
	}
	sort.Strings(out)
	return out
}

// CalleeContextsAt returns (calleeMethod, calleeRecv) pairs at a site.
func (r *Result) CalleeContextsAt(method string, recv ObjID, site int) []struct {
	Method string
	Recv   ObjID
} {
	c := r.c
	var out []struct {
		Method string
		Recv   ObjID
	}
	for _, mc := range r.calleeMctxsAt(method, recv, site) {
		out = append(out, struct {
			Method string
			Recv   ObjID
		}{c.methodNames[c.mctxs[mc].method], c.mctxs[mc].recv})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Method != out[j].Method {
			return out[i].Method < out[j].Method
		}
		return out[i].Recv < out[j].Recv
	})
	return out
}

func (r *Result) calleeMctxsAt(method string, recv ObjID, site int) []mctxID {
	c := r.c
	mid, ok := c.methodIdx[method]
	if !ok {
		return nil
	}
	mc, ok := c.mctxIdx[mctxKeyOf(mid, recv)]
	if !ok {
		return nil
	}
	return c.calleeEdges[edgeKeyOf(mc, int32(site))]
}

// SpawnEdges returns the resolved spawn edges in discovery order.
func (r *Result) SpawnEdges() []SpawnEdge { return r.c.spawnEdges }

// CallEdges flattens the context-sensitive call graph. Edges are sorted
// for deterministic consumption.
func (r *Result) CallEdges() []CallEdge {
	c := r.c
	var out []CallEdge
	for ek, callees := range c.calleeEdges {
		caller := &c.mctxs[mctxID(ek>>32)]
		site := int(int32(uint32(ek)))
		for _, mc := range callees {
			out = append(out, CallEdge{
				CallerMethod: c.methodNames[caller.method],
				CallerRecv:   caller.recv,
				Site:         site,
				CalleeMethod: c.methodNames[c.mctxs[mc].method],
				CalleeRecv:   c.mctxs[mc].recv,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.CallerMethod != b.CallerMethod {
			return a.CallerMethod < b.CallerMethod
		}
		if a.CallerRecv != b.CallerRecv {
			return a.CallerRecv < b.CallerRecv
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if a.CalleeMethod != b.CalleeMethod {
			return a.CalleeMethod < b.CalleeMethod
		}
		return a.CalleeRecv < b.CalleeRecv
	})
	return out
}

// Hierarchy returns the class hierarchy the result was solved against.
func (r *Result) Hierarchy() *cha.Hierarchy { return r.c.h }
