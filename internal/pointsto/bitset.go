package pointsto

import "math/bits"

// bitset is a word-packed object set indexed by ObjID. The zero value
// is an empty set; words grow lazily as high object IDs are inserted.
// Abstract-object counts per app are small (hundreds to low thousands),
// so a dense representation from bit 0 is both the fastest and the
// simplest choice: union is a word loop, iteration yields ObjIDs in
// ascending order for free, and the per-var footprint is a few words.
type bitset []uint64

// add sets bit o and reports whether it was newly set.
func (b *bitset) add(o ObjID) bool {
	w, m := int(o>>6), uint64(1)<<(uint(o)&63)
	s := *b
	if w >= len(s) {
		ns := make(bitset, w+1)
		copy(ns, s)
		s = ns
		*b = s
	}
	if s[w]&m != 0 {
		return false
	}
	s[w] |= m
	return true
}

// has reports whether bit o is set.
func (b bitset) has(o ObjID) bool {
	w := int(o >> 6)
	return w < len(b) && b[w]&(1<<(uint(o)&63)) != 0
}

// or unions other into b, returning the number of newly set bits.
func (b *bitset) or(other bitset) int {
	if len(other) == 0 {
		return 0
	}
	s := *b
	if len(other) > len(s) {
		ns := make(bitset, len(other))
		copy(ns, s)
		s = ns
		*b = s
	}
	added := 0
	for w, ow := range other {
		if nw := ow &^ s[w]; nw != 0 {
			added += bits.OnesCount64(nw)
			s[w] |= nw
		}
	}
	return added
}

// orInto is or() plus delta tracking: bits newly set in b are also set
// in delta. Returns the number of newly set bits.
func (b *bitset) orInto(other bitset, delta *bitset) int {
	if len(other) == 0 {
		return 0
	}
	s := *b
	if len(other) > len(s) {
		ns := make(bitset, len(other))
		copy(ns, s)
		s = ns
		*b = s
	}
	added := 0
	for w, ow := range other {
		nw := ow &^ s[w]
		if nw == 0 {
			continue
		}
		added += bits.OnesCount64(nw)
		s[w] |= nw
		d := *delta
		if w >= len(d) {
			nd := make(bitset, len(s))
			copy(nd, d)
			d = nd
			*delta = d
		}
		d[w] |= nw
	}
	return added
}

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// empty reports whether no bit is set.
func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// forEach visits set bits in ascending ObjID order.
func (b bitset) forEach(fn func(ObjID)) {
	for w, word := range b {
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			fn(ObjID(w<<6 + tz))
			word &= word - 1
		}
	}
}

// appendIDs appends the set bits in ascending order.
func (b bitset) appendIDs(out []ObjID) []ObjID {
	for w, word := range b {
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			out = append(out, ObjID(w<<6+tz))
			word &= word - 1
		}
	}
	return out
}

// clone returns an independent copy of b.
func (b bitset) clone() bitset {
	if len(b) == 0 {
		return nil
	}
	out := make(bitset, len(b))
	copy(out, b)
	return out
}
