package pointsto

import (
	"strings"
	"testing"

	"nadroid/internal/appbuilder"
	"nadroid/internal/cha"
	"nadroid/internal/framework"
	"nadroid/internal/ir"
)

// buildBoxApp constructs:
//
//	class Box { f; set(v){this.f=v} get(){return this.f} make(){this.f=new A} }
//	class Main { static main() { b1=new Box; b2=new Box; a1=new A; a2=new A;
//	             b1.set(a1); b2.set(a2); r1=b1.get(); r2=b2.get();
//	             b1.make(); b2.make(); m1=b1.get(); m2=b2.get() } }
func buildBoxApp(t *testing.T) (*cha.Hierarchy, *ir.Method) {
	t.Helper()
	b := appbuilder.New("boxapp")
	box := b.Class("Box", framework.Object)
	box.Field("f", "A")
	set := box.Method("set", 1)
	set.PutThis("f", set.Arg(0))
	set.Return()
	get := box.Method("get", 0)
	r := get.GetThis("f")
	get.ReturnReg(r)
	mk := box.Method("make", 0)
	a := mk.New("A")
	mk.PutThis("f", a)
	mk.Return()
	b.Class("A", framework.Object)

	mainCls := b.Class("Main", framework.Object)
	mb := mainCls.Method("main", 0)
	mb.Method().Static = true
	b1 := mb.New("Box")
	b2 := mb.New("Box")
	a1 := mb.New("A")
	a2 := mb.New("A")
	mb.InvokeVoid(b1, "Box", "set", a1)
	mb.InvokeVoid(b2, "Box", "set", a2)
	r1 := mb.Invoke(b1, "Box", "get")
	r2 := mb.Invoke(b2, "Box", "get")
	mb.InvokeVoid(b1, "Box", "make")
	mb.InvokeVoid(b2, "Box", "make")
	m1 := mb.Invoke(b1, "Box", "get")
	m2 := mb.Invoke(b2, "Box", "get")
	mb.Return()
	_ = []int{r1, r2, m1, m2}

	pkg, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	h := cha.New(pkg.Program)
	return h, mb.Method()
}

func TestObjectSensitivityDistinguishesReceivers(t *testing.T) {
	h, main := buildBoxApp(t)
	res := Solve(h, []Entry{{Method: main}}, Options{K: 2})
	// Flow-insensitively, b1.f holds {a1, make-alloc-under-b1}; the key
	// object-sensitivity property is that b1's and b2's contents are
	// disjoint.
	r1 := res.PointsTo(main.Ref(), NoRecv, regOfInvokeResult(main, "get", 0))
	r2 := res.PointsTo(main.Ref(), NoRecv, regOfInvokeResult(main, "get", 1))
	if len(r1) != 2 || len(r2) != 2 {
		t.Fatalf("r1=%v r2=%v, want two objects each (a_i + make alloc)", r1, r2)
	}
	if intersects(r1, r2) {
		t.Errorf("receiver contents must be disjoint: r1=%v r2=%v", r1, r2)
	}
}

func TestHeapContextK2SplitsInnerAllocs(t *testing.T) {
	h, main := buildBoxApp(t)
	res := Solve(h, []Entry{{Method: main}}, Options{K: 2})
	m1 := res.PointsTo(main.Ref(), NoRecv, regOfInvokeResult(main, "get", 2))
	m2 := res.PointsTo(main.Ref(), NoRecv, regOfInvokeResult(main, "get", 3))
	// Pick the make() allocations: objects whose site is inside Box.make.
	mk1 := filterBySite(res, m1, "Box.make")
	mk2 := filterBySite(res, m2, "Box.make")
	if len(mk1) != 1 || len(mk2) != 1 {
		t.Fatalf("mk1=%v mk2=%v, want one make alloc per receiver under k=2", mk1, mk2)
	}
	if mk1[0] == mk2[0] {
		t.Error("k=2 must split make()'s allocation by receiver")
	}
	o1, o2 := res.Obj(mk1[0]), res.Obj(mk2[0])
	if o1.Site != o2.Site {
		t.Errorf("same allocation site expected, got %q vs %q", o1.Site, o2.Site)
	}
	if o1.Ctx == o2.Ctx {
		t.Error("contexts must differ under k=2")
	}
}

func TestHeapContextK1MergesInnerAllocs(t *testing.T) {
	h, main := buildBoxApp(t)
	res := Solve(h, []Entry{{Method: main}}, Options{K: 1})
	m1 := res.PointsTo(main.Ref(), NoRecv, regOfInvokeResult(main, "get", 2))
	m2 := res.PointsTo(main.Ref(), NoRecv, regOfInvokeResult(main, "get", 3))
	mk1 := filterBySite(res, m1, "Box.make")
	mk2 := filterBySite(res, m2, "Box.make")
	if len(mk1) != 1 || len(mk2) != 1 {
		t.Fatalf("mk1=%v mk2=%v, want one make alloc each", mk1, mk2)
	}
	if mk1[0] != mk2[0] {
		t.Error("k=1 should merge make()'s allocation across receivers")
	}
}

func intersects(a, b []ObjID) bool {
	set := make(map[ObjID]bool, len(a))
	for _, o := range a {
		set[o] = true
	}
	for _, o := range b {
		if set[o] {
			return true
		}
	}
	return false
}

func filterBySite(res *Result, ids []ObjID, sitePrefix string) []ObjID {
	var out []ObjID
	for _, id := range ids {
		if strings.HasPrefix(res.Obj(id).Site, sitePrefix) {
			out = append(out, id)
		}
	}
	return out
}

func TestStaticFieldFlow(t *testing.T) {
	b := appbuilder.New("staticapp")
	b.Class("G", framework.Object).StaticField("shared", "A")
	b.Class("A", framework.Object)
	c := b.Class("Main", framework.Object)
	w := c.Method("writer", 0)
	w.Method().Static = true
	a := w.New("A")
	w.PutStatic("G", "shared", a)
	w.Return()
	rd := c.Method("reader", 0)
	rd.Method().Static = true
	got := rd.GetStatic("G", "shared")
	rd.ReturnReg(got)
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := cha.New(pkg.Program)
	res := Solve(h, []Entry{
		{Method: w.Method()},
		{Method: rd.Method()},
	}, Options{K: 2})
	pts := res.PointsTo(rd.Method().Ref(), NoRecv, got)
	if len(pts) != 1 {
		t.Fatalf("reader sees %v, want one object", pts)
	}
	if res.Obj(pts[0]).Class != "A" {
		t.Errorf("class = %q, want A", res.Obj(pts[0]).Class)
	}
}

func TestSyntheticEntryReceivers(t *testing.T) {
	b := appbuilder.New("synthapp")
	act := b.Activity("MainActivity")
	act.Field("f", "A")
	on := act.Method("onCreate", 0)
	a := on.New("A")
	on.PutThis("f", a)
	on.Return()
	b.Class("A", framework.Object)
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := cha.New(pkg.Program)
	synth := []Obj{{Site: "synthetic:MainActivity", Class: "MainActivity"}}
	res := SolveWithSynthetics(h, synth, []Entry{
		{Method: on.Method(), Receivers: []ObjID{0}},
	}, Options{K: 2})
	// this.f of the synthetic receiver holds the A allocated in onCreate.
	pts := res.FieldPointsTo(0, "f")
	if len(pts) != 1 || res.Obj(pts[0]).Class != "A" {
		t.Fatalf("FieldPointsTo(synth, f) = %v, want one A", pts)
	}
	if !strings.HasPrefix(res.Obj(pts[0]).Ctx, "synthetic:MainActivity") {
		t.Errorf("heap ctx = %q, want receiver site prefix", res.Obj(pts[0]).Ctx)
	}
}

func TestSkipCallCutsEdges(t *testing.T) {
	b := appbuilder.New("skipapp")
	c := b.Class("C", framework.Object)
	callee := c.Method("callee", 0)
	callee.New("A")
	callee.Return()
	caller := c.Method("caller", 0)
	caller.InvokeThis("callee")
	caller.Return()
	b.Class("A", framework.Object)
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := cha.New(pkg.Program)
	synth := []Obj{{Site: "synthetic:C", Class: "C"}}
	skip := func(m *ir.Method, idx int, in ir.Instr) bool {
		return in.Op == ir.OpInvoke && in.Callee.Name == "callee"
	}
	res := SolveWithSynthetics(h, synth, []Entry{
		{Method: caller.Method(), Receivers: []ObjID{0}},
	}, Options{K: 2, SkipCall: skip})
	if res.Reachable("C.callee") {
		t.Error("skipped call must not make callee reachable")
	}
	res2 := SolveWithSynthetics(h, synth, []Entry{
		{Method: caller.Method(), Receivers: []ObjID{0}},
	}, Options{K: 2})
	if !res2.Reachable("C.callee") {
		t.Error("callee must be reachable without skip")
	}
}

func TestVirtualDispatchUsesRuntimeClass(t *testing.T) {
	b := appbuilder.New("dispatchapp")
	b.Class("Base", framework.Object).Method("m", 0).Return()
	sub := b.Class("Sub", "Base")
	sm := sub.Method("m", 0)
	sm.New("A")
	sm.Return()
	b.Class("A", framework.Object)
	c := b.Class("Main", framework.Object)
	mb := c.Method("main", 0)
	mb.Method().Static = true
	o := mb.New("Sub")
	// Static callee type is Base; runtime class is Sub.
	mb.InvokeVoid(o, "Base", "m")
	mb.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := cha.New(pkg.Program)
	res := Solve(h, []Entry{{Method: mb.Method()}}, Options{K: 2})
	if !res.Reachable("Sub.m") {
		t.Error("dispatch must reach Sub.m")
	}
	if res.Reachable("Base.m") {
		t.Error("dispatch must not reach Base.m for a Sub receiver")
	}
}

// regOfInvokeResult finds the destination register of the n-th invoke of
// the named method inside m.
func regOfInvokeResult(m *ir.Method, callee string, n int) int {
	count := 0
	for _, in := range m.Instrs {
		if in.Op == ir.OpInvoke && in.Callee.Name == callee {
			if count == n {
				return in.A
			}
			count++
		}
	}
	panic("invoke not found")
}

// Factory-classified invokes must behave as allocations: distinct call
// sites yield distinct abstract objects of the spec'd class.
func TestFactoryOracleAllocates(t *testing.T) {
	b := appbuilder.New("factory")
	c := b.Class("fa/C", framework.Object)
	c.Field("a", "fa/W")
	c.Field("b", "fa/W")
	b.Class("fa/W", framework.Object)
	b.Class("fa/PM", framework.Object).Method("make", 1).Method().Abstract = true
	m := c.Method("m", 0)
	pm := m.New("fa/PM")
	w1 := m.Invoke(pm, "fa/PM", "make")
	m.PutThis("a", w1)
	w2 := m.Invoke(pm, "fa/PM", "make")
	m.PutThis("b", w2)
	m.Return()
	pkg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := cha.New(pkg.Program)
	factory := func(caller *ir.Method, idx int, in ir.Instr) (string, bool) {
		if in.Op == ir.OpInvoke && in.Callee.Name == "make" {
			return "fa/W", true
		}
		return "", false
	}
	synth := []Obj{{Site: "synthetic:C", Class: "fa/C"}}
	res := SolveWithSynthetics(h, synth, []Entry{
		{Method: m.Method(), Receivers: []ObjID{0}},
	}, Options{K: 2, Factory: factory})
	a := res.FieldPointsTo(0, "a")
	bts := res.FieldPointsTo(0, "b")
	if len(a) != 1 || len(bts) != 1 {
		t.Fatalf("a=%v b=%v, want singletons", a, bts)
	}
	if a[0] == bts[0] {
		t.Error("distinct factory call sites must allocate distinct objects")
	}
	if res.Obj(a[0]).Class != "fa/W" {
		t.Errorf("factory class = %q, want fa/W", res.Obj(a[0]).Class)
	}
}
