package pointsto

import (
	"sort"

	"nadroid/internal/cha"
	"nadroid/internal/ir"
)

// Snapshot is the flat, serialization-friendly form of a solved Result:
// every interned table as a plain slice, every map flattened into
// parallel key/value slices, and every bitset as its word array. It
// exists for the IR cold-start cache — a solved points-to state is the
// most expensive artifact of modeling, and snapshotting it lets warm
// runs skip the solve entirely.
//
// The snapshot is complete for the read-only accessor surface (PointsTo,
// CalleesAt, SpawnEdges, ...). Solve-only state (worklists, variable
// deltas) is intentionally dropped: a restored Result can answer
// queries but not resume a solve.
type Snapshot struct {
	Objs        []Obj
	MethodNames []string
	MethodMctxs [][]int32
	Mctxs       []MctxSnap
	FieldNames  []string
	VarPts      [][]uint64
	Parent      []int32
	FPKeys      []uint64
	FPSets      [][]uint64
	StaticNames []string
	StaticSets  [][]uint64
	EdgeKeys    []uint64
	EdgeVals    [][]int32
	SpawnEdges  []SpawnEdge
	Iterations  int
	DeltaObjs   int64
}

// MctxSnap is one method context in snapshot form.
type MctxSnap struct {
	Method  int32
	Recv    int32
	VarBase int32
	NRegs   int32
}

// Snapshot flattens the result. Map-backed tables are emitted in sorted
// key order so identical results produce identical snapshots.
func (r *Result) Snapshot() *Snapshot {
	c := r.c
	s := &Snapshot{
		Objs:        c.objs,
		MethodNames: c.methodNames,
		FieldNames:  c.fieldNames,
		SpawnEdges:  c.spawnEdges,
		Iterations:  c.iterations,
		DeltaObjs:   c.deltaObjs,
	}
	s.MethodMctxs = make([][]int32, len(c.methodMctxs))
	for i, mcs := range c.methodMctxs {
		s.MethodMctxs[i] = mcs
	}
	s.Mctxs = make([]MctxSnap, len(c.mctxs))
	for i := range c.mctxs {
		mc := &c.mctxs[i]
		s.Mctxs[i] = MctxSnap{Method: mc.method, Recv: int32(mc.recv), VarBase: mc.varBase, NRegs: mc.nregs}
	}
	s.VarPts = make([][]uint64, len(c.varPts))
	for i, b := range c.varPts {
		s.VarPts[i] = b
	}
	s.Parent = c.parent

	fpKeys := make([]uint64, 0, len(c.fpIdx))
	for k := range c.fpIdx {
		fpKeys = append(fpKeys, k)
	}
	sort.Slice(fpKeys, func(i, j int) bool { return fpKeys[i] < fpKeys[j] })
	s.FPKeys = fpKeys
	s.FPSets = make([][]uint64, len(fpKeys))
	for i, k := range fpKeys {
		s.FPSets[i] = c.fpSets[c.fpIdx[k]]
	}

	statics := make([]string, 0, len(c.staticIdx))
	for name := range c.staticIdx {
		statics = append(statics, name)
	}
	sort.Strings(statics)
	s.StaticNames = statics
	s.StaticSets = make([][]uint64, len(statics))
	for i, name := range statics {
		s.StaticSets[i] = c.staticSets[c.staticIdx[name]]
	}

	edgeKeys := make([]uint64, 0, len(c.calleeEdges))
	for k := range c.calleeEdges {
		edgeKeys = append(edgeKeys, k)
	}
	sort.Slice(edgeKeys, func(i, j int) bool { return edgeKeys[i] < edgeKeys[j] })
	s.EdgeKeys = edgeKeys
	s.EdgeVals = make([][]int32, len(edgeKeys))
	for i, k := range edgeKeys {
		s.EdgeVals[i] = c.calleeEdges[k]
	}
	return s
}

// FromSnapshot rebuilds a queryable Result against a hierarchy (the one
// built over the restored program). Method bodies are re-resolved
// through the hierarchy; an unresolvable method keeps a nil body, same
// as after a live solve.
func FromSnapshot(h *cha.Hierarchy, s *Snapshot) *Result {
	c := &core{
		h:           h,
		objs:        s.Objs,
		objIdx:      make(map[Obj]ObjID, len(s.Objs)),
		methodNames: s.MethodNames,
		methodIdx:   make(map[string]methodID, len(s.MethodNames)),
		methodOf:    make([]*ir.Method, len(s.MethodNames)),
		fieldNames:  s.FieldNames,
		fieldIdx:    make(map[string]fieldID, len(s.FieldNames)),
		mctxIdx:     make(map[uint64]mctxID, len(s.Mctxs)),
		fpIdx:       make(map[uint64]int32, len(s.FPKeys)),
		staticIdx:   make(map[string]staticID, len(s.StaticNames)),
		calleeEdges: make(map[uint64][]mctxID, len(s.EdgeKeys)),
		spawnEdges:  s.SpawnEdges,
		iterations:  s.Iterations,
		deltaObjs:   s.DeltaObjs,
	}
	for i, o := range s.Objs {
		c.objIdx[o] = ObjID(i)
	}
	for i, name := range s.MethodNames {
		c.methodIdx[name] = methodID(i)
		if m, err := h.MethodByRef(name); err == nil {
			c.methodOf[i] = m
		}
	}
	c.methodMctxs = make([][]mctxID, len(s.MethodMctxs))
	for i, mcs := range s.MethodMctxs {
		c.methodMctxs[i] = mcs
	}
	c.mctxs = make([]mctxInfo, len(s.Mctxs))
	for i, ms := range s.Mctxs {
		c.mctxs[i] = mctxInfo{method: ms.Method, recv: ObjID(ms.Recv), varBase: ms.VarBase, nregs: ms.NRegs}
		if int(ms.Method) < len(c.methodOf) {
			c.mctxs[i].m = c.methodOf[ms.Method]
		}
		c.mctxIdx[mctxKeyOf(ms.Method, ObjID(ms.Recv))] = mctxID(i)
	}
	for i, name := range s.FieldNames {
		c.fieldIdx[name] = fieldID(i)
	}
	c.varPts = make([]bitset, len(s.VarPts))
	for i, w := range s.VarPts {
		c.varPts[i] = w
	}
	c.parent = s.Parent
	c.fpSets = make([]bitset, len(s.FPKeys))
	for i, k := range s.FPKeys {
		c.fpIdx[k] = int32(i)
		c.fpSets[i] = s.FPSets[i]
	}
	c.staticSets = make([]bitset, len(s.StaticNames))
	for i, name := range s.StaticNames {
		c.staticIdx[name] = staticID(i)
		c.staticSets[i] = s.StaticSets[i]
	}
	for i, k := range s.EdgeKeys {
		c.calleeEdges[k] = s.EdgeVals[i]
	}
	return &Result{c: c}
}
