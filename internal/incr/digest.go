// Package incr implements incremental re-analysis support: stable
// per-method digests over normalized IR, method-level diff
// classification against a stored base run, digest gates for every
// reused analysis partition, and a versioned binary codec for the
// per-thread fact partitions persisted alongside the IR blob.
//
// The reuse discipline is verification-by-digest: a partition is only
// replayed when a digest over the exact inputs that produced it
// matches the current program, so a failed gate costs a cold
// recomputation but never a wrong result.
package incr

import (
	"sort"

	"nadroid/internal/apk"
	"nadroid/internal/escape"
	"nadroid/internal/ir"
	"nadroid/internal/pointsto"
	"nadroid/internal/threadify"
)

// hasher is FNV-1a over a length-prefixed byte stream.
type hasher struct{ h uint64 }

func newHasher() hasher { return hasher{h: 14695981039346656037} }

func (x *hasher) byte(b byte) {
	x.h ^= uint64(b)
	x.h *= 1099511628211
}

func (x *hasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		x.byte(byte(v >> (8 * i)))
	}
}

func (x *hasher) i(v int)     { x.u64(uint64(int64(v))) }
func (x *hasher) i64(v int64) { x.u64(uint64(v)) }

func (x *hasher) b(v bool) {
	if v {
		x.byte(1)
	} else {
		x.byte(0)
	}
}

func (x *hasher) str(s string) {
	x.i(len(s))
	for i := 0; i < len(s); i++ {
		x.byte(s[i])
	}
}

// MethodDigest hashes one method's normalized IR: flags, register
// shape, sorted labels, and every instruction operand — the same
// fields the cold-start blob serializes.
func MethodDigest(m *ir.Method) uint64 {
	x := newHasher()
	x.str(m.Name)
	x.i(m.NumArgs)
	x.b(m.Static)
	x.b(m.Synch)
	x.b(m.Abstract)
	x.i(m.NumRegs)
	labels := make([]string, 0, len(m.Labels))
	for l := range m.Labels {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	x.i(len(labels))
	for _, l := range labels {
		x.str(l)
		x.i(m.Labels[l])
	}
	x.i(len(m.Instrs))
	for _, in := range m.Instrs {
		x.i(int(in.Op))
		x.i(in.A)
		x.i(in.B)
		x.i(len(in.Args))
		for _, a := range in.Args {
			x.i(a)
		}
		x.str(in.Field.Class)
		x.str(in.Field.Name)
		x.str(in.Type)
		x.str(in.Callee.Class)
		x.str(in.Callee.Name)
		x.str(in.Target)
		x.i64(in.IntVal)
		x.str(in.StrVal)
	}
	return x.h
}

// MethodDigests computes the per-method digest table of a program,
// keyed by method ref (Class.Name).
func MethodDigests(prog *ir.Program) map[string]uint64 {
	out := make(map[string]uint64)
	for _, c := range prog.Classes() {
		for _, m := range c.Methods {
			out[m.Ref()] = MethodDigest(m)
		}
	}
	return out
}

// Diff classifies the methods of a new digest table against a base
// table.
type Diff struct {
	Unchanged, Edited, Added, Removed int
}

// Changed is the number of methods whose facts the base run cannot
// vouch for: edited + added + removed.
func (d Diff) Changed() int { return d.Edited + d.Added + d.Removed }

// DiffMethods classifies cur against base by method ref.
func DiffMethods(base, cur map[string]uint64) Diff {
	var d Diff
	for ref, dig := range cur {
		bdig, ok := base[ref]
		switch {
		case !ok:
			d.Added++
		case bdig != dig:
			d.Edited++
		default:
			d.Unchanged++
		}
	}
	for ref := range base {
		if _, ok := cur[ref]; !ok {
			d.Removed++
		}
	}
	return d
}

// StructureDigest hashes everything about the program's shape that
// analyses other than method bodies depend on: the class hierarchy
// (supers, interfaces, outer classes), declared fields, method
// signatures and abstractness (what resolution sees), and the
// manifest. Classes and members are hashed in sorted order so the
// digest is content-stable across parses.
func StructureDigest(pkg *apk.Package) uint64 {
	x := newHasher()
	classes := append([]*ir.Class(nil), pkg.Program.Classes()...)
	sort.Slice(classes, func(i, j int) bool { return classes[i].Name < classes[j].Name })
	x.i(len(classes))
	for _, c := range classes {
		x.str(c.Name)
		x.str(c.Super)
		x.i(len(c.Interfaces))
		for _, iface := range c.Interfaces {
			x.str(iface)
		}
		x.str(c.Outer)
		x.b(c.IsIface)
		x.i(len(c.Fields))
		for _, f := range c.Fields {
			x.str(f.Name)
			x.str(f.Type)
			x.b(f.Static)
		}
		x.i(len(c.Methods))
		for _, m := range c.Methods {
			x.str(m.Name)
			x.i(m.NumArgs)
			x.b(m.Static)
			x.b(m.Abstract)
		}
	}
	m := pkg.Manifest
	x.str(m.Package)
	comps := m.Components()
	x.i(len(comps))
	for _, c := range comps {
		x.i(int(c.Kind))
		x.str(c.Class)
		x.b(c.Main)
		x.b(c.Reachable)
	}
	return x.h
}

// solverOps is the exact instruction set pointsto's solver consumes;
// any other op is invisible to the constraint graph.
func solverOp(op ir.Op) bool {
	switch op {
	case ir.OpNew, ir.OpMove, ir.OpGetField, ir.OpPutField,
		ir.OpGetStatic, ir.OpPutStatic, ir.OpInvoke, ir.OpInvokeStatic, ir.OpReturn:
		return true
	}
	return false
}

// PtsProjection digests every input the points-to solve consumes: the
// solver-relevant instructions of every method WITH their instruction
// indexes (allocation-site identity embeds the index, so even an
// inserted no-op before an OpNew must invalidate), the structure
// digest (hierarchy + manifest drive resolution, synthetics and
// entries), and the sensitivity depth K. An equal projection means an
// equal solved result, which gates whole-snapshot reuse.
func PtsProjection(pkg *apk.Package, k int) uint64 {
	x := newHasher()
	x.i(k)
	x.u64(StructureDigest(pkg))
	classes := append([]*ir.Class(nil), pkg.Program.Classes()...)
	sort.Slice(classes, func(i, j int) bool { return classes[i].Name < classes[j].Name })
	for _, c := range classes {
		for _, m := range c.Methods {
			x.str(m.Ref())
			x.i(m.NumArgs)
			x.i(m.NumRegs)
			x.b(m.Static)
			x.b(m.Abstract)
			for i, in := range m.Instrs {
				if !solverOp(in.Op) {
					continue
				}
				x.i(i)
				x.i(int(in.Op))
				x.i(in.A)
				x.i(in.B)
				x.i(len(in.Args))
				for _, a := range in.Args {
					x.i(a)
				}
				x.str(in.Field.Class)
				x.str(in.Field.Name)
				x.str(in.Type)
				x.str(in.Callee.Class)
				x.str(in.Callee.Name)
				x.str(in.Target)
			}
		}
	}
	return x.h
}

// HeapDigest hashes the global heap state the escape analysis closes
// over: every heap points-to edge plus the static seed sets. The
// closed static set is a pure function of these, so an equal digest
// lets the base run's closed StaticPT partition be replayed verbatim.
func HeapDigest(pts *pointsto.Result) uint64 {
	x := newHasher()
	edges := escape.HeapEdges(pts)
	x.i(len(edges))
	for _, e := range edges {
		x.i(int(e.Src))
		x.str(e.Field)
		x.i(int(e.Dst))
	}
	seeds := escape.StaticSeeds(pts)
	x.i(len(seeds))
	for _, o := range seeds {
		x.i(int(o))
	}
	return x.h
}

// ThreadSig is one thread's reuse gate: digests over every input its
// escape-root and access partitions are derived from.
type ThreadSig struct {
	// Dummy marks the dummy-main thread, which contributes no facts.
	Dummy bool
	// Root covers the thread's root object sets: each reachable method
	// context and every register's points-to set. Equality means the
	// thread's Root/Touches facts — and therefore its Reach fixpoint
	// rows under an equal heap — are identical to the base run's.
	Root uint64
	// Acc additionally covers each context's method-body digest, the
	// remaining input of access collection (field refs, access kinds,
	// free-origin analysis are all body functions; field canonicalization
	// is gated by the structure digest separately).
	Acc uint64
}

// ThreadSignature computes one thread's gate digests in a single pass
// over its reachable contexts (the same sorted enumeration access
// collection uses).
func ThreadSignature(m *threadify.Model, thread int, methodDigests map[string]uint64) ThreadSig {
	th := m.Threads[thread]
	if th.Kind == threadify.KindDummyMain {
		return ThreadSig{Dummy: true}
	}
	root := newHasher()
	acc := newHasher()
	mcs := make([]threadify.MCtx, 0, len(m.Reach(thread)))
	for mc := range m.Reach(thread) {
		mcs = append(mcs, mc)
	}
	sort.Slice(mcs, func(i, j int) bool {
		if mcs[i].Method != mcs[j].Method {
			return mcs[i].Method < mcs[j].Method
		}
		return mcs[i].Recv < mcs[j].Recv
	})
	pts := m.PTS
	for _, mc := range mcs {
		mth, err := m.H.MethodByRef(mc.Method)
		if err != nil || mth.Abstract {
			continue
		}
		root.str(mc.Method)
		root.i(int(mc.Recv))
		root.i(mth.NumRegs)
		acc.str(mc.Method)
		acc.i(int(mc.Recv))
		acc.u64(methodDigests[mc.Method])
		for reg := 0; reg < mth.NumRegs; reg++ {
			objs := pts.PointsTo(mc.Method, mc.Recv, reg)
			root.i(len(objs))
			acc.i(len(objs))
			for _, o := range objs {
				root.i(int(o))
				acc.i(int(o))
			}
		}
	}
	return ThreadSig{Root: root.h, Acc: acc.h}
}
