package incr

import (
	"errors"
	"fmt"
	"sort"

	"nadroid/internal/ir"
	"nadroid/internal/pointsto"
	"nadroid/internal/race"
	"nadroid/internal/threadify"
)

// Version is the partition format version. It is baked into the file
// name (see Name), so a format change makes old partitions invisible
// rather than mis-decoded.
const Version = 1

var magic = [4]byte{'N', 'I', 'N', 'C'}

// Name returns the store key of the partition for an IR digest at
// sensitivity K. Mirrors ircache.Name: digest first so GC can protect
// by prefix, version and K in the name so mismatches miss cleanly.
func Name(digest string, k int) string {
	return fmt.Sprintf("%s-v%d-k%d.incr", digest, Version, k)
}

// Access is one persisted field access of a thread, in thread-local
// ID order (the slice index is the thread-local ID). Method serves as
// both the context method and the instruction's method — they are the
// same string in a collected access.
type Access struct {
	Method     string
	Recv       int32
	Index      int32
	FieldClass string
	FieldName  string
	Kind       int8
	Static     bool
	Objs       []int32
}

// Thread is one thread's persisted fact partition plus the digests
// that gate its reuse.
type Thread struct {
	ID         int
	Dummy      bool
	RootDigest uint64
	AccDigest  uint64
	// Reach is the thread's solved escape-reachability row: every heap
	// object the thread can reach, sorted.
	Reach []int32
	// Acc is the thread's access partition in thread-local ID order.
	Acc []Access
}

// Partition is the per-app incremental state persisted alongside the
// IR cache blob: the method digest table the next run diffs against,
// the whole-program gate digests, and the per-thread fact partitions.
type Partition struct {
	App       string
	K         int
	Methods   map[string]uint64
	Structure uint64
	PtsProj   uint64
	Heap      uint64
	// Statics is the closed static points-to set (StaticPT fixpoint),
	// sorted; valid while Heap matches.
	Statics []int32
	Threads []Thread
}

// FromRaceAccesses converts one thread's collected accesses to
// persistable form. Accesses must be thread-local (IDs 0..n-1 in
// slice order), as race.CollectThreadAccesses returns them.
func FromRaceAccesses(accs []race.Access) []Access {
	out := make([]Access, len(accs))
	for i, a := range accs {
		out[i] = Access{
			Method:     a.MCtx.Method,
			Recv:       int32(a.MCtx.Recv),
			Index:      int32(a.Index),
			FieldClass: a.Field.Class,
			FieldName:  a.Field.Name,
			Kind:       int8(a.Kind),
			Static:     a.Static,
			Objs:       objsToI32(a.Objs),
		}
	}
	return out
}

// ToRaceAccesses reconstructs a thread's access partition. IDs are
// thread-local; the caller renumbers when concatenating threads.
func ToRaceAccesses(thread int, accs []Access) []race.Access {
	out := make([]race.Access, len(accs))
	for i, a := range accs {
		out[i] = race.Access{
			ID:     i,
			Thread: thread,
			MCtx:   threadify.MCtx{Method: a.Method, Recv: pointsto.ObjID(a.Recv)},
			Instr:  ir.InstrID{Method: a.Method, Index: int(a.Index)},
			Index:  int(a.Index),
			Field:  ir.FieldRef{Class: a.FieldClass, Name: a.FieldName},
			Kind:   race.AccessKind(a.Kind),
			Static: a.Static,
			Objs:   i32ToObjs(a.Objs),
		}
	}
	return out
}

func objsToI32(objs []pointsto.ObjID) []int32 {
	if len(objs) == 0 {
		return nil
	}
	out := make([]int32, len(objs))
	for i, o := range objs {
		out[i] = int32(o)
	}
	return out
}

func i32ToObjs(v []int32) []pointsto.ObjID {
	if len(v) == 0 {
		return nil
	}
	out := make([]pointsto.ObjID, len(v))
	for i, o := range v {
		out[i] = pointsto.ObjID(o)
	}
	return out
}

// ObjsToI32 converts an object-ID slice for storage in a partition.
func ObjsToI32(objs []pointsto.ObjID) []int32 { return objsToI32(objs) }

// I32ToObjs converts a stored row back to object IDs.
func I32ToObjs(v []int32) []pointsto.ObjID { return i32ToObjs(v) }

// enc is a varint writer with inline string interning: the first
// occurrence of a string writes its id followed by the literal, later
// occurrences write the id alone.
type enc struct {
	buf  []byte
	strs map[string]int
}

func (e *enc) u(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

func (e *enc) i(v int64) {
	e.u(uint64(v<<1) ^ uint64(v>>63)) // zigzag
}

func (e *enc) b(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *enc) s(s string) {
	id, ok := e.strs[s]
	if ok {
		e.u(uint64(id))
		return
	}
	id = len(e.strs)
	e.strs[s] = id
	e.u(uint64(id))
	e.u(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) i32s(v []int32) {
	e.u(uint64(len(v)))
	for _, x := range v {
		e.i(int64(x))
	}
}

// Encode serializes a partition.
func (p *Partition) Encode() []byte {
	e := &enc{strs: make(map[string]int)}
	e.buf = append(e.buf, magic[:]...)
	e.u(Version)
	e.s(p.App)
	e.u(uint64(p.K))
	refs := make([]string, 0, len(p.Methods))
	for r := range p.Methods {
		refs = append(refs, r)
	}
	sort.Strings(refs)
	e.u(uint64(len(refs)))
	for _, r := range refs {
		e.s(r)
		e.u(p.Methods[r])
	}
	e.u(p.Structure)
	e.u(p.PtsProj)
	e.u(p.Heap)
	e.i32s(p.Statics)
	e.u(uint64(len(p.Threads)))
	for _, t := range p.Threads {
		e.u(uint64(t.ID))
		e.b(t.Dummy)
		e.u(t.RootDigest)
		e.u(t.AccDigest)
		e.i32s(t.Reach)
		e.u(uint64(len(t.Acc)))
		for _, a := range t.Acc {
			e.s(a.Method)
			e.i(int64(a.Recv))
			e.i(int64(a.Index))
			e.s(a.FieldClass)
			e.s(a.FieldName)
			e.i(int64(a.Kind))
			e.b(a.Static)
			e.i32s(a.Objs)
		}
	}
	return e.buf
}

type dec struct {
	buf  []byte
	pos  int
	strs []string
}

func (d *dec) u() uint64 {
	var v uint64
	var shift uint
	for {
		if d.pos >= len(d.buf) {
			panic("incr: truncated varint")
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
		if shift > 63 {
			panic("incr: varint overflow")
		}
	}
}

func (d *dec) i() int64 {
	v := d.u()
	return int64(v>>1) ^ -int64(v&1)
}

func (d *dec) b() bool {
	if d.pos >= len(d.buf) {
		panic("incr: truncated bool")
	}
	v := d.buf[d.pos]
	d.pos++
	return v != 0
}

func (d *dec) s() string {
	id := d.u()
	if id < uint64(len(d.strs)) {
		return d.strs[id]
	}
	if id != uint64(len(d.strs)) {
		panic("incr: bad string id")
	}
	n := d.n()
	if d.pos+n > len(d.buf) {
		panic("incr: truncated string")
	}
	s := string(d.buf[d.pos : d.pos+n])
	d.pos += n
	d.strs = append(d.strs, s)
	return s
}

// n reads a count and bounds it by the remaining input so corrupt
// headers cannot force huge allocations.
func (d *dec) n() int {
	v := d.u()
	if v > uint64(len(d.buf)-d.pos) {
		panic("incr: count exceeds input")
	}
	return int(v)
}

func (d *dec) i32s() []int32 {
	n := d.n()
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.i())
	}
	return out
}

// Decode parses a partition; any corruption (truncation, bad magic,
// version skew, oversized counts) returns an error instead of
// panicking or over-allocating.
func Decode(data []byte) (p *Partition, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("incr: corrupt partition: %v", r)
		}
	}()
	if len(data) < 5 {
		return nil, errors.New("incr: partition too short")
	}
	if [4]byte(data[:4]) != magic {
		return nil, errors.New("incr: bad magic")
	}
	d := &dec{buf: data, pos: 4}
	if v := d.u(); v != Version {
		return nil, fmt.Errorf("incr: version %d, want %d", v, Version)
	}
	p = &Partition{}
	p.App = d.s()
	p.K = int(d.u())
	nm := d.n()
	p.Methods = make(map[string]uint64, nm)
	for i := 0; i < nm; i++ {
		r := d.s()
		p.Methods[r] = d.u()
	}
	p.Structure = d.u()
	p.PtsProj = d.u()
	p.Heap = d.u()
	p.Statics = d.i32s()
	nt := d.n()
	p.Threads = make([]Thread, nt)
	for i := range p.Threads {
		t := &p.Threads[i]
		t.ID = int(d.u())
		t.Dummy = d.b()
		t.RootDigest = d.u()
		t.AccDigest = d.u()
		t.Reach = d.i32s()
		na := d.n()
		if na == 0 {
			continue
		}
		t.Acc = make([]Access, na)
		for j := range t.Acc {
			a := &t.Acc[j]
			a.Method = d.s()
			a.Recv = int32(d.i())
			a.Index = int32(d.i())
			a.FieldClass = d.s()
			a.FieldName = d.s()
			a.Kind = int8(d.i())
			a.Static = d.b()
			a.Objs = d.i32s()
		}
	}
	if d.pos != len(data) {
		return nil, errors.New("incr: trailing garbage")
	}
	return p, nil
}
