package incr_test

import (
	"reflect"
	"testing"

	"nadroid/internal/corpus"
	"nadroid/internal/dexasm"
	"nadroid/internal/incr"
	"nadroid/internal/ir"
)

// TestDigestStability proves every digest is a pure function of app
// content: a format/parse round trip (fresh IR objects, fresh maps)
// yields identical method, structure, and points-to-projection
// digests for every corpus app.
func TestDigestStability(t *testing.T) {
	for _, app := range corpus.Apps() {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			pkg := app.Build()
			reparsed, err := dexasm.Parse(dexasm.Format(pkg))
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			a := incr.MethodDigests(pkg.Program)
			b := incr.MethodDigests(reparsed.Program)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("method digests differ across reparse")
			}
			if d := incr.DiffMethods(a, b); d.Changed() != 0 {
				t.Errorf("diff across reparse: %+v", d)
			}
			if x, y := incr.StructureDigest(pkg), incr.StructureDigest(reparsed); x != y {
				t.Errorf("structure digest differs across reparse: %x vs %x", x, y)
			}
			if x, y := incr.PtsProjection(pkg, 2), incr.PtsProjection(reparsed, 2); x != y {
				t.Errorf("pts projection differs across reparse: %x vs %x", x, y)
			}
			if x, y := incr.PtsProjection(pkg, 1), incr.PtsProjection(pkg, 2); x == y {
				t.Errorf("pts projection ignores K")
			}
		})
	}
}

// TestDiffClassification edits, adds, and removes methods at the IR
// level and checks the classification sees exactly that.
func TestDiffClassification(t *testing.T) {
	pkg := corpus.Apps()[0].Build()
	base := incr.MethodDigests(pkg.Program)

	// Pick a class with a concrete method to edit.
	var victim *ir.Method
	var class *ir.Class
	for _, c := range pkg.Program.Classes() {
		for _, m := range c.Methods {
			if !m.Abstract && len(m.Instrs) > 0 {
				victim, class = m, c
				break
			}
		}
		if victim != nil {
			break
		}
	}
	if victim == nil {
		t.Fatal("no editable method in corpus app 0")
	}

	victim.Instrs = append(victim.Instrs, ir.Instr{Op: ir.OpMove, A: 0, B: 0})
	d := incr.DiffMethods(base, incr.MethodDigests(pkg.Program))
	if d.Edited != 1 || d.Added != 0 || d.Removed != 0 {
		t.Errorf("after body edit: %+v, want exactly 1 edited", d)
	}

	added := ir.NewMethod(class.Name, "incrTestAdded", 0)
	added.Instrs = []ir.Instr{{Op: ir.OpReturn, A: -1}}
	class.AddMethod(added)
	d = incr.DiffMethods(base, incr.MethodDigests(pkg.Program))
	if d.Edited != 1 || d.Added != 1 || d.Removed != 0 {
		t.Errorf("after add: %+v, want 1 edited + 1 added", d)
	}

	// Removal: diff the other direction (base has methods cur lacks).
	d = incr.DiffMethods(incr.MethodDigests(pkg.Program), base)
	if d.Removed != 1 || d.Edited != 1 {
		t.Errorf("reverse diff: %+v, want 1 removed + 1 edited", d)
	}
}

// TestStructureDigestSeesSignatures checks that body edits do NOT
// move the structure digest, while signature and hierarchy changes do.
func TestStructureDigestSeesSignatures(t *testing.T) {
	pkg := corpus.Apps()[0].Build()
	base := incr.StructureDigest(pkg)

	for _, c := range pkg.Program.Classes() {
		for _, m := range c.Methods {
			if !m.Abstract && len(m.Instrs) > 0 {
				m.Instrs = append(m.Instrs, ir.Instr{Op: ir.OpMove, A: 0, B: 0})
				if incr.StructureDigest(pkg) != base {
					t.Fatalf("body edit moved structure digest")
				}
				m.NumArgs++
				if incr.StructureDigest(pkg) == base {
					t.Fatalf("signature change did not move structure digest")
				}
				m.NumArgs--
				return
			}
		}
	}
	t.Fatal("no editable method")
}

func samplePartition() *incr.Partition {
	return &incr.Partition{
		App: "sample",
		K:   2,
		Methods: map[string]uint64{
			"A.m":  0xdeadbeef,
			"A.n":  12,
			"B.go": 1 << 60,
		},
		Structure: 7,
		PtsProj:   9,
		Heap:      11,
		Statics:   []int32{0, 3, 9},
		Threads: []incr.Thread{
			{ID: 0, Dummy: true},
			{
				ID: 1, RootDigest: 101, AccDigest: 102,
				Reach: []int32{1, 2, 5},
				Acc: []incr.Access{
					{Method: "A.m", Recv: 3, Index: 4, FieldClass: "A", FieldName: "f", Kind: 2, Static: false, Objs: []int32{3}},
					{Method: "A.m", Recv: 3, Index: 9, FieldClass: "B", FieldName: "g", Kind: 0, Static: true},
				},
			},
		},
	}
}

// TestPartitionRoundtrip checks Encode/Decode is lossless.
func TestPartitionRoundtrip(t *testing.T) {
	p := samplePartition()
	q, err := incr.Decode(p.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Errorf("roundtrip mismatch:\n in: %+v\nout: %+v", p, q)
	}
}

// TestPartitionCorruption feeds every truncation prefix plus targeted
// corruptions through Decode and requires an error — never a panic,
// never a silently wrong partition.
func TestPartitionCorruption(t *testing.T) {
	data := samplePartition().Encode()
	for n := 0; n < len(data); n++ {
		if _, err := incr.Decode(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded without error", n)
		}
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := incr.Decode(bad); err == nil {
		t.Errorf("bad magic decoded without error")
	}
	skew := append([]byte(nil), data...)
	skew[4] = incr.Version + 1
	if _, err := incr.Decode(skew); err == nil {
		t.Errorf("version skew decoded without error")
	}
	trail := append(append([]byte(nil), data...), 0)
	if _, err := incr.Decode(trail); err == nil {
		t.Errorf("trailing garbage decoded without error")
	}
}

// TestAccessConversionRoundtrip checks race.Access <-> incr.Access is
// faithful for a realistic partition.
func TestAccessConversionRoundtrip(t *testing.T) {
	p := samplePartition()
	th := p.Threads[1]
	back := incr.FromRaceAccesses(incr.ToRaceAccesses(th.ID, th.Acc))
	if !reflect.DeepEqual(back, th.Acc) {
		t.Errorf("conversion not faithful:\n in: %+v\nout: %+v", th.Acc, back)
	}
}
