package eval

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nadroid"
	"nadroid/internal/corpus"
	"nadroid/internal/explore"
	"nadroid/internal/inject"
)

// WriteArtifacts reproduces the paper artifact's Result/ folder layout:
//
//	<dir>/ResultAnalysis.csv   — the Table 1 / Figure 5 data (§A.5)
//	<dir>/Train/Table3.txt     — the DEvA comparison
//	<dir>/Injected/Table2.txt  — the false-negative study
//	<dir>/apps/<name>.csv      — per-app warning reports
//
// The paper's artifact generates the same files from run-all.sh.
func WriteArtifacts(dir string, opts Table1Options) error {
	for _, sub := range []string{"", "Train", "Injected", "apps"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return err
		}
	}

	rows, err := Table1(opts)
	if err != nil {
		return err
	}
	fig5, err := Figure5Data()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "ResultAnalysis.csv"),
		[]byte(resultAnalysisCSV(rows, fig5)), 0o644); err != nil {
		return err
	}

	t3, err := Table3()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "Train", "Table3.txt"),
		[]byte(RenderTable3(t3)), 0o644); err != nil {
		return err
	}

	t2, err := inject.Run(nil)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "Injected", "Table2.txt"),
		[]byte(RenderTable2(t2)), 0o644); err != nil {
		return err
	}

	// Per-app warning CSVs.
	want := map[string]bool{}
	for _, a := range opts.Apps {
		want[a] = true
	}
	for _, app := range corpus.Apps() {
		if len(want) > 0 && !want[app.Name()] {
			continue
		}
		res, err := nadroid.Analyze(app.Build(), nadroid.Options{})
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "apps", app.Name()+".csv")
		if err := os.WriteFile(path, []byte(res.Report.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// resultAnalysisCSV renders the combined per-app table plus the filter
// aggregates, mirroring the artifact's single-CSV shape.
func resultAnalysisCSV(rows []Table1Row, f *Figure5) string {
	var b strings.Builder
	b.WriteString("group,app,loc,ec,pc,t,potential,after_sound,after_unsound,true_harmful,seeded_true,seeded_fp\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			r.Group, r.App, r.LOC, r.EC, r.PC, r.T,
			r.Potential, r.AfterSound, r.AfterUnsound,
			r.TrueHarmful, r.SeededTrue, r.SeededFP)
	}
	b.WriteString("\nfilter,removed,basis\n")
	for _, name := range []string{"MHB", "IG", "IA"} {
		fmt.Fprintf(&b, "%s,%d,%d\n", name, f.SoundRemoved[name], f.Potential)
	}
	for _, name := range []string{"mayHB", "MA", "UR", "TT"} {
		fmt.Fprintf(&b, "%s,%d,%d\n", name, f.UnsoundRemoved[name], f.AfterSound)
	}
	return b.String()
}

// ValidateAndExplain validates one app's surviving warnings, pairing
// each confirmed bug with its replayed schedule narrative — the CLI's
// -explain mode.
func ValidateAndExplain(appName string, budget int) (string, error) {
	app, ok := corpus.ByName(appName)
	if !ok {
		return "", fmt.Errorf("eval: unknown corpus app %q", appName)
	}
	pkg := app.Build()
	res, err := nadroid.Analyze(pkg, nadroid.Options{})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	opts := explore.Options{MaxSchedules: budget}
	for _, w := range res.Detection.Alive() {
		wit, ok := explore.ValidateWarning(pkg, res.Model, w, opts)
		if !ok {
			fmt.Fprintf(&b, "UNCONFIRMED %s (no witness within %d schedules)\n", w.Field, budget)
			continue
		}
		fmt.Fprintf(&b, "HARMFUL %s — %v\n", w.Field, wit.NPE)
		for _, line := range explore.Replay(pkg, res.Model, w, wit, opts) {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String(), nil
}
