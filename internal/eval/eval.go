// Package eval regenerates every table and figure of the paper's
// evaluation (§8) over the synthetic corpus:
//
//   - Table 1: per-app pipeline results with origin classification and
//     dynamically validated harmful UAFs.
//   - Figure 5(a)/(b): independent effectiveness of the sound and unsound
//     filters.
//   - Table 2: the artificial-UAF false-negative study (package inject).
//   - Table 3: the DEvA comparison (package deva).
//   - §8.8: the phase timing breakdown.
package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nadroid"
	"nadroid/internal/corpus"
	"nadroid/internal/deva"
	"nadroid/internal/explore"
	"nadroid/internal/filters"
	"nadroid/internal/inject"
	"nadroid/internal/report"
	"nadroid/internal/threadify"
	"nadroid/internal/uaf"
)

// Table1Row is one application's evaluation record.
type Table1Row struct {
	Group string
	App   string
	LOC   int // generated instruction count (the corpus LOC stand-in)
	EC    int
	PC    int
	T     int

	Potential    int
	AfterSound   int
	AfterUnsound int

	// ByCategory classifies the surviving warnings (§7 taxonomy).
	ByCategory map[report.Category]int
	// TrueHarmful is the dynamically validated count (explorer witness).
	TrueHarmful int
	// SeededTrue/SeededFP are the generator's ground truth.
	SeededTrue int
	SeededFP   int
	// FPByKind breaks down the seeded false positives by §8.5 source.
	FPByKind map[string]int

	Timing nadroid.Timing
}

// Table1Options bounds the expensive validation step.
type Table1Options struct {
	// Validate runs the schedule explorer per surviving warning.
	Validate bool
	// MaxSchedules bounds each warning's exploration (default 3000).
	MaxSchedules int
	// Apps restricts the run to the named apps (nil = all 27).
	Apps []string
	// Workers bounds the corpus-level fan-out (apps analyzed
	// concurrently). 0 selects GOMAXPROCS; 1 forces a sequential sweep.
	// Rows come back in corpus order either way.
	Workers int
}

// Table1 runs the full pipeline (and optional dynamic validation) over
// the corpus, fanning independent apps across Workers.
func Table1(opts Table1Options) ([]Table1Row, error) {
	if opts.MaxSchedules <= 0 {
		opts.MaxSchedules = 3000
	}
	want := map[string]bool{}
	for _, a := range opts.Apps {
		want[a] = true
	}
	var sel []corpus.App
	var work []nadroid.CorpusApp
	for _, app := range corpus.Apps() {
		if len(want) > 0 && !want[app.Name()] {
			continue
		}
		app := app
		sel = append(sel, app)
		work = append(work, nadroid.CorpusApp{Name: app.Name(), Build: app.Build})
	}
	results := nadroid.AnalyzeCorpus(work, nadroid.CorpusOptions{
		Workers: opts.Workers,
		Analysis: nadroid.Options{
			Validate: opts.Validate,
			Explore:  explore.Options{MaxSchedules: opts.MaxSchedules},
		},
	})
	var rows []Table1Row
	for i, app := range sel {
		res, err := results[i].Result, results[i].Err
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %v", app.Name(), err)
		}
		pkg := res.Model.Pkg
		st := res.Model.Stats()
		row := Table1Row{
			Group:        app.Spec.Group,
			App:          app.Name(),
			LOC:          pkg.Size(),
			EC:           st.EC,
			PC:           st.PC,
			T:            st.T,
			Potential:    res.Stats.Potential,
			AfterSound:   res.Stats.AfterSound,
			AfterUnsound: res.Stats.AfterUnsound,
			ByCategory:   res.Report.ByCategory,
			TrueHarmful:  len(res.Harmful),
			SeededTrue:   app.Spec.TrueTotal(),
			SeededFP:     app.Spec.FPTotal(),
			FPByKind: map[string]int{
				"path-insens": app.Spec.FPPathInsens,
				"points-to":   app.Spec.FPPointsTo,
				"not-reach":   app.Spec.FPNotReach,
				"missing-hb":  app.Spec.FPMissingHB,
			},
			Timing: res.Timing,
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable1 formats rows like the paper's Table 1.
func RenderTable1(rows []Table1Row, validated bool) string {
	var b strings.Builder
	trueHdr := "SeedTrue"
	if validated {
		trueHdr = "TrueUAF"
	}
	fmt.Fprintf(&b, "%-6s %-14s %6s %4s %4s %3s | %6s %6s %7s | %-30s | %7s | FP(path/pts/reach/hb)\n",
		"Group", "App", "LOC", "EC", "PC", "T", "Potent", "Sound", "Unsound", "Remaining by type", trueHdr)
	for _, r := range rows {
		cats := make([]string, 0, 6)
		for _, c := range report.Categories() {
			if n := r.ByCategory[c]; n > 0 {
				cats = append(cats, fmt.Sprintf("%s:%d", c, n))
			}
		}
		trueCol := r.SeededTrue
		if validated {
			trueCol = r.TrueHarmful
		}
		fmt.Fprintf(&b, "%-6s %-14s %6d %4d %4d %3d | %6d %6d %7d | %-30s | %7d | %d/%d/%d/%d\n",
			r.Group, r.App, r.LOC, r.EC, r.PC, r.T,
			r.Potential, r.AfterSound, r.AfterUnsound,
			strings.Join(cats, " "), trueCol,
			r.FPByKind["path-insens"], r.FPByKind["points-to"], r.FPByKind["not-reach"], r.FPByKind["missing-hb"])
	}
	return b.String()
}

// Figure5 holds the independent filter-effectiveness measurement.
type Figure5 struct {
	// Potential is the test-group warning total.
	Potential int
	// SoundRemoved maps filter name -> warnings removed when applied
	// alone to the potential set (Figure 5(a)).
	SoundRemoved map[string]int
	// AfterSound is the count surviving all sound filters in sequence.
	AfterSound int
	// UnsoundRemoved maps filter name -> warnings removed when applied
	// alone to the after-sound set (Figure 5(b)). The three mayHB
	// filters (RHB/CHB/PHB) are also aggregated under "mayHB".
	UnsoundRemoved map[string]int
	// AfterUnsound is the count surviving the full pipeline.
	AfterUnsound int
}

// Figure5Data measures filter effectiveness over the 20 test apps, each
// filter independently (as the paper notes, the bars overlap).
func Figure5Data() (*Figure5, error) {
	out := &Figure5{
		SoundRemoved:   make(map[string]int),
		UnsoundRemoved: make(map[string]int),
	}
	for _, app := range corpus.TestApps() {
		pkg := app.Build()
		model, err := threadify.Build(pkg, threadify.Options{})
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %v", app.Name(), err)
		}
		d := uaf.Detect(model)
		soundRemoved, start := filters.MeasureIndependent(d, filters.SoundFilters(), false)
		out.Potential += start
		for k, v := range soundRemoved {
			out.SoundRemoved[k] += v
		}
		unsoundRemoved, afterSound := filters.MeasureIndependent(d, filters.UnsoundFilters(), true)
		out.AfterSound += afterSound
		for k, v := range unsoundRemoved {
			out.UnsoundRemoved[k] += v
		}
		st := filters.Run(d)
		out.AfterUnsound += st.AfterUnsound
	}
	out.UnsoundRemoved["mayHB"] = out.UnsoundRemoved[filters.NameRHB] +
		out.UnsoundRemoved[filters.NameCHB] + out.UnsoundRemoved[filters.NamePHB]
	return out, nil
}

// RenderFigure5 prints the two bar groups as percentage series.
func RenderFigure5(f *Figure5) string {
	var b strings.Builder
	pct := func(n, of int) float64 {
		if of == 0 {
			return 0
		}
		return 100 * float64(n) / float64(of)
	}
	fmt.Fprintf(&b, "Figure 5(a) — sound filters, applied independently (potential = %d):\n", f.Potential)
	for _, name := range []string{filters.NameMHB, filters.NameIG, filters.NameIA} {
		fmt.Fprintf(&b, "  %-4s filtered %4d (%.0f%%)\n", name, f.SoundRemoved[name], pct(f.SoundRemoved[name], f.Potential))
	}
	fmt.Fprintf(&b, "  All  remaining %4d (%.0f%% filtered)\n", f.AfterSound, pct(f.Potential-f.AfterSound, f.Potential))
	fmt.Fprintf(&b, "Figure 5(b) — unsound filters after sound (remaining = %d):\n", f.AfterSound)
	for _, name := range []string{"mayHB", filters.NameMA, filters.NameUR, filters.NameTT} {
		fmt.Fprintf(&b, "  %-5s filtered %4d (%.0f%%)\n", name, f.UnsoundRemoved[name], pct(f.UnsoundRemoved[name], f.AfterSound))
	}
	fmt.Fprintf(&b, "  All   remaining %4d (%.0f%% filtered)\n", f.AfterUnsound, pct(f.AfterSound-f.AfterUnsound, f.AfterSound))
	return b.String()
}

// RenderTable2 formats the injection-study rows.
func RenderTable2(rows []inject.Row) string {
	var b strings.Builder
	kinds := inject.KindsInOrder(rows)
	fmt.Fprintf(&b, "%-12s", "App")
	for _, k := range kinds {
		fmt.Fprintf(&b, " %13s", k)
	}
	fmt.Fprintf(&b, " %4s %7s %14s\n", "All", "Missed", "PrunedUnsound")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.App)
		for _, k := range kinds {
			fmt.Fprintf(&b, " %13d", r.ByKind[k])
		}
		fmt.Fprintf(&b, " %4d %7d %14d\n", r.All(), r.Missed(), r.PrunedUnsound())
	}
	all, missed, pruned := inject.Totals(rows)
	fmt.Fprintf(&b, "%-12s", "Total")
	for range kinds {
		fmt.Fprintf(&b, " %13s", "")
	}
	fmt.Fprintf(&b, " %4d %7d %14d\n", all, missed, pruned)
	return b.String()
}

// Table3Row is one DEvA-harmful warning with nAdroid's verdict.
type Table3Row struct {
	App          string
	Field        string
	UseCallback  string
	FreeCallback string
	// Detected: nAdroid's detector (with only the IG/IA sound filters,
	// per §8.7's methodology) reports the same pair.
	Detected bool
	// Filtered: the full nAdroid filter pipeline prunes it.
	Filtered bool
	// FilteredBy names the pruning filter when Filtered.
	FilteredBy string
}

// Verdict renders the paper's last-column phrasing.
func (r Table3Row) Verdict() string {
	switch {
	case !r.Detected:
		return "Not detected"
	case r.Filtered:
		return "Detected & Filtered (" + r.FilteredBy + ")"
	default:
		return "Detected & Reported"
	}
}

// Table3 compares nAdroid against DEvA on the training apps.
func Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, app := range corpus.TrainApps() {
		pkg := app.Build()
		anomalies := deva.Analyze(pkg)
		if len(anomalies) == 0 {
			continue
		}
		model, err := threadify.Build(pkg, threadify.Options{})
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %v", app.Name(), err)
		}
		d := uaf.Detect(model)
		// Index nAdroid warnings by field before filtering.
		type verdict struct {
			detected, filtered bool
			by                 string
		}
		byField := make(map[string]*verdict)
		for _, w := range d.Warnings {
			byField[w.Field.String()] = &verdict{detected: true}
		}
		filters.Run(d)
		for _, w := range d.Warnings {
			v := byField[w.Field.String()]
			if !w.Alive() {
				v.filtered = true
				for _, name := range w.FilteredBy {
					v.by = name
				}
			} else {
				v.filtered = false
			}
		}
		for _, a := range anomalies {
			row := Table3Row{
				App:          app.Name(),
				Field:        a.Field.String(),
				UseCallback:  a.UseCallback,
				FreeCallback: a.FreeCallback,
			}
			if v, ok := byField[a.Field.String()]; ok {
				row.Detected = true
				row.Filtered = v.filtered
				row.FilteredBy = v.by
			}
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].App != rows[j].App {
			return rows[i].App < rows[j].App
		}
		return rows[i].Field < rows[j].Field
	})
	return rows, nil
}

// RenderTable3 formats the DEvA comparison.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-28s %-34s %-34s %s\n", "App", "Field", "Use Callback", "Free Callback", "nAdroid")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-28s %-34s %-34s %s\n", r.App, r.Field, r.UseCallback, r.FreeCallback, r.Verdict())
	}
	return b.String()
}

// TimingBreakdown aggregates §8.8's phase split over the given rows.
type TimingBreakdown struct {
	Modeling, Detection, Filtering          time.Duration
	ModelingPct, DetectionPct, FilteringPct float64
}

// Timing computes the phase percentages from Table 1 rows.
func Timing(rows []Table1Row) TimingBreakdown {
	var t TimingBreakdown
	for _, r := range rows {
		t.Modeling += r.Timing.Modeling
		t.Detection += r.Timing.Detection
		t.Filtering += r.Timing.Filtering
	}
	total := t.Modeling + t.Detection + t.Filtering
	if total > 0 {
		t.ModelingPct = 100 * float64(t.Modeling) / float64(total)
		t.DetectionPct = 100 * float64(t.Detection) / float64(total)
		t.FilteringPct = 100 * float64(t.Filtering) / float64(total)
	}
	return t
}

// RenderTiming formats the §8.8 breakdown.
func RenderTiming(t TimingBreakdown) string {
	return fmt.Sprintf(
		"Phase breakdown (§8.8): modeling %v (%.2f%%), detection %v (%.2f%%), filtering %v (%.2f%%)\n",
		t.Modeling.Round(time.Millisecond), t.ModelingPct,
		t.Detection.Round(time.Millisecond), t.DetectionPct,
		t.Filtering.Round(time.Millisecond), t.FilteringPct)
}
