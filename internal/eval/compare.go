package eval

import (
	"fmt"
	"strings"

	"nadroid/internal/filters"
	"nadroid/internal/inject"
)

// Comparison is one paper-vs-measured checkpoint.
type Comparison struct {
	Artifact string // which table/figure
	Quantity string
	Paper    string
	Measured string
	// Match is true when the reproduction target holds (exact for
	// counts the paper fixes, shape-bounds for scaled percentages).
	Match bool
}

// ComparePaper regenerates every headline number and checks it against
// the paper's. Validation of Table 1 is the expensive part; budget
// bounds each warning's exploration.
func ComparePaper(budget int) ([]Comparison, error) {
	if budget <= 0 {
		budget = 3000
	}
	var out []Comparison
	add := func(artifact, quantity, paper, measured string, match bool) {
		out = append(out, Comparison{artifact, quantity, paper, measured, match})
	}

	// Table 1 with validation.
	rows, err := Table1(Table1Options{Validate: true, MaxSchedules: budget})
	if err != nil {
		return nil, err
	}
	total := 0
	perApp := map[string]int{}
	for _, r := range rows {
		total += r.TrueHarmful
		perApp[r.App] = r.TrueHarmful
	}
	add("Table 1", "true harmful UAFs (validated)", "88", fmt.Sprint(total), total == 88)
	add("Table 1", "ConnectBot true UAFs", "13", fmt.Sprint(perApp["ConnectBot"]), perApp["ConnectBot"] == 13)
	add("Table 1", "MyTracks_1 true UAFs", "29", fmt.Sprint(perApp["MyTracks_1"]), perApp["MyTracks_1"] == 29)
	tm := Timing(rows)
	add("§8.8", "detection share of static time", "95.73%",
		fmt.Sprintf("%.1f%%", tm.DetectionPct), tm.DetectionPct > 80)

	// Figure 5.
	f, err := Figure5Data()
	if err != nil {
		return nil, err
	}
	pct := func(n, of int) float64 {
		if of == 0 {
			return 0
		}
		return 100 * float64(n) / float64(of)
	}
	ig := pct(f.SoundRemoved[filters.NameIG], f.Potential)
	mhb := pct(f.SoundRemoved[filters.NameMHB], f.Potential)
	ia := pct(f.SoundRemoved[filters.NameIA], f.Potential)
	add("Figure 5(a)", "IG alone", "66%", fmt.Sprintf("%.0f%%", ig), ig >= 40)
	add("Figure 5(a)", "MHB alone", "21%", fmt.Sprintf("%.0f%%", mhb), mhb >= 8)
	add("Figure 5(a)", "IA alone", "13%", fmt.Sprintf("%.0f%%", ia), ia >= 5)
	add("Figure 5(a)", "ordering IG > MHB > IA", "holds",
		fmt.Sprintf("%.0f/%.0f/%.0f", ig, mhb, ia), ig > mhb && mhb > ia)
	soundAll := pct(f.Potential-f.AfterSound, f.Potential)
	add("Figure 5(a)", "all sound filters", "88%", fmt.Sprintf("%.0f%%", soundAll), soundAll >= 65)
	unsoundAll := pct(f.AfterSound-f.AfterUnsound, f.AfterSound)
	add("Figure 5(b)", "all unsound filters", "70%", fmt.Sprintf("%.0f%%", unsoundAll), unsoundAll >= 50)

	// Table 2.
	t2, err := inject.Run(nil)
	if err != nil {
		return nil, err
	}
	all, missed, pruned := inject.Totals(t2)
	add("Table 2", "injected UAFs", "28", fmt.Sprint(all), all == 28)
	add("Table 2", "missed by detection", "2", fmt.Sprint(missed), missed == 2)
	add("Table 2", "pruned by unsound filters", "3", fmt.Sprint(pruned), pruned == 3)

	// Table 3.
	t3, err := Table3()
	if err != nil {
		return nil, err
	}
	var filtered, reported, notDetected int
	for _, r := range t3 {
		switch {
		case !r.Detected:
			notDetected++
		case r.Filtered:
			filtered++
		default:
			reported++
		}
	}
	add("Table 3", "DEvA warnings nAdroid filters", "11-12", fmt.Sprint(filtered), filtered >= 10)
	add("Table 3", "agreed harmful", "1", fmt.Sprint(reported), reported == 1)
	add("Table 3", "not detected (Fragment)", "1", fmt.Sprint(notDetected), notDetected == 1)

	return out, nil
}

// RenderComparison formats the checkpoint table.
func RenderComparison(rows []Comparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-34s %10s %10s  %s\n", "Artifact", "Quantity", "Paper", "Measured", "OK")
	ok := 0
	for _, r := range rows {
		mark := "FAIL"
		if r.Match {
			mark = "ok"
			ok++
		}
		fmt.Fprintf(&b, "%-12s %-34s %10s %10s  %s\n", r.Artifact, r.Quantity, r.Paper, r.Measured, mark)
	}
	fmt.Fprintf(&b, "%d/%d reproduction checkpoints hold\n", ok, len(rows))
	return b.String()
}
