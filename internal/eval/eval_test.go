package eval

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nadroid/internal/filters"
)

// TestTable1ValidatedMatchesPaper is the headline reproduction: running
// the full pipeline with dynamic validation over all 27 apps must
// confirm exactly the paper's 88 true harmful UAFs, and never validate a
// seeded false positive.
func TestTable1ValidatedMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full validated corpus run (30s+); skipped with -short")
	}
	rows, err := Table1(Table1Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 27 {
		t.Fatalf("rows = %d, want 27", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.TrueHarmful
		if r.TrueHarmful != r.SeededTrue {
			t.Errorf("%s: validated %d, seeded %d — %s",
				r.App, r.TrueHarmful, r.SeededTrue,
				map[bool]string{true: "missed true bugs", false: "validated a false positive"}[r.TrueHarmful < r.SeededTrue])
		}
		if r.AfterUnsound != r.SeededTrue+r.SeededFP {
			t.Errorf("%s: surviving %d != seeded true %d + fp %d", r.App, r.AfterUnsound, r.SeededTrue, r.SeededFP)
		}
	}
	if total != 88 {
		t.Errorf("total true harmful = %d, want the paper's 88", total)
	}
	// §8.8 shape: detection dominates the static phases.
	tm := Timing(rows)
	if tm.DetectionPct < 80 {
		t.Errorf("detection = %.1f%% of static time, want the dominant share (paper: 95.7%%)", tm.DetectionPct)
	}
	if tm.ModelingPct > 10 || tm.FilteringPct > 10 {
		t.Errorf("modeling/filtering = %.1f%%/%.1f%%, want small shares (paper: 1.2%%/3.1%%)",
			tm.ModelingPct, tm.FilteringPct)
	}
	out := RenderTable1(rows, true)
	if !strings.Contains(out, "ConnectBot") || !strings.Contains(out, "EC-PC:12") {
		t.Errorf("render missing expected content:\n%s", out)
	}
}

// TestFigure5Shape asserts the filter-effectiveness ordering and rough
// magnitudes of Figure 5.
func TestFigure5Shape(t *testing.T) {
	f, err := Figure5Data()
	if err != nil {
		t.Fatal(err)
	}
	pct := func(n, of int) float64 { return 100 * float64(n) / float64(of) }
	ig := pct(f.SoundRemoved[filters.NameIG], f.Potential)
	mhb := pct(f.SoundRemoved[filters.NameMHB], f.Potential)
	ia := pct(f.SoundRemoved[filters.NameIA], f.Potential)
	if !(ig > mhb && mhb > ia) {
		t.Errorf("Figure 5(a) ordering IG > MHB > IA violated: %.0f/%.0f/%.0f", ig, mhb, ia)
	}
	if ig < 40 {
		t.Errorf("IG alone = %.0f%%, want the dominant filter (paper: 66%%)", ig)
	}
	all := pct(f.Potential-f.AfterSound, f.Potential)
	if all < 65 {
		t.Errorf("sound filters = %.0f%%, want the large majority (paper: 88%%)", all)
	}
	// Figure 5(b): UR and MA are the big unsound filters.
	ur := pct(f.UnsoundRemoved[filters.NameUR], f.AfterSound)
	ma := pct(f.UnsoundRemoved[filters.NameMA], f.AfterSound)
	tt := pct(f.UnsoundRemoved[filters.NameTT], f.AfterSound)
	mayHB := pct(f.UnsoundRemoved["mayHB"], f.AfterSound)
	for name, v := range map[string]float64{"UR": ur, "MA": ma, "TT": tt, "mayHB": mayHB} {
		if v <= 0 {
			t.Errorf("%s filtered nothing", name)
		}
	}
	allU := pct(f.AfterSound-f.AfterUnsound, f.AfterSound)
	if allU < 50 {
		t.Errorf("unsound filters = %.0f%% of remainder, want most (paper: 70%%)", allU)
	}
	if s := RenderFigure5(f); !strings.Contains(s, "Figure 5(a)") || !strings.Contains(s, "Figure 5(b)") {
		t.Error("render missing sections")
	}
}

// TestTable3Shape asserts the DEvA comparison outcome distribution: most
// DEvA-harmful warnings are detected-and-filtered by nAdroid (MHB
// dominating, CHB covering the finish cases), exactly one is agreed
// harmful, and exactly one (the Fragment case) is not detected.
func TestTable3Shape(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 12 {
		t.Fatalf("rows = %d, want the Table 3 set (~14)", len(rows))
	}
	var filtered, reported, notDetected, mhb, chb int
	for _, r := range rows {
		switch {
		case !r.Detected:
			notDetected++
			if !strings.Contains(r.Field, "Frag") {
				t.Errorf("only the Fragment case may be undetected, got %s", r.Field)
			}
		case r.Filtered:
			filtered++
			switch r.FilteredBy {
			case filters.NameMHB:
				mhb++
			case filters.NameCHB:
				chb++
			}
		default:
			reported++
		}
	}
	if notDetected != 1 {
		t.Errorf("not detected = %d, want 1 (Fragment, §8.1)", notDetected)
	}
	if reported != 1 {
		t.Errorf("reported = %d, want 1 (the MyTracks back-button bug)", reported)
	}
	if filtered < 10 {
		t.Errorf("filtered = %d, want >= 10", filtered)
	}
	if mhb < chb || chb != 2 {
		t.Errorf("filter split MHB=%d CHB=%d, want MHB-dominated with CHB=2 (paper: 9/2)", mhb, chb)
	}
	if s := RenderTable3(rows); !strings.Contains(s, "Not detected") || !strings.Contains(s, "Detected & Reported") {
		t.Error("render missing verdicts")
	}
}

// TestTable1SubsetNoValidation checks the cheap path and renderers.
func TestTable1SubsetNoValidation(t *testing.T) {
	rows, err := Table1(Table1Options{Apps: []string{"ConnectBot", "Swiftnotes"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	byApp := map[string]Table1Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	cb := byApp["ConnectBot"]
	if cb.AfterUnsound != 13 || cb.SeededTrue != 13 {
		t.Errorf("ConnectBot row wrong: %+v", cb)
	}
	if cb.TrueHarmful != 0 {
		t.Error("TrueHarmful must be 0 without validation")
	}
	sw := byApp["Swiftnotes"]
	if sw.Potential != 0 || sw.AfterUnsound != 0 {
		t.Errorf("Swiftnotes should be clean: %+v", sw)
	}
}

// TestWriteArtifacts produces the Result/ folder layout and spot-checks
// its contents.
func TestWriteArtifacts(t *testing.T) {
	dir := t.TempDir()
	err := WriteArtifacts(dir, Table1Options{Apps: []string{"ConnectBot", "ToDoList"}})
	if err != nil {
		t.Fatal(err)
	}
	main, err := os.ReadFile(filepath.Join(dir, "ResultAnalysis.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(main), "ConnectBot") || !strings.Contains(string(main), "filter,removed,basis") {
		t.Errorf("ResultAnalysis.csv malformed:\n%s", main)
	}
	for _, f := range []string{"Train/Table3.txt", "Injected/Table2.txt", "apps/ConnectBot.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
	appCSV, _ := os.ReadFile(filepath.Join(dir, "apps", "ConnectBot.csv"))
	if !strings.Contains(string(appCSV), "f_svc") {
		t.Errorf("ConnectBot.csv missing warnings:\n%s", appCSV)
	}
}

// TestValidateAndExplain pairs witnesses with replayed narratives.
func TestValidateAndExplain(t *testing.T) {
	out, err := ValidateAndExplain("ConnectBot", 3000)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "UNCONFIRMED") {
		t.Errorf("all ConnectBot warnings must confirm:\n%s", out)
	}
	if c := strings.Count(out, "HARMFUL"); c != 13 {
		t.Errorf("HARMFUL lines = %d, want 13", c)
	}
	if !strings.Contains(out, "fire lifecycle:onCreate") || !strings.Contains(out, "NPE") {
		t.Errorf("narratives missing events:\n%s", out)
	}
}

// TestComparePaperAllCheckpointsHold is the one-shot reproduction gate.
func TestComparePaperAllCheckpointsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction sweep; skipped with -short")
	}
	rows, err := ComparePaper(3000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Match {
			t.Errorf("%s / %s: paper %s, measured %s", r.Artifact, r.Quantity, r.Paper, r.Measured)
		}
	}
	if s := RenderComparison(rows); !strings.Contains(s, "reproduction checkpoints hold") {
		t.Error("render malformed")
	}
}
