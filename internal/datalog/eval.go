package datalog

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Semi-naive evaluation. Each round snapshots every relation's new rows
// as a delta range, fans (rule × delta-chunk) work items out to a
// bounded worker pool, then merges the emitted tuples back into the head
// relations in deterministic item order, sharded by relation. Joins bind
// into a reusable flat environment — the per-tuple hot path performs no
// allocation. The fixpoint is a set, so results are identical for any
// worker count.

// unboundSym marks an empty environment slot. Interned symbols are
// always >= 0.
const unboundSym = Sym(-1)

// workItem is one (rule, plan, delta row range) unit of a round.
type workItem struct {
	cr     *crule
	plan   *cplan
	lo, hi int
}

// scratch is one worker's reusable evaluation state.
type scratch struct {
	env []Sym
	// prem is the premise stack of the provenance evaluation path: the
	// packed tuple IDs of the positive body literals matched so far.
	prem []int64
}

func newScratch(e *Engine) *scratch {
	n := 0
	for _, cr := range e.compiled {
		if cr.nvars > n {
			n = cr.nvars
		}
	}
	env := make([]Sym, n)
	for i := range env {
		env[i] = unboundSym
	}
	return &scratch{env: env}
}

// Run evaluates all rules to fixpoint using semi-naive iteration.
//
// Run is incremental across calls on one engine: the first call
// evaluates everything, and a later call only re-derives what changed —
// rules added since the previous Run get one seeding round over the
// whole existing database, and every rule then iterates over the rows
// appended since the previous fixpoint (new base facts plus what the
// seeding round derived). A Run with no new rules and no new facts is a
// no-op. This is what lets detectors layer rule families onto one
// shared engine without re-paying the earlier families' joins.
func (e *Engine) Run() {
	e.compile()
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e.stats.Workers = workers

	// Materialize every index the join plans probe, so evaluation
	// goroutines only read relation state.
	for _, cr := range e.compiled {
		for pi := range cr.plans {
			for li := range cr.plans[pi].body {
				if l := &cr.plans[pi].body[li]; l.rel != nil && l.lookupCol >= 0 {
					l.rel.buildIndex(l.lookupCol)
				}
			}
		}
	}
	defer func() {
		for _, r := range e.relList {
			r.evalMark = r.rows
		}
		e.ranRules = len(e.compiled)
	}()

	if e.ranRules == 0 {
		// First evaluation: the first delta is everything currently in
		// each relation.
		for _, r := range e.relList {
			r.deltaLo, r.deltaHi = 0, r.rows
		}
		e.fixpoint(e.compiled, workers)
		return
	}

	// Incremental re-run. New rules have never seen the database: give
	// them one round where the delta is every existing row. Their
	// derivations land above each relation's evalMark, so the fixpoint
	// below picks them up.
	if fresh := e.compiled[e.ranRules:]; len(fresh) > 0 {
		for _, r := range e.relList {
			r.deltaLo, r.deltaHi = 0, r.rows
		}
		if items := e.buildWorkItems(nil, workers, fresh); len(items) > 0 {
			e.stats.Iterations++
			outs, provs := e.evalRound(items, workers)
			e.stats.Derived += e.mergeRound(items, outs, provs, workers)
		}
	}
	// Old rules already reached fixpoint over rows below evalMark; only
	// the appended rows can produce new joins (each delta plan probes
	// the full relations for its other literals).
	for _, r := range e.relList {
		r.deltaLo, r.deltaHi = r.evalMark, r.rows
	}
	e.fixpoint(e.compiled, workers)
}

// fixpoint iterates the rules' delta plans from the currently seeded
// per-relation deltas until no relation grows.
func (e *Engine) fixpoint(rules []*crule, workers int) {
	var items []workItem
	for {
		e.stats.Iterations++
		items = e.buildWorkItems(items[:0], workers, rules)
		if len(items) == 0 {
			return
		}
		outs, provs := e.evalRound(items, workers)

		// Merge: new rows become the next delta.
		for _, r := range e.relList {
			r.deltaLo = r.rows
		}
		e.stats.Derived += e.mergeRound(items, outs, provs, workers)
		grew := false
		for _, r := range e.relList {
			r.deltaHi = r.rows
			if r.deltaHi > r.deltaLo {
				grew = true
			}
		}
		if !grew {
			return
		}
	}
}

// buildWorkItems chunks every given rule's non-empty delta ranges.
// Chunks are sized so each worker sees several items (for load balance)
// without fragmenting small deltas.
func (e *Engine) buildWorkItems(items []workItem, workers int, rules []*crule) []workItem {
	for _, cr := range rules {
		for pi := range cr.plans {
			p := &cr.plans[pi]
			d := p.delta.rel
			n := d.deltaHi - d.deltaLo
			if n <= 0 {
				continue
			}
			chunk := n
			if workers > 1 {
				chunk = (n + workers*4 - 1) / (workers * 4)
				if chunk < 128 {
					chunk = 128
				}
			}
			for lo := d.deltaLo; lo < d.deltaHi; lo += chunk {
				hi := lo + chunk
				if hi > d.deltaHi {
					hi = d.deltaHi
				}
				items = append(items, workItem{cr: cr, plan: p, lo: lo, hi: hi})
			}
		}
	}
	// Count a fired round per rule with work this round. Items for one
	// rule are contiguous (rules, then plans, then chunks, in order).
	var last *crule
	for i := range items {
		if items[i].cr != last {
			last = items[i].cr
			e.ruleRounds[last.idx]++
		}
	}
	return items
}

// evalRound evaluates the items, returning one flat emit buffer per
// item (plus, in provenance mode, one aligned cell buffer per item).
// Buffers are indexed by item, not worker, so the merge order is
// independent of goroutine scheduling.
func (e *Engine) evalRound(items []workItem, workers int) ([][]Sym, [][]provCell) {
	outs := make([][]Sym, len(items))
	var provs [][]provCell
	if e.provOn {
		provs = make([][]provCell, len(items))
	}
	runItem := func(i int, sc *scratch) {
		start := time.Now()
		if provs != nil {
			outs[i], provs[i] = e.evalItemProv(&items[i], sc, nil, nil)
		} else {
			outs[i] = e.evalItem(&items[i], sc, nil)
		}
		atomic.AddInt64(&e.ruleNanos[items[i].cr.idx], int64(time.Since(start)))
	}
	if workers == 1 || len(items) == 1 {
		sc := newScratch(e)
		for i := range items {
			runItem(i, sc)
		}
		return outs, provs
	}
	if workers > len(items) {
		workers = len(items)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newScratch(e)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				runItem(i, sc)
			}
		}()
	}
	wg.Wait()
	return outs, provs
}

// mergeRound inserts the emitted tuples into their head relations in
// item order, sharding the work by head relation (each relation has a
// single writer, so index and table maintenance stay race-free).
// Returns the number of new tuples. In provenance mode the aligned cell
// buffers annotate each newly inserted row with the rule and premises
// that first derived it — "first" is deterministic because shard item
// order is fixed regardless of worker count.
func (e *Engine) mergeRound(items []workItem, outs [][]Sym, provs [][]provCell, workers int) int {
	type shard struct {
		rel   *Relation
		items []int
	}
	var shards []*shard
	byRel := make(map[*Relation]*shard)
	for i := range items {
		if len(outs[i]) == 0 {
			continue
		}
		rel := items[i].cr.headRel
		s, ok := byRel[rel]
		if !ok {
			s = &shard{rel: rel}
			byRel[rel] = s
			shards = append(shards, s)
		}
		s.items = append(s.items, i)
	}
	mergeShard := func(s *shard) int {
		derived := 0
		arity := s.rel.arity
		for _, i := range s.items {
			buf := outs[i]
			itemNew := 0
			var cells []provCell
			if provs != nil {
				cells = provs[i]
			}
			if arity == 0 {
				if s.rel.insert(nil) {
					itemNew++
					if len(cells) > 0 {
						s.rel.prov[0] = cells[0]
					}
				}
			} else {
				k := 0
				for off := 0; off+arity <= len(buf); off += arity {
					if s.rel.insert(buf[off : off+arity]) {
						itemNew++
						if cells != nil {
							s.rel.prov[s.rel.rows-1] = cells[k]
						}
					}
					k++
				}
			}
			if itemNew > 0 {
				atomic.AddInt64(&e.ruleDerived[items[i].cr.idx], int64(itemNew))
				derived += itemNew
			}
		}
		return derived
	}
	if workers == 1 || len(shards) <= 1 {
		derived := 0
		for _, s := range shards {
			derived += mergeShard(s)
		}
		return derived
	}
	var derived atomic.Int64
	var wg sync.WaitGroup
	if workers > len(shards) {
		workers = len(shards)
	}
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				derived.Add(int64(mergeShard(shards[i])))
			}
		}()
	}
	wg.Wait()
	return int(derived.Load())
}

// evalItem joins each delta row of the item against the plan, appending
// emitted head tuples flat onto out.
func (e *Engine) evalItem(it *workItem, sc *scratch, out []Sym) []Sym {
	cr, p := it.cr, it.plan
	env := sc.env
	d := &p.delta
	var boundSlots [maxArity]int
	for rowID := it.lo; rowID < it.hi; rowID++ {
		t := d.rel.row(rowID)
		nb := 0
		ok := true
		for ci := range d.terms {
			ct := &d.terms[ci]
			v := t[ci]
			switch {
			case ct.isConst:
				if ct.val != v {
					ok = false
				}
			case ct.slot >= 0:
				if env[ct.slot] == unboundSym {
					env[ct.slot] = v
					boundSlots[nb] = ct.slot
					nb++
				} else if env[ct.slot] != v {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			out = e.joinBody(cr, p, 0, env, out)
		}
		for i := 0; i < nb; i++ {
			env[boundSlots[i]] = unboundSym
		}
	}
	return out
}

// joinBody extends the environment over plan.body[i:], emitting the head
// tuple when the body is exhausted.
func (e *Engine) joinBody(cr *crule, p *cplan, i int, env []Sym, out []Sym) []Sym {
	if i == len(p.body) {
		return emitHead(cr, env, out)
	}
	l := &p.body[i]
	switch l.builtin {
	case BuiltinNeq:
		a, b := termVal(&l.terms[0], env), termVal(&l.terms[1], env)
		if a != b {
			out = e.joinBody(cr, p, i+1, env, out)
		}
		return out
	case BuiltinEq:
		ta, tb := &l.terms[0], &l.terms[1]
		av, abound := termBound(ta, env)
		bv, bbound := termBound(tb, env)
		switch {
		case abound && bbound:
			if av == bv {
				out = e.joinBody(cr, p, i+1, env, out)
			}
		case abound:
			if tb.slot < 0 { // binding a wildcard is a no-op
				return e.joinBody(cr, p, i+1, env, out)
			}
			env[tb.slot] = av
			out = e.joinBody(cr, p, i+1, env, out)
			env[tb.slot] = unboundSym
		case bbound:
			if ta.slot < 0 {
				return e.joinBody(cr, p, i+1, env, out)
			}
			env[ta.slot] = bv
			out = e.joinBody(cr, p, i+1, env, out)
			env[ta.slot] = unboundSym
		}
		return out
	}
	r := l.rel
	if r.arity == 0 {
		if r.rows > 0 {
			out = e.joinBody(cr, p, i+1, env, out)
		}
		return out
	}
	if l.lookupCol >= 0 {
		kt := &l.terms[l.lookupCol]
		key := kt.val
		if !kt.isConst {
			key = env[kt.slot]
		}
		for _, id := range r.index[l.lookupCol][key] {
			out = e.joinRow(cr, p, i, l, r.row(int(id)), env, out)
		}
		return out
	}
	for id := 0; id < r.rows; id++ {
		out = e.joinRow(cr, p, i, l, r.row(id), env, out)
	}
	return out
}

// joinRow unifies one candidate row against literal l, recursing into
// the rest of the plan on success.
func (e *Engine) joinRow(cr *crule, p *cplan, i int, l *clit, t []Sym, env []Sym, out []Sym) []Sym {
	var boundSlots [maxArity]int
	nb := 0
	ok := true
	for ci := range l.terms {
		ct := &l.terms[ci]
		v := t[ci]
		switch {
		case ct.isConst:
			if ct.val != v {
				ok = false
			}
		case ct.slot >= 0:
			if env[ct.slot] == unboundSym {
				env[ct.slot] = v
				boundSlots[nb] = ct.slot
				nb++
			} else if env[ct.slot] != v {
				ok = false
			}
		}
		if !ok {
			break
		}
	}
	if ok {
		out = e.joinBody(cr, p, i+1, env, out)
	}
	for k := 0; k < nb; k++ {
		env[boundSlots[k]] = unboundSym
	}
	return out
}

// emitHead resolves the head tuple and appends it to out, skipping
// immediate duplicates (full dedup happens at merge). Arity-0 heads
// leave a single marker so the merge knows the rule fired.
func emitHead(cr *crule, env []Sym, out []Sym) []Sym {
	ha := len(cr.head)
	if ha == 0 {
		if len(out) == 0 {
			out = append(out, 0)
		}
		return out
	}
	var tup [maxArity]Sym
	for hi := range cr.head {
		ct := &cr.head[hi]
		if ct.isConst {
			tup[hi] = ct.val
		} else {
			tup[hi] = env[ct.slot]
		}
	}
	if n := len(out); n >= ha && ha > 0 {
		same := true
		for k := 0; k < ha; k++ {
			if out[n-ha+k] != tup[k] {
				same = false
				break
			}
		}
		if same {
			return out
		}
	}
	return append(out, tup[:ha]...)
}

// termVal resolves a term the planner guaranteed is bound.
func termVal(t *cterm, env []Sym) Sym {
	if t.isConst {
		return t.val
	}
	return env[t.slot]
}

// termBound resolves a term that may still be unbound (Eq operands).
func termBound(t *cterm, env []Sym) (Sym, bool) {
	if t.isConst {
		return t.val, true
	}
	if t.slot < 0 {
		return 0, false
	}
	v := env[t.slot]
	return v, v != unboundSym
}
