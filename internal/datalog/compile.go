package datalog

import "fmt"

// Rule compilation: each rule's variables are numbered into dense slots
// so evaluation binds into a flat []Sym environment instead of a
// map[string]Sym per delta tuple, and each (rule, delta position) pair
// gets a static join plan that orders the remaining body literals by
// bound-column availability instead of left-to-right source order.

// cterm is a compiled term: a constant, a variable slot, or a wildcard.
type cterm struct {
	isConst bool
	slot    int // variable slot; -1 for wildcards and constants
	val     Sym // constant value when isConst
}

// clit is a compiled body literal.
type clit struct {
	rel     *Relation // nil for builtins
	builtin BuiltinKind
	terms   []cterm
	// lookupCol is the column probed through the relation's index when
	// this literal is joined (-1 = full scan). Chosen per plan, so clit
	// values are copied into plans rather than shared.
	lookupCol int
}

// cplan is the join order for one choice of delta literal.
type cplan struct {
	delta clit
	body  []clit // remaining literals, in join order
}

// crule is a compiled rule.
type crule struct {
	src     string
	headRel *Relation
	head    []cterm
	nvars   int
	plans   []cplan
	// idx is the rule's position in e.compiled; it keys provenance cells
	// and the per-rule stat counters.
	idx int
}

// compile extends e.compiled to cover rules added since the last Run.
func (e *Engine) compile() {
	for i := len(e.compiled); i < len(e.rules); i++ {
		cr := e.compileRule(e.rules[i])
		cr.idx = i
		e.compiled = append(e.compiled, cr)
	}
	for len(e.ruleDerived) < len(e.compiled) {
		e.ruleDerived = append(e.ruleDerived, 0)
		e.ruleRounds = append(e.ruleRounds, 0)
		e.ruleNanos = append(e.ruleNanos, 0)
	}
}

func (e *Engine) compileRule(r *Rule) *crule {
	slots := make(map[string]int)
	compileTerm := func(t Term) cterm {
		if !t.IsVar {
			return cterm{isConst: true, slot: -1, val: t.Const}
		}
		if t.Var == "_" {
			return cterm{slot: -1}
		}
		s, ok := slots[t.Var]
		if !ok {
			s = len(slots)
			slots[t.Var] = s
		}
		return cterm{slot: s}
	}
	compileLit := func(l Literal) clit {
		cl := clit{builtin: l.Builtin, lookupCol: -1}
		if l.Builtin == BuiltinNone {
			cl.rel = e.rels[l.Pred]
		}
		cl.terms = make([]cterm, len(l.Terms))
		for i, t := range l.Terms {
			cl.terms[i] = compileTerm(t)
		}
		return cl
	}

	body := make([]clit, len(r.Body))
	for i, l := range r.Body {
		body[i] = compileLit(l)
	}
	cr := &crule{
		src:     r.src,
		headRel: e.rels[r.Head.Pred],
		head:    make([]cterm, len(r.Head.Terms)),
	}
	for i, t := range r.Head.Terms {
		cr.head[i] = compileTerm(t)
	}
	cr.nvars = len(slots)

	for _, dpos := range r.positiveIdx {
		cr.plans = append(cr.plans, planJoin(r, body, dpos, cr.nvars))
	}
	return cr
}

// planJoin orders the body literals other than dpos: builtins run as
// soon as their operands are resolvable, and among positive literals the
// one with the most bound columns joins next (ties break on source
// order, keeping plans deterministic).
func planJoin(r *Rule, body []clit, dpos, nvars int) cplan {
	bound := make([]bool, nvars)
	markBound := func(l clit) {
		for _, t := range l.terms {
			if !t.isConst && t.slot >= 0 {
				bound[t.slot] = true
			}
		}
	}
	resolvable := func(t cterm) bool {
		return t.isConst || (t.slot >= 0 && bound[t.slot])
	}

	plan := cplan{delta: body[dpos]}
	markBound(plan.delta)

	remaining := make([]int, 0, len(body)-1)
	for i := range body {
		if i != dpos {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		pick := -1
		// Builtins first, as soon as they are ready: they only narrow.
		for j, bi := range remaining {
			l := body[bi]
			switch l.builtin {
			case BuiltinNeq:
				if resolvable(l.terms[0]) && resolvable(l.terms[1]) {
					pick = j
				}
			case BuiltinEq:
				if resolvable(l.terms[0]) || resolvable(l.terms[1]) {
					pick = j
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			best := -1
			for j, bi := range remaining {
				l := body[bi]
				if l.builtin != BuiltinNone {
					continue
				}
				score := 0
				for _, t := range l.terms {
					if resolvable(t) {
						score++
					}
				}
				if best < 0 || score > best {
					best, pick = score, j
				}
			}
			if pick < 0 {
				panic(fmt.Sprintf("datalog: unbound variable in builtin of rule %s", r.src))
			}
		}
		l := body[remaining[pick]]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		switch l.builtin {
		case BuiltinNone:
			for col, t := range l.terms {
				if resolvable(t) {
					l.lookupCol = col
					break
				}
			}
			markBound(l)
		case BuiltinEq:
			markBound(l)
		}
		plan.body = append(plan.body, l)
	}
	return plan
}
