package datalog

import "fmt"

// Delta-seeding support for incremental re-analysis: a caller that
// preloads an engine with a known fixpoint (e.g. fact partitions
// restored from a previous run) declares it closed with MarkFixpoint,
// retracts the partitions invalidated by an input diff with
// RetractWhere, asserts the re-derived facts, and then lets the
// ordinary semi-naive Run drive the fixpoint from those deltas alone —
// no from-scratch seeding round over the full database.

// MarkFixpoint declares the engine's current contents already closed
// under every installed rule: all present rows are marked as evaluated,
// the per-relation deltas are emptied, and the installed rules are
// recorded as run, so they get no full-database seeding round on the
// next Run. Facts asserted after the mark land above the fixpoint rows
// and become the sole delta the next Run evaluates.
//
// The caller owns the closure claim. If the preloaded rows are NOT a
// fixpoint of the installed rules, later Runs will silently miss
// derivations — there is no verification here (incremental callers
// gate reuse on input digests instead).
func (e *Engine) MarkFixpoint() {
	e.compile()
	for _, r := range e.relList {
		r.evalMark = r.rows
		r.deltaLo, r.deltaHi = r.rows, r.rows
	}
	e.ranRules = len(e.compiled)
}

// RetractWhere removes every tuple of rel whose col-th term equals key,
// returning how many rows were removed. The arena is compacted in
// place (surviving rows keep their relative order), the dedup table is
// rebuilt, column indexes are dropped for lazy rebuild, and the
// fixpoint mark shrinks by the retracted rows below it.
//
// Retraction does not rederive: the caller must also retract (or
// re-assert) every tuple in other relations derived from the removed
// rows — in the incremental pipeline a retracted partition is always
// re-seeded from fresh base facts, so rederivation is the next Run's
// job. Call it only while the engine is at fixpoint (immediately after
// Run or MarkFixpoint); retracting mid-evaluation is not supported.
//
// RetractWhere panics when provenance recording is enabled: provenance
// cells hold packed premise row IDs that compaction would silently
// invalidate.
func (e *Engine) RetractWhere(rel string, col int, key Sym) int {
	if e.provOn {
		panic("datalog: RetractWhere is not supported with provenance enabled (premise row IDs would go stale)")
	}
	r, ok := e.rels[rel]
	if !ok || col < 0 || col >= r.arity {
		return 0
	}
	removed, removedBelowMark := 0, 0
	kept := 0
	for id := 0; id < r.rows; id++ {
		row := r.row(id)
		if row[col] == key {
			removed++
			if id < r.evalMark {
				removedBelowMark++
			}
			continue
		}
		if kept != id {
			copy(r.data[kept*r.arity:(kept+1)*r.arity], row)
		}
		kept++
	}
	if removed == 0 {
		return 0
	}
	r.rows = kept
	r.data = r.data[:kept*r.arity]
	// Rebuild the dedup table from scratch at the new row count and drop
	// the column indexes — Query and the join planner rebuild on demand.
	r.table = nil
	r.mask = 0
	if r.rows > 0 {
		r.grow()
	}
	r.index = nil
	r.evalMark -= removedBelowMark
	if r.deltaLo > r.rows {
		r.deltaLo = r.rows
	}
	if r.deltaHi > r.rows {
		r.deltaHi = r.rows
	}
	return removed
}

// Rows returns every tuple of rel in insertion order (nil if the
// relation is undeclared). Unlike Query it does not sort, so callers
// that persist fact partitions get a deterministic, cheap export.
func (e *Engine) Rows(rel string) [][]Sym {
	r, ok := e.rels[rel]
	if !ok || r.rows == 0 {
		return nil
	}
	out := make([][]Sym, r.rows)
	for id := 0; id < r.rows; id++ {
		out[id] = r.row(id)
	}
	return out
}

// mustAtFixpoint is a debug helper for tests: it panics unless every
// relation's fixpoint mark covers all rows.
func (e *Engine) mustAtFixpoint() {
	for _, r := range e.relList {
		if r.evalMark != r.rows {
			panic(fmt.Sprintf("datalog: relation %s not at fixpoint (mark %d, rows %d)", r.name, r.evalMark, r.rows))
		}
	}
}
