// Package datalog implements a small in-memory Datalog engine with
// semi-naive bottom-up evaluation. It is the stand-in for the
// Datalog/bddbddb layer the paper's Chord build runs on: the escape and
// race analyses are written as Datalog rules over relations extracted
// from the IR.
//
// Syntax accepted by ParseRule:
//
//	PointsTo(v, h) :- Alloc(v, h)
//	Reach(t, h2) :- Reach(t, h1), HeapPT(h1, f, h2)
//	Race(a, b) :- Acc(a, t1), Acc(b, t2), t1 != t2
//
// Identifiers starting with an upper-case letter are predicates; terms
// starting with a lower-case letter are variables; single-quoted terms
// ('sym') and integers are constants. `x != y` body literals are the only
// builtin.
//
// The engine is an engineered evaluation backend in the spirit of
// bddbddb: tuples live in flat arenas keyed by integer hashes, rules are
// compiled once into dense variable slots, and each semi-naive round is
// evaluated by a bounded worker pool (see SetWorkers). Results are
// identical for any worker count. An Engine is not safe for concurrent
// use by multiple goroutines.
package datalog

import (
	"fmt"
	"sort"
	"strconv"
)

// Sym is an interned constant.
type Sym int32

// maxArity bounds relation arity so per-tuple scratch space can live on
// the stack during evaluation.
const maxArity = 16

// Engine holds the symbol table, relations and rules of one program.
type Engine struct {
	symNames []string
	symTags  []byte // 0 for plain string symbols
	symVals  []int32
	symIdx   map[string]Sym
	intIdx   map[intSymKey]Sym
	rels     map[string]*Relation
	relList  []*Relation
	rules    []*Rule
	compiled []*crule
	// ranRules counts the compiled rules already evaluated to fixpoint
	// by a previous Run; rules beyond it get a seeding round over the
	// full database on the next Run.
	ranRules int
	workers  int
	stats    Stats
	// provOn records derivation provenance per tuple (see provenance.go).
	provOn bool
	// Per-compiled-rule evaluation stats, indexed by crule.idx. Written
	// with atomics during parallel rounds.
	ruleDerived []int64
	ruleRounds  []int64
	ruleNanos   []int64
}

type intSymKey struct {
	tag byte
	val int32
}

// Stats counts the work one engine did, for the telemetry layer: how
// many base facts were asserted, how many tuples the rules derived, how
// many semi-naive iterations Run took to reach fixpoint, and how many
// workers the last Run used.
type Stats struct {
	Facts      int // base tuples asserted via Fact/FactStrings
	Derived    int // tuples emitted by rule evaluation
	Iterations int // Run fixpoint rounds
	Workers    int // worker pool size of the last Run
}

// Stats returns the engine's work counters.
func (e *Engine) Stats() Stats { return e.stats }

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		symIdx: make(map[string]Sym),
		rels:   make(map[string]*Relation),
	}
}

// SetWorkers bounds the worker pool Run uses per semi-naive round.
// n <= 0 selects GOMAXPROCS; 1 forces fully sequential evaluation.
// Results are identical for any setting.
func (e *Engine) SetWorkers(n int) { e.workers = n }

// Sym interns a string constant.
func (e *Engine) Sym(s string) Sym { return e.intern(s, 0, 0) }

func (e *Engine) intern(s string, tag byte, val int32) Sym {
	if i, ok := e.symIdx[s]; ok {
		if tag != 0 && e.symTags[i] == 0 {
			e.symTags[i] = tag
			e.symVals[i] = val
		}
		return i
	}
	i := Sym(len(e.symNames))
	e.symNames = append(e.symNames, s)
	e.symTags = append(e.symTags, tag)
	e.symVals = append(e.symVals, val)
	e.symIdx[s] = i
	return i
}

// IntSym interns the symbol a single-letter tag plus integer would
// produce (e.g. IntSym('h', 3) ≡ Sym("h3")) without formatting a string
// on the hot path, and records the (tag, value) pair so IntSymVal can
// decode it without parsing.
func (e *Engine) IntSym(tag byte, val int) Sym {
	k := intSymKey{tag, int32(val)}
	if i, ok := e.intIdx[k]; ok {
		return i
	}
	i := e.intern(string(tag)+strconv.Itoa(val), tag, int32(val))
	if e.intIdx == nil {
		e.intIdx = make(map[intSymKey]Sym)
	}
	e.intIdx[k] = i
	return i
}

// IntSymVal decodes a symbol interned via IntSym (or a plain Sym whose
// name was later claimed by IntSym). ok is false for plain symbols.
func (e *Engine) IntSymVal(s Sym) (tag byte, val int, ok bool) {
	if int(s) < 0 || int(s) >= len(e.symTags) || e.symTags[s] == 0 {
		return 0, 0, false
	}
	return e.symTags[s], int(e.symVals[s]), true
}

// SymName returns the string for an interned symbol.
func (e *Engine) SymName(s Sym) string {
	if int(s) < 0 || int(s) >= len(e.symNames) {
		return fmt.Sprintf("?sym(%d)", int(s))
	}
	return e.symNames[s]
}

// Relation declares (or returns) a relation with the given arity.
func (e *Engine) Relation(name string, arity int) *Relation {
	if r, ok := e.rels[name]; ok {
		if r.arity != arity {
			panic(fmt.Sprintf("datalog: relation %s redeclared with arity %d (was %d)", name, arity, r.arity))
		}
		return r
	}
	if arity > maxArity {
		panic(fmt.Sprintf("datalog: relation %s arity %d exceeds max %d", name, arity, maxArity))
	}
	r := &Relation{name: name, arity: arity, id: len(e.relList), provOn: e.provOn}
	e.rels[name] = r
	e.relList = append(e.relList, r)
	return r
}

// Fact asserts a tuple into a relation, declaring it on first use.
func (e *Engine) Fact(rel string, terms ...Sym) {
	r := e.Relation(rel, len(terms))
	if r.insert(terms) {
		e.stats.Facts++
	}
}

// FactStrings asserts a tuple of string constants.
func (e *Engine) FactStrings(rel string, terms ...string) {
	syms := make([]Sym, len(terms))
	for i, t := range terms {
		syms[i] = e.Sym(t)
	}
	e.Fact(rel, syms...)
}

// MustRule parses and installs a rule, panicking on syntax errors (rules
// are compiled into the analyses, so a bad rule is a programming error).
func (e *Engine) MustRule(src string) {
	r, err := ParseRule(src)
	if err != nil {
		panic(err)
	}
	e.AddRule(r)
}

// AddRule installs a parsed rule, declaring any relations it mentions.
func (e *Engine) AddRule(r *Rule) {
	e.Relation(r.Head.Pred, len(r.Head.Terms))
	for _, l := range r.Body {
		if l.Builtin == BuiltinNone {
			e.Relation(l.Pred, len(l.Terms))
		}
	}
	e.rules = append(e.rules, r)
}

// Count returns the number of tuples in a relation (0 if undeclared).
func (e *Engine) Count(rel string) int {
	if r, ok := e.rels[rel]; ok {
		return r.rows
	}
	return 0
}

// Has reports whether the exact tuple is present.
func (e *Engine) Has(rel string, terms ...Sym) bool {
	r, ok := e.rels[rel]
	if !ok || len(terms) != r.arity {
		return false
	}
	return r.has(terms)
}

// Query returns all tuples of rel matching the pattern, where a negative
// term is a wildcard. Results are sorted for determinism. Patterns with
// at least one constant column are answered through the column index
// instead of a full scan.
func (e *Engine) Query(rel string, pattern ...Sym) [][]Sym {
	r, ok := e.rels[rel]
	if !ok {
		return nil
	}
	col := -1
	for i, p := range pattern {
		if p >= 0 && i < r.arity {
			col = i
			break
		}
	}
	var out [][]Sym
	if col >= 0 {
		r.buildIndex(col)
		for _, id := range r.index[col][pattern[col]] {
			t := r.row(int(id))
			if matchPattern(t, pattern) {
				out = append(out, t)
			}
		}
	} else {
		for id := 0; id < r.rows; id++ {
			t := r.row(id)
			if matchPattern(t, pattern) {
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessTuple(out[i], out[j]) })
	return out
}

func matchPattern(t []Sym, pattern []Sym) bool {
	for i, p := range pattern {
		if p >= 0 && t[i] != p {
			return false
		}
	}
	return true
}

// Wild is the wildcard pattern term for Query.
const Wild = Sym(-1)

// Relation is a set of same-arity tuples stored row-major in a flat
// arena, deduplicated by an open-addressing table of integer hashes,
// with per-column row-ID indexes built on demand for the engine's joins.
type Relation struct {
	name  string
	arity int
	// id is the relation's index in the engine's relList; it addresses
	// the relation inside packed provenance tuple IDs.
	id int
	// data holds rows back to back (row i at data[i*arity:]).
	data []Sym
	rows int
	// table is open-addressing: entries are rowID+1, 0 = empty.
	table []int32
	mask  uint32
	// index[col][sym] lists row IDs whose col-th term is sym; built on
	// first use and maintained by insert.
	index map[int]map[Sym][]int32
	// deltaLo/deltaHi mark the current semi-naive delta as a row range.
	deltaLo, deltaHi int
	// evalMark is the row count at the end of the last Run: rows below
	// it have reached fixpoint under every rule Run has already seen.
	evalMark int
	// provOn mirrors Engine.provOn; when set, prov holds one cell per
	// row recording how the tuple was first derived.
	provOn bool
	prov   []provCell
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the tuple count.
func (r *Relation) Len() int { return r.rows }

func (r *Relation) row(i int) []Sym {
	base := i * r.arity
	return r.data[base : base+r.arity]
}

func hashTuple(t []Sym) uint64 {
	h := uint64(14695981039346656037)
	for _, s := range t {
		h ^= uint64(uint32(s))
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func (r *Relation) equalRow(id int, t []Sym) bool {
	row := r.row(id)
	for i, s := range t {
		if row[i] != s {
			return false
		}
	}
	return true
}

// insert adds t if absent, returning whether it was new.
func (r *Relation) insert(t []Sym) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("datalog: %s expects arity %d, got %d", r.name, r.arity, len(t)))
	}
	if r.arity == 0 {
		if r.rows > 0 {
			return false
		}
		r.rows = 1
		if r.provOn {
			r.prov = append(r.prov, provCell{rule: baseFact})
		}
		return true
	}
	if len(r.table) == 0 || uint32(r.rows+1)*4 >= uint32(len(r.table))*3 {
		r.grow()
	}
	i := uint32(hashTuple(t)) & r.mask
	for {
		id := r.table[i]
		if id == 0 {
			r.data = append(r.data, t...)
			r.table[i] = int32(r.rows) + 1
			for col, idx := range r.index {
				idx[t[col]] = append(idx[t[col]], int32(r.rows))
			}
			r.rows++
			if r.provOn {
				// Every insert starts as a base fact; mergeRound overwrites
				// the cell when the tuple was derived by a rule.
				r.prov = append(r.prov, provCell{rule: baseFact})
			}
			return true
		}
		if r.equalRow(int(id-1), t) {
			return false
		}
		i = (i + 1) & r.mask
	}
}

func (r *Relation) has(t []Sym) bool {
	if r.arity == 0 {
		return r.rows > 0
	}
	if len(r.table) == 0 {
		return false
	}
	i := uint32(hashTuple(t)) & r.mask
	for {
		id := r.table[i]
		if id == 0 {
			return false
		}
		if r.equalRow(int(id-1), t) {
			return true
		}
		i = (i + 1) & r.mask
	}
}

// grow (re)builds the open-addressing table at under 75% load.
func (r *Relation) grow() {
	n := 2 * len(r.table)
	if n < 16 {
		n = 16
	}
	for n*3 <= (r.rows+1)*4 {
		n *= 2
	}
	r.table = make([]int32, n)
	r.mask = uint32(n - 1)
	for id := 0; id < r.rows; id++ {
		i := uint32(hashTuple(r.row(id))) & r.mask
		for r.table[i] != 0 {
			i = (i + 1) & r.mask
		}
		r.table[i] = int32(id) + 1
	}
}

// buildIndex materializes the column index for col if missing.
func (r *Relation) buildIndex(col int) {
	if col < 0 || col >= r.arity {
		return
	}
	if _, ok := r.index[col]; ok {
		return
	}
	if r.index == nil {
		r.index = make(map[int]map[Sym][]int32)
	}
	m := make(map[Sym][]int32, r.rows)
	for id := 0; id < r.rows; id++ {
		v := r.row(id)[col]
		m[v] = append(m[v], int32(id))
	}
	r.index[col] = m
}

func lessTuple(a, b []Sym) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
