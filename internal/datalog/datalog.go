// Package datalog implements a small in-memory Datalog engine with
// semi-naive bottom-up evaluation. It is the stand-in for the
// Datalog/bddbddb layer the paper's Chord build runs on: the escape and
// race analyses are written as Datalog rules over relations extracted
// from the IR.
//
// Syntax accepted by ParseRule:
//
//	PointsTo(v, h) :- Alloc(v, h)
//	Reach(t, h2) :- Reach(t, h1), HeapPT(h1, f, h2)
//	Race(a, b) :- Acc(a, t1), Acc(b, t2), t1 != t2
//
// Identifiers starting with an upper-case letter are predicates; terms
// starting with a lower-case letter are variables; single-quoted terms
// ('sym') and integers are constants. `x != y` body literals are the only
// builtin.
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Sym is an interned constant.
type Sym int

// Engine holds the symbol table, relations and rules of one program.
type Engine struct {
	symNames []string
	symIdx   map[string]Sym
	rels     map[string]*Relation
	rules    []*Rule
	stats    Stats
}

// Stats counts the work one engine did, for the telemetry layer: how
// many base facts were asserted, how many tuples the rules derived, and
// how many semi-naive iterations Run took to reach fixpoint.
type Stats struct {
	Facts      int // base tuples asserted via Fact/FactStrings
	Derived    int // tuples emitted by rule evaluation
	Iterations int // Run fixpoint rounds
}

// Stats returns the engine's work counters.
func (e *Engine) Stats() Stats { return e.stats }

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{symIdx: make(map[string]Sym), rels: make(map[string]*Relation)}
}

// Sym interns a string constant.
func (e *Engine) Sym(s string) Sym {
	if i, ok := e.symIdx[s]; ok {
		return i
	}
	i := Sym(len(e.symNames))
	e.symNames = append(e.symNames, s)
	e.symIdx[s] = i
	return i
}

// SymName returns the string for an interned symbol.
func (e *Engine) SymName(s Sym) string {
	if int(s) < 0 || int(s) >= len(e.symNames) {
		return fmt.Sprintf("?sym(%d)", int(s))
	}
	return e.symNames[s]
}

// Relation declares (or returns) a relation with the given arity.
func (e *Engine) Relation(name string, arity int) *Relation {
	if r, ok := e.rels[name]; ok {
		if r.arity != arity {
			panic(fmt.Sprintf("datalog: relation %s redeclared with arity %d (was %d)", name, arity, r.arity))
		}
		return r
	}
	r := &Relation{name: name, arity: arity, tuples: make(map[string][]Sym)}
	e.rels[name] = r
	return r
}

// Fact asserts a tuple into a relation, declaring it on first use.
func (e *Engine) Fact(rel string, terms ...Sym) {
	r := e.Relation(rel, len(terms))
	if r.insert(terms) {
		e.stats.Facts++
	}
}

// FactStrings asserts a tuple of string constants.
func (e *Engine) FactStrings(rel string, terms ...string) {
	syms := make([]Sym, len(terms))
	for i, t := range terms {
		syms[i] = e.Sym(t)
	}
	e.Fact(rel, syms...)
}

// MustRule parses and installs a rule, panicking on syntax errors (rules
// are compiled into the analyses, so a bad rule is a programming error).
func (e *Engine) MustRule(src string) {
	r, err := ParseRule(src)
	if err != nil {
		panic(err)
	}
	e.AddRule(r)
}

// AddRule installs a parsed rule, declaring any relations it mentions.
func (e *Engine) AddRule(r *Rule) {
	e.Relation(r.Head.Pred, len(r.Head.Terms))
	for _, l := range r.Body {
		if l.Builtin == BuiltinNone {
			e.Relation(l.Pred, len(l.Terms))
		}
	}
	e.rules = append(e.rules, r)
}

// Count returns the number of tuples in a relation (0 if undeclared).
func (e *Engine) Count(rel string) int {
	if r, ok := e.rels[rel]; ok {
		return len(r.tuples)
	}
	return 0
}

// Has reports whether the exact tuple is present.
func (e *Engine) Has(rel string, terms ...Sym) bool {
	r, ok := e.rels[rel]
	if !ok {
		return false
	}
	_, present := r.tuples[key(terms)]
	return present
}

// Query returns all tuples of rel matching the pattern, where a negative
// term is a wildcard. Results are sorted for determinism.
func (e *Engine) Query(rel string, pattern ...Sym) [][]Sym {
	r, ok := e.rels[rel]
	if !ok {
		return nil
	}
	var out [][]Sym
	for _, t := range r.tuples {
		match := true
		for i, p := range pattern {
			if p >= 0 && t[i] != p {
				match = false
				break
			}
		}
		if match {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessTuple(out[i], out[j]) })
	return out
}

// Wild is the wildcard pattern term for Query.
const Wild = Sym(-1)

// Run evaluates all rules to fixpoint using semi-naive iteration.
func (e *Engine) Run() {
	// delta starts as everything currently in each relation.
	delta := make(map[string]map[string][]Sym)
	for name, r := range e.rels {
		d := make(map[string][]Sym, len(r.tuples))
		for k, t := range r.tuples {
			d[k] = t
		}
		delta[name] = d
	}
	for {
		e.stats.Iterations++
		next := make(map[string]map[string][]Sym)
		for _, rule := range e.rules {
			e.evalRule(rule, delta, next)
		}
		if totalSize(next) == 0 {
			return
		}
		delta = next
	}
}

func totalSize(m map[string]map[string][]Sym) int {
	n := 0
	for _, d := range m {
		n += len(d)
	}
	return n
}

// evalRule evaluates one rule semi-naively: for each positive body
// literal position p, join delta(p) against full relations elsewhere.
func (e *Engine) evalRule(rule *Rule, delta, next map[string]map[string][]Sym) {
	positive := rule.positiveIdx
	if len(positive) == 0 {
		return
	}
	for _, dpos := range positive {
		lit := rule.Body[dpos]
		d := delta[lit.Pred]
		if len(d) == 0 {
			continue
		}
		for _, t := range d {
			bind := make(map[string]Sym, 4)
			if !unify(lit, t, bind) {
				continue
			}
			e.joinRest(rule, 0, dpos, bind, next)
		}
	}
}

// joinRest recursively extends bindings over body literals other than
// the delta literal at index skip, then emits the head tuple.
func (e *Engine) joinRest(rule *Rule, i, skip int, bind map[string]Sym, next map[string]map[string][]Sym) {
	if i == len(rule.Body) {
		e.emit(rule, bind, next)
		return
	}
	if i == skip {
		e.joinRest(rule, i+1, skip, bind, next)
		return
	}
	lit := rule.Body[i]
	switch lit.Builtin {
	case BuiltinNeq:
		a, aok := resolveTerm(lit.Terms[0], bind)
		b, bok := resolveTerm(lit.Terms[1], bind)
		if !aok || !bok {
			panic(fmt.Sprintf("datalog: unbound variable in builtin of rule %s", rule.src))
		}
		if a != b {
			e.joinRest(rule, i+1, skip, bind, next)
		}
		return
	case BuiltinEq:
		a, aok := resolveTerm(lit.Terms[0], bind)
		b, bok := resolveTerm(lit.Terms[1], bind)
		switch {
		case aok && bok:
			if a == b {
				e.joinRest(rule, i+1, skip, bind, next)
			}
		case aok:
			bind[lit.Terms[1].Var] = a
			e.joinRest(rule, i+1, skip, bind, next)
			delete(bind, lit.Terms[1].Var)
		case bok:
			bind[lit.Terms[0].Var] = b
			e.joinRest(rule, i+1, skip, bind, next)
			delete(bind, lit.Terms[0].Var)
		default:
			panic(fmt.Sprintf("datalog: both sides unbound in = of rule %s", rule.src))
		}
		return
	}
	r, ok := e.rels[lit.Pred]
	if !ok {
		return
	}
	// Pick the first bound position and use the column index; fall back
	// to a full scan only when no position is bound.
	var candidates [][]Sym
	indexed := false
	for j, term := range lit.Terms {
		if !term.IsVar {
			candidates = r.lookup(j, term.Const)
			indexed = true
			break
		}
		if term.Var != "_" {
			if v, bound := bind[term.Var]; bound {
				candidates = r.lookup(j, v)
				indexed = true
				break
			}
		}
	}
	if !indexed {
		candidates = make([][]Sym, 0, len(r.tuples))
		for _, t := range r.tuples {
			candidates = append(candidates, t)
		}
	}
	for _, t := range candidates {
		var undo []string
		ok := true
		for j, term := range lit.Terms {
			if term.IsVar {
				if v, bound := bind[term.Var]; bound {
					if v != t[j] {
						ok = false
						break
					}
				} else if term.Var != "_" {
					bind[term.Var] = t[j]
					undo = append(undo, term.Var)
				}
			} else if term.Const != t[j] {
				ok = false
				break
			}
		}
		if ok {
			e.joinRest(rule, i+1, skip, bind, next)
		}
		for _, v := range undo {
			delete(bind, v)
		}
	}
}

func (e *Engine) emit(rule *Rule, bind map[string]Sym, next map[string]map[string][]Sym) {
	tuple := make([]Sym, len(rule.Head.Terms))
	for i, term := range rule.Head.Terms {
		v, ok := resolveTerm(term, bind)
		if !ok {
			panic(fmt.Sprintf("datalog: unbound head variable %q in rule %s", term.Var, rule.src))
		}
		tuple[i] = v
	}
	r := e.rels[rule.Head.Pred]
	k := key(tuple)
	if _, exists := r.tuples[k]; exists {
		return
	}
	e.stats.Derived++
	r.tuples[k] = tuple
	for col, idx := range r.index {
		idx[tuple[col]] = append(idx[tuple[col]], tuple)
	}
	d, ok := next[rule.Head.Pred]
	if !ok {
		d = make(map[string][]Sym)
		next[rule.Head.Pred] = d
	}
	d[k] = tuple
}

func resolveTerm(t Term, bind map[string]Sym) (Sym, bool) {
	if !t.IsVar {
		return t.Const, true
	}
	v, ok := bind[t.Var]
	return v, ok
}

// unify matches a literal against a concrete tuple, extending bind.
func unify(lit Literal, tuple []Sym, bind map[string]Sym) bool {
	for i, term := range lit.Terms {
		if term.IsVar {
			if term.Var == "_" {
				continue
			}
			if v, ok := bind[term.Var]; ok {
				if v != tuple[i] {
					return false
				}
			} else {
				bind[term.Var] = tuple[i]
			}
		} else if term.Const != tuple[i] {
			return false
		}
	}
	return true
}

// Relation is a set of same-arity tuples with lazily-built per-column
// indexes to support the engine's joins.
type Relation struct {
	name   string
	arity  int
	tuples map[string][]Sym
	// index[col][sym] lists tuples whose col-th term is sym; built on
	// first use and maintained by insert.
	index map[int]map[Sym][][]Sym
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the tuple count.
func (r *Relation) Len() int { return len(r.tuples) }

func (r *Relation) insert(t []Sym) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("datalog: %s expects arity %d, got %d", r.name, r.arity, len(t)))
	}
	cp := append([]Sym(nil), t...)
	k := key(cp)
	if _, dup := r.tuples[k]; dup {
		return false
	}
	r.tuples[k] = cp
	for col, idx := range r.index {
		idx[cp[col]] = append(idx[cp[col]], cp)
	}
	return true
}

// lookup returns the tuples whose col-th term equals sym, building the
// column index on first use.
func (r *Relation) lookup(col int, sym Sym) [][]Sym {
	idx, ok := r.index[col]
	if !ok {
		if r.index == nil {
			r.index = make(map[int]map[Sym][][]Sym)
		}
		idx = make(map[Sym][][]Sym, len(r.tuples))
		for _, t := range r.tuples {
			idx[t[col]] = append(idx[t[col]], t)
		}
		r.index[col] = idx
	}
	return idx[sym]
}

func key(t []Sym) string {
	var b strings.Builder
	for _, s := range t {
		fmt.Fprintf(&b, "%d,", int(s))
	}
	return b.String()
}

func lessTuple(a, b []Sym) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
