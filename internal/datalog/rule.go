package datalog

import (
	"fmt"
	"strings"
	"unicode"
)

// BuiltinKind marks special body literals.
type BuiltinKind int

const (
	// BuiltinNone is an ordinary positive literal.
	BuiltinNone BuiltinKind = iota
	// BuiltinNeq is `x != y`.
	BuiltinNeq
	// BuiltinEq is `x = y` (binds one side if the other is bound).
	BuiltinEq
)

// Term is a variable or constant inside a literal.
type Term struct {
	IsVar bool
	Var   string
	Const Sym
}

// Literal is one body or head atom.
type Literal struct {
	Pred    string
	Terms   []Term
	Builtin BuiltinKind
}

// Rule is head :- body.
type Rule struct {
	Head Literal
	Body []Literal
	src  string
	// positiveIdx are the indices of non-builtin body literals.
	positiveIdx []int
}

// String returns the original source of the rule.
func (r *Rule) String() string { return r.src }

// ParseRule parses one rule. Constants must be pre-interned by the
// engine, so ParseRule leaves constant terms symbolic and InternInto
// resolves them; to keep the common path simple, constants in rule text
// are only allowed via single quotes and are interned lazily at AddRule
// time by the engine that parses them. In practice analyses assert all
// constants as facts, and rules use variables only.
func ParseRule(src string) (*Rule, error) {
	head, body, ok := strings.Cut(src, ":-")
	if !ok {
		return nil, fmt.Errorf("datalog: rule %q missing ':-'", src)
	}
	h, err := parseAtom(strings.TrimSpace(head))
	if err != nil {
		return nil, fmt.Errorf("datalog: rule %q: %v", src, err)
	}
	if h.Builtin != BuiltinNone {
		return nil, fmt.Errorf("datalog: rule %q: builtin in head", src)
	}
	r := &Rule{Head: h, src: strings.TrimSpace(src)}
	for _, part := range splitTopLevel(body) {
		lit, err := parseAtom(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("datalog: rule %q: %v", src, err)
		}
		if lit.Builtin == BuiltinNone {
			r.positiveIdx = append(r.positiveIdx, len(r.Body))
		}
		r.Body = append(r.Body, lit)
	}
	if len(r.positiveIdx) == 0 {
		return nil, fmt.Errorf("datalog: rule %q has no positive body literal", src)
	}
	// Head variables must appear in a positive body literal, or be bound
	// through an `=` builtin whose other side is bound.
	bound := map[string]bool{}
	for _, i := range r.positiveIdx {
		for _, t := range r.Body[i].Terms {
			if t.IsVar {
				bound[t.Var] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, l := range r.Body {
			if l.Builtin != BuiltinEq {
				continue
			}
			a, b := l.Terms[0], l.Terms[1]
			if a.IsVar && b.IsVar {
				if bound[a.Var] && !bound[b.Var] {
					bound[b.Var] = true
					changed = true
				}
				if bound[b.Var] && !bound[a.Var] {
					bound[a.Var] = true
					changed = true
				}
			}
		}
	}
	for _, t := range r.Head.Terms {
		if t.IsVar && !bound[t.Var] {
			return nil, fmt.Errorf("datalog: rule %q: head variable %q unbound", src, t.Var)
		}
	}
	return r, nil
}

// splitTopLevel splits on commas not inside parentheses.
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i, c := range s {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseAtom(s string) (Literal, error) {
	if i := strings.Index(s, "!="); i >= 0 {
		a, b := strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+2:])
		ta, err := parseTerm(a)
		if err != nil {
			return Literal{}, err
		}
		tb, err := parseTerm(b)
		if err != nil {
			return Literal{}, err
		}
		return Literal{Builtin: BuiltinNeq, Terms: []Term{ta, tb}}, nil
	}
	if i := strings.Index(s, "="); i >= 0 && !strings.Contains(s, "(") {
		a, b := strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:])
		ta, err := parseTerm(a)
		if err != nil {
			return Literal{}, err
		}
		tb, err := parseTerm(b)
		if err != nil {
			return Literal{}, err
		}
		return Literal{Builtin: BuiltinEq, Terms: []Term{ta, tb}}, nil
	}
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return Literal{}, fmt.Errorf("malformed atom %q", s)
	}
	pred := strings.TrimSpace(s[:open])
	if pred == "" || !unicode.IsUpper(rune(pred[0])) {
		return Literal{}, fmt.Errorf("predicate %q must start upper-case", pred)
	}
	var terms []Term
	inner := s[open+1 : len(s)-1]
	if strings.TrimSpace(inner) != "" {
		for _, part := range strings.Split(inner, ",") {
			t, err := parseTerm(strings.TrimSpace(part))
			if err != nil {
				return Literal{}, err
			}
			terms = append(terms, t)
		}
	}
	return Literal{Pred: pred, Terms: terms}, nil
}

func parseTerm(s string) (Term, error) {
	if s == "" {
		return Term{}, fmt.Errorf("empty term")
	}
	if s == "_" {
		return Term{IsVar: true, Var: "_"}, nil
	}
	r := rune(s[0])
	if unicode.IsLower(r) {
		return Term{IsVar: true, Var: s}, nil
	}
	return Term{}, fmt.Errorf("term %q: constants are not supported in rule text; assert them as facts", s)
}
