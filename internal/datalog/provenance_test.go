package datalog

import (
	"encoding/json"
	"reflect"
	"testing"
)

// buildProvEngine asserts a tiny transitive-reachability program:
// Edge(a,b), Edge(b,c), Edge(c,d); Path(x,y) :- Edge(x,y);
// Path(x,z) :- Path(x,y), Edge(y,z).
func buildProvEngine(workers int) *Engine {
	e := NewEngine()
	e.SetWorkers(workers)
	e.EnableProvenance()
	e.MustRule("Path(x, y) :- Edge(x, y)")
	e.MustRule("Path(x, z) :- Path(x, y), Edge(y, z)")
	e.FactStrings("Edge", "a", "b")
	e.FactStrings("Edge", "b", "c")
	e.FactStrings("Edge", "c", "d")
	e.Run()
	return e
}

func TestWhyBaseFact(t *testing.T) {
	e := buildProvEngine(1)
	d := e.Why("Edge", e.Sym("a"), e.Sym("b"))
	if d == nil {
		t.Fatal("Why returned nil for asserted fact")
	}
	if !d.IsBase() || d.Rule != "" {
		t.Fatalf("asserted fact should be a base node, got rule %q", d.Rule)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(d.Tuple, want) {
		t.Fatalf("tuple = %v, want %v", d.Tuple, want)
	}
}

func TestWhyDerived(t *testing.T) {
	e := buildProvEngine(1)
	d := e.Why("Path", e.Sym("a"), e.Sym("d"))
	if d == nil {
		t.Fatal("Why returned nil for derived tuple")
	}
	if d.IsBase() {
		t.Fatal("Path(a,d) should be derived, got base node")
	}
	if d.Rule != "Path(x, z) :- Path(x, y), Edge(y, z)" {
		t.Fatalf("unexpected rule: %q", d.Rule)
	}
	// Every leaf must be an Edge base fact, and every cited tuple must
	// exist in the database — the derivation is checkable mechanically.
	leaves := d.Leaves()
	if len(leaves) == 0 {
		t.Fatal("no leaves")
	}
	var checkNode func(n *Derivation)
	checkNode = func(n *Derivation) {
		syms := make([]Sym, len(n.Tuple))
		for i, s := range n.Tuple {
			syms[i] = e.Sym(s)
		}
		if !e.Has(n.Rel, syms...) {
			t.Fatalf("derivation cites %s%v which is not in the database", n.Rel, n.Tuple)
		}
		for _, p := range n.Premises {
			checkNode(p)
		}
	}
	checkNode(d)
	for _, l := range leaves {
		if l.Rel != "Edge" {
			t.Fatalf("leaf %s%v is not a base Edge fact", l.Rel, l.Tuple)
		}
	}
}

func TestWhyMissingTupleAndDisabled(t *testing.T) {
	e := buildProvEngine(1)
	if d := e.Why("Path", e.Sym("d"), e.Sym("a")); d != nil {
		t.Fatalf("Why for absent tuple should be nil, got %+v", d)
	}
	if d := e.Why("Nope", e.Sym("a")); d != nil {
		t.Fatal("Why for unknown relation should be nil")
	}
	off := NewEngine()
	off.MustRule("Path(x, y) :- Edge(x, y)")
	off.FactStrings("Edge", "a", "b")
	off.Run()
	if d := off.Why("Path", off.Sym("a"), off.Sym("b")); d != nil {
		t.Fatal("Why with provenance off should be nil")
	}
}

// TestProvenanceDeterministicAcrossWorkers: the recorded trees must be
// identical for any worker count, because merge order is fixed.
func TestProvenanceDeterministicAcrossWorkers(t *testing.T) {
	want, _ := json.Marshal(buildProvEngine(1).Why("Path", 0, 3))
	for _, w := range []int{2, 4, 8} {
		e := buildProvEngine(w)
		got, _ := json.Marshal(e.Why("Path", e.Sym("a"), e.Sym("d")))
		if string(got) != string(want) {
			t.Fatalf("workers=%d derivation differs:\n  got  %s\n  want %s", w, got, want)
		}
	}
}

// TestProvenanceSameDatabase: enabling provenance must not change the
// derived database or the engine's public stats.
func TestProvenanceSameDatabase(t *testing.T) {
	off := NewEngine()
	on := NewEngine()
	on.EnableProvenance()
	for _, e := range []*Engine{off, on} {
		e.MustRule("Path(x, y) :- Edge(x, y)")
		e.MustRule("Path(x, z) :- Path(x, y), Edge(y, z)")
		e.FactStrings("Edge", "a", "b")
		e.FactStrings("Edge", "b", "c")
		e.FactStrings("Edge", "b", "a")
		e.Run()
	}
	if off.Count("Path") != on.Count("Path") {
		t.Fatalf("Path counts differ: off=%d on=%d", off.Count("Path"), on.Count("Path"))
	}
	if off.Stats().Derived != on.Stats().Derived {
		t.Fatalf("derived counts differ: off=%d on=%d", off.Stats().Derived, on.Stats().Derived)
	}
	gotOff := off.Query("Path", Wild, Wild)
	gotOn := on.Query("Path", Wild, Wild)
	if !reflect.DeepEqual(gotOff, gotOn) {
		t.Fatalf("databases differ:\n  off %v\n  on  %v", gotOff, gotOn)
	}
}

// TestProvenanceIncrementalRun: rules added after a Run still record
// provenance for what their seeding round derives.
func TestProvenanceIncrementalRun(t *testing.T) {
	e := NewEngine()
	e.EnableProvenance()
	e.MustRule("Path(x, y) :- Edge(x, y)")
	e.FactStrings("Edge", "a", "b")
	e.Run()

	e.MustRule("Sym2(y, x) :- Path(x, y)")
	e.FactStrings("Edge", "b", "c")
	e.Run()

	d := e.Why("Sym2", e.Sym("c"), e.Sym("b"))
	if d == nil || d.IsBase() {
		t.Fatalf("Sym2(c,b) should have a derivation, got %+v", d)
	}
	leaves := d.Leaves()
	if len(leaves) != 1 || leaves[0].Rel != "Edge" || leaves[0].Tuple[0] != "b" {
		t.Fatalf("unexpected leaves %+v", leaves)
	}
}

// TestEnableProvenanceBackfill: tuples present before enabling are
// treated as base facts, and later derivations still explain.
func TestEnableProvenanceBackfill(t *testing.T) {
	e := NewEngine()
	e.MustRule("Path(x, y) :- Edge(x, y)")
	e.FactStrings("Edge", "a", "b")
	e.Run()

	e.EnableProvenance()
	e.MustRule("Rev(y, x) :- Path(x, y)")
	e.Run()

	if d := e.Why("Path", e.Sym("a"), e.Sym("b")); d == nil || !d.IsBase() {
		t.Fatalf("pre-provenance tuple should read as base fact, got %+v", d)
	}
	d := e.Why("Rev", e.Sym("b"), e.Sym("a"))
	if d == nil || d.IsBase() {
		t.Fatalf("Rev(b,a) should be derived, got %+v", d)
	}
}

func TestWhyTruncation(t *testing.T) {
	e := NewEngine()
	e.SetWorkers(1)
	e.EnableProvenance()
	e.MustRule("Path(x, y) :- Edge(x, y)")
	e.MustRule("Path(x, z) :- Path(x, y), Edge(y, z)")
	// A chain far longer than whyMaxDepth.
	for i := 0; i < 40; i++ {
		e.Fact("Edge", e.IntSym('n', i), e.IntSym('n', i+1))
	}
	e.Run()
	d := e.Why("Path", e.IntSym('n', 0), e.IntSym('n', 40))
	if d == nil {
		t.Fatal("no derivation for long chain")
	}
	truncated := false
	var walk func(n *Derivation) int
	walk = func(n *Derivation) int {
		if n.Truncated {
			truncated = true
		}
		depth := 0
		for _, p := range n.Premises {
			if d := walk(p); d > depth {
				depth = d
			}
		}
		return depth + 1
	}
	depth := walk(d)
	if !truncated {
		t.Fatal("long chain should be truncated")
	}
	if depth > whyMaxDepth+2 {
		t.Fatalf("tree depth %d exceeds bound", depth)
	}
}

func TestRuleStats(t *testing.T) {
	e := buildProvEngine(1)
	stats := e.RuleStats()
	if len(stats) != 2 {
		t.Fatalf("want 2 rule stats, got %d", len(stats))
	}
	if stats[0].Head != "Path" || stats[1].Head != "Path" {
		t.Fatalf("unexpected heads: %+v", stats)
	}
	// Edge->Path copies 3 tuples; the transitive rule derives Path(a,c),
	// Path(b,d), Path(a,d).
	if stats[0].Derived != 3 {
		t.Fatalf("rule 0 derived = %d, want 3", stats[0].Derived)
	}
	if stats[1].Derived != 3 {
		t.Fatalf("rule 1 derived = %d, want 3", stats[1].Derived)
	}
	for _, s := range stats {
		if s.Rounds == 0 {
			t.Fatalf("rule %q fired but has 0 rounds", s.Rule)
		}
	}
}
